package neocpu

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func serveEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := CompileGraph(smallCNN(5),
		WithOptLevel(LevelTransformElim), WithThreads(1), WithBackend(BackendSerial))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestServerFacade(t *testing.T) {
	e := serveEngine(t)
	srv, err := NewServer(e, "", WithPoolSize(1), WithMaxBatch(4), WithMaxLatency(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Model() != "small-cnn" {
		t.Fatalf("defaulted model name %q, want graph name", srv.Model())
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in := e.NewInput()
	in.FillRandom(3, 1)
	want, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(map[string]any{
		"inputs": []map[string]any{{
			"name": "input", "shape": in.Shape, "datatype": "FP32", "data": in.Data,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v2/models/small-cnn/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var ir struct {
		Outputs []struct {
			Data []float32 `json:"data"`
		} `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Outputs) != 1 || len(ir.Outputs[0].Data) != len(want[0].Data) {
		t.Fatalf("malformed outputs: %+v", ir)
	}
	for i, v := range ir.Outputs[0].Data {
		if v != want[0].Data[i] {
			t.Fatalf("served output[%d] = %v, want %v", i, v, want[0].Data[i])
		}
	}
	if st := srv.Stats(); st.Batch.Items != 1 || st.Pool.Size != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestServerRefusesBadEngines(t *testing.T) {
	if _, err := NewServer(nil, "m"); !errors.Is(err, ErrBadOption) {
		t.Fatalf("nil engine: %v, want ErrBadOption", err)
	}
	pred, err := Compile("resnet-18", WithOptLevel(LevelTransformElim), WithPredictOnly())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(pred, "m"); !errors.Is(err, ErrPredictOnly) {
		t.Fatalf("predict-only engine: %v, want ErrPredictOnly", err)
	}
}

// TestServeOptionErrorPaths is the table-driven sweep over every serving
// option's invalid-input branch.
func TestServeOptionErrorPaths(t *testing.T) {
	e := serveEngine(t)
	cases := []struct {
		name string
		opt  ServeOption
		ok   bool
	}{
		{"pool-zero", WithPoolSize(0), false},
		{"pool-negative", WithPoolSize(-3), false},
		{"pool-valid", WithPoolSize(1), true},
		{"batch-zero", WithMaxBatch(0), false},
		{"batch-negative", WithMaxBatch(-1), false},
		{"batch-valid", WithMaxBatch(16), true},
		{"latency-negative", WithMaxLatency(-time.Millisecond), false},
		{"latency-zero", WithMaxLatency(0), true},
		{"latency-valid", WithMaxLatency(5 * time.Millisecond), true},
		{"queue-zero", WithQueueDepth(0), false},
		{"queue-negative", WithQueueDepth(-8), false},
		{"queue-valid", WithQueueDepth(64), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			srv, err := NewServer(e, "", WithPoolSize(1), c.opt)
			if c.ok {
				if err != nil {
					t.Fatalf("valid option rejected: %v", err)
				}
				srv.Close()
				return
			}
			if !errors.Is(err, ErrBadOption) {
				t.Fatalf("got %v, want ErrBadOption", err)
			}
		})
	}
}

func TestServeRunsUntilContextDone(t *testing.T) {
	e := serveEngine(t)
	// Grab a free port, release it, and let Serve bind it: races are
	// possible but fine for a test that only needs one round-trip.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, addr, e, "small-cnn", WithPoolSize(1)) }()

	url := fmt.Sprintf("http://%s/v2/health/ready", addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after ctx cancellation")
	}
}

package neocpu_test

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/models"
	"repro/pkg/neocpu"
)

// ExampleCompile compiles a registry model for a preset CPU target. The
// predict-only option skips weight materialization — the engine reports
// compilation results and predicted latency but cannot execute — which keeps
// the example fast; drop it to run real inference.
func ExampleCompile() {
	engine, err := neocpu.Compile("mobilenet-v1",
		neocpu.WithTarget("intel-skylake"),
		neocpu.WithOptLevel(neocpu.LevelGlobalSearch),
		neocpu.WithPredictOnly(),
	)
	if err != nil {
		log.Fatal(err)
	}
	before, after := engine.Stats()
	fmt.Println("level:", engine.Level())
	fmt.Println("input:", engine.InputShape())
	fmt.Println("convolutions:", after.Convs)
	fmt.Println("graph shrank:", after.Nodes < before.Nodes)
	// Output:
	// level: global-search
	// input: [1 3 224 224]
	// convolutions: 27
	// graph shrank: true
}

// ExampleEngine_NewSession runs repeated inference through a Session: the
// arena allocated at session creation is reused across calls, so
// steady-state Run performs no per-node allocation. Engines are safe to
// share; create one Session per goroutine.
func ExampleEngine_NewSession() {
	engine, err := neocpu.CompileGraph(models.TinyMobileNet(42),
		neocpu.WithTarget("intel-skylake"),
		neocpu.WithThreads(1),
		neocpu.WithBackend(neocpu.BackendSerial),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	sess, err := engine.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	img := engine.NewInput()
	img.FillRandom(7, 1)
	outs, err := sess.Run(context.Background(), img)
	if err != nil {
		log.Fatal(err)
	}
	var sum float32
	for _, p := range outs[0].Data {
		sum += p
	}
	fmt.Println("classes:", len(outs[0].Data))
	fmt.Printf("probabilities sum to %.2f\n", sum)
	fmt.Println("arena is bounded:", sess.ArenaBytes() > 0)
	// Output:
	// classes: 10
	// probabilities sum to 1.00
	// arena is bounded: true
}

// ExampleNewServer embeds the serving stack — pooled sessions, dynamic
// micro-batching, the kserve-v2-style protocol — into an existing HTTP
// server. neocpu.Serve does the same plus listening and graceful shutdown.
func ExampleNewServer() {
	engine, err := neocpu.CompileGraph(models.TinyMobileNet(42),
		neocpu.WithBackend(neocpu.BackendSerial),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	srv, err := neocpu.NewServer(engine, "tiny-mobilenet",
		neocpu.WithPoolSize(2),
		neocpu.WithMaxBatch(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v2/models/tiny-mobilenet/ready")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Println("status:", resp.StatusCode)
	fmt.Println("ready:", strings.Contains(string(body), `"ready":true`))
	// Output:
	// status: 200
	// ready: true
}

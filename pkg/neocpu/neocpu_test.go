package neocpu

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/tensor"
)

// smallCNN builds a quickly-executable classifier for facade tests.
func smallCNN(seed uint64) *graph.Graph {
	b := graph.NewBuilder("small-cnn", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	x = b.MaxPool(x, 2, 2, 0)
	x = b.ConvBNReLU(x, 32, 3, 1, 1)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

func TestParseLevel(t *testing.T) {
	for _, l := range Levels() {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("nope"); !errors.Is(err, ErrUnknownLevel) {
		t.Fatalf("got %v, want ErrUnknownLevel", err)
	}
}

func TestParseTarget(t *testing.T) {
	names := TargetNames()
	if len(names) < 3 {
		t.Fatalf("too few targets: %v", names)
	}
	for _, name := range names {
		tgt, err := ParseTarget(name)
		if err != nil || tgt.Name != name {
			t.Fatalf("ParseTarget(%q) = %+v, %v", name, tgt, err)
		}
	}
	if _, err := ParseTarget("vax-11"); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("got %v, want ErrUnknownTarget", err)
	}
}

func TestTypedOptionErrors(t *testing.T) {
	if _, err := Compile("not-a-model"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("got %v, want ErrUnknownModel", err)
	}
	if _, err := Compile("resnet-18", WithTarget("not-a-target")); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("got %v, want ErrUnknownTarget", err)
	}
	if _, err := Compile("resnet-18", WithThreads(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("got %v, want ErrBadOption", err)
	}
	if _, err := CompileGraph(smallCNN(1), WithTargetSpec(nil)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("got %v, want ErrBadOption", err)
	}
}

func TestSerialBackendMeansSerial(t *testing.T) {
	// An explicit BackendSerial must not be silently upgraded to the pool by
	// the core's zero-value defaulting: serial means one execution lane.
	e, err := CompileGraph(smallCNN(2), WithOptLevel(LevelTransformElim), WithBackend(BackendSerial), WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Threads() != 1 {
		t.Fatalf("serial engine reports %d threads, want 1", e.Threads())
	}
}

func TestPredictOnlyEngine(t *testing.T) {
	e, err := Compile("resnet-18",
		WithTarget("arm-cortex-a72"),
		WithOptLevel(LevelTransformElim),
		WithPredictOnly(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !e.PredictOnly() {
		t.Fatal("engine must report PredictOnly")
	}
	if lat := e.PredictLatency(); lat <= 0 {
		t.Fatalf("predicted latency %v", lat)
	}
	if e.Target().Name != "arm-cortex-a72" {
		t.Fatalf("target %v", e.Target())
	}
	if got := e.InputShape(); len(got) != 4 || got[1] != 3 || got[2] != 224 {
		t.Fatalf("input shape %v", got)
	}
	if _, err := e.Run(e.NewInput()); !errors.Is(err, ErrPredictOnly) {
		t.Fatalf("Run: got %v, want ErrPredictOnly", err)
	}
	if _, _, err := e.RunProfiled(e.NewInput()); !errors.Is(err, ErrPredictOnly) {
		t.Fatalf("RunProfiled: got %v, want ErrPredictOnly", err)
	}
	if _, err := e.NewSession(); !errors.Is(err, ErrPredictOnly) {
		t.Fatalf("NewSession: got %v, want ErrPredictOnly", err)
	}
}

func TestCompileGraphRunAndSession(t *testing.T) {
	e, err := CompileGraph(smallCNN(3),
		WithOptLevel(LevelGlobalSearch),
		WithThreads(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if e.Level() != LevelGlobalSearch {
		t.Fatalf("level %v", e.Level())
	}
	if s, ok := e.SearchStats(); !ok || s.Vars == 0 || s.Algorithm == "" {
		t.Fatalf("search stats %+v, %v", s, ok)
	}
	pre, post := e.Stats()
	if pre.Nodes <= post.Nodes || post.Convs != 2 {
		t.Fatalf("stats before %+v after %+v", pre, post)
	}

	in := e.NewInput()
	in.FillRandom(5, 1)
	want, err := e.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := e.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(want[0], got[0]) != 0 {
		t.Fatal("session diverges from Run")
	}

	batch, err := sess.RunBatch(context.Background(), []*tensor.Tensor{in, in})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || tensor.MaxAbsDiff(want[0], batch[1][0]) != 0 {
		t.Fatal("batch diverges from Run")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Run(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	var plan bytes.Buffer
	if err := e.SavePlan(&plan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "\"entries\"") {
		t.Fatalf("plan JSON incomplete: %s", plan.String())
	}
}

func TestLevelsAgreeThroughFacade(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(9, 1)
	var ref *tensor.Tensor
	for _, level := range Levels() {
		e, err := CompileGraph(smallCNN(7), WithOptLevel(level), WithThreads(1), WithBackend(BackendSerial))
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		outs, err := e.Run(in)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if ref == nil {
			ref = outs[0]
			continue
		}
		if !tensor.AllClose(ref, outs[0], 1e-4) {
			t.Fatalf("%v diverges from baseline by %g", level, tensor.MaxAbsDiff(ref, outs[0]))
		}
	}
}

func TestInt8ThroughFacade(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(13, 1)
	f32, err := CompileGraph(smallCNN(11), WithOptLevel(LevelTransformElim), WithThreads(1), WithBackend(BackendSerial))
	if err != nil {
		t.Fatal(err)
	}
	i8, err := CompileGraph(smallCNN(11), WithOptLevel(LevelTransformElim), WithThreads(1), WithBackend(BackendSerial), WithInt8())
	if err != nil {
		t.Fatal(err)
	}
	if !i8.Int8() {
		t.Fatal("engine must report Int8")
	}
	a, err := f32.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := i8.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a[0], b[0]); d > 0.05 {
		t.Fatalf("int8 output diverges from fp32 by %g", d)
	}
}

func TestWithWinogradThroughFacade(t *testing.T) {
	// Default: the global search may schedule winograd; the plan records it.
	on, err := CompileGraph(smallCNN(7),
		WithOptLevel(LevelGlobalSearch), WithThreads(1), WithBackend(BackendSerial))
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	var planOn bytes.Buffer
	if err := on.SavePlan(&planOn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planOn.String(), `"algorithm": "winograd"`) {
		t.Fatalf("default compile scheduled no winograd conv:\n%s", planOn.String())
	}

	// WithWinograd(false) pins the direct template.
	off, err := CompileGraph(smallCNN(7),
		WithOptLevel(LevelGlobalSearch), WithThreads(1), WithBackend(BackendSerial), WithWinograd(false))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	var planOff bytes.Buffer
	if err := off.SavePlan(&planOff); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(planOff.String(), "winograd") {
		t.Fatalf("WithWinograd(false) still scheduled winograd:\n%s", planOff.String())
	}

	// Both engines must execute, and agree within winograd's fp32 transform
	// tolerance.
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(3, 1)
	a, err := on.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(a[0], b[0], 1e-3) {
		t.Fatalf("winograd and direct engines disagree: %g", tensor.MaxAbsDiff(a[0], b[0]))
	}
}

// TestInterOpAndPlanStatsThroughFacade: WithInterOp reaches the execution
// plan, PlanStats surfaces it, and enabling inter-op does not change results.
func TestInterOpAndPlanStatsThroughFacade(t *testing.T) {
	branchy := func(seed uint64) *graph.Graph {
		b := graph.NewBuilder("branchy", seed)
		x := b.Input(3, 32, 32)
		x = b.ConvBNReLU(x, 16, 3, 1, 1)
		// Two balanced towers: the compile-time policy only picks inter-op
		// for levels whose nodes carry comparable work.
		b1 := b.ConvBNReLU(x, 16, 3, 1, 1)
		b3 := b.ConvBNReLU(x, 16, 3, 1, 1)
		x = b.Concat(b1, b3)
		x = b.GlobalAvgPool(x)
		x = b.Flatten(x)
		x = b.Dense(x, 10)
		return b.Finish(b.Softmax(x))
	}
	opts := []Option{WithOptLevel(LevelTransformElim), WithThreads(2)}
	on, err := CompileGraph(branchy(3), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	off, err := CompileGraph(branchy(3), append(opts, WithInterOp(false))...)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	if st := on.PlanStats(); st.InterOpLevels == 0 || st.MaxWidth < 2 {
		t.Fatalf("inter-op engine must plan concurrent levels, got %+v", st)
	}
	if st := off.PlanStats(); st.InterOpLevels != 0 {
		t.Fatalf("WithInterOp(false) must disable inter-op levels, got %+v", st)
	}
	if st := on.PlanStats(); st.ArenaBytes <= 0 || st.ArenaBytes > st.NaiveArenaBytes {
		t.Fatalf("implausible plan stats %+v", st)
	}

	sOn, err := on.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	sOff, err := off.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if sOn.PlanStats() != on.PlanStats() {
		t.Fatal("session and engine must report the same plan")
	}
	if sOn.ArenaBytes() != on.PlanStats().ArenaBytes {
		t.Fatal("session arena must match the planned footprint")
	}
	in := on.NewInput()
	in.FillRandom(9, 1)
	a, err := sOn.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sOff.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a[0], b[0]) != 0 {
		t.Fatal("inter-op execution must be bit-identical to sequential")
	}
}

func TestRegistryCompileExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a full ResNet-18 on the host")
	}
	e, err := Compile("resnet-18", WithOptLevel(LevelTransformElim), WithThreads(2), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sess, err := e.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	in := e.NewInput()
	in.FillRandom(1, 1)
	outs, err := sess.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range outs[0].Data {
		sum += float64(v)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestBundleThroughFacade(t *testing.T) {
	orig, err := CompileGraph(models.TinyCNN(1),
		WithOptLevel(LevelTransformElim), WithThreads(1), WithBackend(BackendSerial))
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()

	var buf bytes.Buffer
	if err := orig.SaveBundle(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(bytes.NewReader(buf.Bytes()), WithThreads(1), WithBackend(BackendSerial))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Level() != orig.Level() || loaded.Int8() != orig.Int8() {
		t.Fatalf("loaded level=%v int8=%v, original level=%v int8=%v",
			loaded.Level(), loaded.Int8(), orig.Level(), orig.Int8())
	}

	in := orig.NewInput()
	in.FillRandom(9, 1)
	want, err := orig.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0].Data {
		if got[0].Data[i] != want[0].Data[i] {
			t.Fatalf("output[%d]: loaded %v != original %v (must be bit-identical)",
				i, got[0].Data[i], want[0].Data[i])
		}
	}

	// Predict-only engines carry no packed weights and cannot be bundled.
	po, err := Compile("resnet-18", WithPredictOnly(), WithOptLevel(LevelTransformElim))
	if err != nil {
		t.Fatal(err)
	}
	if err := po.SaveBundle(&bytes.Buffer{}); !errors.Is(err, ErrPredictOnly) {
		t.Fatalf("predict-only SaveBundle: %v, want ErrPredictOnly", err)
	}
	// Garbage is rejected with the artifact layer's typed error, not a panic.
	if _, err := LoadBundle(strings.NewReader("not a bundle")); err == nil {
		t.Fatal("garbage bundle loaded")
	}
}

func TestWithArenaBudgetOption(t *testing.T) {
	e, err := CompileGraph(models.TinyCNN(2),
		WithOptLevel(LevelTransformElim), WithThreads(1), WithBackend(BackendSerial))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := NewServer(e, "", WithArenaBudget(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative arena budget: %v, want ErrBadOption", err)
	}
	// A budget that fits exactly one arena clamps the default pool bound to
	// the minimum of 2.
	srv, err := NewServer(e, "", WithArenaBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if max := srv.Stats().Pool.MaxSize; max != 2 {
		t.Fatalf("pool bound %d under 1-byte budget, want the clamp minimum 2", max)
	}
}

package neocpu

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
)

// Server exposes a compiled Engine over HTTP with pooled sessions and
// dynamic micro-batching, speaking a kserve-v2-style JSON protocol:
//
//	GET  /v2/health/live, /v2/health/ready     probes
//	GET  /v2/models/<name>[/ready]             metadata, per-model readiness
//	POST /v2/models/<name>/infer               inference
//	GET  /v2/stats                             pool + batcher counters
//	GET  /metrics                              Prometheus metrics (WithMetrics)
//
// Concurrent requests are coalesced into micro-batches (bounded by
// WithMaxBatch, lingering at most WithMaxLatency for stragglers) and
// executed on a bounded pool of arena-reusing sessions; a full admission
// queue answers 429. Construct with NewServer for embedding (Handler), or
// call Serve to listen directly.
type Server struct {
	inner *serve.Server
}

// ServerStats reports the serving counters: pool occupancy and aggregated
// session work, plus the batcher's observed coalescing (Items/Batches is the
// mean batch size) and rejections.
type ServerStats = serve.Stats

// ServeOption configures NewServer / Serve.
type ServeOption func(*serveConfig)

type serveConfig struct {
	cfg serve.Config
	err error
}

// WithPoolSize bounds the session pool. Sessions are created lazily up to
// the bound and recycled across requests; each is one execution lane with
// its own preallocated arena. When the option is omitted the bound derives
// from the engine's planned arena bytes: as many session arenas as fit a
// 64 MiB budget, clamped to [2, 16]. For throughput, compile the engine with
// WithThreads(1) and WithBackend(BackendSerial), and size the pool to the
// machine's core count.
func WithPoolSize(n int) ServeOption {
	return func(c *serveConfig) {
		if n <= 0 {
			c.err = fmt.Errorf("%w: pool size %d (must be >= 1)", ErrBadOption, n)
			return
		}
		c.cfg.PoolSize = n
	}
}

// WithMaxBatch caps how many concurrent requests one dispatch coalesces
// into a Session.RunBatch call (default 8).
func WithMaxBatch(n int) ServeOption {
	return func(c *serveConfig) {
		if n <= 0 {
			c.err = fmt.Errorf("%w: max batch %d (must be >= 1)", ErrBadOption, n)
			return
		}
		c.cfg.MaxBatch = n
	}
}

// WithMaxLatency sets how long the batcher lingers for stragglers once a
// session is free and a request is waiting (default 2ms). It trades
// single-request latency for larger batches under load; 0 dispatches
// immediately with whatever has already queued.
func WithMaxLatency(d time.Duration) ServeOption {
	return func(c *serveConfig) {
		if d < 0 {
			c.err = fmt.Errorf("%w: negative max latency %v", ErrBadOption, d)
			return
		}
		if d == 0 {
			c.cfg.MaxLatency = serve.NoLatency
			return
		}
		c.cfg.MaxLatency = d
	}
}

// WithArenaBudget caps the memory the default pool sizing spends on session
// arenas, in bytes (default 64 MiB): the pool bound becomes as many session
// arenas as fit the budget, clamped to [2, 16]. Ignored when WithPoolSize
// sets the bound explicitly.
func WithArenaBudget(n int) ServeOption {
	return func(c *serveConfig) {
		if n <= 0 {
			c.err = fmt.Errorf("%w: arena budget %d (must be >= 1)", ErrBadOption, n)
			return
		}
		c.cfg.ArenaBudget = n
	}
}

// WithQueueDepth bounds the admission queue (default 4x the max batch).
// Requests beyond it are rejected with 429 instead of queueing unbounded
// work.
func WithQueueDepth(n int) ServeOption {
	return func(c *serveConfig) {
		if n <= 0 {
			c.err = fmt.Errorf("%w: queue depth %d (must be >= 1)", ErrBadOption, n)
			return
		}
		c.cfg.QueueDepth = n
	}
}

// WithRequestTimeout sets the default per-request deadline budget applied
// when the client sends no X-Request-Timeout header (default 30s; 0 disables
// the server-side budget). The budget covers the request's whole lifetime —
// admission, queueing and execution — and expiry answers 504: a request the
// queue is predicted to outlast is refused immediately rather than admitted
// to time out.
func WithRequestTimeout(d time.Duration) ServeOption {
	return func(c *serveConfig) {
		if d < 0 {
			c.err = fmt.Errorf("%w: negative request timeout %v", ErrBadOption, d)
			return
		}
		if d == 0 {
			c.cfg.RequestTimeout = serve.NoTimeout
			return
		}
		c.cfg.RequestTimeout = d
	}
}

// WithDrainTimeout bounds how long Close lets queued requests and in-flight
// batches finish before cancelling them (default 5s; 0 drops the grace
// period).
func WithDrainTimeout(d time.Duration) ServeOption {
	return func(c *serveConfig) {
		if d < 0 {
			c.err = fmt.Errorf("%w: negative drain timeout %v", ErrBadOption, d)
			return
		}
		if d == 0 {
			d = -1 // serve.Config: negative means "no grace period"
		}
		c.cfg.DrainTimeout = d
	}
}

// WithMaxBodyBytes caps infer request bodies; oversized bodies answer 413.
// When the option is omitted the cap derives from the model's input
// signature (~32 bytes of JSON per float32 plus fixed headroom).
func WithMaxBodyBytes(n int64) ServeOption {
	return func(c *serveConfig) {
		if n <= 0 {
			c.err = fmt.Errorf("%w: max body bytes %d (must be >= 1)", ErrBadOption, n)
			return
		}
		c.cfg.MaxBodyBytes = n
	}
}

// WithMetrics toggles the Prometheus-text-format GET /metrics endpoint
// (default on): request counters by status code, latency / queue-wait /
// batch-size histograms, pool and queue gauges, breaker transitions.
// Collection itself always runs (a handful of atomic adds per request);
// WithMetrics(false) only removes the endpoint.
func WithMetrics(enabled bool) ServeOption {
	return func(c *serveConfig) {
		c.cfg.DisableMetrics = !enabled
	}
}

// WithAccessLog streams one JSON line per inference request to w — model,
// status code, latency, carrying batch id, deadline budget, client request
// id — including rejected requests (413/429/504). Writes are serialized
// behind a mutex; hand it os.Stdout or a buffered writer the caller flushes.
func WithAccessLog(w io.Writer) ServeOption {
	return func(c *serveConfig) {
		if w == nil {
			c.err = fmt.Errorf("%w: nil access log writer", ErrBadOption)
			return
		}
		c.cfg.AccessLog = w
	}
}

// NewServer builds a serving stack over a compiled engine. The model name
// is the path component clients address; "" uses the compiled graph's name.
// Close the server when done (the engine stays open — the caller owns it).
func NewServer(e *Engine, model string, opts ...ServeOption) (*Server, error) {
	if e == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrBadOption)
	}
	if e.PredictOnly() {
		return nil, ErrPredictOnly
	}
	var c serveConfig
	for _, o := range opts {
		o(&c)
	}
	if c.err != nil {
		return nil, c.err
	}
	inner, err := serve.New(e.mod, model, c.cfg)
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Handler returns the HTTP handler, for embedding into an existing mux or
// an httptest server.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Model returns the served model name.
func (s *Server) Model() string { return s.inner.Model() }

// Stats snapshots the pool and batcher counters. Safe to call concurrently
// with request handling.
func (s *Server) Stats() ServerStats { return s.inner.Stats() }

// Drain flips the server into the draining health state: readiness goes
// false, new inference requests are refused with 503, in-flight requests run
// to completion. Call it ahead of Close for a graceful handoff.
func (s *Server) Drain() { s.inner.Drain() }

// Close drains in-flight batches (bounded by WithDrainTimeout) and marks the
// server unready. Idempotent.
func (s *Server) Close() { s.inner.Close() }

// Serve runs an inference server for the engine on addr until ctx is done,
// then shuts down gracefully: admission stops (readiness goes false, new
// requests get 503), in-flight requests finish under the HTTP server's
// shutdown grace, then the serving stack closes. It returns nil after a
// ctx-triggered shutdown, and the listener error otherwise.
func Serve(ctx context.Context, addr string, e *Engine, model string, opts ...ServeOption) error {
	srv, err := NewServer(e, model, opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		srv.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	case err := <-errc:
		return err
	}
}

package neocpu

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
)

// Typed errors. All failures returned by this package wrap one of these, so
// callers can branch with errors.Is instead of string matching.
var (
	// ErrUnknownModel means the model name is not in the registry.
	ErrUnknownModel = errors.New("neocpu: unknown model")
	// ErrUnknownTarget means the CPU target name is not a preset.
	ErrUnknownTarget = errors.New("neocpu: unknown target")
	// ErrUnknownLevel means the optimization-level name did not parse.
	ErrUnknownLevel = errors.New("neocpu: unknown optimization level")
	// ErrPredictOnly means the engine was compiled WithPredictOnly and was
	// asked to execute.
	ErrPredictOnly = errors.New("neocpu: engine is predict-only (compiled WithPredictOnly)")
	// ErrBadOption means an option carried an invalid value.
	ErrBadOption = errors.New("neocpu: invalid option")
)

// Target describes a CPU platform (cores, SIMD width, cache hierarchy). It is
// the machine descriptor the schedule search optimizes for; presets for the
// paper's three evaluation platforms and the two INT8 extension platforms are
// available by name through ParseTarget.
type Target = machine.Target

// ParseTarget resolves a preset target name ("intel-skylake", "amd-epyc",
// "arm-cortex-a72", "intel-cascadelake", "arm-graviton2").
func ParseTarget(name string) (*Target, error) {
	t, err := machine.TargetByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownTarget, name, strings.Join(TargetNames(), ", "))
	}
	return t, nil
}

// TargetNames lists the preset target names accepted by ParseTarget.
func TargetNames() []string {
	ts := machine.ExtendedTargets()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// Level selects how far the layout optimizations go — the four rows of the
// paper's Table 3.
type Level int

const (
	// LevelBaseline executes every convolution in plain NCHW.
	LevelBaseline Level = iota
	// LevelLayout blocks each convolution locally, paying per-CONV
	// transforms ("Layout Opt.").
	LevelLayout
	// LevelTransformElim keeps one blocked layout flowing through the graph
	// ("Transform Elim.").
	LevelTransformElim
	// LevelGlobalSearch adds the per-CONV scheme search combined by DP/PBQP
	// ("Global Search"). This is the full NeoCPU pipeline and the default.
	LevelGlobalSearch
)

// Levels returns all optimization levels in ascending order.
func Levels() []Level {
	return []Level{LevelBaseline, LevelLayout, LevelTransformElim, LevelGlobalSearch}
}

func (l Level) core() core.OptLevel {
	switch l {
	case LevelBaseline:
		return core.OptNone
	case LevelLayout:
		return core.OptLayout
	case LevelTransformElim:
		return core.OptTransformElim
	default:
		return core.OptGlobalSearch
	}
}

// String returns the level's canonical name, the form ParseLevel accepts
// ("baseline-nchw", "layout-opt", "transform-elim", "global-search").
func (l Level) String() string { return l.core().String() }

// ParseLevel resolves a level name ("baseline-nchw", "layout-opt",
// "transform-elim", "global-search").
func ParseLevel(s string) (Level, error) {
	for _, l := range Levels() {
		if l.String() == s {
			return l, nil
		}
	}
	names := make([]string, 0, 4)
	for _, l := range Levels() {
		names = append(names, l.String())
	}
	return 0, fmt.Errorf("%w: %q (known: %s)", ErrUnknownLevel, s, strings.Join(names, ", "))
}

// Backend selects the threading runtime for parallel kernel regions.
type Backend int

const (
	// BackendPool is NeoCPU's custom thread pool (long-lived workers, static
	// partitioning, spin join). The default.
	BackendPool Backend = iota
	// BackendOMP models an OpenMP-style fork/join runtime.
	BackendOMP
	// BackendSerial runs every kernel on the calling goroutine. Selecting it
	// forces the execution width to 1 — serial means one lane, regardless of
	// WithThreads.
	BackendSerial
)

func (b Backend) machine() machine.ThreadBackend {
	switch b {
	case BackendOMP:
		return machine.BackendOMP
	case BackendSerial:
		return machine.BackendSerial
	default:
		return machine.BackendPool
	}
}

// String returns the backend's name ("pool", "omp" or "serial").
func (b Backend) String() string { return b.machine().String() }

// SearchOptions tunes the global optimization-scheme search used at
// LevelGlobalSearch.
type SearchOptions struct {
	// MaxCands bounds the per-convolution candidate schemes kept from local
	// search; 0 means the default (8).
	MaxCands int
	// ForcePBQP uses the PBQP approximation instead of exact DP even for
	// graphs DP could handle (the paper uses PBQP for SSD-shaped graphs).
	ForcePBQP bool
}

type config struct {
	target      *Target
	level       Level
	threads     int
	backend     Backend
	int8        bool
	noWinograd  bool
	noInterOp   bool
	search      *SearchOptions
	predictOnly bool
	seed        uint64
	err         error
}

// Option configures Compile / CompileGraph.
type Option func(*config)

func newConfig(opts []Option) *config {
	cfg := &config{
		target:  machine.IntelSkylakeC5(),
		level:   LevelGlobalSearch,
		backend: BackendPool,
		seed:    42,
	}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// WithTarget compiles for the named preset CPU target (see TargetNames).
// The default is "intel-skylake".
func WithTarget(name string) Option {
	return func(c *config) {
		t, err := ParseTarget(name)
		if err != nil {
			c.err = err
			return
		}
		c.target = t
	}
}

// WithTargetSpec compiles for an explicit machine descriptor, for targets
// outside the presets.
func WithTargetSpec(t *Target) Option {
	return func(c *config) {
		if t == nil {
			c.err = fmt.Errorf("%w: nil target", ErrBadOption)
			return
		}
		c.target = t
	}
}

// WithOptLevel selects the optimization level. The default is
// LevelGlobalSearch.
func WithOptLevel(l Level) Option {
	return func(c *config) { c.level = l }
}

// WithThreads sets the execution width. 0 (the default) uses the target's
// core count.
func WithThreads(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.err = fmt.Errorf("%w: negative thread count %d", ErrBadOption, n)
			return
		}
		c.threads = n
	}
}

// WithBackend selects the threading runtime. The default is BackendPool.
func WithBackend(b Backend) Option {
	return func(c *config) { c.backend = b }
}

// WithInt8 enables quantized INT8 inference: weights are quantized
// per-output-channel at compile time, activations dynamically per inference.
func WithInt8() Option {
	return func(c *config) { c.int8 = true }
}

// WithWinograd toggles the Winograd convolution algorithm as a searched
// dimension of the optimization scheme (enabled by default). At
// LevelGlobalSearch the search may then schedule 3x3 stride-1 convolutions
// with the F(2x2,3x3) Winograd kernel wherever its 2.25x multiply reduction
// beats the direct template's cost.
//
// Winograd computes in a transform domain, so fp32 results differ from the
// direct template in the last bits (typically within 1e-3 relative error for
// normalized CNN activations). Pass false for bit-compatibility with direct
// convolution. INT8 engines always run direct — there is no quantized
// Winograd kernel — so this option is a no-op when combined with WithInt8.
func WithWinograd(enabled bool) Option {
	return func(c *config) { c.noWinograd = !enabled }
}

// WithInterOp toggles inter-op parallelism in the compiled execution plan
// (enabled by default). When on, dependency levels holding balanced
// independent branches — Inception towers, DenseNet concat fan-ins, SSD
// heads — dispatch one branch per thread-pool lane instead of handing the
// whole pool to each kernel in turn; a compile-time policy picks the split
// per level. Results are bit-identical either way: the plan's liveness-based
// memory assignment keeps concurrently executing nodes alias-free, so this
// is purely a performance knob. It is a no-op for engines compiled with
// WithThreads(1) or BackendSerial, which have no pool to dispatch onto.
func WithInterOp(enabled bool) Option {
	return func(c *config) { c.noInterOp = !enabled }
}

// WithSearch overrides the global-search settings used at LevelGlobalSearch.
func WithSearch(s SearchOptions) Option {
	return func(c *config) { c.search = &s }
}

// WithPredictOnly skips weight materialization and pre-packing: the engine
// can PredictLatency (and report compilation statistics) but not execute.
// Latency-simulation harnesses use this to keep hundreds of compilations
// cheap.
func WithPredictOnly() Option {
	return func(c *config) { c.predictOnly = true }
}

// WithSeed sets the synthetic-weight seed for registry models (weights in
// this reproduction are deterministic pseudo-random tensors; the seed makes
// runs reproducible). The default is 42.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

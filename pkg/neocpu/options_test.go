package neocpu

import (
	"errors"
	"testing"
)

// TestParseLevelTable sweeps ParseLevel's error paths alongside the valid
// names: unknown, empty, wrong case, and near-miss spellings must all fail
// with the typed error, never resolve to a default level.
func TestParseLevelTable(t *testing.T) {
	cases := []struct {
		in      string
		want    Level
		wantErr error
	}{
		{"baseline-nchw", LevelBaseline, nil},
		{"layout-opt", LevelLayout, nil},
		{"transform-elim", LevelTransformElim, nil},
		{"global-search", LevelGlobalSearch, nil},
		{"", 0, ErrUnknownLevel},
		{"Global-Search", 0, ErrUnknownLevel},
		{"global_search", 0, ErrUnknownLevel},
		{"o3", 0, ErrUnknownLevel},
	}
	for _, c := range cases {
		t.Run("in="+c.in, func(t *testing.T) {
			got, err := ParseLevel(c.in)
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("ParseLevel(%q) err = %v, want %v", c.in, err, c.wantErr)
				}
				return
			}
			if err != nil || got != c.want {
				t.Fatalf("ParseLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
			}
		})
	}
}

// TestParseTargetTable mirrors TestParseLevelTable for target presets.
func TestParseTargetTable(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error
	}{
		{"intel-skylake", nil},
		{"amd-epyc", nil},
		{"arm-cortex-a72", nil},
		{"intel-cascadelake", nil},
		{"arm-graviton2", nil},
		{"", ErrUnknownTarget},
		{"Intel-Skylake", ErrUnknownTarget},
		{"intel_skylake", ErrUnknownTarget},
		{"riscv", ErrUnknownTarget},
	}
	for _, c := range cases {
		t.Run("in="+c.in, func(t *testing.T) {
			tgt, err := ParseTarget(c.in)
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("ParseTarget(%q) err = %v, want %v", c.in, err, c.wantErr)
				}
				return
			}
			if err != nil || tgt == nil || tgt.Name != c.in {
				t.Fatalf("ParseTarget(%q) = %+v, %v", c.in, tgt, err)
			}
		})
	}
}

// TestCompileOptionErrorPaths is the table-driven sweep over every compile
// option's invalid-input branch (and, for contrast, the edge values each
// option accepts). Option application is pure config construction, so the
// table exercises newConfig directly instead of paying for a compile per
// row.
func TestCompileOptionErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		opt     Option
		wantErr error
	}{
		{"target-unknown", WithTarget("vax-11"), ErrUnknownTarget},
		{"target-empty", WithTarget(""), ErrUnknownTarget},
		{"target-valid", WithTarget("amd-epyc"), nil},
		{"target-spec-nil", WithTargetSpec(nil), ErrBadOption},
		{"threads-negative", WithThreads(-1), ErrBadOption},
		{"threads-zero-is-default", WithThreads(0), nil},
		{"threads-valid", WithThreads(8), nil},
		// Options with no invalid inputs: every value must configure cleanly.
		{"level", WithOptLevel(LevelBaseline), nil},
		{"backend", WithBackend(BackendOMP), nil},
		{"int8", WithInt8(), nil},
		{"winograd-off", WithWinograd(false), nil},
		{"search", WithSearch(SearchOptions{MaxCands: 1}), nil},
		{"predict-only", WithPredictOnly(), nil},
		{"seed", WithSeed(0), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := newConfig([]Option{c.opt})
			if c.wantErr == nil {
				if cfg.err != nil {
					t.Fatalf("option errored: %v", cfg.err)
				}
				return
			}
			if !errors.Is(cfg.err, c.wantErr) {
				t.Fatalf("got %v, want %v", cfg.err, c.wantErr)
			}
		})
	}
}

// TestOptionErrorSurfacesThroughCompile pins the contract that a bad option
// fails the compile entry points before any graph work happens.
func TestOptionErrorSurfacesThroughCompile(t *testing.T) {
	if _, err := CompileGraph(smallCNN(1), WithThreads(-4)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("CompileGraph: %v, want ErrBadOption", err)
	}
	if _, err := Compile("resnet-18", WithTarget("nope")); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("Compile: %v, want ErrUnknownTarget", err)
	}
}

// Package neocpu is the public API of NeoCPU-Go, the reproduction of
// "Optimizing CNN Model Inference on CPUs" (Liu et al., USENIX ATC'19).
//
// It wraps the internal compilation pipeline (graph optimization, layout
// planning, optimization-scheme search, weight pre-packing) behind a single
// entry point with functional options, and exposes the concurrency-safe
// execution model of the compiled artifact:
//
//	engine, err := neocpu.Compile("resnet-50",
//		neocpu.WithTarget("intel-skylake"),
//		neocpu.WithOptLevel(neocpu.LevelGlobalSearch),
//		neocpu.WithThreads(8),
//	)
//	if err != nil { ... }
//	defer engine.Close()
//
//	sess, err := engine.NewSession()
//	outs, err := sess.Run(ctx, input)
//
// An Engine is the paper's "standalone module with minimal size": weights,
// program and threading runtime are finalized at compile time, so one Engine
// can serve many goroutines — each goroutine creates its own Session, whose
// preallocated tensor arena makes steady-state inference allocation-free.
// One-shot callers can use Engine.Run directly.
//
// Model names come from the model registry: the paper's evaluation suite
// (resnet-18/.../152, vgg-11/.../19, densenet-121/.../201, inception-v3,
// ssd-resnet-50) plus mobilenet-v1, the depthwise-separable extension.
// Custom graphs built with internal/graph compile through CompileGraph.
package neocpu

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/tensor"
)

// Engine is a compiled model ready for execution (or, WithPredictOnly, for
// latency prediction). Engines are safe for concurrent use; see NewSession.
//
// Executable engines own a thread pool constructed at compile time: call
// Close when done with one, or its worker goroutines live until process
// exit. Predict-only engines hold no runtime and need no Close.
type Engine struct {
	mod         *core.Module
	statsBefore graph.Stats
	statsAfter  graph.Stats
}

// Profile is the per-operator timing breakdown of one profiled inference.
type Profile = core.Profile

// PlanStats summarizes an engine's compile-time execution plan: how many
// buffers the liveness-based memory planner packed into how many shared
// arena slots (ArenaBytes vs the naive one-buffer-per-node
// NaiveArenaBytes), and the level-synchronous schedule's shape (Levels,
// InterOpLevels, MaxWidth).
type PlanStats = core.PlanStats

// SearchStats reports what the global optimization-scheme search did.
type SearchStats struct {
	// Algorithm is "dp" or "pbqp".
	Algorithm string
	// Vars and Edges size the search problem (convolutions and layout-coupled
	// pairs); States counts candidate states explored.
	Vars, Edges, States int
	// Elapsed is the search wall-clock time.
	Elapsed time.Duration
}

// Compile builds and compiles a registry model for a CPU target.
func Compile(model string, opts ...Option) (*Engine, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	spec, err := models.Get(model)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownModel, model, strings.Join(models.Names(), ", "))
	}
	var g *graph.Graph
	if cfg.predictOnly {
		// Shape-only graphs support every pass and the latency predictor
		// without materializing (potentially hundreds of MB of) weights.
		g, err = models.BuildShapeOnly(model)
	} else {
		g, err = models.Build(model, cfg.seed)
	}
	if err != nil {
		return nil, err
	}
	if cfg.search == nil {
		cfg.search = &SearchOptions{}
	}
	if spec.UsePBQP {
		// Models the paper solves approximately (SSD's graph shape) keep the
		// PBQP solver even when the caller supplies its own search options.
		cfg.search.ForcePBQP = true
	}
	return compile(g, cfg)
}

// CompileGraph compiles a custom computation graph built with
// internal/graph. The graph is rewritten in place by the optimization
// passes; the caller must not reuse it.
func CompileGraph(g *graph.Graph, opts ...Option) (*Engine, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	return compile(g, cfg)
}

func compile(g *graph.Graph, cfg *config) (*Engine, error) {
	pre := g.ComputeStats()
	copts := core.Options{
		Level:           cfg.level.core(),
		Threads:         cfg.threads,
		Backend:         cfg.backend.machine(),
		Int8:            cfg.int8,
		DisableWinograd: cfg.noWinograd,
		DisableInterOp:  cfg.noInterOp,
		NoPrepack:       cfg.predictOnly,
	}
	if cfg.backend == BackendSerial {
		// The core treats serial+threads>1 as "unspecified backend" and
		// upgrades it to the pool; an explicit BackendSerial (the facade
		// default is BackendPool) must genuinely mean one execution lane.
		copts.Threads = 1
	}
	// One search default for both entry points: Compile and CompileGraph
	// explore the same candidate space for identical graphs.
	searchOpts := SearchOptions{}
	if cfg.search != nil {
		searchOpts = *cfg.search
	}
	if searchOpts.MaxCands <= 0 {
		searchOpts.MaxCands = 8
	}
	copts.Search = search.Options{MaxCands: searchOpts.MaxCands, ForcePBQP: searchOpts.ForcePBQP}
	mod, err := core.Compile(g, cfg.target, copts)
	if err != nil {
		return nil, err
	}
	return &Engine{mod: mod, statsBefore: pre, statsAfter: g.ComputeStats()}, nil
}

// Run executes one inference, allocating every intermediate. For repeated or
// concurrent inference prefer NewSession.
func (e *Engine) Run(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if e.mod.PredictOnly() {
		return nil, ErrPredictOnly
	}
	return e.mod.Run(input)
}

// RunProfiled executes one inference while timing every operator.
func (e *Engine) RunProfiled(input *tensor.Tensor) ([]*tensor.Tensor, *Profile, error) {
	if e.mod.PredictOnly() {
		return nil, nil, ErrPredictOnly
	}
	return e.mod.RunProfiled(input)
}

// NewSession returns an execution context with a preallocated per-node
// tensor arena. Sessions are cheap enough to create per worker and are NOT
// safe for concurrent use themselves; the Engine is — create one Session per
// goroutine.
//
// Pick the threading configuration for the workload: WithThreads(N) +
// BackendPool minimizes the latency of each request, but the shared pool
// runs one kernel region at a time, so concurrent sessions do not add
// throughput. For throughput-oriented serving compile with WithThreads(1)
// and WithBackend(BackendSerial) — each session then occupies exactly one
// core and N sessions scale to N cores.
func (e *Engine) NewSession() (*Session, error) {
	if e.mod.PredictOnly() {
		return nil, ErrPredictOnly
	}
	s, err := e.mod.NewSession()
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// PlanStats returns the engine's compile-time execution-plan summary. The
// zero value is returned for predict-only engines, which carry no plan.
func (e *Engine) PlanStats() PlanStats { return e.mod.PlanStats() }

// PredictLatency returns the predicted end-to-end seconds for one inference
// on the engine's (modeled) target hardware with its configured execution
// width — the simulated measurement used to regenerate the paper's tables.
func (e *Engine) PredictLatency() float64 {
	return e.mod.PredictLatency(core.PredictConfig{})
}

// Close releases the threading runtime. Outstanding sessions remain usable
// but execute serially afterwards; Close must not race with in-flight runs.
func (e *Engine) Close() { e.mod.Close() }

// Level returns the optimization level the engine was compiled at.
func (e *Engine) Level() Level {
	switch e.mod.Level {
	case core.OptNone:
		return LevelBaseline
	case core.OptLayout:
		return LevelLayout
	case core.OptTransformElim:
		return LevelTransformElim
	default:
		return LevelGlobalSearch
	}
}

// Target returns the machine descriptor the engine was compiled for.
func (e *Engine) Target() *Target { return e.mod.Target }

// Threads returns the configured execution width.
func (e *Engine) Threads() int { return e.mod.Threads() }

// Int8 reports whether the engine runs quantized inference.
func (e *Engine) Int8() bool { return e.mod.Int8 }

// PredictOnly reports whether the engine was compiled WithPredictOnly.
func (e *Engine) PredictOnly() bool { return e.mod.PredictOnly() }

// InputShape returns the expected NCHW input dimensions.
func (e *Engine) InputShape() []int {
	return append([]int(nil), e.mod.Graph.Input.OutShape.Dims...)
}

// NewInput allocates a zero-filled NCHW input tensor of the right shape.
func (e *Engine) NewInput() *tensor.Tensor {
	return tensor.New(tensor.NCHW(), e.InputShape()...)
}

// Graph returns the compiled (pass-rewritten) computation graph.
func (e *Engine) Graph() *graph.Graph { return e.mod.Graph }

// Stats returns the graph statistics before and after the optimization
// passes (node counts, convolutions, FLOPs, parameters, transforms).
func (e *Engine) Stats() (before, after graph.Stats) {
	return e.statsBefore, e.statsAfter
}

// TransformCount reports how many non-free layout transforms the compiled
// program executes per inference (the quantity Section 3.2 minimizes).
func (e *Engine) TransformCount() int { return e.mod.TransformCount() }

// SearchStats reports the global-search diagnostics; ok is false unless the
// engine was compiled at LevelGlobalSearch.
func (e *Engine) SearchStats() (stats SearchStats, ok bool) {
	s := e.mod.Search
	if s == nil {
		return SearchStats{}, false
	}
	return SearchStats{
		Algorithm: string(s.Algorithm),
		Vars:      s.Vars,
		Edges:     s.Edges,
		States:    s.States,
		Elapsed:   s.Elapsed,
	}, true
}

// SavePlan serializes the chosen per-convolution optimization schemes as
// JSON, re-appliable with the internal core.CompileWithPlan flow.
func (e *Engine) SavePlan(w io.Writer) error { return e.mod.SavePlan(w) }

// SaveBundle serializes the engine as a self-contained deployable artifact:
// execution plan, packed weights, graph and I/O metadata, and the target
// signature. LoadBundle reconstructs a bit-identical engine from it without
// searching or packing — the compile-once/deploy-everywhere flow of the
// paper's serving setting. Predict-only engines carry no packed weights and
// cannot be bundled.
func (e *Engine) SaveBundle(w io.Writer) error {
	if e.mod.PredictOnly() {
		return ErrPredictOnly
	}
	return e.mod.SaveBundle(w)
}

// LoadBundle deserializes an engine from a bundle written by SaveBundle. No
// optimization search or weight packing runs: the recorded schemes are
// re-applied to the rebuilt graph structure and the packed weights are
// installed directly, so loading is fast and the loaded engine computes
// bit-identical results to the engine that produced the bundle.
//
// Only runtime options apply (WithThreads, WithBackend, WithInterOp); the
// model, optimization level, precision and target are recorded in the bundle
// itself, so compile-time options (WithOptLevel, WithInt8, WithTarget,
// WithSeed, WithSearch) have no effect. A bundle produced for a different
// target signature fails with core.ErrBundleTarget; a corrupted or stale
// bundle fails with artifact.ErrInvalidArtifact.
func LoadBundle(r io.Reader, opts ...Option) (*Engine, error) {
	cfg := newConfig(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	copts := core.Options{
		Threads:        cfg.threads,
		Backend:        cfg.backend.machine(),
		DisableInterOp: cfg.noInterOp,
	}
	if cfg.backend == BackendSerial {
		// Same rule as compile(): explicit serial means one execution lane.
		copts.Threads = 1
	}
	mod, err := core.LoadBundle(r, models.ResolveGraph, copts)
	if err != nil {
		return nil, err
	}
	stats := mod.Graph.ComputeStats()
	return &Engine{mod: mod, statsBefore: stats, statsAfter: stats}, nil
}

// Session is a reusable, single-lane execution context over an Engine. Its
// preallocated arena makes steady-state Run allocation-free. Create one per
// goroutine; the underlying Engine is shared safely.
type Session struct {
	s *core.Session
}

// Run executes one inference. The returned tensors alias the session arena:
// they are valid until the next Run/RunBatch on this session and must be
// Clone()d to outlive it. Ctx is checked as execution proceeds through the
// graph, so cancellation takes effect mid-inference.
func (s *Session) Run(ctx context.Context, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	return s.s.Run(ctx, input)
}

// PlanStats returns the compile-time execution-plan summary this session
// materializes: arena slot packing and the inter-op schedule.
func (s *Session) PlanStats() PlanStats { return s.s.PlanStats() }

// ArenaBytes reports the session's preallocated arena footprint — the
// planned shared slots, each counted once.
func (s *Session) ArenaBytes() int { return s.s.ArenaBytes() }

// RunBatch executes one inference per input, amortizing dispatch setup. The
// results are deep copies and remain valid indefinitely.
func (s *Session) RunBatch(ctx context.Context, inputs []*tensor.Tensor) ([][]*tensor.Tensor, error) {
	return s.s.RunBatch(ctx, inputs)
}

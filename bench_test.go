// Package repro's benchmark harness regenerates every table and figure of
// the paper (via the machine-model simulators — the paper's EC2 targets are
// modeled, not the host) and additionally measures the real Go kernels for
// the ablations DESIGN.md calls out (layout, register blocking, unrolling,
// fusion, thread pools, transform cost, search cost).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one experiment:
//
//	go test -bench=BenchmarkTable2a -benchmem
package repro

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/benchkernels"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/schedule"
	"repro/internal/search"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// ---------------------------------------------------------------------------
// Paper experiments (simulated on the modeled targets).
// ---------------------------------------------------------------------------

func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if report.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// benchTable2 reports each model's simulated NeoCPU latency and the best
// baseline's, for one target.
func benchTable2(b *testing.B, t *machine.Target) {
	for _, model := range models.Names() {
		model := model
		b.Run(model, func(b *testing.B) {
			var neo, bestBase float64
			for i := 0; i < b.N; i++ {
				neo = 0
				bestBase = 0
				for _, e := range baselines.Engines() {
					if !baselines.Available(e, t) {
						continue
					}
					p, err := baselines.Predict(e, model, t, 0)
					if err != nil {
						b.Fatal(err)
					}
					if e == baselines.EngineNeoCPU {
						neo = p.Seconds
					} else if bestBase == 0 || p.Seconds < bestBase {
						bestBase = p.Seconds
					}
				}
			}
			b.ReportMetric(neo*1000, "neocpu-ms")
			b.ReportMetric(bestBase*1000, "best-baseline-ms")
			b.ReportMetric(bestBase/neo, "speedup")
		})
	}
}

func BenchmarkTable2a(b *testing.B) { benchTable2(b, machine.IntelSkylakeC5()) }
func BenchmarkTable2b(b *testing.B) { benchTable2(b, machine.AMDEpycM5a()) }
func BenchmarkTable2c(b *testing.B) { benchTable2(b, machine.ARMCortexA72()) }

func BenchmarkTable3(b *testing.B) {
	var rows []report.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.LayoutOpt, r.Model+"-layout-x")
		b.ReportMetric(r.TransformElim, r.Model+"-elim-x")
		b.ReportMetric(r.GlobalSearch, r.Model+"-search-x")
	}
}

func benchFigure4(b *testing.B, spec report.Figure4Spec) {
	var series []report.Figure4Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = report.Figure4(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := spec.Target.Cores - 1
	for _, s := range series {
		label := strings.ReplaceAll(strings.ReplaceAll(s.Label, " ", "-"), "/", "")
		b.ReportMetric(s.ImagesPerSec[n], label+"-img/s")
	}
}

func BenchmarkFigure4a(b *testing.B) { benchFigure4(b, report.Figure4Specs()[0]) }
func BenchmarkFigure4b(b *testing.B) { benchFigure4(b, report.Figure4Specs()[1]) }
func BenchmarkFigure4c(b *testing.B) { benchFigure4(b, report.Figure4Specs()[2]) }

// ---------------------------------------------------------------------------
// Ablation benches on the real Go kernels (host wall-clock).
// ---------------------------------------------------------------------------

// benchConvTensors is the shared mid-network ResNet convolution workload
// (64x28x28 -> 64, 3x3), defined once in internal/benchkernels so the JSON
// benchmark emitter measures the same geometry.
func benchConvTensors() (*tensor.Tensor, *tensor.Tensor, ops.Conv2DAttrs) {
	return benchkernels.ConvCase()
}

// BenchmarkConvLayout compares the direct convolution in each data layout —
// the real-kernel counterpart of Table 3 row 2.
func BenchmarkConvLayout(b *testing.B) {
	in, wt, attrs := benchConvTensors()
	b.Run("NCHW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.Conv2DNCHW(in, wt, attrs, ops.Epilogue{}, nil)
		}
	})
	b.Run("NHWC", func(b *testing.B) {
		nhwc := tensor.NCHWToNHWC(in)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops.Conv2DNHWC(nhwc, wt, attrs, ops.Epilogue{}, nil)
		}
	})
	for _, blk := range []int{4, 8, 16} {
		blk := blk
		b.Run(tensor.NCHWc(blk).String(), func(b *testing.B) {
			bi := tensor.ToNCHWc(in, blk)
			bw := tensor.PackWeights(wt, blk, blk)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ops.Conv2DNCHWc(bi, bw, attrs, blk, blk, 8, true, ops.Epilogue{}, nil)
			}
		})
	}
}

// BenchmarkConvRegN sweeps the register-blocking width (the reg_n knob of
// the schedule tuple).
func BenchmarkConvRegN(b *testing.B) {
	in, wt, attrs := benchConvTensors()
	bi := tensor.ToNCHWc(in, 8)
	bw := tensor.PackWeights(wt, 8, 8)
	for _, regN := range []int{2, 4, 8, 16, 32} {
		regN := regN
		b.Run(map[bool]string{true: "reg_n="}[true]+itoa(regN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, regN, false, ops.Epilogue{}, nil)
			}
		})
	}
}

// BenchmarkConvUnroll measures the unroll_ker specializations.
func BenchmarkConvUnroll(b *testing.B) {
	in, wt, attrs := benchConvTensors()
	bi := tensor.ToNCHWc(in, 8)
	bw := tensor.PackWeights(wt, 8, 8)
	for _, unroll := range []bool{false, true} {
		unroll := unroll
		name := "generic"
		if unroll {
			name = "unrolled-3x3"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, 8, unroll, ops.Epilogue{}, nil)
			}
		})
	}
}

// BenchmarkFusion compares fused conv+bias+relu+residual epilogues against
// separate operator execution (Section 2.2's arithmetic-intensity argument).
func BenchmarkFusion(b *testing.B) {
	in, wt, attrs := benchConvTensors()
	bi := tensor.ToNCHWc(in, 8)
	bw := tensor.PackWeights(wt, 8, 8)
	bias := make([]float32, 64)
	res := tensor.New(tensor.NCHWc(8), 1, 8, 28, 28, 8)
	res.FillRandom(3, 1)
	b.Run("fused", func(b *testing.B) {
		epi := ops.Epilogue{Bias: bias, Residual: res, ReLU: true}
		for i := 0; i < b.N; i++ {
			ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, 8, true, epi, nil)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, 8, true, ops.Epilogue{Bias: bias}, nil)
			out = ops.Add(out, res, nil)
			ops.ReLU(out, nil)
		}
	})
}

// BenchmarkLayoutTransform measures the packing kernels whose elimination is
// Section 3.2's subject.
func BenchmarkLayoutTransform(b *testing.B) {
	in := tensor.New(tensor.NCHW(), 1, 128, 56, 56)
	in.FillRandom(1, 1)
	b.Run("NCHW-to-NCHW16c", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.ToNCHWc(in, 16)
		}
	})
	blocked := tensor.ToNCHWc(in, 16)
	b.Run("NCHW16c-to-NCHW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.FromNCHWc(blocked)
		}
	})
	b.Run("rechunk-16c-to-8c", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.RechunkNCHWc(blocked, 8)
		}
	})
	wt := tensor.New(tensor.OIHW(), 128, 128, 3, 3)
	b.Run("weight-prepack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.PackWeights(wt, 16, 16)
		}
	})
}

// BenchmarkThreadPool compares the parallel runtimes over a real convolution
// and over many tiny regions (the real-kernel counterpart of Figure 4; on a
// single-core host the curves flatten but the per-region overhead remains
// visible).
func BenchmarkThreadPool(b *testing.B) {
	in, wt, attrs := benchConvTensors()
	bi := tensor.ToNCHWc(in, 8)
	bw := tensor.PackWeights(wt, 8, 8)
	threads := runtime.GOMAXPROCS(0)
	if threads < 2 {
		threads = 2
	}
	b.Run("conv/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, 8, true, ops.Epilogue{}, threadpool.Serial)
		}
	})
	b.Run("conv/pool", func(b *testing.B) {
		p := threadpool.NewPool(threads)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, 8, true, ops.Epilogue{}, p.ParallelFor)
		}
	})
	b.Run("conv/omp", func(b *testing.B) {
		o := threadpool.NewOMPPool(threads)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, 8, true, ops.Epilogue{}, o.ParallelFor)
		}
	})
	var sink [64]int64
	b.Run("tiny-regions/pool", func(b *testing.B) {
		p := threadpool.NewPool(threads)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.ParallelFor(64, func(j int) { sink[j]++ })
		}
	})
	b.Run("tiny-regions/omp", func(b *testing.B) {
		o := threadpool.NewOMPPool(threads)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.ParallelFor(64, func(j int) { sink[j]++ })
		}
	})
}

// BenchmarkConvAlgorithm compares the direct template against the Winograd
// F(2x2,3x3) kernels (the paper's Section 6 extension) on real Go code, in
// both the unblocked and the NCHW[x]c layouts. The blocked pair is the
// matchup the optimization-scheme search decides per layer: on ResNet-style
// 3x3 stride-1 workloads the winograd scheme's 2.25x multiply reduction
// should beat the direct template.
func BenchmarkConvAlgorithm(b *testing.B) {
	for _, blk := range []int{8, 16} {
		blk := blk
		b.Run("direct-NCHW"+itoa(blk)+"c", func(b *testing.B) {
			iter := benchkernels.DirectBlocked(blk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iter()
			}
		})
		b.Run("winograd-NCHW"+itoa(blk)+"c", func(b *testing.B) {
			iter := benchkernels.WinogradBlocked(blk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iter()
			}
		})
	}
	b.Run("winograd-f2x3-NCHW", func(b *testing.B) {
		in, wt, attrs := benchkernels.ConvCase()
		u := ops.WinogradWeightTransform(wt)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops.Conv2DWinograd(in, u, attrs, ops.Epilogue{}, nil)
		}
	})
}

// BenchmarkConvInt8 compares fp32 and int8 blocked convolutions (Section 6
// INT8 extension). On the scalar Go host the int8 path pays conversion
// costs; the simulated ISA factors are reported by examples/quantized.
func BenchmarkConvInt8(b *testing.B) {
	in, wt, attrs := benchConvTensors()
	b.Run("fp32", func(b *testing.B) {
		bi := tensor.ToNCHWc(in, 8)
		bw := tensor.PackWeights(wt, 8, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops.Conv2DNCHWc(bi, bw, attrs, 8, 8, 8, true, ops.Epilogue{}, nil)
		}
	})
	b.Run("int8", func(b *testing.B) {
		qi := quant.PackActivationNCHWc(quant.Quantize(in), 8)
		qw := quant.PackWeightsOIHWio(quant.QuantizeWeightsPerChannel(wt), 8, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			quant.Conv2DInt8NCHWc(qi, qw, attrs, 8, 8, 8, ops.Epilogue{}, nil)
		}
	})
}

// BenchmarkLocalSearch measures the Section 3.3.1 exhaustive schedule search
// for one workload (cost-model evaluator).
func BenchmarkLocalSearch(b *testing.B) {
	t := machine.IntelSkylakeC5()
	wl := machine.ConvWorkload{InC: 128, InH: 28, InW: 28, OutC: 128, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	eval := schedule.CostModelEvaluator(t)
	for i := 0; i < b.N; i++ {
		schedule.LocalSearch(wl, t, eval)
	}
}

// BenchmarkGlobalSearch measures the DP and PBQP solvers on real model
// graphs (Section 3.3.2: "a typical DP search completes in 1 minute...
// the approximation algorithm completes in 10 seconds" — at TVM scale; the
// Go cost-model problems solve in milliseconds).
func BenchmarkGlobalSearch(b *testing.B) {
	t := machine.IntelSkylakeC5()
	db := schedule.NewDB()
	mkProblem := func(model string) *search.Problem {
		g, err := models.BuildShapeOnly(model)
		if err != nil {
			b.Fatal(err)
		}
		if err := graph.Optimize(g); err != nil {
			b.Fatal(err)
		}
		p, err := search.BuildProblem(g, t, search.BuildOptions{MaxCands: 10, DB: db, Threads: t.Cores})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	pRes := mkProblem("resnet-50")
	b.Run("dp/resnet-50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := search.DP(pRes, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pbqp/resnet-50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			search.PBQP(pRes)
		}
	})
	pSSD := mkProblem("ssd-resnet-50")
	b.Run("pbqp/ssd-resnet-50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			search.PBQP(pSSD)
		}
	})
}

// BenchmarkEndToEnd runs real inference through the compiled module on the
// host (small model: the full ResNet-18 in pure Go).
func BenchmarkEndToEnd(b *testing.B) {
	t := machine.IntelSkylakeC5()
	threads := runtime.GOMAXPROCS(0)
	for _, level := range []core.OptLevel{core.OptNone, core.OptTransformElim} {
		level := level
		b.Run("resnet-18/"+level.String(), func(b *testing.B) {
			m, err := core.Compile(models.MustBuild("resnet-18", 1), t,
				core.Options{Level: level, Threads: threads})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			in := tensor.New(tensor.NCHW(), 1, 3, 224, 224)
			in.FillRandom(1, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModuleRun and BenchmarkSessionRun compare the allocate-everything
// Module.Run path against the arena-backed Session on the same compiled
// model: the session's preallocated per-node buffers eliminate the per-call
// feature-map allocations (watch B/op and allocs/op).
func benchRunModule(b *testing.B) *core.Module {
	b.Helper()
	m, err := core.Compile(models.TinyResNet(1), machine.IntelSkylakeC5(),
		core.Options{Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkModuleRun(b *testing.B) {
	m := benchRunModule(b)
	defer m.Close()
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionRun(b *testing.B) {
	m := benchRunModule(b)
	defer m.Close()
	s, err := m.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(1, 1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
	// The memory planner's footprint: one session's planned shared-slot arena
	// vs the naive one-buffer-per-node arena it replaced.
	st := s.PlanStats()
	b.ReportMetric(float64(st.ArenaBytes), "arena-B")
	b.ReportMetric(float64(st.NaiveArenaBytes), "naive-arena-B")
}

// BenchmarkSessionRunInterOp measures the level-synchronous inter-op
// executor on a branch-and-concat model at 4 threads: the seq variant pins
// every level sequential (kernels get the whole pool), the interop variant
// dispatches the towers of each level across the pool. On a multi-core host
// the interop variant should win on this branchy graph; on a single core the
// two should tie (the dispatch adds only a pool submission per level).
func BenchmarkSessionRunInterOp(b *testing.B) {
	for _, cfg := range []struct {
		name           string
		disableInterOp bool
	}{
		{"seq", true},
		{"interop", false},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			m, err := core.Compile(models.TinyInception(1), machine.IntelSkylakeC5(),
				core.Options{Level: core.OptTransformElim, Threads: 4, Backend: machine.BackendPool,
					DisableInterOp: cfg.disableInterOp})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			st := m.PlanStats()
			if !cfg.disableInterOp && st.InterOpLevels == 0 {
				b.Fatal("plan scheduled no inter-op levels; benchmark would not measure the inter-op path")
			}
			s, err := m.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
			in.FillRandom(1, 1)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.ArenaBytes), "arena-B")
			b.ReportMetric(float64(st.InterOpLevels), "interop-levels")
		})
	}
}

// BenchmarkSessionRunWinograd is BenchmarkSessionRun on a winograd-planned
// module: the global search schedules TinyResNet's 3x3 stride-1 convolutions
// with the Winograd algorithm, and the session arena (which sizes the
// winograd transform scratch at creation) must keep steady-state execution
// as allocation-free as the direct path.
func BenchmarkSessionRunWinograd(b *testing.B) {
	m, err := core.Compile(models.TinyResNet(1), machine.IntelSkylakeC5(),
		core.Options{Level: core.OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	var plan strings.Builder
	if err := m.SavePlan(&plan); err != nil {
		b.Fatal(err)
	}
	if !strings.Contains(plan.String(), `"algorithm": "winograd"`) {
		b.Fatal("global search did not schedule any winograd convolution; benchmark would not measure the winograd path")
	}
	s, err := m.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(1, 1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionRunBatch measures the amortized per-image cost of batched
// session execution (dispatch setup paid once per batch).
func BenchmarkSessionRunBatch(b *testing.B) {
	m := benchRunModule(b)
	defer m.Close()
	s, err := m.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	const batch = 8
	ins := make([]*tensor.Tensor, batch)
	for i := range ins {
		ins[i] = tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		ins[i].FillRandom(uint64(i+1), 1)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunBatch(ctx, ins); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

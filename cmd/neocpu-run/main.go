// Command neocpu-run compiles a model and actually executes it on this
// machine with a synthetic input, reporting the output (top-5 classes or
// detections) and the measured wall-clock latency of the Go kernels.
//
// Note the distinction from neocpu-bench: neocpu-bench predicts latency on
// the *simulated* paper targets (AVX-512/AVX2/NEON); neocpu-run measures the
// pure-Go kernels on the host.
//
// Usage:
//
//	neocpu-run -model resnet-18 -threads 8 -runs 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/tensor"
	"repro/pkg/neocpu"
)

func main() {
	model := flag.String("model", "resnet-18", "model name (see internal/models)")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "execution threads")
	runs := flag.Int("runs", 3, "timed inference runs")
	levelName := flag.String("level", "global-search", "baseline-nchw|layout-opt|transform-elim|global-search")
	seed := flag.Uint64("seed", 42, "input seed")
	profile := flag.Bool("profile", false, "print a per-operator timing breakdown")
	int8Mode := flag.Bool("int8", false, "run quantized INT8 inference")
	flag.Parse()

	level, err := neocpu.ParseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	opts := []neocpu.Option{
		neocpu.WithOptLevel(level),
		neocpu.WithThreads(*threads),
	}
	if *int8Mode {
		opts = append(opts, neocpu.WithInt8())
	}

	// Compilation targets the Skylake descriptor by default: the schedule
	// search needs a machine model even though execution happens on the host.
	fmt.Printf("compiling %s at %v...\n", *model, level)
	start := time.Now()
	engine, err := neocpu.Compile(*model, opts...)
	if err != nil {
		fatal(err)
	}
	defer engine.Close()
	fmt.Printf("compiled in %v\n", time.Since(start).Round(time.Millisecond))

	in := engine.NewInput()
	in.FillRandom(*seed, 1)

	// A session reuses its tensor arena across the timed runs, so the
	// steady-state numbers measure kernels, not the allocator.
	sess, err := engine.NewSession()
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	var outs []*tensor.Tensor
	var best time.Duration
	for i := 0; i < *runs; i++ {
		s := time.Now()
		outs, err = sess.Run(ctx, in)
		if err != nil {
			fatal(err)
		}
		el := time.Since(s)
		if i == 0 || el < best {
			best = el
		}
		fmt.Printf("run %d: %v\n", i+1, el.Round(time.Microsecond))
	}
	fmt.Printf("best of %d runs: %v on %d host threads\n", *runs, best.Round(time.Microsecond), *threads)

	if *profile {
		_, prof, err := engine.RunProfiled(in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nper-operator breakdown:\n%s", prof)
	}

	out := outs[0]
	if *model == "ssd-resnet-50" {
		n := out.Shape[1]
		fmt.Printf("\n%d detections (class score box):\n", n)
		for i := 0; i < n && i < 10; i++ {
			row := out.Data[i*6 : (i+1)*6]
			fmt.Printf("  class=%2.0f score=%.3f box=(%.3f %.3f %.3f %.3f)\n",
				row[0], row[1], row[2], row[3], row[4], row[5])
		}
		return
	}
	type pair struct {
		class int
		p     float32
	}
	ps := make([]pair, out.Shape[1])
	for i := range ps {
		ps[i] = pair{i, out.Data[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].p > ps[j].p })
	fmt.Println("\ntop-5 classes:")
	for _, p := range ps[:5] {
		fmt.Printf("  class %4d  p=%.5f\n", p.class, p.p)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neocpu-run:", err)
	os.Exit(1)
}

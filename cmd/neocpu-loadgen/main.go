// Command neocpu-loadgen drives a running /v2 inference server with an
// open-loop QPS ramp and reports latency-vs-QPS curves — p50/p95/p99 over
// successful requests plus the 429/504/5xx breakdown per step. With -json it
// appends the run as a serving/<model>/qps-<n> series to a bench trajectory
// file (the same BENCH_*.json schema neocpu-bench writes), so serving
// performance is tracked across PRs like kernel performance.
//
//	neocpu-serve -repo ./models -addr :8000 &
//	neocpu-loadgen -url http://127.0.0.1:8000 -model tiny-resnet \
//	    -qps 10,25,50 -duration 5s -json bench/BENCH_c5.9xlarge.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/loadgen"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8000", "server base URL")
		model       = flag.String("model", "", "model to drive (required)")
		qpsList     = flag.String("qps", "10,25,50", "comma-separated offered rates, one step each")
		duration    = flag.Duration("duration", 5*time.Second, "offered-load duration per step")
		concurrency = flag.Int("concurrency", 16, "max in-flight requests (ticks past it are dropped, not queued)")
		timeout     = flag.Duration("timeout", 0, "per-request X-Request-Timeout budget (0 = server default)")
		warmup      = flag.Int("warmup", 4, "sequential warmup requests before the first step")
		jsonPath    = flag.String("json", "", "bench trajectory file to merge the serving series into")
	)
	flag.Parse()
	if *model == "" {
		fmt.Fprintln(os.Stderr, "neocpu-loadgen: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	qps, err := parseQPS(*qpsList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neocpu-loadgen: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	steps, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     strings.TrimRight(*url, "/"),
		Model:       *model,
		QPS:         qps,
		Duration:    *duration,
		Concurrency: *concurrency,
		Timeout:     *timeout,
		Warmup:      *warmup,
	})
	printSteps(*model, steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neocpu-loadgen: %v\n", err)
		os.Exit(1)
	}

	if *jsonPath != "" {
		if err := mergeJSON(*jsonPath, *model, steps); err != nil {
			fmt.Fprintf(os.Stderr, "neocpu-loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged %d serving entries into %s\n", len(steps), *jsonPath)
	}
}

func parseQPS(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		q, err := strconv.ParseFloat(part, 64)
		if err != nil || q <= 0 {
			return nil, fmt.Errorf("bad -qps element %q (want a positive number)", part)
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-qps lists no rates")
	}
	return out, nil
}

func printSteps(model string, steps []loadgen.Step) {
	if len(steps) == 0 {
		return
	}
	fmt.Printf("model %s\n", model)
	fmt.Printf("%10s %10s %7s %7s %6s %6s %6s %6s  %10s %10s %10s\n",
		"qps", "achieved", "sent", "ok", "429", "504", "5xx", "other", "p50", "p95", "p99")
	for _, st := range steps {
		fmt.Printf("%10.4g %10.1f %7d %7d %6d %6d %6d %6d  %10s %10s %10s\n",
			st.TargetQPS, st.AchievedQPS, st.Sent, st.OK,
			st.Rejected, st.DeadlineExceeded, st.ServerErrors, st.OtherErrors,
			st.P50.Round(10*time.Microsecond),
			st.P95.Round(10*time.Microsecond),
			st.P99.Round(10*time.Microsecond))
		if st.Dropped > 0 {
			fmt.Printf("%10s dropped %d ticks (concurrency %s saturated)\n", "", st.Dropped, "bound")
		}
	}
}

func mergeJSON(path, model string, steps []loadgen.Step) error {
	f, err := benchfmt.Load(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		// A fresh file: serving-only, labeled with the host that measured it
		// (kernel sections stay empty until neocpu-bench fills them).
		f = &benchfmt.File{Target: "host", CPU: runtime.GOARCH}
	}
	f.MergeServing(model, loadgen.BenchEntries(model, steps))
	return f.Save(path)
}

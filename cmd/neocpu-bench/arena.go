package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
)

// This file implements the arena regression guard: CI compiles a fixed set
// of models under a pinned configuration and fails when the memory planner's
// arena footprint grows more than arenaGuardSlack over the committed
// baseline. The planner's savings are a load-bearing property (serving pools
// size themselves from arena bytes), so regressions must be explicit —
// a legitimate growth updates the baseline file with -write-arena-baseline.

// arenaGuardSlack is the tolerated growth over the baseline (10%).
const arenaGuardSlack = 0.10

// arenaGuardModels is the guarded set: a residual chain, a branch-and-concat
// graph, a dense fan-in and a depthwise-separable chain — the reuse patterns
// the planner exploits.
var arenaGuardModels = []struct {
	name string
	mk   func(uint64) *graph.Graph
}{
	{"tiny-resnet", models.TinyResNet},
	{"tiny-inception", models.TinyInception},
	{"tiny-densenet", models.TinyDenseNet},
	{"tiny-mobilenet", models.TinyMobileNet},
}

// arenaGuardCompile pins the guard configuration: the full search pipeline
// with a 4-wide pool, so the plan carries inter-op levels and their stricter
// (level-granular) lifetime constraints.
func arenaGuardCompile(mk func(uint64) *graph.Graph) (*core.Module, error) {
	return core.Compile(mk(1), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptGlobalSearch, Threads: 4, Backend: machine.BackendPool,
	})
}

func measureArenaBytes() (map[string]int, error) {
	out := make(map[string]int, len(arenaGuardModels))
	for _, gm := range arenaGuardModels {
		m, err := arenaGuardCompile(gm.mk)
		if err != nil {
			return nil, fmt.Errorf("neocpu-bench: arena guard: compiling %s: %w", gm.name, err)
		}
		out[gm.name] = m.PlanStats().ArenaBytes
		m.Close()
	}
	return out, nil
}

func writeArenaBaseline(path string) error {
	got, err := measureArenaBytes()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(got); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("wrote %s: %v\n", path, got)
	return f.Close()
}

func checkArenaBaseline(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("neocpu-bench: arena guard: %w", err)
	}
	var baseline map[string]int
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("neocpu-bench: arena guard: parsing %s: %w", path, err)
	}
	got, err := measureArenaBytes()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		base, ok := baseline[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no baseline entry (regenerate with -write-arena-baseline)", name))
			continue
		}
		limit := int(float64(base) * (1 + arenaGuardSlack))
		status := "ok"
		if got[name] > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: planned arena %d B exceeds baseline %d B by more than %.0f%%", name, got[name], base, arenaGuardSlack*100))
		}
		fmt.Printf("arena-guard %-16s planned=%8d baseline=%8d limit=%8d %s\n", name, got[name], base, limit, status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "neocpu-bench: arena guard:", f)
		}
		return fmt.Errorf("neocpu-bench: arena guard: %d model(s) regressed", len(failures))
	}
	return nil
}

package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/benchkernels"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/search"
	"repro/internal/tensor"
)

// This file implements the -json mode: machine-readable benchmark output so
// the performance trajectory is tracked across PRs instead of only living in
// transient test output. One BENCH_<target>.json per paper target; the
// schema (predicted, measured, serving) lives in internal/benchfmt, shared
// with neocpu-loadgen which appends the serving series.

// jsonSchemes are the optimization schemes tracked per model. The first four
// mirror the paper's Table 3 rows (direct template only, for comparability
// with the published ablation); the last adds the winograd algorithm
// dimension of the extended global search.
var jsonSchemes = []struct {
	name            string
	level           core.OptLevel
	disableWinograd bool
}{
	{"baseline-nchw", core.OptNone, true},
	{"layout-opt", core.OptLayout, true},
	{"transform-elim", core.OptTransformElim, true},
	{"global-search", core.OptGlobalSearch, true},
	{"global-search+winograd", core.OptGlobalSearch, false},
}

func writeBenchJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	measured, err := measureHostKernels()
	if err != nil {
		return err
	}
	for _, t := range machine.AllTargets() {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", t.Name))
		doc := benchfmt.File{
			Target:   t.Name,
			CPU:      t.CPU,
			Measured: measured,
		}
		// Regenerating kernel benchmarks must not erase the serving
		// trajectory: loadgen owns that series, so carry it over.
		if prev, err := benchfmt.Load(path); err == nil {
			doc.Serving = prev.Serving
		}
		// The paper's 15 models plus the post-paper extensions (mobilenet-v1:
		// the depthwise-separable scenario).
		for _, name := range models.ExtendedNames() {
			spec, err := models.Get(name)
			if err != nil {
				return err
			}
			for _, sch := range jsonSchemes {
				opts := core.Options{
					Level:           sch.level,
					NoPrepack:       true,
					DisableWinograd: sch.disableWinograd,
				}
				if sch.level == core.OptGlobalSearch {
					opts.Search = search.Options{
						MaxCands:  10,
						ForcePBQP: spec.UsePBQP,
						Threads:   t.Cores,
						Backend:   machine.BackendPool,
						DB:        core.SharedScheduleDB(t, t.Cores, machine.BackendPool),
					}
				}
				g, err := models.BuildShapeOnly(name)
				if err != nil {
					return err
				}
				m, err := core.Compile(g, t, opts)
				if err != nil {
					return fmt.Errorf("neocpu-bench: json %s/%s/%s: %w", t.Name, name, sch.name, err)
				}
				doc.Predicted = append(doc.Predicted, benchfmt.Entry{
					Model:   name,
					Scheme:  sch.name,
					NsPerOp: m.PredictLatency(core.PredictConfig{}) * 1e9,
				})
			}
		}
		if err := doc.Save(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d predicted, %d measured, %d serving entries)\n",
			path, len(doc.Predicted), len(doc.Measured), len(doc.Serving))
	}
	return nil
}

// measureHostKernels times the real Go kernels on the host via
// testing.Benchmark: the direct-vs-winograd matchup on the shared
// internal/benchkernels workload (the same one BenchmarkConvAlgorithm
// reports), and the session execution paths on tiny-resnet.
func measureHostKernels() ([]benchfmt.Entry, error) {
	var out []benchfmt.Entry
	record := func(name string, r testing.BenchmarkResult) error {
		// A b.Fatal inside the closure aborts the benchmark and yields a
		// zeroed result; recording 0 ns/op would poison the trajectory
		// diff, so fail the whole command instead.
		if r.N <= 0 || r.NsPerOp() <= 0 {
			return fmt.Errorf("neocpu-bench: benchmark %q failed (no iterations completed)", name)
		}
		out = append(out, benchfmt.Entry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		return nil
	}

	for _, blk := range []int{8, 16} {
		for _, k := range []struct {
			name string
			iter func()
		}{
			{fmt.Sprintf("conv-algorithm/direct-NCHW%dc", blk), benchkernels.DirectBlocked(blk)},
			{fmt.Sprintf("conv-algorithm/winograd-NCHW%dc", blk), benchkernels.WinogradBlocked(blk)},
		} {
			iter := k.iter
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					iter()
				}
			})
			if err := record(k.name, r); err != nil {
				return nil, err
			}
		}
	}

	// Session benchmarks: the entry name promises which execution path was
	// measured, so each case verifies its plan before timing — trajectory
	// data that silently measures the wrong path would poison every diff.
	winogradGuard := func(want bool) func(*core.Module) error {
		return func(m *core.Module) error {
			winogradConvs := 0
			for _, n := range m.Graph.Convs() {
				if n.Sched.Algorithm == machine.AlgoWinograd {
					winogradConvs++
				}
			}
			if want && winogradConvs == 0 {
				return fmt.Errorf("global search scheduled no winograd convolutions")
			}
			if !want && winogradConvs != 0 {
				return fmt.Errorf("winograd scheduled despite DisableWinograd")
			}
			return nil
		}
	}
	interOpGuard := func(m *core.Module) error {
		if m.PlanStats().InterOpLevels == 0 {
			return fmt.Errorf("plan scheduled no inter-op levels")
		}
		return nil
	}
	depthwiseGuard := func(m *core.Module) error {
		// The entry name promises the depthwise kernel was measured: every
		// depthwise conv must carry a shared-block NCHWc schedule.
		dw := 0
		for _, n := range m.Graph.Convs() {
			wl := graph.ConvWorkload(n)
			if !wl.Depthwise() {
				continue
			}
			dw++
			if n.Sched.Layout.Kind != tensor.LayoutNCHWc || n.Sched.ICBlock != n.Sched.OCBlock {
				return fmt.Errorf("depthwise conv %v scheduled as %v, want shared-block NCHWc", n, n.Sched)
			}
		}
		if dw == 0 {
			return fmt.Errorf("no depthwise convolutions in the compiled graph")
		}
		return nil
	}
	serial := core.Options{Level: core.OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial}
	serialNoWino := serial
	serialNoWino.DisableWinograd = true
	// The inter-op matchup: the same branchy model, same 4-wide pool, with
	// the executor's level dispatch off vs on. On a multi-core host the
	// inter-op entry tracks the branchy-model speedup; the arena bytes track
	// the memory planner across PRs.
	pool4 := core.Options{Level: core.OptTransformElim, Threads: 4, Backend: machine.BackendPool}
	pool4Seq := pool4
	pool4Seq.DisableInterOp = true
	for _, cfg := range []struct {
		name      string
		model     func(uint64) *graph.Graph
		opts      core.Options
		planGuard func(*core.Module) error
	}{
		{"session-run/tiny-resnet-direct", models.TinyResNet, serialNoWino, winogradGuard(false)},
		{"session-run/tiny-resnet-winograd", models.TinyResNet, serial, winogradGuard(true)},
		{"session-run/tiny-inception-seq", models.TinyInception, pool4Seq, nil},
		{"session-run/tiny-inception-interop", models.TinyInception, pool4, interOpGuard},
		{"session-run/tiny-mobilenet", models.TinyMobileNet, serial, depthwiseGuard},
	} {
		m, err := core.Compile(cfg.model(1), machine.IntelSkylakeC5(), cfg.opts)
		if err != nil {
			return nil, err
		}
		if cfg.planGuard != nil {
			if err := cfg.planGuard(m); err != nil {
				m.Close()
				return nil, fmt.Errorf("neocpu-bench: %q: %w", cfg.name, err)
			}
		}
		s, err := m.NewSession()
		if err != nil {
			m.Close()
			return nil, err
		}
		img := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		img.FillRandom(3, 1)
		ctx := context.Background()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, img); err != nil {
					b.Fatal(err)
				}
			}
		})
		arena := s.ArenaBytes()
		m.Close()
		if err := record(cfg.name, r); err != nil {
			return nil, err
		}
		out[len(out)-1].ArenaBytes = int64(arena)
	}

	scaling, err := scalingSeries("tiny-resnet", models.TinyResNet)
	if err != nil {
		return nil, err
	}
	out = append(out, scaling...)
	return out, nil
}

// scalingThreadCounts is the thread axis of the scaling series: powers of
// two up to the host's CPU count, with the CPU count itself appended when
// it is not a power of two.
func scalingThreadCounts() []int {
	counts := []int{1}
	for th := 2; th <= runtime.NumCPU(); th *= 2 {
		counts = append(counts, th)
	}
	if last := counts[len(counts)-1]; last != runtime.NumCPU() {
		counts = append(counts, runtime.NumCPU())
	}
	return counts
}

// scalingSeries measures intra-op thread scaling of whole-model session
// execution: the same model recompiled at each thread count (so the
// schedule search re-picks block sizes and parallel grain for that width)
// and timed on the host. Entries are named scaling/<model>/threads-<n> and
// carry the speedup over the single-thread entry of the same series — the
// figure examples/scaling prints and CI's scaling smoke checks.
func scalingSeries(name string, build func(uint64) *graph.Graph) ([]benchfmt.Entry, error) {
	var out []benchfmt.Entry
	var base float64
	for _, th := range scalingThreadCounts() {
		opts := core.Options{Level: core.OptGlobalSearch, Threads: th, Backend: machine.BackendPool}
		if th == 1 {
			opts.Backend = machine.BackendSerial
		}
		m, err := core.Compile(build(1), machine.IntelSkylakeC5(), opts)
		if err != nil {
			return nil, fmt.Errorf("neocpu-bench: scaling/%s threads=%d: %w", name, th, err)
		}
		s, err := m.NewSession()
		if err != nil {
			m.Close()
			return nil, err
		}
		img := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		img.FillRandom(3, 1)
		ctx := context.Background()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(ctx, img); err != nil {
					b.Fatal(err)
				}
			}
		})
		m.Close()
		if r.N <= 0 || r.NsPerOp() <= 0 {
			return nil, fmt.Errorf("neocpu-bench: scaling/%s threads=%d produced no iterations", name, th)
		}
		ns := float64(r.NsPerOp())
		if th == 1 {
			base = ns
		}
		out = append(out, benchfmt.Entry{
			Name:        fmt.Sprintf("scaling/%s/threads-%d", name, th),
			NsPerOp:     ns,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Threads:     th,
			Speedup:     base / ns,
		})
	}
	return out, nil
}

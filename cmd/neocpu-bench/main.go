// Command neocpu-bench regenerates the tables and figures of the paper's
// evaluation section (Section 4) from the simulators in this repository.
//
// Usage:
//
//	neocpu-bench -experiment all
//	neocpu-bench -experiment table2a
//	neocpu-bench -experiment figure4c
//	neocpu-bench -json out/
//
// Experiments: table1, table2a (Intel), table2b (AMD), table2c (ARM),
// table3 (optimization ablation), figure4a/b/c (thread scalability), all.
//
// With -json DIR the command instead emits one machine-readable
// BENCH_<target>.json per paper target: predicted latency (ns/op) for every
// model under every optimization scheme — including the winograd-enabled
// global search — plus real host-kernel measurements (ns/op, B/op) of the
// convolution-algorithm matchup and the session execution paths. CI and
// later PRs diff these files to track the performance trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/pkg/neocpu"
)

func main() {
	exp := flag.String("experiment", "all", "table1|table2a|table2b|table2c|table3|figure4a|figure4b|figure4c|all")
	jsonDir := flag.String("json", "", "write machine-readable BENCH_<target>.json files into this directory and exit")
	arenaGuard := flag.String("arena-guard", "", "compare planned arena bytes against this baseline JSON and exit non-zero on >10% regression")
	arenaWrite := flag.String("write-arena-baseline", "", "measure planned arena bytes and (re)write this baseline JSON")
	flag.Parse()

	if *arenaWrite != "" {
		if err := writeArenaBaseline(*arenaWrite); err != nil {
			fatal(err)
		}
		return
	}
	if *arenaGuard != "" {
		if err := checkArenaBaseline(*arenaGuard); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonDir != "" {
		if err := writeBenchJSON(*jsonDir); err != nil {
			fatal(err)
		}
		return
	}

	runners := map[string]func() error{
		"table1":   func() error { fmt.Println(report.Table1()); return nil },
		"table2a":  func() error { return runTable2("intel-skylake") },
		"table2b":  func() error { return runTable2("amd-epyc") },
		"table2c":  func() error { return runTable2("arm-cortex-a72") },
		"table3":   runTable3,
		"figure4a": func() error { return runFigure4(0) },
		"figure4b": func() error { return runFigure4(1) },
		"figure4c": func() error { return runFigure4(2) },
	}
	order := []string{"table1", "table2a", "table2b", "table2c", "table3", "figure4a", "figure4b", "figure4c"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want one of %v or all)", *exp, order))
	}
	if err := run(); err != nil {
		fatal(err)
	}
}

func runTable2(targetName string) error {
	t, err := neocpu.ParseTarget(targetName)
	if err != nil {
		return err
	}
	rows, err := report.Table2(t)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatTable2(t, rows))
	return nil
}

func runTable3() error {
	rows, err := report.Table3()
	if err != nil {
		return err
	}
	fmt.Print(report.FormatTable3(rows))
	return nil
}

func runFigure4(i int) error {
	spec := report.Figure4Specs()[i]
	series, err := report.Figure4(spec)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatFigure4(spec, series))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neocpu-bench:", err)
	os.Exit(1)
}

// Command neocpu-serve serves CNN inference over HTTP with pooled sessions
// and dynamic micro-batching, speaking a kserve-v2-style JSON protocol. It
// runs in one of two modes:
//
// Single-model: compile a named model in-process and serve it.
//
//	neocpu-serve -model resnet-18 -addr :8000 -pool 4 -max-batch 8
//
// Repository: serve a directory of precompiled artifact bundles
// (neocpu-compile -o). Nothing is searched or packed at boot — bundles
// deserialize straight into executable modules, all models share one arena
// budget with LRU eviction of idle models, and the repository endpoints
// load/unload models live.
//
//	neocpu-serve -repo ./models -arena-budget 268435456 -addr :8000
//
// Endpoints:
//
//	GET  /v2/health/live, /v2/health/ready
//	GET  /v2/models/<model>          metadata
//	GET  /v2/models/<model>/ready
//	POST /v2/models/<model>/infer    {"inputs":[{"name":"input","shape":[1,3,H,W],"datatype":"FP32","data":[...]}]}
//	GET  /v2/models/<model>/stats    per-model pool + batcher counters
//	GET  /v2/stats                   counters (single: one model; repo: all)
//	GET  /v2/repository/index        every model's lifecycle state
//	POST /v2/repository/models/<model>/load
//	POST /v2/repository/models/<model>/unload
//
// By default each pooled session runs serially (one core per in-flight
// batch) so the pool scales throughput across cores; pass -threads N > 1 to
// instead parallelize each single inference over the shared kernel pool.
//
// Besides the registry models (the paper's 15 plus mobilenet-v1), the tiny-*
// test models (tiny-cnn, tiny-resnet, tiny-densenet, tiny-inception,
// tiny-mobilenet, tiny-ssd, tiny-vgg) are accepted for fast smoke tests.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/threadpool"
	"repro/pkg/neocpu"
)

// tinyBuilders are the non-registry smoke-test models.
var tinyBuilders = map[string]func(uint64) *graph.Graph{
	"tiny-cnn":       models.TinyCNN,
	"tiny-resnet":    models.TinyResNet,
	"tiny-densenet":  models.TinyDenseNet,
	"tiny-inception": models.TinyInception,
	"tiny-mobilenet": models.TinyMobileNet,
	"tiny-ssd":       models.TinySSD,
	"tiny-vgg":       models.TinyVGG,
}

func main() {
	model := flag.String("model", "resnet-18", "model name (registry incl. mobilenet-v1, or tiny-cnn/tiny-resnet/tiny-densenet/tiny-inception/tiny-mobilenet/tiny-ssd/tiny-vgg)")
	addr := flag.String("addr", ":8000", "listen address")
	levelName := flag.String("level", "global-search", "baseline-nchw|layout-opt|transform-elim|global-search")
	threads := flag.Int("threads", 1, "kernel threads per inference (1 = serial sessions, pool scales across cores)")
	poolSize := flag.Int("pool", 0, "max pooled sessions, one arena each (0 = auto from planned arena bytes)")
	maxBatch := flag.Int("max-batch", 8, "max requests coalesced per dispatch")
	maxLatency := flag.Duration("max-latency", 2*time.Millisecond, "longest wait for batch stragglers (0 = dispatch immediately)")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 4x max-batch); beyond it requests get 429")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "default per-request deadline budget when the client sends no X-Request-Timeout; expiry answers 504 (0 = no server-side budget)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "how long shutdown/unload lets in-flight batches finish before cancelling them")
	int8Mode := flag.Bool("int8", false, "serve quantized INT8 inference")
	seed := flag.Uint64("seed", 42, "synthetic-weight seed")
	repoDir := flag.String("repo", "", "serve a model repository: directory of .neob bundles (neocpu-compile -o); ignores -model/-level/-int8/-seed")
	arenaBudget := flag.Int("arena-budget", 0, "repository mode: total session-arena bytes across loaded models, LRU-evicting idle models past it (0 = unlimited)")
	accessLog := flag.String("access-log", "", "write one JSON line per inference request to this file (\"-\" = stdout)")
	flag.Parse()

	logW, logClose, err := openAccessLog(*accessLog)
	if err != nil {
		fatal(err)
	}
	defer logClose()

	if *repoDir != "" {
		serveRepository(*repoDir, *addr, *arenaBudget, *threads, *poolSize, *maxBatch,
			*maxLatency, *queueDepth, *requestTimeout, *drainTimeout, logW)
		return
	}

	level, err := neocpu.ParseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	copts := []neocpu.Option{
		neocpu.WithOptLevel(level),
		neocpu.WithSeed(*seed),
	}
	if *threads <= 1 {
		// Serial sessions: each in-flight batch occupies exactly one core,
		// so PoolSize sessions genuinely scale to PoolSize cores.
		copts = append(copts, neocpu.WithBackend(neocpu.BackendSerial))
	} else {
		copts = append(copts, neocpu.WithThreads(*threads))
	}
	if *int8Mode {
		copts = append(copts, neocpu.WithInt8())
	}

	fmt.Printf("compiling %s at %v...\n", *model, level)
	start := time.Now()
	var engine *neocpu.Engine
	if build, ok := tinyBuilders[*model]; ok {
		engine, err = neocpu.CompileGraph(build(*seed), copts...)
	} else {
		engine, err = neocpu.Compile(*model, copts...)
	}
	if err != nil {
		fatal(err)
	}
	defer engine.Close()
	fmt.Printf("compiled in %v; input shape %v\n", time.Since(start).Round(time.Millisecond), engine.InputShape())

	sopts := []neocpu.ServeOption{
		neocpu.WithMaxBatch(*maxBatch),
		neocpu.WithMaxLatency(*maxLatency),
		neocpu.WithRequestTimeout(*requestTimeout),
		neocpu.WithDrainTimeout(*drainTimeout),
	}
	if logW != nil {
		sopts = append(sopts, neocpu.WithAccessLog(logW))
	}
	poolLabel := "auto"
	if *poolSize > 0 {
		sopts = append(sopts, neocpu.WithPoolSize(*poolSize))
		poolLabel = fmt.Sprint(*poolSize)
	}
	if *queueDepth > 0 {
		sopts = append(sopts, neocpu.WithQueueDepth(*queueDepth))
	}

	ps := engine.PlanStats()
	fmt.Printf("plan: %d values in %d slots, %d KiB arena/session (%.1fx vs unplanned), %d levels (%d inter-op)\n",
		ps.Values, ps.Slots, ps.ArenaBytes/1024,
		float64(ps.NaiveArenaBytes)/float64(ps.ArenaBytes), ps.Levels, ps.InterOpLevels)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving %s on %s (pool=%s max-batch=%d max-latency=%v)\n",
		*model, *addr, poolLabel, *maxBatch, *maxLatency)
	if err := neocpu.Serve(ctx, *addr, engine, *model, sopts...); err != nil {
		fatal(err)
	}
	fmt.Println("shut down")
}

// serveRepository boots the repository mode: every bundle in dir is loaded
// at startup (budget permitting), and the repository endpoints load/unload
// models live afterwards.
func serveRepository(dir, addr string, arenaBudget, threads, poolSize, maxBatch int,
	maxLatency time.Duration, queueDepth int, requestTimeout, drainTimeout time.Duration,
	accessLog io.Writer) {
	defaults := serve.Config{
		PoolSize:       poolSize,
		MaxBatch:       maxBatch,
		MaxLatency:     maxLatency,
		RequestTimeout: requestTimeout,
		DrainTimeout:   drainTimeout,
		AccessLog:      accessLog,
	}
	if maxLatency == 0 {
		defaults.MaxLatency = serve.NoLatency
	}
	if requestTimeout == 0 {
		defaults.RequestTimeout = serve.NoTimeout
	}
	if queueDepth > 0 {
		defaults.QueueDepth = queueDepth
	}
	loadOpts := core.Options{Threads: 1, Backend: machine.BackendSerial}
	if threads > 1 {
		// All loaded models borrow one kernel pool, so N models do not stack
		// N×threads worker goroutines.
		shared := threadpool.NewPool(threads)
		defer shared.Close()
		loadOpts = core.Options{Threads: threads, Backend: machine.BackendPool, SharedPool: shared}
	}
	reg, err := serve.NewRegistry(
		&serve.DirSource{Dir: dir, Resolve: models.ResolveGraph},
		serve.RegistryConfig{ArenaBudget: arenaBudget, Defaults: defaults, LoadOptions: loadOpts},
	)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(reg.Index()))
	for _, m := range reg.Index() {
		names = append(names, m.Name)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no %s bundles in %s (produce them with neocpu-compile -o)", serve.BundleExt, dir))
	}
	fmt.Printf("repository %s: %d bundle(s): %v\n", dir, len(names), names)
	for _, name := range names {
		start := time.Now()
		if err := reg.Load(name); err != nil {
			// Over-budget boots leave the overflow models available for
			// explicit loads (which evict someone idle) instead of failing.
			fmt.Printf("  %-20s not loaded: %v\n", name, err)
			continue
		}
		st, _ := reg.ModelStatsFor(name)
		fmt.Printf("  %-20s loaded in %v (%d KiB arena/session, pool<=%d)\n",
			name, time.Since(start).Round(time.Millisecond),
			st.Pool.ArenaBytesPerSession/1024, st.Pool.MaxSize)
	}

	srv, err := serve.NewRepository(reg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	budgetLabel := "unlimited"
	if arenaBudget > 0 {
		budgetLabel = fmt.Sprintf("%d KiB", arenaBudget/1024)
	}
	fmt.Printf("serving repository on %s (arena budget %s)\n", addr, budgetLabel)
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		// Graceful handoff: stop admission (readiness goes false so load
		// balancers route away), let in-flight requests finish under the
		// HTTP shutdown grace, then tear the registry down.
		fmt.Println("draining...")
		srv.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		fmt.Println("shut down")
	case err := <-errc:
		fatal(err)
	}
}

// openAccessLog resolves the -access-log flag: "" disables, "-" is stdout,
// anything else appends to the named file.
func openAccessLog(path string) (io.Writer, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return os.Stdout, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("access log: %w", err)
	}
	return f, func() { f.Close() }, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neocpu-serve:", err)
	os.Exit(1)
}

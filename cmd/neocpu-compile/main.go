// Command neocpu-compile compiles one of the evaluated models for a CPU
// target and reports what the optimization pipeline did: graph statistics
// before and after the passes, the chosen convolution schemes, the number of
// surviving layout transforms, and the predicted end-to-end latency.
//
// Usage:
//
//	neocpu-compile -model resnet-50 -target intel-skylake -level global-search
//
// With -o the command emits a deployable artifact bundle (execution plan,
// packed weights, graph metadata, target signature) that neocpu-serve -repo
// and neocpu.LoadBundle bring up without searching or packing:
//
//	neocpu-compile -model resnet-18 -o models/resnet-18.neob
//
// Emitting a bundle compiles the model executably (weights materialized and
// packed), so it costs more memory and time than the default predict-only
// report.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/pkg/neocpu"
)

func main() {
	model := flag.String("model", "resnet-50", "model name (see internal/models)")
	targetName := flag.String("target", "intel-skylake", strings.Join(neocpu.TargetNames(), "|"))
	levelName := flag.String("level", "global-search", "baseline-nchw|layout-opt|transform-elim|global-search")
	threads := flag.Int("threads", 0, "execution width (0 = all cores)")
	showSchemes := flag.Bool("schemes", false, "print the chosen scheme per convolution")
	savePlan := flag.String("saveplan", "", "write the chosen schemes to this JSON file (re-apply with core.CompileWithPlan)")
	saveBundle := flag.String("o", "", "write a deployable artifact bundle (plan + packed weights) to this file; compiles executably instead of predict-only")
	int8Mode := flag.Bool("int8", false, "compile quantized INT8 inference (with -o, the bundle carries the quantized packed weights)")
	seed := flag.Uint64("seed", 42, "synthetic-weight seed (bundles record it for graph rebuilding)")
	flag.Parse()

	level, err := neocpu.ParseLevel(*levelName)
	if err != nil {
		fatal(err)
	}

	copts := []neocpu.Option{
		neocpu.WithTarget(*targetName),
		neocpu.WithOptLevel(level),
		neocpu.WithThreads(*threads),
		neocpu.WithSeed(*seed),
		// Match the candidate cap the report/baselines simulators use, so
		// printed schemes and saved plans agree with the regenerated tables.
		neocpu.WithSearch(neocpu.SearchOptions{MaxCands: 10}),
	}
	if *saveBundle == "" {
		// Compilation only: WithPredictOnly skips weight materialization, so
		// even VGG-19 compiles in a few MB. Bundles need the real packed
		// weights, so -o compiles executably.
		copts = append(copts, neocpu.WithPredictOnly())
	}
	if *int8Mode {
		copts = append(copts, neocpu.WithInt8())
	}
	var engine *neocpu.Engine
	if slices.Contains(models.TinyNames(), *model) {
		// The tiny-* smoke models live outside the paper registry; they are a
		// few KB, so they always compile executably.
		g, gerr := models.BuildAny(*model, *seed)
		if gerr != nil {
			fatal(gerr)
		}
		engine, err = neocpu.CompileGraph(g, copts...)
	} else {
		engine, err = neocpu.Compile(*model, copts...)
	}
	if err != nil {
		fatal(err)
	}
	defer engine.Close()
	pre, post := engine.Stats()
	g := engine.Graph()
	in := engine.InputShape()

	fmt.Printf("model:    %s (input %dx%dx%d)\n", *model, in[1], in[2], in[3])
	fmt.Printf("target:   %s\n", engine.Target())
	fmt.Printf("level:    %v\n", engine.Level())
	fmt.Printf("graph:    %d nodes -> %d nodes after passes (%d convs, %.2f GFLOPs, %.1fM params)\n",
		pre.Nodes, post.Nodes, post.Convs, post.FLOPs/1e9, float64(post.Params)/1e6)
	fmt.Printf("layout:   %d transform nodes survive (%d physically free)\n",
		g.CountTransforms(), g.CountTransforms()-engine.TransformCount())
	if s, ok := engine.SearchStats(); ok {
		fmt.Printf("search:   %s over %d convs, %d edges, %d candidate states in %v\n",
			s.Algorithm, s.Vars, s.Edges, s.States, s.Elapsed.Round(1000))
	}
	fmt.Printf("latency:  %.2f ms predicted on %d cores\n", engine.PredictLatency()*1000, engine.Threads())

	if *savePlan != "" {
		f, err := os.Create(*savePlan)
		if err != nil {
			fatal(err)
		}
		if err := engine.SavePlan(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("plan:     %d schemes written to %s\n", len(g.Convs()), *savePlan)
	}

	if *saveBundle != "" {
		f, err := os.Create(*saveBundle)
		if err != nil {
			fatal(err)
		}
		if err := engine.SaveBundle(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fi, err := os.Stat(*saveBundle)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bundle:   %d KiB written to %s (load with neocpu-serve -repo or neocpu.LoadBundle)\n",
			fi.Size()/1024, *saveBundle)
	}

	if *showSchemes {
		fmt.Println("\nschemes:")
		convs := g.Convs()
		sort.SliceStable(convs, func(i, j int) bool { return convs[i].ID < convs[j].ID })
		for _, n := range convs {
			wl := graph.ConvWorkload(n)
			fmt.Printf("  %-10s %-40s %v\n", n.Name, wl.Key(), n.Sched)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neocpu-compile:", err)
	os.Exit(1)
}

// Command neocpu-compile compiles one of the evaluated models for a CPU
// target and reports what the optimization pipeline did: graph statistics
// before and after the passes, the chosen convolution schemes, the number of
// surviving layout transforms, and the predicted end-to-end latency.
//
// Usage:
//
//	neocpu-compile -model resnet-50 -target intel-skylake -level global-search
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/search"
)

func main() {
	model := flag.String("model", "resnet-50", "model name (see internal/models)")
	targetName := flag.String("target", "intel-skylake", "intel-skylake|amd-epyc|arm-cortex-a72")
	levelName := flag.String("level", "global-search", "baseline-nchw|layout-opt|transform-elim|global-search")
	threads := flag.Int("threads", 0, "execution width (0 = all cores)")
	showSchemes := flag.Bool("schemes", false, "print the chosen scheme per convolution")
	savePlan := flag.String("saveplan", "", "write the chosen schemes to this JSON file (re-apply with core.CompileWithPlan)")
	flag.Parse()

	t, err := machine.TargetByName(*targetName)
	if err != nil {
		fatal(err)
	}
	level, err := parseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	spec, err := models.Get(*model)
	if err != nil {
		fatal(err)
	}

	g := models.MustBuild(*model, 1)
	pre := g.ComputeStats()

	opts := core.Options{Level: level, Threads: *threads, NoPrepack: true}
	if level == core.OptGlobalSearch {
		opts.Search = search.Options{MaxCands: 10, ForcePBQP: spec.UsePBQP}
	}
	m, err := core.Compile(g, t, opts)
	if err != nil {
		fatal(err)
	}
	post := g.ComputeStats()

	fmt.Printf("model:    %s (%s input %dx%dx%d)\n", spec.Display, *model, spec.InputC, spec.InputH, spec.InputW)
	fmt.Printf("target:   %s\n", t)
	fmt.Printf("level:    %v\n", level)
	fmt.Printf("graph:    %d nodes -> %d nodes after passes (%d convs, %.2f GFLOPs, %.1fM params)\n",
		pre.Nodes, post.Nodes, post.Convs, post.FLOPs/1e9, float64(post.Params)/1e6)
	fmt.Printf("layout:   %d transform nodes survive (%d physically free)\n",
		g.CountTransforms(), g.CountTransforms()-m.TransformCount())
	if m.Search != nil {
		fmt.Printf("search:   %s over %d convs, %d edges, %d candidate states in %v\n",
			m.Search.Algorithm, m.Search.Vars, m.Search.Edges, m.Search.States, m.Search.Elapsed.Round(1000))
	}
	lat := m.PredictLatency(core.PredictConfig{})
	fmt.Printf("latency:  %.2f ms predicted on %d cores (%v)\n", lat*1000, m.Threads(), m.Backend())

	if *savePlan != "" {
		f, err := os.Create(*savePlan)
		if err != nil {
			fatal(err)
		}
		if err := m.SavePlan(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("plan:     %d schemes written to %s\n", len(g.Convs()), *savePlan)
	}

	if *showSchemes {
		fmt.Println("\nschemes:")
		convs := g.Convs()
		sort.SliceStable(convs, func(i, j int) bool { return convs[i].ID < convs[j].ID })
		for _, n := range convs {
			wl := graph.ConvWorkload(n)
			fmt.Printf("  %-10s %-40s %v\n", n.Name, wl.Key(), n.Sched)
		}
	}
}

func parseLevel(s string) (core.OptLevel, error) {
	for _, l := range []core.OptLevel{core.OptNone, core.OptLayout, core.OptTransformElim, core.OptGlobalSearch} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("unknown level %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neocpu-compile:", err)
	os.Exit(1)
}

// MobileNet demo: the depthwise-separable scenario end to end. Compiles the
// full MobileNet-V1 in predict-only mode to report what the global search
// chose for its 13 depthwise layers and the predicted latency on the modeled
// target, then really executes TinyMobileNet (the same structural pattern at
// test size) through a session.
//
//	go run ./examples/mobilenet
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/pkg/neocpu"
)

func main() {
	// 1. Full-size MobileNet-V1 through the global search, predict-only (no
	//    weight materialization): report the per-layer depthwise schemes.
	engine, err := neocpu.Compile("mobilenet-v1",
		neocpu.WithTarget("intel-skylake"),
		neocpu.WithOptLevel(neocpu.LevelGlobalSearch),
		neocpu.WithPredictOnly(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mobilenet-v1 depthwise schedules (global search):")
	for _, n := range engine.Graph().Convs() {
		wl := graph.ConvWorkload(n)
		if !wl.Depthwise() {
			continue
		}
		fmt.Printf("  %-10s %3dx%-3d c=%-4d stride=%d  -> %v\n",
			n.Name, wl.InH, wl.InW, wl.InC, wl.StrideH, n.Sched)
	}
	fmt.Printf("predicted latency on intel-skylake: %.2f ms\n\n", engine.PredictLatency()*1000)

	// 2. TinyMobileNet for real: compile, run, print the top class.
	tiny, err := neocpu.CompileGraph(models.TinyMobileNet(42),
		neocpu.WithTarget("intel-skylake"),
		neocpu.WithOptLevel(neocpu.LevelGlobalSearch),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer tiny.Close()
	sess, err := tiny.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	img := tiny.NewInput()
	img.FillRandom(7, 1)
	outs, err := sess.Run(context.Background(), img)
	if err != nil {
		log.Fatal(err)
	}
	probs := outs[0].Data
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	st := tiny.PlanStats()
	fmt.Printf("tiny-mobilenet: class %d (p=%.3f), arena %d KiB (%d slots for %d values)\n",
		best, probs[best], st.ArenaBytes/1024, st.Slots, st.Values)
}

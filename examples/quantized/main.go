// Quantized inference demo — the paper's Section 6 future-work item
// ("handling model inference in quantized values (e.g. INT8)") built out at
// the operation level: a convolution stack runs in fp32 and in symmetric
// INT8 with per-channel weight scales, comparing numerical agreement on the
// real Go kernels and predicted speedups on the modeled targets.
//
//	go run ./examples/quantized
package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	// A mid-network convolution: 64x28x28 -> 64, 3x3.
	in := tensor.New(tensor.NCHW(), 1, 64, 28, 28)
	in.FillRandom(1, 1)
	wt := tensor.New(tensor.OIHW(), 64, 64, 3, 3)
	wt.FillRandom(2, 0.5)
	attrs := ops.Conv2DAttrs{OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}

	// fp32 blocked reference.
	const blk = 8
	bi := tensor.ToNCHWc(in, blk)
	bw := tensor.PackWeights(wt, blk, blk)
	start := time.Now()
	f32 := ops.Conv2DNCHWc(bi, bw, attrs, blk, blk, 8, true, ops.Epilogue{}, nil)
	f32Time := time.Since(start)

	// INT8 path: quantize, pack into the same blocked layouts, convolve with
	// int32 accumulation, rescale.
	qin := quant.PackActivationNCHWc(quant.Quantize(in), blk)
	qwt := quant.PackWeightsOIHWio(quant.QuantizeWeightsPerChannel(wt), blk, blk)
	start = time.Now()
	i8 := quant.Conv2DInt8NCHWc(qin, qwt, attrs, blk, blk, 8, ops.Epilogue{}, nil)
	i8Time := time.Since(start)

	// Agreement.
	a := tensor.FromNCHWc(f32)
	b := tensor.FromNCHWc(i8)
	var ref2, err2 float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		err2 += d * d
		ref2 += float64(a.Data[i]) * float64(a.Data[i])
	}
	fmt.Printf("fp32 kernel: %v   int8 kernel: %v (host, scalar Go)\n",
		f32Time.Round(time.Microsecond), i8Time.Round(time.Microsecond))
	fmt.Printf("int8 relative RMS error vs fp32: %.4f%%\n", 100*rms(err2, ref2))

	// Predicted speedups on the paper's targets.
	wl := machine.ConvWorkload{InC: 64, InH: 28, InW: 28, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	fmt.Println("\npredicted int8 speedup over fp32 (machine model):")
	for _, t := range machine.AllTargets() {
		s := machine.ConvSchedule{
			Layout:  tensor.NCHWc(t.VectorLanes),
			ICBlock: t.VectorLanes, OCBlock: t.VectorLanes,
			RegN: 8, UnrollKer: true,
		}
		f := t.ConvTime(wl, s, t.Cores, machine.BackendPool, 1)
		q := t.Int8ConvTime(wl, s, t.Cores, machine.BackendPool, 1)
		fmt.Printf("  %-16s %.2fx (ISA factor %.1f)\n", t.Name, f/q, t.Int8Factor())
	}
}

func rms(err2, ref2 float64) float64 {
	if ref2 == 0 {
		return 0
	}
	return math.Sqrt(err2 / ref2)
}

// Thread-scaling demo (Section 3.1.2 / Figure 4 with real wall-clock): the
// same blocked convolution is executed with the custom thread pool and the
// OpenMP-style fork/join runtime at growing thread counts, on this machine.
// The custom pool's lower per-region overhead shows up directly once regions
// become small.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

func main() {
	// A mid-network ResNet convolution, blocked NCHW8c.
	const icb, ocb, regN = 8, 8, 8
	in := tensor.New(tensor.NCHW(), 1, 128, 28, 28)
	in.FillRandom(1, 1)
	wt := tensor.New(tensor.OIHW(), 128, 128, 3, 3)
	wt.FillRandom(2, 0.5)
	attrs := ops.Conv2DAttrs{OutC: 128, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	blockedIn := tensor.ToNCHWc(in, icb)
	blockedWt := tensor.PackWeights(wt, icb, ocb)

	run := func(pf ops.ParallelFor, reps int) time.Duration {
		start := time.Now()
		for i := 0; i < reps; i++ {
			ops.Conv2DNCHWc(blockedIn, blockedWt, attrs, icb, ocb, regN, true, ops.Epilogue{}, pf)
		}
		return time.Since(start) / time.Duration(reps)
	}

	const reps = 20
	serial := run(threadpool.Serial, reps)
	fmt.Printf("conv 128x28x28 -> 128, 3x3 (231 MFLOPs), serial: %v\n\n", serial.Round(time.Microsecond))
	fmt.Printf("%-8s %16s %16s %12s\n", "threads", "thread pool", "omp-style", "pool speedup")

	maxThreads := runtime.GOMAXPROCS(0)
	for n := 1; n <= maxThreads; n *= 2 {
		pool := threadpool.NewPool(n)
		tPool := run(pool.ParallelFor, reps)
		pool.Close()
		omp := threadpool.NewOMPPool(n)
		tOMP := run(omp.ParallelFor, reps)
		fmt.Printf("%-8d %16v %16v %11.2fx\n",
			n, tPool.Round(time.Microsecond), tOMP.Round(time.Microsecond),
			float64(serial)/float64(tPool))
	}

	// Many tiny regions: where fork/join overhead dominates and the pools
	// separate (the paper's OpenMP launch/suppress observation).
	fmt.Println("\n1000 tiny parallel regions (64 units of trivial work each):")
	tiny := func(pf ops.ParallelFor) time.Duration {
		var sink [64]int64
		start := time.Now()
		for r := 0; r < 1000; r++ {
			pf(64, func(i int) { sink[i]++ })
		}
		return time.Since(start)
	}
	pool := threadpool.NewPool(maxThreads)
	defer pool.Close()
	omp := threadpool.NewOMPPool(maxThreads)
	fmt.Printf("  thread pool: %v\n", tiny(pool.ParallelFor).Round(time.Microsecond))
	fmt.Printf("  omp-style:   %v\n", tiny(omp.ParallelFor).Round(time.Microsecond))
}

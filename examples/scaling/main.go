// Scaling demo, three layers of it:
//
// 1. Kernel scaling (Section 3.1.2 / Figure 4 with real wall-clock): the
//    same blocked convolution is executed with the custom thread pool and
//    the OpenMP-style fork/join runtime at growing thread counts.
// 2. Whole-model scaling: the scaling/<model> series recorded by
//    `neocpu-bench -json` (same model recompiled at each thread count, so
//    block sizes and parallel grain are re-searched per width), replayed
//    from BENCH_<target>.json via -bench.
// 3. Serving scaling: a compiled engine behind the HTTP inference server,
//    hammered by concurrent clients — pooled sessions plus the dynamic
//    micro-batcher turn per-request dispatch into coalesced RunBatch calls.
//
//	go run ./cmd/neocpu-bench -json /tmp/bench
//	go run ./examples/scaling -bench /tmp/bench/BENCH_intel-skylake.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/internal/threadpool"
	"repro/pkg/neocpu"
)

func main() {
	benchPath := flag.String("bench", "",
		"path to a BENCH_<target>.json written by `neocpu-bench -json`; its scaling/<model> series is printed as the whole-model scaling table")
	flag.Parse()

	// A mid-network ResNet convolution, blocked NCHW8c.
	const icb, ocb, regN = 8, 8, 8
	in := tensor.New(tensor.NCHW(), 1, 128, 28, 28)
	in.FillRandom(1, 1)
	wt := tensor.New(tensor.OIHW(), 128, 128, 3, 3)
	wt.FillRandom(2, 0.5)
	attrs := ops.Conv2DAttrs{OutC: 128, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	blockedIn := tensor.ToNCHWc(in, icb)
	blockedWt := tensor.PackWeights(wt, icb, ocb)

	run := func(pf ops.ParallelFor, reps int) time.Duration {
		start := time.Now()
		for i := 0; i < reps; i++ {
			ops.Conv2DNCHWc(blockedIn, blockedWt, attrs, icb, ocb, regN, true, ops.Epilogue{}, pf)
		}
		return time.Since(start) / time.Duration(reps)
	}

	const reps = 20
	serial := run(threadpool.Serial, reps)
	fmt.Printf("conv 128x28x28 -> 128, 3x3 (231 MFLOPs), serial: %v\n\n", serial.Round(time.Microsecond))
	fmt.Printf("%-8s %16s %16s %12s\n", "threads", "thread pool", "omp-style", "pool speedup")

	maxThreads := runtime.GOMAXPROCS(0)
	for n := 1; n <= maxThreads; n *= 2 {
		pool := threadpool.NewPool(n)
		tPool := run(pool.ParallelFor, reps)
		pool.Close()
		omp := threadpool.NewOMPPool(n)
		tOMP := run(omp.ParallelFor, reps)
		fmt.Printf("%-8d %16v %16v %11.2fx\n",
			n, tPool.Round(time.Microsecond), tOMP.Round(time.Microsecond),
			float64(serial)/float64(tPool))
	}

	// Many tiny regions: where fork/join overhead dominates and the pools
	// separate (the paper's OpenMP launch/suppress observation).
	fmt.Println("\n1000 tiny parallel regions (64 units of trivial work each):")
	tiny := func(pf ops.ParallelFor) time.Duration {
		var sink [64]int64
		start := time.Now()
		for r := 0; r < 1000; r++ {
			pf(64, func(i int) { sink[i]++ })
		}
		return time.Since(start)
	}
	pool := threadpool.NewPool(maxThreads)
	defer pool.Close()
	omp := threadpool.NewOMPPool(maxThreads)
	fmt.Printf("  thread pool: %v\n", tiny(pool.ParallelFor).Round(time.Microsecond))
	fmt.Printf("  omp-style:   %v\n", tiny(omp.ParallelFor).Round(time.Microsecond))

	modelScaling(*benchPath)
	servingDemo()
}

// benchDoc mirrors the slice of BENCH_<target>.json this demo consumes: the
// measured scaling/<model>/threads-<n> entries neocpu-bench records (see
// cmd/neocpu-bench/json.go for the full schema).
type benchDoc struct {
	Target   string `json:"target"`
	Measured []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
		Threads int     `json:"threads"`
		Speedup float64 `json:"speedup"`
	} `json:"measured"`
}

// modelScaling replays the whole-model scaling series out of a BENCH json
// file: unlike the kernel table above (one convolution, fixed schedule), each
// entry there was compiled fresh at its thread count, so the searched block
// sizes and parallel grain differ along the thread axis.
func modelScaling(path string) {
	fmt.Println("\nwhole-model scaling (scaling/<model> series from neocpu-bench -json):")
	if path == "" {
		fmt.Println("  no -bench file given; record one with: go run ./cmd/neocpu-bench -json <dir>")
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		panic(fmt.Sprintf("%s: %v", path, err))
	}
	rows := 0
	for _, e := range doc.Measured {
		if !strings.HasPrefix(e.Name, "scaling/") {
			continue
		}
		if rows == 0 {
			fmt.Printf("  %-34s %8s %14s %9s\n", "series", "threads", "ns/op", "speedup")
		}
		fmt.Printf("  %-34s %8d %14.0f %8.2fx\n", e.Name, e.Threads, e.NsPerOp, e.Speedup)
		rows++
	}
	if rows == 0 {
		fmt.Printf("  %s holds no scaling/ entries; regenerate it with a current neocpu-bench\n", path)
	}
}

// servingDemo scales the other axis: many concurrent requests against one
// engine. Serial sessions make each in-flight batch occupy one core, the
// pool bounds concurrency, and the micro-batcher coalesces whatever piles
// up while sessions are busy.
func servingDemo() {
	fmt.Println("\nserving: 32 concurrent clients, pooled sessions + micro-batching:")
	engine, err := neocpu.CompileGraph(models.TinyResNet(42),
		neocpu.WithOptLevel(neocpu.LevelTransformElim),
		neocpu.WithBackend(neocpu.BackendSerial),
	)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	// The compile-time execution plan is what makes pooled sessions cheap:
	// liveness analysis packs every intermediate into a few shared slots.
	ps := engine.PlanStats()
	fmt.Printf("  plan: %d values in %d shared slots, %s arena (vs %s unplanned, %.1fx), %d levels (%d inter-op, %d hybrid)\n",
		ps.Values, ps.Slots, byteSize(ps.ArenaBytes), byteSize(ps.NaiveArenaBytes),
		float64(ps.NaiveArenaBytes)/float64(ps.ArenaBytes), ps.Levels, ps.InterOpLevels, ps.HybridLevels)
	srv, err := neocpu.NewServer(engine, "tiny-resnet",
		neocpu.WithPoolSize(runtime.GOMAXPROCS(0)),
		neocpu.WithMaxBatch(8),
		neocpu.WithMaxLatency(2*time.Millisecond),
		neocpu.WithQueueDepth(128),
	)
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in := engine.NewInput()
	in.FillRandom(7, 1)
	body, _ := json.Marshal(map[string]any{
		"inputs": []map[string]any{{
			"name": "input", "shape": in.Shape, "datatype": "FP32", "data": in.Data,
		}},
	})

	const clients = 32
	const runsEach = 4
	start := time.Now()
	var wg sync.WaitGroup
	var failed sync.Map
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				resp, err := ts.Client().Post(ts.URL+"/v2/models/tiny-resnet/infer",
					"application/json", bytes.NewReader(body))
				if err != nil {
					failed.Store(c, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Store(c, fmt.Errorf("status %d", resp.StatusCode))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	failed.Range(func(k, v any) bool { panic(fmt.Sprintf("client %v: %v", k, v)) })

	st := srv.Stats()
	fmt.Printf("  %d requests in %v (%.0f req/s)\n",
		st.Batch.Items, elapsed.Round(time.Millisecond),
		float64(st.Batch.Items)/elapsed.Seconds())
	fmt.Printf("  batches: %d, mean size %.2f, max %d (coalesced by the %dms window)\n",
		st.Batch.Batches, float64(st.Batch.Items)/float64(st.Batch.Batches),
		st.Batch.MaxObserved, 2)
	fmt.Printf("  pool: %d/%d sessions, %d waits, %s arena/session\n",
		st.Pool.Size, st.Pool.MaxSize, st.Pool.Waits, byteSize(st.Pool.ArenaBytesPerSession))
}

func byteSize(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Object detection with a compact SSD: a multi-scale detector with the same
// head structure as the paper's SSD-ResNet-50 (class/location convolutions
// per scale feeding multibox decoding and NMS), sized so the pure-Go kernels
// run in a second. The custom graph compiles through neocpu.CompileGraph;
// the global search for SSD-shaped graphs uses the PBQP approximation, as in
// the paper.
//
//	go run ./examples/objectdetect
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/pkg/neocpu"
)

const numClasses = 20

func buildCompactSSD() *graph.Graph {
	b := graph.NewBuilder("compact-ssd", 77)
	x := b.Input(3, 128, 128)
	// Backbone.
	x = b.ConvBNReLU(x, 32, 3, 2, 1) // 64
	x = b.ConvBNReLU(x, 64, 3, 1, 1)
	s0 := b.ConvBNReLU(x, 64, 3, 2, 1)   // 32x32
	s1 := b.ConvBNReLU(s0, 128, 3, 2, 1) // 16x16
	s2 := b.ConvBNReLU(s1, 128, 3, 2, 1) // 8x8

	attrs := graph.SSDHeadAttrs{
		NumClasses: numClasses,
		Sizes: [][]float32{
			{0.1, 0.16}, {0.25, 0.35}, {0.45, 0.55},
		},
		Ratios: [][]float32{
			{1, 2, 0.5}, {1, 2, 0.5}, {1, 2, 0.5},
		},
		Detection: ops.DefaultMultiBoxDetectionAttrs(),
	}
	attrs.Detection.ScoreThresh = 0.08

	var pairs []*graph.Node
	for i, s := range []*graph.Node{s0, s1, s2} {
		per := len(attrs.Sizes[i]) + len(attrs.Ratios[i]) - 1
		cls := b.Conv(s, per*(numClasses+1), 3, 1, 1)
		loc := b.Conv(s, per*4, 3, 1, 1)
		pairs = append(pairs, cls, loc)
	}
	return b.Finish(b.SSDHead(attrs, pairs...))
}

func main() {
	engine, err := neocpu.CompileGraph(buildCompactSSD(),
		neocpu.WithTarget("intel-skylake"),
		neocpu.WithOptLevel(neocpu.LevelGlobalSearch),
		neocpu.WithThreads(runtime.GOMAXPROCS(0)),
		neocpu.WithSearch(neocpu.SearchOptions{MaxCands: 8, ForcePBQP: true}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	if s, ok := engine.SearchStats(); ok {
		fmt.Printf("compiled compact-ssd: global search used %s over %d convs\n", s.Algorithm, s.Vars)
	}

	img := tensor.New(tensor.NCHW(), 1, 3, 128, 128)
	img.FillRandom(9, 1)
	sess, err := engine.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	outs, err := sess.Run(context.Background(), img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inference in %v on %d host threads\n",
		time.Since(start).Round(time.Millisecond), runtime.GOMAXPROCS(0))

	dets := outs[0]
	n := dets.Shape[1]
	fmt.Printf("%d detections after NMS; top 5:\n", n)
	for i := 0; i < n && i < 5; i++ {
		row := dets.Data[i*6 : (i+1)*6]
		fmt.Printf("  class=%2.0f score=%.3f box=(%.2f, %.2f)-(%.2f, %.2f)\n",
			row[0], row[1], row[2], row[3], row[4], row[5])
	}

	// Batched detection over a short "clip": RunBatch amortizes dispatch and
	// reuses the arena across frames, returning deep copies per frame.
	frames := make([]*tensor.Tensor, 4)
	for i := range frames {
		frames[i] = tensor.New(tensor.NCHW(), 1, 3, 128, 128)
		frames[i].FillRandom(uint64(100+i), 1)
	}
	start = time.Now()
	batch, err := sess.RunBatch(context.Background(), frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch of %d frames in %v:\n", len(frames), time.Since(start).Round(time.Millisecond))
	for i, outs := range batch {
		fmt.Printf("  frame %d: %d detections\n", i, outs[0].Shape[1])
	}
}

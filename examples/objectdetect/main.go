// Object detection with a compact SSD: a multi-scale detector with the same
// head structure as the paper's SSD-ResNet-50 (class/location convolutions
// per scale feeding multibox decoding and NMS), sized so the pure-Go kernels
// run in a second. The global search for SSD-shaped graphs uses the PBQP
// approximation, as in the paper.
//
//	go run ./examples/objectdetect
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/search"
	"repro/internal/tensor"
)

const numClasses = 20

func buildCompactSSD() *graph.Graph {
	b := graph.NewBuilder("compact-ssd", 77)
	x := b.Input(3, 128, 128)
	// Backbone.
	x = b.ConvBNReLU(x, 32, 3, 2, 1) // 64
	x = b.ConvBNReLU(x, 64, 3, 1, 1)
	s0 := b.ConvBNReLU(x, 64, 3, 2, 1)   // 32x32
	s1 := b.ConvBNReLU(s0, 128, 3, 2, 1) // 16x16
	s2 := b.ConvBNReLU(s1, 128, 3, 2, 1) // 8x8

	attrs := graph.SSDHeadAttrs{
		NumClasses: numClasses,
		Sizes: [][]float32{
			{0.1, 0.16}, {0.25, 0.35}, {0.45, 0.55},
		},
		Ratios: [][]float32{
			{1, 2, 0.5}, {1, 2, 0.5}, {1, 2, 0.5},
		},
		Detection: ops.DefaultMultiBoxDetectionAttrs(),
	}
	attrs.Detection.ScoreThresh = 0.08

	var pairs []*graph.Node
	for i, s := range []*graph.Node{s0, s1, s2} {
		per := len(attrs.Sizes[i]) + len(attrs.Ratios[i]) - 1
		cls := b.Conv(s, per*(numClasses+1), 3, 1, 1)
		loc := b.Conv(s, per*4, 3, 1, 1)
		pairs = append(pairs, cls, loc)
	}
	return b.Finish(b.SSDHead(attrs, pairs...))
}

func main() {
	g := buildCompactSSD()
	target := machine.IntelSkylakeC5()
	mod, err := core.Compile(g, target, core.Options{
		Level:   core.OptGlobalSearch,
		Threads: runtime.GOMAXPROCS(0),
		Search:  search.Options{MaxCands: 8, ForcePBQP: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mod.Close()
	fmt.Printf("compiled %s: global search used %s over %d convs\n",
		g.Name, mod.Search.Algorithm, mod.Search.Vars)

	img := tensor.New(tensor.NCHW(), 1, 3, 128, 128)
	img.FillRandom(9, 1)
	start := time.Now()
	outs, err := mod.Run(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inference in %v on %d host threads\n",
		time.Since(start).Round(time.Millisecond), runtime.GOMAXPROCS(0))

	dets := outs[0]
	n := dets.Shape[1]
	fmt.Printf("%d detections after NMS; top 5:\n", n)
	for i := 0; i < n && i < 5; i++ {
		row := dets.Data[i*6 : (i+1)*6]
		fmt.Printf("  class=%2.0f score=%.3f box=(%.2f, %.2f)-(%.2f, %.2f)\n",
			row[0], row[1], row[2], row[3], row[4], row[5])
	}
}

// Quickstart: compile ResNet-18 with the full NeoCPU optimization pipeline
// and run one inference on a synthetic image.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

func main() {
	// 1. Build the model graph (synthetic seeded weights).
	g := models.MustBuild("resnet-18", 42)

	// 2. Compile for a CPU target. The target drives the schedule search;
	//    execution happens on the host with however many threads you ask for.
	target := machine.IntelSkylakeC5()
	mod, err := core.Compile(g, target, core.Options{
		Level:   core.OptGlobalSearch,
		Threads: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mod.Close()

	// 3. Run an inference.
	img := tensor.New(tensor.NCHW(), 1, 3, 224, 224)
	img.FillRandom(7, 1)
	outs, err := mod.Run(img)
	if err != nil {
		log.Fatal(err)
	}

	probs := outs[0]
	bestClass, bestP := 0, float32(0)
	for i, p := range probs.Data {
		if p > bestP {
			bestClass, bestP = i, p
		}
	}
	fmt.Printf("compiled %s with %v: %d convolutions, %d layout transforms survive\n",
		g.Name, mod.Level, len(g.Convs()), mod.TransformCount())
	fmt.Printf("predicted latency on %s: %.2f ms\n",
		target.Name, mod.PredictLatency(core.PredictConfig{})*1000)
	fmt.Printf("top class: %d (p=%.4f)\n", bestClass, bestP)
}

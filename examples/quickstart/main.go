// Quickstart: compile ResNet-18 with the full NeoCPU optimization pipeline
// through the public pkg/neocpu API and run one inference on a synthetic
// image.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro/pkg/neocpu"
)

func main() {
	// 1. Compile for a CPU target. The target drives the schedule search;
	//    execution happens on the host with however many threads you ask for.
	engine, err := neocpu.Compile("resnet-18",
		neocpu.WithTarget("intel-skylake"),
		neocpu.WithOptLevel(neocpu.LevelGlobalSearch),
		neocpu.WithThreads(runtime.GOMAXPROCS(0)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	// 2. Run an inference through a session (reusable arena; create one per
	//    goroutine when serving concurrently).
	sess, err := engine.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	img := engine.NewInput()
	img.FillRandom(7, 1)
	outs, err := sess.Run(context.Background(), img)
	if err != nil {
		log.Fatal(err)
	}

	probs := outs[0]
	bestClass, bestP := 0, float32(0)
	for i, p := range probs.Data {
		if p > bestP {
			bestClass, bestP = i, p
		}
	}
	_, stats := engine.Stats()
	fmt.Printf("compiled resnet-18 with %v: %d convolutions, %d layout transforms survive\n",
		engine.Level(), stats.Convs, engine.TransformCount())
	fmt.Printf("predicted latency on %s: %.2f ms\n",
		engine.Target().Name, engine.PredictLatency()*1000)
	fmt.Printf("top class: %d (p=%.4f)\n", bestClass, bestP)
}

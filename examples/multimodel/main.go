// Multi-model serving walkthrough: three models are compiled once into
// artifact bundles (the neocpu-compile -o format), then brought up through a
// model registry whose arena budget only fits two at a time — so the third
// load must evict the least-recently-used idle model, and a later request
// for the evicted model reloads it on demand. This is the repository half of
// the paper's serving setting: compilation (minutes of search) happens once,
// offline; the serving host only deserializes finished plans and packed
// weights.
//
//	go run ./examples/multimodel
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	dir, err := os.MkdirTemp("", "neocpu-repo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Offline: compile each model and emit its bundle. ---
	names := []string{"tiny-cnn", "tiny-resnet", "tiny-vgg"}
	arenas := map[string]int{}
	fmt.Println("compiling bundles (once, offline):")
	for _, name := range names {
		g, err := models.BuildAny(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := core.Compile(g, machine.IntelSkylakeC5(), core.Options{
			Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial,
		})
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.SaveBundle(&buf); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, name+serve.BundleExt)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		arenas[name] = m.PlanStats().ArenaBytes
		m.Close()
		fmt.Printf("  %-12s %3d KiB bundle, %3d KiB arena/session\n",
			name, buf.Len()/1024, arenas[name]/1024)
	}

	// --- Online: a registry whose budget fits any two models (one session
	// each) but never all three. ---
	budget := arenas["tiny-cnn"] + arenas["tiny-resnet"] + arenas["tiny-vgg"] - 1
	overrides := map[string]serve.Config{}
	for _, name := range names {
		overrides[name] = serve.Config{PoolSize: 1, MaxLatency: serve.NoLatency}
	}
	reg, err := serve.NewRegistry(
		&serve.DirSource{Dir: dir, Resolve: models.ResolveGraph},
		serve.RegistryConfig{
			ArenaBudget: budget,
			Overrides:   overrides,
			LoadOptions: core.Options{Threads: 1, Backend: machine.BackendSerial},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()
	fmt.Printf("\nregistry budget: %d KiB (any two fit, all three never do)\n", budget/1024)

	report := func(when string) {
		fmt.Printf("%s:\n", when)
		for _, m := range reg.Index() {
			fmt.Printf("  %-12s %-9s (%d KiB reserved)\n", m.Name, m.State, m.ArenaReservedBytes/1024)
		}
	}

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(reg.Load("tiny-cnn"))
	must(reg.Load("tiny-resnet"))
	report("\nafter loading tiny-cnn and tiny-resnet")

	// Touch tiny-cnn so tiny-resnet becomes the least recently used.
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(7, 1)
	if _, err := reg.Infer(context.Background(), "tiny-cnn", in); err != nil {
		log.Fatal(err)
	}

	// The third load does not fit: the registry evicts the LRU idle model.
	must(reg.Load("tiny-vgg"))
	report("\nafter loading tiny-vgg (tiny-resnet was LRU -> evicted)")

	// The evicted model is gone until someone asks for it again...
	if _, err := reg.Infer(context.Background(), "tiny-resnet", in); err != nil {
		fmt.Printf("\ninfer on evicted model: %v\n", err)
	}
	// ...at which point an explicit load brings it back, evicting in turn.
	must(reg.Load("tiny-resnet"))
	outs, err := reg.Infer(context.Background(), "tiny-resnet", in)
	if err != nil {
		log.Fatal(err)
	}
	report("\nafter reloading tiny-resnet")
	fmt.Printf("\nreloaded tiny-resnet serves: output %v, first logits %.4f %.4f %.4f\n",
		outs[0].Shape, outs[0].Data[0], outs[0].Data[1], outs[0].Data[2])
	fmt.Printf("evictions: %d\n", reg.Evictions())
}

// Image classification end to end: a synthetic "camera frame" is normalized,
// run through ResNet-50 compiled at each optimization level of Table 3, and
// the levels are compared — same top-5 output, different predicted cost.
//
//	go run ./examples/imageclassify
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"

	"repro/internal/tensor"
	"repro/pkg/neocpu"
)

func main() {
	// A fake 224x224 RGB frame, ImageNet-style normalized.
	frame := tensor.New(tensor.NCHW(), 1, 3, 224, 224)
	frame.FillRandom(123, 1)
	normalize(frame)

	type result struct {
		level neocpu.Level
		ms    float64
		top5  []int
	}
	var results []result
	for _, level := range neocpu.Levels() {
		engine, err := neocpu.Compile("resnet-50",
			neocpu.WithOptLevel(level),
			neocpu.WithThreads(runtime.GOMAXPROCS(0)),
			neocpu.WithSeed(42), // identical weights at every level
		)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := engine.NewSession()
		if err != nil {
			log.Fatal(err)
		}
		outs, err := sess.Run(context.Background(), frame)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{
			level: level,
			ms:    engine.PredictLatency() * 1000,
			top5:  top5(outs[0]),
		})
		engine.Close()
		fmt.Printf("%-16v predicted %7.2f ms on %s, top-5 %v\n",
			level, results[len(results)-1].ms, engine.Target().Name, results[len(results)-1].top5)
	}

	// The optimizations must not change the answer (Section 4's sanity
	// check).
	for _, r := range results[1:] {
		for i := range r.top5 {
			if r.top5[i] != results[0].top5[i] {
				log.Fatalf("%v changed the model output!", r.level)
			}
		}
	}
	fmt.Printf("\nall levels agree on the top-5; end-to-end speedup %0.1fx\n",
		results[0].ms/results[len(results)-1].ms)
}

func normalize(t *tensor.Tensor) {
	mean := [3]float32{0.485, 0.456, 0.406}
	std := [3]float32{0.229, 0.224, 0.225}
	hw := t.Shape[2] * t.Shape[3]
	for c := 0; c < 3; c++ {
		seg := t.Data[c*hw : (c+1)*hw]
		for i := range seg {
			seg[i] = (seg[i] - mean[c]) / std[c]
		}
	}
}

func top5(probs *tensor.Tensor) []int {
	idx := make([]int, probs.Shape[1])
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return probs.Data[idx[a]] > probs.Data[idx[b]] })
	return idx[:5]
}

// Autotune walkthrough: the two-stage optimization-scheme search of Section
// 3.3, made visible. The local search exhausts the candidate space for one
// convolution workload; the global search (DP) then combines per-conv
// schemes across a small residual network, and we compare it with the
// uniform plan it beats.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/search"
)

func main() {
	target := machine.IntelSkylakeC5()

	// --- Stage 1: local search for a single ResNet-50 workload. ---
	wl := machine.ConvWorkload{
		InC: 128, InH: 28, InW: 28, OutC: 128, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}
	fmt.Printf("local search for %s on %s\n", wl.Key(), target.Name)
	results := schedule.LocalSearch(wl, target, schedule.CostModelEvaluator(target))
	fmt.Printf("  %d candidate schedules evaluated\n", len(results))
	fmt.Println("  best 5:")
	for _, r := range results[:5] {
		fmt.Printf("    %-40v %8.1f us\n", r.Sched, r.Time*1e6)
	}
	worst := results[len(results)-1]
	fmt.Printf("  worst: %-38v %8.1f us (%.1fx slower)\n",
		worst.Sched, worst.Time*1e6, worst.Time/results[0].Time)

	// --- Stage 2: global search over a residual network. ---
	b := graph.NewBuilder("demo-resnet", 5)
	x := b.Input(16, 56, 56)
	stem := b.ConvBNReLU(x, 64, 3, 1, 1)
	for i := 0; i < 3; i++ {
		br := b.ConvBNReLU(stem, 64, 3, 1, 1)
		br = b.BatchNorm(b.Conv(br, 64, 3, 1, 1))
		stem = b.ReLU(b.Add(br, stem))
	}
	g := b.Finish(b.Dense(b.Flatten(b.GlobalAvgPool(stem)), 10))
	if err := graph.Optimize(g); err != nil {
		log.Fatal(err)
	}

	db := schedule.NewDB()
	out, err := search.GlobalSearch(g, target, search.Options{
		MaxCands: 12, DB: db, Threads: target.Cores, Backend: machine.BackendPool,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal search over %s: %d convs, %d edges, solved by %s in %v\n",
		g.Name, out.Vars, out.Edges, out.Algorithm, out.Elapsed)
	fmt.Printf("  objective (conv + transform time): %.3f ms\n", out.Cost*1000)
	fmt.Println("  chosen schemes:")
	for _, n := range g.Convs() {
		fmt.Printf("    %-8s %v\n", n.Name, out.Plan[n])
	}

	// Compare against the uniform-x plan of Section 3.2.
	p, err := search.BuildProblem(g, target, search.BuildOptions{
		MaxCands: 1000, DB: db, Threads: target.Cores, Backend: machine.BackendPool,
	})
	if err != nil {
		log.Fatal(err)
	}
	uniform := make([]int, len(p.Vars))
	for i, v := range p.Vars {
		uniform[i] = -1
		for j, r := range v.Cands {
			if r.Sched.ICBlock == 16 && r.Sched.OCBlock == 16 {
				uniform[i] = j
				break
			}
		}
	}
	fmt.Printf("  uniform NCHW16c plan objective: %.3f ms (search wins by %.1f%%)\n",
		p.Objective(uniform)*1000, 100*(p.Objective(uniform)-out.Cost)/p.Objective(uniform))

	// The same search through PBQP, for comparison.
	assign, cost := search.PBQP(p)
	_ = assign
	fmt.Printf("  PBQP approximation objective:   %.3f ms (>= %.1f%% of optimal)\n",
		cost*1000, 100*out.Cost/cost)
}

// Command linkcheck validates the relative links in markdown files: every
// `[text](target)` whose target is not an external URL or a pure anchor must
// resolve to an existing file or directory relative to the markdown file.
// Wired into CI over README.md and the docs/ tree so documentation
// restructures can never leave dangling links.
//
// Usage:
//
//	go run ./ci/linkcheck <file-or-dir> [<file-or-dir>...]
//
// Directories are walked recursively for *.md files. Exits non-zero listing
// every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links; images share the syntax and are
// checked the same way.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file-or-dir> [<file-or-dir>...]")
		os.Exit(2)
	}
	var mdFiles []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			mdFiles = append(mdFiles, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				mdFiles = append(mdFiles, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	checked := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		inFence := false
		for lineNo, line := range strings.Split(string(data), "\n") {
			// Fenced code blocks may legitimately contain link-shaped text
			// (example snippets, slice expressions); skip them entirely.
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				// Drop a #fragment; the file part is what must exist.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
					if target == "" {
						continue
					}
				}
				checked++
				resolved := filepath.Join(filepath.Dir(md), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (resolved %s)\n", md, lineNo+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s), %d relative link(s) ok\n", len(mdFiles), checked)
}

// skip reports whether a link target is out of scope: external URLs, mail
// links, and in-page anchors.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// Command lintdoc enforces the godoc contract on a package: every exported
// top-level declaration (functions, methods, types, and each name in exported
// var/const groups) must carry a doc comment. It is the repository's
// equivalent of revive's `exported` rule, with no dependency outside the
// standard library, wired into CI for pkg/neocpu so the public API can never
// grow undocumented symbols.
//
// Usage:
//
//	go run ./ci/lintdoc <package-dir> [<package-dir>...]
//
// Exits non-zero listing every undocumented exported symbol.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir> [<package-dir>...]")
		os.Exit(2)
	}
	var failures []string
	for _, dir := range os.Args[1:] {
		fails, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		failures = append(failures, fails...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported symbol(s) missing doc comments\n", len(failures))
		os.Exit(1)
	}
	fmt.Println("lintdoc: all exported symbols documented")
}

func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	var failures []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		failures = append(failures, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return failures, nil
}

// exportedRecv reports whether a method's receiver type is exported (plain
// functions count as exported receivers).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// lintGenDecl checks type/var/const declarations. A doc comment on the decl
// group covers a single-spec declaration; within grouped specs each exported
// name needs its own comment (doc or trailing line comment — the idiom for
// enum-style const blocks).
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				// Covered by: the group comment (ungrouped decl), the spec's
				// own doc, or a trailing comment.
				if (len(d.Specs) == 1 && d.Doc != nil) || s.Doc != nil || s.Comment != nil {
					continue
				}
				report(name.Pos(), kind, name.Name)
			}
		}
	}
}

// Package search implements the global optimization-scheme search of
// Section 3.3.2: choosing one schedule per convolution so that the sum of
// convolution execution times and inter-convolution layout-transformation
// times is minimized over the whole graph.
//
// The objective decomposes over the "conv dependency graph": one variable per
// convolution whose domain is its local-search candidate schemes, a unary
// cost (the convolution's own time plus any transforms against fixed-layout
// boundaries such as the graph input or Flatten), and pairwise costs on
// edges between convolutions whose layouts interact (producer→consumer
// chains, fused residuals, and concat/add layout ties). This is exactly the
// structure of the PBQP register-allocation formulation the paper reduces
// to; the package provides three solvers: exhaustive enumeration (testing
// only), the dynamic program of Algorithm 2 (exact, with a state budget),
// and the PBQP heuristic used when DP goes intractable (SSD).
package search

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// Var is one decision variable: a convolution and its candidate schemes.
type Var struct {
	Node *graph.Node
	// Cands are the per-(ic_bn, oc_bn)-pair best schedules from local
	// search, ascending by time.
	Cands []schedule.Result
	// Unary[j] is the cost of choosing candidate j independent of other
	// variables: the convolution's execution time plus transform costs
	// against fixed-layout boundaries.
	Unary []float64
}

// Edge is a pairwise cost between two variables: Cost[ja][jb] is added when
// A takes candidate ja and B takes jb.
type Edge struct {
	A, B int
	Cost [][]float64
}

// Problem is the extracted global-search instance.
type Problem struct {
	Vars  []*Var
	Edges []*Edge
	// adj[i] lists indexes into Edges touching variable i.
	adj [][]int
}

// NumStates returns the total candidate count across variables.
func (p *Problem) NumStates() int {
	n := 0
	for _, v := range p.Vars {
		n += len(v.Cands)
	}
	return n
}

// Objective evaluates a full assignment (candidate index per variable).
func (p *Problem) Objective(assign []int) float64 {
	total := 0.0
	for i, v := range p.Vars {
		total += v.Unary[assign[i]]
	}
	for _, e := range p.Edges {
		total += e.Cost[assign[e.A]][assign[e.B]]
	}
	return total
}

// Plan converts an assignment into a graph layout plan.
func (p *Problem) Plan(assign []int) graph.LayoutPlan {
	plan := graph.LayoutPlan{}
	for i, v := range p.Vars {
		plan[v.Node] = v.Cands[assign[i]].Sched
	}
	return plan
}

func (p *Problem) buildAdj() {
	p.adj = make([][]int, len(p.Vars))
	for ei, e := range p.Edges {
		p.adj[e.A] = append(p.adj[e.A], ei)
		p.adj[e.B] = append(p.adj[e.B], ei)
	}
}

// transformCost returns the cost of converting an activation of `elems`
// elements between two block factors; block 1 is physically identical to
// plain NCHW, so transforms touching it on both sides are free.
func transformCost(t *machine.Target, elems, fromBlock, toBlock, threads int, backend machine.ThreadBackend) float64 {
	if fromBlock == toBlock {
		return 0
	}
	if fromBlock <= 1 && toBlock <= 1 {
		return 0
	}
	return t.TransformTime(elems, threads, backend)
}

// BuildOptions configures problem extraction.
type BuildOptions struct {
	// MaxCands caps the per-conv candidate schemes entering the global
	// search (taken from the ascending local-search order). Zero means 10.
	MaxCands int
	// Eval scores schedules during local search; nil uses the cost model at
	// the configured Threads/Backend.
	Eval schedule.Evaluator
	// DB memoizes local searches; nil allocates a fresh database. Callers
	// sharing a DB across searches must use a consistent evaluator for it.
	DB *schedule.DB
	// Threads/Backend describe the execution configuration the plan is
	// optimized for; costs are evaluated at this width so the global
	// decision matches the deployment. Zero threads means 1.
	Threads int
	Backend machine.ThreadBackend
	// DisableWinograd drops Winograd candidates from every variable's
	// domain, restricting the algorithm dimension to the direct template.
	// Int8 compilation sets it (there is no int8 Winograd kernel); users who
	// need bit-compatibility with direct convolution can too. The filter is
	// applied to the memoized local-search results, so a shared schedule DB
	// stays consistent across compilations that differ on this flag.
	DisableWinograd bool
}

// relKind distinguishes the pairwise relations the executor realizes.
type relKind int

const (
	relChain    relKind = iota // producer output feeds consumer input
	relResidual                // producer output fused into consumer epilogue
	relTie                     // operands of one add/concat must agree
)

// BuildProblem extracts the global-search instance from an optimized graph
// (Optimize must have run; AlterOpLayout must NOT have run yet).
func BuildProblem(g *graph.Graph, t *machine.Target, opts BuildOptions) (*Problem, error) {
	maxCands := opts.MaxCands
	if maxCands <= 0 {
		maxCands = 10
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = 1
	}
	backend := opts.Backend
	eval := opts.Eval
	if eval == nil {
		eval = func(wl machine.ConvWorkload, s machine.ConvSchedule) float64 {
			return t.ConvTime(wl, s, threads, backend, 1)
		}
	}
	db := opts.DB
	if db == nil {
		db = schedule.NewDB()
	}

	p := &Problem{}
	varIdx := map[*graph.Node]int{}
	for _, n := range g.Convs() {
		wl := graph.ConvWorkload(n)
		sorted := db.Search(t, wl, eval)
		if opts.DisableWinograd {
			kept := make([]schedule.Result, 0, len(sorted))
			for _, r := range sorted {
				if r.Sched.Algorithm != machine.AlgoWinograd {
					kept = append(kept, r)
				}
			}
			sorted = kept
		}
		all := schedule.BestByBlockPair(sorted)
		results := all
		if len(results) > maxCands {
			results = results[:maxCands:maxCands]
			// Keep the uniform-x scheme (the Section 3.2 fallback plan) in
			// every candidate list so the global optimum can never be worse
			// than the uniform plan.
			uic := largestDivisorAtMost(wl.InC, t.VectorLanes)
			uoc := largestDivisorAtMost(wl.OutC, t.VectorLanes)
			found := false
			for _, r := range results {
				if r.Sched.ICBlock == uic && r.Sched.OCBlock == uoc {
					found = true
					break
				}
			}
			if !found {
				for _, r := range all {
					if r.Sched.ICBlock == uic && r.Sched.OCBlock == uoc {
						results = append(results, r)
						break
					}
				}
			}
		}
		if len(results) == 0 {
			return nil, fmt.Errorf("search: no candidates for %v", n)
		}
		v := &Var{Node: n, Cands: results, Unary: make([]float64, len(results))}
		for j, r := range results {
			v.Unary[j] = r.Time
		}
		varIdx[n] = len(p.Vars)
		p.Vars = append(p.Vars, v)
	}

	// resolve returns the variable index whose oc_bn determines the layout
	// of node n's output, or -1 when n's output is pinned to the default
	// layout (graph input, global pooling, flatten, dense...). Walking
	// through an Add or Concat records tie relations between the operands.
	memo := map[*graph.Node]int{}
	edges := map[[3]int]*Edge{} // (a, b, kind) -> accumulated edge
	addRel := func(a, b int, kind relKind, cost func(sa, sb machine.ConvSchedule) float64) {
		if a < 0 || b < 0 || a == b {
			return
		}
		key := [3]int{a, b, int(kind)}
		e, ok := edges[key]
		if !ok {
			va, vb := p.Vars[a], p.Vars[b]
			m := make([][]float64, len(va.Cands))
			for i := range m {
				m[i] = make([]float64, len(vb.Cands))
			}
			e = &Edge{A: a, B: b, Cost: m}
			edges[key] = e
		}
		for i, ra := range p.Vars[a].Cands {
			for j, rb := range p.Vars[b].Cands {
				e.Cost[i][j] += cost(ra.Sched, rb.Sched)
			}
		}
	}

	var resolve func(n *graph.Node) int
	resolve = func(n *graph.Node) int {
		if idx, ok := memo[n]; ok {
			return idx
		}
		memo[n] = -1 // break cycles defensively; DAGs never recurse into self
		var idx int
		switch n.Op {
		case graph.OpConv2D:
			idx = varIdx[n]
		case graph.OpReLU, graph.OpDropout, graph.OpBatchNorm, graph.OpPool:
			idx = resolve(n.Inputs[0])
		case graph.OpAdd:
			r0 := resolve(n.Inputs[0])
			r1 := resolve(n.Inputs[1])
			elems := n.OutShape.Volume()
			// The executor converts the second operand to the first's
			// layout (Section 3.3.2).
			addRel(r0, r1, relTie, func(sa, sb machine.ConvSchedule) float64 {
				return transformCost(t, elems, block(sb, true), block(sa, true), threads, backend)
			})
			if r0 >= 0 {
				idx = r0
			} else {
				idx = r1
			}
		case graph.OpConcat:
			r0 := resolve(n.Inputs[0])
			for _, in := range n.Inputs[1:] {
				ri := resolve(in)
				elems := in.OutShape.Volume()
				addRel(r0, ri, relTie, func(sa, sb machine.ConvSchedule) float64 {
					return transformCost(t, elems, block(sb, true), block(sa, true), threads, backend)
				})
			}
			idx = r0
		default:
			// Input, GlobalAvgPool, Flatten, Dense, Softmax, SSDHead,
			// LayoutTransform: output pinned to a default layout.
			idx = -1
		}
		memo[n] = idx
		return idx
	}

	// Chain and residual relations, plus boundary unaries.
	for _, n := range g.Topo() {
		switch n.Op {
		case graph.OpConv2D:
			b := varIdx[n]
			src := resolve(n.Inputs[0])
			inElems := n.Inputs[0].OutShape.Volume()
			if src >= 0 {
				addRel(src, b, relChain, func(sa, sb machine.ConvSchedule) float64 {
					return transformCost(t, inElems, block(sa, true), block(sb, false), threads, backend)
				})
			} else {
				// Producer pinned to NCHW: pay the input packing transform
				// unless ic_bn is 1.
				v := p.Vars[b]
				for j, r := range v.Cands {
					v.Unary[j] += transformCost(t, inElems, 1, block(r.Sched, false), threads, backend)
				}
			}
			if n.FusedResidual != nil {
				rsrc := resolve(n.FusedResidual)
				outElems := n.OutShape.Volume()
				if rsrc >= 0 {
					addRel(rsrc, b, relResidual, func(sa, sb machine.ConvSchedule) float64 {
						return transformCost(t, outElems, block(sa, true), block(sb, true), threads, backend)
					})
				} else {
					v := p.Vars[b]
					for j, r := range v.Cands {
						v.Unary[j] += transformCost(t, outElems, 1, block(r.Sched, true), threads, backend)
					}
				}
			}
		case graph.OpFlatten, graph.OpSSDHead:
			// Layout-dependent: every input comes back to NCHW; the producing
			// conv pays unless its oc_bn is 1.
			for _, in := range n.Inputs {
				src := resolve(in)
				if src < 0 {
					continue
				}
				elems := in.OutShape.Volume()
				v := p.Vars[src]
				for j, r := range v.Cands {
					v.Unary[j] += transformCost(t, elems, block(r.Sched, true), 1, threads, backend)
				}
			}
		}
	}
	// Graph outputs in blocked layouts transform back to NCHW.
	for _, out := range g.Outputs {
		src := resolve(out)
		if src < 0 {
			continue
		}
		elems := out.OutShape.Volume()
		v := p.Vars[src]
		for j, r := range v.Cands {
			v.Unary[j] += transformCost(t, elems, block(r.Sched, true), 1, threads, backend)
		}
	}

	for _, e := range edges {
		p.Edges = append(p.Edges, e)
	}
	// Deterministic edge order (map iteration is randomized).
	sortEdges(p.Edges)
	p.buildAdj()
	return p, nil
}

// block returns the relevant channel-block factor of a schedule: the output
// block (oc_bn) when out is true, the input block (ic_bn) otherwise. Plain
// NCHW schedules report block 1 (physically identical to NCHW1c).
func block(s machine.ConvSchedule, out bool) int {
	if s.Layout.Kind != tensor.LayoutNCHWc {
		return 1
	}
	if out {
		return s.OCBlock
	}
	return s.ICBlock
}

// largestDivisorAtMost returns the largest divisor of n that is <= limit.
func largestDivisorAtMost(n, limit int) int {
	if limit > n {
		limit = n
	}
	for d := limit; d >= 1; d-- {
		if n%d == 0 {
			return d
		}
	}
	return 1
}

func sortEdges(es []*Edge) {
	// Insertion sort by (A, B): edge counts are small.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			a, b := es[j-1], es[j]
			if a.A < b.A || (a.A == b.A && a.B <= b.B) {
				break
			}
			es[j-1], es[j] = b, a
		}
	}
}

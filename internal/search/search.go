package search

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// Algorithm identifies which global solver produced a result.
type Algorithm string

const (
	// AlgoDP is the exact dynamic program (Algorithm 2).
	AlgoDP Algorithm = "dp"
	// AlgoPBQP is the register-allocation-style approximation.
	AlgoPBQP Algorithm = "pbqp"
)

// Options configures GlobalSearch.
type Options struct {
	// MaxCands caps candidate schemes per convolution (default 10).
	MaxCands int
	// Eval scores schedules during local search; nil uses the cost model.
	Eval schedule.Evaluator
	// DB memoizes local searches across models; nil allocates one.
	DB *schedule.DB
	// DPStateBudget bounds the DP frontier; exceeding it falls back to PBQP
	// (the paper's 5-minute rule, made deterministic). Zero means 200000.
	DPStateBudget int
	// ForcePBQP skips DP entirely (used for SSD, matching the paper).
	ForcePBQP bool
	// DisableWinograd removes the Winograd algorithm from every candidate
	// domain (see BuildOptions.DisableWinograd).
	DisableWinograd bool
	// Threads/Backend describe the deployment configuration the plan is
	// optimized for (zero threads means 1 / serial).
	Threads int
	Backend machine.ThreadBackend
}

// Outcome reports the chosen plan and solver diagnostics.
type Outcome struct {
	Plan      graph.LayoutPlan
	Algorithm Algorithm
	// Cost is the objective value (predicted conv + transform seconds).
	Cost float64
	// Vars/Edges/States describe the extracted problem size.
	Vars, Edges, States int
	// Elapsed is the solver wall-clock time.
	Elapsed time.Duration
}

// GlobalSearch runs the two-stage search of Section 3.3 over an optimized
// graph: local search per convolution workload (memoized in opts.DB), then
// the global scheme selection via DP with automatic PBQP fallback.
func GlobalSearch(g *graph.Graph, t *machine.Target, opts Options) (*Outcome, error) {
	p, err := BuildProblem(g, t, BuildOptions{
		MaxCands: opts.MaxCands, Eval: opts.Eval, DB: opts.DB,
		Threads: opts.Threads, Backend: opts.Backend,
		DisableWinograd: opts.DisableWinograd,
	})
	if err != nil {
		return nil, fmt.Errorf("search: build problem: %w", err)
	}
	start := time.Now()
	out := &Outcome{Vars: len(p.Vars), Edges: len(p.Edges), States: p.NumStates()}

	if !opts.ForcePBQP {
		assign, cost, err := DP(p, opts.DPStateBudget)
		if err == nil {
			out.Plan = p.Plan(assign)
			out.Algorithm = AlgoDP
			out.Cost = cost
			out.Elapsed = time.Since(start)
			return out, nil
		}
		// DP went intractable: fall through to the approximation.
	}
	assign, cost := PBQP(p)
	out.Plan = p.Plan(assign)
	out.Algorithm = AlgoPBQP
	out.Cost = cost
	out.Elapsed = time.Since(start)
	return out, nil
}

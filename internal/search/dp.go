package search

import (
	"fmt"
	"math"
)

// BruteForce enumerates every assignment and returns the optimum. It is
// exponential and intended only for validating the other solvers on small
// problems (the paper's "compare with the result of DP (the guaranteed
// best) on some simple networks").
func BruteForce(p *Problem) ([]int, float64, error) {
	combos := 1.0
	for _, v := range p.Vars {
		combos *= float64(len(v.Cands))
		if combos > 5e7 {
			return nil, 0, fmt.Errorf("search: brute force space too large (%g combos)", combos)
		}
	}
	assign := make([]int, len(p.Vars))
	best := make([]int, len(p.Vars))
	bestCost := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Vars) {
			if c := p.Objective(assign); c < bestCost {
				bestCost = c
				copy(best, assign)
			}
			return
		}
		for j := range p.Vars[i].Cands {
			assign[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestCost, nil
}

// dpState is one frontier state of the dynamic program: the best-known cost
// of any assignment prefix consistent with the live variables' choices,
// together with the full assignment that achieved it (for backtracking).
type dpState struct {
	cost   float64
	assign []int8
}

// DP is the exact dynamic program of Algorithm 2, generalized to DAGs with a
// frontier: variables are processed in topological order; a variable stays
// "live" until the last variable sharing an edge with it has been processed,
// at which point states that differ only in its choice are merged by
// minimum ("the intermediate states stored for its predecessor can be safely
// removed"). The frontier state count is capped by stateBudget; exceeding it
// aborts with an error so the caller can fall back to PBQP — reproducing the
// paper's "switch to the approximation algorithm if DP does not complete"
// rule deterministically.
func DP(p *Problem, stateBudget int) ([]int, float64, error) {
	n := len(p.Vars)
	if n == 0 {
		return nil, 0, nil
	}
	if stateBudget <= 0 {
		stateBudget = 200000
	}
	for _, v := range p.Vars {
		if len(v.Cands) > 127 {
			return nil, 0, fmt.Errorf("search: DP supports <=127 candidates per variable")
		}
	}

	// lastUse[i] is the latest variable index whose processing needs i's
	// choice (i itself if it has no later neighbors).
	lastUse := make([]int, n)
	for i := range lastUse {
		lastUse[i] = i
	}
	for _, e := range p.Edges {
		lo, hi := e.A, e.B
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > lastUse[lo] {
			lastUse[lo] = hi
		}
	}

	// Frontier states keyed by the packed choices of live variables.
	live := []int{}
	init := &dpState{cost: 0, assign: make([]int8, n)}
	for i := range init.assign {
		init.assign[i] = -1
	}
	states := map[string]*dpState{"": init}

	key := func(assign []int8, liveVars []int) string {
		buf := make([]byte, len(liveVars))
		for i, v := range liveVars {
			buf[i] = byte(assign[v])
		}
		return string(buf)
	}

	for i := 0; i < n; i++ {
		v := p.Vars[i]
		// Edges from i to already-processed variables.
		var incoming []*Edge
		for _, ei := range p.adj[i] {
			e := p.Edges[ei]
			other := e.A
			if other == i {
				other = e.B
			}
			if other < i {
				incoming = append(incoming, e)
			}
		}

		next := make(map[string]*dpState, len(states)*len(v.Cands))
		newLive := append(append([]int{}, live...), i)
		// Keep a variable live only while a later step still has an edge to
		// it; everything else merges away ("the intermediate states stored
		// for its predecessor can be safely removed").
		kept := newLive[:0]
		for _, lv := range newLive {
			if lastUse[lv] > i {
				kept = append(kept, lv)
			}
		}
		for _, st := range states {
			for j := range v.Cands {
				cost := st.cost + v.Unary[j]
				for _, e := range incoming {
					if e.A == i {
						cost += e.Cost[j][st.assign[e.B]]
					} else {
						cost += e.Cost[st.assign[e.A]][j]
					}
				}
				assign := append([]int8(nil), st.assign...)
				assign[i] = int8(j)
				k := key(assign, kept)
				prev, ok := next[k]
				if !ok || cost < prev.cost ||
					(cost == prev.cost && lexLess(assign, prev.assign)) {
					next[k] = &dpState{cost: cost, assign: assign}
				}
			}
			if len(next) > stateBudget {
				return nil, 0, fmt.Errorf("search: DP frontier exceeded %d states at variable %d/%d", stateBudget, i, n)
			}
		}
		states = next
		live = kept
	}

	var best *dpState
	for _, st := range states {
		if best == nil || st.cost < best.cost ||
			(st.cost == best.cost && lexLess(st.assign, best.assign)) {
			best = st
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(best.assign[i])
	}
	return out, best.cost, nil
}

// lexLess orders assignments lexicographically; equal-cost DP states break
// ties toward the smaller assignment so results are deterministic regardless
// of map iteration order.
func lexLess(a, b []int8) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

package search

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// chainNet builds a straight conv chain (the "structure as simple as a list"
// case of Section 3.3.2).
func chainNet(depth int) *graph.Graph {
	b := graph.NewBuilder("chain", 11)
	x := b.Input(16, 28, 28)
	for i := 0; i < depth; i++ {
		x = b.ConvBNReLU(x, 32, 3, 1, 1)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 10))
	if err := graph.Optimize(g); err != nil {
		panic(err)
	}
	return g
}

// residualNet builds two residual blocks (reconvergent structure).
func residualNet() *graph.Graph {
	b := graph.NewBuilder("res", 13)
	x := b.Input(16, 14, 14)
	stem := b.ConvBNReLU(x, 32, 3, 1, 1)
	for i := 0; i < 2; i++ {
		br := b.ConvBNReLU(stem, 32, 3, 1, 1)
		br = b.BatchNorm(b.Conv(br, 32, 3, 1, 1))
		stem = b.ReLU(b.Add(br, stem))
	}
	x = b.GlobalAvgPool(stem)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 10))
	if err := graph.Optimize(g); err != nil {
		panic(err)
	}
	return g
}

// concatNet builds DenseNet-style concat blocks.
func concatNet() *graph.Graph {
	b := graph.NewBuilder("cat", 17)
	x := b.Input(16, 14, 14)
	feat := b.ConvBNReLU(x, 32, 3, 1, 1)
	for i := 0; i < 3; i++ {
		nw := b.ConvBNReLU(feat, 16, 3, 1, 1)
		feat = b.Concat(feat, nw)
	}
	x = b.GlobalAvgPool(feat)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 10))
	if err := graph.Optimize(g); err != nil {
		panic(err)
	}
	return g
}

func buildProblem(t *testing.T, g *graph.Graph, maxCands int) *Problem {
	t.Helper()
	tgt := machine.IntelSkylakeC5()
	p, err := BuildProblem(g, tgt, BuildOptions{MaxCands: maxCands})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProblemExtractionChain(t *testing.T) {
	g := chainNet(3)
	p := buildProblem(t, g, 4)
	if len(p.Vars) != 3 {
		t.Fatalf("vars = %d, want 3", len(p.Vars))
	}
	// A chain of 3 convs has 2 chain edges.
	if len(p.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(p.Edges))
	}
	for _, v := range p.Vars {
		if len(v.Cands) == 0 || len(v.Cands) > 4 {
			t.Fatalf("candidate count %d out of range", len(v.Cands))
		}
		for _, u := range v.Unary {
			if u <= 0 || math.IsInf(u, 0) {
				t.Fatalf("bad unary cost %v", u)
			}
		}
	}
}

func TestProblemExtractionResidual(t *testing.T) {
	g := residualNet()
	p := buildProblem(t, g, 3)
	// 5 convs: stem + 2 per block.
	if len(p.Vars) != 5 {
		t.Fatalf("vars = %d, want 5", len(p.Vars))
	}
	// Each block: chain stem->conv1, conv1->conv2, residual stem->conv2.
	if len(p.Edges) < 5 {
		t.Fatalf("edges = %d, want >= 5", len(p.Edges))
	}
}

func TestEdgeCostZeroWhenBlocksMatch(t *testing.T) {
	g := chainNet(2)
	p := buildProblem(t, g, 10)
	e := p.Edges[0]
	a, b := p.Vars[e.A], p.Vars[e.B]
	for i, ra := range a.Cands {
		for j, rb := range b.Cands {
			want := ra.Sched.OCBlock == rb.Sched.ICBlock
			got := e.Cost[i][j] == 0
			if want != got {
				t.Fatalf("edge cost mismatch: oc=%d ic=%d cost=%v",
					ra.Sched.OCBlock, rb.Sched.ICBlock, e.Cost[i][j])
			}
		}
	}
}

func TestDPMatchesBruteForceChain(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 4} {
		g := chainNet(depth)
		p := buildProblem(t, g, 4)
		bfAssign, bfCost, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		dpAssign, dpCost, err := DP(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dpCost-bfCost) > 1e-12*math.Abs(bfCost) {
			t.Fatalf("depth %d: DP cost %v != brute force %v", depth, dpCost, bfCost)
		}
		// The DP's claimed cost must equal the objective of its assignment.
		if got := p.Objective(dpAssign); math.Abs(got-dpCost) > 1e-9 {
			t.Fatalf("DP cost %v != objective(assign) %v", dpCost, got)
		}
		_ = bfAssign
	}
}

func TestDPMatchesBruteForceReconvergent(t *testing.T) {
	for _, mk := range []func() *graph.Graph{residualNet, concatNet} {
		g := mk()
		p := buildProblem(t, g, 3)
		_, bfCost, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		assign, dpCost, err := DP(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dpCost-bfCost) > 1e-12*math.Abs(bfCost)+1e-15 {
			t.Fatalf("%s: DP cost %v != brute force %v", g.Name, dpCost, bfCost)
		}
		if got := p.Objective(assign); math.Abs(got-dpCost) > 1e-9 {
			t.Fatalf("DP cost inconsistent with objective")
		}
	}
}

func TestDPStateBudgetTriggersError(t *testing.T) {
	g := concatNet()
	p := buildProblem(t, g, 3)
	if _, _, err := DP(p, 1); err == nil {
		t.Fatal("expected DP to exceed a 1-state budget")
	}
}

func TestPBQPQualityVsDP(t *testing.T) {
	// The paper reports the approximation achieves at least 88% of the DP
	// optimum on networks where DP is tractable. Costs are "lower is
	// better", so require pbqp <= dp/0.88.
	for _, mk := range []func() *graph.Graph{func() *graph.Graph { return chainNet(4) }, residualNet, concatNet} {
		g := mk()
		p := buildProblem(t, g, 6)
		_, dpCost, err := DP(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		assign, pbqpCost := PBQP(p)
		if got := p.Objective(assign); math.Abs(got-pbqpCost) > 1e-9 {
			t.Fatalf("PBQP reported cost %v != objective %v", pbqpCost, got)
		}
		if pbqpCost < dpCost-1e-12 {
			t.Fatalf("%s: PBQP cost %v below the optimum %v (impossible)", g.Name, pbqpCost, dpCost)
		}
		if pbqpCost > dpCost/0.88 {
			t.Fatalf("%s: PBQP cost %v worse than 88%% of optimum %v", g.Name, pbqpCost, dpCost)
		}
	}
}

func TestPBQPExactOnTrees(t *testing.T) {
	// R0/RI/RII reductions are optimal, so on a chain (a tree) PBQP must hit
	// the exact optimum.
	g := chainNet(5)
	p := buildProblem(t, g, 5)
	_, dpCost, err := DP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, pbqpCost := PBQP(p)
	if math.Abs(pbqpCost-dpCost) > 1e-12*math.Abs(dpCost) {
		t.Fatalf("PBQP on a chain must be exact: %v vs %v", pbqpCost, dpCost)
	}
}

func TestGlobalSearchAPI(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	g := residualNet()
	out, err := GlobalSearch(g, tgt, Options{MaxCands: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != AlgoDP {
		t.Fatalf("algorithm = %v, want dp", out.Algorithm)
	}
	if len(out.Plan) != 5 {
		t.Fatalf("plan size = %d, want 5", len(out.Plan))
	}
	if out.Cost <= 0 {
		t.Fatalf("cost = %v", out.Cost)
	}
	// The plan must apply cleanly.
	if err := graph.AlterOpLayout(g, out.Plan, true); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalSearchForcePBQP(t *testing.T) {
	tgt := machine.ARMCortexA72()
	g := concatNet()
	out, err := GlobalSearch(g, tgt, Options{MaxCands: 5, ForcePBQP: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != AlgoPBQP {
		t.Fatalf("algorithm = %v, want pbqp", out.Algorithm)
	}
	if err := graph.AlterOpLayout(g, out.Plan, true); err != nil {
		t.Fatal(err)
	}
}

// mixedNet mixes winograd-viable 3x3 stride-1 convolutions with strided and
// 1x1 ones, so the algorithm dimension has real per-layer decisions to make.
func mixedNet() *graph.Graph {
	b := graph.NewBuilder("mixed", 19)
	x := b.Input(16, 28, 28)
	x = b.ConvBNReLU(x, 32, 3, 1, 1) // viable
	x = b.ConvBNReLU(x, 32, 3, 2, 1) // strided: not viable
	x = b.ConvBNReLU(x, 64, 1, 1, 0) // 1x1: not viable
	x = b.ConvBNReLU(x, 64, 3, 1, 1) // viable
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 10))
	if err := graph.Optimize(g); err != nil {
		panic(err)
	}
	return g
}

func TestGlobalSearchPicksWinogradPerLayer(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	g := mixedNet()
	out, err := GlobalSearch(g, tgt, Options{MaxCands: 8})
	if err != nil {
		t.Fatal(err)
	}
	winograd := 0
	for n, s := range out.Plan {
		wl := graph.ConvWorkload(n)
		if s.Algorithm == machine.AlgoWinograd {
			winograd++
			if !wl.WinogradViable() {
				t.Fatalf("conv %v (%dx%d stride %d) scheduled winograd", n, wl.KH, wl.KW, wl.StrideH)
			}
		}
	}
	// On AVX-512 the cost model's 2.25x multiply saving must win at least
	// one of the two viable layers.
	if winograd == 0 {
		t.Fatal("global search never chose winograd on a winograd-friendly graph")
	}
	if err := graph.AlterOpLayout(g, out.Plan, true); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalSearchDisableWinograd(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	db := schedule.NewDB()
	// Same DB across both searches: the filter must apply to memoized
	// results, not depend on what was searched first.
	out, err := GlobalSearch(mixedNet(), tgt, Options{MaxCands: 8, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	hasWino := false
	for _, s := range out.Plan {
		if s.Algorithm == machine.AlgoWinograd {
			hasWino = true
		}
	}
	if !hasWino {
		t.Fatal("setup: expected a winograd pick with the flag off")
	}
	out2, err := GlobalSearch(mixedNet(), tgt, Options{MaxCands: 8, DB: db, DisableWinograd: true})
	if err != nil {
		t.Fatal(err)
	}
	for n, s := range out2.Plan {
		if s.Algorithm != machine.AlgoDirect {
			t.Fatalf("conv %v scheduled %v with DisableWinograd", n, s.Algorithm)
		}
	}
	if out2.Cost < out.Cost {
		t.Fatalf("restricting the domain cannot improve the objective: %v < %v", out2.Cost, out.Cost)
	}
}

func TestGlobalSearchFallsBackOnTinyBudget(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	g := concatNet()
	out, err := GlobalSearch(g, tgt, Options{MaxCands: 5, DPStateBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != AlgoPBQP {
		t.Fatalf("expected PBQP fallback, got %v", out.Algorithm)
	}
}

func TestGlobalSearchBeatsUniformPlan(t *testing.T) {
	// The searched plan's objective must not exceed the uniform plan's
	// objective computed over the same problem (Table 3 row 4 vs row 3).
	tgt := machine.IntelSkylakeC5()
	g := residualNet()
	db := schedule.NewDB()
	p, err := BuildProblem(g, tgt, BuildOptions{MaxCands: 100, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	dpAssign, dpCost, err := DP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = dpAssign

	// Uniform plan: find for each var the candidate matching the uniform
	// choice (ic=oc=16 here; all channel counts are multiples of 16).
	uniform := make([]int, len(p.Vars))
	for i, v := range p.Vars {
		uniform[i] = -1
		for j, r := range v.Cands {
			if r.Sched.ICBlock == 16 && r.Sched.OCBlock == 16 {
				uniform[i] = j
				break
			}
		}
		if uniform[i] < 0 {
			t.Skip("uniform candidate not in top candidates")
		}
	}
	if dpCost > p.Objective(uniform)+1e-12 {
		t.Fatalf("global search (%v) worse than uniform plan (%v)", dpCost, p.Objective(uniform))
	}
}

func TestBruteForceRejectsHugeSpace(t *testing.T) {
	g := chainNet(4)
	p := buildProblem(t, g, 0) // default 10 cands
	// Inflate var count artificially by reusing the problem: 10^4 is fine,
	// so force failure with a fake giant problem.
	big := &Problem{}
	for i := 0; i < 30; i++ {
		big.Vars = append(big.Vars, p.Vars[i%len(p.Vars)])
	}
	if _, _, err := BruteForce(big); err == nil {
		t.Fatal("expected brute force to refuse 10^30 combos")
	}
}

func TestGlobalSearchNoConvs(t *testing.T) {
	// A graph without convolutions yields an empty plan, not an error.
	b := graph.NewBuilder("dense-only", 1)
	x := b.Input(4, 4, 4)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 2))
	out, err := GlobalSearch(g, machine.IntelSkylakeC5(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Plan) != 0 || out.Cost != 0 {
		t.Fatalf("expected empty plan, got %+v", out)
	}
	if err := graph.AlterOpLayout(g, out.Plan, true); err != nil {
		t.Fatal(err)
	}
}

func TestProblemDeterministic(t *testing.T) {
	// Problem extraction and both solvers must be deterministic across
	// runs (edge maps are sorted; PBQP breaks ties by index).
	g1 := residualNet()
	g2 := residualNet()
	tgt := machine.IntelSkylakeC5()
	p1, err := BuildProblem(g1, tgt, BuildOptions{MaxCands: 6})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildProblem(g2, tgt, BuildOptions{MaxCands: 6})
	if err != nil {
		t.Fatal(err)
	}
	a1, c1, _ := DP(p1, 0)
	a2, c2, _ := DP(p2, 0)
	if c1 != c2 {
		t.Fatalf("DP cost differs across runs: %v vs %v", c1, c2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("DP assignment differs at %d", i)
		}
	}
	b1, q1 := PBQP(p1)
	b2, q2 := PBQP(p2)
	if q1 != q2 {
		t.Fatalf("PBQP cost differs: %v vs %v", q1, q2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("PBQP assignment differs at %d", i)
		}
	}
}

package search

import (
	"math"
)

// This file implements the PBQP (partitioned boolean quadratic programming)
// heuristic solver the paper borrows from register allocation (Section
// 3.3.2, following Hames & Scholz). The solver repeatedly reduces the graph:
//
//	R0: a variable with no edges takes its cheapest candidate.
//	RI: a degree-1 variable folds into its neighbor's unary vector.
//	RII: a degree-2 variable folds into an edge between its two neighbors.
//	RN: otherwise, the maximum-degree variable is fixed heuristically to the
//	    candidate minimizing its unary cost plus optimistic edge costs.
//
// Reductions are recorded on a stack and resolved in reverse during
// back-propagation, yielding a complete assignment. R0/RI/RII preserve
// optimality; only RN is heuristic, which is why the result is validated
// against DP on tractable graphs ("at least 88% of the best available
// result").

// pbqpEdge is a mutable working copy of an Edge.
type pbqpEdge struct {
	a, b int
	cost [][]float64
}

type pbqpSolver struct {
	unary   [][]float64
	edges   map[int]*pbqpEdge // id -> edge
	adj     []map[int]bool    // var -> edge ids
	alive   []bool
	nextID  int
	assign  []int
	actions []pbqpAction
}

// pbqpAction records one reduction for back-propagation.
type pbqpAction struct {
	kind int // 0=R0, 1=RI, 2=RII, 3=RN
	v    int
	// For RI/RII: the neighbor(s) and the decision table mapping neighbor
	// candidate(s) to v's best candidate.
	n1, n2  int
	decide1 []int   // RI: best j for each candidate of n1
	decide2 [][]int // RII: best j for each (n1 cand, n2 cand)
}

// PBQP solves the problem heuristically and returns the assignment.
func PBQP(p *Problem) ([]int, float64) {
	s := &pbqpSolver{
		unary:  make([][]float64, len(p.Vars)),
		edges:  map[int]*pbqpEdge{},
		adj:    make([]map[int]bool, len(p.Vars)),
		alive:  make([]bool, len(p.Vars)),
		assign: make([]int, len(p.Vars)),
	}
	for i, v := range p.Vars {
		s.unary[i] = append([]float64(nil), v.Unary...)
		s.adj[i] = map[int]bool{}
		s.alive[i] = true
		s.assign[i] = -1
	}
	for _, e := range p.Edges {
		s.addEdge(e.A, e.B, cloneMatrix(e.Cost))
	}

	for {
		v, degree := s.pickReducible()
		if v < 0 {
			break
		}
		switch degree {
		case 0:
			s.reduceR0(v)
		case 1:
			s.reduceRI(v)
		case 2:
			s.reduceRII(v)
		default:
			s.reduceRN(v)
		}
	}

	// Back-propagate in reverse reduction order.
	for i := len(s.actions) - 1; i >= 0; i-- {
		a := s.actions[i]
		switch a.kind {
		case 0, 3: // R0 and RN fixed their choice immediately
			// already assigned
		case 1:
			s.assign[a.v] = a.decide1[s.assign[a.n1]]
		case 2:
			s.assign[a.v] = a.decide2[s.assign[a.n1]][s.assign[a.n2]]
		}
	}
	return s.assign, p.Objective(s.assign)
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

func (s *pbqpSolver) addEdge(a, b int, cost [][]float64) {
	// Merge with an existing (a,b) or (b,a) edge if present.
	for id := range s.adj[a] {
		e := s.edges[id]
		if e.a == a && e.b == b {
			for i := range cost {
				for j := range cost[i] {
					e.cost[i][j] += cost[i][j]
				}
			}
			return
		}
		if e.a == b && e.b == a {
			for i := range cost {
				for j := range cost[i] {
					e.cost[j][i] += cost[i][j]
				}
			}
			return
		}
	}
	id := s.nextID
	s.nextID++
	s.edges[id] = &pbqpEdge{a: a, b: b, cost: cost}
	s.adj[a][id] = true
	s.adj[b][id] = true
}

func (s *pbqpSolver) removeEdge(id int) {
	e := s.edges[id]
	delete(s.adj[e.a], id)
	delete(s.adj[e.b], id)
	delete(s.edges, id)
}

// pickReducible returns the best variable to reduce next: the lowest-degree
// alive variable (ties broken by index for determinism), or (-1, 0) when
// everything is reduced.
func (s *pbqpSolver) pickReducible() (int, int) {
	best, bestDeg := -1, math.MaxInt
	for v := range s.unary {
		if !s.alive[v] {
			continue
		}
		d := len(s.adj[v])
		if d < bestDeg {
			best, bestDeg = v, d
		}
	}
	if best < 0 {
		return -1, 0
	}
	if bestDeg <= 2 {
		return best, bestDeg
	}
	// No cheap reduction available: RN on the highest-degree variable.
	worst, worstDeg := best, bestDeg
	for v := range s.unary {
		if s.alive[v] && len(s.adj[v]) > worstDeg {
			worst, worstDeg = v, len(s.adj[v])
		}
	}
	return worst, worstDeg
}

func (s *pbqpSolver) reduceR0(v int) {
	best, bestC := 0, math.Inf(1)
	for j, c := range s.unary[v] {
		if c < bestC {
			best, bestC = j, c
		}
	}
	s.assign[v] = best
	s.alive[v] = false
	s.actions = append(s.actions, pbqpAction{kind: 0, v: v})
}

// neighborCost returns the cost matrix of edge id oriented so rows index v's
// candidates, plus the neighbor variable.
func (s *pbqpSolver) neighborCost(id, v int) ([][]float64, int) {
	e := s.edges[id]
	if e.a == v {
		return e.cost, e.b
	}
	// Transpose view.
	t := make([][]float64, len(e.cost[0]))
	for i := range t {
		t[i] = make([]float64, len(e.cost))
		for j := range e.cost {
			t[i][j] = e.cost[j][i]
		}
	}
	return t, e.a
}

func (s *pbqpSolver) reduceRI(v int) {
	var id int
	for eid := range s.adj[v] {
		id = eid
	}
	cost, nbr := s.neighborCost(id, v)
	decide := make([]int, len(s.unary[nbr]))
	for k := range s.unary[nbr] {
		bestJ, bestC := 0, math.Inf(1)
		for j := range s.unary[v] {
			c := s.unary[v][j] + cost[j][k]
			if c < bestC {
				bestJ, bestC = j, c
			}
		}
		decide[k] = bestJ
		s.unary[nbr][k] += bestC
	}
	s.removeEdge(id)
	s.alive[v] = false
	s.actions = append(s.actions, pbqpAction{kind: 1, v: v, n1: nbr, decide1: decide})
}

func (s *pbqpSolver) reduceRII(v int) {
	ids := make([]int, 0, 2)
	for eid := range s.adj[v] {
		ids = append(ids, eid)
	}
	if ids[0] > ids[1] {
		ids[0], ids[1] = ids[1], ids[0]
	}
	c1, n1 := s.neighborCost(ids[0], v)
	c2, n2 := s.neighborCost(ids[1], v)
	delta := make([][]float64, len(s.unary[n1]))
	decide := make([][]int, len(s.unary[n1]))
	for k1 := range s.unary[n1] {
		delta[k1] = make([]float64, len(s.unary[n2]))
		decide[k1] = make([]int, len(s.unary[n2]))
		for k2 := range s.unary[n2] {
			bestJ, bestC := 0, math.Inf(1)
			for j := range s.unary[v] {
				c := s.unary[v][j] + c1[j][k1] + c2[j][k2]
				if c < bestC {
					bestJ, bestC = j, c
				}
			}
			delta[k1][k2] = bestC
			decide[k1][k2] = bestJ
		}
	}
	s.removeEdge(ids[0])
	s.removeEdge(ids[1])
	s.alive[v] = false
	s.addEdge(n1, n2, delta)
	s.actions = append(s.actions, pbqpAction{kind: 2, v: v, n1: n1, n2: n2, decide2: decide})
}

// reduceRN heuristically fixes a high-degree variable: pick the candidate
// minimizing unary cost plus the optimistic (minimum over neighbor choices)
// edge costs, then fold the now-constant edge costs into the neighbors.
func (s *pbqpSolver) reduceRN(v int) {
	bestJ, bestC := 0, math.Inf(1)
	for j := range s.unary[v] {
		c := s.unary[v][j]
		for id := range s.adj[v] {
			cost, nbr := s.neighborCost(id, v)
			minEdge := math.Inf(1)
			for k := range s.unary[nbr] {
				if cost[j][k] < minEdge {
					minEdge = cost[j][k]
				}
			}
			c += minEdge
		}
		if c < bestC {
			bestJ, bestC = j, c
		}
	}
	s.assign[v] = bestJ
	// Fold v's fixed row of each edge into the neighbor's unary vector.
	ids := make([]int, 0, len(s.adj[v]))
	for id := range s.adj[v] {
		ids = append(ids, id)
	}
	for _, id := range ids {
		cost, nbr := s.neighborCost(id, v)
		for k := range s.unary[nbr] {
			s.unary[nbr][k] += cost[bestJ][k]
		}
		s.removeEdge(id)
	}
	s.alive[v] = false
	s.actions = append(s.actions, pbqpAction{kind: 3, v: v})
}

// Package baselines simulates the engines the paper compares against in
// Section 4: MXNet (with Intel MKL-DNN on x86 and OpenBlas on ARM),
// TensorFlow (with ngraph on x86 and Eigen on ARM), and the Intel OpenVINO
// toolkit. Each engine runs the *same* model graph through the NeoCPU-Go
// compiler, but constrained to the structural properties the paper ascribes
// to it:
//
//   - how much graph-level layout optimization it may perform (library-style
//     per-CONV transforms vs. maintained blocked layouts vs. global search);
//   - how well its kernels are tuned for the target architecture (vendor
//     libraries lose efficiency on foreign CPUs: MKL-DNN on AMD, OpenBlas
//     and Eigen on ARM);
//   - its threading runtime (OpenMP for every library-based engine, the
//     custom thread pool for NeoCPU);
//   - per-operator framework dispatch overhead;
//   - the pathologies the paper observed: OpenVINO's VGG fallback and its
//     AMD outliers ("for unknown reasons"), OpenVINO's SSD timing that
//     excludes multibox post-processing (the Table 2 asterisk), and
//     TensorFlow's dynamic-branch penalty on SSD.
//
// The point of the simulation is the comparison's *shape* — who wins per
// architecture and by roughly what factor — not the reproduction of exact
// EC2 milliseconds.
package baselines

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/search"
)

// Engine names one inference stack.
type Engine string

const (
	// EngineMXNet is MXNet 1.3.1 + MKL-DNN v0.15 (x86) / OpenBlas (ARM).
	EngineMXNet Engine = "MXNet"
	// EngineTensorFlow is TensorFlow 1.12 + ngraph (x86) / Eigen (ARM).
	EngineTensorFlow Engine = "TensorFlow"
	// EngineOpenVINO is the OpenVINO Toolkit 2018 R5 (x86 only).
	EngineOpenVINO Engine = "OpenVINO"
	// EngineNeoCPU is this repository's full optimization pipeline.
	EngineNeoCPU Engine = "NeoCPU"
)

// Engines returns the comparison order used in the tables.
func Engines() []Engine {
	return []Engine{EngineMXNet, EngineTensorFlow, EngineOpenVINO, EngineNeoCPU}
}

// Available reports whether the engine exists on the target ("OpenVINO does
// not work for ARM CPUs as it relies on MKL-DNN").
func Available(e Engine, t *machine.Target) bool {
	if e == EngineOpenVINO && t.ISA == machine.NEON {
		return false
	}
	return true
}

// policy captures how an engine is allowed to compile and execute.
type policy struct {
	level    core.OptLevel
	backend  machine.ThreadBackend
	quality  float64 // conv-kernel tuning for this target
	dispatch float64 // per-node framework dispatch overhead (seconds)
	noFusion bool    // library kernels cannot absorb ReLU/add epilogues
	noBNFold bool    // framework executes BatchNorm as a standalone op
}

// enginePolicy resolves the engine's constraints on one target.
func enginePolicy(e Engine, t *machine.Target) policy {
	switch e {
	case EngineNeoCPU:
		// Full joint optimization, custom thread pool, compiled module (no
		// interpreter dispatch).
		return policy{core.OptGlobalSearch, machine.BackendPool, 1.0, 0.2e-6, false, false}

	case EngineMXNet:
		switch t.ISA {
		case machine.AVX512:
			// MKL-DNN is vendor-tuned for Intel (its hand-written assembly
			// slightly beats a generic template on its home turf) and keeps
			// its blocked layout between consecutive library ops, but cannot
			// fuse framework-side operators into its kernels and uses one
			// fixed scheme per workload class rather than a per-model global
			// search.
			return policy{core.OptTransformElim, machine.BackendOMP, 1.02, 2e-6, true, false}
		case machine.AVX2:
			// The same binary on AMD: correct but less tuned.
			return policy{core.OptTransformElim, machine.BackendOMP, 0.8, 2e-6, true, false}
		default:
			// OpenBlas im2col+GEMM convolutions on ARM with poor
			// multi-threading scalability (Figure 4c).
			return policy{core.OptLayout, machine.BackendOMP, 0.62, 3e-6, true, true}
		}

	case EngineTensorFlow:
		switch t.ISA {
		case machine.AVX512:
			// ngraph bridges to library kernels but pays per-op layout round
			// trips and a heavier runtime.
			return policy{core.OptLayout, machine.BackendOMP, 0.95, 6e-6, false, true}
		case machine.AVX2:
			return policy{core.OptLayout, machine.BackendOMP, 0.78, 6e-6, false, true}
		default:
			// Eigen on ARM: better tuned than OpenBlas and a better thread
			// runtime, which is why TensorFlow led the ARM baselines.
			return policy{core.OptLayout, machine.BackendOMP, 0.45, 4e-6, false, true}
		}

	case EngineOpenVINO:
		switch t.ISA {
		case machine.AVX512:
			// Framework-agnostic graph optimization (fusion, maintained
			// layouts) on top of MKL-DNN kernels; no per-model search.
			return policy{core.OptTransformElim, machine.BackendOMP, 0.88, 0.8e-6, false, false}
		default: // AVX2
			return policy{core.OptTransformElim, machine.BackendOMP, 0.82, 0.8e-6, false, false}
		}
	}
	panic(fmt.Sprintf("baselines: unknown engine %q", e))
}

// quirks returns a multiplicative latency factor and whether the SSD head is
// excluded from timing, reproducing the anomalies Table 2 reports.
func quirks(e Engine, modelName string, t *machine.Target) (factor float64, skipSSDHead bool) {
	factor = 1
	switch e {
	case EngineOpenVINO:
		// "OpenVINO sometimes performed extremely slowly on certain models
		// ... for unknown reasons." The factors below reproduce the observed
		// magnitudes; the paper excludes these outliers from its speedup
		// summary and so do our reports.
		if strings.HasPrefix(modelName, "vgg") {
			if t.ISA == machine.AVX512 {
				factor = 9
			} else {
				factor = 11
			}
		}
		if t.ISA == machine.AVX2 {
			switch modelName {
			case "resnet-101", "resnet-152":
				factor = 30
			case "densenet-161", "densenet-169", "densenet-201":
				factor = 12
			}
		}
		// "OpenVINO measures the execution time of SSD without taking into
		// account a significant amount of operations including multibox
		// detection" (the Table 2 asterisk).
		if modelName == "ssd-resnet-50" {
			skipSSDHead = true
		}
	case EngineTensorFlow:
		// "TensorFlow performs significantly worse on SSD as it introduces
		// branches to this model, which requires dynamic decisions ... during
		// the runtime."
		if modelName == "ssd-resnet-50" {
			if t.ISA == machine.NEON {
				factor = 3.2
			} else {
				factor = 7
			}
		}
	}
	return factor, skipSSDHead
}

// armScalabilityCap models MXNet/OpenBlas's multi-threading scalability
// problem on ARM (Figure 4c): beyond this many threads, extra threads add
// nothing.
const armScalabilityCap = 8

// effectiveThreads applies engine-specific scalability limits.
func effectiveThreads(e Engine, t *machine.Target, threads int) int {
	if threads <= 0 {
		threads = t.Cores
	}
	if threads > t.Cores {
		threads = t.Cores
	}
	if e == EngineMXNet && t.ISA == machine.NEON && threads > armScalabilityCap {
		threads = armScalabilityCap
	}
	return threads
}

// Prediction is one simulated measurement.
type Prediction struct {
	Engine  Engine
	Model   string
	Target  string
	Threads int
	// Seconds is the predicted batch-1 latency.
	Seconds float64
}

type moduleKey struct {
	engine  Engine
	model   string
	target  string
	backend machine.ThreadBackend
}

var (
	cacheMu sync.Mutex
	// modules caches compiled (prediction-only) modules; compilation — and
	// NeoCPU's global search — happens once per engine/model/target/backend,
	// at full core count, the way a deployed module is compiled once and then
	// run at whatever width the experiment asks for.
	modules = map[moduleKey]*core.Module{}
)

// Predict simulates one engine running one model on one target with the
// given thread count (0 = all cores).
func Predict(e Engine, modelName string, t *machine.Target, threads int) (Prediction, error) {
	return predict(e, modelName, t, threads, enginePolicy(e, t).backend)
}

// PredictWithBackend overrides the threading runtime; Figure 4 uses it to
// plot NeoCPU with OpenMP against NeoCPU with its own thread pool.
func PredictWithBackend(e Engine, modelName string, t *machine.Target, threads int, backend machine.ThreadBackend) (Prediction, error) {
	return predict(e, modelName, t, threads, backend)
}

// module returns the cached compiled module for one configuration.
func module(e Engine, modelName string, t *machine.Target, backend machine.ThreadBackend) (*core.Module, error) {
	spec, err := models.Get(modelName)
	if err != nil {
		return nil, err
	}
	key := moduleKey{e, modelName, t.Name, backend}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if m, ok := modules[key]; ok {
		return m, nil
	}
	pol := enginePolicy(e, t)
	opts := core.Options{
		Level:         pol.level,
		Threads:       t.Cores,
		Backend:       backend,
		NoPrepack:     true,
		DisableFusion: pol.noFusion,
		DisableBNFold: pol.noBNFold,
		// Table 2 reproduces the paper's evaluation, which predates the
		// Winograd algorithm extension (the paper names it as Section 6
		// future work); every simulated engine, NeoCPU included, runs the
		// direct template here so the published comparison shape holds.
		// The Winograd gains are reported by the extension benchmarks
		// (BenchmarkConvAlgorithm, BenchmarkSessionRunWinograd).
		DisableWinograd: true,
	}
	if pol.level == core.OptGlobalSearch {
		opts.Search = search.Options{
			MaxCands:  10,
			ForcePBQP: spec.UsePBQP,
			Threads:   t.Cores,
			Backend:   backend,
			DB:        core.SharedScheduleDB(t, t.Cores, backend),
		}
	}
	g, err := models.BuildShapeOnly(modelName)
	if err != nil {
		return nil, err
	}
	m, err := core.Compile(g, t, opts)
	if err != nil {
		return nil, fmt.Errorf("baselines: compile %s/%s: %w", e, modelName, err)
	}
	modules[key] = m
	return m, nil
}

func predict(e Engine, modelName string, t *machine.Target, threads int, backend machine.ThreadBackend) (Prediction, error) {
	if !Available(e, t) {
		return Prediction{}, fmt.Errorf("baselines: %s is not available on %s", e, t.Name)
	}
	threads = effectiveThreads(e, t, threads)
	m, err := module(e, modelName, t, backend)
	if err != nil {
		return Prediction{}, err
	}

	pol := enginePolicy(e, t)
	factor, skipSSD := quirks(e, modelName, t)
	cfg := core.PredictConfig{
		Threads:          threads,
		Backend:          backend,
		KernelQuality:    pol.quality,
		DispatchOverhead: pol.dispatch,
	}
	secs := m.PredictLatency(cfg)
	if skipSSD {
		secs -= m.PredictSSDHeadOnly(cfg)
	}
	secs *= factor
	return Prediction{Engine: e, Model: modelName, Target: t.Name, Threads: threads, Seconds: secs}, nil
}

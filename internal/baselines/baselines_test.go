package baselines

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/models"
)

// Shape-level assertions against Table 2: winners per architecture, the
// reported speedup bands, and the documented anomalies. These are the
// success criteria from DESIGN.md.

func mustPredict(t *testing.T, e Engine, model string, tgt *machine.Target) float64 {
	t.Helper()
	p, err := Predict(e, model, tgt, 0)
	if err != nil {
		t.Fatalf("Predict(%s, %s, %s): %v", e, model, tgt.Name, err)
	}
	if p.Seconds <= 0 {
		t.Fatalf("non-positive latency for %s/%s", e, model)
	}
	return p.Seconds
}

func TestAvailability(t *testing.T) {
	arm := machine.ARMCortexA72()
	if Available(EngineOpenVINO, arm) {
		t.Fatal("OpenVINO must not be available on ARM (it relies on MKL-DNN)")
	}
	if _, err := Predict(EngineOpenVINO, "resnet-18", arm, 0); err == nil {
		t.Fatal("expected error predicting OpenVINO on ARM")
	}
	for _, e := range Engines() {
		if !Available(e, machine.IntelSkylakeC5()) {
			t.Fatalf("%s must be available on Intel", e)
		}
	}
}

func TestNeoCPUWinsOnARM(t *testing.T) {
	// "all 15 models on ARM Cortex A72 CPUs".
	tgt := machine.ARMCortexA72()
	for _, model := range models.Names() {
		neo := mustPredict(t, EngineNeoCPU, model, tgt)
		for _, e := range []Engine{EngineMXNet, EngineTensorFlow} {
			if b := mustPredict(t, e, model, tgt); b <= neo {
				t.Errorf("ARM %s: %s (%.1fms) beats NeoCPU (%.1fms)", model, e, b*1000, neo*1000)
			}
		}
	}
}

func TestNeoCPUSpeedupBandOnARM(t *testing.T) {
	// Paper: 2.05-3.45x over the best baseline on ARM. Allow a slightly
	// wider band for the simulator.
	tgt := machine.ARMCortexA72()
	for _, model := range models.Names() {
		neo := mustPredict(t, EngineNeoCPU, model, tgt)
		best := mustPredict(t, EngineMXNet, model, tgt)
		if tf := mustPredict(t, EngineTensorFlow, model, tgt); tf < best {
			best = tf
		}
		ratio := best / neo
		if ratio < 1.6 || ratio > 4.5 {
			t.Errorf("ARM %s: speedup %.2fx outside [1.6, 4.5]", model, ratio)
		}
	}
}

func TestNeoCPUCompetitiveOnIntel(t *testing.T) {
	// Paper: 0.94-1.15x of the best baseline on Intel — i.e. roughly tied
	// or better, never catastrophically worse.
	tgt := machine.IntelSkylakeC5()
	for _, model := range models.Names() {
		neo := mustPredict(t, EngineNeoCPU, model, tgt)
		best := 1e9
		for _, e := range []Engine{EngineMXNet, EngineTensorFlow, EngineOpenVINO} {
			if model == "ssd-resnet-50" && e == EngineOpenVINO {
				continue // OpenVINO's SSD number excludes the multibox head
			}
			if b := mustPredict(t, e, model, tgt); b < best {
				best = b
			}
		}
		ratio := best / neo
		if ratio < 0.9 {
			t.Errorf("Intel %s: NeoCPU %.2fx slower than best baseline", model, 1/ratio)
		}
		if ratio > 2.2 {
			t.Errorf("Intel %s: NeoCPU win %.2fx implausibly large for Intel", model, ratio)
		}
	}
}

func TestOpenVINOVGGOutlier(t *testing.T) {
	// Table 2a: OpenVINO VGG-16 is ~7.7x slower than NeoCPU while its
	// ResNet numbers are competitive.
	tgt := machine.IntelSkylakeC5()
	ovVGG := mustPredict(t, EngineOpenVINO, "vgg-16", tgt)
	neoVGG := mustPredict(t, EngineNeoCPU, "vgg-16", tgt)
	if ovVGG/neoVGG < 5 {
		t.Errorf("OpenVINO VGG outlier missing: ratio %.1f", ovVGG/neoVGG)
	}
	ovR50 := mustPredict(t, EngineOpenVINO, "resnet-50", tgt)
	neoR50 := mustPredict(t, EngineNeoCPU, "resnet-50", tgt)
	if ovR50/neoR50 > 2 {
		t.Errorf("OpenVINO ResNet-50 should be competitive, ratio %.1f", ovR50/neoR50)
	}
}

func TestOpenVINOAMDOutliers(t *testing.T) {
	// Table 2b: ResNet-101/152 and DenseNet-161/169/201 blow up on AMD
	// while ResNet-50 and DenseNet-121 stay competitive.
	tgt := machine.AMDEpycM5a()
	broken := []string{"resnet-101", "resnet-152", "densenet-161", "densenet-169", "densenet-201"}
	for _, model := range broken {
		ov := mustPredict(t, EngineOpenVINO, model, tgt)
		neo := mustPredict(t, EngineNeoCPU, model, tgt)
		if ov/neo < 8 {
			t.Errorf("AMD %s: OpenVINO outlier missing (ratio %.1f)", model, ov/neo)
		}
	}
	for _, model := range []string{"resnet-50", "densenet-121"} {
		ov := mustPredict(t, EngineOpenVINO, model, tgt)
		neo := mustPredict(t, EngineNeoCPU, model, tgt)
		if ov/neo > 2 {
			t.Errorf("AMD %s: OpenVINO should be competitive (ratio %.1f)", model, ov/neo)
		}
	}
}

func TestTensorFlowSSDPenalty(t *testing.T) {
	// Table 2: TensorFlow's SSD latency is an order of magnitude above
	// MXNet's on x86 (dynamic branching).
	for _, tgt := range []*machine.Target{machine.IntelSkylakeC5(), machine.AMDEpycM5a()} {
		tf := mustPredict(t, EngineTensorFlow, "ssd-resnet-50", tgt)
		mx := mustPredict(t, EngineMXNet, "ssd-resnet-50", tgt)
		if tf/mx < 5 {
			t.Errorf("%s: TF SSD penalty missing (ratio %.1f)", tgt.Name, tf/mx)
		}
	}
}

func TestOpenVINOSSDExcludesHead(t *testing.T) {
	// The asterisk: OpenVINO's SSD measurement excludes multibox detection,
	// so it can undercut NeoCPU without actually being faster end to end.
	tgt := machine.IntelSkylakeC5()
	ov := mustPredict(t, EngineOpenVINO, "ssd-resnet-50", tgt)
	neo := mustPredict(t, EngineNeoCPU, "ssd-resnet-50", tgt)
	// The asterisked number looks competitive with NeoCPU (paper: 30.25* vs
	// 31.48) even though it omits real work.
	if ov > neo*1.15 {
		t.Errorf("OpenVINO SSD (head excluded, %.1fms) should look competitive with NeoCPU (%.1fms)",
			ov*1000, neo*1000)
	}
	// And the exclusion must actually remove a measurable head cost.
	mx := mustPredict(t, EngineMXNet, "ssd-resnet-50", tgt)
	if ov >= mx {
		t.Errorf("head-excluded OpenVINO (%.1fms) should beat MXNet's full measurement (%.1fms)",
			ov*1000, mx*1000)
	}
}

func TestMXNetWorseThanTFOnARM(t *testing.T) {
	// "MXNet performed worse than TensorFlow on ARM due to the scalability
	// issue."
	tgt := machine.ARMCortexA72()
	for _, model := range []string{"resnet-50", "inception-v3", "vgg-16"} {
		mx := mustPredict(t, EngineMXNet, model, tgt)
		tf := mustPredict(t, EngineTensorFlow, model, tgt)
		if mx <= tf {
			t.Errorf("ARM %s: MXNet (%.0fms) should trail TensorFlow (%.0fms)", model, mx*1000, tf*1000)
		}
	}
}

func TestMXNetARMScalabilityCap(t *testing.T) {
	tgt := machine.ARMCortexA72()
	if got := effectiveThreads(EngineMXNet, tgt, 16); got != armScalabilityCap {
		t.Fatalf("MXNet/ARM threads = %d, want cap %d", got, armScalabilityCap)
	}
	if got := effectiveThreads(EngineTensorFlow, tgt, 16); got != 16 {
		t.Fatalf("TF/ARM threads = %d, want 16", got)
	}
	if got := effectiveThreads(EngineMXNet, machine.IntelSkylakeC5(), 0); got != 18 {
		t.Fatalf("MXNet/Intel default threads = %d, want 18", got)
	}
}

func TestPredictMemoized(t *testing.T) {
	tgt := machine.IntelSkylakeC5()
	a, err := Predict(EngineMXNet, "resnet-18", tgt, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(EngineMXNet, "resnet-18", tgt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Fatal("memoized prediction must be identical")
	}
	if a.Threads != 4 {
		t.Fatalf("threads = %d", a.Threads)
	}
}

func TestThreadScalingShape(t *testing.T) {
	// Figure 4a's qualitative shape on ResNet-50/Skylake: NeoCPU-pool
	// dominates NeoCPU-OMP which dominates the library baselines, and
	// throughput grows with threads.
	tgt := machine.IntelSkylakeC5()
	model := "resnet-50"
	poolPrev := 0.0
	for _, n := range []int{1, 4, 9, 18} {
		pool, err := PredictWithBackend(EngineNeoCPU, model, tgt, n, machine.BackendPool)
		if err != nil {
			t.Fatal(err)
		}
		ips := 1 / pool.Seconds
		if ips <= poolPrev {
			t.Fatalf("pool throughput must grow with threads: %d -> %.1f", n, ips)
		}
		poolPrev = ips
	}
	pool, _ := PredictWithBackend(EngineNeoCPU, model, tgt, 18, machine.BackendPool)
	omp, _ := PredictWithBackend(EngineNeoCPU, model, tgt, 18, machine.BackendOMP)
	mx, _ := Predict(EngineMXNet, model, tgt, 18)
	if !(pool.Seconds < omp.Seconds && omp.Seconds < mx.Seconds) {
		t.Fatalf("expected pool < omp < mxnet at 18 threads: %v %v %v",
			pool.Seconds, omp.Seconds, mx.Seconds)
	}
}

func TestUnknownModelRejected(t *testing.T) {
	_, err := Predict(EngineNeoCPU, "lenet", machine.IntelSkylakeC5(), 0)
	if err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("expected unknown-model error, got %v", err)
	}
}

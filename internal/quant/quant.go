// Package quant implements INT8 quantized inference, the second extension
// the paper lists as future work ("handling model inference in quantized
// values (e.g. INT8)", Section 6). It provides symmetric linear
// quantization, an int8 direct convolution in the same blocked NCHW[x]c
// layout as the float template (so the graph-level layout machinery applies
// unchanged), and the machine-model pricing for int8 kernels on the three
// targets.
//
// Quantization scheme: symmetric per-tensor for activations, symmetric
// per-output-channel for weights — the standard post-training scheme.
// q = clamp(round(x / scale), -127, 127); accumulation happens in int32 and
// results are rescaled back to float32 with sIn*sW[k].
package quant

import (
	"fmt"
	"math"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// QTensor is an int8 tensor with its quantization scale(s).
type QTensor struct {
	Shape  []int
	Data   []int8
	Layout tensor.Layout
	// Scale is the per-tensor scale; for per-channel weights Scales is set
	// instead and Scale is zero.
	Scale  float32
	Scales []float32
}

// NumElements returns the element count.
func (q *QTensor) NumElements() int {
	n := 1
	for _, d := range q.Shape {
		n *= d
	}
	return n
}

// maxAbs returns the maximum absolute value of a float slice.
func maxAbs(xs []float32) float32 {
	var m float32
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

func quantize1(x, invScale float32) int8 {
	v := math.RoundToEven(float64(x * invScale))
	if v > 127 {
		v = 127
	}
	if v < -127 {
		v = -127
	}
	return int8(v)
}

// Quantize converts a float tensor to int8 with a symmetric per-tensor
// scale calibrated from its max-abs value.
func Quantize(t *tensor.Tensor) *QTensor {
	scale := maxAbs(t.Data) / 127
	if scale == 0 {
		scale = 1
	}
	q := &QTensor{
		Shape:  append([]int(nil), t.Shape...),
		Data:   make([]int8, len(t.Data)),
		Layout: t.Layout,
		Scale:  scale,
	}
	inv := 1 / scale
	for i, x := range t.Data {
		q.Data[i] = quantize1(x, inv)
	}
	return q
}

// QuantizeWeightsPerChannel converts an OIHW weight tensor to int8 with one
// symmetric scale per output channel, which preserves accuracy much better
// than a single tensor-wide scale.
func QuantizeWeightsPerChannel(w *tensor.Tensor) *QTensor {
	if w.Layout.Kind != tensor.LayoutOIHW {
		panic(fmt.Sprintf("quant: per-channel quantization expects OIHW, got %v", w.Layout))
	}
	o := w.Shape[0]
	per := w.NumElements() / o
	q := &QTensor{
		Shape:  append([]int(nil), w.Shape...),
		Data:   make([]int8, len(w.Data)),
		Layout: w.Layout,
		Scales: make([]float32, o),
	}
	for k := 0; k < o; k++ {
		seg := w.Data[k*per : (k+1)*per]
		scale := maxAbs(seg) / 127
		if scale == 0 {
			scale = 1
		}
		q.Scales[k] = scale
		inv := 1 / scale
		for i, x := range seg {
			q.Data[k*per+i] = quantize1(x, inv)
		}
	}
	return q
}

// Dequantize converts back to float32.
func Dequantize(q *QTensor) *tensor.Tensor {
	t := tensor.New(q.Layout, q.Shape...)
	if q.Scales == nil {
		for i, v := range q.Data {
			t.Data[i] = float32(v) * q.Scale
		}
		return t
	}
	// Per-channel (dimension 0).
	o := q.Shape[0]
	per := q.NumElements() / o
	for k := 0; k < o; k++ {
		s := q.Scales[k]
		for i := 0; i < per; i++ {
			t.Data[k*per+i] = float32(q.Data[k*per+i]) * s
		}
	}
	return t
}

// PackActivationNCHWc converts an int8 NCHW activation to NCHW[x]c, the
// same blocked layout as the float pipeline.
func PackActivationNCHWc(q *QTensor, x int) *QTensor {
	if q.Layout.Kind != tensor.LayoutNCHW {
		panic(fmt.Sprintf("quant: PackActivationNCHWc expects NCHW, got %v", q.Layout))
	}
	n, c, h, w := q.Shape[0], q.Shape[1], q.Shape[2], q.Shape[3]
	if x <= 0 || c%x != 0 {
		panic(fmt.Sprintf("quant: channels %d not divisible by %d", c, x))
	}
	co := c / x
	out := &QTensor{
		Shape:  []int{n, co, h, w, x},
		Data:   make([]int8, q.NumElements()),
		Layout: tensor.NCHWc(x),
		Scale:  q.Scale,
	}
	hw := h * w
	for b := 0; b < n; b++ {
		for cc := 0; cc < co; cc++ {
			for ci := 0; ci < x; ci++ {
				src := q.Data[(b*c+cc*x+ci)*hw:]
				dstBase := ((b*co+cc)*hw)*x + ci
				for p := 0; p < hw; p++ {
					out.Data[dstBase+p*x] = src[p]
				}
			}
		}
	}
	return out
}

// PackWeightsOIHWio converts int8 OIHW weights into the blocked
// OIHW[x]i[y]o layout of the float template.
func PackWeightsOIHWio(q *QTensor, x, y int) *QTensor {
	if q.Layout.Kind != tensor.LayoutOIHW {
		panic(fmt.Sprintf("quant: PackWeightsOIHWio expects OIHW, got %v", q.Layout))
	}
	o, i, kh, kw := q.Shape[0], q.Shape[1], q.Shape[2], q.Shape[3]
	if i%x != 0 || o%y != 0 {
		panic("quant: blocks must divide channels")
	}
	oo, io := o/y, i/x
	out := &QTensor{
		Shape:  []int{oo, io, kh, kw, x, y},
		Data:   make([]int8, q.NumElements()),
		Layout: tensor.OIHWio(x, y),
		Scale:  q.Scale,
		Scales: q.Scales,
	}
	for ocIdx := 0; ocIdx < o; ocIdx++ {
		oq, or := ocIdx/y, ocIdx%y
		for icIdx := 0; icIdx < i; icIdx++ {
			iq, ir := icIdx/x, icIdx%x
			for r := 0; r < kh; r++ {
				for s := 0; s < kw; s++ {
					v := q.Data[((ocIdx*i+icIdx)*kh+r)*kw+s]
					dst := ((((oq*io+iq)*kh+r)*kw+s)*x+ir)*y + or
					out.Data[dst] = v
				}
			}
		}
	}
	return out
}

// Conv2DInt8NCHWc is the quantized counterpart of the Algorithm-1 template:
// int8 activations and weights in the blocked layouts, int32 accumulator
// tiles (the scalar stand-in for VNNI/vpdpbusd or NEON sdot chains), with
// the output rescaled back to float32 and the same fused epilogue options.
func Conv2DInt8NCHWc(in *QTensor, weight *QTensor, attrs ops.Conv2DAttrs, icb, ocb, regN int, epi ops.Epilogue, pf ops.ParallelFor) *tensor.Tensor {
	return Conv2DInt8NCHWcInto(nil, in, weight, attrs, icb, ocb, regN, 1, epi, pf)
}

// Conv2DInt8NCHWcInto is Conv2DInt8NCHWc writing the rescaled float32 output
// into a caller-provided destination (nil dst allocates). The quantized
// input/padding buffers are still produced per call: dynamic activation
// quantization is inherently per-inference work. grain is the schedule's
// parallel chunk size over (batch, oc-block, out-row) units (<=1 means one
// row per work item); chunking also amortizes the int32 accumulator-tile
// allocation across a chunk's rows, and every grain is bit-identical.
func Conv2DInt8NCHWcInto(dst *tensor.Tensor, in *QTensor, weight *QTensor, attrs ops.Conv2DAttrs, icb, ocb, regN, grain int, epi ops.Epilogue, pf ops.ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHWc || in.Layout.BlockC != icb {
		panic(fmt.Sprintf("quant: expected NCHW%dc input, got %v", icb, in.Layout))
	}
	if weight.Layout.Kind != tensor.LayoutOIHWio || weight.Layout.BlockC != icb || weight.Layout.BlockK != ocb {
		panic(fmt.Sprintf("quant: expected OIHW%di%do weight, got %v", icb, ocb, weight.Layout))
	}
	if regN <= 0 {
		panic("quant: reg_n must be positive")
	}
	n, icOuter, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	ocOuter, kh, kw := weight.Shape[0], weight.Shape[2], weight.Shape[3]
	// Grouped convolution, mirroring the fp32 template: blocks tile groups
	// exactly, each output block reduces over its group's input blocks.
	groups := attrs.GroupCount()
	if icOuter%groups != 0 || ocOuter%groups != 0 {
		panic(fmt.Sprintf("quant: %d groups do not tile %d input / %d output channel blocks", groups, icOuter, ocOuter))
	}
	icOuterPerG := icOuter / groups
	ocOuterPerG := ocOuter / groups
	if icOuterPerG != weight.Shape[1] {
		panic(fmt.Sprintf("quant: per-group ic.outer %d != weight %d", icOuterPerG, weight.Shape[1]))
	}
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NCHWc(ocb), n, ocOuter, oh, ow, ocb)
	if pf == nil {
		pf = ops.Serial
	}

	padded := padInt8NCHWc(in, attrs.PadH, attrs.PadW)
	pw := padded.Shape[3]

	// Per-output-channel rescale: out = acc * sIn * sW[k].
	rescale := make([]float32, ocOuter*ocb)
	for k := range rescale {
		sw := weight.Scale
		if weight.Scales != nil {
			sw = weight.Scales[k]
		}
		rescale[k] = in.Scale * sw
	}

	units := n * ocOuter * oh
	pf(ops.Chunks(units, grain), func(ck int) {
		lo, hi := ops.ChunkBounds(ck, units, grain)
		acc := make([]int32, regN*ocb)
		for unit := lo; unit < hi; unit++ {
			y := unit % oh
			rest := unit / oh
			co := rest % ocOuter
			b := rest / ocOuter
			wBase := co * icOuterPerG * kh * kw * icb * ocb
			icBase := (co / ocOuterPerG) * icOuterPerG
			int8ConvRow(padded, weight, out, acc, rescale, attrs, epi,
				b, co, y, icOuter, icOuterPerG, ocOuter, icb, ocb, regN, kh, kw, oh, ow, pw, wBase, icBase)
		}
	})
	return out
}

// int8ConvRow computes one (batch, oc-block, out-row) band of the quantized
// template. Factored out of the parallel dispatch so a chunked work item
// reuses one int32 accumulator tile across its rows.
func int8ConvRow(padded *QTensor, weight *QTensor, out *tensor.Tensor, acc []int32, rescale []float32,
	attrs ops.Conv2DAttrs, epi ops.Epilogue,
	b, co, y, icOuter, icOuterPerG, ocOuter, icb, ocb, regN, kh, kw, oh, ow, pw, wBase, icBase int) {
	for owo := 0; owo < ow; owo += regN {
		tile := regN
		if ow-owo < tile {
			tile = ow - owo
		}
		for i := range acc[:tile*ocb] {
			acc[i] = 0
		}
		for ci := 0; ci < icOuterPerG; ci++ {
			inBase := ((b*icOuter+icBase+ci)*padded.Shape[2] + y*attrs.StrideH) * pw * icb
			wCI := wBase + ci*kh*kw*icb*ocb
			for r := 0; r < kh; r++ {
				rowOff := inBase + r*pw*icb
				for s := 0; s < kw; s++ {
					wRS := wCI + (r*kw+s)*icb*ocb
					for ii := 0; ii < icb; ii++ {
						wVec := weight.Data[wRS+ii*ocb : wRS+ii*ocb+ocb]
						for i := 0; i < tile; i++ {
							iv := int32(padded.Data[rowOff+((owo+i)*attrs.StrideW+s)*icb+ii])
							a := acc[i*ocb : i*ocb+ocb]
							for oi := range wVec {
								a[oi] += iv * int32(wVec[oi])
							}
						}
					}
				}
			}
		}
		outBase := (((b*ocOuter+co)*oh+y)*ow + owo) * ocb
		for i := 0; i < tile; i++ {
			dst := out.Data[outBase+i*ocb : outBase+(i+1)*ocb]
			a := acc[i*ocb : (i+1)*ocb]
			for oi := range a {
				k := co*ocb + oi
				v := float32(a[oi]) * rescale[k]
				if epi.Bias != nil {
					v += epi.Bias[k]
				}
				if epi.Residual != nil {
					v += epi.Residual.Data[outBase+i*ocb+oi]
				}
				if epi.ReLU && v < 0 {
					v = 0
				}
				dst[oi] = v
			}
		}
	}
}

func padInt8NCHWc(in *QTensor, padH, padW int) *QTensor {
	if padH == 0 && padW == 0 {
		return in
	}
	n, co, h, w, x := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
	ph, pw := h+2*padH, w+2*padW
	out := &QTensor{
		Shape:  []int{n, co, ph, pw, x},
		Data:   make([]int8, n*co*ph*pw*x),
		Layout: in.Layout,
		Scale:  in.Scale,
	}
	for b := 0; b < n; b++ {
		for c := 0; c < co; c++ {
			for y := 0; y < h; y++ {
				srcOff := (((b*co+c)*h + y) * w) * x
				dstOff := (((b*co+c)*ph+y+padH)*pw + padW) * x
				copy(out.Data[dstOff:dstOff+w*x], in.Data[srcOff:srcOff+w*x])
			}
		}
	}
	return out
}

package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ops"
	"repro/internal/tensor"
)

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 4, 8, 8)
	in.FillRandom(1, 2)
	q := Quantize(in)
	back := Dequantize(q)
	// Symmetric 8-bit quantization error is bounded by scale/2 per element.
	bound := float64(q.Scale) / 2 * 1.0001
	if d := tensor.MaxAbsDiff(in, back); d > bound {
		t.Fatalf("round-trip error %g exceeds scale/2 bound %g", d, bound)
	}
	for _, v := range q.Data {
		if v > 127 || v < -127 {
			t.Fatalf("quantized value %d out of symmetric range", v)
		}
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 1, 2, 2)
	q := Quantize(in)
	if q.Scale <= 0 {
		t.Fatal("zero tensor must get a positive fallback scale")
	}
	back := Dequantize(q)
	if tensor.MaxAbsDiff(in, back) != 0 {
		t.Fatal("zero tensor round trip must be exact")
	}
}

func TestPerChannelBeatsPerTensor(t *testing.T) {
	// Weights with very different per-channel magnitudes: per-channel
	// scales must reconstruct more accurately.
	w := tensor.New(tensor.OIHW(), 4, 2, 3, 3)
	for k := 0; k < 4; k++ {
		scale := float32(math.Pow(10, float64(k)-2)) // 0.01 .. 10
		seg := w.Data[k*18 : (k+1)*18]
		for i := range seg {
			seg[i] = scale * float32(i%7-3) / 3
		}
	}
	perTensor := Dequantize(Quantize(w))
	perChannel := Dequantize(QuantizeWeightsPerChannel(w))
	errT := tensor.MaxAbsDiff(w, perTensor)
	errC := tensor.MaxAbsDiff(w, perChannel)
	if errC >= errT {
		t.Fatalf("per-channel error %g should beat per-tensor %g", errC, errT)
	}
}

func TestInt8PackRoundTrips(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 8, 5, 5)
	in.FillRandom(3, 1)
	q := Quantize(in)
	packed := PackActivationNCHWc(q, 4)
	if packed.Layout.BlockC != 4 || packed.Shape[1] != 2 {
		t.Fatalf("packed shape %v layout %v", packed.Shape, packed.Layout)
	}
	// Compare against the float packing path.
	floatPacked := tensor.ToNCHWc(Dequantize(q), 4)
	deq := Dequantize(&QTensor{Shape: packed.Shape, Data: packed.Data, Layout: packed.Layout, Scale: packed.Scale})
	if tensor.MaxAbsDiff(floatPacked, deq) != 0 {
		t.Fatal("int8 activation packing disagrees with float packing")
	}

	w := tensor.New(tensor.OIHW(), 8, 8, 3, 3)
	w.FillRandom(4, 1)
	qw := Quantize(w)
	pw := PackWeightsOIHWio(qw, 4, 8)
	floatW := tensor.PackWeights(Dequantize(qw), 4, 8)
	deqW := Dequantize(&QTensor{Shape: pw.Shape, Data: pw.Data, Layout: pw.Layout, Scale: pw.Scale})
	if tensor.MaxAbsDiff(floatW, deqW) != 0 {
		t.Fatal("int8 weight packing disagrees with float packing")
	}
}

// quantConvPair prepares a quantized conv case and the float reference.
func quantConvPair(seed uint64, c, h, w, oc int, pad int) (*tensor.Tensor, *tensor.Tensor, ops.Conv2DAttrs) {
	in := tensor.New(tensor.NCHW(), 1, c, h, w)
	in.FillRandom(seed, 1)
	wt := tensor.New(tensor.OIHW(), oc, c, 3, 3)
	wt.FillRandom(seed+1, 0.5)
	attrs := ops.Conv2DAttrs{OutC: oc, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: pad, PadW: pad}
	return in, wt, attrs
}

func TestInt8ConvApproximatesFloat(t *testing.T) {
	in, wt, attrs := quantConvPair(11, 8, 10, 10, 16, 1)
	ref := ops.Conv2DNCHW(in, wt, attrs, ops.Epilogue{}, nil)

	qin := PackActivationNCHWc(Quantize(in), 8)
	qwt := PackWeightsOIHWio(QuantizeWeightsPerChannel(wt), 8, 8)
	got8 := Conv2DInt8NCHWc(qin, qwt, attrs, 8, 8, 4, ops.Epilogue{}, nil)
	got := tensor.FromNCHWc(got8)

	// Quantization noise: each output accumulates C*9 products of values
	// with elementwise error <= scale/2; bound loosely by a relative check.
	var ref2, err2 float64
	for i := range ref.Data {
		d := float64(ref.Data[i] - got.Data[i])
		err2 += d * d
		ref2 += float64(ref.Data[i]) * float64(ref.Data[i])
	}
	rel := math.Sqrt(err2 / ref2)
	if rel > 0.02 {
		t.Fatalf("int8 conv relative RMS error %.4f exceeds 2%%", rel)
	}
}

func TestInt8ConvEpilogue(t *testing.T) {
	in, wt, attrs := quantConvPair(13, 8, 8, 8, 8, 1)
	bias := make([]float32, 8)
	for i := range bias {
		bias[i] = float32(i)*0.1 - 0.3
	}
	res := tensor.New(tensor.NCHW(), 1, 8, 8, 8)
	res.FillRandom(14, 1)

	epi := ops.Epilogue{Bias: bias, ReLU: true}
	ref := ops.Conv2DNCHW(in, wt, attrs, epi, nil)

	qin := PackActivationNCHWc(Quantize(in), 8)
	qwt := PackWeightsOIHWio(QuantizeWeightsPerChannel(wt), 8, 8)
	blockedEpi := ops.Epilogue{Bias: bias, ReLU: true, Residual: nil}
	got := tensor.FromNCHWc(Conv2DInt8NCHWc(qin, qwt, attrs, 8, 8, 4, blockedEpi, nil))
	if !tensor.AllClose(ref, got, 0.05) {
		t.Fatalf("int8 fused epilogue diverges: %g", tensor.MaxAbsDiff(ref, got))
	}
	_ = res
}

func TestInt8ConvParallelMatchesSerial(t *testing.T) {
	in, wt, attrs := quantConvPair(15, 8, 9, 9, 8, 1)
	qin := PackActivationNCHWc(Quantize(in), 4)
	qwt := PackWeightsOIHWio(QuantizeWeightsPerChannel(wt), 4, 8)
	serial := Conv2DInt8NCHWc(qin, qwt, attrs, 4, 8, 4, ops.Epilogue{}, ops.Serial)
	goPar := func(n int, body func(i int)) {
		done := make(chan struct{})
		for i := 0; i < n; i++ {
			go func(i int) { body(i); done <- struct{}{} }(i)
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}
	par := Conv2DInt8NCHWc(qin, qwt, attrs, 4, 8, 4, ops.Epilogue{}, goPar)
	if tensor.MaxAbsDiff(serial, par) != 0 {
		t.Fatal("parallel int8 conv must match serial bit-for-bit")
	}
}

func TestQuickQuantRoundTripBound(t *testing.T) {
	f := func(seed uint64, scaleRaw uint8) bool {
		scale := 0.1 + float32(scaleRaw)/16
		in := tensor.New(tensor.NCHW(), 1, 2, 6, 6)
		in.FillRandom(seed, scale)
		q := Quantize(in)
		back := Dequantize(q)
		return tensor.MaxAbsDiff(in, back) <= float64(q.Scale)/2*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInt8RejectsBadLayouts(t *testing.T) {
	in, wt, attrs := quantConvPair(16, 8, 8, 8, 8, 1)
	q := Quantize(in)
	qw := Quantize(wt)
	mustPanic(t, func() { PackActivationNCHWc(Quantize(wt.Reshape(tensor.NCHW(), 8, 8, 3, 3)), 3) })
	mustPanic(t, func() { PackWeightsOIHWio(q, 4, 4) })
	mustPanic(t, func() {
		Conv2DInt8NCHWc(q, PackWeightsOIHWio(qw, 4, 4), attrs, 4, 4, 4, ops.Epilogue{}, nil) // unpacked input
	})
	mustPanic(t, func() {
		Conv2DInt8NCHWc(PackActivationNCHWc(q, 4), qw, attrs, 4, 4, 4, ops.Epilogue{}, nil) // unpacked weight
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

package quant

import (
	"testing"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// TestInt8DepthwiseMatchesFloat checks the quantized depthwise kernel against
// the fp32 depthwise template within the quantization error bound, for every
// specialized block size.
func TestInt8DepthwiseMatchesFloat(t *testing.T) {
	const c, h = 16, 10
	attrs := ops.Conv2DAttrs{OutC: c, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: c}
	in := tensor.New(tensor.NCHW(), 1, c, h, h)
	in.FillRandom(5, 1)
	wt := tensor.New(tensor.OIHW(), c, 1, 3, 3)
	wt.FillRandom(6, 0.5)
	bias := make([]float32, c)
	for i := range bias {
		bias[i] = float32(i) * 0.01
	}

	for _, bn := range []int{4, 8, 16} {
		blockedIn := tensor.ToNCHWc(in, bn)
		want := ops.Conv2DDepthwiseNCHWc(blockedIn, tensor.PackWeights(wt, 1, bn), attrs, bn, 4, true,
			ops.Epilogue{Bias: bias, ReLU: true}, nil)

		qin := Quantize(blockedIn)
		qw := PackWeightsOIHWio(QuantizeWeightsPerChannel(wt), 1, bn)
		got := Conv2DInt8DepthwiseNCHWc(qin, qw, attrs, bn, 4, ops.Epilogue{Bias: bias, ReLU: true}, nil)

		// Error bound: each int8 product carries at most sIn/2 + sW/2 relative
		// error per operand over a 9-term reduction; 0.05 absolute is generous
		// for unit-scale inputs and loose enough to be robust.
		if d := tensor.MaxAbsDiff(want, got); d > 0.05 {
			t.Fatalf("bn=%d: int8 depthwise diverges from fp32 by %g", bn, d)
		}
	}
}

// TestInt8GroupedMatchesFloat checks the grouped path of the dense int8
// template against the fp32 grouped template.
func TestInt8GroupedMatchesFloat(t *testing.T) {
	const c, oc, groups, h = 16, 32, 4, 9
	attrs := ops.Conv2DAttrs{OutC: oc, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: groups}
	in := tensor.New(tensor.NCHW(), 1, c, h, h)
	in.FillRandom(15, 1)
	wt := tensor.New(tensor.OIHW(), oc, c/groups, 3, 3)
	wt.FillRandom(16, 0.5)

	const icb, ocb = 4, 8 // divisors of c/groups and oc/groups
	blockedIn := tensor.ToNCHWc(in, icb)
	want := ops.Conv2DNCHWc(blockedIn, tensor.PackWeights(wt, icb, ocb), attrs, icb, ocb, 4, true, ops.Epilogue{}, nil)

	qin := Quantize(blockedIn)
	qw := PackWeightsOIHWio(QuantizeWeightsPerChannel(wt), icb, ocb)
	got := Conv2DInt8NCHWc(qin, qw, attrs, icb, ocb, 4, ops.Epilogue{}, nil)

	if d := tensor.MaxAbsDiff(want, got); d > 0.05 {
		t.Fatalf("int8 grouped diverges from fp32 by %g", d)
	}
}

package quant

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Conv2DInt8DepthwiseNCHWc is the quantized depthwise convolution: int8
// activations in NCHW[bn]c, int8 per-channel weights in the degenerate
// OIHW[1]i[bn]o layout (see ops.Conv2DDepthwiseNCHWc), int32 lane-wise
// accumulation, and float32 output with the fused epilogue — the scalar
// stand-in for a vpmaddwd-per-lane depthwise kernel.
func Conv2DInt8DepthwiseNCHWc(in *QTensor, weight *QTensor, attrs ops.Conv2DAttrs, bn, regN int, epi ops.Epilogue, pf ops.ParallelFor) *tensor.Tensor {
	return Conv2DInt8DepthwiseNCHWcInto(nil, in, weight, attrs, bn, regN, 1, epi, pf)
}

// Conv2DInt8DepthwiseNCHWcInto is Conv2DInt8DepthwiseNCHWc writing the
// rescaled float32 output into a caller-provided destination (nil dst
// allocates). The quantized padding buffer is produced per call, as with the
// dense int8 template: dynamic activation quantization is per-inference work.
// grain is the schedule's parallel chunk size over (batch, channel-block,
// out-row) units (<=1 means one row per work item); chunking amortizes the
// accumulator allocation, and every grain is bit-identical.
func Conv2DInt8DepthwiseNCHWcInto(dst *tensor.Tensor, in *QTensor, weight *QTensor, attrs ops.Conv2DAttrs, bn, regN, grain int, epi ops.Epilogue, pf ops.ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHWc || in.Layout.BlockC != bn {
		panic(fmt.Sprintf("quant: expected NCHW%dc input, got %v", bn, in.Layout))
	}
	if weight.Layout.Kind != tensor.LayoutOIHWio || weight.Layout.BlockC != 1 || weight.Layout.BlockK != bn {
		panic(fmt.Sprintf("quant: expected OIHW1i%do weight, got %v", bn, weight.Layout))
	}
	if regN <= 0 {
		panic("quant: reg_n must be positive")
	}
	n, cOuter, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw := weight.Shape[2], weight.Shape[3]
	if weight.Shape[0] != cOuter || !attrs.Depthwise(cOuter*bn) {
		panic(fmt.Sprintf("quant: depthwise weight %v inconsistent with %d blocked channels and attrs %+v", weight.Shape, cOuter*bn, attrs))
	}
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NCHWc(bn), n, cOuter, oh, ow, bn)
	if pf == nil {
		pf = ops.Serial
	}

	padded := padInt8NCHWc(in, attrs.PadH, attrs.PadW)
	ph, pw := padded.Shape[2], padded.Shape[3]

	// Per-channel rescale: out = acc * sIn * sW[c].
	rescale := make([]float32, cOuter*bn)
	for k := range rescale {
		sw := weight.Scale
		if weight.Scales != nil {
			sw = weight.Scales[k]
		}
		rescale[k] = in.Scale * sw
	}

	units := n * cOuter * oh
	pf(ops.Chunks(units, grain), func(ck int) {
		lo, hi := ops.ChunkBounds(ck, units, grain)
		acc := make([]int32, regN*bn)
		for unit := lo; unit < hi; unit++ {
			y := unit % oh
			rest := unit / oh
			co := rest % cOuter
			b := rest / cOuter
			wBase := co * kh * kw * bn
			rowBase := ((b*cOuter+co)*ph + y*attrs.StrideH) * pw * bn
			int8DWRow(padded, weight, out, acc, rescale, attrs, epi,
				b, co, y, cOuter, bn, regN, kh, kw, oh, ow, pw, wBase, rowBase)
		}
	})
	return out
}

// int8DWRow computes one (batch, channel-block, out-row) band of the
// quantized depthwise kernel. Factored out of the parallel dispatch so a
// chunked work item reuses one int32 accumulator tile across its rows.
func int8DWRow(padded *QTensor, weight *QTensor, out *tensor.Tensor, acc []int32, rescale []float32,
	attrs ops.Conv2DAttrs, epi ops.Epilogue,
	b, co, y, cOuter, bn, regN, kh, kw, oh, ow, pw, wBase, rowBase int) {
	for owo := 0; owo < ow; owo += regN {
		tile := regN
		if ow-owo < tile {
			tile = ow - owo
		}
		for i := range acc[:tile*bn] {
			acc[i] = 0
		}
		for r := 0; r < kh; r++ {
			rowOff := rowBase + r*pw*bn
			for s := 0; s < kw; s++ {
				wVec := weight.Data[wBase+(r*kw+s)*bn : wBase+(r*kw+s)*bn+bn]
				for i := 0; i < tile; i++ {
					base := rowOff + ((owo+i)*attrs.StrideW+s)*bn
					iv := padded.Data[base : base+bn]
					a := acc[i*bn : i*bn+bn]
					for v := range wVec {
						a[v] += int32(iv[v]) * int32(wVec[v])
					}
				}
			}
		}
		outBase := (((b*cOuter+co)*oh+y)*ow + owo) * bn
		for i := 0; i < tile; i++ {
			dst := out.Data[outBase+i*bn : outBase+(i+1)*bn]
			a := acc[i*bn : (i+1)*bn]
			for v := range a {
				k := co*bn + v
				val := float32(a[v]) * rescale[k]
				if epi.Bias != nil {
					val += epi.Bias[k]
				}
				if epi.Residual != nil {
					val += epi.Residual.Data[outBase+i*bn+v]
				}
				if epi.ReLU && val < 0 {
					val = 0
				}
				dst[v] = val
			}
		}
	}
}

package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Dense computes out = in × Wᵀ + b for a rank-2 (batch, inFeatures) input and
// a (outFeatures, inFeatures) weight. At batch size 1 (the paper's latency
// setting) this is a GEMV and is bandwidth-bound on the weight matrix.
func Dense(in, weight *tensor.Tensor, bias []float32, reluAfter bool, pf ParallelFor) *tensor.Tensor {
	return DenseInto(nil, in, weight, bias, reluAfter, pf)
}

// DenseInto is Dense writing into a caller-provided destination (nil dst
// allocates).
func DenseInto(dst, in, weight *tensor.Tensor, bias []float32, reluAfter bool, pf ParallelFor) *tensor.Tensor {
	if in.Rank() != 2 {
		panic(fmt.Sprintf("ops: Dense expects rank-2 input, got %v", in.Shape))
	}
	if weight.Rank() != 2 {
		panic(fmt.Sprintf("ops: Dense expects rank-2 weight, got %v", weight.Shape))
	}
	n, inF := in.Shape[0], in.Shape[1]
	outF, wInF := weight.Shape[0], weight.Shape[1]
	if inF != wInF {
		panic(fmt.Sprintf("ops: Dense feature mismatch %d vs %d", inF, wInF))
	}
	out := tensor.EnsureDst(dst, tensor.Flat(), n, outF)
	if pf == nil {
		pf = Serial
	}
	// One dot product per unit is far too fine for the dispatch overhead, so
	// group enough rows per work item that each chunk covers at least ~4096
	// multiply-adds. Dense layers are not schedule-searched — this fixed grain
	// only amortizes dispatch, it does not change results.
	grain := 1
	if inF > 0 {
		grain = (4096 + inF - 1) / inF
	}
	units := n * outF
	pf(Chunks(units, grain), func(ck int) {
		lo, hi := ChunkBounds(ck, units, grain)
		for unit := lo; unit < hi; unit++ {
			b := unit / outF
			o := unit % outF
			row := in.Data[b*inF : (b+1)*inF]
			wRow := weight.Data[o*inF : (o+1)*inF]
			var acc float32
			if bias != nil {
				acc = bias[o]
			}
			// Four-way unrolled dot product: the scalar stand-in for the
			// vectorized FMA chain.
			i := 0
			var a0, a1, a2, a3 float32
			for ; i+4 <= inF; i += 4 {
				a0 += row[i] * wRow[i]
				a1 += row[i+1] * wRow[i+1]
				a2 += row[i+2] * wRow[i+2]
				a3 += row[i+3] * wRow[i+3]
			}
			acc += a0 + a1 + a2 + a3
			for ; i < inF; i++ {
				acc += row[i] * wRow[i]
			}
			if reluAfter {
				acc = relu32(acc)
			}
			out.Data[unit] = acc
		}
	})
	return out
}

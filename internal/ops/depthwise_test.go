package ops

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// groupedCase builds a random grouped-conv workload: NCHW input and the
// grouped OIHW weight (out, in/groups, kh, kw).
func groupedCase(seed uint64, c, h, w, oc, kh, kw, groups int) (*tensor.Tensor, *tensor.Tensor) {
	in := tensor.New(tensor.NCHW(), 1, c, h, w)
	in.FillRandom(seed, 1)
	wt := tensor.New(tensor.OIHW(), oc, c/groups, kh, kw)
	wt.FillRandom(seed+1, 0.5)
	return in, wt
}

// refGrouped computes the grouped convolution with scalar loops, independent
// of every kernel under test.
func refGrouped(in, wt *tensor.Tensor, attrs Conv2DAttrs) *tensor.Tensor {
	c, h, w := in.Shape[1], in.Shape[2], in.Shape[3]
	groups := attrs.GroupCount()
	icPerG, ocPerG := c/groups, attrs.OutC/groups
	oh, ow := attrs.OutSize(h, w)
	out := tensor.New(tensor.NCHW(), 1, attrs.OutC, oh, ow)
	for k := 0; k < attrs.OutC; k++ {
		icBase := (k / ocPerG) * icPerG
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var acc float32
				for ci := 0; ci < icPerG; ci++ {
					for r := 0; r < attrs.KH; r++ {
						iy := y*attrs.StrideH + r - attrs.PadH
						if iy < 0 || iy >= h {
							continue
						}
						for s := 0; s < attrs.KW; s++ {
							ix := x*attrs.StrideW + s - attrs.PadW
							if ix < 0 || ix >= w {
								continue
							}
							acc += in.Data[((icBase+ci)*h+iy)*w+ix] *
								wt.Data[((k*icPerG+ci)*attrs.KH+r)*attrs.KW+s]
						}
					}
				}
				out.Data[(k*oh+y)*ow+x] = acc
			}
		}
	}
	return out
}

// TestConv2DNCHWGrouped checks the NCHW and NHWC reference kernels against
// the scalar grouped reference, including the depthwise extreme.
func TestConv2DNCHWGrouped(t *testing.T) {
	cases := []struct {
		c, oc, k, stride, pad, groups int
	}{
		{8, 8, 3, 1, 1, 8},  // depthwise
		{8, 16, 3, 2, 1, 4}, // grouped, channel expansion, strided
		{12, 12, 1, 1, 0, 3},
		{6, 6, 5, 1, 2, 2},
	}
	for i, tc := range cases {
		attrs := Conv2DAttrs{OutC: tc.oc, KH: tc.k, KW: tc.k, StrideH: tc.stride, StrideW: tc.stride, PadH: tc.pad, PadW: tc.pad, Groups: tc.groups}
		in, wt := groupedCase(uint64(i)*7+3, tc.c, 9, 9, tc.oc, tc.k, tc.k, tc.groups)
		want := refGrouped(in, wt, attrs)
		got := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
		if d := tensor.MaxAbsDiff(want, got); d > 1e-5 {
			t.Fatalf("case %d: NCHW grouped diverges by %g", i, d)
		}
		nhwc := Conv2DNHWC(tensor.NCHWToNHWC(in), wt, attrs, Epilogue{}, nil)
		if d := tensor.MaxAbsDiff(want, tensor.NHWCToNCHW(nhwc)); d > 1e-5 {
			t.Fatalf("case %d: NHWC grouped diverges by %g", i, d)
		}
	}
}

// TestConv2DNCHWcGrouped checks the blocked direct template's grouped path —
// every (ic_bn, oc_bn) pair that tiles the groups — against the NCHW
// reference.
func TestConv2DNCHWcGrouped(t *testing.T) {
	const c, oc, groups = 16, 32, 4
	for _, k := range []struct{ kh, stride, pad int }{{3, 1, 1}, {1, 1, 0}, {3, 2, 1}} {
		attrs := Conv2DAttrs{OutC: oc, KH: k.kh, KW: k.kh, StrideH: k.stride, StrideW: k.stride, PadH: k.pad, PadW: k.pad, Groups: groups}
		in, wt := groupedCase(11, c, 10, 10, oc, k.kh, k.kh, groups)
		want := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
		for _, icb := range []int{1, 2, 4} { // divisors of c/groups = 4
			for _, ocb := range []int{2, 4, 8} { // divisors of oc/groups = 8
				for _, unroll := range []bool{true, false} {
					blockedIn := tensor.ToNCHWc(in, icb)
					blockedWt := tensor.PackWeights(wt, icb, ocb)
					out := Conv2DNCHWc(blockedIn, blockedWt, attrs, icb, ocb, 4, unroll, Epilogue{}, Serial)
					if d := tensor.MaxAbsDiff(want, tensor.FromNCHWc(out)); d > 1e-5 {
						t.Fatalf("k=%d icb=%d ocb=%d unroll=%v: blocked grouped diverges by %g", k.kh, icb, ocb, unroll, d)
					}
				}
			}
		}
	}
}

// TestConv2DDepthwiseNCHWc checks the depthwise template — every block size
// including the bounds-check-free 4/8/16 microkernels, both unroll paths,
// every reg_n shape, strides and epilogues — against the NCHW reference.
func TestConv2DDepthwiseNCHWc(t *testing.T) {
	for _, tc := range []struct {
		c, h, k, stride, pad int
	}{
		{16, 12, 3, 1, 1},
		{16, 12, 3, 2, 1},
		{32, 9, 3, 1, 1},
		{8, 7, 5, 1, 2},
		{48, 8, 3, 1, 1}, // c=48 exercises bn=16 and generic bn via divisors
	} {
		attrs := Conv2DAttrs{OutC: tc.c, KH: tc.k, KW: tc.k, StrideH: tc.stride, StrideW: tc.stride, PadH: tc.pad, PadW: tc.pad, Groups: tc.c}
		in, wt := groupedCase(uint64(tc.c), tc.c, tc.h, tc.h, tc.c, tc.k, tc.k, tc.c)
		bias := make([]float32, tc.c)
		for i := range bias {
			bias[i] = float32(i%5) * 0.1
		}
		want := Conv2DNCHW(in, wt, attrs, Epilogue{Bias: bias, ReLU: true}, nil)
		for _, bn := range []int{4, 8, 16, 3} {
			if tc.c%bn != 0 {
				continue
			}
			for _, regN := range []int{1, 4, 16} {
				for _, unroll := range []bool{true, false} {
					name := fmt.Sprintf("c=%d k=%d s=%d bn=%d regN=%d unroll=%v", tc.c, tc.k, tc.stride, bn, regN, unroll)
					blockedIn := tensor.ToNCHWc(in, bn)
					packed := tensor.PackWeights(wt, 1, bn)
					out := Conv2DDepthwiseNCHWc(blockedIn, packed, attrs, bn, regN, unroll,
						Epilogue{Bias: bias, ReLU: true}, Serial)
					if d := tensor.MaxAbsDiff(want, tensor.FromNCHWc(out)); d > 1e-5 {
						t.Fatalf("%s: depthwise diverges by %g", name, d)
					}
				}
			}
		}
	}
}

// TestConv2DDepthwiseNCHWcResidual checks the fused residual path and the
// destination-buffer variant with a reused pad scratch (the session arena
// contract: the zero border must survive between calls).
func TestConv2DDepthwiseNCHWcResidual(t *testing.T) {
	const c, h, bn = 16, 10, 8
	attrs := Conv2DAttrs{OutC: c, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: c}
	in, wt := groupedCase(77, c, h, h, c, 3, 3, c)
	res := tensor.New(tensor.NCHW(), 1, c, h, h)
	res.FillRandom(99, 1)
	want := Conv2DNCHW(in, wt, attrs, Epilogue{Residual: res, ReLU: true}, nil)

	blockedIn := tensor.ToNCHWc(in, bn)
	packed := tensor.PackWeights(wt, 1, bn)
	blockedRes := tensor.ToNCHWc(res, bn)
	dst := tensor.New(tensor.NCHWc(bn), 1, c/bn, h, h, bn)
	pad := tensor.New(tensor.NCHWc(bn), PaddedShapeNCHWc(blockedIn.Shape, attrs)...)
	for pass := 0; pass < 2; pass++ { // second pass reuses the pad scratch
		out := Conv2DDepthwiseNCHWcInto(dst, pad, blockedIn, packed, attrs, bn, 4, true, 1,
			Epilogue{Residual: blockedRes, ReLU: true}, Serial)
		if d := tensor.MaxAbsDiff(want, tensor.FromNCHWc(out)); d > 1e-5 {
			t.Fatalf("pass %d: depthwise residual diverges by %g", pass, d)
		}
	}
}

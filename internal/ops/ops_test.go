package ops

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestReLU(t *testing.T) {
	in := tensor.FromData(tensor.NCHW(), []float32{-1, 0, 2.5, -0.001}, 1, 1, 2, 2)
	out := ReLU(in, nil)
	want := []float32{0, 0, 2.5, 0}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	if !out.Layout.Equal(in.Layout) {
		t.Fatal("ReLU must preserve layout (layout-oblivious)")
	}
}

func TestReLULayoutOblivious(t *testing.T) {
	// Applying ReLU in blocked layout then unpacking must equal unpacking
	// then applying ReLU: the definition of a layout-oblivious operation.
	in := tensor.New(tensor.NCHW(), 1, 8, 5, 5)
	in.FillRandom(42, 2)
	blocked := tensor.ToNCHWc(in, 4)
	a := tensor.FromNCHWc(ReLU(blocked, nil))
	b := ReLU(in, nil)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("ReLU must commute with layout transforms")
	}
}

func TestAdd(t *testing.T) {
	a := tensor.FromData(tensor.NCHW(), []float32{1, 2, 3, 4}, 1, 1, 2, 2)
	b := tensor.FromData(tensor.NCHW(), []float32{10, 20, 30, 40}, 1, 1, 2, 2)
	out := Add(a, b, nil)
	for i := range out.Data {
		if out.Data[i] != a.Data[i]+b.Data[i] {
			t.Fatalf("Add wrong at %d", i)
		}
	}
	mustPanic(t, func() { Add(a, tensor.ToNCHWc(b, 1), nil) })
}

func TestSoftmax(t *testing.T) {
	in := tensor.FromData(tensor.Flat(), []float32{1, 2, 3, 4, 1000, 1000, 1000, 1000}, 2, 4)
	out := Softmax(in)
	for b := 0; b < 2; b++ {
		var sum float64
		for i := 0; i < 4; i++ {
			v := float64(out.At(b, i))
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", b, sum)
		}
	}
	// Monotonicity: larger logits get larger probability.
	if !(out.At(0, 3) > out.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	// Uniform logits (with overflow-prone magnitude) stay uniform.
	if math.Abs(float64(out.At(1, 0))-0.25) > 1e-5 {
		t.Fatal("softmax not numerically stable")
	}
}

func TestSigmoid(t *testing.T) {
	in := tensor.FromData(tensor.Flat(), []float32{0, 100, -100}, 1, 3)
	out := Sigmoid(in, nil)
	if math.Abs(float64(out.Data[0])-0.5) > 1e-6 || out.Data[1] < 0.999 || out.Data[2] > 0.001 {
		t.Fatalf("sigmoid wrong: %v", out.Data)
	}
}

func TestFlatten(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 2, 3, 4, 5)
	in.FillSeq()
	out := Flatten(in)
	if out.Shape[0] != 2 || out.Shape[1] != 60 {
		t.Fatalf("Flatten shape = %v", out.Shape)
	}
	if out.Layout.Kind != tensor.LayoutFlat {
		t.Fatal("Flatten must produce flat layout")
	}
	// Layout-dependent: blocked input must be rejected.
	mustPanic(t, func() { Flatten(tensor.ToNCHWc(in.Reshape(tensor.NCHW(), 2, 3, 4, 5), 3)) })
}

func TestMaxPool(t *testing.T) {
	in := tensor.FromData(tensor.NCHW(), []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := Pool2D(in, PoolAttrs{Kind: MaxPool, KH: 2, KW: 2, StrideH: 2, StrideW: 2}, nil)
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("maxpool[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestAvgPool(t *testing.T) {
	in := tensor.FromData(tensor.NCHW(), []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := Pool2D(in, PoolAttrs{Kind: AvgPool, KH: 2, KW: 2, StrideH: 2, StrideW: 2}, nil)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("avgpool[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestPoolLayoutTolerant(t *testing.T) {
	// Pooling in blocked layout must equal pooling in NCHW: the defining
	// property of a layout-tolerant operation (Section 3.2 category 2).
	in := tensor.New(tensor.NCHW(), 1, 16, 9, 9)
	in.FillRandom(3, 1)
	attrs := PoolAttrs{Kind: MaxPool, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	ref := Pool2D(in, attrs, nil)
	blocked := Pool2D(tensor.ToNCHWc(in, 8), attrs, nil)
	if blocked.Layout.BlockC != 8 {
		t.Fatal("blocked pooling must preserve block size")
	}
	if tensor.MaxAbsDiff(ref, tensor.FromNCHWc(blocked)) != 0 {
		t.Fatal("blocked pooling diverges from NCHW pooling")
	}
	// Same for average pooling.
	attrs.Kind = AvgPool
	ref = Pool2D(in, attrs, nil)
	blocked = Pool2D(tensor.ToNCHWc(in, 4), attrs, nil)
	if tensor.MaxAbsDiff(ref, tensor.FromNCHWc(blocked)) > 1e-6 {
		t.Fatal("blocked avg pooling diverges")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 4, 3, 3)
	for c := 0; c < 4; c++ {
		for p := 0; p < 9; p++ {
			in.Data[c*9+p] = float32(c)
		}
	}
	out := GlobalAvgPool(in, nil)
	for c := 0; c < 4; c++ {
		if out.At(0, c, 0, 0) != float32(c) {
			t.Fatalf("gap channel %d = %v", c, out.At(0, c, 0, 0))
		}
	}
	// Blocked input gives the same result in NCHW output.
	in.FillRandom(9, 1)
	a := GlobalAvgPool(in, nil)
	b := GlobalAvgPool(tensor.ToNCHWc(in, 2), nil)
	if tensor.MaxAbsDiff(a, b) > 1e-6 {
		t.Fatal("blocked global pool diverges")
	}
}

func TestBatchNormInference(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 2, 2, 2)
	in.FillSeq()
	p := BatchNormParams{
		Gamma: []float32{2, 1},
		Beta:  []float32{1, 0},
		Mean:  []float32{0.5, 0.25},
		Var:   []float32{4, 1},
		Eps:   0,
	}
	out := BatchNormInference(in, p, nil)
	// y = gamma*(x-mean)/sqrt(var) + beta
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			x := float64(in.Data[c*4+i])
			want := float64(p.Gamma[c])*(x-float64(p.Mean[c]))/math.Sqrt(float64(p.Var[c])) + float64(p.Beta[c])
			if math.Abs(float64(out.Data[c*4+i])-want) > 1e-5 {
				t.Fatalf("bn[%d,%d] = %v, want %v", c, i, out.Data[c*4+i], want)
			}
		}
	}
}

func TestBatchNormLayoutTolerant(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 8, 4, 4)
	in.FillRandom(11, 1)
	p := randomBN(8, 12)
	ref := BatchNormInference(in, p, nil)
	blocked := BatchNormInference(tensor.ToNCHWc(in, 4), p, nil)
	if tensor.MaxAbsDiff(ref, tensor.FromNCHWc(blocked)) > 1e-5 {
		t.Fatal("blocked batchnorm diverges")
	}
}

func randomBN(c int, seed uint64) BatchNormParams {
	mk := func(off uint64, scale, bias float32) []float32 {
		t := tensor.New(tensor.Flat(), 1, c)
		t.FillRandom(seed+off, scale)
		out := make([]float32, c)
		for i, v := range t.Data {
			out[i] = v + bias
		}
		return out
	}
	return BatchNormParams{
		Gamma: mk(0, 0.5, 1),
		Beta:  mk(1, 0.5, 0),
		Mean:  mk(2, 0.5, 0),
		Var:   mk(3, 0.4, 1), // keep variance positive
		Eps:   1e-5,
	}
}

func TestFoldBatchNormEquivalence(t *testing.T) {
	// conv + BN must equal conv with folded weights/bias. This validates the
	// SimplifyInference pass's arithmetic.
	in, wt := convCase(21, 8, 6, 6, 16, 3, 3)
	attrs := Conv2DAttrs{OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	p := randomBN(16, 31)

	convOut := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
	want := BatchNormInference(convOut, p, nil)

	foldedW, foldedB := FoldBatchNorm(wt, nil, p)
	got := Conv2DNCHW(in, foldedW, attrs, Epilogue{Bias: foldedB}, nil)
	if !tensor.AllClose(want, got, 1e-4) {
		t.Fatalf("folded BN diverges: %g", tensor.MaxAbsDiff(want, got))
	}

	// With a pre-existing bias.
	bias := make([]float32, 16)
	for i := range bias {
		bias[i] = float32(i) * 0.01
	}
	convOut = Conv2DNCHW(in, wt, attrs, Epilogue{Bias: bias}, nil)
	want = BatchNormInference(convOut, p, nil)
	foldedW, foldedB = FoldBatchNorm(wt, bias, p)
	got = Conv2DNCHW(in, foldedW, attrs, Epilogue{Bias: foldedB}, nil)
	if !tensor.AllClose(want, got, 1e-4) {
		t.Fatalf("folded BN with bias diverges: %g", tensor.MaxAbsDiff(want, got))
	}
}

func TestQuickFoldBatchNorm(t *testing.T) {
	f := func(seed uint64) bool {
		in, wt := convCase(seed, 4, 5, 5, 8, 3, 3)
		attrs := Conv2DAttrs{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		p := randomBN(8, seed+100)
		want := BatchNormInference(Conv2DNCHW(in, wt, attrs, Epilogue{}, nil), p, nil)
		fw, fb := FoldBatchNorm(wt, nil, p)
		got := Conv2DNCHW(in, fw, attrs, Epilogue{Bias: fb}, nil)
		return tensor.AllClose(want, got, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDense(t *testing.T) {
	in := tensor.FromData(tensor.Flat(), []float32{1, 2, 3}, 1, 3)
	wt := tensor.FromData(tensor.Flat(), []float32{
		1, 0, 0,
		0, 1, 0,
		1, 1, 1,
		-1, -1, -1,
	}, 4, 3)
	out := Dense(in, wt, []float32{0, 0, 0, 100}, false, nil)
	want := []float32{1, 2, 6, 94}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("dense[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	// ReLU variant.
	out = Dense(in, wt, []float32{0, 0, 0, -100}, true, nil)
	if out.Data[3] != 0 {
		t.Fatalf("dense relu failed: %v", out.Data[3])
	}
}

func TestDenseUnrollTail(t *testing.T) {
	// Feature counts not divisible by 4 must still be exact.
	for _, inF := range []int{1, 2, 3, 5, 7, 9} {
		in := tensor.New(tensor.Flat(), 1, inF)
		in.FillRandom(uint64(inF), 1)
		wt := tensor.New(tensor.Flat(), 2, inF)
		wt.FillRandom(uint64(inF)+50, 1)
		out := Dense(in, wt, nil, false, nil)
		for o := 0; o < 2; o++ {
			var want float64
			for i := 0; i < inF; i++ {
				want += float64(in.Data[i]) * float64(wt.Data[o*inF+i])
			}
			if math.Abs(float64(out.Data[o])-want) > 1e-4 {
				t.Fatalf("inF=%d dense[%d] = %v, want %v", inF, o, out.Data[o], want)
			}
		}
	}
}

func TestConcatNCHW(t *testing.T) {
	a := tensor.New(tensor.NCHW(), 1, 2, 2, 2)
	a.Fill(1)
	b := tensor.New(tensor.NCHW(), 1, 3, 2, 2)
	b.Fill(2)
	out := Concat([]*tensor.Tensor{a, b}, nil)
	if out.Shape[1] != 5 {
		t.Fatalf("concat channels = %d, want 5", out.Shape[1])
	}
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 4, 1, 1) != 2 {
		t.Fatal("concat values wrong")
	}
}

func TestConcatBlockedMatchesNCHW(t *testing.T) {
	a := tensor.New(tensor.NCHW(), 1, 8, 3, 3)
	a.FillRandom(1, 1)
	b := tensor.New(tensor.NCHW(), 1, 16, 3, 3)
	b.FillRandom(2, 1)
	ref := Concat([]*tensor.Tensor{a, b}, nil)
	blocked := Concat([]*tensor.Tensor{tensor.ToNCHWc(a, 8), tensor.ToNCHWc(b, 8)}, nil)
	if tensor.MaxAbsDiff(ref, tensor.FromNCHWc(blocked)) != 0 {
		t.Fatal("blocked concat diverges from NCHW concat")
	}
	mustPanic(t, func() {
		Concat([]*tensor.Tensor{tensor.ToNCHWc(a, 8), tensor.ToNCHWc(b, 4)}, nil)
	})
}

func TestMultiBoxPrior(t *testing.T) {
	anchors := MultiBoxPrior(2, 2, []float32{0.2, 0.4}, []float32{1, 2})
	// perPixel = 2 + 2 - 1 = 3; total = 2*2*3 = 12 anchors.
	if anchors.Shape[1] != 12 {
		t.Fatalf("anchor count = %d, want 12", anchors.Shape[1])
	}
	// First anchor: center (0.25, 0.25), size 0.2, ratio 1.
	got := anchors.Data[:4]
	want := []float32{0.15, 0.15, 0.35, 0.35}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-6 {
			t.Fatalf("anchor[0] = %v, want %v", got, want)
		}
	}
	// All centers inside the unit square, width/height positive.
	for a := 0; a < 12; a++ {
		b := anchors.Data[a*4 : a*4+4]
		if b[2] <= b[0] || b[3] <= b[1] {
			t.Fatalf("degenerate anchor %d: %v", a, b)
		}
	}
}

func TestMultiBoxDetection(t *testing.T) {
	// Two anchors, two classes (+background). Anchor 0 strongly class 1,
	// anchor 1 strongly class 2, plus a duplicate of anchor 0 that NMS must
	// suppress.
	anchors := tensor.FromData(tensor.Flat(), []float32{
		0.1, 0.1, 0.3, 0.3,
		0.6, 0.6, 0.9, 0.9,
		0.1, 0.1, 0.3, 0.3,
	}, 1, 3, 4)
	cls := tensor.FromData(tensor.Flat(), []float32{
		0.05, 0.1, 0.05, // background
		0.9, 0.1, 0.85, // class 1
		0.05, 0.8, 0.1, // class 2
	}, 1, 3, 3)
	loc := tensor.New(tensor.Flat(), 1, 12) // zero offsets: boxes = anchors
	dets := MultiBoxDetection(cls, loc, anchors, DefaultMultiBoxDetectionAttrs())
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2 (NMS must drop the duplicate)", len(dets))
	}
	if dets[0].Class != 0 || dets[0].Score != 0.9 {
		t.Fatalf("top detection = %+v", dets[0])
	}
	if dets[1].Class != 1 {
		t.Fatalf("second detection = %+v", dets[1])
	}
}

func TestIoU(t *testing.T) {
	a := [4]float32{0, 0, 1, 1}
	if got := iou(a, a); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("self IoU = %v", got)
	}
	b := [4]float32{2, 2, 3, 3}
	if got := iou(a, b); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
	c := [4]float32{0.5, 0, 1.5, 1}
	// Intersection 0.5, union 1.5.
	if got := iou(a, c); math.Abs(float64(got)-1.0/3) > 1e-6 {
		t.Fatalf("partial IoU = %v", got)
	}
}

func TestApplyChunkedCoversAll(t *testing.T) {
	n := (1 << 14) + 37 // exercise the tail chunk
	in := tensor.New(tensor.Flat(), 1, n)
	for i := range in.Data {
		in.Data[i] = -1
	}
	out := ReLU(in, nil)
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("element %d not processed: %v", i, v)
		}
	}
}

package ops

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNormParams carries the inference-time parameters of a BatchNorm node:
// per-channel scale (gamma), shift (beta) and the moving statistics.
type BatchNormParams struct {
	Gamma, Beta, Mean, Var []float32
	Eps                    float32
}

// Channels returns the channel count of the parameters.
func (p BatchNormParams) Channels() int { return len(p.Gamma) }

// scaleShift converts the four-parameter form into the two-parameter
// inference form: y = x*scale + shift.
func (p BatchNormParams) scaleShift() (scale, shift []float32) {
	c := p.Channels()
	scale = make([]float32, c)
	shift = make([]float32, c)
	for i := 0; i < c; i++ {
		s := p.Gamma[i] / float32(math.Sqrt(float64(p.Var[i]+p.Eps)))
		scale[i] = s
		shift[i] = p.Beta[i] - p.Mean[i]*s
	}
	return scale, shift
}

// BatchNormInference applies y = gamma*(x-mean)/sqrt(var+eps) + beta per
// channel. Layout-tolerant: accepts NCHW and NCHW[x]c (Section 3.2 category
// 2). In optimized graphs this operator is folded into the preceding
// convolution by FoldBatchNorm and never executes.
func BatchNormInference(in *tensor.Tensor, p BatchNormParams, pf ParallelFor) *tensor.Tensor {
	return BatchNormInferenceInto(nil, in, p, pf)
}

// BatchNormInferenceInto is BatchNormInference writing into a caller-provided
// destination (nil dst allocates). The scale/shift working vectors are still
// derived per call; optimized graphs fold BatchNorm away entirely, so this
// path is only reached with DisableBNFold.
func BatchNormInferenceInto(dst, in *tensor.Tensor, p BatchNormParams, pf ParallelFor) *tensor.Tensor {
	scale, shift := p.scaleShift()
	switch in.Layout.Kind {
	case tensor.LayoutNCHW:
		n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
		if c != p.Channels() {
			panic(fmt.Sprintf("ops: batchnorm channel mismatch %d vs %d", c, p.Channels()))
		}
		out := tensor.EnsureDst(dst, in.Layout, in.Shape...)
		if pf == nil {
			pf = Serial
		}
		pf(n*c, func(unit int) {
			ch := unit % c
			s, sh := scale[ch], shift[ch]
			src := in.Data[unit*h*w : (unit+1)*h*w]
			dst := out.Data[unit*h*w : (unit+1)*h*w]
			for i, v := range src {
				dst[i] = v*s + sh
			}
		})
		return out
	case tensor.LayoutNCHWc:
		n, co, h, w, x := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
		if co*x != p.Channels() {
			panic(fmt.Sprintf("ops: batchnorm channel mismatch %d vs %d", co*x, p.Channels()))
		}
		out := tensor.EnsureDst(dst, in.Layout, in.Shape...)
		if pf == nil {
			pf = Serial
		}
		pf(n*co, func(unit int) {
			ch := unit % co
			src := in.Data[unit*h*w*x:]
			dst := out.Data[unit*h*w*x:]
			for pix := 0; pix < h*w; pix++ {
				for ci := 0; ci < x; ci++ {
					v := src[pix*x+ci]
					dst[pix*x+ci] = v*scale[ch*x+ci] + shift[ch*x+ci]
				}
			}
		})
		return out
	default:
		panic(fmt.Sprintf("ops: BatchNormInference supports NCHW and NCHWc, got %v", in.Layout))
	}
}

// FoldBatchNorm folds an inference BatchNorm into the preceding convolution's
// weight and bias: W'[o,...] = W[o,...]*scale[o], b'[o] = b[o]*scale[o] +
// shift[o]. This is one of the "simplifying inference" graph optimizations
// inherited from the TVM stack (Section 3). The weight must be OIHW; a new
// weight and bias are returned.
func FoldBatchNorm(weight *tensor.Tensor, bias []float32, p BatchNormParams) (*tensor.Tensor, []float32) {
	if weight.Layout.Kind != tensor.LayoutOIHW {
		panic(fmt.Sprintf("ops: FoldBatchNorm expects OIHW weight, got %v", weight.Layout))
	}
	o := weight.Shape[0]
	if o != p.Channels() {
		panic(fmt.Sprintf("ops: FoldBatchNorm channel mismatch %d vs %d", o, p.Channels()))
	}
	scale, shift := p.scaleShift()
	newW := weight
	if len(weight.Data) > 0 {
		perOut := weight.NumElements() / o
		newW = weight.Clone()
		for k := 0; k < o; k++ {
			s := scale[k]
			seg := newW.Data[k*perOut : (k+1)*perOut]
			for i := range seg {
				seg[i] *= s
			}
		}
	}
	// Shape-only weights (prediction-only graphs) keep their empty payload;
	// the folded bias below is still produced so graph structure matches.
	newB := make([]float32, o)
	for k := 0; k < o; k++ {
		var b float32
		if bias != nil {
			b = bias[k]
		}
		newB[k] = b*scale[k] + shift[k]
	}
	return newW, newB
}

package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Winograd F(2x2, 3x3) convolution — the paper lists "extending to other
// convolution computation algorithms such as Winograd" as future work
// (Section 6) and notes NeoCPU is compatible with such kernels (Section 1).
// This implementation slots in beside the direct template: same OIHW weights
// (transformed once at compile time, like the layout pre-packing), same
// epilogue fusion, NCHW activations, 3x3 stride-1 convolutions only.
//
// Per 2x2 output tile the algorithm computes
//
//	Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//
// with the canonical F(2,3) matrices, replacing 36 multiplies by 16 per
// channel pair (a 2.25x multiply reduction).

// WinogradWeightTransform computes U = G g Gᵀ for every (out, in) channel
// pair of a 3x3 OIHW weight. The result is stored as a flat tensor of shape
// (16, O, I): component-major so the inner accumulation over input channels
// is contiguous.
func WinogradWeightTransform(weight *tensor.Tensor) *tensor.Tensor {
	if weight.Layout.Kind != tensor.LayoutOIHW {
		panic(fmt.Sprintf("ops: WinogradWeightTransform expects OIHW, got %v", weight.Layout))
	}
	o, i, kh, kw := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	if kh != 3 || kw != 3 {
		panic(fmt.Sprintf("ops: Winograd F(2,3) requires 3x3 kernels, got %dx%d", kh, kw))
	}
	out := tensor.New(tensor.Flat(), 16, o, i)
	for oc := 0; oc < o; oc++ {
		for ic := 0; ic < i; ic++ {
			g := weight.Data[(oc*i+ic)*9 : (oc*i+ic)*9+9]
			// t = G g  (4x3), with G = [1 0 0; ½ ½ ½; ½ -½ ½; 0 0 1].
			var t [4][3]float32
			for c := 0; c < 3; c++ {
				g0, g1, g2 := g[c], g[3+c], g[6+c]
				t[0][c] = g0
				t[1][c] = 0.5 * (g0 + g1 + g2)
				t[2][c] = 0.5 * (g0 - g1 + g2)
				t[3][c] = g2
			}
			// u = t Gᵀ (4x4).
			for r := 0; r < 4; r++ {
				u0 := t[r][0]
				u1 := 0.5 * (t[r][0] + t[r][1] + t[r][2])
				u2 := 0.5 * (t[r][0] - t[r][1] + t[r][2])
				u3 := t[r][2]
				for c, v := range [4]float32{u0, u1, u2, u3} {
					out.Data[((r*4+c)*o+oc)*i+ic] = v
				}
			}
		}
	}
	return out
}

// WinogradWeightTransformNCHWc computes U = G g Gᵀ for a 3x3 OIHW weight and
// packs it for the blocked kernel as a flat tensor of shape
// (16, O/ocb, I/icb, icb, ocb): transform-component major, then the output
// block, then contiguous input channels with the ocb sub-channels innermost —
// so the transform-domain reduction's inner fmadd runs over a dense ocb-wide
// vector, exactly like the direct template's weight slab. Like PackWeights,
// this runs once at compile time.
func WinogradWeightTransformNCHWc(weight *tensor.Tensor, icb, ocb int) *tensor.Tensor {
	u := WinogradWeightTransform(weight) // (16, O, I)
	o, i := u.Shape[1], u.Shape[2]
	if icb <= 0 || i%icb != 0 {
		panic(fmt.Sprintf("ops: in-channels %d not divisible by block %d", i, icb))
	}
	if ocb <= 0 || o%ocb != 0 {
		panic(fmt.Sprintf("ops: out-channels %d not divisible by block %d", o, ocb))
	}
	oOuter, iOuter := o/ocb, i/icb
	out := tensor.New(tensor.Flat(), 16, oOuter, iOuter, icb, ocb)
	for xi := 0; xi < 16; xi++ {
		for oc := 0; oc < o; oc++ {
			for ic := 0; ic < i; ic++ {
				v := u.Data[(xi*o+oc)*i+ic]
				dst := ((((xi*oOuter+oc/ocb)*iOuter+ic/icb)*icb + ic%icb) * ocb) + oc%ocb
				out.Data[dst] = v
			}
		}
	}
	return out
}

// WinogradScratchShape returns the buffer shape Conv2DWinogradNCHWcInto needs
// for its per-tile-row transform scratch (the V tiles of every input channel),
// given the blocked input's physical NCHW[x]c shape. One row per parallel
// unit, so concurrent units never share a slice; Sessions use it to size
// arenas once and keep steady-state execution allocation-free.
func WinogradScratchShape(inShape []int, attrs Conv2DAttrs) []int {
	n, icOuter, h, w, icb := inShape[0], inShape[1], inShape[2], inShape[3], inShape[4]
	oh, _ := attrs.OutSize(h, w)
	tilesH := (oh + 1) / 2
	return []int{n * tilesH, 16 * icOuter * icb}
}

// Conv2DWinogradNCHWc is the Winograd F(2x2, 3x3) convolution in the blocked
// NCHW[x]c layout: it consumes NCHW[icb]c activations and produces
// NCHW[ocb]c, presenting exactly the direct template's layout interface so
// graph-level transform elimination applies unchanged. Weights must be
// pre-transformed by WinogradWeightTransformNCHWc.
func Conv2DWinogradNCHWc(in, transformed *tensor.Tensor, attrs Conv2DAttrs, icb, ocb int, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	return Conv2DWinogradNCHWcInto(nil, nil, in, transformed, attrs, icb, ocb, 1, epi, pf)
}

// Conv2DWinogradNCHWcInto is Conv2DWinogradNCHWc writing into caller-provided
// buffers: dst receives the blocked output and scratch (sized per
// WinogradScratchShape) holds the per-row V tiles. Either may be nil, in
// which case it is allocated. Padding is applied implicitly by the data
// transform's border handling — no explicit padding scratch is needed.
// grain is the schedule's parallel chunk size over (batch, tile-row) units
// (<=1 means one tile row per work item); any grain computes bit-identical
// output, and each unit keeps its own V-scratch row regardless of chunking.
func Conv2DWinogradNCHWcInto(dst, scratch *tensor.Tensor, in, transformed *tensor.Tensor, attrs Conv2DAttrs, icb, ocb, grain int, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHWc || in.Layout.BlockC != icb {
		panic(fmt.Sprintf("ops: Conv2DWinogradNCHWc expects NCHW%dc input, got %v", icb, in.Layout))
	}
	if attrs.KH != 3 || attrs.KW != 3 || attrs.StrideH != 1 || attrs.StrideW != 1 {
		panic("ops: Conv2DWinogradNCHWc supports 3x3 stride-1 convolutions only")
	}
	n, icOuter, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	c := icOuter * icb
	ocOuter := transformed.Shape[1]
	if transformed.Shape[0] != 16 || transformed.Shape[2] != icOuter ||
		transformed.Shape[3] != icb || transformed.Shape[4] != ocb {
		panic(fmt.Sprintf("ops: transformed weight shape %v inconsistent with NCHW%dc input (%d blocks) and oc_bn %d",
			transformed.Shape, icb, icOuter, ocb))
	}
	if attrs.OutC != ocOuter*ocb {
		panic(fmt.Sprintf("ops: transformed weight covers %d output channels, attrs want %d", ocOuter*ocb, attrs.OutC))
	}
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NCHWc(ocb), n, ocOuter, oh, ow, ocb)
	if pf == nil {
		pf = Serial
	}

	tilesH := (oh + 1) / 2
	tilesW := (ow + 1) / 2
	vscr := tensor.EnsureDst(scratch, tensor.Flat(), n*tilesH, 16*c)
	uStride := icOuter * icb * ocb // one (component, oc-block) slab

	// One parallel unit per (batch, tile row) — the data transform of each
	// tile is computed once and amortized across every output block — grouped
	// `grain` rows to a work item. Each unit still owns its private V-scratch
	// row (indexed by unit id, not chunk id), so chunking never aliases the
	// transform scratch.
	units := n * tilesH
	pf(Chunks(units, grain), func(ck int) {
		lo, hi := ChunkBounds(ck, units, grain)
		// Component accumulators for one output block. The fixed-size backing
		// array keeps the tile on the goroutine stack (no per-row allocation)
		// for every oc_bn the schedule space emits.
		var mArr [1024]float32
		var m []float32
		if 16*ocb <= len(mArr) {
			m = mArr[:16*ocb]
		} else {
			m = make([]float32, 16*ocb)
		}
		for unit := lo; unit < hi; unit++ {
			b := unit / tilesH
			th := unit % tilesH
			v := vscr.Data[unit*16*c : (unit+1)*16*c]
			winogradTileRow(in, transformed, out, v, m, attrs, epi,
				b, th, tilesW, icOuter, icb, ocOuter, ocb, c, h, w, oh, ow, uStride)
		}
	})
	return out
}

// winogradTileRow computes one (batch, tile-row) band of the blocked Winograd
// kernel: data transform into the row's V scratch, transform-domain products,
// inverse transform and epilogue store. Factored out of the parallel dispatch
// so a chunked work item reuses one M-accumulator tile across its rows.
func winogradTileRow(in, transformed, out *tensor.Tensor, v, m []float32, attrs Conv2DAttrs, epi Epilogue,
	b, th, tilesW, icOuter, icb, ocOuter, ocb, c, h, w, oh, ow, uStride int) {
	for tw := 0; tw < tilesW; tw++ {
		oy := th * 2
		ox := tw * 2
		iy0 := oy - attrs.PadH
		ix0 := ox - attrs.PadW

		// V = Bᵀ d B per input channel, read from the blocked layout.
		for coi := 0; coi < icOuter; coi++ {
			rowBase := (b*icOuter + coi) * h
			for ii := 0; ii < icb; ii++ {
				ch := coi*icb + ii
				var d [4][4]float32
				for r := 0; r < 4; r++ {
					iy := iy0 + r
					if iy < 0 || iy >= h {
						continue
					}
					row := in.Data[(rowBase+iy)*w*icb:]
					for cc := 0; cc < 4; cc++ {
						ix := ix0 + cc
						if ix >= 0 && ix < w {
							d[r][cc] = row[ix*icb+ii]
						}
					}
				}
				// t = Bᵀ d, with Bᵀ = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1].
				var t [4][4]float32
				for cc := 0; cc < 4; cc++ {
					t[0][cc] = d[0][cc] - d[2][cc]
					t[1][cc] = d[1][cc] + d[2][cc]
					t[2][cc] = d[2][cc] - d[1][cc]
					t[3][cc] = d[1][cc] - d[3][cc]
				}
				// V = t B.
				for r := 0; r < 4; r++ {
					v[(r*4+0)*c+ch] = t[r][0] - t[r][2]
					v[(r*4+1)*c+ch] = t[r][1] + t[r][2]
					v[(r*4+2)*c+ch] = t[r][2] - t[r][1]
					v[(r*4+3)*c+ch] = t[r][1] - t[r][3]
				}
			}
		}

		for co := 0; co < ocOuter; co++ {
			// M[xi][:] = Σ_ch U[xi][co][ch][:] * V[xi][ch]: the transform-
			// domain product, reduced over all input channels with the
			// ocb sub-channels vectorized like the direct template.
			for i := range m {
				m[i] = 0
			}
			for xi := 0; xi < 16; xi++ {
				uRow := transformed.Data[(xi*ocOuter+co)*uStride : (xi*ocOuter+co+1)*uStride]
				winogradAccum(m[xi*ocb:xi*ocb+ocb], uRow, v[xi*c:xi*c+c], ocb)
			}

			// Y = Aᵀ M A per output sub-channel, Aᵀ = [1 1 1 0; 0 1 -1 -1].
			outBase := (b*ocOuter + co) * oh
			for oi := 0; oi < ocb; oi++ {
				var mm [4][4]float32
				for r := 0; r < 4; r++ {
					for cc := 0; cc < 4; cc++ {
						mm[r][cc] = m[(r*4+cc)*ocb+oi]
					}
				}
				var t0, t1 [4]float32
				for cc := 0; cc < 4; cc++ {
					t0[cc] = mm[0][cc] + mm[1][cc] + mm[2][cc]
					t1[cc] = mm[1][cc] - mm[2][cc] - mm[3][cc]
				}
				y00 := t0[0] + t0[1] + t0[2]
				y01 := t0[1] - t0[2] - t0[3]
				y10 := t1[0] + t1[1] + t1[2]
				y11 := t1[1] - t1[2] - t1[3]

				store := func(dy, dx int, val float32) {
					yy, xx := oy+dy, ox+dx
					if yy >= oh || xx >= ow {
						return
					}
					idx := ((outBase+yy)*ow+xx)*ocb + oi
					if epi.Bias != nil {
						val += epi.Bias[co*ocb+oi]
					}
					if epi.Residual != nil {
						val += epi.Residual.Data[idx]
					}
					if epi.ReLU {
						val = relu32(val)
					}
					out.Data[idx] = val
				}
				store(0, 0, y00)
				store(0, 1, y01)
				store(1, 0, y10)
				store(1, 1, y11)
			}
		}
	}
}

// winogradAccum computes m[:ocb] += v[ch] * u[ch*ocb:(ch+1)*ocb] over every
// input channel: the transform-domain fmadd reduction. The vector-width block
// sizes the schedules actually pick are specialized with fixed-size array
// pointers so the hot loop carries no bounds checks.
func winogradAccum(m, u, v []float32, ocb int) {
	switch ocb {
	case 4:
		a := (*[4]float32)(m)
		for ch, vv := range v {
			w := (*[4]float32)(u[ch*4:])
			for k := 0; k < 4; k++ {
				a[k] += vv * w[k]
			}
		}
	case 8:
		a := (*[8]float32)(m)
		for ch, vv := range v {
			w := (*[8]float32)(u[ch*8:])
			for k := 0; k < 8; k++ {
				a[k] += vv * w[k]
			}
		}
	case 16:
		a := (*[16]float32)(m)
		for ch, vv := range v {
			w := (*[16]float32)(u[ch*16:])
			for k := 0; k < 16; k++ {
				a[k] += vv * w[k]
			}
		}
	default:
		for ch, vv := range v {
			w := u[ch*ocb : ch*ocb+ocb]
			for k := range w {
				m[k] += vv * w[k]
			}
		}
	}
}

// Conv2DWinograd performs a 3x3 stride-1 convolution over an NCHW input
// using the F(2x2, 3x3) Winograd algorithm with pre-transformed weights from
// WinogradWeightTransform. Odd output dimensions are handled by computing
// the final partial tile and discarding the out-of-range half.
func Conv2DWinograd(in, transformed *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHW {
		panic(fmt.Sprintf("ops: Conv2DWinograd expects NCHW input, got %v", in.Layout))
	}
	if attrs.KH != 3 || attrs.KW != 3 || attrs.StrideH != 1 || attrs.StrideW != 1 {
		panic("ops: Conv2DWinograd supports 3x3 stride-1 convolutions only")
	}
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc := transformed.Shape[1]
	if transformed.Shape[0] != 16 || transformed.Shape[2] != c {
		panic(fmt.Sprintf("ops: transformed weight shape %v inconsistent with input channels %d", transformed.Shape, c))
	}
	oh, ow := attrs.OutSize(h, w)
	out := tensor.New(tensor.NCHW(), n, oc, oh, ow)
	if pf == nil {
		pf = Serial
	}

	tilesH := (oh + 1) / 2
	tilesW := (ow + 1) / 2
	ocIn := oc * c

	pf(n*tilesH, func(unit int) {
		b := unit / tilesH
		th := unit % tilesH
		// Per-row scratch: V tiles for all channels, M accumulators.
		v := make([]float32, 16*c)
		m := make([]float32, 16*oc)
		for tw := 0; tw < tilesW; tw++ {
			oy := th * 2
			ox := tw * 2
			// Input tile origin (top-left of the 4x4 patch).
			iy0 := oy - attrs.PadH
			ix0 := ox - attrs.PadW

			// V = Bᵀ d B per input channel.
			for ch := 0; ch < c; ch++ {
				var d [4][4]float32
				base := (b*c + ch) * h * w
				for r := 0; r < 4; r++ {
					iy := iy0 + r
					if iy < 0 || iy >= h {
						continue
					}
					row := in.Data[base+iy*w:]
					for cc := 0; cc < 4; cc++ {
						ix := ix0 + cc
						if ix >= 0 && ix < w {
							d[r][cc] = row[ix]
						}
					}
				}
				// t = Bᵀ d, with Bᵀ = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1].
				var t [4][4]float32
				for cc := 0; cc < 4; cc++ {
					t[0][cc] = d[0][cc] - d[2][cc]
					t[1][cc] = d[1][cc] + d[2][cc]
					t[2][cc] = d[2][cc] - d[1][cc]
					t[3][cc] = d[1][cc] - d[3][cc]
				}
				// V = t B.
				for r := 0; r < 4; r++ {
					v[(r*4+0)*c+ch] = t[r][0] - t[r][2]
					v[(r*4+1)*c+ch] = t[r][1] + t[r][2]
					v[(r*4+2)*c+ch] = t[r][2] - t[r][1]
					v[(r*4+3)*c+ch] = t[r][1] - t[r][3]
				}
			}

			// M[xi][k] = Σ_ch U[xi][k][ch] * V[xi][ch]: the element-wise
			// product in the transform domain, reduced over input channels.
			for xi := 0; xi < 16; xi++ {
				uBase := xi * ocIn
				vSeg := v[xi*c : xi*c+c]
				mSeg := m[xi*oc : xi*oc+oc]
				for k := 0; k < oc; k++ {
					uSeg := transformed.Data[uBase+k*c : uBase+k*c+c]
					var acc float32
					for ch := range vSeg {
						acc += uSeg[ch] * vSeg[ch]
					}
					mSeg[k] = acc
				}
			}

			// Y = Aᵀ M A per output channel, with Aᵀ = [1 1 1 0; 0 1 -1 -1].
			for k := 0; k < oc; k++ {
				var mm [4][4]float32
				for r := 0; r < 4; r++ {
					for cc := 0; cc < 4; cc++ {
						mm[r][cc] = m[(r*4+cc)*oc+k]
					}
				}
				var t0, t1 [4]float32
				for cc := 0; cc < 4; cc++ {
					t0[cc] = mm[0][cc] + mm[1][cc] + mm[2][cc]
					t1[cc] = mm[1][cc] - mm[2][cc] - mm[3][cc]
				}
				y00 := t0[0] + t0[1] + t0[2]
				y01 := t0[1] - t0[2] - t0[3]
				y10 := t1[0] + t1[1] + t1[2]
				y11 := t1[1] - t1[2] - t1[3]

				store := func(dy, dx int, val float32) {
					yy, xx := oy+dy, ox+dx
					if yy >= oh || xx >= ow {
						return
					}
					idx := ((b*oc+k)*oh+yy)*ow + xx
					if epi.Bias != nil {
						val += epi.Bias[k]
					}
					if epi.Residual != nil {
						val += epi.Residual.Data[idx]
					}
					if epi.ReLU {
						val = relu32(val)
					}
					out.Data[idx] = val
				}
				store(0, 0, y00)
				store(0, 1, y01)
				store(1, 0, y10)
				store(1, 1, y11)
			}
		}
	})
	return out
}

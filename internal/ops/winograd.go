package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Winograd F(2x2, 3x3) convolution — the paper lists "extending to other
// convolution computation algorithms such as Winograd" as future work
// (Section 6) and notes NeoCPU is compatible with such kernels (Section 1).
// This implementation slots in beside the direct template: same OIHW weights
// (transformed once at compile time, like the layout pre-packing), same
// epilogue fusion, NCHW activations, 3x3 stride-1 convolutions only.
//
// Per 2x2 output tile the algorithm computes
//
//	Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//
// with the canonical F(2,3) matrices, replacing 36 multiplies by 16 per
// channel pair (a 2.25x multiply reduction).

// WinogradWeightTransform computes U = G g Gᵀ for every (out, in) channel
// pair of a 3x3 OIHW weight. The result is stored as a flat tensor of shape
// (16, O, I): component-major so the inner accumulation over input channels
// is contiguous.
func WinogradWeightTransform(weight *tensor.Tensor) *tensor.Tensor {
	if weight.Layout.Kind != tensor.LayoutOIHW {
		panic(fmt.Sprintf("ops: WinogradWeightTransform expects OIHW, got %v", weight.Layout))
	}
	o, i, kh, kw := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	if kh != 3 || kw != 3 {
		panic(fmt.Sprintf("ops: Winograd F(2,3) requires 3x3 kernels, got %dx%d", kh, kw))
	}
	out := tensor.New(tensor.Flat(), 16, o, i)
	for oc := 0; oc < o; oc++ {
		for ic := 0; ic < i; ic++ {
			g := weight.Data[(oc*i+ic)*9 : (oc*i+ic)*9+9]
			// t = G g  (4x3), with G = [1 0 0; ½ ½ ½; ½ -½ ½; 0 0 1].
			var t [4][3]float32
			for c := 0; c < 3; c++ {
				g0, g1, g2 := g[c], g[3+c], g[6+c]
				t[0][c] = g0
				t[1][c] = 0.5 * (g0 + g1 + g2)
				t[2][c] = 0.5 * (g0 - g1 + g2)
				t[3][c] = g2
			}
			// u = t Gᵀ (4x4).
			for r := 0; r < 4; r++ {
				u0 := t[r][0]
				u1 := 0.5 * (t[r][0] + t[r][1] + t[r][2])
				u2 := 0.5 * (t[r][0] - t[r][1] + t[r][2])
				u3 := t[r][2]
				for c, v := range [4]float32{u0, u1, u2, u3} {
					out.Data[((r*4+c)*o+oc)*i+ic] = v
				}
			}
		}
	}
	return out
}

// Conv2DWinograd performs a 3x3 stride-1 convolution over an NCHW input
// using the F(2x2, 3x3) Winograd algorithm with pre-transformed weights from
// WinogradWeightTransform. Odd output dimensions are handled by computing
// the final partial tile and discarding the out-of-range half.
func Conv2DWinograd(in, transformed *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHW {
		panic(fmt.Sprintf("ops: Conv2DWinograd expects NCHW input, got %v", in.Layout))
	}
	if attrs.KH != 3 || attrs.KW != 3 || attrs.StrideH != 1 || attrs.StrideW != 1 {
		panic("ops: Conv2DWinograd supports 3x3 stride-1 convolutions only")
	}
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc := transformed.Shape[1]
	if transformed.Shape[0] != 16 || transformed.Shape[2] != c {
		panic(fmt.Sprintf("ops: transformed weight shape %v inconsistent with input channels %d", transformed.Shape, c))
	}
	oh, ow := attrs.OutSize(h, w)
	out := tensor.New(tensor.NCHW(), n, oc, oh, ow)
	if pf == nil {
		pf = Serial
	}

	tilesH := (oh + 1) / 2
	tilesW := (ow + 1) / 2
	ocIn := oc * c

	pf(n*tilesH, func(unit int) {
		b := unit / tilesH
		th := unit % tilesH
		// Per-row scratch: V tiles for all channels, M accumulators.
		v := make([]float32, 16*c)
		m := make([]float32, 16*oc)
		for tw := 0; tw < tilesW; tw++ {
			oy := th * 2
			ox := tw * 2
			// Input tile origin (top-left of the 4x4 patch).
			iy0 := oy - attrs.PadH
			ix0 := ox - attrs.PadW

			// V = Bᵀ d B per input channel.
			for ch := 0; ch < c; ch++ {
				var d [4][4]float32
				base := (b*c + ch) * h * w
				for r := 0; r < 4; r++ {
					iy := iy0 + r
					if iy < 0 || iy >= h {
						continue
					}
					row := in.Data[base+iy*w:]
					for cc := 0; cc < 4; cc++ {
						ix := ix0 + cc
						if ix >= 0 && ix < w {
							d[r][cc] = row[ix]
						}
					}
				}
				// t = Bᵀ d, with Bᵀ = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1].
				var t [4][4]float32
				for cc := 0; cc < 4; cc++ {
					t[0][cc] = d[0][cc] - d[2][cc]
					t[1][cc] = d[1][cc] + d[2][cc]
					t[2][cc] = d[2][cc] - d[1][cc]
					t[3][cc] = d[1][cc] - d[3][cc]
				}
				// V = t B.
				for r := 0; r < 4; r++ {
					v[(r*4+0)*c+ch] = t[r][0] - t[r][2]
					v[(r*4+1)*c+ch] = t[r][1] + t[r][2]
					v[(r*4+2)*c+ch] = t[r][2] - t[r][1]
					v[(r*4+3)*c+ch] = t[r][1] - t[r][3]
				}
			}

			// M[xi][k] = Σ_ch U[xi][k][ch] * V[xi][ch]: the element-wise
			// product in the transform domain, reduced over input channels.
			for xi := 0; xi < 16; xi++ {
				uBase := xi * ocIn
				vSeg := v[xi*c : xi*c+c]
				mSeg := m[xi*oc : xi*oc+oc]
				for k := 0; k < oc; k++ {
					uSeg := transformed.Data[uBase+k*c : uBase+k*c+c]
					var acc float32
					for ch := range vSeg {
						acc += uSeg[ch] * vSeg[ch]
					}
					mSeg[k] = acc
				}
			}

			// Y = Aᵀ M A per output channel, with Aᵀ = [1 1 1 0; 0 1 -1 -1].
			for k := 0; k < oc; k++ {
				var mm [4][4]float32
				for r := 0; r < 4; r++ {
					for cc := 0; cc < 4; cc++ {
						mm[r][cc] = m[(r*4+cc)*oc+k]
					}
				}
				var t0, t1 [4]float32
				for cc := 0; cc < 4; cc++ {
					t0[cc] = mm[0][cc] + mm[1][cc] + mm[2][cc]
					t1[cc] = mm[1][cc] - mm[2][cc] - mm[3][cc]
				}
				y00 := t0[0] + t0[1] + t0[2]
				y01 := t0[1] - t0[2] - t0[3]
				y10 := t1[0] + t1[1] + t1[2]
				y11 := t1[1] - t1[2] - t1[3]

				store := func(dy, dx int, val float32) {
					yy, xx := oy+dy, ox+dx
					if yy >= oh || xx >= ow {
						return
					}
					idx := ((b*oc+k)*oh+yy)*ow + xx
					if epi.Bias != nil {
						val += epi.Bias[k]
					}
					if epi.Residual != nil {
						val += epi.Residual.Data[idx]
					}
					if epi.ReLU {
						val = relu32(val)
					}
					out.Data[idx] = val
				}
				store(0, 0, y00)
				store(0, 1, y01)
				store(1, 0, y10)
				store(1, 1, y11)
			}
		}
	})
	return out
}

package ops

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// PoolKind selects the pooling reduction.
type PoolKind int

const (
	// MaxPool takes the window maximum.
	MaxPool PoolKind = iota
	// AvgPool takes the window average (count excludes padding).
	AvgPool
)

// PoolAttrs carries pooling geometry.
type PoolAttrs struct {
	Kind             PoolKind
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	// CountIncludePad, when true, divides average pooling by the full window
	// size even at borders (matches some frameworks' conventions).
	CountIncludePad bool
}

// OutSize returns output spatial dims for input h×w.
func (a PoolAttrs) OutSize(h, w int) (int, int) {
	return (h+2*a.PadH-a.KH)/a.StrideH + 1, (w+2*a.PadW-a.KW)/a.StrideW + 1
}

// Pool2D performs spatial pooling. It is layout-tolerant (Section 3.2
// category 2): it handles both NCHW and NCHW[x]c inputs and preserves the
// input layout, so a blocked layout flows through it without transformation.
func Pool2D(in *tensor.Tensor, attrs PoolAttrs, pf ParallelFor) *tensor.Tensor {
	return Pool2DInto(nil, in, attrs, pf)
}

// Pool2DInto is Pool2D writing into a caller-provided destination (nil dst
// allocates).
func Pool2DInto(dst, in *tensor.Tensor, attrs PoolAttrs, pf ParallelFor) *tensor.Tensor {
	switch in.Layout.Kind {
	case tensor.LayoutNCHW:
		return poolNCHW(dst, in, attrs, pf)
	case tensor.LayoutNCHWc:
		return poolNCHWc(dst, in, attrs, pf)
	default:
		panic(fmt.Sprintf("ops: Pool2D supports NCHW and NCHWc, got %v", in.Layout))
	}
}

func poolNCHW(dst, in *tensor.Tensor, attrs PoolAttrs, pf ParallelFor) *tensor.Tensor {
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NCHW(), n, c, oh, ow)
	if pf == nil {
		pf = Serial
	}
	pf(n*c, func(unit int) {
		b, ch := unit/c, unit%c
		src := in.Data[(b*c+ch)*h*w:]
		dst := out.Data[(b*c+ch)*oh*ow:]
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				dst[y*ow+x] = poolWindow(src, h, w, 1, 0, y, x, attrs)
			}
		}
	})
	return out
}

func poolNCHWc(dst, in *tensor.Tensor, attrs PoolAttrs, pf ParallelFor) *tensor.Tensor {
	n, co, h, w, x := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, in.Layout, n, co, oh, ow, x)
	if pf == nil {
		pf = Serial
	}
	pf(n*co, func(unit int) {
		b, ch := unit/co, unit%co
		src := in.Data[(b*co+ch)*h*w*x:]
		dst := out.Data[(b*co+ch)*oh*ow*x:]
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				for ci := 0; ci < x; ci++ {
					dst[(y*ow+xx)*x+ci] = poolWindow(src, h, w, x, ci, y, xx, attrs)
				}
			}
		}
	})
	return out
}

// poolWindow reduces one pooling window. stride is the element stride between
// consecutive (h,w) positions (1 for NCHW, block size for NCHWc) and off the
// sub-channel offset.
func poolWindow(src []float32, h, w, stride, off, oy, ox int, attrs PoolAttrs) float32 {
	best := float32(math.Inf(-1))
	var sum float32
	count := 0
	for r := 0; r < attrs.KH; r++ {
		iy := oy*attrs.StrideH + r - attrs.PadH
		if iy < 0 || iy >= h {
			continue
		}
		for s := 0; s < attrs.KW; s++ {
			ix := ox*attrs.StrideW + s - attrs.PadW
			if ix < 0 || ix >= w {
				continue
			}
			v := src[(iy*w+ix)*stride+off]
			if v > best {
				best = v
			}
			sum += v
			count++
		}
	}
	if attrs.Kind == MaxPool {
		if count == 0 {
			return 0
		}
		return best
	}
	if attrs.CountIncludePad {
		count = attrs.KH * attrs.KW
	}
	if count == 0 {
		return 0
	}
	return sum / float32(count)
}

// GlobalAvgPool reduces each channel's full feature map to one value,
// returning an NCHW tensor of shape (N, C, 1, 1). Layout-tolerant: accepts
// NCHW and NCHWc.
func GlobalAvgPool(in *tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	return GlobalAvgPoolInto(nil, in, pf)
}

// GlobalAvgPoolInto is GlobalAvgPool writing into a caller-provided
// destination (nil dst allocates).
func GlobalAvgPoolInto(dst, in *tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	switch in.Layout.Kind {
	case tensor.LayoutNCHW:
		n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
		out := tensor.EnsureDst(dst, tensor.NCHW(), n, c, 1, 1)
		if pf == nil {
			pf = Serial
		}
		pf(n*c, func(unit int) {
			src := in.Data[unit*h*w : (unit+1)*h*w]
			var sum float64
			for _, v := range src {
				sum += float64(v)
			}
			out.Data[unit] = float32(sum / float64(h*w))
		})
		return out
	case tensor.LayoutNCHWc:
		n, co, h, w, x := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
		c := co * x
		out := tensor.EnsureDst(dst, tensor.NCHW(), n, c, 1, 1)
		if pf == nil {
			pf = Serial
		}
		pf(n*co, func(unit int) {
			b, ch := unit/co, unit%co
			src := in.Data[(b*co+ch)*h*w*x:]
			// Stack-allocated accumulators for every realistic block size.
			var sumsArr [64]float64
			sums := sumsArr[:]
			if x > len(sumsArr) {
				sums = make([]float64, x)
			}
			for p := 0; p < h*w; p++ {
				for ci := 0; ci < x; ci++ {
					sums[ci] += float64(src[p*x+ci])
				}
			}
			for ci := 0; ci < x; ci++ {
				out.Data[b*c+ch*x+ci] = float32(sums[ci] / float64(h*w))
			}
		})
		return out
	default:
		panic(fmt.Sprintf("ops: GlobalAvgPool supports NCHW and NCHWc, got %v", in.Layout))
	}
}

package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// convCase builds a random conv workload and returns input (NCHW) and weight
// (OIHW).
func convCase(seed uint64, c, h, w, oc, kh, kw int) (*tensor.Tensor, *tensor.Tensor) {
	in := tensor.New(tensor.NCHW(), 1, c, h, w)
	in.FillRandom(seed, 1)
	wt := tensor.New(tensor.OIHW(), oc, c, kh, kw)
	wt.FillRandom(seed+1, 0.5)
	return in, wt
}

func runBlocked(in, wt *tensor.Tensor, attrs Conv2DAttrs, icb, ocb, regN int, unroll bool, epi Epilogue) *tensor.Tensor {
	blockedIn := tensor.ToNCHWc(in, icb)
	blockedWt := tensor.PackWeights(wt, icb, ocb)
	var blockedEpi Epilogue
	blockedEpi.Bias = epi.Bias
	blockedEpi.ReLU = epi.ReLU
	if epi.Residual != nil {
		blockedEpi.Residual = tensor.ToNCHWc(epi.Residual, ocb)
	}
	out := Conv2DNCHWc(blockedIn, blockedWt, attrs, icb, ocb, regN, unroll, blockedEpi, Serial)
	return tensor.FromNCHWc(out)
}

func TestConv2DNCHWBasic(t *testing.T) {
	// Hand-checkable case: 1 channel, 2x2 input, 1x1 kernel of value 2.
	in := tensor.New(tensor.NCHW(), 1, 1, 2, 2)
	in.Data = []float32{1, 2, 3, 4}
	wt := tensor.New(tensor.OIHW(), 1, 1, 1, 1)
	wt.Data = []float32{2}
	out := Conv2DNCHW(in, wt, Conv2DAttrs{OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, Epilogue{}, nil)
	want := []float32{2, 4, 6, 8}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestConv2DNCHWIdentityKernel(t *testing.T) {
	// A 3x3 kernel with a single 1 in the center and pad 1 is identity.
	in, _ := convCase(10, 4, 6, 6, 0, 0, 0)
	wt := tensor.New(tensor.OIHW(), 4, 4, 3, 3)
	for k := 0; k < 4; k++ {
		wt.Set(1, k, k, 1, 1)
	}
	out := Conv2DNCHW(in, wt, Conv2DAttrs{OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, Epilogue{}, nil)
	if tensor.MaxAbsDiff(in, out) != 0 {
		t.Fatal("identity convolution must reproduce input")
	}
}

func TestConvNCHWcMatchesReference(t *testing.T) {
	cases := []struct {
		name                string
		c, h, w, oc, kh, kw int
		sh, sw, ph, pw      int
		icb, ocb, regN      int
		unroll              bool
	}{
		{"3x3-pad1", 16, 14, 14, 32, 3, 3, 1, 1, 1, 1, 8, 16, 4, false},
		{"3x3-pad1-unroll", 16, 14, 14, 32, 3, 3, 1, 1, 1, 1, 8, 16, 4, true},
		{"3x3-ocb4-unroll", 16, 14, 14, 32, 3, 3, 1, 1, 1, 1, 8, 4, 4, true},
		{"3x3-ocb8-unroll", 16, 14, 14, 32, 3, 3, 1, 1, 1, 1, 8, 8, 4, true},
		{"3x3-generic-ocb", 12, 11, 11, 24, 3, 3, 1, 1, 1, 1, 6, 12, 4, true},
		{"1x1", 32, 7, 7, 64, 1, 1, 1, 1, 0, 0, 16, 16, 2, false},
		{"1x1-unroll", 32, 7, 7, 64, 1, 1, 1, 1, 0, 0, 16, 16, 2, true},
		{"1x1-ocb4-unroll", 32, 7, 7, 64, 1, 1, 1, 1, 0, 0, 16, 4, 2, true},
		{"1x1-ocb8-unroll", 32, 7, 7, 64, 1, 1, 1, 1, 0, 0, 16, 8, 2, true},
		{"stride2", 16, 15, 15, 16, 3, 3, 2, 2, 1, 1, 4, 8, 8, false},
		{"stride2-unroll", 16, 15, 15, 16, 3, 3, 2, 2, 1, 1, 4, 8, 8, true},
		{"5x5", 8, 12, 12, 16, 5, 5, 1, 1, 2, 2, 8, 8, 4, false},
		{"5x5-unroll-generic", 8, 12, 12, 16, 5, 5, 1, 1, 2, 2, 8, 8, 4, true},
		{"7x7-stride2", 4, 23, 23, 16, 7, 7, 2, 2, 3, 3, 4, 16, 4, false},
		{"tail-regn", 16, 10, 10, 16, 3, 3, 1, 1, 1, 1, 16, 16, 4, true},
		{"regn-bigger-than-ow", 16, 5, 5, 16, 3, 3, 1, 1, 1, 1, 16, 16, 32, false},
		{"block1", 6, 9, 9, 10, 3, 3, 1, 1, 1, 1, 1, 1, 4, false},
		{"asym-stride", 8, 16, 12, 8, 3, 3, 2, 1, 1, 1, 8, 8, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, wt := convCase(99, tc.c, tc.h, tc.w, tc.oc, tc.kh, tc.kw)
			attrs := Conv2DAttrs{OutC: tc.oc, KH: tc.kh, KW: tc.kw, StrideH: tc.sh, StrideW: tc.sw, PadH: tc.ph, PadW: tc.pw}
			ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
			got := runBlocked(in, wt, attrs, tc.icb, tc.ocb, tc.regN, tc.unroll, Epilogue{})
			if !tensor.AllClose(ref, got, 1e-4) {
				t.Fatalf("blocked conv diverges from reference: max diff %g", tensor.MaxAbsDiff(ref, got))
			}
		})
	}
}

func TestConvNHWCMatchesReference(t *testing.T) {
	in, wt := convCase(5, 8, 10, 10, 12, 3, 3)
	attrs := Conv2DAttrs{OutC: 12, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
	nhwcOut := Conv2DNHWC(tensor.NCHWToNHWC(in), wt, attrs, Epilogue{}, nil)
	got := tensor.NHWCToNCHW(nhwcOut)
	if !tensor.AllClose(ref, got, 1e-4) {
		t.Fatalf("NHWC conv diverges: max diff %g", tensor.MaxAbsDiff(ref, got))
	}
}

func TestConvEpilogueFusion(t *testing.T) {
	in, wt := convCase(7, 16, 8, 8, 16, 3, 3)
	attrs := Conv2DAttrs{OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	bias := make([]float32, 16)
	for i := range bias {
		bias[i] = float32(i)*0.1 - 0.5
	}
	res := tensor.New(tensor.NCHW(), 1, 16, 8, 8)
	res.FillRandom(8, 1)

	// Unfused reference: conv, bias via BN-like shift, add, relu.
	plain := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
	want := plain.Clone()
	for k := 0; k < 16; k++ {
		for p := 0; p < 64; p++ {
			idx := k*64 + p
			v := want.Data[idx] + bias[k] + res.Data[idx]
			want.Data[idx] = relu32(v)
		}
	}

	// Fused epilogue in both reference and blocked kernels.
	epi := Epilogue{Bias: bias, Residual: res, ReLU: true}
	fusedRef := Conv2DNCHW(in, wt, attrs, epi, nil)
	if !tensor.AllClose(want, fusedRef, 1e-5) {
		t.Fatalf("reference epilogue fusion wrong: %g", tensor.MaxAbsDiff(want, fusedRef))
	}
	fusedBlocked := runBlocked(in, wt, attrs, 8, 8, 4, true, epi)
	if !tensor.AllClose(want, fusedBlocked, 1e-4) {
		t.Fatalf("blocked epilogue fusion wrong: %g", tensor.MaxAbsDiff(want, fusedBlocked))
	}
}

func TestConvParallelMatchesSerial(t *testing.T) {
	in, wt := convCase(13, 16, 12, 12, 32, 3, 3)
	attrs := Conv2DAttrs{OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	blockedIn := tensor.ToNCHWc(in, 8)
	blockedWt := tensor.PackWeights(wt, 8, 16)
	serial := Conv2DNCHWc(blockedIn, blockedWt, attrs, 8, 16, 4, false, Epilogue{}, Serial)
	// A crude concurrent ParallelFor with goroutines.
	goPar := func(n int, body func(i int)) {
		done := make(chan struct{})
		for i := 0; i < n; i++ {
			go func(i int) { body(i); done <- struct{}{} }(i)
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}
	par := Conv2DNCHWc(blockedIn, blockedWt, attrs, 8, 16, 4, false, Epilogue{}, goPar)
	if tensor.MaxAbsDiff(serial, par) != 0 {
		t.Fatal("parallel conv must be bit-identical to serial")
	}
}

func TestQuickBlockedConvEquivalence(t *testing.T) {
	f := func(seed uint64, cRaw, ocRaw, geomRaw, schedRaw uint8) bool {
		blocks := []int{1, 2, 4, 8}
		icb := blocks[int(cRaw)%len(blocks)]
		ocb := blocks[int(ocRaw)%len(blocks)]
		c := icb * (1 + int(cRaw/16)%3)
		oc := ocb * (1 + int(ocRaw/16)%3)
		geoms := []struct{ h, w, kh, kw, s, p int }{
			{8, 8, 3, 3, 1, 1}, {9, 7, 3, 3, 2, 1}, {6, 6, 1, 1, 1, 0}, {11, 11, 5, 5, 1, 2},
		}
		g := geoms[int(geomRaw)%len(geoms)]
		regN := []int{2, 4, 8}[int(schedRaw)%3]
		unroll := schedRaw%2 == 0
		in, wt := convCase(seed, c, g.h, g.w, oc, g.kh, g.kw)
		attrs := Conv2DAttrs{OutC: oc, KH: g.kh, KW: g.kw, StrideH: g.s, StrideW: g.s, PadH: g.p, PadW: g.p}
		ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
		got := runBlocked(in, wt, attrs, icb, ocb, regN, unroll, Epilogue{})
		return tensor.AllClose(ref, got, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConvNCHWcRejectsBadLayouts(t *testing.T) {
	in, wt := convCase(1, 8, 6, 6, 8, 3, 3)
	attrs := Conv2DAttrs{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	blockedWt := tensor.PackWeights(wt, 4, 4)
	mustPanic(t, func() {
		Conv2DNCHWc(in, blockedWt, attrs, 4, 4, 4, false, Epilogue{}, nil) // input not blocked
	})
	blockedIn := tensor.ToNCHWc(in, 4)
	mustPanic(t, func() {
		Conv2DNCHWc(blockedIn, wt, attrs, 4, 4, 4, false, Epilogue{}, nil) // weight not packed
	})
	mustPanic(t, func() {
		Conv2DNCHWc(blockedIn, blockedWt, attrs, 4, 4, 0, false, Epilogue{}, nil) // bad reg_n
	})
}

func TestConvNCHWcRejectsUncoverableGeometry(t *testing.T) {
	// An input smaller than the kernel with no padding: truncating integer
	// division makes the nominal output size 1 even though the kernel
	// window falls off the data. The kernel must refuse loudly instead of
	// reading out of bounds.
	in := tensor.New(tensor.NCHWc(4), 1, 1, 1, 1, 4) // 1x1 spatial
	wt := tensor.New(tensor.OIHWio(4, 4), 1, 1, 3, 3, 4, 4)
	attrs := Conv2DAttrs{OutC: 4, KH: 3, KW: 3, StrideH: 3, StrideW: 3}
	mustPanic(t, func() {
		Conv2DNCHWc(in, wt, attrs, 4, 4, 2, false, Epilogue{}, nil)
	})
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestConvBatchedMatchesPerImage(t *testing.T) {
	// Batch-2 convolution must equal two independent batch-1 convolutions
	// in every kernel (reference, NHWC and blocked).
	in := tensor.New(tensor.NCHW(), 2, 8, 9, 9)
	in.FillRandom(90, 1)
	wt := tensor.New(tensor.OIHW(), 8, 8, 3, 3)
	wt.FillRandom(91, 0.5)
	attrs := Conv2DAttrs{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}

	batched := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
	per := in.NumElements() / 2
	perOut := batched.NumElements() / 2
	for img := 0; img < 2; img++ {
		one := tensor.FromData(tensor.NCHW(), in.Data[img*per:(img+1)*per], 1, 8, 9, 9)
		want := Conv2DNCHW(one, wt, attrs, Epilogue{}, nil)
		got := tensor.FromData(tensor.NCHW(), batched.Data[img*perOut:(img+1)*perOut], 1, 8, 9, 9)
		if tensor.MaxAbsDiff(want, got) != 0 {
			t.Fatalf("image %d batched reference conv differs", img)
		}
	}

	// Blocked kernel on the same batch.
	bi := tensor.ToNCHWc(in, 4)
	bw := tensor.PackWeights(wt, 4, 8)
	blocked := tensor.FromNCHWc(Conv2DNCHWc(bi, bw, attrs, 4, 8, 4, true, Epilogue{}, nil))
	if !tensor.AllClose(batched, blocked, 1e-4) {
		t.Fatalf("batched blocked conv diverges: %g", tensor.MaxAbsDiff(batched, blocked))
	}

	// NHWC kernel on the same batch.
	nhwc := tensor.NHWCToNCHW(Conv2DNHWC(tensor.NCHWToNHWC(in), wt, attrs, Epilogue{}, nil))
	if !tensor.AllClose(batched, nhwc, 1e-4) {
		t.Fatalf("batched NHWC conv diverges: %g", tensor.MaxAbsDiff(batched, nhwc))
	}
}

func TestConvAsymmetricPadding(t *testing.T) {
	// Rectangular kernels with distinct h/w padding (Inception's 1x7/7x1).
	in, _ := convCase(95, 8, 10, 10, 0, 0, 0)
	wt := tensor.New(tensor.OIHW(), 8, 8, 1, 7)
	wt.FillRandom(96, 0.5)
	attrs := Conv2DAttrs{OutC: 8, KH: 1, KW: 7, StrideH: 1, StrideW: 1, PadH: 0, PadW: 3}
	ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
	if ref.Shape[2] != 10 || ref.Shape[3] != 10 {
		t.Fatalf("1x7 conv output shape %v", ref.Shape)
	}
	got := runBlocked(in, wt, attrs, 4, 4, 4, false, Epilogue{})
	if !tensor.AllClose(ref, got, 1e-4) {
		t.Fatalf("1x7 blocked conv diverges: %g", tensor.MaxAbsDiff(ref, got))
	}
}

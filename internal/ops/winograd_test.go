package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func runWinograd(in, wt *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue) *tensor.Tensor {
	u := WinogradWeightTransform(wt)
	return Conv2DWinograd(in, u, attrs, epi, nil)
}

func TestWinogradMatchesReference(t *testing.T) {
	cases := []struct {
		name          string
		c, h, w, ocnt int
		pad           int
	}{
		{"even-pad1", 8, 8, 8, 16, 1},
		{"even-pad0", 8, 10, 10, 8, 0},
		{"odd-output-pad1", 4, 7, 9, 8, 1}, // 7x9 output: partial tiles
		{"odd-output-pad0", 4, 7, 7, 4, 0}, // 5x5 output
		{"single-channel", 1, 6, 6, 1, 1},
		{"wide", 3, 5, 17, 5, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, wt := convCase(77, tc.c, tc.h, tc.w, tc.ocnt, 3, 3)
			attrs := Conv2DAttrs{OutC: tc.ocnt, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: tc.pad, PadW: tc.pad}
			ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
			got := runWinograd(in, wt, attrs, Epilogue{})
			if !tensor.AllClose(ref, got, 1e-3) {
				t.Fatalf("winograd diverges from direct: max diff %g", tensor.MaxAbsDiff(ref, got))
			}
		})
	}
}

func TestWinogradEpilogue(t *testing.T) {
	in, wt := convCase(78, 8, 8, 8, 8, 3, 3)
	attrs := Conv2DAttrs{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	bias := make([]float32, 8)
	for i := range bias {
		bias[i] = float32(i)*0.2 - 0.7
	}
	res := tensor.New(tensor.NCHW(), 1, 8, 8, 8)
	res.FillRandom(79, 1)
	epi := Epilogue{Bias: bias, Residual: res, ReLU: true}
	ref := Conv2DNCHW(in, wt, attrs, epi, nil)
	got := runWinograd(in, wt, attrs, epi)
	if !tensor.AllClose(ref, got, 1e-3) {
		t.Fatalf("winograd fused epilogue diverges: %g", tensor.MaxAbsDiff(ref, got))
	}
}

func TestWinogradParallelMatchesSerial(t *testing.T) {
	in, wt := convCase(80, 8, 12, 12, 8, 3, 3)
	attrs := Conv2DAttrs{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	u := WinogradWeightTransform(wt)
	serial := Conv2DWinograd(in, u, attrs, Epilogue{}, Serial)
	goPar := func(n int, body func(i int)) {
		done := make(chan struct{})
		for i := 0; i < n; i++ {
			go func(i int) { body(i); done <- struct{}{} }(i)
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}
	par := Conv2DWinograd(in, u, attrs, Epilogue{}, goPar)
	if tensor.MaxAbsDiff(serial, par) != 0 {
		t.Fatal("parallel winograd must be bit-identical to serial")
	}
}

func TestWinogradRejectsUnsupported(t *testing.T) {
	in, wt := convCase(81, 4, 8, 8, 4, 3, 3)
	u := WinogradWeightTransform(wt)
	mustPanic(t, func() {
		Conv2DWinograd(in, u, Conv2DAttrs{OutC: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, Epilogue{}, nil)
	})
	_, wt5 := convCase(82, 4, 8, 8, 4, 5, 5)
	mustPanic(t, func() { WinogradWeightTransform(wt5) })
	mustPanic(t, func() {
		Conv2DWinograd(tensor.ToNCHWc(in, 4), u, Conv2DAttrs{OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1}, Epilogue{}, nil)
	})
}

func runWinogradBlocked(in, wt *tensor.Tensor, attrs Conv2DAttrs, icb, ocb int, epi Epilogue, scratch *tensor.Tensor) *tensor.Tensor {
	blockedIn := tensor.ToNCHWc(in, icb)
	u := WinogradWeightTransformNCHWc(wt, icb, ocb)
	var blockedEpi Epilogue
	blockedEpi.Bias = epi.Bias
	blockedEpi.ReLU = epi.ReLU
	if epi.Residual != nil {
		blockedEpi.Residual = tensor.ToNCHWc(epi.Residual, ocb)
	}
	out := Conv2DWinogradNCHWcInto(nil, scratch, blockedIn, u, attrs, icb, ocb, 1, blockedEpi, Serial)
	return tensor.FromNCHWc(out)
}

func TestWinogradNCHWcMatchesReference(t *testing.T) {
	cases := []struct {
		name          string
		c, h, w, ocnt int
		pad           int
		icb, ocb      int
	}{
		{"even-pad1-8x8", 8, 8, 8, 16, 1, 8, 8},
		{"even-pad1-16c", 16, 14, 14, 32, 1, 16, 16},
		{"odd-output", 4, 7, 9, 8, 1, 4, 4},
		{"pad0", 8, 10, 10, 8, 0, 4, 8},
		{"block1", 3, 6, 6, 5, 1, 1, 1},
		{"mixed-blocks", 6, 9, 11, 12, 1, 3, 4},
		{"generic-ocb", 10, 8, 8, 10, 1, 5, 10}, // non-4/8/16 oc_bn: generic accum path
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, wt := convCase(83, tc.c, tc.h, tc.w, tc.ocnt, 3, 3)
			attrs := Conv2DAttrs{OutC: tc.ocnt, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: tc.pad, PadW: tc.pad}
			ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
			got := runWinogradBlocked(in, wt, attrs, tc.icb, tc.ocb, Epilogue{}, nil)
			if !tensor.AllClose(ref, got, 1e-3) {
				t.Fatalf("blocked winograd diverges from direct: max diff %g", tensor.MaxAbsDiff(ref, got))
			}
		})
	}
}

func TestWinogradNCHWcScratchReuse(t *testing.T) {
	in, wt := convCase(84, 8, 12, 12, 16, 3, 3)
	attrs := Conv2DAttrs{OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	blockedIn := tensor.ToNCHWc(in, 8)
	u := WinogradWeightTransformNCHWc(wt, 8, 8)
	scratch := tensor.New(tensor.Flat(), WinogradScratchShape(blockedIn.Shape, attrs)...)
	dst := tensor.New(tensor.NCHWc(8), 1, 2, 12, 12, 8)
	want := Conv2DWinogradNCHWc(blockedIn, u, attrs, 8, 8, Epilogue{}, nil)
	// Reusing the same destination and scratch across runs must stay
	// bit-identical: nothing in the kernel may depend on buffer contents.
	for i := 0; i < 2; i++ {
		got := Conv2DWinogradNCHWcInto(dst, scratch, blockedIn, u, attrs, 8, 8, 1, Epilogue{}, nil)
		if got != dst {
			t.Fatal("Into variant must write the provided destination")
		}
		if tensor.MaxAbsDiff(want, got) != 0 {
			t.Fatalf("run %d: scratch reuse changed the result", i)
		}
	}
}

func TestWinogradNCHWcRejectsBadShapes(t *testing.T) {
	in, wt := convCase(85, 8, 8, 8, 16, 3, 3)
	blockedIn := tensor.ToNCHWc(in, 8)
	u := WinogradWeightTransformNCHWc(wt, 8, 8)
	attrs := Conv2DAttrs{OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	// Strided attrs.
	mustPanic(t, func() {
		bad := attrs
		bad.StrideH, bad.StrideW = 2, 2
		Conv2DWinogradNCHWc(blockedIn, u, bad, 8, 8, Epilogue{}, nil)
	})
	// Wrong input block.
	mustPanic(t, func() {
		Conv2DWinogradNCHWc(tensor.ToNCHWc(in, 4), u, attrs, 8, 8, Epilogue{}, nil)
	})
	// Transformed weight inconsistent with the declared blocks.
	mustPanic(t, func() {
		Conv2DWinogradNCHWc(blockedIn, u, attrs, 8, 16, Epilogue{}, nil)
	})
	// Non-dividing weight blocks.
	mustPanic(t, func() { WinogradWeightTransformNCHWc(wt, 3, 8) })
	mustPanic(t, func() { WinogradWeightTransformNCHWc(wt, 8, 3) })
}

// TestQuickWinogradBlockedEquivalence is the property test of the blocked
// Winograd kernel: random geometry, random block factors drawn from the
// channel divisors, and every epilogue combination, all cross-validated
// against the plain-NCHW direct convolution ground truth.
func TestQuickWinogradBlockedEquivalence(t *testing.T) {
	f := func(seed uint64, cRaw, oRaw, hRaw, wRaw, icbRaw, ocbRaw uint8, pad, bias, residual, relu bool) bool {
		c := 1 + int(cRaw)%12
		o := 1 + int(oRaw)%12
		h := 5 + int(hRaw)%9
		w := 5 + int(wRaw)%9
		icb := pickDivisor(c, int(icbRaw))
		ocb := pickDivisor(o, int(ocbRaw))
		p := 0
		if pad {
			p = 1
		}
		in, wt := convCase(seed, c, h, w, o, 3, 3)
		attrs := Conv2DAttrs{OutC: o, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: p, PadW: p}
		epi := Epilogue{ReLU: relu}
		if bias {
			epi.Bias = make([]float32, o)
			for i := range epi.Bias {
				epi.Bias[i] = float32(i)*0.3 - 0.8
			}
		}
		if residual {
			oh, ow := attrs.OutSize(h, w)
			res := tensor.New(tensor.NCHW(), 1, o, oh, ow)
			res.FillRandom(seed+7, 1)
			epi.Residual = res
		}
		ref := Conv2DNCHW(in, wt, attrs, epi, nil)
		got := runWinogradBlocked(in, wt, attrs, icb, ocb, epi, nil)
		if !tensor.AllClose(ref, got, 1e-3) {
			t.Logf("c=%d o=%d h=%d w=%d icb=%d ocb=%d pad=%d epi={bias=%v res=%v relu=%v}: max diff %g",
				c, o, h, w, icb, ocb, p, bias, residual, relu, tensor.MaxAbsDiff(ref, got))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// pickDivisor maps a random byte onto a divisor of n.
func pickDivisor(n, raw int) int {
	var divs []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	return divs[raw%len(divs)]
}

func TestQuickWinogradEquivalence(t *testing.T) {
	f := func(seed uint64, cRaw, oRaw, hRaw, wRaw uint8, pad bool) bool {
		c := 1 + int(cRaw)%6
		o := 1 + int(oRaw)%6
		h := 5 + int(hRaw)%8
		w := 5 + int(wRaw)%8
		p := 0
		if pad {
			p = 1
		}
		in, wt := convCase(seed, c, h, w, o, 3, 3)
		attrs := Conv2DAttrs{OutC: o, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: p, PadW: p}
		ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
		got := runWinograd(in, wt, attrs, Epilogue{})
		return tensor.AllClose(ref, got, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

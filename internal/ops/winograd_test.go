package ops

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func runWinograd(in, wt *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue) *tensor.Tensor {
	u := WinogradWeightTransform(wt)
	return Conv2DWinograd(in, u, attrs, epi, nil)
}

func TestWinogradMatchesReference(t *testing.T) {
	cases := []struct {
		name          string
		c, h, w, ocnt int
		pad           int
	}{
		{"even-pad1", 8, 8, 8, 16, 1},
		{"even-pad0", 8, 10, 10, 8, 0},
		{"odd-output-pad1", 4, 7, 9, 8, 1}, // 7x9 output: partial tiles
		{"odd-output-pad0", 4, 7, 7, 4, 0}, // 5x5 output
		{"single-channel", 1, 6, 6, 1, 1},
		{"wide", 3, 5, 17, 5, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, wt := convCase(77, tc.c, tc.h, tc.w, tc.ocnt, 3, 3)
			attrs := Conv2DAttrs{OutC: tc.ocnt, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: tc.pad, PadW: tc.pad}
			ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
			got := runWinograd(in, wt, attrs, Epilogue{})
			if !tensor.AllClose(ref, got, 1e-3) {
				t.Fatalf("winograd diverges from direct: max diff %g", tensor.MaxAbsDiff(ref, got))
			}
		})
	}
}

func TestWinogradEpilogue(t *testing.T) {
	in, wt := convCase(78, 8, 8, 8, 8, 3, 3)
	attrs := Conv2DAttrs{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	bias := make([]float32, 8)
	for i := range bias {
		bias[i] = float32(i)*0.2 - 0.7
	}
	res := tensor.New(tensor.NCHW(), 1, 8, 8, 8)
	res.FillRandom(79, 1)
	epi := Epilogue{Bias: bias, Residual: res, ReLU: true}
	ref := Conv2DNCHW(in, wt, attrs, epi, nil)
	got := runWinograd(in, wt, attrs, epi)
	if !tensor.AllClose(ref, got, 1e-3) {
		t.Fatalf("winograd fused epilogue diverges: %g", tensor.MaxAbsDiff(ref, got))
	}
}

func TestWinogradParallelMatchesSerial(t *testing.T) {
	in, wt := convCase(80, 8, 12, 12, 8, 3, 3)
	attrs := Conv2DAttrs{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	u := WinogradWeightTransform(wt)
	serial := Conv2DWinograd(in, u, attrs, Epilogue{}, Serial)
	goPar := func(n int, body func(i int)) {
		done := make(chan struct{})
		for i := 0; i < n; i++ {
			go func(i int) { body(i); done <- struct{}{} }(i)
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}
	par := Conv2DWinograd(in, u, attrs, Epilogue{}, goPar)
	if tensor.MaxAbsDiff(serial, par) != 0 {
		t.Fatal("parallel winograd must be bit-identical to serial")
	}
}

func TestWinogradRejectsUnsupported(t *testing.T) {
	in, wt := convCase(81, 4, 8, 8, 4, 3, 3)
	u := WinogradWeightTransform(wt)
	mustPanic(t, func() {
		Conv2DWinograd(in, u, Conv2DAttrs{OutC: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, Epilogue{}, nil)
	})
	_, wt5 := convCase(82, 4, 8, 8, 4, 5, 5)
	mustPanic(t, func() { WinogradWeightTransform(wt5) })
	mustPanic(t, func() {
		Conv2DWinograd(tensor.ToNCHWc(in, 4), u, Conv2DAttrs{OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1}, Epilogue{}, nil)
	})
}

func TestQuickWinogradEquivalence(t *testing.T) {
	f := func(seed uint64, cRaw, oRaw, hRaw, wRaw uint8, pad bool) bool {
		c := 1 + int(cRaw)%6
		o := 1 + int(oRaw)%6
		h := 5 + int(hRaw)%8
		w := 5 + int(wRaw)%8
		p := 0
		if pad {
			p = 1
		}
		in, wt := convCase(seed, c, h, w, o, 3, 3)
		attrs := Conv2DAttrs{OutC: o, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: p, PadW: p}
		ref := Conv2DNCHW(in, wt, attrs, Epilogue{}, nil)
		got := runWinograd(in, wt, attrs, Epilogue{})
		return tensor.AllClose(ref, got, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

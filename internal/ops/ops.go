// Package ops implements the CNN operators NeoCPU-Go executes: the direct
// convolution template of the paper's Algorithm 1 (blocked NCHW[x]c layout,
// register blocking along out_width, optional kernel-loop unrolling, fused
// epilogues), reference convolutions in NCHW/NHWC for correctness checking
// and for the library baselines, and the memory-bound operators that surround
// convolutions in CNN models (pooling, batch norm, activations, element-wise
// arithmetic, dense layers and the SSD multibox head).
//
// All kernels are pure functions over tensor.Tensor values. Parallel kernels
// accept a ParallelFor so the caller chooses the threading runtime (the
// custom thread pool, the OpenMP-style pool, or serial execution).
package ops

import (
	"repro/internal/tensor"
)

// ParallelFor runs body(i) for i in [0, n), possibly concurrently. The
// implementations live in internal/threadpool; Serial is the default.
type ParallelFor func(n int, body func(i int))

// Serial is the trivial ParallelFor.
func Serial(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

// Chunks and ChunkBounds implement the kernels' searched parallel grain: a
// parallel region over `units` work units is dispatched as Chunks(units,
// grain) contiguous items of at most `grain` units each, and each item
// iterates its ChunkBounds range on one goroutine. Grain values below 1
// normalize to 1, which reproduces the historical one-unit-per-item split
// exactly. Larger grains amortize per-item dispatch (closure call,
// accumulator-tile setup) against static-partitioning imbalance — the
// trade-off the cost model searches. Unit iteration order inside a chunk is
// ascending and every unit writes disjoint output, so results are
// bit-identical for every grain under every ParallelFor. Both helpers are
// allocation-free leaf calls: a kernel's parallel region still allocates only
// its single dispatch closure, independent of the grain.

// Chunks returns the number of grain-sized work items covering units.
func Chunks(units, grain int) int {
	if grain < 1 {
		grain = 1
	}
	return (units + grain - 1) / grain
}

// ChunkBounds returns work item ck's [lo, hi) unit range under the grain.
func ChunkBounds(ck, units, grain int) (int, int) {
	if grain < 1 {
		grain = 1
	}
	lo := ck * grain
	hi := lo + grain
	if hi > units {
		hi = units
	}
	return lo, hi
}

// Conv2DAttrs carries the geometry attributes of a convolution node.
type Conv2DAttrs struct {
	OutC, KH, KW     int
	StrideH, StrideW int
	PadH, PadW       int
	// Groups partitions the channels: input channels split into Groups
	// disjoint sets and each output channel reduces over only its group's
	// inputs. 0 or 1 means a dense convolution; Groups equal to the input
	// channel count is a depthwise convolution. The weight's second dimension
	// is in_channels/Groups.
	Groups int
}

// OutSize returns the output spatial size for an input of h×w.
func (a Conv2DAttrs) OutSize(h, w int) (int, int) {
	return (h+2*a.PadH-a.KH)/a.StrideH + 1, (w+2*a.PadW-a.KW)/a.StrideW + 1
}

// GroupCount normalizes the Groups field: the zero value means one dense
// group.
func (a Conv2DAttrs) GroupCount() int {
	if a.Groups <= 1 {
		return 1
	}
	return a.Groups
}

// Depthwise reports whether the attributes describe a depthwise convolution
// over inC input channels: one group per channel.
func (a Conv2DAttrs) Depthwise(inC int) bool {
	return a.GroupCount() > 1 && a.Groups == inC && a.OutC == inC
}

// Epilogue describes computation fused into a convolution's output store:
// bias addition, residual addition and ReLU, in that order. Fusing these
// memory-bound operators into the CONV raises arithmetic intensity
// (Section 2.2 of the paper).
type Epilogue struct {
	// Bias, if non-nil, has one entry per output channel.
	Bias []float32
	// Residual, if non-nil, is added element-wise; it must share the
	// convolution output's layout and shape.
	Residual *tensor.Tensor
	// ReLU clamps negatives to zero after the additions.
	ReLU bool
}

func relu32(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
}

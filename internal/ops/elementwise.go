package ops

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ReLU applies max(0, x) element-wise. It is layout-oblivious (Section 3.2
// category 1): the result carries the input's layout unchanged.
func ReLU(in *tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	return ReLUInto(nil, in, pf)
}

// ReLUInto is ReLU writing into a caller-provided destination (nil dst
// allocates).
func ReLUInto(dst, in *tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	out := tensor.EnsureDst(dst, in.Layout, in.Shape...)
	applyChunked(len(in.Data), pf, func(lo, hi int) {
		src, dst := in.Data[lo:hi], out.Data[lo:hi]
		for i, v := range src {
			dst[i] = relu32(v)
		}
	})
	return out
}

// Add computes element-wise a+b. Both operands must share layout and shape:
// Elementwise_Add is the operation that forces its inputs into a common
// layout during global search (Section 3.3.2, Figure 3).
func Add(a, b *tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	return AddInto(nil, a, b, pf)
}

// AddInto is Add writing into a caller-provided destination (nil dst
// allocates).
func AddInto(dst, a, b *tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	if !a.Layout.Equal(b.Layout) {
		panic(fmt.Sprintf("ops: Add layout mismatch %v vs %v", a.Layout, b.Layout))
	}
	if a.NumElements() != b.NumElements() {
		panic(fmt.Sprintf("ops: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := tensor.EnsureDst(dst, a.Layout, a.Shape...)
	applyChunked(len(a.Data), pf, func(lo, hi int) {
		x, y, dst := a.Data[lo:hi], b.Data[lo:hi], out.Data[lo:hi]
		for i := range x {
			dst[i] = x[i] + y[i]
		}
	})
	return out
}

// Softmax computes a numerically-stable softmax over the last dimension of a
// rank-2 (batch, classes) tensor.
func Softmax(in *tensor.Tensor) *tensor.Tensor {
	return SoftmaxInto(nil, in)
}

// SoftmaxInto is Softmax writing into a caller-provided destination (nil dst
// allocates).
func SoftmaxInto(dst, in *tensor.Tensor) *tensor.Tensor {
	if in.Rank() != 2 {
		panic(fmt.Sprintf("ops: Softmax expects rank-2 input, got %v", in.Shape))
	}
	n, c := in.Shape[0], in.Shape[1]
	out := tensor.EnsureDst(dst, in.Layout, n, c)
	for b := 0; b < n; b++ {
		row := in.Data[b*c : (b+1)*c]
		dst := out.Data[b*c : (b+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxV))
			dst[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range dst {
			dst[i] *= inv
		}
	}
	return out
}

// Sigmoid applies 1/(1+exp(-x)) element-wise.
func Sigmoid(in *tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	out := tensor.New(in.Layout, in.Shape...)
	applyChunked(len(in.Data), pf, func(lo, hi int) {
		src, dst := in.Data[lo:hi], out.Data[lo:hi]
		for i, v := range src {
			dst[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	})
	return out
}

// Flatten reshapes an NCHW activation to (batch, C*H*W). It is the canonical
// layout-dependent operation (Section 3.2 category 3): blocked inputs must be
// transformed back to NCHW before flattening, which is why the optimized
// layout flow stops here in Figure 2.
func Flatten(in *tensor.Tensor) *tensor.Tensor {
	return FlattenInto(nil, in)
}

// FlattenInto is Flatten writing into a caller-provided destination (nil dst
// allocates).
func FlattenInto(dst, in *tensor.Tensor) *tensor.Tensor {
	switch in.Layout.Kind {
	case tensor.LayoutNCHW:
		n := in.Shape[0]
		out := tensor.EnsureDst(dst, tensor.Flat(), n, in.NumElements()/n)
		copy(out.Data, in.Data)
		return out
	case tensor.LayoutFlat:
		// Already flat: a copy with the input's shape, whatever its rank.
		out := tensor.EnsureDst(dst, tensor.Flat(), in.Shape...)
		copy(out.Data, in.Data)
		return out
	default:
		panic(fmt.Sprintf("ops: Flatten is layout-dependent and requires NCHW, got %v", in.Layout))
	}
}

// applyChunked splits [0,n) into cache-friendly chunks and runs them through
// the ParallelFor.
func applyChunked(n int, pf ParallelFor, body func(lo, hi int)) {
	if pf == nil {
		pf = Serial
	}
	const chunk = 1 << 14
	chunks := (n + chunk - 1) / chunk
	if chunks == 0 {
		return
	}
	pf(chunks, func(i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// This file implements the depthwise convolution template in the blocked
// NCHW[x]c layout — the kernel behind MobileNet-style depthwise-separable
// networks. A depthwise convolution has one group per channel: output channel
// c reads only input channel c, so the blocked kernel maps lane v of channel
// block co straight to lane v of the same output block. That forces the
// schedule to share one channel block factor (ic_bn == oc_bn), and turns the
// inner loop into an element-wise multiply-accumulate across the block's
// lanes — no channel reduction, no broadcast — which is exactly the vmulps/
// vfmadd pattern a SIMD depthwise kernel issues per lane vector.
//
// Weights are packed at compile time with tensor.PackWeights(w, 1, bn): the
// logical OIHW weight is (C, 1, KH, KW), and OIHW[1]i[bn]o degenerates to a
// dense (C/bn, KH, KW, bn) slab whose innermost dimension matches the
// activation lanes.

// Conv2DDepthwiseNCHWc computes a depthwise convolution over an NCHW[bn]c
// input with OIHW[1]i[bn]o weights, register-blocking reg_n output positions
// exactly like the dense direct template.
func Conv2DDepthwiseNCHWc(in, weight *tensor.Tensor, attrs Conv2DAttrs, bn, regN int, unrollKer bool, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	return Conv2DDepthwiseNCHWcInto(nil, nil, in, weight, attrs, bn, regN, unrollKer, 1, epi, pf)
}

// Conv2DDepthwiseNCHWcInto is Conv2DDepthwiseNCHWc writing into
// caller-provided buffers: dst receives the output and padScratch (sized per
// PaddedShapeNCHWc, zero-filled at allocation) holds the explicitly padded
// input. Either may be nil, in which case it is allocated. grain is the
// schedule's parallel chunk size over (batch, channel-block, out-row) units
// (<=1 means one row per work item); every grain is bit-identical.
func Conv2DDepthwiseNCHWcInto(dst, padScratch *tensor.Tensor, in, weight *tensor.Tensor, attrs Conv2DAttrs, bn, regN int, unrollKer bool, grain int, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHWc || in.Layout.BlockC != bn {
		panic(fmt.Sprintf("ops: Conv2DDepthwiseNCHWc expects NCHW%dc input, got %v", bn, in.Layout))
	}
	if weight.Layout.Kind != tensor.LayoutOIHWio || weight.Layout.BlockC != 1 || weight.Layout.BlockK != bn {
		panic(fmt.Sprintf("ops: Conv2DDepthwiseNCHWc expects OIHW1i%do weight, got %v", bn, weight.Layout))
	}
	if regN <= 0 {
		panic("ops: reg_n must be positive")
	}
	n, cOuter, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw := weight.Shape[2], weight.Shape[3]
	if weight.Shape[0] != cOuter || attrs.OutC != cOuter*bn || !attrs.Depthwise(cOuter*bn) {
		panic(fmt.Sprintf("ops: depthwise weight %v inconsistent with %d blocked channels and attrs %+v", weight.Shape, cOuter*bn, attrs))
	}
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NCHWc(bn), n, cOuter, oh, ow, bn)
	if pf == nil {
		pf = Serial
	}

	padded := padNCHWc(in, attrs.PadH, attrs.PadW, padScratch)
	ph, pw := padded.Shape[2], padded.Shape[3]
	// Like the dense template, the kernel indexes the padded buffer without
	// per-access bounds checks; a geometry that cannot cover the output must
	// fail loudly here.
	if need := (oh-1)*attrs.StrideH + kh; ph < need {
		panic(fmt.Sprintf("ops: padded input height %d cannot cover output height %d (need %d rows for stride %d, kernel %d)",
			ph, oh, need, attrs.StrideH, kh))
	}
	if need := (ow-1)*attrs.StrideW + kw; pw < need {
		panic(fmt.Sprintf("ops: padded input width %d cannot cover output width %d (need %d cols for stride %d, kernel %d)",
			pw, ow, need, attrs.StrideW, kw))
	}

	units := n * cOuter * oh
	pf(Chunks(units, grain), func(ck int) {
		lo, hi := ChunkBounds(ck, units, grain)
		var accArr [1024]float32
		var acc []float32
		if regN*bn <= len(accArr) {
			acc = accArr[:regN*bn]
		} else {
			acc = make([]float32, regN*bn)
		}
		for unit := lo; unit < hi; unit++ {
			y := unit % oh
			rest := unit / oh
			co := rest % cOuter
			b := rest / cOuter
			wBase := co * kh * kw * bn
			rowBase := ((b*cOuter+co)*ph + y*attrs.StrideH) * pw * bn
			dwConvRow(padded, weight, out, acc, attrs, epi,
				b, co, y, cOuter, bn, regN, unrollKer, kh, kw, oh, ow, pw, wBase, rowBase)
		}
	})
	return out
}

// dwConvRow computes one (batch, channel-block, out-row) band of the blocked
// depthwise kernel. Factored out of the parallel dispatch so a chunked work
// item reuses one accumulator tile across its rows.
func dwConvRow(padded, weight, out *tensor.Tensor, acc []float32, attrs Conv2DAttrs, epi Epilogue,
	b, co, y, cOuter, bn, regN int, unrollKer bool, kh, kw, oh, ow, pw, wBase, rowBase int) {
	for owo := 0; owo < ow; owo += regN {
		tile := regN
		if ow-owo < tile {
			tile = ow - owo
		}
		for i := range acc[:tile*bn] {
			acc[i] = 0
		}

		if unrollKer && kh == 3 && kw == 3 {
			dw3x3Tile(padded.Data, weight.Data, acc, rowBase, wBase, pw, bn, tile, owo, attrs.StrideW)
		} else {
			for r := 0; r < kh; r++ {
				rowOff := rowBase + r*pw*bn
				for s := 0; s < kw; s++ {
					wVec := weight.Data[wBase+(r*kw+s)*bn : wBase+(r*kw+s)*bn+bn]
					for i := 0; i < tile; i++ {
						iv := padded.Data[rowOff+((owo+i)*attrs.StrideW+s)*bn : rowOff+((owo+i)*attrs.StrideW+s)*bn+bn]
						dwmac(acc[i*bn:i*bn+bn], iv, wVec, bn)
					}
				}
			}
		}

		outBase := (((b*cOuter+co)*oh+y)*ow + owo) * bn
		for i := 0; i < tile; i++ {
			dst := out.Data[outBase+i*bn : outBase+(i+1)*bn]
			a := acc[i*bn : (i+1)*bn]
			if epi.Bias != nil {
				bvec := epi.Bias[co*bn : co*bn+bn]
				for v := range a {
					a[v] += bvec[v]
				}
			}
			if epi.Residual != nil {
				res := epi.Residual.Data[outBase+i*bn : outBase+(i+1)*bn]
				for v := range a {
					a[v] += res[v]
				}
			}
			if epi.ReLU {
				for v := range a {
					a[v] = relu32(a[v])
				}
			}
			copy(dst, a)
		}
	}
}

// dwmac computes a[:bn] += x[:bn] * w[:bn] lane-wise — the depthwise
// counterpart of axpy. The vector-width block sizes are specialized with
// fixed-size array pointers so the constant-bound loop compiles without
// per-element bounds checks.
func dwmac(a, x, w []float32, bn int) {
	switch bn {
	case 4:
		ap, xp, wp := (*[4]float32)(a), (*[4]float32)(x), (*[4]float32)(w)
		for v := 0; v < 4; v++ {
			ap[v] += xp[v] * wp[v]
		}
	case 8:
		ap, xp, wp := (*[8]float32)(a), (*[8]float32)(x), (*[8]float32)(w)
		for v := 0; v < 8; v++ {
			ap[v] += xp[v] * wp[v]
		}
	case 16:
		ap, xp, wp := (*[16]float32)(a), (*[16]float32)(x), (*[16]float32)(w)
		for v := 0; v < 16; v++ {
			ap[v] += xp[v] * wp[v]
		}
	default:
		for v := range w {
			a[v] += x[v] * w[v]
		}
	}
}

// dw3x3Tile is the unroll_ker=true specialization for the 3x3 depthwise
// kernel (every MobileNet depthwise layer): the kernel-entry loop is fully
// unrolled and the vector-width block sizes dispatch to bounds-check-free
// bodies, mirroring conv3x3Tile in the dense template.
func dw3x3Tile(in, wt, acc []float32, rowBase, wBase, pw, bn, tile, owo, strideW int) {
	switch bn {
	case 4:
		dw3x3Tile4(in, wt, acc, rowBase, wBase, pw, tile, owo, strideW)
	case 8:
		dw3x3Tile8(in, wt, acc, rowBase, wBase, pw, tile, owo, strideW)
	case 16:
		dw3x3Tile16(in, wt, acc, rowBase, wBase, pw, tile, owo, strideW)
	default:
		for r := 0; r < 3; r++ {
			rowOff := rowBase + r*pw*bn
			wR := wBase + r*3*bn
			w0 := wt[wR : wR+bn]
			w1 := wt[wR+bn : wR+2*bn]
			w2 := wt[wR+2*bn : wR+3*bn]
			for i := 0; i < tile; i++ {
				base := rowOff + (owo+i)*strideW*bn
				x0 := in[base : base+bn]
				x1 := in[base+bn : base+2*bn]
				x2 := in[base+2*bn : base+3*bn]
				a := acc[i*bn : i*bn+bn]
				for v := range a {
					a[v] += x0[v]*w0[v] + x1[v]*w1[v] + x2[v]*w2[v]
				}
			}
		}
	}
}

// The bn-specialized 3x3 depthwise tile bodies: bn fixed at a compile-time
// constant and every slice re-expressed as a fixed-size array pointer, which
// eliminates the bounds checks on the three lane-wise multiply-accumulates.

func dw3x3Tile4(in, wt, acc []float32, rowBase, wBase, pw, tile, owo, strideW int) {
	const bn = 4
	for r := 0; r < 3; r++ {
		rowOff := rowBase + r*pw*bn
		wR := wBase + r*3*bn
		w0 := (*[bn]float32)(wt[wR:])
		w1 := (*[bn]float32)(wt[wR+bn:])
		w2 := (*[bn]float32)(wt[wR+2*bn:])
		for i := 0; i < tile; i++ {
			base := rowOff + (owo+i)*strideW*bn
			x0 := (*[bn]float32)(in[base:])
			x1 := (*[bn]float32)(in[base+bn:])
			x2 := (*[bn]float32)(in[base+2*bn:])
			a := (*[bn]float32)(acc[i*bn:])
			for v := 0; v < bn; v++ {
				a[v] += x0[v]*w0[v] + x1[v]*w1[v] + x2[v]*w2[v]
			}
		}
	}
}

func dw3x3Tile8(in, wt, acc []float32, rowBase, wBase, pw, tile, owo, strideW int) {
	const bn = 8
	for r := 0; r < 3; r++ {
		rowOff := rowBase + r*pw*bn
		wR := wBase + r*3*bn
		w0 := (*[bn]float32)(wt[wR:])
		w1 := (*[bn]float32)(wt[wR+bn:])
		w2 := (*[bn]float32)(wt[wR+2*bn:])
		for i := 0; i < tile; i++ {
			base := rowOff + (owo+i)*strideW*bn
			x0 := (*[bn]float32)(in[base:])
			x1 := (*[bn]float32)(in[base+bn:])
			x2 := (*[bn]float32)(in[base+2*bn:])
			a := (*[bn]float32)(acc[i*bn:])
			for v := 0; v < bn; v++ {
				a[v] += x0[v]*w0[v] + x1[v]*w1[v] + x2[v]*w2[v]
			}
		}
	}
}

func dw3x3Tile16(in, wt, acc []float32, rowBase, wBase, pw, tile, owo, strideW int) {
	const bn = 16
	for r := 0; r < 3; r++ {
		rowOff := rowBase + r*pw*bn
		wR := wBase + r*3*bn
		w0 := (*[bn]float32)(wt[wR:])
		w1 := (*[bn]float32)(wt[wR+bn:])
		w2 := (*[bn]float32)(wt[wR+2*bn:])
		for i := 0; i < tile; i++ {
			base := rowOff + (owo+i)*strideW*bn
			x0 := (*[bn]float32)(in[base:])
			x1 := (*[bn]float32)(in[base+bn:])
			x2 := (*[bn]float32)(in[base+2*bn:])
			a := (*[bn]float32)(acc[i*bn:])
			for v := 0; v < bn; v++ {
				a[v] += x0[v]*w0[v] + x1[v]*w1[v] + x2[v]*w2[v]
			}
		}
	}
}

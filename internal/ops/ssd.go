package ops

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// This file implements the SSD multibox head (Liu et al., ECCV 2016), which
// the paper evaluates as SSD-ResNet-50. These operators run after the
// convolutional backbone: MultiBoxPrior generates anchors at compile time;
// MultiBoxDetection decodes predictions and runs non-maximum suppression.
// OpenVINO's SSD sample excludes this stage from its reported time
// (the asterisk in Table 2), which the baseline simulator reproduces.

// MultiBoxPrior generates anchor boxes for one feature map of size h×w.
// sizes are scale fractions of the image, ratios are aspect ratios; each
// pixel gets len(sizes)+len(ratios)-1 anchors (the SSD convention). Boxes
// are returned as (1, h*w*perPixel, 4) corner-format coordinates normalized
// to [0,1].
func MultiBoxPrior(h, w int, sizes, ratios []float32) *tensor.Tensor {
	if len(sizes) == 0 || len(ratios) == 0 {
		panic("ops: MultiBoxPrior needs at least one size and one ratio")
	}
	perPixel := len(sizes) + len(ratios) - 1
	out := tensor.New(tensor.Flat(), 1, h*w*perPixel, 4)
	idx := 0
	put := func(cx, cy, bw, bh float32) {
		out.Data[idx] = cx - bw/2
		out.Data[idx+1] = cy - bh/2
		out.Data[idx+2] = cx + bw/2
		out.Data[idx+3] = cy + bh/2
		idx += 4
	}
	for y := 0; y < h; y++ {
		cy := (float32(y) + 0.5) / float32(h)
		for x := 0; x < w; x++ {
			cx := (float32(x) + 0.5) / float32(w)
			// First anchor set: every size with ratio[0].
			r0 := float32(math.Sqrt(float64(ratios[0])))
			for _, s := range sizes {
				put(cx, cy, s*r0, s/r0)
			}
			// Second set: size[0] with the remaining ratios.
			for _, r := range ratios[1:] {
				sr := float32(math.Sqrt(float64(r)))
				put(cx, cy, sizes[0]*sr, sizes[0]/sr)
			}
		}
	}
	return out
}

// Detection is one decoded SSD detection.
type Detection struct {
	Class int
	Score float32
	// Box is corner-format (xmin, ymin, xmax, ymax), normalized.
	Box [4]float32
}

// MultiBoxDetectionAttrs configures decoding and NMS.
type MultiBoxDetectionAttrs struct {
	// ScoreThresh drops detections below this confidence.
	ScoreThresh float32
	// NMSThresh is the IoU threshold for suppression.
	NMSThresh float32
	// NMSTopK caps the candidates entering NMS (<=0: unlimited).
	NMSTopK int
	// Variances are the SSD box-decoding variances (cx, cy, w, h).
	Variances [4]float32
}

// DefaultMultiBoxDetectionAttrs returns the standard SSD settings.
func DefaultMultiBoxDetectionAttrs() MultiBoxDetectionAttrs {
	return MultiBoxDetectionAttrs{
		ScoreThresh: 0.01,
		NMSThresh:   0.45,
		NMSTopK:     400,
		Variances:   [4]float32{0.1, 0.1, 0.2, 0.2},
	}
}

// MultiBoxDetection decodes class scores and location offsets against the
// anchors and applies per-class NMS. clsProb is (1, numClasses+1, numAnchors)
// with class 0 = background; locPred is (1, numAnchors*4); anchors is
// (1, numAnchors, 4). This operator is layout-dependent: it consumes flat
// tensors produced after the blocked layout flow ends.
func MultiBoxDetection(clsProb, locPred, anchors *tensor.Tensor, attrs MultiBoxDetectionAttrs) []Detection {
	numClasses := clsProb.Shape[1] - 1
	numAnchors := clsProb.Shape[2]
	if anchors.Shape[1] != numAnchors {
		panic(fmt.Sprintf("ops: anchors %d != clsProb anchors %d", anchors.Shape[1], numAnchors))
	}
	if locPred.NumElements() != numAnchors*4 {
		panic(fmt.Sprintf("ops: locPred size %d != 4*%d", locPred.NumElements(), numAnchors))
	}

	var cands []Detection
	for a := 0; a < numAnchors; a++ {
		// Best non-background class for this anchor.
		bestC, bestS := -1, attrs.ScoreThresh
		for c := 1; c <= numClasses; c++ {
			s := clsProb.Data[c*numAnchors+a]
			if s > bestS {
				bestC, bestS = c-1, s
			}
		}
		if bestC < 0 {
			continue
		}
		box := decodeBox(anchors.Data[a*4:a*4+4], locPred.Data[a*4:a*4+4], attrs.Variances)
		cands = append(cands, Detection{Class: bestC, Score: bestS, Box: box})
	}

	sort.Slice(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
	if attrs.NMSTopK > 0 && len(cands) > attrs.NMSTopK {
		cands = cands[:attrs.NMSTopK]
	}

	// Greedy per-class NMS.
	var kept []Detection
	suppressed := make([]bool, len(cands))
	for i := range cands {
		if suppressed[i] {
			continue
		}
		kept = append(kept, cands[i])
		for j := i + 1; j < len(cands); j++ {
			if suppressed[j] || cands[j].Class != cands[i].Class {
				continue
			}
			if iou(cands[i].Box, cands[j].Box) > attrs.NMSThresh {
				suppressed[j] = true
			}
		}
	}
	return kept
}

// decodeBox applies the SSD center-offset decoding.
func decodeBox(anchor, loc []float32, v [4]float32) [4]float32 {
	aw := anchor[2] - anchor[0]
	ah := anchor[3] - anchor[1]
	acx := anchor[0] + aw/2
	acy := anchor[1] + ah/2
	cx := acx + loc[0]*v[0]*aw
	cy := acy + loc[1]*v[1]*ah
	bw := aw * float32(math.Exp(float64(loc[2]*v[2])))
	bh := ah * float32(math.Exp(float64(loc[3]*v[3])))
	return [4]float32{cx - bw/2, cy - bh/2, cx + bw/2, cy + bh/2}
}

// iou computes intersection-over-union of two corner-format boxes.
func iou(a, b [4]float32) float32 {
	x1 := maxf(a[0], b[0])
	y1 := maxf(a[1], b[1])
	x2 := minf(a[2], b[2])
	y2 := minf(a[3], b[3])
	iw := relu32(x2 - x1)
	ih := relu32(y2 - y1)
	inter := iw * ih
	areaA := relu32(a[2]-a[0]) * relu32(a[3]-a[1])
	areaB := relu32(b[2]-b[0]) * relu32(b[3]-b[1])
	union := areaA + areaB - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2DNCHW is the reference direct convolution in the default NCHW layout
// with OIHW weights. It is used as the ground truth for every other
// convolution kernel and as the un-optimized baseline of Table 3 row 1.
func Conv2DNCHW(in, weight *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	return Conv2DNCHWInto(nil, in, weight, attrs, epi, pf)
}

// Conv2DNCHWInto is Conv2DNCHW writing into a caller-provided destination
// (nil dst allocates).
func Conv2DNCHWInto(dst *tensor.Tensor, in, weight *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHW {
		panic(fmt.Sprintf("ops: Conv2DNCHW expects NCHW input, got %v", in.Layout))
	}
	if weight.Layout.Kind != tensor.LayoutOIHW {
		panic(fmt.Sprintf("ops: Conv2DNCHW expects OIHW weight, got %v", weight.Layout))
	}
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc, wc, kh, kw := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	groups := attrs.GroupCount()
	if c%groups != 0 || attrs.OutC%groups != 0 {
		panic(fmt.Sprintf("ops: groups %d must divide channels %d and %d", groups, c, attrs.OutC))
	}
	icPerG := c / groups
	if wc != icPerG || oc != attrs.OutC || kh != attrs.KH || kw != attrs.KW {
		panic(fmt.Sprintf("ops: weight shape %v inconsistent with attrs %+v and input channels %d", weight.Shape, attrs, c))
	}
	ocPerG := oc / groups
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NCHW(), n, oc, oh, ow)
	if pf == nil {
		pf = Serial
	}

	pf(n*oc, func(unit int) {
		b := unit / oc
		k := unit % oc
		// The group's input-channel window: dense convolution reduces over
		// every channel (one group), grouped convolution over its slice.
		icBase := (k / ocPerG) * icPerG
		var bias float32
		if epi.Bias != nil {
			bias = epi.Bias[k]
		}
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				acc := bias
				for ci := 0; ci < icPerG; ci++ {
					for r := 0; r < kh; r++ {
						iy := y*attrs.StrideH + r - attrs.PadH
						if iy < 0 || iy >= h {
							continue
						}
						inRow := in.Data[((b*c+icBase+ci)*h+iy)*w:]
						wRow := weight.Data[((k*icPerG+ci)*kh+r)*kw:]
						for s := 0; s < kw; s++ {
							ix := x*attrs.StrideW + s - attrs.PadW
							if ix < 0 || ix >= w {
								continue
							}
							acc += inRow[ix] * wRow[s]
						}
					}
				}
				idx := ((b*oc+k)*oh+y)*ow + x
				if epi.Residual != nil {
					acc += epi.Residual.Data[idx]
				}
				if epi.ReLU {
					acc = relu32(acc)
				}
				out.Data[idx] = acc
			}
		}
	})
	return out
}

// Conv2DNHWC is the channels-last direct convolution (TensorFlow's default
// layout). Weights remain OIHW.
func Conv2DNHWC(in, weight *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	return Conv2DNHWCInto(nil, in, weight, attrs, epi, pf)
}

// Conv2DNHWCInto is Conv2DNHWC writing into a caller-provided destination
// (nil dst allocates).
func Conv2DNHWCInto(dst *tensor.Tensor, in, weight *tensor.Tensor, attrs Conv2DAttrs, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNHWC {
		panic(fmt.Sprintf("ops: Conv2DNHWC expects NHWC input, got %v", in.Layout))
	}
	n, h, w, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oc, kh, kw := weight.Shape[0], weight.Shape[2], weight.Shape[3]
	groups := attrs.GroupCount()
	if c%groups != 0 || attrs.OutC%groups != 0 {
		panic(fmt.Sprintf("ops: groups %d must divide channels %d and %d", groups, c, attrs.OutC))
	}
	icPerG := c / groups
	if weight.Shape[1] != icPerG || oc != attrs.OutC {
		panic(fmt.Sprintf("ops: weight shape %v inconsistent with attrs %+v and input channels %d", weight.Shape, attrs, c))
	}
	ocPerG := oc / groups
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NHWC(), n, oh, ow, oc)
	if pf == nil {
		pf = Serial
	}

	pf(n*oh, func(unit int) {
		b := unit / oh
		y := unit % oh
		for x := 0; x < ow; x++ {
			outPix := out.Data[((b*oh+y)*ow+x)*oc:]
			for k := 0; k < oc; k++ {
				icBase := (k / ocPerG) * icPerG
				var acc float32
				if epi.Bias != nil {
					acc = epi.Bias[k]
				}
				for r := 0; r < kh; r++ {
					iy := y*attrs.StrideH + r - attrs.PadH
					if iy < 0 || iy >= h {
						continue
					}
					for s := 0; s < kw; s++ {
						ix := x*attrs.StrideW + s - attrs.PadW
						if ix < 0 || ix >= w {
							continue
						}
						inPix := in.Data[((b*h+iy)*w+ix)*c+icBase:]
						wRow := weight.Data[((k*icPerG)*kh+r)*kw+s:]
						// Weight stride between consecutive in-channels at a
						// fixed (r,s) is kh*kw.
						for ci := 0; ci < icPerG; ci++ {
							acc += inPix[ci] * wRow[ci*kh*kw]
						}
					}
				}
				idx := ((b*oh+y)*ow+x)*oc + k
				if epi.Residual != nil {
					acc += epi.Residual.Data[idx]
				}
				if epi.ReLU {
					acc = relu32(acc)
				}
				outPix[k] = acc
			}
		}
	})
	return out
}

// padNCHWc returns the input with explicit zero padding applied on H and W,
// or the input itself when no padding is needed. scratch, if non-nil, is the
// reused padded buffer: its border was zeroed when it was first allocated and
// interior writes never touch it, so only the interior rows are re-copied.
func padNCHWc(in *tensor.Tensor, padH, padW int, scratch *tensor.Tensor) *tensor.Tensor {
	if padH == 0 && padW == 0 {
		return in
	}
	n, co, h, w, x := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
	ph, pw := h+2*padH, w+2*padW
	out := tensor.EnsureDst(scratch, in.Layout, n, co, ph, pw, x)
	for b := 0; b < n; b++ {
		for c := 0; c < co; c++ {
			for y := 0; y < h; y++ {
				srcOff := (((b*co+c)*h + y) * w) * x
				dstOff := (((b*co+c)*ph+y+padH)*pw + padW) * x
				copy(out.Data[dstOff:dstOff+w*x], in.Data[srcOff:srcOff+w*x])
			}
		}
	}
	return out
}

// Conv2DNCHWc is the paper's Algorithm 1: the direct convolution template in
// the blocked NCHW[x]c layout with OIHW[x]i[y]o weights. The schedule's
// register blocking is realized with a reg_n × oc_bn accumulator tile that
// stays in registers/L1 across the full reduction, exactly mirroring the
// ZMM-register allocation of Figure 1:
//
//	for each disjoint chunk of OFMAP:            (parallel)
//	  for ow.outer:
//	    init acc[reg_n][oc_bn]
//	    for ic.outer:
//	      for each kernel entry (kh,kw):         (optionally unrolled)
//	        for ic.inner:
//	          load weight vector  (oc_bn floats)
//	          fmadd into acc[i] for i < reg_n
//	    store acc (+ fused epilogue)
//
// The input must be NCHW[icb]c and the weight OIHW[icb]i[ocb]o with icb =
// sched ic_bn and ocb = sched oc_bn.
func Conv2DNCHWc(in, weight *tensor.Tensor, attrs Conv2DAttrs, icb, ocb, regN int, unrollKer bool, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	return Conv2DNCHWcInto(nil, nil, in, weight, attrs, icb, ocb, regN, unrollKer, 1, epi, pf)
}

// PaddedShapeNCHWc returns the buffer shape Conv2DNCHWcInto needs for its
// padding scratch given the blocked input shape, or nil when the convolution
// needs no explicit padding. Sessions use it to size arenas once.
func PaddedShapeNCHWc(inShape []int, attrs Conv2DAttrs) []int {
	if attrs.PadH == 0 && attrs.PadW == 0 {
		return nil
	}
	return []int{inShape[0], inShape[1], inShape[2] + 2*attrs.PadH, inShape[3] + 2*attrs.PadW, inShape[4]}
}

// Conv2DNCHWcInto is Conv2DNCHWc writing into caller-provided buffers: dst
// receives the output and padScratch (sized per PaddedShapeNCHWc, zero-filled
// at allocation) holds the explicitly padded input. Either may be nil, in
// which case it is allocated. grain is the schedule's parallel chunk size —
// how many (batch, oc.outer, oh) rows one parallel work item covers (<=1
// means one row per item, the historical split); any grain computes
// bit-identical output.
func Conv2DNCHWcInto(dst, padScratch *tensor.Tensor, in, weight *tensor.Tensor, attrs Conv2DAttrs, icb, ocb, regN int, unrollKer bool, grain int, epi Epilogue, pf ParallelFor) *tensor.Tensor {
	if in.Layout.Kind != tensor.LayoutNCHWc || in.Layout.BlockC != icb {
		panic(fmt.Sprintf("ops: Conv2DNCHWc expects NCHW%dc input, got %v", icb, in.Layout))
	}
	if weight.Layout.Kind != tensor.LayoutOIHWio || weight.Layout.BlockC != icb || weight.Layout.BlockK != ocb {
		panic(fmt.Sprintf("ops: Conv2DNCHWc expects OIHW%di%do weight, got %v", icb, ocb, weight.Layout))
	}
	if regN <= 0 {
		panic("ops: reg_n must be positive")
	}
	n, icOuter, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	ocOuter, kh, kw := weight.Shape[0], weight.Shape[2], weight.Shape[3]
	// Grouped convolution: the channel blocks must tile the groups exactly
	// (ic_bn divides in_channels/groups, oc_bn divides out_channels/groups),
	// so each output block reduces over a contiguous run of input blocks and
	// the dense template below applies per group unchanged. Dense convolution
	// is the one-group case at zero cost.
	groups := attrs.GroupCount()
	if icOuter%groups != 0 || ocOuter%groups != 0 {
		panic(fmt.Sprintf("ops: %d groups do not tile %d input / %d output channel blocks", groups, icOuter, ocOuter))
	}
	icOuterPerG := icOuter / groups
	ocOuterPerG := ocOuter / groups
	if icOuterPerG != weight.Shape[1] {
		panic(fmt.Sprintf("ops: per-group ic.outer %d != weight %d", icOuterPerG, weight.Shape[1]))
	}
	oh, ow := attrs.OutSize(h, w)
	out := tensor.EnsureDst(dst, tensor.NCHWc(ocb), n, ocOuter, oh, ow, ocb)
	if pf == nil {
		pf = Serial
	}

	padded := padNCHWc(in, attrs.PadH, attrs.PadW, padScratch)
	ph, pw := padded.Shape[2], padded.Shape[3]
	// The kernel indexes the padded buffer without per-access bounds checks,
	// so a schedule whose geometry does not cover the output must fail loudly
	// here rather than read garbage (or panic mid-parallel-region).
	if need := (oh-1)*attrs.StrideH + kh; ph < need {
		panic(fmt.Sprintf("ops: padded input height %d cannot cover output height %d (need %d rows for stride %d, kernel %d)",
			ph, oh, need, attrs.StrideH, kh))
	}
	if need := (ow-1)*attrs.StrideW + kw; pw < need {
		panic(fmt.Sprintf("ops: padded input width %d cannot cover output width %d (need %d cols for stride %d, kernel %d)",
			pw, ow, need, attrs.StrideW, kw))
	}

	// One parallel unit per (batch, oc.outer, oh) row — the disjoint OFMAP
	// chunks of Algorithm 1 line 8 — grouped `grain` rows to a work item so
	// the accumulator-tile setup amortizes across the chunk.
	units := n * ocOuter * oh
	pf(Chunks(units, grain), func(ck int) {
		lo, hi := ChunkBounds(ck, units, grain)
		// Accumulator tile: reg_n positions × oc_bn sub-channels. In the
		// AVX-512 realization each row is one ZMM register; the fixed-size
		// backing array keeps the tile on the goroutine stack so the hot
		// loop performs no per-row heap allocation.
		var accArr [1024]float32
		var acc []float32
		if regN*ocb <= len(accArr) {
			acc = accArr[:regN*ocb]
		} else {
			acc = make([]float32, regN*ocb)
		}
		for unit := lo; unit < hi; unit++ {
			y := unit % oh
			rest := unit / oh
			co := rest % ocOuter
			b := rest / ocOuter

			wBase := co * icOuterPerG * kh * kw * icb * ocb
			// First input channel block of this output block's group.
			icBase := (co / ocOuterPerG) * icOuterPerG

			runConvRow(padded, weight, out, acc, attrs, epi,
				b, co, y, icOuter, icOuterPerG, ocOuter,
				icb, ocb, regN, unrollKer, kh, kw, oh, ow, ph, pw,
				wBase, icBase)
		}
	})
	return out
}

// runConvRow computes one (batch, oc.outer, oh) output row of the blocked
// direct template — the body of Algorithm 1's parallel loop, factored out so
// the chunked dispatcher above can reuse one accumulator tile across a whole
// chunk of rows.
func runConvRow(padded, weight, out *tensor.Tensor, acc []float32, attrs Conv2DAttrs, epi Epilogue,
	b, co, y, icOuter, icOuterPerG, ocOuter, icb, ocb, regN int, unrollKer bool,
	kh, kw, oh, ow, ph, pw, wBase, icBase int) {
	for owo := 0; owo < ow; owo += regN {
		tile := regN
		if ow-owo < tile {
			tile = ow - owo
		}
		for i := range acc[:tile*ocb] {
			acc[i] = 0
		}

		for ci := 0; ci < icOuterPerG; ci++ {
			inBase := ((b*icOuter+icBase+ci)*ph + y*attrs.StrideH) * pw * icb
			wCI := wBase + ci*kh*kw*icb*ocb
			if unrollKer && kh == 3 && kw == 3 {
				conv3x3Tile(padded.Data, weight.Data, acc, inBase, wCI, pw, icb, ocb, tile, owo, attrs.StrideW)
			} else if unrollKer && kh == 1 && kw == 1 {
				conv1x1Tile(padded.Data, weight.Data, acc, inBase, wCI, pw, icb, ocb, tile, owo, attrs.StrideW)
			} else {
				for r := 0; r < kh; r++ {
					rowOff := inBase + r*pw*icb
					for s := 0; s < kw; s++ {
						wRS := wCI + (r*kw+s)*icb*ocb
						for ii := 0; ii < icb; ii++ {
							wVec := weight.Data[wRS+ii*ocb : wRS+ii*ocb+ocb]
							for i := 0; i < tile; i++ {
								iv := padded.Data[rowOff+((owo+i)*attrs.StrideW+s)*icb+ii]
								axpy(acc[i*ocb:i*ocb+ocb], wVec, iv, ocb)
							}
						}
					}
				}
			}
		}

		// Epilogue + store (Algorithm 1 lines 21-23, with fusion).
		outBase := (((b*ocOuter+co)*oh+y)*ow + owo) * ocb
		for i := 0; i < tile; i++ {
			dst := out.Data[outBase+i*ocb : outBase+(i+1)*ocb]
			a := acc[i*ocb : (i+1)*ocb]
			if epi.Bias != nil {
				bvec := epi.Bias[co*ocb : co*ocb+ocb]
				for oi := range a {
					a[oi] += bvec[oi]
				}
			}
			if epi.Residual != nil {
				res := epi.Residual.Data[outBase+i*ocb : outBase+(i+1)*ocb]
				for oi := range a {
					a[oi] += res[oi]
				}
			}
			if epi.ReLU {
				for oi := range a {
					a[oi] = relu32(a[oi])
				}
			}
			copy(dst, a)
		}
	}
}

// axpy computes a[:ocb] += x * w[:ocb], the direct template's innermost FMA.
// The vector-width block sizes real schedules pick (the oc_bn values that
// fill 4/8/16 fp32 lanes) are specialized with fixed-size array pointers:
// the conversion performs one length check, after which the constant-bound
// loop compiles without per-element bounds checks.
func axpy(a, w []float32, x float32, ocb int) {
	switch ocb {
	case 4:
		ap, wp := (*[4]float32)(a), (*[4]float32)(w)
		for oi := 0; oi < 4; oi++ {
			ap[oi] += x * wp[oi]
		}
	case 8:
		ap, wp := (*[8]float32)(a), (*[8]float32)(w)
		for oi := 0; oi < 8; oi++ {
			ap[oi] += x * wp[oi]
		}
	case 16:
		ap, wp := (*[16]float32)(a), (*[16]float32)(w)
		for oi := 0; oi < 16; oi++ {
			ap[oi] += x * wp[oi]
		}
	default:
		for oi := range w {
			a[oi] += x * w[oi]
		}
	}
}

// conv3x3Tile is the unroll_ker=true specialization for 3x3 kernels: the
// (kh,kw) loop is fully unrolled so the bounds are compile-time constants,
// and the vector-width oc_bn values dispatch to bounds-check-free bodies.
func conv3x3Tile(in, wt, acc []float32, inBase, wCI, pw, icb, ocb, tile, owo, strideW int) {
	switch ocb {
	case 4:
		conv3x3Tile4(in, wt, acc, inBase, wCI, pw, icb, tile, owo, strideW)
	case 8:
		conv3x3Tile8(in, wt, acc, inBase, wCI, pw, icb, tile, owo, strideW)
	case 16:
		conv3x3Tile16(in, wt, acc, inBase, wCI, pw, icb, tile, owo, strideW)
	default:
		for r := 0; r < 3; r++ {
			rowOff := inBase + r*pw*icb
			wR := wCI + r*3*icb*ocb
			for ii := 0; ii < icb; ii++ {
				w0 := wt[wR+ii*ocb : wR+ii*ocb+ocb]
				w1 := wt[wR+(icb+ii)*ocb : wR+(icb+ii)*ocb+ocb]
				w2 := wt[wR+(2*icb+ii)*ocb : wR+(2*icb+ii)*ocb+ocb]
				for i := 0; i < tile; i++ {
					base := rowOff + (owo+i)*strideW*icb + ii
					iv0 := in[base]
					iv1 := in[base+icb]
					iv2 := in[base+2*icb]
					a := acc[i*ocb : i*ocb+ocb]
					for oi := range a {
						a[oi] += iv0*w0[oi] + iv1*w1[oi] + iv2*w2[oi]
					}
				}
			}
		}
	}
}

// conv1x1Tile is the unroll_ker=true specialization for 1x1 kernels.
func conv1x1Tile(in, wt, acc []float32, inBase, wCI, pw, icb, ocb, tile, owo, strideW int) {
	_ = pw
	switch ocb {
	case 4:
		conv1x1Tile4(in, wt, acc, inBase, wCI, icb, tile, owo, strideW)
	case 8:
		conv1x1Tile8(in, wt, acc, inBase, wCI, icb, tile, owo, strideW)
	case 16:
		conv1x1Tile16(in, wt, acc, inBase, wCI, icb, tile, owo, strideW)
	default:
		for ii := 0; ii < icb; ii++ {
			wv := wt[wCI+ii*ocb : wCI+ii*ocb+ocb]
			for i := 0; i < tile; i++ {
				iv := in[inBase+(owo+i)*strideW*icb+ii]
				a := acc[i*ocb : i*ocb+ocb]
				for oi := range a {
					a[oi] += iv * wv[oi]
				}
			}
		}
	}
}

// The oc_bn-specialized tile bodies. Each is the generic loop with ocb fixed
// at a compile-time constant and every slice re-expressed as a fixed-size
// array pointer, which eliminates the bounds check on each of the three
// multiply-accumulates in the hottest loop in the repository.

func conv3x3Tile4(in, wt, acc []float32, inBase, wCI, pw, icb, tile, owo, strideW int) {
	const ocb = 4
	for r := 0; r < 3; r++ {
		rowOff := inBase + r*pw*icb
		wR := wCI + r*3*icb*ocb
		for ii := 0; ii < icb; ii++ {
			w0 := (*[ocb]float32)(wt[wR+ii*ocb:])
			w1 := (*[ocb]float32)(wt[wR+(icb+ii)*ocb:])
			w2 := (*[ocb]float32)(wt[wR+(2*icb+ii)*ocb:])
			for i := 0; i < tile; i++ {
				base := rowOff + (owo+i)*strideW*icb + ii
				iv0, iv1, iv2 := in[base], in[base+icb], in[base+2*icb]
				a := (*[ocb]float32)(acc[i*ocb:])
				for oi := 0; oi < ocb; oi++ {
					a[oi] += iv0*w0[oi] + iv1*w1[oi] + iv2*w2[oi]
				}
			}
		}
	}
}

func conv3x3Tile8(in, wt, acc []float32, inBase, wCI, pw, icb, tile, owo, strideW int) {
	const ocb = 8
	for r := 0; r < 3; r++ {
		rowOff := inBase + r*pw*icb
		wR := wCI + r*3*icb*ocb
		for ii := 0; ii < icb; ii++ {
			w0 := (*[ocb]float32)(wt[wR+ii*ocb:])
			w1 := (*[ocb]float32)(wt[wR+(icb+ii)*ocb:])
			w2 := (*[ocb]float32)(wt[wR+(2*icb+ii)*ocb:])
			for i := 0; i < tile; i++ {
				base := rowOff + (owo+i)*strideW*icb + ii
				iv0, iv1, iv2 := in[base], in[base+icb], in[base+2*icb]
				a := (*[ocb]float32)(acc[i*ocb:])
				for oi := 0; oi < ocb; oi++ {
					a[oi] += iv0*w0[oi] + iv1*w1[oi] + iv2*w2[oi]
				}
			}
		}
	}
}

func conv3x3Tile16(in, wt, acc []float32, inBase, wCI, pw, icb, tile, owo, strideW int) {
	const ocb = 16
	for r := 0; r < 3; r++ {
		rowOff := inBase + r*pw*icb
		wR := wCI + r*3*icb*ocb
		for ii := 0; ii < icb; ii++ {
			w0 := (*[ocb]float32)(wt[wR+ii*ocb:])
			w1 := (*[ocb]float32)(wt[wR+(icb+ii)*ocb:])
			w2 := (*[ocb]float32)(wt[wR+(2*icb+ii)*ocb:])
			for i := 0; i < tile; i++ {
				base := rowOff + (owo+i)*strideW*icb + ii
				iv0, iv1, iv2 := in[base], in[base+icb], in[base+2*icb]
				a := (*[ocb]float32)(acc[i*ocb:])
				for oi := 0; oi < ocb; oi++ {
					a[oi] += iv0*w0[oi] + iv1*w1[oi] + iv2*w2[oi]
				}
			}
		}
	}
}

func conv1x1Tile4(in, wt, acc []float32, inBase, wCI, icb, tile, owo, strideW int) {
	const ocb = 4
	for ii := 0; ii < icb; ii++ {
		wv := (*[ocb]float32)(wt[wCI+ii*ocb:])
		for i := 0; i < tile; i++ {
			iv := in[inBase+(owo+i)*strideW*icb+ii]
			a := (*[ocb]float32)(acc[i*ocb:])
			for oi := 0; oi < ocb; oi++ {
				a[oi] += iv * wv[oi]
			}
		}
	}
}

func conv1x1Tile8(in, wt, acc []float32, inBase, wCI, icb, tile, owo, strideW int) {
	const ocb = 8
	for ii := 0; ii < icb; ii++ {
		wv := (*[ocb]float32)(wt[wCI+ii*ocb:])
		for i := 0; i < tile; i++ {
			iv := in[inBase+(owo+i)*strideW*icb+ii]
			a := (*[ocb]float32)(acc[i*ocb:])
			for oi := 0; oi < ocb; oi++ {
				a[oi] += iv * wv[oi]
			}
		}
	}
}

func conv1x1Tile16(in, wt, acc []float32, inBase, wCI, icb, tile, owo, strideW int) {
	const ocb = 16
	for ii := 0; ii < icb; ii++ {
		wv := (*[ocb]float32)(wt[wCI+ii*ocb:])
		for i := 0; i < tile; i++ {
			iv := in[inBase+(owo+i)*strideW*icb+ii]
			a := (*[ocb]float32)(acc[i*ocb:])
			for oi := 0; oi < ocb; oi++ {
				a[oi] += iv * wv[oi]
			}
		}
	}
}

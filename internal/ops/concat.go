package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Concat concatenates activations along the channel dimension. It is
// layout-oblivious per the paper's classification as long as every input
// shares one layout; for NCHW[x]c inputs every operand must use the same
// block size and have a channel count divisible by it, in which case the
// blocked concat is a pure block-row copy (DenseNet and Inception rely on
// this to keep blocked layouts flowing through their concat blocks).
func Concat(ins []*tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	return ConcatInto(nil, ins, pf)
}

// ConcatInto is Concat writing into a caller-provided destination (nil dst
// allocates).
func ConcatInto(dst *tensor.Tensor, ins []*tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	if len(ins) == 0 {
		panic("ops: Concat of zero tensors")
	}
	if len(ins) == 1 {
		if dst == nil {
			return ins[0].Clone()
		}
		out := tensor.EnsureDst(dst, ins[0].Layout, ins[0].Shape...)
		copy(out.Data, ins[0].Data)
		return out
	}
	l := ins[0].Layout
	for _, t := range ins[1:] {
		if !t.Layout.Equal(l) {
			panic(fmt.Sprintf("ops: Concat layout mismatch %v vs %v", l, t.Layout))
		}
	}
	switch l.Kind {
	case tensor.LayoutNCHW:
		return concatNCHW(dst, ins, pf)
	case tensor.LayoutNCHWc:
		return concatNCHWc(dst, ins, pf)
	default:
		panic(fmt.Sprintf("ops: Concat supports NCHW and NCHWc, got %v", l))
	}
}

func concatNCHW(dst *tensor.Tensor, ins []*tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	n, h, w := ins[0].Shape[0], ins[0].Shape[2], ins[0].Shape[3]
	totalC := 0
	for _, t := range ins {
		if t.Shape[0] != n || t.Shape[2] != h || t.Shape[3] != w {
			panic(fmt.Sprintf("ops: Concat spatial mismatch %v vs %v", ins[0].Shape, t.Shape))
		}
		totalC += t.Shape[1]
	}
	out := tensor.EnsureDst(dst, tensor.NCHW(), n, totalC, h, w)
	if pf == nil {
		pf = Serial
	}
	pf(n, func(b int) {
		off := b * totalC * h * w
		for _, t := range ins {
			c := t.Shape[1]
			src := t.Data[b*c*h*w : (b+1)*c*h*w]
			copy(out.Data[off:off+len(src)], src)
			off += len(src)
		}
	})
	return out
}

func concatNCHWc(dst *tensor.Tensor, ins []*tensor.Tensor, pf ParallelFor) *tensor.Tensor {
	x := ins[0].Layout.BlockC
	n, h, w := ins[0].Shape[0], ins[0].Shape[2], ins[0].Shape[3]
	totalCo := 0
	for _, t := range ins {
		if t.Shape[0] != n || t.Shape[2] != h || t.Shape[3] != w || t.Shape[4] != x {
			panic(fmt.Sprintf("ops: blocked Concat mismatch %v vs %v", ins[0].Shape, t.Shape))
		}
		totalCo += t.Shape[1]
	}
	out := tensor.EnsureDst(dst, tensor.NCHWc(x), n, totalCo, h, w, x)
	if pf == nil {
		pf = Serial
	}
	pf(n, func(b int) {
		off := b * totalCo * h * w * x
		for _, t := range ins {
			co := t.Shape[1]
			src := t.Data[b*co*h*w*x : (b+1)*co*h*w*x]
			copy(out.Data[off:off+len(src)], src)
			off += len(src)
		}
	})
	return out
}

// Package models builds the 15 CNN computation graphs the paper evaluates
// (Section 4): ResNet-18/34/50/101/152, VGG-11/13/16/19,
// DenseNet-121/161/169/201, Inception-v3 and SSD with a ResNet-50 base —
// plus MobileNet-V1, the depthwise-separable extension beyond the paper's
// suite (registered, but outside Names() so the paper tables stay exactly
// the published 15). Weights are deterministic seeded synthetic tensors —
// the evaluation measures latency, not accuracy, so only shapes and
// structure matter. See README.md in this directory for the full model zoo,
// including the tiny-* smoke models, and the per-model support matrix.
//
// One structural simplification relative to the torchvision definitions:
// every normalization appears as conv → batch_norm → relu (post-activation),
// including DenseNet's internals, so that the SimplifyInference pass can
// fold every BatchNorm. This leaves FLOP counts and layer geometry intact,
// which is what the latency experiments depend on.
package models

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Spec describes one evaluated model.
type Spec struct {
	// Name is the registry key (e.g. "resnet-50").
	Name string
	// Display is the paper's table heading (e.g. "ResNet-50").
	Display string
	// InputC/H/W is the input geometry; batch is always 1.
	InputC, InputH, InputW int
	// UsePBQP marks models whose global search uses the approximation
	// algorithm ("only SSD was done approximately", Section 3.3.2).
	UsePBQP bool
	build   func(b *graph.Builder) *graph.Graph
}

var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("models: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// Names returns the model names in the paper's table order. The paper
// tables iterate exactly this list; extensions beyond the published suite
// appear in ExtendedNames instead.
func Names() []string {
	return []string{
		"resnet-18", "resnet-34", "resnet-50", "resnet-101", "resnet-152",
		"vgg-11", "vgg-13", "vgg-16", "vgg-19",
		"densenet-121", "densenet-161", "densenet-169", "densenet-201",
		"inception-v3", "ssd-resnet-50",
	}
}

// ExtendedNames returns every registered full-size model: the paper's 15 in
// table order followed by the post-paper extensions (MobileNet-V1). The
// benchmark trajectory files iterate this list.
func ExtendedNames() []string {
	return append(Names(), "mobilenet-v1")
}

// Get returns the spec for a model name.
func Get(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("models: unknown model %q (known: %v)", name, known)
	}
	return s, nil
}

// Build constructs the named model's graph with the given parameter seed.
func Build(name string, seed uint64) (*graph.Graph, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(name, seed)
	return s.build(b), nil
}

// MustBuild is Build for known-good names.
func MustBuild(name string, seed uint64) *graph.Graph {
	g, err := Build(name, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// tinyBuilders maps the tiny-* smoke models onto their constructors. They
// live outside the Spec registry (the paper tables must stay the published
// suite) but serving layers still need to rebuild them by name.
var tinyBuilders = map[string]func(seed uint64) *graph.Graph{
	"tiny-cnn":       TinyCNN,
	"tiny-resnet":    TinyResNet,
	"tiny-densenet":  TinyDenseNet,
	"tiny-inception": TinyInception,
	"tiny-ssd":       TinySSD,
	"tiny-mobilenet": TinyMobileNet,
	"tiny-vgg":       TinyVGG,
}

// TinyNames returns the tiny smoke-model names in sorted order.
func TinyNames() []string {
	names := make([]string, 0, len(tinyBuilders))
	for k := range tinyBuilders {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// BuildAny constructs any known model by name — full-size registry entries
// or the tiny-* smoke models — with the given parameter seed.
func BuildAny(name string, seed uint64) (*graph.Graph, error) {
	if tb, ok := tinyBuilders[name]; ok {
		return tb(seed), nil
	}
	return Build(name, seed)
}

// ResolveGraph rebuilds any known model's structure by name: the default
// graph resolver for bundle loading (core.LoadBundle). Full-size models are
// built shape-only — the bundle supplies every runtime parameter, so
// materializing hundreds of megabytes of synthetic weights here would be
// waste — while the tiny smoke models build fully (they are a few KB).
func ResolveGraph(name string, seed uint64) (*graph.Graph, error) {
	if tb, ok := tinyBuilders[name]; ok {
		return tb(seed), nil
	}
	return BuildShapeOnly(name)
}

// BuildShapeOnly constructs the named model without materializing weight
// payloads. The graph supports every compiler pass and the latency
// predictor but cannot be executed; the simulation harnesses use it to keep
// hundreds of compilations cheap.
func BuildShapeOnly(name string) (*graph.Graph, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(name, 1)
	b.ShapeOnlyParams = true
	return s.build(b), nil
}

// Package models builds the 15 CNN computation graphs the paper evaluates
// (Section 4): ResNet-18/34/50/101/152, VGG-11/13/16/19,
// DenseNet-121/161/169/201, Inception-v3 and SSD with a ResNet-50 base —
// plus MobileNet-V1, the depthwise-separable extension beyond the paper's
// suite (registered, but outside Names() so the paper tables stay exactly
// the published 15). Weights are deterministic seeded synthetic tensors —
// the evaluation measures latency, not accuracy, so only shapes and
// structure matter. See README.md in this directory for the full model zoo,
// including the tiny-* smoke models, and the per-model support matrix.
//
// One structural simplification relative to the torchvision definitions:
// every normalization appears as conv → batch_norm → relu (post-activation),
// including DenseNet's internals, so that the SimplifyInference pass can
// fold every BatchNorm. This leaves FLOP counts and layer geometry intact,
// which is what the latency experiments depend on.
package models

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Spec describes one evaluated model.
type Spec struct {
	// Name is the registry key (e.g. "resnet-50").
	Name string
	// Display is the paper's table heading (e.g. "ResNet-50").
	Display string
	// InputC/H/W is the input geometry; batch is always 1.
	InputC, InputH, InputW int
	// UsePBQP marks models whose global search uses the approximation
	// algorithm ("only SSD was done approximately", Section 3.3.2).
	UsePBQP bool
	build   func(b *graph.Builder) *graph.Graph
}

var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("models: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// Names returns the model names in the paper's table order. The paper
// tables iterate exactly this list; extensions beyond the published suite
// appear in ExtendedNames instead.
func Names() []string {
	return []string{
		"resnet-18", "resnet-34", "resnet-50", "resnet-101", "resnet-152",
		"vgg-11", "vgg-13", "vgg-16", "vgg-19",
		"densenet-121", "densenet-161", "densenet-169", "densenet-201",
		"inception-v3", "ssd-resnet-50",
	}
}

// ExtendedNames returns every registered full-size model: the paper's 15 in
// table order followed by the post-paper extensions (MobileNet-V1). The
// benchmark trajectory files iterate this list.
func ExtendedNames() []string {
	return append(Names(), "mobilenet-v1")
}

// Get returns the spec for a model name.
func Get(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("models: unknown model %q (known: %v)", name, known)
	}
	return s, nil
}

// Build constructs the named model's graph with the given parameter seed.
func Build(name string, seed uint64) (*graph.Graph, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(name, seed)
	return s.build(b), nil
}

// MustBuild is Build for known-good names.
func MustBuild(name string, seed uint64) *graph.Graph {
	g, err := Build(name, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// BuildShapeOnly constructs the named model without materializing weight
// payloads. The graph supports every compiler pass and the latency
// predictor but cannot be executed; the simulation harnesses use it to keep
// hundreds of compilations cheap.
func BuildShapeOnly(name string) (*graph.Graph, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(name, 1)
	b.ShapeOnlyParams = true
	return s.build(b), nil
}

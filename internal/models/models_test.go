package models

import (
	"testing"

	"repro/internal/graph"
)

func TestNamesAllRegistered(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("model count = %d, want 15 (the paper evaluates 15 networks)", len(names))
	}
	for _, n := range names {
		if _, err := Get(n); err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
	}
	if _, err := Get("alexnet"); err == nil {
		t.Fatal("expected error for unregistered model")
	}
	ext := ExtendedNames()
	if len(ext) != len(names)+1 || ext[len(ext)-1] != "mobilenet-v1" {
		t.Fatalf("ExtendedNames() = %v, want paper names + mobilenet-v1", ext)
	}
	for _, n := range ext {
		if _, err := Get(n); err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
	}
}

func TestMobileNetV1Structure(t *testing.T) {
	g := MustBuild("mobilenet-v1", 1)
	// Stem + 13 blocks x (depthwise + pointwise) = 27 convolutions.
	if got := len(g.Convs()); got != 27 {
		t.Fatalf("mobilenet-v1: convs = %d, want 27", got)
	}
	depthwise := 0
	for _, n := range g.Convs() {
		if graph.ConvWorkload(n).Depthwise() {
			depthwise++
		}
	}
	if depthwise != 13 {
		t.Fatalf("mobilenet-v1: depthwise convs = %d, want 13", depthwise)
	}
	s := g.ComputeStats()
	// Reference ~4.2M parameters, ~1.1 GFLOPs (2 FLOPs per MAC).
	if s.Params < 3.8e6 || s.Params > 4.8e6 {
		t.Fatalf("mobilenet-v1 params = %d, want ~4.2M", s.Params)
	}
	if s.FLOPs < 1.0e9 || s.FLOPs > 1.3e9 {
		t.Fatalf("mobilenet-v1 FLOPs = %.3g, want ~1.1e9", s.FLOPs)
	}
	if err := graph.Optimize(g); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Topo() {
		if n.Op == graph.OpBatchNorm {
			t.Fatalf("unfolded batch norm %v survived (depthwise BN folding)", n)
		}
	}
}

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := MustBuild(name, 42)
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			spec, _ := Get(name)
			in := g.Input.OutShape
			if in.Dims[1] != spec.InputC || in.Dims[2] != spec.InputH || in.Dims[3] != spec.InputW {
				t.Fatalf("input shape %v != spec %+v", in, spec)
			}
			// Classification nets end in (1, 1000) softmax; SSD in
			// detections.
			out := g.Outputs[0].OutShape
			if name == "ssd-resnet-50" {
				if len(out.Dims) != 3 || out.Dims[2] != 6 {
					t.Fatalf("ssd output shape %v", out)
				}
			} else if len(out.Dims) != 2 || out.Dims[1] != 1000 {
				t.Fatalf("classifier output shape %v", out)
			}
		})
	}
}

func TestConvCounts(t *testing.T) {
	// Convolution counts from the reference definitions.
	want := map[string]int{
		"resnet-18":  20, // 16 block convs + stem + 3 projections
		"resnet-34":  36,
		"resnet-50":  53,
		"resnet-101": 104,
		"resnet-152": 155,
		"vgg-11":     8,
		"vgg-13":     10,
		"vgg-16":     13,
		"vgg-19":     16,
		// DenseNet: 2 convs per dense layer + 3 transitions + stem.
		"densenet-121": 120,
		"densenet-161": 160,
		"densenet-169": 168,
		"densenet-201": 200,
	}
	for name, wantConvs := range want {
		g := MustBuild(name, 1)
		if got := len(g.Convs()); got != wantConvs {
			t.Errorf("%s: convs = %d, want %d", name, got, wantConvs)
		}
	}
	// Inception-v3: stem 5 + A(7)*3 + B(4) + C(10)*4 + D(6) + E(9)*2 = 94.
	g := MustBuild("inception-v3", 1)
	if got := len(g.Convs()); got != 94 {
		t.Errorf("inception-v3: convs = %d, want 94", got)
	}
}

func TestResNet50FLOPs(t *testing.T) {
	g := MustBuild("resnet-50", 1)
	if err := graph.InferShapes(g); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	// Reference: ~4.1 GMACs = ~8.2 GFLOPs (+/- head and projection detail).
	if s.FLOPs < 7.5e9 || s.FLOPs > 9.0e9 {
		t.Fatalf("resnet-50 FLOPs = %.3g, want ~8.2e9", s.FLOPs)
	}
	// Reference parameter count ~25.5M.
	if s.Params < 23e6 || s.Params > 28e6 {
		t.Fatalf("resnet-50 params = %d, want ~25.5M", s.Params)
	}
}

func TestVGG16FLOPsAndParams(t *testing.T) {
	g := MustBuild("vgg-16", 1)
	s := g.ComputeStats()
	// Reference: ~15.5 GMACs = ~31 GFLOPs; ~138M params.
	if s.FLOPs < 29e9 || s.FLOPs > 32.5e9 {
		t.Fatalf("vgg-16 FLOPs = %.3g, want ~31e9", s.FLOPs)
	}
	if s.Params < 130e6 || s.Params > 145e6 {
		t.Fatalf("vgg-16 params = %d, want ~138M", s.Params)
	}
}

func TestDenseNet121Params(t *testing.T) {
	g := MustBuild("densenet-121", 1)
	s := g.ComputeStats()
	// Reference ~8M parameters.
	if s.Params < 6.5e6 || s.Params > 9.5e6 {
		t.Fatalf("densenet-121 params = %d, want ~8M", s.Params)
	}
}

func TestInceptionV3Params(t *testing.T) {
	g := MustBuild("inception-v3", 1)
	s := g.ComputeStats()
	// Reference ~23.8M parameters (without aux head).
	if s.Params < 21e6 || s.Params > 27e6 {
		t.Fatalf("inception-v3 params = %d, want ~24M", s.Params)
	}
}

func TestSSDStructure(t *testing.T) {
	g := MustBuild("ssd-resnet-50", 1)
	var head *graph.Node
	for _, n := range g.Topo() {
		if n.Op == graph.OpSSDHead {
			head = n
		}
	}
	if head == nil {
		t.Fatal("no SSD head")
	}
	if len(head.Inputs) != 12 {
		t.Fatalf("head inputs = %d, want 12 (6 scales x cls+loc)", len(head.Inputs))
	}
	// Anchor total: 64^2*4 + 32^2*6 + 16^2*6 + 8^2*6 + 4^2*6 + 2^2*4.
	wantAnchors := 64*64*4 + 32*32*6 + 16*16*6 + 8*8*6 + 4*4*6 + 2*2*4
	if head.OutShape.Dims[1] != wantAnchors {
		t.Fatalf("anchors = %d, want %d", head.OutShape.Dims[1], wantAnchors)
	}
	spec, _ := Get("ssd-resnet-50")
	if !spec.UsePBQP {
		t.Fatal("SSD must be marked for the PBQP approximation")
	}
}

func TestOptimizePassesOnAllModels(t *testing.T) {
	for _, name := range Names() {
		g := MustBuild(name, 7)
		pre := g.ComputeStats()
		if err := graph.Optimize(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		post := g.ComputeStats()
		if post.Convs != pre.Convs {
			t.Fatalf("%s: optimization changed conv count %d -> %d", name, pre.Convs, post.Convs)
		}
		if post.Nodes >= pre.Nodes {
			t.Fatalf("%s: optimization should shrink the graph (%d -> %d)", name, pre.Nodes, post.Nodes)
		}
		// No BatchNorm should survive in these post-activation models.
		for _, n := range g.Topo() {
			if n.Op == graph.OpBatchNorm {
				t.Fatalf("%s: unfolded batch norm %v survived", name, n)
			}
		}
	}
}

func TestDeterministicWeights(t *testing.T) {
	a := MustBuild("resnet-18", 5)
	b := MustBuild("resnet-18", 5)
	ca, cb := a.Convs(), b.Convs()
	for i := range ca {
		for j := range ca[i].Weight.Data {
			if ca[i].Weight.Data[j] != cb[i].Weight.Data[j] {
				t.Fatal("same seed must give identical weights")
			}
		}
	}
	c := MustBuild("resnet-18", 6)
	if c.Convs()[0].Weight.Data[0] == ca[0].Weight.Data[0] {
		t.Fatal("different seeds should give different weights")
	}
}

func TestTinyModels(t *testing.T) {
	for _, mk := range []func(uint64) *graph.Graph{TinyCNN, TinyResNet, TinyDenseNet, TinyVGG, TinyMobileNet} {
		g := mk(3)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := graph.Optimize(g); err != nil {
			t.Fatal(err)
		}
	}
}

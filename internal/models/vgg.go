package models

import "repro/internal/graph"

// VGG (Simonyan & Zisserman, ICLR 2015): stacks of 3x3 convolutions with
// 2x2 max pooling between stages, followed by three giant fully-connected
// layers — the layers that make batch-1 VGG inference bandwidth-bound on the
// FC weights (and trip OpenVINO's fallback path in Table 2).

func init() {
	// Per-stage conv counts; channel plan is always 64,128,256,512,512.
	for _, m := range []struct {
		name, display string
		perStage      [5]int
	}{
		{"vgg-11", "VGG-11", [5]int{1, 1, 2, 2, 2}},
		{"vgg-13", "VGG-13", [5]int{2, 2, 2, 2, 2}},
		{"vgg-16", "VGG-16", [5]int{2, 2, 3, 3, 3}},
		{"vgg-19", "VGG-19", [5]int{2, 2, 4, 4, 4}},
	} {
		m := m
		register(&Spec{
			Name: m.name, Display: m.display,
			InputC: 3, InputH: 224, InputW: 224,
			build: func(b *graph.Builder) *graph.Graph {
				return buildVGG(b, m.perStage, 1000)
			},
		})
	}
}

func buildVGG(b *graph.Builder, perStage [5]int, classes int) *graph.Graph {
	widths := [5]int{64, 128, 256, 512, 512}
	x := b.Input(3, 224, 224)
	for stage := 0; stage < 5; stage++ {
		for i := 0; i < perStage[stage]; i++ {
			x = b.ReLU(b.Conv(x, widths[stage], 3, 1, 1))
		}
		x = b.MaxPool(x, 2, 2, 0)
	}
	x = b.Flatten(x) // 512*7*7 = 25088 features
	x = b.Dropout(b.ReLU(b.Dense(x, 4096)))
	x = b.Dropout(b.ReLU(b.Dense(x, 4096)))
	x = b.Dense(x, classes)
	return b.Finish(b.Softmax(x))
}

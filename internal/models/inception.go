package models

import "repro/internal/graph"

// Inception-v3 (Szegedy et al., CVPR 2016): the 299x299 multi-branch
// architecture with factorized 1x7/7x1 convolutions. Branch-and-concat
// modules exercise the layout ties between sibling convolutions.

func init() {
	register(&Spec{
		Name: "inception-v3", Display: "Inception-v3",
		InputC: 3, InputH: 299, InputW: 299,
		build: buildInceptionV3,
	})
}

func buildInceptionV3(b *graph.Builder) *graph.Graph {
	x := b.Input(3, 299, 299)
	// Stem: 299 -> 149 -> 147 -> 147 -> 73 -> 71 -> 35.
	x = b.ConvBNReLU(x, 32, 3, 2, 0)
	x = b.ConvBNReLU(x, 32, 3, 1, 0)
	x = b.ConvBNReLU(x, 64, 3, 1, 1)
	x = b.MaxPool(x, 3, 2, 0)
	x = b.ConvBNReLU(x, 80, 1, 1, 0)
	x = b.ConvBNReLU(x, 192, 3, 1, 0)
	x = b.MaxPool(x, 3, 2, 0)

	// 3x InceptionA at 35x35.
	for _, poolF := range []int{32, 64, 64} {
		x = inceptionA(b, x, poolF)
	}
	// Grid reduction to 17x17.
	x = inceptionB(b, x)
	// 4x InceptionC with growing 7x7 widths.
	for _, c7 := range []int{128, 160, 160, 192} {
		x = inceptionC(b, x, c7)
	}
	// Grid reduction to 8x8.
	x = inceptionD(b, x)
	// 2x InceptionE at 8x8.
	x = inceptionE(b, x)
	x = inceptionE(b, x)

	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dropout(x)
	x = b.Dense(x, 1000)
	return b.Finish(b.Softmax(x))
}

// convBNReLURect is the rectangular-kernel variant of ConvBNReLU used by the
// factorized 1x7/7x1 branches.
func convBNReLURect(b *graph.Builder, x *graph.Node, outC, kh, kw, ph, pw int) *graph.Node {
	return b.ReLU(b.BatchNorm(b.ConvRect(x, outC, kh, kw, 1, 1, ph, pw)))
}

func inceptionA(b *graph.Builder, x *graph.Node, poolFeatures int) *graph.Node {
	b1 := b.ConvBNReLU(x, 64, 1, 1, 0)
	b5 := b.ConvBNReLU(x, 48, 1, 1, 0)
	b5 = b.ConvBNReLU(b5, 64, 5, 1, 2)
	b3 := b.ConvBNReLU(x, 64, 1, 1, 0)
	b3 = b.ConvBNReLU(b3, 96, 3, 1, 1)
	b3 = b.ConvBNReLU(b3, 96, 3, 1, 1)
	bp := b.AvgPool(x, 3, 1, 1)
	bp = b.ConvBNReLU(bp, poolFeatures, 1, 1, 0)
	return b.Concat(b1, b5, b3, bp)
}

func inceptionB(b *graph.Builder, x *graph.Node) *graph.Node {
	b3 := b.ConvBNReLU(x, 384, 3, 2, 0)
	bd := b.ConvBNReLU(x, 64, 1, 1, 0)
	bd = b.ConvBNReLU(bd, 96, 3, 1, 1)
	bd = b.ConvBNReLU(bd, 96, 3, 2, 0)
	bp := b.MaxPool(x, 3, 2, 0)
	return b.Concat(b3, bd, bp)
}

func inceptionC(b *graph.Builder, x *graph.Node, c7 int) *graph.Node {
	b1 := b.ConvBNReLU(x, 192, 1, 1, 0)
	b7 := b.ConvBNReLU(x, c7, 1, 1, 0)
	b7 = convBNReLURect(b, b7, c7, 1, 7, 0, 3)
	b7 = convBNReLURect(b, b7, 192, 7, 1, 3, 0)
	bd := b.ConvBNReLU(x, c7, 1, 1, 0)
	bd = convBNReLURect(b, bd, c7, 7, 1, 3, 0)
	bd = convBNReLURect(b, bd, c7, 1, 7, 0, 3)
	bd = convBNReLURect(b, bd, c7, 7, 1, 3, 0)
	bd = convBNReLURect(b, bd, 192, 1, 7, 0, 3)
	bp := b.AvgPool(x, 3, 1, 1)
	bp = b.ConvBNReLU(bp, 192, 1, 1, 0)
	return b.Concat(b1, b7, bd, bp)
}

func inceptionD(b *graph.Builder, x *graph.Node) *graph.Node {
	b3 := b.ConvBNReLU(x, 192, 1, 1, 0)
	b3 = b.ConvBNReLU(b3, 320, 3, 2, 0)
	b7 := b.ConvBNReLU(x, 192, 1, 1, 0)
	b7 = convBNReLURect(b, b7, 192, 1, 7, 0, 3)
	b7 = convBNReLURect(b, b7, 192, 7, 1, 3, 0)
	b7 = b.ConvBNReLU(b7, 192, 3, 2, 0)
	bp := b.MaxPool(x, 3, 2, 0)
	return b.Concat(b3, b7, bp)
}

func inceptionE(b *graph.Builder, x *graph.Node) *graph.Node {
	b1 := b.ConvBNReLU(x, 320, 1, 1, 0)
	b3 := b.ConvBNReLU(x, 384, 1, 1, 0)
	b3a := convBNReLURect(b, b3, 384, 1, 3, 0, 1)
	b3b := convBNReLURect(b, b3, 384, 3, 1, 1, 0)
	bd := b.ConvBNReLU(x, 448, 1, 1, 0)
	bd = b.ConvBNReLU(bd, 384, 3, 1, 1)
	bda := convBNReLURect(b, bd, 384, 1, 3, 0, 1)
	bdb := convBNReLURect(b, bd, 384, 3, 1, 1, 0)
	bp := b.AvgPool(x, 3, 1, 1)
	bp = b.ConvBNReLU(bp, 192, 1, 1, 0)
	return b.Concat(b1, b3a, b3b, bda, bdb, bp)
}

package models

import "repro/internal/graph"

// DenseNet (Huang et al., CVPR 2017): dense blocks in which every layer's
// output is concatenated onto the running feature map — the concat-heavy
// structure that stresses the layout flow (blocked concat requires every
// operand's channels to divide the block) and the global search.

func init() {
	for _, m := range []struct {
		name, display string
		growth, init  int
		blocks        [4]int
	}{
		{"densenet-121", "DenseNet-121", 32, 64, [4]int{6, 12, 24, 16}},
		{"densenet-161", "DenseNet-161", 48, 96, [4]int{6, 12, 36, 24}},
		{"densenet-169", "DenseNet-169", 32, 64, [4]int{6, 12, 32, 32}},
		{"densenet-201", "DenseNet-201", 32, 64, [4]int{6, 12, 48, 32}},
	} {
		m := m
		register(&Spec{
			Name: m.name, Display: m.display,
			InputC: 3, InputH: 224, InputW: 224,
			build: func(b *graph.Builder) *graph.Graph {
				return buildDenseNet(b, m.growth, m.init, m.blocks, 1000)
			},
		})
	}
}

// denseLayer is the bottleneck layer: 1x1 conv to 4*growth, 3x3 conv to
// growth channels; the result is concatenated onto the block's features.
func denseLayer(b *graph.Builder, x *graph.Node, growth int) *graph.Node {
	y := b.ConvBNReLU(x, 4*growth, 1, 1, 0)
	return b.ConvBNReLU(y, growth, 3, 1, 1)
}

func buildDenseNet(b *graph.Builder, growth, initC int, blocks [4]int, classes int) *graph.Graph {
	x := b.Input(3, 224, 224)
	x = b.ConvBNReLU(x, initC, 7, 2, 3)
	x = b.MaxPool(x, 3, 2, 1)
	channels := initC
	for stage := 0; stage < 4; stage++ {
		for l := 0; l < blocks[stage]; l++ {
			y := denseLayer(b, x, growth)
			x = b.Concat(x, y)
			channels += growth
		}
		if stage < 3 {
			// Transition: halve channels with a 1x1 conv, halve resolution.
			channels /= 2
			x = b.ConvBNReLU(x, channels, 1, 1, 0)
			x = b.AvgPool(x, 2, 2, 0)
		}
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, classes)
	return b.Finish(b.Softmax(x))
}

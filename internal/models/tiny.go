package models

import "repro/internal/graph"

// Tiny variants keep the structural patterns of the full networks at sizes
// that real-execution tests can afford. They are not registered in the
// evaluation registry.

// TinyCNN is a 2-conv classifier on 3x32x32 input.
func TinyCNN(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-cnn", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	x = b.MaxPool(x, 2, 2, 0)
	x = b.ConvBNReLU(x, 32, 3, 1, 1)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinyResNet is a 2-block residual network on 3x32x32 input.
func TinyResNet(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-resnet", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	for i := 0; i < 2; i++ {
		x = basicBlock(b, x, 16, 1, i == 0)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinyDenseNet is a 3-layer dense block on 3x32x32 input.
func TinyDenseNet(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-densenet", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	for i := 0; i < 3; i++ {
		y := denseLayer(b, x, 8)
		x = b.Concat(x, y)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinyVGG is a 4-conv VGG-style net with a small classifier head.
func TinyVGG(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-vgg", seed)
	x := b.Input(3, 32, 32)
	x = b.ReLU(b.Conv(x, 16, 3, 1, 1))
	x = b.ReLU(b.Conv(x, 16, 3, 1, 1))
	x = b.MaxPool(x, 2, 2, 0)
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	x = b.MaxPool(x, 2, 2, 0)
	x = b.Flatten(x)
	x = b.Dropout(b.ReLU(b.Dense(x, 64)))
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

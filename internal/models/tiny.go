package models

import "repro/internal/graph"

// Tiny variants keep the structural patterns of the full networks at sizes
// that real-execution tests can afford. They are not registered in the
// evaluation registry.

// TinyCNN is a 2-conv classifier on 3x32x32 input.
func TinyCNN(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-cnn", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	x = b.MaxPool(x, 2, 2, 0)
	x = b.ConvBNReLU(x, 32, 3, 1, 1)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinyResNet is a 2-block residual network on 3x32x32 input.
func TinyResNet(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-resnet", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	for i := 0; i < 2; i++ {
		x = basicBlock(b, x, 16, 1, i == 0)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinyDenseNet is a 3-layer dense block on 3x32x32 input.
func TinyDenseNet(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-densenet", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	for i := 0; i < 3; i++ {
		y := denseLayer(b, x, 8)
		x = b.Concat(x, y)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinyInception is a 2-module branch-and-concat network on 3x32x32 input.
// Each module's four towers (1x1, 1x1→3x3, 1x1→5x5, pool→1x1) are mutually
// independent, making it the canonical workload for the execution plan's
// inter-op level dispatch.
func TinyInception(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-inception", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	for i := 0; i < 2; i++ {
		b1 := b.ConvBNReLU(x, 16, 1, 1, 0)
		b3 := b.ConvBNReLU(x, 8, 1, 1, 0)
		b3 = b.ConvBNReLU(b3, 16, 3, 1, 1)
		b5 := b.ConvBNReLU(x, 8, 1, 1, 0)
		b5 = b.ConvBNReLU(b5, 16, 5, 1, 2)
		bp := b.MaxPool(x, 3, 1, 1)
		bp = b.ConvBNReLU(bp, 8, 1, 1, 0)
		x = b.Concat(b1, b3, b5, bp)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinySSD is a miniature single-shot detector on 3x64x64 input: a strided
// backbone with two feature-map scales, each feeding an independent pair of
// class/location head convolutions into the multibox head.
func TinySSD(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-ssd", seed)
	x := b.Input(3, 64, 64)
	x = b.ConvBNReLU(x, 16, 3, 2, 1)    // 32x32
	s0 := b.ConvBNReLU(x, 32, 3, 2, 1)  // 16x16
	s1 := b.ConvBNReLU(s0, 32, 3, 2, 1) // 8x8
	attrs := graph.SSDHeadAttrs{
		NumClasses: 4,
		Sizes:      [][]float32{{0.2, 0.3}, {0.4, 0.5}},
		Ratios:     [][]float32{{1, 2, 0.5}, {1, 2, 0.5}},
	}
	attrs.Detection.ScoreThresh = 0.1
	attrs.Detection.NMSThresh = 0.45
	attrs.Detection.NMSTopK = 100
	attrs.Detection.Variances = [4]float32{0.1, 0.1, 0.2, 0.2}
	per := 4 // 2 sizes + 3 ratios - 1
	cls0 := b.Conv(s0, per*(attrs.NumClasses+1), 3, 1, 1)
	loc0 := b.Conv(s0, per*4, 3, 1, 1)
	cls1 := b.Conv(s1, per*(attrs.NumClasses+1), 3, 1, 1)
	loc1 := b.Conv(s1, per*4, 3, 1, 1)
	return b.Finish(b.SSDHead(attrs, cls0, loc0, cls1, loc1))
}

// TinyMobileNet is a 3-block depthwise-separable network on 3x32x32 input —
// the MobileNet structural pattern (strided 3x3 stem, depthwise 3x3 + BN +
// ReLU followed by pointwise 1x1 + BN + ReLU, one strided depthwise block) at
// a size real-execution tests can afford.
func TinyMobileNet(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-mobilenet", seed)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	x = b.DepthwiseSeparable(x, 32, 1)
	x = b.DepthwiseSeparable(x, 32, 2)
	x = b.DepthwiseSeparable(x, 64, 1)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TinyVGG is a 4-conv VGG-style net with a small classifier head.
func TinyVGG(seed uint64) *graph.Graph {
	b := graph.NewBuilder("tiny-vgg", seed)
	x := b.Input(3, 32, 32)
	x = b.ReLU(b.Conv(x, 16, 3, 1, 1))
	x = b.ReLU(b.Conv(x, 16, 3, 1, 1))
	x = b.MaxPool(x, 2, 2, 0)
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	x = b.ReLU(b.Conv(x, 32, 3, 1, 1))
	x = b.MaxPool(x, 2, 2, 0)
	x = b.Flatten(x)
	x = b.Dropout(b.ReLU(b.Dense(x, 64)))
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

package models

import "repro/internal/graph"

// ResNet (He et al., CVPR 2016). resnet-18/34 use the two-conv BasicBlock;
// resnet-50/101/152 use the three-conv Bottleneck.

func init() {
	for _, m := range []struct {
		name, display string
		bottleneck    bool
		blocks        [4]int
	}{
		{"resnet-18", "ResNet-18", false, [4]int{2, 2, 2, 2}},
		{"resnet-34", "ResNet-34", false, [4]int{3, 4, 6, 3}},
		{"resnet-50", "ResNet-50", true, [4]int{3, 4, 6, 3}},
		{"resnet-101", "ResNet-101", true, [4]int{3, 4, 23, 3}},
		{"resnet-152", "ResNet-152", true, [4]int{3, 8, 36, 3}},
	} {
		m := m
		register(&Spec{
			Name: m.name, Display: m.display,
			InputC: 3, InputH: 224, InputW: 224,
			build: func(b *graph.Builder) *graph.Graph {
				return buildResNet(b, m.bottleneck, m.blocks, 1000)
			},
		})
	}
}

// resnetStem is the shared 7x7/2 + 3x3/2-maxpool entry.
func resnetStem(b *graph.Builder, x *graph.Node) *graph.Node {
	x = b.ConvBNReLU(x, 64, 7, 2, 3)
	return b.MaxPool(x, 3, 2, 1)
}

// basicBlock is conv3x3-BN-ReLU, conv3x3-BN, +shortcut, ReLU.
func basicBlock(b *graph.Builder, x *graph.Node, outC, stride int, project bool) *graph.Node {
	identity := x
	y := b.ConvBNReLU(x, outC, 3, stride, 1)
	y = b.BatchNorm(b.Conv(y, outC, 3, 1, 1))
	if project {
		identity = b.BatchNorm(b.Conv(x, outC, 1, stride, 0))
	}
	return b.ReLU(b.Add(y, identity))
}

// bottleneckBlock is conv1x1-BN-ReLU, conv3x3-BN-ReLU, conv1x1-BN,
// +shortcut, ReLU; the output width is 4x the bottleneck width.
func bottleneckBlock(b *graph.Builder, x *graph.Node, midC, stride int, project bool) *graph.Node {
	outC := midC * 4
	identity := x
	y := b.ConvBNReLU(x, midC, 1, 1, 0)
	y = b.ConvBNReLU(y, midC, 3, stride, 1)
	y = b.BatchNorm(b.Conv(y, outC, 1, 1, 0))
	if project {
		identity = b.BatchNorm(b.Conv(x, outC, 1, stride, 0))
	}
	return b.ReLU(b.Add(y, identity))
}

func buildResNet(b *graph.Builder, bottleneck bool, blocks [4]int, classes int) *graph.Graph {
	x := b.Input(3, 224, 224)
	x = resnetStem(b, x)
	widths := [4]int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			project := blk == 0 && (stage > 0 || bottleneck)
			if bottleneck {
				x = bottleneckBlock(b, x, widths[stage], stride, project)
			} else {
				x = basicBlock(b, x, widths[stage], stride, project)
			}
		}
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, classes)
	return b.Finish(b.Softmax(x))
}

package models

import (
	"repro/internal/graph"
	"repro/internal/ops"
)

// SSD with a ResNet-50 base at 512x512 input (Liu et al., ECCV 2016; the
// paper's object-detection workload). The backbone runs ResNet-50 through
// stage 3; extra stride-2 blocks extend the pyramid down to 2x2. Each scale
// gets a class-score and a box-offset convolution feeding the multibox
// head — the per-scale sibling convolutions and the shared trunk create the
// dense layout-dependency structure that sends the global search to the
// PBQP approximation (Section 3.3.2).

func init() {
	register(&Spec{
		Name: "ssd-resnet-50", Display: "SSD-ResNet-50",
		InputC: 3, InputH: 512, InputW: 512,
		UsePBQP: true,
		build:   buildSSDResNet50,
	})
}

const ssdClasses = 20 // VOC

func buildSSDResNet50(b *graph.Builder) *graph.Graph {
	x := b.Input(3, 512, 512)
	// ResNet-50 stem and stages 1-3 (512 -> 128 -> 64 -> 32 spatial).
	x = resnetStem(b, x) // 64ch @ 128
	blocks := [4]int{3, 4, 6, 3}
	widths := [4]int{64, 128, 256, 512}
	var scale0 *graph.Node // stage-2 output: 512ch @ 64x64
	for stage := 0; stage < 3; stage++ {
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			project := blk == 0
			x = bottleneckBlock(b, x, widths[stage], stride, project)
		}
		if stage == 1 {
			scale0 = x
		}
	}
	scale1 := x // 1024ch @ 32x32

	// Extra feature layers: 1x1 squeeze then 3x3 stride-2 expand.
	extra := func(x *graph.Node, mid, out int) *graph.Node {
		y := b.ConvBNReLU(x, mid, 1, 1, 0)
		return b.ConvBNReLU(y, out, 3, 2, 1)
	}
	scale2 := extra(scale1, 256, 512) // 16x16
	scale3 := extra(scale2, 128, 256) // 8x8
	scale4 := extra(scale3, 128, 256) // 4x4
	scale5 := extra(scale4, 128, 256) // 2x2

	scales := []*graph.Node{scale0, scale1, scale2, scale3, scale4, scale5}

	// Anchor configuration: 4 anchors on the extreme scales, 6 in between.
	sizes := [][]float32{
		{0.07, 0.1025}, {0.15, 0.2121}, {0.3, 0.3674},
		{0.45, 0.5196}, {0.6, 0.6708}, {0.75, 0.8216},
	}
	ratios := [][]float32{
		{1, 2, 0.5},
		{1, 2, 0.5, 3, 1.0 / 3}, {1, 2, 0.5, 3, 1.0 / 3},
		{1, 2, 0.5, 3, 1.0 / 3}, {1, 2, 0.5, 3, 1.0 / 3},
		{1, 2, 0.5},
	}

	attrs := graph.SSDHeadAttrs{
		NumClasses: ssdClasses,
		Sizes:      sizes,
		Ratios:     ratios,
		Detection:  ops.DefaultMultiBoxDetectionAttrs(),
	}
	var pairs []*graph.Node
	for i, s := range scales {
		perPixel := len(sizes[i]) + len(ratios[i]) - 1
		cls := b.Conv(s, perPixel*(ssdClasses+1), 3, 1, 1)
		loc := b.Conv(s, perPixel*4, 3, 1, 1)
		pairs = append(pairs, cls, loc)
	}
	head := b.SSDHead(attrs, pairs...)
	return b.Finish(head)
}

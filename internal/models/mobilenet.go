package models

import "repro/internal/graph"

// MobileNet v1 (Howard et al., 2017): 13 depthwise-separable blocks behind a
// strided 3x3 stem. It is the canonical depthwise workload — ~4.2M parameters
// and ~1.1 GFLOPs, an order of magnitude lighter than the paper's table
// models — and extends the evaluation suite beyond dense convolutions. It is
// registered in the model registry (so it compiles, serves and benchmarks
// like any other model) but stays out of Names(): the paper's tables evaluate
// exactly the 15 published networks.

func init() {
	register(&Spec{
		Name: "mobilenet-v1", Display: "MobileNet-V1",
		InputC: 3, InputH: 224, InputW: 224,
		build: func(b *graph.Builder) *graph.Graph {
			return buildMobileNetV1(b, 1000)
		},
	})
}

// mobileNetV1Blocks lists the 13 depthwise-separable blocks as (pointwise
// output channels, depthwise stride).
var mobileNetV1Blocks = []struct {
	outC, stride int
}{
	{64, 1},
	{128, 2}, {128, 1},
	{256, 2}, {256, 1},
	{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
	{1024, 2}, {1024, 1},
}

func buildMobileNetV1(b *graph.Builder, classes int) *graph.Graph {
	x := b.Input(3, 224, 224)
	x = b.ConvBNReLU(x, 32, 3, 2, 1)
	for _, blk := range mobileNetV1Blocks {
		x = b.DepthwiseSeparable(x, blk.outC, blk.stride)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, classes)
	return b.Finish(b.Softmax(x))
}

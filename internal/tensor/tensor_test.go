package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tt := New(NCHW(), 2, 3, 4, 5)
	if tt.NumElements() != 120 {
		t.Fatalf("NumElements = %d, want 120", tt.NumElements())
	}
	for i, v := range tt.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
	if tt.Rank() != 4 {
		t.Fatalf("Rank = %d, want 4", tt.Rank())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(NCHW(), 2, 3, 4, 5)
	tt.Set(42, 1, 2, 3, 4)
	if got := tt.At(1, 2, 3, 4); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	// Row-major offset check: ((1*3+2)*4+3)*5+4 = 119.
	if tt.Data[119] != 42 {
		t.Fatalf("linear offset wrong: Data[119]=%v", tt.Data[119])
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds index")
		}
	}()
	New(NCHW(), 1, 1, 1, 1).At(0, 0, 0, 1)
}

func TestFromDataVolumeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for volume mismatch")
		}
	}()
	FromData(NCHW(), make([]float32, 3), 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := New(NCHW(), 1, 2, 2, 2)
	a.FillSeq()
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] == 99 {
		t.Fatal("Clone shares data with original")
	}
	if !a.Layout.Equal(b.Layout) {
		t.Fatal("Clone layout mismatch")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New(NCHW(), 1, 4, 2, 2)
	r := a.Reshape(Flat(), 1, 16)
	r.Data[5] = 7
	if a.Data[5] != 7 {
		t.Fatal("Reshape must share underlying data")
	}
}

func TestReshapeVolumeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(NCHW(), 1, 4, 2, 2).Reshape(Flat(), 1, 15)
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(NCHW(), 1, 3, 8, 8)
	b := New(NCHW(), 1, 3, 8, 8)
	a.FillRandom(7, 1)
	b.FillRandom(7, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("FillRandom with same seed must be deterministic")
	}
	b.FillRandom(8, 1)
	if MaxAbsDiff(a, b) == 0 {
		t.Fatal("FillRandom with different seed should differ")
	}
	for i, v := range a.Data {
		if v < -1 || v >= 1 || math.IsNaN(float64(v)) {
			t.Fatalf("Data[%d]=%v outside [-1,1)", i, v)
		}
	}
}

func TestAllClose(t *testing.T) {
	a := New(NCHW(), 1, 1, 2, 2)
	b := a.Clone()
	if !AllClose(a, b, 1e-6) {
		t.Fatal("identical tensors must be close")
	}
	b.Data[0] = 1
	if AllClose(a, b, 1e-6) {
		t.Fatal("different tensors must not be close")
	}
}

func TestLayoutStrings(t *testing.T) {
	cases := map[string]Layout{
		"NCHW":      NCHW(),
		"NHWC":      NHWC(),
		"NCHW16c":   NCHWc(16),
		"OIHW":      OIHW(),
		"OIHW8i16o": OIHWio(8, 16),
		"flat":      Flat(),
		"any":       Any(),
	}
	for want, l := range cases {
		if got := l.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestActivationPhysicalShape(t *testing.T) {
	s := ActivationShape{N: 1, C: 64, H: 56, W: 56}
	if got := s.PhysicalShape(NCHW()); !equalInts(got, []int{1, 64, 56, 56}) {
		t.Errorf("NCHW shape = %v", got)
	}
	if got := s.PhysicalShape(NHWC()); !equalInts(got, []int{1, 56, 56, 64}) {
		t.Errorf("NHWC shape = %v", got)
	}
	if got := s.PhysicalShape(NCHWc(16)); !equalInts(got, []int{1, 4, 56, 56, 16}) {
		t.Errorf("NCHW16c shape = %v", got)
	}
	if s.Volume() != 64*56*56 {
		t.Errorf("Volume = %d", s.Volume())
	}
}

func TestWeightPhysicalShape(t *testing.T) {
	s := WeightShape{O: 128, I: 64, KH: 3, KW: 3}
	if got := s.PhysicalShape(OIHW()); !equalInts(got, []int{128, 64, 3, 3}) {
		t.Errorf("OIHW shape = %v", got)
	}
	if got := s.PhysicalShape(OIHWio(16, 32)); !equalInts(got, []int{4, 4, 3, 3, 16, 32}) {
		t.Errorf("OIHWio shape = %v", got)
	}
}

func TestPhysicalShapeIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ActivationShape{N: 1, C: 30, H: 4, W: 4}.PhysicalShape(NCHWc(16))
}

func TestToFromNCHWcRoundTrip(t *testing.T) {
	in := New(NCHW(), 2, 32, 7, 5)
	in.FillRandom(1, 1)
	for _, x := range []int{1, 2, 4, 8, 16, 32} {
		packed := ToNCHWc(in, x)
		wantShape := []int{2, 32 / x, 7, 5, x}
		if !equalInts(packed.Shape, wantShape) {
			t.Fatalf("block %d: shape %v, want %v", x, packed.Shape, wantShape)
		}
		back := FromNCHWc(packed)
		if MaxAbsDiff(in, back) != 0 {
			t.Fatalf("block %d: round trip not exact", x)
		}
	}
}

func TestToNCHWcValues(t *testing.T) {
	// 1x4x1x2 with block 2: channel c, pixel p value = 10*c+p.
	in := New(NCHW(), 1, 4, 1, 2)
	for c := 0; c < 4; c++ {
		for p := 0; p < 2; p++ {
			in.Set(float32(10*c+p), 0, c, 0, p)
		}
	}
	out := ToNCHWc(in, 2)
	// out[n, co, h, w, ci] == in[n, co*2+ci, h, w]
	for co := 0; co < 2; co++ {
		for p := 0; p < 2; p++ {
			for ci := 0; ci < 2; ci++ {
				want := float32(10*(co*2+ci) + p)
				if got := out.At(0, co, 0, p, ci); got != want {
					t.Fatalf("out[0,%d,0,%d,%d] = %v, want %v", co, p, ci, got, want)
				}
			}
		}
	}
}

func TestNHWCRoundTrip(t *testing.T) {
	in := New(NCHW(), 2, 3, 5, 7)
	in.FillRandom(2, 1)
	nhwc := NCHWToNHWC(in)
	if !equalInts(nhwc.Shape, []int{2, 5, 7, 3}) {
		t.Fatalf("NHWC shape = %v", nhwc.Shape)
	}
	back := NHWCToNCHW(nhwc)
	if MaxAbsDiff(in, back) != 0 {
		t.Fatal("NHWC round trip not exact")
	}
	// Spot-check semantics.
	if in.At(1, 2, 3, 4) != nhwc.At(1, 3, 4, 2) {
		t.Fatal("NHWC transpose semantics wrong")
	}
}

func TestPackUnpackWeightsRoundTrip(t *testing.T) {
	in := New(OIHW(), 32, 16, 3, 3)
	in.FillRandom(3, 1)
	for _, xy := range [][2]int{{1, 1}, {4, 8}, {16, 16}, {8, 32}, {16, 4}} {
		p := PackWeights(in, xy[0], xy[1])
		back := UnpackWeights(p)
		if MaxAbsDiff(in, back) != 0 {
			t.Fatalf("x=%d y=%d: weight round trip not exact", xy[0], xy[1])
		}
	}
}

func TestPackWeightsValues(t *testing.T) {
	in := New(OIHW(), 4, 2, 1, 1)
	for o := 0; o < 4; o++ {
		for i := 0; i < 2; i++ {
			in.Set(float32(10*o+i), o, i, 0, 0)
		}
	}
	p := PackWeights(in, 2, 2)
	// p[oo, io, r, s, ii, oi] == in[oo*2+oi, io*2+ii, r, s]
	for oo := 0; oo < 2; oo++ {
		for ii := 0; ii < 2; ii++ {
			for oi := 0; oi < 2; oi++ {
				want := float32(10*(oo*2+oi) + ii)
				if got := p.At(oo, 0, 0, 0, ii, oi); got != want {
					t.Fatalf("p[%d,0,0,0,%d,%d]=%v want %v", oo, ii, oi, got, want)
				}
			}
		}
	}
}

func TestRechunk(t *testing.T) {
	in := New(NCHW(), 1, 16, 3, 3)
	in.FillRandom(4, 1)
	a := ToNCHWc(in, 4)
	b := RechunkNCHWc(a, 8)
	if b.Layout.BlockC != 8 {
		t.Fatalf("rechunk block = %d, want 8", b.Layout.BlockC)
	}
	if MaxAbsDiff(FromNCHWc(b), in) != 0 {
		t.Fatal("rechunk changed values")
	}
	same := RechunkNCHWc(a, 4)
	if MaxAbsDiff(same, a) != 0 {
		t.Fatal("identity rechunk changed values")
	}
}

func TestTransformGeneric(t *testing.T) {
	in := New(NCHW(), 1, 8, 4, 4)
	in.FillRandom(5, 1)
	paths := []struct {
		via Layout
	}{
		{NCHWc(2)}, {NCHWc(4)}, {NCHWc(8)}, {NHWC()},
	}
	for _, p := range paths {
		mid := Transform(in, p.via)
		if !mid.Layout.Equal(p.via) {
			t.Fatalf("Transform layout = %v, want %v", mid.Layout, p.via)
		}
		back := Transform(mid, NCHW())
		if MaxAbsDiff(in, back) != 0 {
			t.Fatalf("Transform via %v not lossless", p.via)
		}
	}
	// NCHWc -> NCHWc direct.
	a := Transform(in, NCHWc(2))
	b := Transform(a, NCHWc(4))
	if MaxAbsDiff(FromNCHWc(b), in) != 0 {
		t.Fatal("NCHWc rechunk via Transform not lossless")
	}
	// NHWC -> NCHWc and back.
	nh := Transform(in, NHWC())
	bl := Transform(nh, NCHWc(4))
	if MaxAbsDiff(FromNCHWc(bl), in) != 0 {
		t.Fatal("NHWC->NCHWc not lossless")
	}
	n2 := Transform(bl, NHWC())
	if MaxAbsDiff(NHWCToNCHW(n2), in) != 0 {
		t.Fatal("NCHWc->NHWC not lossless")
	}
	// Identity.
	id := Transform(in, NCHW())
	if MaxAbsDiff(id, in) != 0 {
		t.Fatal("identity transform changed values")
	}
}

// Property-based tests on pack/unpack invariants.

func TestQuickNCHWcRoundTrip(t *testing.T) {
	f := func(seed uint64, coRaw, blkRaw, hRaw, wRaw uint8) bool {
		blocks := []int{1, 2, 3, 4, 8, 16}
		x := blocks[int(blkRaw)%len(blocks)]
		c := x * (1 + int(coRaw)%4)
		h := 1 + int(hRaw)%6
		w := 1 + int(wRaw)%6
		in := New(NCHW(), 1, c, h, w)
		in.FillRandom(seed, 2)
		return MaxAbsDiff(FromNCHWc(ToNCHWc(in, x)), in) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWeightRoundTrip(t *testing.T) {
	f := func(seed uint64, oRaw, iRaw, xRaw, yRaw uint8) bool {
		blocks := []int{1, 2, 4, 8}
		x := blocks[int(xRaw)%len(blocks)]
		y := blocks[int(yRaw)%len(blocks)]
		o := y * (1 + int(oRaw)%3)
		i := x * (1 + int(iRaw)%3)
		in := New(OIHW(), o, i, 3, 3)
		in.FillRandom(seed, 2)
		return MaxAbsDiff(UnpackWeights(PackWeights(in, x, y)), in) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransformComposition(t *testing.T) {
	// Transform(Transform(t, L1), L2) must equal Transform(t, L2) for any
	// activation layouts: layout transforms are pure re-orderings.
	f := func(seed uint64, l1Raw, l2Raw uint8) bool {
		layouts := []Layout{NCHW(), NHWC(), NCHWc(2), NCHWc(4), NCHWc(8)}
		l1 := layouts[int(l1Raw)%len(layouts)]
		l2 := layouts[int(l2Raw)%len(layouts)]
		in := New(NCHW(), 1, 8, 3, 3)
		in.FillRandom(seed, 2)
		via := Transform(Transform(in, l1), l2)
		direct := Transform(in, l2)
		return MaxAbsDiff(via, direct) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

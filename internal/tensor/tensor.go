// Package tensor provides dense float32 tensors and the data layouts used
// throughout NeoCPU-Go: the default NCHW/NHWC activation layouts, the blocked
// NCHW[x]c activation layout, and the OIHW / OIHW[x]i[y]o weight layouts
// (called KCRS / KCRS[x]c[y]k in the paper). It also implements the layout
// transformation kernels whose elimination is the subject of Section 3.2 of
// the paper.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 tensor. Data is stored contiguously in row-major
// order with respect to Shape; Layout is advisory metadata describing how the
// dimensions should be interpreted.
type Tensor struct {
	Shape  []int
	Data   []float32
	Layout Layout
}

// New allocates a zero-filled tensor with the given layout and shape.
func New(layout Layout, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{
		Shape:  append([]int(nil), shape...),
		Data:   make([]float32, n),
		Layout: layout,
	}
}

// FromData wraps existing data in a tensor. The data length must match the
// shape volume.
func FromData(layout Layout, data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data, Layout: layout}
}

// NumElements returns the total number of elements.
func (t *Tensor) NumElements() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Layout, t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the tensor with a new shape (sharing data). The
// volume must be unchanged.
func (t *Tensor) Reshape(layout Layout, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != t.NumElements() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes volume", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data, Layout: layout}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillSeq fills with a deterministic ramp, useful in tests.
func (t *Tensor) FillSeq() {
	for i := range t.Data {
		t.Data[i] = float32(i%97) * 0.25
	}
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [-scale, scale] derived from seed. It uses SplitMix64 so results are
// reproducible across platforms without importing math/rand.
func (t *Tensor) FillRandom(seed uint64, scale float32) {
	s := seed
	for i := range t.Data {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		// Map to [-1, 1).
		u := float64(z>>11) / float64(1<<53)
		t.Data[i] = scale * float32(2*u-1)
	}
}

// MaxAbsDiff returns the maximum absolute element-wise difference between two
// tensors of identical volume.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.NumElements() != b.NumElements() {
		panic(fmt.Sprintf("tensor: volume mismatch %v vs %v", a.Shape, b.Shape))
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether all elements of a and b are within tol of each
// other, with a relative component for large magnitudes.
func AllClose(a, b *Tensor, tol float64) bool {
	if a.NumElements() != b.NumElements() {
		return false
	}
	for i := range a.Data {
		x, y := float64(a.Data[i]), float64(b.Data[i])
		d := math.Abs(x - y)
		if d > tol+tol*math.Max(math.Abs(x), math.Abs(y)) {
			return false
		}
	}
	return true
}

package tensor

import "fmt"

// This file implements the layout-transformation kernels. In the paper these
// correspond to the LayoutTransform nodes inserted at the graph level
// (Section 3.2) and to the compile-time pre-transformation of convolution
// weights.

// EnsureDst returns dst when non-nil (validating its exact dimensions and
// layout against what the kernel produces) or allocates a fresh tensor. Every
// destination-buffer ("Into") kernel variant funnels through it so execution
// sessions can reuse arena buffers across inferences, and a mis-sized buffer
// panics instead of silently computing over wrong geometry.
func EnsureDst(dst *Tensor, layout Layout, shape ...int) *Tensor {
	if dst == nil {
		return New(layout, shape...)
	}
	ok := len(dst.Shape) == len(shape)
	for i := 0; ok && i < len(shape); i++ {
		ok = dst.Shape[i] == shape[i]
	}
	if !ok {
		panic(fmt.Sprintf("tensor: destination shape %v, kernel produces %v", dst.Shape, shape))
	}
	if !dst.Layout.Equal(layout) {
		panic(fmt.Sprintf("tensor: destination layout %v, kernel produces %v", dst.Layout, layout))
	}
	return dst
}

// ToNCHWc packs an NCHW activation into NCHW[x]c with block size x.
// C must be divisible by x.
func ToNCHWc(in *Tensor, x int) *Tensor {
	return ToNCHWcInto(nil, in, x)
}

// ToNCHWcInto is ToNCHWc writing into a caller-provided destination (nil dst
// allocates).
func ToNCHWcInto(dst, in *Tensor, x int) *Tensor {
	if in.Layout.Kind != LayoutNCHW {
		panic(fmt.Sprintf("tensor: ToNCHWc expects NCHW input, got %v", in.Layout))
	}
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	if x <= 0 || c%x != 0 {
		panic(fmt.Sprintf("tensor: channels %d not divisible by block %d", c, x))
	}
	cOuter := c / x
	out := EnsureDst(dst, NCHWc(x), n, cOuter, h, w, x)
	hw := h * w
	for b := 0; b < n; b++ {
		for co := 0; co < cOuter; co++ {
			for ci := 0; ci < x; ci++ {
				src := in.Data[((b*c + co*x + ci) * hw):]
				// Destination stride between consecutive (h,w) positions in
				// NCHWc is x (the innermost sub-channel dimension).
				dstBase := (((b*cOuter+co)*h)*w)*x + ci
				for p := 0; p < hw; p++ {
					out.Data[dstBase+p*x] = src[p]
				}
			}
		}
	}
	return out
}

// FromNCHWc unpacks an NCHW[x]c activation back to NCHW.
func FromNCHWc(in *Tensor) *Tensor {
	return FromNCHWcInto(nil, in)
}

// FromNCHWcInto is FromNCHWc writing into a caller-provided destination (nil
// dst allocates).
func FromNCHWcInto(dst, in *Tensor) *Tensor {
	if in.Layout.Kind != LayoutNCHWc {
		panic(fmt.Sprintf("tensor: FromNCHWc expects NCHWc input, got %v", in.Layout))
	}
	n, cOuter, h, w, x := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
	c := cOuter * x
	out := EnsureDst(dst, NCHW(), n, c, h, w)
	hw := h * w
	for b := 0; b < n; b++ {
		for co := 0; co < cOuter; co++ {
			for ci := 0; ci < x; ci++ {
				dst := out.Data[((b*c + co*x + ci) * hw):]
				srcBase := (((b*cOuter+co)*h)*w)*x + ci
				for p := 0; p < hw; p++ {
					dst[p] = in.Data[srcBase+p*x]
				}
			}
		}
	}
	return out
}

// RechunkNCHWc converts an NCHW[x]c activation to NCHW[y]c. This is the
// transform inserted between consecutive CONVs whose schedules picked
// different channel block factors (Section 3.3.1).
func RechunkNCHWc(in *Tensor, y int) *Tensor {
	if in.Layout.Kind != LayoutNCHWc {
		panic(fmt.Sprintf("tensor: RechunkNCHWc expects NCHWc input, got %v", in.Layout))
	}
	if in.Layout.BlockC == y {
		return in.Clone()
	}
	return ToNCHWc(FromNCHWc(in), y)
}

// NCHWToNHWC converts the default layout to channels-last.
func NCHWToNHWC(in *Tensor) *Tensor {
	return NCHWToNHWCInto(nil, in)
}

// NCHWToNHWCInto is NCHWToNHWC writing into a caller-provided destination
// (nil dst allocates).
func NCHWToNHWCInto(dst, in *Tensor) *Tensor {
	if in.Layout.Kind != LayoutNCHW {
		panic(fmt.Sprintf("tensor: NCHWToNHWC expects NCHW input, got %v", in.Layout))
	}
	n, c, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	out := EnsureDst(dst, NHWC(), n, h, w, c)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				srcRow := in.Data[(((b*c+ch)*h)+y)*w:]
				dstBase := ((b*h+y)*w)*c + ch
				for x := 0; x < w; x++ {
					out.Data[dstBase+x*c] = srcRow[x]
				}
			}
		}
	}
	return out
}

// NHWCToNCHW converts channels-last back to the default layout.
func NHWCToNCHW(in *Tensor) *Tensor {
	return NHWCToNCHWInto(nil, in)
}

// NHWCToNCHWInto is NHWCToNCHW writing into a caller-provided destination
// (nil dst allocates).
func NHWCToNCHWInto(dst, in *Tensor) *Tensor {
	if in.Layout.Kind != LayoutNHWC {
		panic(fmt.Sprintf("tensor: NHWCToNCHW expects NHWC input, got %v", in.Layout))
	}
	n, h, w, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	out := EnsureDst(dst, NCHW(), n, c, h, w)
	for b := 0; b < n; b++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				src := in.Data[(((b*h+y)*w)+x)*c:]
				for ch := 0; ch < c; ch++ {
					out.Data[(((b*c+ch)*h)+y)*w+x] = src[ch]
				}
			}
		}
	}
	return out
}

// PackWeights converts an OIHW (KCRS) weight tensor into the blocked
// OIHW[x]i[y]o (KCRS[x]c[y]k) layout expected by the blocked convolution
// template. I must be divisible by x and O by y. In NeoCPU this is done once
// at compile time ("pre-transformed kernel" in Figure 2).
func PackWeights(in *Tensor, x, y int) *Tensor {
	if in.Layout.Kind != LayoutOIHW {
		panic(fmt.Sprintf("tensor: PackWeights expects OIHW input, got %v", in.Layout))
	}
	o, i, kh, kw := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	if x <= 0 || i%x != 0 {
		panic(fmt.Sprintf("tensor: in-channels %d not divisible by block %d", i, x))
	}
	if y <= 0 || o%y != 0 {
		panic(fmt.Sprintf("tensor: out-channels %d not divisible by block %d", o, y))
	}
	oOuter, iOuter := o/y, i/x
	out := New(OIHWio(x, y), oOuter, iOuter, kh, kw, x, y)
	for oc := 0; oc < o; oc++ {
		oo, oi := oc/y, oc%y
		for ic := 0; ic < i; ic++ {
			io, ii := ic/x, ic%x
			for r := 0; r < kh; r++ {
				for s := 0; s < kw; s++ {
					v := in.Data[((oc*i+ic)*kh+r)*kw+s]
					dst := ((((oo*iOuter+io)*kh+r)*kw+s)*x + ii) * y
					out.Data[dst+oi] = v
				}
			}
		}
	}
	return out
}

// UnpackWeights converts blocked OIHW[x]i[y]o weights back to OIHW.
func UnpackWeights(in *Tensor) *Tensor {
	if in.Layout.Kind != LayoutOIHWio {
		panic(fmt.Sprintf("tensor: UnpackWeights expects OIHWio input, got %v", in.Layout))
	}
	oOuter, iOuter, kh, kw, x, y := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4], in.Shape[5]
	o, i := oOuter*y, iOuter*x
	out := New(OIHW(), o, i, kh, kw)
	for oo := 0; oo < oOuter; oo++ {
		for io := 0; io < iOuter; io++ {
			for r := 0; r < kh; r++ {
				for s := 0; s < kw; s++ {
					base := ((((oo*iOuter+io)*kh+r)*kw + s) * x) * y
					for ii := 0; ii < x; ii++ {
						for oi := 0; oi < y; oi++ {
							v := in.Data[base+ii*y+oi]
							oc := oo*y + oi
							ic := io*x + ii
							out.Data[((oc*i+ic)*kh+r)*kw+s] = v
						}
					}
				}
			}
		}
	}
	return out
}

// Transform converts an activation tensor between any two supported
// activation layouts. It is the generic kernel behind graph-level
// LayoutTransform nodes.
func Transform(in *Tensor, to Layout) *Tensor {
	return TransformInto(nil, nil, in, to)
}

// NeedsTransformScratch reports whether TransformInto routes from→to through
// an intermediate NCHW buffer (two-hop transforms between non-default
// layouts). Sessions use it to decide which transform nodes get a scratch
// buffer in their arena.
func NeedsTransformScratch(from, to Layout) bool {
	if from.Equal(to) || to.Kind == LayoutAny {
		return false
	}
	switch {
	case from.Kind == LayoutNCHWc && to.Kind == LayoutNCHWc:
		return true
	case from.Kind == LayoutNHWC && to.Kind == LayoutNCHWc:
		return true
	case from.Kind == LayoutNCHWc && to.Kind == LayoutNHWC:
		return true
	}
	return false
}

// TransformInto is Transform writing into a caller-provided destination.
// scratch, when the transform needs an intermediate NCHW hop (see
// NeedsTransformScratch), must hold the activation's NCHW volume; nil dst or
// scratch allocate.
func TransformInto(dst, scratch *Tensor, in *Tensor, to Layout) *Tensor {
	from := in.Layout
	if from.Equal(to) || to.Kind == LayoutAny {
		if dst == nil {
			return in.Clone()
		}
		out := EnsureDst(dst, in.Layout, in.Shape...)
		copy(out.Data, in.Data)
		return out
	}
	switch {
	case from.Kind == LayoutNCHW && to.Kind == LayoutNCHWc:
		return ToNCHWcInto(dst, in, to.BlockC)
	case from.Kind == LayoutNCHWc && to.Kind == LayoutNCHW:
		return FromNCHWcInto(dst, in)
	case from.Kind == LayoutNCHWc && to.Kind == LayoutNCHWc:
		// Equal block factors were already handled by the from.Equal(to)
		// copy path above, so this is always a genuine re-chunk.
		return ToNCHWcInto(dst, FromNCHWcInto(scratch, in), to.BlockC)
	case from.Kind == LayoutNCHW && to.Kind == LayoutNHWC:
		return NCHWToNHWCInto(dst, in)
	case from.Kind == LayoutNHWC && to.Kind == LayoutNCHW:
		return NHWCToNCHWInto(dst, in)
	case from.Kind == LayoutNHWC && to.Kind == LayoutNCHWc:
		return ToNCHWcInto(dst, NHWCToNCHWInto(scratch, in), to.BlockC)
	case from.Kind == LayoutNCHWc && to.Kind == LayoutNHWC:
		return NCHWToNHWCInto(dst, FromNCHWcInto(scratch, in))
	}
	panic(fmt.Sprintf("tensor: unsupported transform %v -> %v", from, to))
}

package tensor

import "fmt"

// Layout identifies how tensor dimensions are interpreted. The blocked
// layouts carry a block size; two NCHWc layouts with different block sizes
// are different layouts for the purpose of transform elimination (Section
// 3.2 of the paper).
type Layout struct {
	// Kind is the layout family.
	Kind LayoutKind
	// BlockC is the channel split factor x in NCHW[x]c, or the input-channel
	// split x in OIHW[x]i[y]o. Zero for unblocked layouts.
	BlockC int
	// BlockK is the output-channel split factor y in OIHW[x]i[y]o. Zero
	// otherwise.
	BlockK int
}

// LayoutKind is the family of a data layout.
type LayoutKind int

const (
	// LayoutAny is used by layout-oblivious operations that accept any input
	// layout (Section 3.2 category 1).
	LayoutAny LayoutKind = iota
	// LayoutNCHW is the default activation layout: batch, channel, height,
	// width.
	LayoutNCHW
	// LayoutNHWC is the channels-last activation layout used by TensorFlow.
	LayoutNHWC
	// LayoutNCHWc is the blocked activation layout NCHW[x]c with the channel
	// dimension split into C/x super-channels of x sub-channels each.
	LayoutNCHWc
	// LayoutOIHW is the default weight layout (the paper writes KCRS):
	// out-channel, in-channel, kernel-height, kernel-width.
	LayoutOIHW
	// LayoutOIHWio is the blocked weight layout OIHW[x]i[y]o (the paper's
	// KCRS[x]c[y]k).
	LayoutOIHWio
	// LayoutFlat is a rank-2 (batch, features) layout for dense layers,
	// produced by Flatten — the canonical layout-dependent boundary.
	LayoutFlat
)

// Convenience constructors.

// NCHW is the default activation layout.
func NCHW() Layout { return Layout{Kind: LayoutNCHW} }

// NHWC is the channels-last activation layout.
func NHWC() Layout { return Layout{Kind: LayoutNHWC} }

// NCHWc returns the blocked activation layout NCHW[x]c.
func NCHWc(x int) Layout { return Layout{Kind: LayoutNCHWc, BlockC: x} }

// OIHW is the default weight layout (KCRS in the paper).
func OIHW() Layout { return Layout{Kind: LayoutOIHW} }

// OIHWio returns the blocked weight layout OIHW[x]i[y]o (KCRS[x]c[y]k).
func OIHWio(x, y int) Layout { return Layout{Kind: LayoutOIHWio, BlockC: x, BlockK: y} }

// Flat is the rank-2 layout for dense layers.
func Flat() Layout { return Layout{Kind: LayoutFlat} }

// Any matches any layout.
func Any() Layout { return Layout{Kind: LayoutAny} }

func (l Layout) String() string {
	switch l.Kind {
	case LayoutAny:
		return "any"
	case LayoutNCHW:
		return "NCHW"
	case LayoutNHWC:
		return "NHWC"
	case LayoutNCHWc:
		return fmt.Sprintf("NCHW%dc", l.BlockC)
	case LayoutOIHW:
		return "OIHW"
	case LayoutOIHWio:
		return fmt.Sprintf("OIHW%di%do", l.BlockC, l.BlockK)
	case LayoutFlat:
		return "flat"
	}
	return fmt.Sprintf("layout(%d)", int(l.Kind))
}

// Equal reports whether two layouts are identical, including block factors.
func (l Layout) Equal(o Layout) bool { return l == o }

// IsBlocked reports whether the layout is one of the blocked families.
func (l Layout) IsBlocked() bool {
	return l.Kind == LayoutNCHWc || l.Kind == LayoutOIHWio
}

// ActivationShape describes a logical activation tensor independent of
// physical layout.
type ActivationShape struct {
	N, C, H, W int
}

// Volume returns N*C*H*W.
func (s ActivationShape) Volume() int { return s.N * s.C * s.H * s.W }

// PhysicalShape returns the concrete dimension sizes for storing this logical
// activation in the given layout.
func (s ActivationShape) PhysicalShape(l Layout) []int {
	switch l.Kind {
	case LayoutNCHW:
		return []int{s.N, s.C, s.H, s.W}
	case LayoutNHWC:
		return []int{s.N, s.H, s.W, s.C}
	case LayoutNCHWc:
		if l.BlockC <= 0 || s.C%l.BlockC != 0 {
			panic(fmt.Sprintf("tensor: channel %d not divisible by block %d", s.C, l.BlockC))
		}
		return []int{s.N, s.C / l.BlockC, s.H, s.W, l.BlockC}
	}
	panic(fmt.Sprintf("tensor: %v is not an activation layout", l))
}

// WeightShape describes a logical convolution weight independent of layout.
type WeightShape struct {
	O, I, KH, KW int
}

// Volume returns O*I*KH*KW.
func (s WeightShape) Volume() int { return s.O * s.I * s.KH * s.KW }

// PhysicalShape returns the concrete dimensions for this weight in layout l.
func (s WeightShape) PhysicalShape(l Layout) []int {
	switch l.Kind {
	case LayoutOIHW:
		return []int{s.O, s.I, s.KH, s.KW}
	case LayoutOIHWio:
		if l.BlockC <= 0 || s.I%l.BlockC != 0 {
			panic(fmt.Sprintf("tensor: in-channel %d not divisible by block %d", s.I, l.BlockC))
		}
		if l.BlockK <= 0 || s.O%l.BlockK != 0 {
			panic(fmt.Sprintf("tensor: out-channel %d not divisible by block %d", s.O, l.BlockK))
		}
		return []int{s.O / l.BlockK, s.I / l.BlockC, s.KH, s.KW, l.BlockC, l.BlockK}
	}
	panic(fmt.Sprintf("tensor: %v is not a weight layout", l))
}

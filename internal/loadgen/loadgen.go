// Package loadgen is an open-loop HTTP load generator for the /v2 serving
// protocol: it offers requests at a fixed target rate (rather than waiting
// for responses — closed-loop generators hide latency collapse by slowing
// down with the server), sweeps a QPS ramp, and reduces each step to a
// latency-vs-QPS sample in the bench trajectory schema (internal/benchfmt).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/benchfmt"
)

// Config shapes one load run against a running /v2 server.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8000".
	BaseURL string
	// Model is the model to drive. Its input geometry is discovered from
	// GET /v2/models/<model>, so the generator works against any model the
	// server exposes.
	Model string
	// QPS is the offered-rate ramp: one measurement step per rate.
	QPS []float64
	// Duration is how long each step offers load (default 5s).
	Duration time.Duration
	// Concurrency bounds in-flight requests (default 16). When every lane
	// is busy at tick time the tick is counted as dropped rather than
	// queued — the generator stays open-loop instead of building its own
	// backlog.
	Concurrency int
	// Timeout, when set, is sent as X-Request-Timeout on every request and
	// doubles (plus slack) as the HTTP client timeout.
	Timeout time.Duration
	// Warmup is how many sequential requests to run before the first
	// step, priming pool sessions and the server's latency EWMA
	// (default 4).
	Warmup int
	// Client overrides the HTTP client (tests inject an httptest client).
	Client *http.Client
}

// Step is one QPS step's reduced measurement.
type Step struct {
	// TargetQPS is the offered rate; AchievedQPS what the generator
	// actually sustained (ticks fired / elapsed — lower than target when
	// the concurrency bound dropped ticks).
	TargetQPS   float64
	AchievedQPS float64
	// Sent counts requests actually issued; Dropped the ticks skipped
	// because every concurrency lane was busy.
	Sent    int64
	Dropped int64
	// Outcome breakdown: OK (2xx), Rejected (429), DeadlineExceeded (504),
	// ServerErrors (other 5xx), OtherErrors (everything else, transport
	// failures included). They sum to Sent.
	OK               int64
	Rejected         int64
	DeadlineExceeded int64
	ServerErrors     int64
	OtherErrors      int64
	// Latency percentiles and mean over OK requests only (failed requests
	// return on a different, usually much faster, path).
	P50, P95, P99, Mean time.Duration
}

// Run drives the configured ramp and returns one Step per QPS value.
func Run(ctx context.Context, cfg Config) ([]Step, error) {
	if cfg.Model == "" {
		return nil, fmt.Errorf("loadgen: no model")
	}
	if len(cfg.QPS) == 0 {
		return nil, fmt.Errorf("loadgen: no QPS steps")
	}
	for _, q := range cfg.QPS {
		if q <= 0 {
			return nil, fmt.Errorf("loadgen: QPS must be positive, got %g", q)
		}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	if cfg.Timeout > 0 && client.Timeout == 0 {
		// The server answers 504 itself at budget expiry; the client bound
		// only catches a wedged connection, so give it slack.
		client.Timeout = 2*cfg.Timeout + 5*time.Second
	}

	body, err := buildBody(ctx, client, cfg.BaseURL, cfg.Model)
	if err != nil {
		return nil, err
	}
	inferURL := cfg.BaseURL + "/v2/models/" + cfg.Model + "/infer"

	for i := 0; i < cfg.Warmup; i++ {
		code, _, err := shoot(ctx, client, inferURL, body, cfg.Timeout)
		if err == nil && code >= 500 {
			return nil, fmt.Errorf("loadgen: warmup request answered %d", code)
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: warmup request: %w", err)
		}
	}

	steps := make([]Step, 0, len(cfg.QPS))
	for _, qps := range cfg.QPS {
		st, err := runStep(ctx, client, inferURL, body, qps, cfg)
		if err != nil {
			return steps, err
		}
		steps = append(steps, st)
	}
	return steps, nil
}

// runStep offers load at one fixed rate for cfg.Duration.
func runStep(ctx context.Context, client *http.Client, url string, body []byte, qps float64, cfg Config) (Step, error) {
	st := Step{TargetQPS: qps}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	var mu sync.Mutex
	var latencies []time.Duration
	var wg sync.WaitGroup
	lanes := make(chan struct{}, cfg.Concurrency)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()
	start := time.Now()

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			select {
			case lanes <- struct{}{}:
			default:
				st.Dropped++ // open loop: never queue behind our own lanes
				continue
			}
			st.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-lanes }()
				code, lat, err := shoot(ctx, client, url, body, cfg.Timeout)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil:
					st.OtherErrors++
				case code >= 200 && code < 300:
					st.OK++
					latencies = append(latencies, lat)
				case code == http.StatusTooManyRequests:
					st.Rejected++
				case code == http.StatusGatewayTimeout:
					st.DeadlineExceeded++
				case code >= 500:
					st.ServerErrors++
				default:
					st.OtherErrors++
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 0 {
		st.AchievedQPS = float64(st.Sent) / elapsed.Seconds()
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	st.P50 = percentile(latencies, 0.50)
	st.P95 = percentile(latencies, 0.95)
	st.P99 = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		st.Mean = sum / time.Duration(len(latencies))
	}
	return st, ctx.Err()
}

// shoot issues one inference request and reports (status, latency, error).
func shoot(ctx context.Context, client *http.Client, url string, body []byte, timeout time.Duration) (int, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if timeout > 0 {
		req.Header.Set("X-Request-Timeout", strconv.FormatInt(timeout.Milliseconds(), 10))
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	// Drain so the transport reuses the connection; the payload itself is
	// not interesting at load-generation volume.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(start), nil
}

// buildBody discovers the model's input geometry from the metadata endpoint
// and renders one reusable infer request body.
func buildBody(ctx context.Context, client *http.Client, baseURL, model string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v2/models/"+model, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch model metadata: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("loadgen: GET /v2/models/%s answered %d: %s", model, resp.StatusCode, msg)
	}
	var md struct {
		Inputs []struct {
			Name     string `json:"name"`
			Datatype string `json:"datatype"`
			Shape    []int  `json:"shape"`
		} `json:"inputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&md); err != nil {
		return nil, fmt.Errorf("loadgen: parse model metadata: %w", err)
	}
	if len(md.Inputs) != 1 {
		return nil, fmt.Errorf("loadgen: model %s reports %d inputs, want 1", model, len(md.Inputs))
	}
	in := md.Inputs[0]
	n := 1
	for _, d := range in.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("loadgen: model %s input shape %v has a non-positive dim", model, in.Shape)
		}
		n *= d
	}
	data := make([]float32, n)
	for i := range data {
		// Deterministic, non-constant pixels: constant inputs can take
		// suspiciously fast paths through some kernels.
		data[i] = float32(i%17)/16 - 0.5
	}
	payload := map[string]any{
		"inputs": []map[string]any{{
			"name":     in.Name,
			"shape":    in.Shape,
			"datatype": "FP32",
			"data":     data,
		}},
	}
	return json.Marshal(payload)
}

// percentile reads the p-quantile from ascending-sorted latencies
// (nearest-rank; zero when empty).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BenchEntries reduces a ramp to bench-trajectory serving entries
// (serving/<model>/qps-<n>), ready for File.MergeServing.
func BenchEntries(model string, steps []Step) []benchfmt.Entry {
	out := make([]benchfmt.Entry, 0, len(steps))
	for _, st := range steps {
		out = append(out, benchfmt.Entry{
			Name:        benchfmt.ServingName(model, st.TargetQPS),
			NsPerOp:     float64(st.Mean.Nanoseconds()),
			QPS:         st.TargetQPS,
			AchievedQPS: st.AchievedQPS,
			P50NS:       float64(st.P50.Nanoseconds()),
			P95NS:       float64(st.P95.Nanoseconds()),
			P99NS:       float64(st.P99.Nanoseconds()),
			Requests:    st.Sent,
			OK:          st.OK,
			Rejected:    st.Rejected,
			Deadline:    st.DeadlineExceeded,
			Errors5xx:   st.ServerErrors,
			ErrorsOther: st.OtherErrors,
		})
	}
	return out
}

// End-to-end test of the load generator against a real in-process server:
// the ramp runs over HTTP (httptest), the per-step accounting must balance
// exactly, and the generator's view of the traffic must match the server's
// own counters. Runs under -race in CI alongside everything else.
package loadgen_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/serve"
)

func TestLoadgenEndToEnd(t *testing.T) {
	mod, err := core.Compile(models.TinyCNN(3), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mod.Close)
	srv, err := serve.New(mod, "", serve.Config{
		PoolSize: 2, MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	const warmup = 2
	cfg := loadgen.Config{
		BaseURL:     ts.URL,
		Model:       "tiny-cnn",
		QPS:         []float64{25},
		Duration:    400 * time.Millisecond,
		Concurrency: 8,
		Warmup:      warmup,
		Client:      ts.Client(),
	}
	steps, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Fatalf("%d steps for 1 QPS value", len(steps))
	}
	st := steps[0]
	if st.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if got := st.OK + st.Rejected + st.DeadlineExceeded + st.ServerErrors + st.OtherErrors; got != st.Sent {
		t.Fatalf("outcomes sum to %d, sent %d: %+v", got, st.Sent, st)
	}
	// 25 QPS of a sub-millisecond model against a 64-deep queue: nothing may
	// error at the transport or server level.
	if st.ServerErrors != 0 || st.OtherErrors != 0 {
		t.Fatalf("errors against a healthy server: %+v", st)
	}
	if st.OK == 0 {
		t.Fatal("no request succeeded")
	}
	if st.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS %g", st.AchievedQPS)
	}
	if st.P50 <= 0 || st.P50 > st.P95 || st.P95 > st.P99 {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v", st.P50, st.P95, st.P99)
	}

	// The generator's accounting must agree with the server's: every OK
	// request (plus warmup) was carried through a batch; rejected ones were
	// counted as rejected, not silently dropped.
	stats := srv.Stats()
	if want := uint64(st.OK + warmup); stats.Batch.Items != want {
		t.Fatalf("server carried %d items, loadgen delivered %d OK + %d warmup", stats.Batch.Items, st.OK, warmup)
	}
	if stats.Batch.Rejected != uint64(st.Rejected) {
		t.Fatalf("server rejected %d, loadgen observed %d", stats.Batch.Rejected, st.Rejected)
	}

	// The bench-trajectory reduction round-trips through the JSON file the
	// CI smoke replays.
	entries := loadgen.BenchEntries("tiny-cnn", steps)
	if len(entries) != 1 || entries[0].Name != "serving/tiny-cnn/qps-25" {
		t.Fatalf("bench entries %+v", entries)
	}
	if entries[0].Requests != st.Sent || entries[0].OK != st.OK {
		t.Fatalf("entry accounting diverged: %+v vs %+v", entries[0], st)
	}
	path := filepath.Join(t.TempDir(), "BENCH_host.json")
	f := &benchfmt.File{Target: "host", CPU: "test"}
	f.MergeServing("tiny-cnn", entries)
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := benchfmt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Serving) != 1 || loaded.Serving[0].Name != "serving/tiny-cnn/qps-25" {
		t.Fatalf("serving series did not survive the file round-trip: %+v", loaded.Serving)
	}
}

func TestLoadgenRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]loadgen.Config{
		"no-model":     {QPS: []float64{10}},
		"no-qps":       {Model: "m"},
		"negative-qps": {Model: "m", QPS: []float64{10, -1}},
	} {
		if _, err := loadgen.Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted a bad config", name)
		}
	}
}

func TestLoadgenFailsFastOnDeadServer(t *testing.T) {
	cfg := loadgen.Config{
		BaseURL: "http://127.0.0.1:1", // nothing listens on port 1
		Model:   "tiny-cnn",
		QPS:     []float64{10},
	}
	if _, err := loadgen.Run(context.Background(), cfg); err == nil {
		t.Fatal("Run succeeded against a dead server")
	}
}

package faults_test

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

func TestFireUnarmedIsNoop(t *testing.T) {
	if err := faults.Fire("nope", "x"); err != nil {
		t.Fatalf("unarmed Fire returned %v", err)
	}
	if got := faults.Count("nope"); got != 0 {
		t.Fatalf("unarmed fire counted: %d", got)
	}
}

func TestErrorHookAndRemove(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("boom")
	remove := faults.Inject("site", faults.Error(boom))
	if err := faults.Fire("site", "m"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := faults.Count("site"); got != 1 {
		t.Fatalf("count %d, want 1", got)
	}
	remove()
	if err := faults.Fire("site", "m"); err != nil {
		t.Fatalf("after remove: %v", err)
	}
}

func TestOnLabelScopes(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("boom")
	faults.Inject("site", faults.OnLabel("model-a", faults.Error(boom)))
	if err := faults.Fire("site", "model-b"); err != nil {
		t.Fatalf("wrong label faulted: %v", err)
	}
	if err := faults.Fire("site", "model-a"); !errors.Is(err, boom) {
		t.Fatalf("matching label passed: %v", err)
	}
}

func TestTimesHeals(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("boom")
	faults.Inject("site", faults.Times(2, faults.Error(boom)))
	for i := 0; i < 2; i++ {
		if err := faults.Fire("site", "m"); !errors.Is(err, boom) {
			t.Fatalf("fire %d: %v", i, err)
		}
	}
	if err := faults.Fire("site", "m"); err != nil {
		t.Fatalf("did not heal: %v", err)
	}
}

func TestPanicHookPanics(t *testing.T) {
	defer faults.Reset()
	faults.Inject("site", faults.Panic("kaboom"))
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	faults.Fire("site", "m")
	t.Fatal("did not panic")
}

func TestDelayHookSleeps(t *testing.T) {
	defer faults.Reset()
	faults.Inject("site", faults.Delay(20*time.Millisecond))
	start := time.Now()
	if err := faults.Fire("site", "m"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delay hook returned after %v", elapsed)
	}
}

func TestTornReader(t *testing.T) {
	defer faults.Reset()
	faults.InjectReader("site", faults.TornReader(5))
	r := faults.WrapReader("site", "m", strings.NewReader("0123456789"))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("read %q, want torn at 5", got)
	}
	faults.Reset()
	r = faults.WrapReader("site", "m", strings.NewReader("0123456789"))
	if got, _ := io.ReadAll(r); string(got) != "0123456789" {
		t.Fatalf("after reset read %q", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	faults.Inject("a", faults.Error(errors.New("x")))
	faults.InjectReader("b", faults.TornReader(1))
	faults.Reset()
	if err := faults.Fire("a", "m"); err != nil {
		t.Fatalf("hook survived reset: %v", err)
	}
	if got := faults.Count("a"); got != 0 {
		t.Fatalf("counter survived reset: %d", got)
	}
}

// Package faults is a hook-based fault-injection harness for the serving
// stack. Production code calls Fire (or WrapReader) at named sites; tests
// install hooks that delay, fail, panic, or tear reads at exactly those
// sites, scoped to one model by label. There are no build tags: when no hook
// is armed, a site costs one atomic load and nothing else, so the sites stay
// compiled into release binaries and the chaos suite exercises the very code
// that ships.
//
// Typical test usage:
//
//	defer faults.Reset()
//	faults.Inject(faults.SiteSessionRun, faults.OnLabel("tiny-cnn", faults.Panic("kernel blew up")))
//	faults.Inject(faults.SiteRegistryLoad, faults.Times(1, faults.Error(errTransient)))
//
// Hooks run on the goroutine that hit the site, so a Panic hook genuinely
// panics the executor and a Delay hook genuinely stalls the batch.
package faults

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The named sites the serving stack exposes. Sites are plain strings so
// tests can add private ones, but production code should fire these.
const (
	// SiteSessionRun fires at the top of every Session execution; the label
	// is the module's graph name. A Panic hook here models a kernel panic.
	SiteSessionRun = "core.session.run"
	// SiteBatcherDispatch fires as the batcher hands a collected batch to a
	// session; the label is the model name. A Delay hook here slows one
	// model's batches without touching its kernels.
	SiteBatcherDispatch = "serve.batcher.dispatch"
	// SitePoolAcquire fires on every session-pool acquisition; the label is
	// the model name.
	SitePoolAcquire = "serve.pool.acquire"
	// SiteRegistryLoad fires before the registry asks its source for a
	// module; the label is the model name. An Error hook here models a
	// transient repository failure.
	SiteRegistryLoad = "serve.registry.load"
	// SiteBundleRead wraps the bundle file reader (WrapReader); the label is
	// the model name. A TornReader hook models a half-written bundle.
	SiteBundleRead = "artifact.bundle.read"
)

// Hook is one injected fault. It receives the site's label (typically the
// model name) and may sleep, panic, or return an error for the site to
// propagate. Returning nil lets execution continue unfaulted.
type Hook func(label string) error

// armed short-circuits Fire when nothing is injected; it counts installed
// hooks (reader hooks included) so arming is exact, not sticky.
var armed atomic.Int64

var (
	mu      sync.Mutex
	hooks   map[string][]*installed
	readers map[string][]*installedReader
	fired   map[string]uint64
)

type installed struct{ h Hook }

// ReaderHook transforms a reader at a wrapped site (label-scoped like Hook);
// returning r unchanged leaves the site unfaulted.
type ReaderHook func(label string, r io.Reader) io.Reader

type installedReader struct{ h ReaderHook }

// Inject installs a hook at a site and returns a remover. Multiple hooks at
// one site run in installation order until one returns a non-nil error.
func Inject(site string, h Hook) (remove func()) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = map[string][]*installed{}
	}
	in := &installed{h: h}
	hooks[site] = append(hooks[site], in)
	armed.Add(1)
	return func() { removeHook(site, in) }
}

func removeHook(site string, in *installed) {
	mu.Lock()
	defer mu.Unlock()
	hs := hooks[site]
	for i, cand := range hs {
		if cand == in {
			hooks[site] = append(hs[:i], hs[i+1:]...)
			armed.Add(-1)
			return
		}
	}
}

// InjectReader installs a reader transformer at a site wrapped with
// WrapReader, returning a remover.
func InjectReader(site string, h ReaderHook) (remove func()) {
	mu.Lock()
	defer mu.Unlock()
	if readers == nil {
		readers = map[string][]*installedReader{}
	}
	in := &installedReader{h: h}
	readers[site] = append(readers[site], in)
	armed.Add(1)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		rs := readers[site]
		for i, cand := range rs {
			if cand == in {
				readers[site] = append(rs[:i], rs[i+1:]...)
				armed.Add(-1)
				return
			}
		}
	}
}

// Reset removes every installed hook and clears the fire counters. Tests
// defer this so one test's faults never leak into the next.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, hs := range hooks {
		n += len(hs)
	}
	for _, rs := range readers {
		n += len(rs)
	}
	armed.Add(int64(-n))
	hooks = nil
	readers = nil
	fired = nil
}

// Fire runs the hooks installed at site, in order, stopping at the first
// non-nil error (which the caller propagates). With nothing injected it is a
// single atomic load.
func Fire(site, label string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	hs := append([]*installed(nil), hooks[site]...)
	if len(hs) > 0 {
		if fired == nil {
			fired = map[string]uint64{}
		}
		fired[site]++
	}
	mu.Unlock()
	for _, in := range hs {
		if err := in.h(label); err != nil {
			return err
		}
	}
	return nil
}

// WrapReader applies the reader hooks installed at site to r. With nothing
// injected it returns r untouched for one atomic load.
func WrapReader(site, label string, r io.Reader) io.Reader {
	if armed.Load() == 0 {
		return r
	}
	mu.Lock()
	rs := append([]*installedReader(nil), readers[site]...)
	if len(rs) > 0 {
		if fired == nil {
			fired = map[string]uint64{}
		}
		fired[site]++
	}
	mu.Unlock()
	for _, in := range rs {
		r = in.h(label, r)
	}
	return r
}

// Count reports how many times a site fired with at least one hook
// installed; test assertions use it to prove a site was actually reached.
func Count(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return fired[site]
}

// Error returns a hook failing every fire with err.
func Error(err error) Hook {
	return func(string) error { return err }
}

// Panic returns a hook that panics with v, modeling a kernel/executor panic
// on the firing goroutine.
func Panic(v any) Hook {
	return func(string) error { panic(v) }
}

// Delay returns a hook that sleeps d and continues, modeling a slow kernel
// or a stalled dependency.
func Delay(d time.Duration) Hook {
	return func(string) error { time.Sleep(d); return nil }
}

// OnLabel scopes a hook to one label (model): other labels pass unfaulted.
func OnLabel(label string, h Hook) Hook {
	return func(l string) error {
		if l != label {
			return nil
		}
		return h(l)
	}
}

// Times limits a hook to its first n fires (label-matching fires, when
// wrapped inside OnLabel; raw fires otherwise), then passes unfaulted —
// the shape of a transient fault that heals.
func Times(n int, h Hook) Hook {
	var left atomic.Int64
	left.Store(int64(n))
	return func(l string) error {
		if left.Add(-1) < 0 {
			return nil
		}
		return h(l)
	}
}

// TornReader returns a reader hook that truncates the stream after n bytes,
// modeling a reader that observes a half-written file: the consumer sees a
// clean EOF where the payload should continue.
func TornReader(n int64) ReaderHook {
	return func(_ string, r io.Reader) io.Reader { return io.LimitReader(r, n) }
}

// String renders the currently installed sites, for debugging stuck tests.
func String() string {
	mu.Lock()
	defer mu.Unlock()
	return fmt.Sprintf("faults: %d hook site(s), %d reader site(s) armed", len(hooks), len(readers))
}

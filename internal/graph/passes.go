package graph

import (
	"fmt"

	"repro/internal/ops"
)

// This file implements the generic graph-level optimizations the paper
// inherits from the TVM stack (Section 3): inference simplification and
// operator fusion. The layout passes live in layout.go.

// SimplifyInference removes inference-time no-ops and folds BatchNorm into
// the preceding convolution:
//
//   - Dropout nodes become identity and are removed.
//   - A BatchNorm whose sole producer is a convolution consumed only by the
//     BatchNorm is folded into the convolution's weight and bias
//     (pre-computation at compile time); other BatchNorms are kept as
//     runtime scale/shift operators.
func SimplifyInference(g *Graph) error {
	if err := RemoveDropout(g); err != nil {
		return err
	}
	return FoldBatchNorms(g)
}

// RemoveDropout deletes inference-time identity Dropout nodes.
func RemoveDropout(g *Graph) error {
	dead := map[*Node]bool{}
	for _, n := range g.Topo() {
		if n.Op == OpDropout {
			g.replaceInput(n, n.Inputs[0])
			dead[n] = true
		}
	}
	g.removeNodes(dead)
	return InferShapes(g)
}

// FoldBatchNorms folds each BatchNorm whose sole producer is an
// exclusively-consumed convolution into that convolution's weight and bias.
// Engine simulators skip this pass to model frameworks that execute
// BatchNorm as a standalone operator.
func FoldBatchNorms(g *Graph) error {
	dead := map[*Node]bool{}
	cons := g.Consumers()
	for _, n := range g.Topo() {
		if n.Op != OpBatchNorm {
			continue
		}
		conv := n.Inputs[0]
		if !conv.IsConv() || len(cons[conv]) != 1 {
			continue
		}
		w, b := ops.FoldBatchNorm(conv.Weight, conv.Bias, n.BN)
		conv.Weight, conv.Bias = w, b
		g.replaceInput(n, conv)
		dead[n] = true
	}
	g.removeNodes(dead)
	return InferShapes(g)
}

// FuseOps fuses memory-bound successors into convolution epilogues to raise
// arithmetic intensity (Section 2.2): conv→relu, conv→add→relu and
// conv→add patterns collapse into the convolution node. The residual operand
// becomes the convolution's second input.
//
// A fusion is only legal when the absorbed operator is the convolution's sole
// reader: the consumer count comes from a map recomputed at the top of every
// outer iteration, and each iteration performs at most one mutation before
// restarting (the `break` below), so the map is never consulted after an edge
// rewrite invalidated it. Graph outputs are an extra, invisible reader — the
// caller observes the pre-activation value — so an exposed convolution is
// never fused even when it has exactly one consumer node.
func FuseOps(g *Graph) error {
	changed := true
	for changed {
		changed = false
		cons := g.Consumers()
		exposed := map[*Node]bool{}
		for _, o := range g.Outputs {
			exposed[o] = true
		}
		fusible := func(c *Node) bool {
			return c.IsConv() && len(cons[c]) == 1 && !exposed[c]
		}
		dead := map[*Node]bool{}
		for _, n := range g.Topo() {
			switch n.Op {
			case OpAdd:
				// Fuse the add into whichever operand is a convolution whose
				// only reader is this add and which has no residual yet.
				var conv, other *Node
				for i, c := range []*Node{n.Inputs[0], n.Inputs[1]} {
					if fusible(c) && c.FusedResidual == nil && !c.FusedReLU {
						conv, other = c, n.Inputs[1-i]
						break
					}
				}
				if conv == nil || other == conv {
					continue
				}
				conv.FusedResidual = other
				conv.Inputs = append(conv.Inputs, other)
				g.replaceInput(n, conv)
				dead[n] = true
				changed = true
			case OpReLU:
				c := n.Inputs[0]
				if fusible(c) && !c.FusedReLU {
					c.FusedReLU = true
					g.replaceInput(n, c)
					dead[n] = true
					changed = true
				}
			}
			if changed {
				// One mutation per consumer-map computation: restart so the
				// next fusion decision sees fresh edges.
				break
			}
		}
		g.removeNodes(dead)
	}
	return InferShapes(g)
}

// Optimize runs the standard pre-layout pass pipeline.
func Optimize(g *Graph) error {
	if err := SimplifyInference(g); err != nil {
		return fmt.Errorf("simplify inference: %w", err)
	}
	if err := FuseOps(g); err != nil {
		return fmt.Errorf("fuse ops: %w", err)
	}
	return nil
}

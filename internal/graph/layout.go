package graph

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/tensor"
)

// LayoutPlan assigns every convolution node its optimization scheme — the
// layout (NCHW or NCHW[x]c) plus the blocking tuple (Section 3.3). Plans are
// produced by the search packages or by the uniform helpers below.
type LayoutPlan map[*Node]machine.ConvSchedule

// NCHWPlan schedules every convolution in the default layout (Table 3's
// baseline row).
func NCHWPlan(g *Graph) LayoutPlan {
	p := LayoutPlan{}
	for _, n := range g.Convs() {
		p[n] = machine.ConvSchedule{Layout: tensor.NCHW()}
	}
	return p
}

// NHWCPlan schedules every convolution channels-last, the TensorFlow default
// (Section 3.2 lists NHWC among the layouts CONV tolerates). Surrounding
// layout-tolerant operators run in NCHW, so each convolution pays transforms
// on both sides — the structural behaviour of a framework whose default
// layout disagrees with its kernels'.
func NHWCPlan(g *Graph) LayoutPlan {
	p := LayoutPlan{}
	for _, n := range g.Convs() {
		p[n] = machine.ConvSchedule{Layout: tensor.NHWC()}
	}
	return p
}

// UniformPlan schedules every convolution in NCHW[x]c with one shared split
// factor (Section 3.2: "we make x a constant number across all CONVs"),
// clamping the block to each workload's channel divisors. Grouped
// convolutions clamp to per-group divisors so blocks never straddle a group;
// depthwise convolutions share one block for input and output (lane v of a
// channel block maps straight to lane v).
func UniformPlan(g *Graph, x, regN int, unroll bool) LayoutPlan {
	p := LayoutPlan{}
	for _, n := range g.Convs() {
		wl := ConvWorkload(n)
		var icb, ocb int
		if wl.Depthwise() {
			icb = largestDivisorAtMost(wl.InC, x)
			ocb = icb
		} else {
			icb = largestDivisorAtMost(wl.InC/wl.GroupCount(), x)
			ocb = largestDivisorAtMost(wl.OutC/wl.GroupCount(), x)
		}
		p[n] = machine.ConvSchedule{
			Layout:  tensor.NCHWc(icb),
			ICBlock: icb, OCBlock: ocb,
			RegN: regN, UnrollKer: unroll,
		}
	}
	return p
}

// largestDivisorAtMost returns the largest divisor of n that is <= limit.
func largestDivisorAtMost(n, limit int) int {
	if limit > n {
		limit = n
	}
	for d := limit; d >= 1; d-- {
		if n%d == 0 {
			return d
		}
	}
	return 1
}

// AlterOpLayout assigns physical layouts through the graph and inserts
// explicit LayoutTransform nodes exactly where required (Section 3.2,
// Figure 2).
//
// With eliminate=true (NeoCPU), the blocked layout produced by a CONV flows
// through layout-oblivious and layout-tolerant operators and into the next
// CONV; transforms appear only at the graph input, at layout-dependent
// operators, at block-factor mismatches between consecutive CONVs, and at
// graph outputs.
//
// With eliminate=false, each CONV behaves like a kernel-library call: it
// transforms its input from the default layout into NCHW[x]c and transforms
// the result back immediately (Table 3 row 2, the op-level-only optimization
// that MXNet/OpenVINO-style stacks perform inside the library).
func AlterOpLayout(g *Graph, plan LayoutPlan, eliminate bool) error {
	type edge struct {
		producer *Node
		to       tensor.Layout
	}
	cache := map[edge]*Node{}

	// ensure returns a node producing `from`'s value in layout `to`,
	// inserting (or reusing) a LayoutTransform.
	ensure := func(from *Node, to tensor.Layout) *Node {
		if from.OutLayout.Equal(to) || to.Kind == tensor.LayoutAny {
			return from
		}
		key := edge{from, to}
		if t, ok := cache[key]; ok {
			return t
		}
		t := &Node{
			Name: fmt.Sprintf("lt_%s_%v", from.Name, to), Op: OpLayoutTransform,
			Inputs: []*Node{from}, Transform: to,
			OutShape: from.OutShape, OutLayout: to,
		}
		g.AddNode(t)
		cache[key] = t
		return t
	}

	for _, n := range g.Topo() {
		if n.Op == OpLayoutTransform {
			continue // inserted by this pass; already annotated
		}
		switch n.Op {
		case OpInput:
			n.OutLayout = tensor.NCHW()

		case OpConv2D:
			sched, ok := plan[n]
			if !ok {
				return fmt.Errorf("graph %q: no scheme for %v", g.Name, n)
			}
			if sched.Algorithm == machine.AlgoWinograd {
				// The Winograd kernel exists only for the blocked layout and
				// only computes 3x3 stride-1 dense convolutions; a plan that
				// says otherwise is wrong and must fail at compile time, not
				// read garbage at inference.
				if sched.Layout.Kind != tensor.LayoutNCHWc {
					return fmt.Errorf("graph %q: %v: winograd schedules require the NCHW[x]c layout, got %v",
						g.Name, n, sched.Layout)
				}
				if !machine.WinogradSupported(n.Conv.KH, n.Conv.KW, n.Conv.StrideH, n.Conv.StrideW) {
					return fmt.Errorf("graph %q: %v: winograd requires a 3x3 stride-1 convolution, got %dx%d stride %dx%d",
						g.Name, n, n.Conv.KH, n.Conv.KW, n.Conv.StrideH, n.Conv.StrideW)
				}
				if n.Conv.GroupCount() > 1 {
					return fmt.Errorf("graph %q: %v: winograd schedules do not support grouped convolutions (%d groups)",
						g.Name, n, n.Conv.GroupCount())
				}
			}
			if sched.Layout.Kind == tensor.LayoutNCHWc {
				// Channel blocks must fit the workload's grouping (shared
				// block for depthwise, per-group divisors otherwise) — the
				// same predicate plan loading applies, so a hand-written or
				// deserialized plan fails at compile time, never in a kernel.
				if err := ConvWorkload(n).ValidateBlocks(sched); err != nil {
					return fmt.Errorf("graph %q: %v: %w", g.Name, n, err)
				}
			}
			n.Sched = sched
			switch sched.Layout.Kind {
			case tensor.LayoutNCHW, tensor.LayoutNHWC:
				n.Inputs[0] = ensure(n.Inputs[0], sched.Layout)
				n.OutLayout = sched.Layout
			case tensor.LayoutNCHWc:
				inL := tensor.NCHWc(sched.ICBlock)
				outL := tensor.NCHWc(sched.OCBlock)
				if eliminate {
					n.Inputs[0] = ensure(n.Inputs[0], inL)
					n.OutLayout = outL
				} else {
					// Library-style: transform in from default, compute
					// blocked, transform back out. The conv node keeps its
					// blocked output layout; a post-transform hands NCHW to
					// every consumer.
					pre := ensure(ensure(n.Inputs[0], tensor.NCHW()), inL)
					n.Inputs[0] = pre
					n.OutLayout = outL
					if n.FusedResidual != nil {
						res := ensure(n.FusedResidual, outL)
						n.FusedResidual = res
						n.Inputs[1] = res
					}
					post := ensure(n, tensor.NCHW())
					// Rewire every consumer of the conv (and the graph
					// outputs) to read the transformed-back value.
					for _, m := range g.nodes {
						if m == post {
							continue
						}
						for i, in := range m.Inputs {
							if in == n {
								m.Inputs[i] = post
							}
						}
						if m.FusedResidual == n {
							m.FusedResidual = post
						}
					}
					for i, out := range g.Outputs {
						if out == n {
							g.Outputs[i] = post
						}
					}
					continue
				}
			default:
				return fmt.Errorf("graph %q: scheme layout %v unsupported", g.Name, sched.Layout)
			}
			if n.FusedResidual != nil {
				res := ensure(n.FusedResidual, n.OutLayout)
				n.FusedResidual = res
				n.Inputs[1] = res
			}

		case OpBatchNorm, OpPool:
			// Layout-tolerant: handle NCHW and NCHWc; keep whatever arrives,
			// normalizing NHWC back to NCHW.
			in := n.Inputs[0]
			if in.OutLayout.Kind == tensor.LayoutNHWC {
				in = ensure(in, tensor.NCHW())
				n.Inputs[0] = in
			}
			n.OutLayout = in.OutLayout

		case OpGlobalAvgPool:
			// Tolerant on input; always emits NCHW (N,C,1,1).
			in := n.Inputs[0]
			if in.OutLayout.Kind == tensor.LayoutNHWC {
				in = ensure(in, tensor.NCHW())
				n.Inputs[0] = in
			}
			n.OutLayout = tensor.NCHW()

		case OpReLU, OpDropout:
			n.OutLayout = n.Inputs[0].OutLayout

		case OpAdd:
			// Oblivious, but operands must agree: fix the first input's
			// layout and convert the other (Section 3.3.2).
			want := n.Inputs[0].OutLayout
			n.Inputs[1] = ensure(n.Inputs[1], want)
			n.OutLayout = want

		case OpConcat:
			want := n.Inputs[0].OutLayout
			if want.Kind == tensor.LayoutNCHWc {
				// Blocked concat needs every operand's channel count to be a
				// multiple of the block; otherwise fall back to NCHW.
				for _, in := range n.Inputs {
					if in.OutShape.C()%want.BlockC != 0 {
						want = tensor.NCHW()
						break
					}
				}
			}
			for i := range n.Inputs {
				n.Inputs[i] = ensure(n.Inputs[i], want)
			}
			n.OutLayout = want

		case OpFlatten, OpSSDHead:
			// Layout-dependent: require the default layout on every input.
			for i := range n.Inputs {
				n.Inputs[i] = ensure(n.Inputs[i], tensor.NCHW())
			}
			if n.Op == OpFlatten {
				n.OutLayout = tensor.Flat()
			} else {
				n.OutLayout = tensor.Flat()
			}

		case OpDense, OpSoftmax:
			// Flat-only operators; producers already emit flat tensors.
			n.OutLayout = tensor.Flat()

		default:
			return fmt.Errorf("graph %q: AlterOpLayout: unhandled op %v", g.Name, n.Op)
		}
	}

	// The network's outputs stay in the default layout (Figure 2).
	for i, out := range g.Outputs {
		if out.OutLayout.Kind == tensor.LayoutNCHWc || out.OutLayout.Kind == tensor.LayoutNHWC {
			g.Outputs[i] = ensure(out, tensor.NCHW())
		}
	}
	return InferShapes(g)
}

// CountTransforms returns the number of LayoutTransform nodes reachable from
// the outputs.
func (g *Graph) CountTransforms() int {
	n := 0
	for _, node := range g.Topo() {
		if node.Op == OpLayoutTransform {
			n++
		}
	}
	return n
}

package graph

// This file implements liveness analysis over a fixed topological order: for
// every value (node output) it derives the last program point that reads it,
// resolving through aliasing nodes, and pins the graph outputs so their
// buffers are never recycled. The compile-time memory planner in
// internal/core consumes these intervals to assign node outputs to a small
// set of shared arena slots, and the level partition to schedule independent
// branches concurrently (inter-op parallelism).

// ValueAlias returns the node whose value n forwards unchanged at execution
// time, or nil if n produces its own value. Dropout is identity at inference;
// OpInput forwards the caller-provided input tensor (it has no producer, so
// it also returns nil here — the input is external to the arena).
func ValueAlias(n *Node) *Node {
	if n.Op == OpDropout {
		return n.Inputs[0]
	}
	return nil
}

// Liveness holds per-value lifetime and dependency-depth metadata over one
// topological order of a graph.
type Liveness struct {
	// Order is the analyzed topological order; all position indices below
	// refer to it.
	Order []*Node
	// Index maps each node to its position in Order.
	Index map[*Node]int
	// LastUse[i] is the last position whose execution reads node i's value
	// (alias-resolved: a read through a forwarding node counts against the
	// underlying producer). A value with no readers has LastUse[i] == i.
	// Pinned values report the end of the program.
	LastUse []int
	// Pinned[i] marks values that must outlive the whole run: the graph
	// outputs (and the producers any output aliases). Their buffers are the
	// views an executor returns to the caller.
	Pinned []bool
	// Depth[i] is the longest-path distance from a source node: 0 for nodes
	// with no inputs, else 1 + max over input depths. Two nodes with equal
	// depth can never depend on each other, which makes the depth classes a
	// level-synchronous parallel schedule.
	Depth []int
	// Consumers is the alias-resolved reverse-edge map: for each node, the
	// nodes that read its value (directly or through forwarding nodes), with
	// multiplicity collapsed, in topological order.
	Consumers map[*Node][]*Node
}

// base resolves n through forwarding nodes to the node whose buffer actually
// holds the value.
func base(n *Node) *Node {
	for {
		a := ValueAlias(n)
		if a == nil {
			return n
		}
		n = a
	}
}

// AnalyzeLiveness computes value lifetimes and dependency depths over the
// given topological order (usually g.Topo()). Every node in order must be a
// member of g; inputs must precede consumers.
func AnalyzeLiveness(g *Graph, order []*Node) *Liveness {
	lv := &Liveness{
		Order:     order,
		Index:     make(map[*Node]int, len(order)),
		LastUse:   make([]int, len(order)),
		Pinned:    make([]bool, len(order)),
		Depth:     make([]int, len(order)),
		Consumers: make(map[*Node][]*Node, len(order)),
	}
	for i, n := range order {
		lv.Index[n] = i
	}
	for i, n := range order {
		// A value with no readers dies at its own definition point.
		lv.LastUse[i] = i
		d := 0
		for _, in := range n.Inputs {
			if id := lv.Depth[lv.Index[in]] + 1; id > d {
				d = id
			}
		}
		lv.Depth[i] = d
	}
	seen := make(map[[2]int]bool)
	for i, n := range order {
		for _, in := range n.Inputs {
			b := base(in)
			bi := lv.Index[b]
			if lv.LastUse[bi] < i {
				lv.LastUse[bi] = i
			}
			// The forwarding node itself is a (pointer-copy) read too: the
			// direct operand's lifetime must cover this position so the value
			// table entry it copies is still current.
			if di := lv.Index[in]; lv.LastUse[di] < i {
				lv.LastUse[di] = i
			}
			if !seen[[2]int{bi, i}] {
				seen[[2]int{bi, i}] = true
				lv.Consumers[b] = append(lv.Consumers[b], n)
			}
		}
	}
	for _, o := range g.Outputs {
		bi := lv.Index[base(o)]
		lv.Pinned[bi] = true
		lv.LastUse[bi] = len(order) - 1
		// The output node's own (possibly forwarding) value is read when the
		// executor collects results.
		if oi := lv.Index[o]; lv.LastUse[oi] < len(order)-1 {
			lv.LastUse[oi] = len(order) - 1
		}
	}
	return lv
}

// Interval returns the live range of node i's value as positions in Order:
// it is defined at start and last read at end (inclusive).
func (lv *Liveness) Interval(i int) (start, end int) {
	return i, lv.LastUse[i]
}

// Levels partitions the positions of Order into depth classes: Levels()[d]
// holds every position with Depth d, in topological order. All nodes within
// one level are mutually independent — a dependency strictly increases depth
// — so a level-synchronous executor may dispatch them concurrently.
func (lv *Liveness) Levels() [][]int {
	maxD := 0
	for _, d := range lv.Depth {
		if d > maxD {
			maxD = d
		}
	}
	levels := make([][]int, maxD+1)
	for i, d := range lv.Depth {
		levels[d] = append(levels[d], i)
	}
	return levels
}

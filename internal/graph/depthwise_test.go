package graph

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tensor"
)

func buildDWBlock(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("dw", 1)
	x := b.Input(3, 16, 16)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	x = b.DepthwiseSeparable(x, 32, 1)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TestDepthwiseFusion checks the depthwise+BN+ReLU pattern collapses like the
// dense one: BatchNorm folds into the depthwise weight/bias, ReLU fuses into
// the epilogue, and the depthwise conv keeps its group attribute.
func TestDepthwiseFusion(t *testing.T) {
	g := buildDWBlock(t)
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	var dw *Node
	for _, n := range g.Convs() {
		if ConvWorkload(n).Depthwise() {
			dw = n
		}
	}
	if dw == nil {
		t.Fatal("no depthwise conv survived optimization")
	}
	if dw.Bias == nil {
		t.Fatal("BatchNorm was not folded into the depthwise conv's bias")
	}
	if !dw.FusedReLU {
		t.Fatal("ReLU was not fused into the depthwise conv's epilogue")
	}
	if dw.Conv.GroupCount() != 16 {
		t.Fatalf("depthwise conv lost its groups: %d", dw.Conv.GroupCount())
	}
	for _, n := range g.Topo() {
		if n.Op == OpBatchNorm {
			t.Fatalf("standalone %v survived", n)
		}
	}
}

// TestDepthwiseLayoutFlow checks the transform-elimination pass keeps the
// blocked layout flowing straight through a depthwise-separable block: with
// matching block factors, the only transform in the program is the one
// packing the graph input.
func TestDepthwiseLayoutFlow(t *testing.T) {
	g := buildDWBlock(t)
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	plan := UniformPlan(g, 16, 4, true)
	for n, s := range plan {
		wl := ConvWorkload(n)
		if wl.Depthwise() && s.ICBlock != s.OCBlock {
			t.Fatalf("uniform plan split the depthwise blocks: %v", s)
		}
	}
	if err := AlterOpLayout(g, plan, true); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Topo() {
		if n.Op != OpLayoutTransform {
			continue
		}
		// Input packing (NCHW -> blocked) is the only legitimate transform:
		// the depthwise and pointwise convs must exchange blocked activations
		// directly.
		if n.Inputs[0].Op != OpInput {
			t.Fatalf("unexpected mid-graph transform %v after %v", n, n.Inputs[0])
		}
	}
	for _, n := range g.Convs() {
		if ConvWorkload(n).Depthwise() && n.OutLayout.Kind != tensor.LayoutNCHWc {
			t.Fatalf("depthwise conv fell out of the blocked layout: %v", n.OutLayout)
		}
	}
}

// TestDepthwiseWinogradRejected checks AlterOpLayout refuses a hand-written
// plan that schedules winograd on a grouped convolution.
func TestDepthwiseWinogradRejected(t *testing.T) {
	g := buildDWBlock(t)
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	plan := UniformPlan(g, 16, 4, true)
	for n := range plan {
		if ConvWorkload(n).Depthwise() {
			s := plan[n]
			s.Algorithm = machine.AlgoWinograd
			plan[n] = s
		}
	}
	if err := AlterOpLayout(g, plan, true); err == nil {
		t.Fatal("winograd on a depthwise conv must fail at compile time")
	}
}

package graph

import (
	"fmt"
)

// InferShapes fills every node's OutShape in topological order. It returns
// an error on inconsistent operator wiring (channel mismatches, rank
// mismatches, concat spatial mismatches).
func InferShapes(g *Graph) error {
	for _, n := range g.Topo() {
		s, err := inferNode(n)
		if err != nil {
			return fmt.Errorf("graph %q: %v: %w", g.Name, n, err)
		}
		n.OutShape = s
	}
	return nil
}

func inferNode(n *Node) (Shape, error) {
	in := func(i int) Shape { return n.Inputs[i].OutShape }
	switch n.Op {
	case OpInput:
		return n.OutShape, nil // set by the builder
	case OpConv2D:
		s := in(0)
		if len(s.Dims) != 4 {
			return Shape{}, fmt.Errorf("conv input rank %d", len(s.Dims))
		}
		if n.Weight == nil {
			return Shape{}, fmt.Errorf("conv without weight")
		}
		groups := n.Conv.GroupCount()
		if s.Dims[1]%groups != 0 || n.Conv.OutC%groups != 0 {
			return Shape{}, fmt.Errorf("conv groups %d must divide input channels %d and output channels %d", groups, s.Dims[1], n.Conv.OutC)
		}
		if n.Weight.Shape[1] != s.Dims[1]/groups {
			return Shape{}, fmt.Errorf("conv weight in-channels %d != input channels %d / %d groups", n.Weight.Shape[1], s.Dims[1], groups)
		}
		oh, ow := n.Conv.OutSize(s.Dims[2], s.Dims[3])
		if oh <= 0 || ow <= 0 {
			return Shape{}, fmt.Errorf("conv output %dx%d not positive", oh, ow)
		}
		out := Shape{Dims: []int{s.Dims[0], n.Conv.OutC, oh, ow}}
		if n.FusedResidual != nil && !n.FusedResidual.OutShape.Equal(out) {
			return Shape{}, fmt.Errorf("fused residual shape %v != conv output %v", n.FusedResidual.OutShape, out)
		}
		return out, nil
	case OpBatchNorm:
		s := in(0)
		if len(s.Dims) != 4 {
			return Shape{}, fmt.Errorf("batch_norm input rank %d", len(s.Dims))
		}
		if n.BN.Channels() != s.Dims[1] {
			return Shape{}, fmt.Errorf("batch_norm channels %d != input %d", n.BN.Channels(), s.Dims[1])
		}
		return s, nil
	case OpReLU, OpDropout:
		return in(0), nil
	case OpPool:
		s := in(0)
		if len(s.Dims) != 4 {
			return Shape{}, fmt.Errorf("pool input rank %d", len(s.Dims))
		}
		oh, ow := n.Pool.OutSize(s.Dims[2], s.Dims[3])
		if oh <= 0 || ow <= 0 {
			return Shape{}, fmt.Errorf("pool output %dx%d not positive", oh, ow)
		}
		return Shape{Dims: []int{s.Dims[0], s.Dims[1], oh, ow}}, nil
	case OpGlobalAvgPool:
		s := in(0)
		if len(s.Dims) != 4 {
			return Shape{}, fmt.Errorf("global pool input rank %d", len(s.Dims))
		}
		return Shape{Dims: []int{s.Dims[0], s.Dims[1], 1, 1}}, nil
	case OpAdd:
		a, b := in(0), in(1)
		if !a.Equal(b) {
			return Shape{}, fmt.Errorf("add shape mismatch %v vs %v", a, b)
		}
		return a, nil
	case OpConcat:
		base := in(0)
		if len(base.Dims) != 4 {
			return Shape{}, fmt.Errorf("concat input rank %d", len(base.Dims))
		}
		c := 0
		for i := range n.Inputs {
			s := in(i)
			if s.Dims[0] != base.Dims[0] || s.Dims[2] != base.Dims[2] || s.Dims[3] != base.Dims[3] {
				return Shape{}, fmt.Errorf("concat spatial mismatch %v vs %v", base, s)
			}
			c += s.Dims[1]
		}
		return Shape{Dims: []int{base.Dims[0], c, base.Dims[2], base.Dims[3]}}, nil
	case OpFlatten:
		s := in(0)
		return Shape{Dims: []int{s.Dims[0], s.Volume() / s.Dims[0]}}, nil
	case OpDense:
		s := in(0)
		if len(s.Dims) != 2 {
			return Shape{}, fmt.Errorf("dense input rank %d", len(s.Dims))
		}
		if n.Weight == nil || n.Weight.Shape[1] != s.Dims[1] {
			return Shape{}, fmt.Errorf("dense weight mismatch")
		}
		return Shape{Dims: []int{s.Dims[0], n.DenseOut}}, nil
	case OpSoftmax:
		s := in(0)
		if len(s.Dims) != 2 {
			return Shape{}, fmt.Errorf("softmax input rank %d", len(s.Dims))
		}
		return s, nil
	case OpLayoutTransform:
		return in(0), nil // logical shape unchanged
	case OpSSDHead:
		if len(n.Inputs)%2 != 0 || len(n.Inputs) == 0 {
			return Shape{}, fmt.Errorf("ssd_head needs (cls, loc) input pairs, got %d inputs", len(n.Inputs))
		}
		anchors := 0
		for i := 0; i < len(n.Inputs); i += 2 {
			cls, loc := in(i), in(i+1)
			per := len(n.SSD.Sizes[i/2]) + len(n.SSD.Ratios[i/2]) - 1
			wantCls := per * (n.SSD.NumClasses + 1)
			wantLoc := per * 4
			if cls.Dims[1] != wantCls {
				return Shape{}, fmt.Errorf("ssd scale %d: cls channels %d, want %d", i/2, cls.Dims[1], wantCls)
			}
			if loc.Dims[1] != wantLoc {
				return Shape{}, fmt.Errorf("ssd scale %d: loc channels %d, want %d", i/2, loc.Dims[1], wantLoc)
			}
			if cls.Dims[2] != loc.Dims[2] || cls.Dims[3] != loc.Dims[3] {
				return Shape{}, fmt.Errorf("ssd scale %d: cls/loc spatial mismatch", i/2)
			}
			anchors += per * cls.Dims[2] * cls.Dims[3]
		}
		return Shape{Dims: []int{1, anchors, 6}}, nil
	}
	return Shape{}, fmt.Errorf("unknown op kind %v", n.Op)
}

package graph

import (
	"fmt"

	"repro/internal/machine"
)

// Graph is a computation DAG. Nodes hold their producer edges; Outputs lists
// the result nodes. There is exactly one OpInput node.
type Graph struct {
	Name    string
	Input   *Node
	Outputs []*Node

	nodes  []*Node
	nextID int
}

// NewGraph creates an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddNode appends a node, assigning its ID. Inputs must already be members.
func (g *Graph) AddNode(n *Node) *Node {
	n.ID = g.nextID
	g.nextID++
	g.nodes = append(g.nodes, n)
	return n
}

// Nodes returns the nodes in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Convs returns the convolution nodes in topological order.
func (g *Graph) Convs() []*Node {
	var out []*Node
	for _, n := range g.Topo() {
		if n.IsConv() {
			out = append(out, n)
		}
	}
	return out
}

// Topo returns the nodes in a topological order (inputs before consumers).
// It panics if the graph has a cycle, which the builder cannot construct.
func (g *Graph) Topo() []*Node {
	state := make(map[*Node]int, len(g.nodes)) // 0 unvisited, 1 visiting, 2 done
	order := make([]*Node, 0, len(g.nodes))
	var visit func(n *Node)
	visit = func(n *Node) {
		switch state[n] {
		case 1:
			panic(fmt.Sprintf("graph: cycle through %v", n))
		case 2:
			return
		}
		state[n] = 1
		for _, in := range n.Inputs {
			visit(in)
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, out := range g.Outputs {
		visit(out)
	}
	return order
}

// Consumers builds the reverse-edge map: for each node, the nodes that read
// its output (with multiplicity collapsed).
func (g *Graph) Consumers() map[*Node][]*Node {
	cons := make(map[*Node][]*Node, len(g.nodes))
	for _, n := range g.Topo() {
		seen := map[*Node]bool{}
		for _, in := range n.Inputs {
			if !seen[in] {
				cons[in] = append(cons[in], n)
				seen[in] = true
			}
		}
	}
	return cons
}

// Validate checks structural invariants: exactly one input, acyclicity,
// every node's inputs are graph members, and outputs are non-empty.
func (g *Graph) Validate() error {
	if g.Input == nil {
		return fmt.Errorf("graph %q: no input node", g.Name)
	}
	if len(g.Outputs) == 0 {
		return fmt.Errorf("graph %q: no outputs", g.Name)
	}
	member := make(map[*Node]bool, len(g.nodes))
	for _, n := range g.nodes {
		member[n] = true
	}
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			if !member[in] {
				return fmt.Errorf("graph %q: node %v references non-member %v", g.Name, n, in)
			}
		}
	}
	// Topo panics on cycles; convert to error.
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		g.Topo()
	}()
	return err
}

// replaceInput rewires every consumer edge pointing at old to point at new.
func (g *Graph) replaceInput(old, new *Node) {
	for _, n := range g.nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = new
			}
		}
		if n.FusedResidual == old {
			n.FusedResidual = new
		}
	}
	for i, out := range g.Outputs {
		if out == old {
			g.Outputs[i] = new
		}
	}
}

// removeNodes drops the given nodes from the node list (edges must already
// be rewired).
func (g *Graph) removeNodes(dead map[*Node]bool) {
	kept := g.nodes[:0]
	for _, n := range g.nodes {
		if !dead[n] {
			kept = append(kept, n)
		}
	}
	g.nodes = kept
}

// ConvWorkload derives the machine-level workload of a convolution node from
// its input's inferred shape. InferShapes must have run.
func ConvWorkload(n *Node) machine.ConvWorkload {
	if !n.IsConv() {
		panic(fmt.Sprintf("graph: ConvWorkload on %v", n))
	}
	in := n.Inputs[0].OutShape
	if len(in.Dims) != 4 {
		panic(fmt.Sprintf("graph: conv %v input shape %v not rank 4", n, in))
	}
	return machine.ConvWorkload{
		InC: in.Dims[1], InH: in.Dims[2], InW: in.Dims[3],
		OutC: n.Conv.OutC, KH: n.Conv.KH, KW: n.Conv.KW,
		StrideH: n.Conv.StrideH, StrideW: n.Conv.StrideW,
		PadH: n.Conv.PadH, PadW: n.Conv.PadW,
		Groups: n.Conv.Groups,
	}
}

// Stats summarizes a graph for reports.
type Stats struct {
	Nodes, Convs, Transforms int
	FLOPs                    float64
	Params                   int
}

// ComputeStats tallies node counts, convolution FLOPs and parameter counts.
// InferShapes must have run for FLOPs to be meaningful.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	for _, n := range g.Topo() {
		s.Nodes++
		switch n.Op {
		case OpConv2D:
			s.Convs++
			s.FLOPs += ConvWorkload(n).FLOPs()
		case OpLayoutTransform:
			s.Transforms++
		case OpDense:
			s.FLOPs += 2 * float64(n.Weight.Shape[0]) * float64(n.Weight.Shape[1])
		}
		if n.Weight != nil {
			s.Params += n.Weight.NumElements()
		}
		s.Params += len(n.Bias)
	}
	return s
}

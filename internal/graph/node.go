// Package graph implements the computation-graph IR of NeoCPU-Go: a DAG of
// operator nodes (Section 2.2 of the paper), a builder API for constructing
// CNN models, shape inference, and the graph-level optimization passes of
// Section 3.2 — inference simplification (BatchNorm folding, dropout
// removal), operator fusion into convolution epilogues, layout inference and
// AlterOpLayout with explicit LayoutTransform node insertion.
package graph

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// OpKind enumerates the operator vocabulary.
type OpKind int

const (
	// OpInput is the graph's data input placeholder.
	OpInput OpKind = iota
	// OpConv2D is a 2D convolution; after fusion it may carry a bias,
	// residual input and ReLU in its epilogue.
	OpConv2D
	// OpBatchNorm is inference-mode batch normalization; the
	// SimplifyInference pass folds it into the preceding convolution.
	OpBatchNorm
	// OpReLU is the rectified linear activation.
	OpReLU
	// OpPool is spatial max/avg pooling.
	OpPool
	// OpGlobalAvgPool reduces each channel to a single value.
	OpGlobalAvgPool
	// OpAdd is element-wise addition (residual connections).
	OpAdd
	// OpConcat concatenates along the channel dimension.
	OpConcat
	// OpFlatten reshapes NCHW to (batch, features); layout-dependent.
	OpFlatten
	// OpDense is a fully-connected layer over flat inputs.
	OpDense
	// OpSoftmax normalizes flat logits.
	OpSoftmax
	// OpDropout is identity at inference time; removed by SimplifyInference.
	OpDropout
	// OpLayoutTransform converts between activation layouts. Inserted by
	// AlterOpLayout; never produced by the builder.
	OpLayoutTransform
	// OpSSDHead is the SSD multibox head: it consumes the per-scale class
	// and location convolution outputs (in NCHW) and produces detections.
	// Layout-dependent.
	OpSSDHead
)

var opNames = map[OpKind]string{
	OpInput: "input", OpConv2D: "conv2d", OpBatchNorm: "batch_norm",
	OpReLU: "relu", OpPool: "pool", OpGlobalAvgPool: "global_avg_pool",
	OpAdd: "elemwise_add", OpConcat: "concat", OpFlatten: "flatten",
	OpDense: "dense", OpSoftmax: "softmax", OpDropout: "dropout",
	OpLayoutTransform: "layout_transform", OpSSDHead: "ssd_head",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// LayoutClass is the paper's three-way classification of how operations
// interact with data layout (Section 3.2).
type LayoutClass int

const (
	// LayoutOblivious operations process data without layout knowledge
	// (ReLU, Softmax over flat data, Dropout, element-wise add, concat).
	LayoutOblivious LayoutClass = iota
	// LayoutTolerant operations need the layout but handle several
	// (Conv2D, BatchNorm, Pooling).
	LayoutTolerant
	// LayoutDependent operations require one specific layout
	// (Flatten, Dense, SSDHead, LayoutTransform itself).
	LayoutDependent
)

// Classify returns the layout class of an operator kind.
func Classify(k OpKind) LayoutClass {
	switch k {
	case OpReLU, OpDropout, OpAdd, OpConcat, OpSoftmax:
		return LayoutOblivious
	case OpConv2D, OpBatchNorm, OpPool, OpGlobalAvgPool, OpInput:
		return LayoutTolerant
	default:
		return LayoutDependent
	}
}

// SSDHeadAttrs configures an OpSSDHead node. The node's inputs are ordered
// [cls_0, loc_0, cls_1, loc_1, ...] — one class-score and one box-offset
// convolution output per feature-map scale.
type SSDHeadAttrs struct {
	// NumClasses excludes background.
	NumClasses int
	// Anchors per scale: sizes/ratios per the SSD convention.
	Sizes  [][]float32
	Ratios [][]float32
	// Detection decoding/NMS settings.
	Detection ops.MultiBoxDetectionAttrs
}

// Shape is a logical tensor shape, independent of physical layout. Rank 4
// shapes are (N, C, H, W); rank 2 are (N, Features).
type Shape struct {
	Dims []int
}

// Volume returns the element count.
func (s Shape) Volume() int {
	v := 1
	for _, d := range s.Dims {
		v *= d
	}
	return v
}

// C returns the channel dimension of a rank-4 shape.
func (s Shape) C() int { return s.Dims[1] }

// Equal reports dimension-wise equality.
func (s Shape) Equal(o Shape) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

func (s Shape) String() string { return fmt.Sprintf("%v", s.Dims) }

// Node is one operation in the computation graph.
type Node struct {
	// ID is unique within the graph and stable across passes.
	ID int
	// Name is a human-readable identifier (layer name).
	Name string
	// Op is the operator kind.
	Op OpKind
	// Inputs are the producing nodes, in operator-specific order.
	Inputs []*Node

	// Operator attributes; only the field matching Op is meaningful.
	Conv      ops.Conv2DAttrs
	Pool      ops.PoolAttrs
	BN        ops.BatchNormParams
	DenseOut  int
	SSD       *SSDHeadAttrs
	Transform tensor.Layout // OpLayoutTransform target layout

	// Weight is the OIHW convolution weight or (out,in) dense weight.
	Weight *tensor.Tensor
	// Bias is the per-output-channel bias (possibly created by BN folding).
	Bias []float32

	// Fusion annotations, set by the FuseOps pass (conv only).
	FusedReLU bool
	// FusedResidual, if non-nil, is the extra input whose value is added in
	// the convolution epilogue. It is also present in Inputs (index 1).
	FusedResidual *Node

	// OutShape is the logical output shape, filled by InferShapes. For
	// OpSSDHead it is (1, maxDetections, 6) nominally.
	OutShape Shape

	// OutLayout is the physical output layout, assigned by AlterOpLayout.
	OutLayout tensor.Layout

	// Sched is the convolution's optimization scheme (layout + blocking
	// tuple), assigned by AlterOpLayout from the layout plan. Meaningful for
	// OpConv2D only; the zero value means plain NCHW execution.
	Sched machine.ConvSchedule
}

func (n *Node) String() string {
	return fmt.Sprintf("#%d %s(%s)", n.ID, n.Name, n.Op)
}

// IsConv reports whether the node is a convolution.
func (n *Node) IsConv() bool { return n.Op == OpConv2D }

package graph

// EliminateDeadNodes removes nodes that are not reachable from any graph
// output. Dead nodes arise when passes rewire edges (fusion leaves its
// absorbed operators disconnected only if a rewrite missed them) or when a
// model builder constructs speculative branches; the executor walks the
// topological order from the outputs, so dead nodes would never run, but
// they inflate statistics and keep parameter memory alive.
// It returns the number of removed nodes.
func EliminateDeadNodes(g *Graph) int {
	reachable := make(map[*Node]bool, len(g.nodes))
	for _, n := range g.Topo() { // Topo walks only what the outputs reach
		reachable[n] = true
	}
	dead := map[*Node]bool{}
	for _, n := range g.nodes {
		if !reachable[n] {
			dead[n] = true
		}
	}
	g.removeNodes(dead)
	return len(dead)
}

package graph

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Builder constructs graphs layer by layer, allocating deterministic
// seeded synthetic parameters (the substitution for model-zoo weights; the
// evaluation measures latency, not accuracy). Shapes are inferred
// incrementally so layer methods can size weights automatically.
type Builder struct {
	g     *Graph
	seed  uint64
	names map[string]int
	// ShapeOnlyParams, when set before adding layers, allocates weight
	// tensors with shapes but no data. Such graphs support every pass and
	// the latency predictor but cannot be executed; latency-simulation
	// harnesses use this to avoid materializing hundreds of megabytes of
	// VGG parameters per compilation.
	ShapeOnlyParams bool
}

// NewBuilder starts a graph with the given name and parameter seed.
func NewBuilder(name string, seed uint64) *Builder {
	return &Builder{g: NewGraph(name), seed: seed, names: map[string]int{}}
}

func (b *Builder) fresh(prefix string) string {
	b.names[prefix]++
	return fmt.Sprintf("%s%d", prefix, b.names[prefix])
}

func (b *Builder) nextSeed() uint64 {
	b.seed = b.seed*6364136223846793005 + 1442695040888963407
	return b.seed
}

func (b *Builder) add(n *Node) *Node {
	b.g.AddNode(n)
	// Incremental shape inference: the node's inputs were added earlier and
	// already carry shapes.
	s, err := inferNode(n)
	if err != nil {
		panic(fmt.Sprintf("graph builder: %v: %v", n, err))
	}
	n.OutShape = s
	return n
}

// Input declares the (1, c, h, w) data input. The paper's latency
// experiments all use batch 1; use InputBatch for throughput-style graphs.
func (b *Builder) Input(c, h, w int) *Node {
	return b.InputBatch(1, c, h, w)
}

// InputBatch declares an (n, c, h, w) data input ("NeoCPU works for larger
// batch sizes as well, in which cases we just need to add the N value to our
// configuration tuple", Section 4).
func (b *Builder) InputBatch(n, c, h, w int) *Node {
	if b.g.Input != nil {
		panic("graph builder: second Input")
	}
	if n < 1 {
		panic("graph builder: batch must be >= 1")
	}
	node := &Node{Name: "data", Op: OpInput, OutShape: Shape{Dims: []int{n, c, h, w}}}
	b.g.Input = node
	return b.add(node)
}

// Conv adds a convolution with a square k×k kernel.
func (b *Builder) Conv(x *Node, outC, k, stride, pad int) *Node {
	return b.ConvRect(x, outC, k, k, stride, stride, pad, pad)
}

// ConvRect adds a convolution with full geometry control.
func (b *Builder) ConvRect(x *Node, outC, kh, kw, sh, sw, ph, pw int) *Node {
	return b.convGrouped(x, outC, kh, kw, sh, sw, ph, pw, 1)
}

// GroupedConv adds a grouped convolution with a square k×k kernel: the input
// channels split into `groups` disjoint sets and each output channel reduces
// over only its group's inputs (AlexNet/ResNeXt-style). groups must divide
// both the input and output channel counts.
func (b *Builder) GroupedConv(x *Node, outC, k, stride, pad, groups int) *Node {
	return b.convGrouped(x, outC, k, k, stride, stride, pad, pad, groups)
}

// DepthwiseConv adds a depthwise convolution with a square k×k kernel: one
// group per input channel with channel multiplier 1, the spatial half of a
// MobileNet depthwise-separable block.
func (b *Builder) DepthwiseConv(x *Node, k, stride, pad int) *Node {
	c := x.OutShape.Dims[1]
	return b.convGrouped(x, c, k, k, stride, stride, pad, pad, c)
}

// DepthwiseSeparable is the MobileNet v1 building block: depthwise 3x3 (with
// BN+ReLU) followed by a pointwise 1x1 convolution (with BN+ReLU) that mixes
// channels to outC.
func (b *Builder) DepthwiseSeparable(x *Node, outC, stride int) *Node {
	x = b.ReLU(b.BatchNorm(b.DepthwiseConv(x, 3, stride, 1)))
	return b.ConvBNReLU(x, outC, 1, 1, 0)
}

func (b *Builder) convGrouped(x *Node, outC, kh, kw, sh, sw, ph, pw, groups int) *Node {
	inC := x.OutShape.Dims[1]
	if groups < 1 {
		groups = 1
	}
	if inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("graph builder: groups %d must divide in channels %d and out channels %d", groups, inC, outC))
	}
	icPerG := inC / groups
	var w *tensor.Tensor
	if b.ShapeOnlyParams {
		w = &tensor.Tensor{Shape: []int{outC, icPerG, kh, kw}, Layout: tensor.OIHW()}
	} else {
		w = tensor.New(tensor.OIHW(), outC, icPerG, kh, kw)
		// He-style scale keeps activations bounded through deep nets.
		w.FillRandom(b.nextSeed(), float32(1.0/float64(icPerG*kh*kw)))
	}
	name := "conv"
	attrGroups := 0 // dense convolutions keep the zero value
	if groups > 1 {
		attrGroups = groups
		name = "gconv"
		if groups == inC && outC == inC {
			name = "dwconv"
		}
	}
	n := &Node{
		Name: b.fresh(name), Op: OpConv2D, Inputs: []*Node{x},
		Conv:   ops.Conv2DAttrs{OutC: outC, KH: kh, KW: kw, StrideH: sh, StrideW: sw, PadH: ph, PadW: pw, Groups: attrGroups},
		Weight: w,
	}
	return b.add(n)
}

// BatchNorm adds an inference-mode batch normalization with synthetic
// statistics.
func (b *Builder) BatchNorm(x *Node) *Node {
	c := x.OutShape.Dims[1]
	mk := func(scale, bias float32) []float32 {
		t := tensor.New(tensor.Flat(), 1, c)
		t.FillRandom(b.nextSeed(), scale)
		out := make([]float32, c)
		for i, v := range t.Data {
			out[i] = v + bias
		}
		return out
	}
	n := &Node{
		Name: b.fresh("bn"), Op: OpBatchNorm, Inputs: []*Node{x},
		BN: ops.BatchNormParams{
			Gamma: mk(0.1, 1), Beta: mk(0.1, 0),
			Mean: mk(0.1, 0), Var: mk(0.05, 1),
			Eps: 1e-5,
		},
	}
	return b.add(n)
}

// ReLU adds the activation.
func (b *Builder) ReLU(x *Node) *Node {
	return b.add(&Node{Name: b.fresh("relu"), Op: OpReLU, Inputs: []*Node{x}})
}

// ConvBNReLU is the ubiquitous conv → batch_norm → relu block.
func (b *Builder) ConvBNReLU(x *Node, outC, k, stride, pad int) *Node {
	return b.ReLU(b.BatchNorm(b.Conv(x, outC, k, stride, pad)))
}

// MaxPool adds k×k max pooling.
func (b *Builder) MaxPool(x *Node, k, stride, pad int) *Node {
	n := &Node{
		Name: b.fresh("maxpool"), Op: OpPool, Inputs: []*Node{x},
		Pool: ops.PoolAttrs{Kind: ops.MaxPool, KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	}
	return b.add(n)
}

// AvgPool adds k×k average pooling.
func (b *Builder) AvgPool(x *Node, k, stride, pad int) *Node {
	n := &Node{
		Name: b.fresh("avgpool"), Op: OpPool, Inputs: []*Node{x},
		Pool: ops.PoolAttrs{Kind: ops.AvgPool, KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
	}
	return b.add(n)
}

// GlobalAvgPool adds global average pooling.
func (b *Builder) GlobalAvgPool(x *Node) *Node {
	return b.add(&Node{Name: b.fresh("gap"), Op: OpGlobalAvgPool, Inputs: []*Node{x}})
}

// Add joins two branches element-wise.
func (b *Builder) Add(x, y *Node) *Node {
	return b.add(&Node{Name: b.fresh("add"), Op: OpAdd, Inputs: []*Node{x, y}})
}

// Concat joins branches along the channel dimension.
func (b *Builder) Concat(xs ...*Node) *Node {
	if len(xs) < 2 {
		panic("graph builder: Concat needs >= 2 inputs")
	}
	return b.add(&Node{Name: b.fresh("concat"), Op: OpConcat, Inputs: append([]*Node(nil), xs...)})
}

// Flatten reshapes to (batch, features).
func (b *Builder) Flatten(x *Node) *Node {
	return b.add(&Node{Name: b.fresh("flatten"), Op: OpFlatten, Inputs: []*Node{x}})
}

// Dense adds a fully-connected layer.
func (b *Builder) Dense(x *Node, out int) *Node {
	in := x.OutShape.Dims[1]
	var w *tensor.Tensor
	if b.ShapeOnlyParams {
		w = &tensor.Tensor{Shape: []int{out, in}, Layout: tensor.Flat()}
	} else {
		w = tensor.New(tensor.Flat(), out, in)
		w.FillRandom(b.nextSeed(), float32(1.0/float64(in)))
	}
	bias := make([]float32, out)
	n := &Node{
		Name: b.fresh("fc"), Op: OpDense, Inputs: []*Node{x},
		DenseOut: out, Weight: w, Bias: bias,
	}
	return b.add(n)
}

// Dropout adds an inference-time identity dropout (removed by
// SimplifyInference).
func (b *Builder) Dropout(x *Node) *Node {
	return b.add(&Node{Name: b.fresh("dropout"), Op: OpDropout, Inputs: []*Node{x}})
}

// Softmax adds the final normalization over flat logits.
func (b *Builder) Softmax(x *Node) *Node {
	return b.add(&Node{Name: b.fresh("softmax"), Op: OpSoftmax, Inputs: []*Node{x}})
}

// SSDHead adds the multibox detection head. pairs alternate (cls, loc)
// convolution outputs, one pair per scale; attrs carries the per-scale
// anchor configuration.
func (b *Builder) SSDHead(attrs SSDHeadAttrs, pairs ...*Node) *Node {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		panic("graph builder: SSDHead needs (cls, loc) pairs")
	}
	if len(attrs.Sizes) != len(pairs)/2 || len(attrs.Ratios) != len(pairs)/2 {
		panic("graph builder: SSDHead anchor config must match scale count")
	}
	a := attrs
	n := &Node{Name: b.fresh("ssd_head"), Op: OpSSDHead, Inputs: append([]*Node(nil), pairs...), SSD: &a}
	return b.add(n)
}

// Finish declares the outputs and returns the validated graph.
func (b *Builder) Finish(outputs ...*Node) *Graph {
	if len(outputs) == 0 {
		panic("graph builder: Finish needs outputs")
	}
	b.g.Outputs = append([]*Node(nil), outputs...)
	if err := b.g.Validate(); err != nil {
		panic(fmt.Sprintf("graph builder: %v", err))
	}
	if err := InferShapes(b.g); err != nil {
		panic(fmt.Sprintf("graph builder: %v", err))
	}
	return b.g
}

package graph

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tensor"
)

// tinyCNN builds input -> conv -> bn -> relu -> maxpool -> conv -> bn ->
// relu -> gap -> flatten -> dense -> softmax.
func tinyCNN() *Graph {
	b := NewBuilder("tiny", 1)
	x := b.Input(3, 32, 32)
	x = b.ConvBNReLU(x, 16, 3, 1, 1)
	x = b.MaxPool(x, 2, 2, 0)
	x = b.ConvBNReLU(x, 32, 3, 1, 1)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	x = b.Softmax(x)
	return b.Finish(x)
}

// tinyResNet builds one residual block with a downsample branch.
func tinyResNet() *Graph {
	b := NewBuilder("tinyres", 2)
	x := b.Input(8, 16, 16)
	stem := b.ConvBNReLU(x, 16, 3, 1, 1)
	br := b.ConvBNReLU(stem, 16, 3, 1, 1)
	br = b.BatchNorm(b.Conv(br, 16, 3, 1, 1))
	sum := b.Add(br, stem)
	out := b.ReLU(sum)
	out = b.GlobalAvgPool(out)
	out = b.Flatten(out)
	out = b.Dense(out, 10)
	return b.Finish(out)
}

func TestBuilderShapes(t *testing.T) {
	g := tinyCNN()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out := g.Outputs[0]
	if !out.OutShape.Equal(Shape{Dims: []int{1, 10}}) {
		t.Fatalf("output shape = %v", out.OutShape)
	}
	// Find the pool node and check its shape.
	for _, n := range g.Nodes() {
		if n.Op == OpPool {
			if !n.OutShape.Equal(Shape{Dims: []int{1, 16, 16, 16}}) {
				t.Fatalf("pool shape = %v", n.OutShape)
			}
		}
	}
}

func TestTopoOrder(t *testing.T) {
	g := tinyResNet()
	pos := map[*Node]int{}
	for i, n := range g.Topo() {
		pos[n] = i
	}
	for _, n := range g.Topo() {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n] {
				t.Fatalf("topo violation: %v before %v", n, in)
			}
		}
	}
}

func TestValidateCatchesMissingInput(t *testing.T) {
	g := NewGraph("broken")
	n := &Node{Op: OpReLU, Inputs: []*Node{{Op: OpInput}}}
	g.AddNode(n)
	g.Outputs = []*Node{n}
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error for non-member input and missing graph input")
	}
}

func TestConsumers(t *testing.T) {
	g := tinyResNet()
	cons := g.Consumers()
	// The stem's ReLU feeds both the branch conv and the add (pre-fusion).
	var stem *Node
	for _, n := range g.Topo() {
		if n.Op == OpReLU && len(cons[n]) == 2 {
			stem = n
		}
	}
	if stem == nil {
		t.Fatal("expected a node with two consumers (residual fork)")
	}
}

func TestSimplifyInferenceFoldsBNAndDropout(t *testing.T) {
	b := NewBuilder("d", 3)
	x := b.Input(4, 8, 8)
	x = b.Conv(x, 8, 3, 1, 1)
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.Dropout(x)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 4))

	if err := SimplifyInference(g); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Topo() {
		if n.Op == OpDropout {
			t.Fatal("dropout must be removed")
		}
		if n.Op == OpBatchNorm {
			t.Fatal("batch norm after conv must be folded")
		}
		if n.IsConv() && n.Bias == nil {
			t.Fatal("folded conv must carry a bias")
		}
	}
}

func TestSimplifyKeepsBNWithoutConv(t *testing.T) {
	// BN directly on the input cannot fold.
	b := NewBuilder("d", 4)
	x := b.Input(4, 8, 8)
	x = b.BatchNorm(x)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 2))
	if err := SimplifyInference(g); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range g.Topo() {
		if n.Op == OpBatchNorm {
			found = true
		}
	}
	if !found {
		t.Fatal("BN without preceding conv must survive")
	}
}

func TestFuseOpsConvReLU(t *testing.T) {
	g := tinyCNN()
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	relus, convs := 0, 0
	for _, n := range g.Topo() {
		switch n.Op {
		case OpReLU:
			relus++
		case OpConv2D:
			convs++
			if !n.FusedReLU {
				t.Fatalf("conv %v should carry fused relu", n)
			}
		}
	}
	if relus != 0 {
		t.Fatalf("standalone relus remaining: %d", relus)
	}
	if convs != 2 {
		t.Fatalf("convs = %d, want 2", convs)
	}
}

func TestFuseOpsResidual(t *testing.T) {
	g := tinyResNet()
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	var fused *Node
	adds := 0
	for _, n := range g.Topo() {
		if n.Op == OpAdd {
			adds++
		}
		if n.IsConv() && n.FusedResidual != nil {
			fused = n
		}
	}
	if adds != 0 {
		t.Fatal("residual add must fuse into the branch conv")
	}
	if fused == nil {
		t.Fatal("no conv carries the fused residual")
	}
	if !fused.FusedReLU {
		t.Fatal("the post-add relu must fuse into the same conv")
	}
	if len(fused.Inputs) != 2 || fused.Inputs[1] != fused.FusedResidual {
		t.Fatal("residual must be the conv's second input")
	}
}

// TestFuseOpsDoubleConsumedConv: a convolution whose output feeds two
// readers must not absorb either of them — fusing would change the value the
// second reader sees. Regression test for the consumer-count check.
func TestFuseOpsDoubleConsumedConv(t *testing.T) {
	b := NewBuilder("dblcons", 3)
	x := b.Input(8, 16, 16)
	c := b.Conv(x, 16, 3, 1, 1)
	// c is read by the relu AND by the pool: neither may fuse into c.
	r := b.ReLU(c)
	p := b.MaxPool(c, 2, 2, 0)
	r = b.GlobalAvgPool(r)
	p = b.GlobalAvgPool(p)
	sum := b.Add(b.Flatten(r), b.Flatten(p))
	g := b.Finish(sum)
	if err := FuseOps(g); err != nil {
		t.Fatal(err)
	}
	conv := g.Convs()[0]
	if conv.FusedReLU || conv.FusedResidual != nil {
		t.Fatalf("double-consumed conv was fused: relu=%v residual=%v", conv.FusedReLU, conv.FusedResidual)
	}
	relus := 0
	for _, n := range g.Topo() {
		if n.Op == OpReLU {
			relus++
		}
	}
	if relus != 1 {
		t.Fatalf("standalone relu count = %d, want 1", relus)
	}
}

// TestFuseOpsResidualDoubleConsumed: an add whose conv operand is also read
// elsewhere must stay a standalone operator.
func TestFuseOpsResidualDoubleConsumed(t *testing.T) {
	b := NewBuilder("dblres", 3)
	x := b.Input(8, 16, 16)
	stem := b.ReLU(b.Conv(x, 16, 3, 1, 1))
	c := b.Conv(stem, 16, 3, 1, 1)
	sum := b.Add(c, stem)
	// Second reader of c: concat with the residual sum.
	cat := b.Concat(sum, c)
	out := b.GlobalAvgPool(cat)
	out = b.Flatten(out)
	g := b.Finish(b.Dense(out, 4))
	if err := FuseOps(g); err != nil {
		t.Fatal(err)
	}
	adds := 0
	for _, n := range g.Topo() {
		if n.Op == OpAdd {
			adds++
		}
		if n.IsConv() && n.FusedResidual != nil {
			t.Fatalf("conv %v absorbed the add despite a second reader of its output", n)
		}
	}
	if adds != 1 {
		t.Fatalf("adds = %d, want 1 (unfused)", adds)
	}
}

// TestFuseOpsKeepsExposedConv: a convolution that is itself a graph output
// has an invisible extra reader — the caller — so its relu must not fuse
// even though the consumer map shows exactly one consumer node.
func TestFuseOpsKeepsExposedConv(t *testing.T) {
	b := NewBuilder("exposed", 3)
	x := b.Input(8, 16, 16)
	c := b.Conv(x, 16, 3, 1, 1)
	r := b.ReLU(c)
	r = b.GlobalAvgPool(r)
	r = b.Flatten(r)
	g := b.Finish(b.Dense(r, 4), c)
	if err := FuseOps(g); err != nil {
		t.Fatal(err)
	}
	conv := g.Convs()[0]
	if conv.FusedReLU {
		t.Fatal("conv exposed as a graph output must keep its relu standalone: the caller observes the pre-activation value")
	}
}

func TestLivenessIntervalsAndLevels(t *testing.T) {
	g := tinyResNet()
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	order := g.Topo()
	lv := AnalyzeLiveness(g, order)
	// Every consumer edge must be inside the producer's live interval.
	for i, n := range order {
		for _, in := range n.Inputs {
			if lv.LastUse[lv.Index[in]] < i {
				t.Fatalf("%v reads %v after its last use", n, in)
			}
		}
		start, end := lv.Interval(i)
		if start != i || end < i {
			t.Fatalf("interval of %v = [%d,%d], def at %d", n, start, end, i)
		}
	}
	// Outputs are pinned to the end of the program.
	for _, o := range g.Outputs {
		oi := lv.Index[o]
		if !lv.Pinned[oi] || lv.LastUse[oi] != len(order)-1 {
			t.Fatalf("output %v not pinned (lastUse=%d)", o, lv.LastUse[oi])
		}
	}
	// Levels: each node's inputs live at strictly smaller depths, and the
	// level partition covers the program exactly once.
	seen := 0
	for d, level := range lv.Levels() {
		for _, i := range level {
			seen++
			if lv.Depth[i] != d {
				t.Fatalf("node %v at depth %d in level %d", order[i], lv.Depth[i], d)
			}
			for _, in := range order[i].Inputs {
				if lv.Depth[lv.Index[in]] >= d {
					t.Fatalf("%v depends on %v within or above its own level", order[i], in)
				}
			}
		}
	}
	if seen != len(order) {
		t.Fatalf("levels cover %d of %d nodes", seen, len(order))
	}
}

func TestLivenessResolvesAliases(t *testing.T) {
	// input -> conv -> dropout -> relu: the relu's read of the dropout must
	// extend the conv's lifetime (dropout forwards the conv's buffer).
	b := NewBuilder("alias", 3)
	x := b.Input(4, 8, 8)
	c := b.Conv(x, 8, 3, 1, 1)
	d := b.Dropout(c)
	r := b.ReLU(d)
	r = b.GlobalAvgPool(r)
	r = b.Flatten(r)
	g := b.Finish(b.Dense(r, 2))
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	order := g.Topo()
	lv := AnalyzeLiveness(g, order)
	var conv, relu *Node
	for _, n := range order {
		switch n.Op {
		case OpConv2D:
			conv = n
		case OpReLU:
			relu = n
		}
	}
	if lv.LastUse[lv.Index[conv]] < lv.Index[relu] {
		t.Fatalf("conv's last use %d precedes the relu at %d reading it through the dropout alias",
			lv.LastUse[lv.Index[conv]], lv.Index[relu])
	}
	found := false
	for _, c := range lv.Consumers[conv] {
		if c == relu {
			found = true
		}
	}
	if !found {
		t.Fatal("alias-resolved consumers must attribute the relu's read to the conv")
	}
}

func TestUniformPlanClampsToDivisors(t *testing.T) {
	b := NewBuilder("d", 5)
	x := b.Input(3, 16, 16) // 3 input channels: block must divide 3
	x = b.Conv(x, 16, 3, 1, 1)
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 2))
	plan := UniformPlan(g, 16, 8, true)
	conv := g.Convs()[0]
	s := plan[conv]
	if s.ICBlock != 3 {
		t.Fatalf("ic block = %d, want 3 (largest divisor of 3)", s.ICBlock)
	}
	if s.OCBlock != 16 {
		t.Fatalf("oc block = %d, want 16", s.OCBlock)
	}
}

func TestAlterOpLayoutEliminationReducesTransforms(t *testing.T) {
	mk := func() *Graph {
		g := tinyCNN()
		if err := Optimize(g); err != nil {
			t.Fatal(err)
		}
		return g
	}

	gElim := mk()
	if err := AlterOpLayout(gElim, UniformPlan(gElim, 8, 4, true), true); err != nil {
		t.Fatal(err)
	}
	gLib := mk()
	if err := AlterOpLayout(gLib, UniformPlan(gLib, 8, 4, true), false); err != nil {
		t.Fatal(err)
	}

	e, l := gElim.CountTransforms(), gLib.CountTransforms()
	if e >= l {
		t.Fatalf("elimination must reduce transforms: eliminated=%d library=%d", e, l)
	}
	// With elimination the blocked layout flows conv->pool->conv; only the
	// input transform remains (global pool emits NCHW).
	if e != 1 {
		t.Fatalf("eliminated graph transforms = %d, want 1", e)
	}
	// Library mode pays one in-transform per conv plus one out-transform per
	// conv (the first conv's in-transform comes straight from NCHW input).
	if l < 3 {
		t.Fatalf("library graph transforms = %d, want >= 3", l)
	}
}

func TestAlterOpLayoutMismatchedBlocksInsertTransform(t *testing.T) {
	b := NewBuilder("mm", 6)
	x := b.Input(8, 8, 8)
	c1 := b.Conv(x, 16, 3, 1, 1)
	c2 := b.Conv(c1, 16, 3, 1, 1)
	x = b.GlobalAvgPool(c2)
	x = b.Flatten(x)
	g := b.Finish(b.Dense(x, 2))

	plan := LayoutPlan{
		c1: {Layout: tensor.NCHWc(8), ICBlock: 8, OCBlock: 8, RegN: 4},
		c2: {Layout: tensor.NCHWc(4), ICBlock: 4, OCBlock: 4, RegN: 4},
	}
	if err := AlterOpLayout(g, plan, true); err != nil {
		t.Fatal(err)
	}
	// Input transform + rechunk between c1 (8c out) and c2 (4c in) = 2.
	if got := g.CountTransforms(); got != 2 {
		t.Fatalf("transforms = %d, want 2", got)
	}
	// Matching blocks need only the input transform.
	g2 := func() *Graph {
		b := NewBuilder("mm2", 6)
		x := b.Input(8, 8, 8)
		c1 := b.Conv(x, 16, 3, 1, 1)
		c2 := b.Conv(c1, 16, 3, 1, 1)
		x = b.GlobalAvgPool(c2)
		x = b.Flatten(x)
		return b.Finish(b.Dense(x, 2))
	}()
	if err := AlterOpLayout(g2, UniformPlan(g2, 8, 4, true), true); err != nil {
		t.Fatal(err)
	}
	if got := g2.CountTransforms(); got != 1 {
		t.Fatalf("uniform transforms = %d, want 1", got)
	}
}

func TestAlterOpLayoutResidualLayout(t *testing.T) {
	g := tinyResNet()
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	if err := AlterOpLayout(g, UniformPlan(g, 8, 4, true), true); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Topo() {
		if n.IsConv() && n.FusedResidual != nil {
			if !n.FusedResidual.OutLayout.Equal(n.OutLayout) {
				t.Fatalf("residual layout %v != conv output layout %v",
					n.FusedResidual.OutLayout, n.OutLayout)
			}
		}
	}
	// Graph output must be in a default (non-blocked) layout.
	out := g.Outputs[0]
	if out.OutLayout.IsBlocked() {
		t.Fatalf("graph output layout %v must not be blocked", out.OutLayout)
	}
}

func TestAlterOpLayoutNCHWPlanAddsNoTransforms(t *testing.T) {
	g := tinyCNN()
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	if err := AlterOpLayout(g, NCHWPlan(g), true); err != nil {
		t.Fatal(err)
	}
	if got := g.CountTransforms(); got != 0 {
		t.Fatalf("NCHW plan transforms = %d, want 0", got)
	}
}

func TestConvWorkloadFromNode(t *testing.T) {
	g := tinyCNN()
	conv := g.Convs()[0]
	wl := ConvWorkload(conv)
	want := machine.ConvWorkload{InC: 3, InH: 32, InW: 32, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if wl != want {
		t.Fatalf("workload = %+v, want %+v", wl, want)
	}
}

func TestComputeStats(t *testing.T) {
	g := tinyCNN()
	s := g.ComputeStats()
	if s.Convs != 2 {
		t.Fatalf("convs = %d", s.Convs)
	}
	if s.FLOPs <= 0 || s.Params <= 0 {
		t.Fatalf("stats empty: %+v", s)
	}
}

func TestClassify(t *testing.T) {
	if Classify(OpReLU) != LayoutOblivious || Classify(OpConcat) != LayoutOblivious {
		t.Fatal("relu/concat must be oblivious")
	}
	if Classify(OpConv2D) != LayoutTolerant || Classify(OpPool) != LayoutTolerant {
		t.Fatal("conv/pool must be tolerant")
	}
	if Classify(OpFlatten) != LayoutDependent || Classify(OpSSDHead) != LayoutDependent {
		t.Fatal("flatten/ssd must be dependent")
	}
}

func TestConcatBlockFallback(t *testing.T) {
	// Concat where one branch's channels are not divisible by the block
	// must fall back to NCHW inputs.
	b := NewBuilder("cc", 7)
	x := b.Input(8, 8, 8)
	c1 := b.Conv(x, 16, 3, 1, 1)
	c2 := b.Conv(x, 12, 3, 1, 1) // 12 % 8 != 0
	cat := b.Concat(c1, c2)
	g := b.Finish(b.Dense(b.Flatten(b.GlobalAvgPool(cat)), 2))

	plan := LayoutPlan{
		c1: {Layout: tensor.NCHWc(8), ICBlock: 8, OCBlock: 8, RegN: 4},
		c2: {Layout: tensor.NCHWc(4), ICBlock: 4, OCBlock: 4, RegN: 4},
	}
	if err := AlterOpLayout(g, plan, true); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Topo() {
		if n.Op == OpConcat {
			if n.OutLayout.Kind != tensor.LayoutNCHW {
				t.Fatalf("concat layout = %v, want NCHW fallback", n.OutLayout)
			}
		}
	}
}

func TestNHWCPlanEndToEnd(t *testing.T) {
	g := tinyCNN()
	if err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	plan := NHWCPlan(g)
	if err := AlterOpLayout(g, plan, true); err != nil {
		t.Fatal(err)
	}
	// Every conv runs channels-last; transforms appear around each conv
	// because the tolerant neighbours run in NCHW.
	for _, n := range g.Topo() {
		if n.IsConv() && n.OutLayout.Kind != tensor.LayoutNHWC {
			t.Fatalf("conv %v layout %v, want NHWC", n, n.OutLayout)
		}
	}
	if got := g.CountTransforms(); got < 2 {
		t.Fatalf("NHWC plan transforms = %d, want >= 2", got)
	}
}

func TestEliminateDeadNodes(t *testing.T) {
	g := tinyCNN()
	// Attach a dangling branch that no output reaches.
	orphan := &Node{Name: "orphan", Op: OpReLU, Inputs: []*Node{g.Input}}
	g.AddNode(orphan)
	orphan2 := &Node{Name: "orphan2", Op: OpReLU, Inputs: []*Node{orphan}}
	g.AddNode(orphan2)
	before := g.NumNodes()
	removed := EliminateDeadNodes(g)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if g.NumNodes() != before-2 {
		t.Fatalf("node count %d, want %d", g.NumNodes(), before-2)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Idempotent on a clean graph.
	if removed := EliminateDeadNodes(g); removed != 0 {
		t.Fatalf("second pass removed %d nodes", removed)
	}
}

// Package report regenerates every table and figure of the paper's
// evaluation section from the simulators in this repository. It is shared by
// cmd/neocpu-bench and by the benchmark harness in bench_test.go, and every
// function returns both structured data (for assertions) and a formatted
// text rendering (for humans).
package report

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/search"
)

// Table1 renders the feature-comparison matrix of Table 1.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Side-by-side comparison between NeoCPU and existing works\n\n")
	fmt.Fprintf(&b, "%-22s %-12s %-15s %-10s %-11s\n", "", "Op-level opt", "Graph-level opt", "Joint opt", "Open-source")
	rows := [][5]string{
		{"NeoCPU", "yes", "yes", "yes", "yes"},
		{"MXNet/TensorFlow", "3rd party", "limited", "no", "yes"},
		{"OpenVINO", "3rd party", "limited", "?", "no"},
		{"Original TVM", "incomplete", "yes", "no", "yes"},
		{"Glow", "single core", "yes", "no", "yes"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-12s %-15s %-10s %-11s\n", r[0], r[1], r[2], r[3], r[4])
	}
	return b.String()
}

// Table2Row is one model's simulated latencies across engines (milliseconds;
// 0 marks an unavailable engine).
type Table2Row struct {
	Model   string
	Display string
	// MS holds milliseconds per engine, in baselines.Engines() order.
	MS map[baselines.Engine]float64
	// Note is non-empty for footnoted entries (the OpenVINO SSD asterisk).
	Note string
}

// Table2 regenerates Table 2a/b/c for one target: all 15 models across all
// available engines at full core count.
func Table2(t *machine.Target) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range models.Names() {
		spec, err := models.Get(name)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Model: name, Display: spec.Display, MS: map[baselines.Engine]float64{}}
		for _, e := range baselines.Engines() {
			if !baselines.Available(e, t) {
				continue
			}
			p, err := baselines.Predict(e, name, t, 0)
			if err != nil {
				return nil, err
			}
			row.MS[e] = p.Seconds * 1000
		}
		if name == "ssd-resnet-50" && baselines.Available(baselines.EngineOpenVINO, t) {
			row.Note = "*OpenVINO does not measure the SSD multibox stage"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders Table 2 rows.
func FormatTable2(t *machine.Target, rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 (%s): simulated batch-1 latency, ms (%d cores, %v)\n\n", t.Name, t.Cores, t.ISA)
	fmt.Fprintf(&b, "%-16s", "Unit: ms")
	for _, e := range baselines.Engines() {
		if baselines.Available(e, t) {
			fmt.Fprintf(&b, " %12s", e)
		}
	}
	fmt.Fprintln(&b)
	var notes []string
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s", r.Display)
		for _, e := range baselines.Engines() {
			if !baselines.Available(e, t) {
				continue
			}
			ms := r.MS[e]
			mark := " "
			if best(r, t) == e {
				mark = "*"
			}
			_ = mark
			if r.Note != "" && e == baselines.EngineOpenVINO {
				fmt.Fprintf(&b, " %11.2f*", ms)
			} else {
				fmt.Fprintf(&b, " %12.2f", ms)
			}
		}
		fmt.Fprintln(&b)
		if r.Note != "" {
			notes = append(notes, r.Note)
		}
	}
	for _, n := range notes {
		fmt.Fprintf(&b, "\n(%s)\n", n)
	}
	return b.String()
}

// best returns the fastest engine for a row.
func best(r Table2Row, t *machine.Target) baselines.Engine {
	var bestE baselines.Engine
	bestMS := 0.0
	for _, e := range baselines.Engines() {
		ms, ok := r.MS[e]
		if !ok {
			continue
		}
		if bestE == "" || ms < bestMS {
			bestE, bestMS = e, ms
		}
	}
	return bestE
}

// Table3Row is one model's ablation: cumulative speedup over the NCHW
// baseline after each optimization stage (Table 3).
type Table3Row struct {
	Model         string
	BaselineMS    float64
	LayoutOpt     float64 // speedup after NCHW[x]c blocking
	TransformElim float64 // + graph-level transform elimination
	GlobalSearch  float64 // + optimization scheme search
}

// table3Models are the representatives the paper picks ("in each comparison
// we only pick one network from a network family").
var table3Models = []string{"resnet-50", "vgg-19", "densenet-201", "inception-v3", "ssd-resnet-50"}

// Table3 regenerates the ablation on the Intel Skylake target.
func Table3() ([]Table3Row, error) {
	t := machine.IntelSkylakeC5()
	var rows []Table3Row
	for _, name := range table3Models {
		spec, err := models.Get(name)
		if err != nil {
			return nil, err
		}
		lat := map[core.OptLevel]float64{}
		for _, level := range []core.OptLevel{core.OptNone, core.OptLayout, core.OptTransformElim, core.OptGlobalSearch} {
			// The ablation reproduces the paper's Table 3, which predates
			// the Winograd extension: all four rows run the direct template.
			opts := core.Options{Level: level, NoPrepack: true, DisableWinograd: true}
			if level == core.OptGlobalSearch {
				opts.Search = search.Options{
					MaxCands:  10,
					ForcePBQP: spec.UsePBQP,
					Threads:   t.Cores,
					Backend:   machine.BackendPool,
					DB:        core.SharedScheduleDB(t, t.Cores, machine.BackendPool),
				}
			}
			g, err := models.BuildShapeOnly(name)
			if err != nil {
				return nil, err
			}
			m, err := core.Compile(g, t, opts)
			if err != nil {
				return nil, fmt.Errorf("report: table3 %s/%v: %w", name, level, err)
			}
			lat[level] = m.PredictLatency(core.PredictConfig{})
		}
		rows = append(rows, Table3Row{
			Model:         spec.Display,
			BaselineMS:    lat[core.OptNone] * 1000,
			LayoutOpt:     lat[core.OptNone] / lat[core.OptLayout],
			TransformElim: lat[core.OptNone] / lat[core.OptTransformElim],
			GlobalSearch:  lat[core.OptNone] / lat[core.OptGlobalSearch],
		})
	}
	return rows, nil
}

// FormatTable3 renders the ablation table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: cumulative speedup over the NCHW baseline (Intel Skylake)\n\n")
	fmt.Fprintf(&b, "%-18s", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, " %14s", r.Model)
	}
	fmt.Fprintln(&b)
	line := func(label string, f func(Table3Row) float64) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, " %14.2f", f(r))
		}
		fmt.Fprintln(&b)
	}
	line("Baseline", func(Table3Row) float64 { return 1 })
	line("Layout Opt.", func(r Table3Row) float64 { return r.LayoutOpt })
	line("Transform Elim.", func(r Table3Row) float64 { return r.TransformElim })
	line("Global Search", func(r Table3Row) float64 { return r.GlobalSearch })
	return b.String()
}

// Figure4Series is one engine's throughput curve.
type Figure4Series struct {
	Label string
	// ImagesPerSec[i] is the throughput at i+1 threads.
	ImagesPerSec []float64
}

// Figure4Spec identifies one of the three scalability sub-figures.
type Figure4Spec struct {
	Name   string
	Model  string
	Target *machine.Target
}

// Figure4Specs returns the paper's three sub-figures.
func Figure4Specs() []Figure4Spec {
	return []Figure4Spec{
		{"figure4a", "resnet-50", machine.IntelSkylakeC5()},
		{"figure4b", "vgg-19", machine.AMDEpycM5a()},
		{"figure4c", "inception-v3", machine.ARMCortexA72()},
	}
}

// Figure4 regenerates one scalability sub-figure: throughput vs thread count
// for the library baselines, NeoCPU over OpenMP, and NeoCPU over its own
// thread pool.
func Figure4(spec Figure4Spec) ([]Figure4Series, error) {
	t := spec.Target
	var series []Figure4Series
	type variant struct {
		label   string
		engine  baselines.Engine
		backend machine.ThreadBackend
		useEng  bool // engine default backend
	}
	variants := []variant{
		{"MXNet", baselines.EngineMXNet, 0, true},
		{"TensorFlow", baselines.EngineTensorFlow, 0, true},
		{"OpenVINO", baselines.EngineOpenVINO, 0, true},
		{"NeoCPU w/ OMP", baselines.EngineNeoCPU, machine.BackendOMP, false},
		{"NeoCPU w/ thread pool", baselines.EngineNeoCPU, machine.BackendPool, false},
	}
	for _, v := range variants {
		if !baselines.Available(v.engine, t) {
			continue
		}
		s := Figure4Series{Label: v.label}
		for n := 1; n <= t.Cores; n++ {
			var p baselines.Prediction
			var err error
			if v.useEng {
				p, err = baselines.Predict(v.engine, spec.Model, t, n)
			} else {
				p, err = baselines.PredictWithBackend(v.engine, spec.Model, t, n, v.backend)
			}
			if err != nil {
				return nil, err
			}
			s.ImagesPerSec = append(s.ImagesPerSec, 1/p.Seconds)
		}
		series = append(series, s)
	}
	return series, nil
}

// FormatFigure4 renders the curves as a text table plus an ASCII chart.
func FormatFigure4(spec Figure4Spec, series []Figure4Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (%s): %s on %s — images/sec vs #threads\n\n", spec.Name, spec.Model, spec.Target.Name)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	fmt.Fprintln(&b)
	for n := 0; n < spec.Target.Cores; n++ {
		fmt.Fprintf(&b, "%-8d", n+1)
		for _, s := range series {
			fmt.Fprintf(&b, " %22.2f", s.ImagesPerSec[n])
		}
		fmt.Fprintln(&b)
	}
	b.WriteString("\n")
	b.WriteString(ChartFigure4(spec, series))
	return b.String()
}

// ChartFigure4 renders an ASCII line chart of the throughput curves: rows
// are throughput bands (top = max), columns are thread counts, and each
// series is drawn with its own marker.
func ChartFigure4(spec Figure4Spec, series []Figure4Series) string {
	const height = 16
	markers := []byte{'#', 'o', 'x', '+', '*'}
	maxV := 0.0
	for _, s := range series {
		for _, v := range s.ImagesPerSec {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		return ""
	}
	cols := spec.Target.Cores
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*2))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for n, v := range s.ImagesPerSec {
			row := height - 1 - int(v/maxV*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			grid[row][n*2] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.1f ┤", maxV)
	b.Write(grid[0])
	b.WriteString("\n")
	for r := 1; r < height; r++ {
		label := "        "
		if r == height-1 {
			label = fmt.Sprintf("%8.1f", 0.0)
		}
		fmt.Fprintf(&b, "%s ┤", label)
		b.Write(grid[r])
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "         └%s\n", strings.Repeat("─", cols*2))
	fmt.Fprintf(&b, "          1%sthreads%s%d\n", strings.Repeat(" ", max(0, cols-9)), strings.Repeat(" ", max(0, cols-9)), cols)
	for si, s := range series {
		fmt.Fprintf(&b, "          %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package report

import (
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/machine"
)

func TestTable1Static(t *testing.T) {
	s := Table1()
	for _, want := range []string{"NeoCPU", "OpenVINO", "Glow", "Joint opt"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table 1 missing %q", want)
		}
	}
}

func TestTable2AllTargets(t *testing.T) {
	for _, tgt := range machine.AllTargets() {
		rows, err := Table2(tgt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 15 {
			t.Fatalf("%s: rows = %d, want 15", tgt.Name, len(rows))
		}
		for _, r := range rows {
			if _, ok := r.MS[baselines.EngineNeoCPU]; !ok {
				t.Fatalf("%s/%s: missing NeoCPU entry", tgt.Name, r.Model)
			}
			if tgt.ISA == machine.NEON {
				if _, ok := r.MS[baselines.EngineOpenVINO]; ok {
					t.Fatalf("OpenVINO must be absent on ARM")
				}
			}
		}
		out := FormatTable2(tgt, rows)
		if !strings.Contains(out, "ResNet-50") || !strings.Contains(out, "Table 2") {
			t.Fatalf("%s: formatted table incomplete", tgt.Name)
		}
		if tgt.ISA != machine.NEON && !strings.Contains(out, "*") {
			t.Fatalf("%s: SSD asterisk missing", tgt.Name)
		}
	}
}

func TestTable2NeoCPUWinsARMCount(t *testing.T) {
	rows, err := Table2(machine.ARMCortexA72())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if best(r, machine.ARMCortexA72()) != baselines.EngineNeoCPU {
			t.Errorf("ARM %s: NeoCPU must be best", r.Model)
		}
	}
}

func TestTable3Bands(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		// Paper row 2 (Layout Opt.): 4.08-8.33x. Allow a wider simulator
		// band: DenseNet's many 1x1 convolutions are bandwidth-bound in the
		// machine model, which caps how much blocking can help them.
		if r.LayoutOpt < 2.5 || r.LayoutOpt > 10 {
			t.Errorf("%s: layout-opt speedup %.2f outside [2.5, 10]", r.Model, r.LayoutOpt)
		}
		// Rows must be cumulative and monotone.
		if !(r.TransformElim > r.LayoutOpt) {
			t.Errorf("%s: transform elimination (%.2f) must improve on layout opt (%.2f)",
				r.Model, r.TransformElim, r.LayoutOpt)
		}
		if r.GlobalSearch < r.TransformElim*0.999 {
			t.Errorf("%s: global search (%.2f) must not lose to transform elim (%.2f)",
				r.Model, r.GlobalSearch, r.TransformElim)
		}
		// Paper row 3 adds 1.1-1.5x over row 2.
		gain := r.TransformElim / r.LayoutOpt
		if gain < 1.02 || gain > 2 {
			t.Errorf("%s: transform-elim gain %.2f outside [1.02, 2]", r.Model, gain)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Global Search") {
		t.Fatal("formatted table 3 incomplete")
	}
}

func TestFigure4Shapes(t *testing.T) {
	for _, spec := range Figure4Specs() {
		series, err := Figure4(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantSeries := 5
		if spec.Target.ISA == machine.NEON {
			wantSeries = 4 // no OpenVINO
		}
		if len(series) != wantSeries {
			t.Fatalf("%s: series = %d, want %d", spec.Name, len(series), wantSeries)
		}
		var pool, omp Figure4Series
		for _, s := range series {
			if len(s.ImagesPerSec) != spec.Target.Cores {
				t.Fatalf("%s/%s: points = %d, want %d", spec.Name, s.Label, len(s.ImagesPerSec), spec.Target.Cores)
			}
			if strings.Contains(s.Label, "thread pool") {
				pool = s
			}
			if strings.Contains(s.Label, "OMP") {
				omp = s
			}
		}
		n := spec.Target.Cores - 1
		// The custom pool ends above NeoCPU-on-OMP, which ends above every
		// baseline (Figure 4's headline).
		if pool.ImagesPerSec[n] <= omp.ImagesPerSec[n] {
			t.Errorf("%s: pool (%.1f) must beat OMP (%.1f) at full threads",
				spec.Name, pool.ImagesPerSec[n], omp.ImagesPerSec[n])
		}
		for _, s := range series {
			if s.Label == pool.Label || s.Label == omp.Label {
				continue
			}
			if s.ImagesPerSec[n] >= omp.ImagesPerSec[n] {
				t.Errorf("%s: baseline %s (%.1f) should trail NeoCPU w/ OMP (%.1f)",
					spec.Name, s.Label, s.ImagesPerSec[n], omp.ImagesPerSec[n])
			}
		}
		// Monotone-ish growth for the pool curve.
		if pool.ImagesPerSec[n] <= pool.ImagesPerSec[0] {
			t.Errorf("%s: pool curve does not scale", spec.Name)
		}
		out := FormatFigure4(spec, series)
		if !strings.Contains(out, "images/sec") {
			t.Fatal("formatted figure incomplete")
		}
	}
}

func TestFigure4MXNetARMPlateau(t *testing.T) {
	// Figure 4c: MXNet/OpenBlas stops scaling on ARM.
	spec := Figure4Specs()[2]
	series, err := Figure4(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Label != "MXNet" {
			continue
		}
		last := s.ImagesPerSec[len(s.ImagesPerSec)-1]
		mid := s.ImagesPerSec[8]
		if last > mid*1.02 {
			t.Errorf("MXNet on ARM should plateau: t9=%.2f t16=%.2f", mid, last)
		}
	}
}

package threadpool

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolCoversAllIndicesExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 64, 1000, 1001} {
		counts := make([]atomic.Int32, n)
		p.ParallelFor(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, got)
			}
		}
	}
}

func TestOMPPoolCoversAllIndicesExactlyOnce(t *testing.T) {
	o := NewOMPPool(4)
	for _, n := range []int{0, 1, 3, 4, 5, 100, 101} {
		counts := make([]atomic.Int32, n)
		o.ParallelFor(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, got)
			}
		}
	}
}

func TestSerialCoversAll(t *testing.T) {
	var sum int
	Serial(10, func(i int) { sum += i })
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestPoolSingleThread(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if p.Threads() != 1 {
		t.Fatalf("Threads = %d, want 1", p.Threads())
	}
	var sum int
	p.ParallelFor(100, func(i int) { sum += i }) // must run inline: no race
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestPoolWidths(t *testing.T) {
	// Oversubscription beyond GOMAXPROCS is allowed (the workers are real
	// even on a small host), and non-positive widths clamp to 1.
	p := NewPool(8)
	defer p.Close()
	if p.Threads() != 8 {
		t.Fatalf("Threads = %d, want 8", p.Threads())
	}
	if q := NewPool(-3); q.Threads() != 1 {
		t.Fatalf("negative thread count should clamp to 1, got %d", q.Threads())
	}
}

func TestPoolReusableAcrossRegions(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	for region := 0; region < 200; region++ {
		p.ParallelFor(17, func(i int) { total.Add(1) })
	}
	if total.Load() != 200*17 {
		t.Fatalf("total = %d, want %d", total.Load(), 200*17)
	}
}

// TestPoolNestedSubmissionRunsInline is the regression test for the nested
// -submission hazard: a ParallelFor issued from inside a worker's body (a
// kernel's chunk loop under an inter-op or hybrid level, or any re-entrant
// caller) must degrade to an inline serial loop instead of deadlocking on
// the pool's own join. Every index of every nesting level still runs
// exactly once.
func TestPoolNestedSubmissionRunsInline(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	outer, inner := 8, 16
	counts := make([]atomic.Int32, outer*inner)
	p.ParallelFor(outer, func(i int) {
		p.ParallelFor(inner, func(j int) {
			counts[i*inner+j].Add(1)
		})
	})
	for k := range counts {
		if got := counts[k].Load(); got != 1 {
			t.Fatalf("nested index %d executed %d times", k, got)
		}
	}
	// Three levels deep, for good measure — the TryLock fallback must hold
	// at any depth.
	var total atomic.Int64
	p.ParallelFor(3, func(int) {
		p.ParallelFor(3, func(int) {
			p.ParallelFor(3, func(int) { total.Add(1) })
		})
	})
	if total.Load() != 27 {
		t.Fatalf("triple nesting ran %d bodies, want 27", total.Load())
	}
}

// TestPoolConcurrentSubmitters: two goroutines racing to submit regions must
// both make progress (the loser runs inline) and both cover every index.
func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const submitters, n, rounds = 4, 64, 50
	var total atomic.Int64
	done := make(chan struct{})
	for s := 0; s < submitters; s++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for r := 0; r < rounds; r++ {
				p.ParallelFor(n, func(int) { total.Add(1) })
			}
		}()
	}
	for s := 0; s < submitters; s++ {
		<-done
	}
	if total.Load() != submitters*n*rounds {
		t.Fatalf("concurrent submitters ran %d bodies, want %d", total.Load(), submitters*n*rounds)
	}
}

func TestPoolPanicPropagation(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic to propagate")
			}
			if !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic message lost: %v", r)
			}
		}()
		p.ParallelFor(100, func(i int) {
			if i == 57 {
				panic("boom")
			}
		})
	}()
	// Pool must remain usable after a panic.
	var n atomic.Int64
	p.ParallelFor(50, func(i int) { n.Add(1) })
	if n.Load() != 50 {
		t.Fatalf("pool broken after panic: %d", n.Load())
	}
}

func TestOMPPoolPanicPropagation(t *testing.T) {
	p := NewOMPPool(4)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic to propagate to the submitter")
			}
			if !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic message lost: %v", r)
			}
		}()
		p.ParallelFor(100, func(i int) {
			if i == 57 {
				panic("boom")
			}
		})
	}()
	// The runtime must remain usable after a panic.
	var n atomic.Int64
	p.ParallelFor(50, func(i int) { n.Add(1) })
	if n.Load() != 50 {
		t.Fatalf("OMP pool broken after panic: %d", n.Load())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ParallelFor after Close must panic")
			}
		}()
		p.ParallelFor(4, func(int) {})
	}()
}

func TestPoolStaticPartitionIsContiguous(t *testing.T) {
	// Record which goroutine ran each index; each runner's set must be one
	// contiguous range (static partitioning, not work stealing).
	p := NewPool(4)
	defer p.Close()
	if p.Threads() < 2 {
		t.Skip("needs >= 2 threads")
	}
	n := 100
	owner := make([]int64, n)
	var tag atomic.Int64
	tls := make(map[int64]bool)
	_ = tls
	p.ParallelFor(n, func(i int) {
		// Identify the executing goroutine by a per-chunk tag: indexes run
		// in order within a chunk, so detect chunk starts by tagging.
		owner[i] = tag.Add(1)
	})
	// Weak but deterministic invariant: every index executed (owner tag set).
	seen := map[int64]bool{}
	for i := range owner {
		if owner[i] == 0 {
			t.Fatalf("index %d never ran", i)
		}
		if seen[owner[i]] {
			t.Fatalf("tag %d reused", owner[i])
		}
		seen[owner[i]] = true
	}
}

func TestQuickPoolMatchesSerialSum(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	f := func(nRaw uint16) bool {
		n := int(nRaw % 4096)
		var parallel atomic.Int64
		p.ParallelFor(n, func(i int) { parallel.Add(int64(i * i)) })
		var serial int64
		for i := 0; i < n; i++ {
			serial += int64(i * i)
		}
		return parallel.Load() == serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOMPPoolThreads(t *testing.T) {
	if NewOMPPool(6).Threads() != 6 {
		t.Fatal("OMP thread count wrong")
	}
	if NewOMPPool(0).Threads() != 1 {
		t.Fatal("OMP must clamp to 1")
	}
}

func TestPoolConcurrentMutation(t *testing.T) {
	// Workers write disjoint slices: results must match serial execution
	// bit-for-bit.
	p := NewPool(runtime.GOMAXPROCS(0))
	defer p.Close()
	n := 1 << 16
	got := make([]float64, n)
	p.ParallelFor(n, func(i int) { got[i] = float64(i) * 1.5 })
	for i := range got {
		if got[i] != float64(i)*1.5 {
			t.Fatalf("got[%d] = %v", i, got[i])
		}
	}
}

// Package threadpool implements the two multi-threading runtimes compared in
// Section 3.1.2 and Figure 4 of the paper:
//
//   - Pool is NeoCPU's customized thread pool: long-lived workers, static
//     partitioning of the outermost loop into per-worker contiguous ranges,
//     single-producer/single-consumer task handoff to each worker, an
//     atomics-based spin join, and cache-line padding on the shared
//     coordination state to avoid false sharing.
//
//   - OMPPool models an OpenMP parallel-for: a fresh team of workers is
//     launched for every parallel region and joined through a central
//     barrier, paying thread launch and suppression costs per region.
//
// Both satisfy the ops.ParallelFor contract via their ParallelFor methods.
package threadpool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one statically-partitioned slice of a parallel region.
type task struct {
	body       func(i int)
	start, end int
}

// worker is one long-lived pool worker with its own SPSC task queue. The pad
// fields keep each worker's hot state on distinct cache lines, mirroring the
// paper's cache-line padding of the lock-free queues.
type worker struct {
	_     [64]byte
	tasks chan task // SPSC: only the pool submits, only this worker receives
	_     [64]byte
}

// Pool is the customized thread pool. The zero value is not usable; call
// NewPool. The calling goroutine participates in every region as the first
// "thread", so NewPool(n) creates n-1 workers.
type Pool struct {
	workers []*worker
	// pending counts unfinished worker tasks of the current region; the
	// submitter spin-joins on it (C++11-atomics style fork-join).
	pending atomic.Int64
	_       [64]byte
	// panicVal records the first panic observed in a worker so it can be
	// re-raised on the submitting goroutine.
	panicVal atomic.Pointer[panicBox]
	closed   atomic.Bool
	// mu serializes ParallelFor submissions. Acquisition is TryLock-based:
	// a ParallelFor that finds a region already active — a nested call from
	// inside a worker's chunk, or a concurrent session sharing the pool —
	// runs its whole loop inline on the calling goroutine instead of
	// queueing. Nested submissions therefore can never deadlock (a worker
	// blocking on the region it is part of), and concurrent submitters
	// degrade to serial progress rather than stalls.
	mu sync.Mutex
}

// NewPool creates a pool that runs parallel regions over n threads (the
// caller plus n-1 workers). Widths beyond GOMAXPROCS are allowed — like
// OpenMP, the pool may be oversubscribed; it simply will not speed anything
// up past the physical core count.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{}
	p.workers = make([]*worker, n-1)
	for i := range p.workers {
		w := &worker{tasks: make(chan task, 1)}
		p.workers[i] = w
		go p.run(w)
	}
	return p
}

// Threads returns the region width (including the calling goroutine).
func (p *Pool) Threads() int { return len(p.workers) + 1 }

func (p *Pool) run(w *worker) {
	for t := range w.tasks {
		p.exec(t)
		p.pending.Add(-1)
	}
}

func (p *Pool) exec(t task) {
	defer func() {
		if r := recover(); r != nil {
			p.panicVal.CompareAndSwap(nil, &panicBox{r})
		}
	}()
	for i := t.start; i < t.end; i++ {
		t.body(i)
	}
}

type panicBox struct{ v any }

// ParallelFor runs body(i) for every i in [0, n), statically partitioned
// into Threads() contiguous chunks (the paper: "we evenly divided the
// outermost loop of the operation into N pieces to assign to N threads").
// It returns when every index has been processed. A panic in any chunk is
// re-raised on the caller after the region completes.
//
// ParallelFor is re-entrant: a call made while another region is active on
// the same pool — from inside a worker's own chunk (nested parallelism), or
// from a different goroutine sharing the pool — executes its loop inline on
// the calling goroutine. One region at a time owns the workers; everyone
// else makes serial progress instead of blocking, so nesting can never
// deadlock and hybrid executors can let concurrent submitters race for the
// pool safely.
func (p *Pool) ParallelFor(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if p.closed.Load() {
		panic("threadpool: ParallelFor on closed Pool")
	}
	threads := p.Threads()
	if threads == 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if !p.mu.TryLock() {
		// A region is already in flight. Blocking here would deadlock when
		// the caller IS one of that region's goroutines (a kernel invoking
		// nested ParallelFor from a worker chunk), so run inline instead.
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	defer p.mu.Unlock()

	chunk := (n + threads - 1) / threads
	// Hand each worker its contiguous range through its SPSC queue.
	active := int64(0)
	for w := 0; w < len(p.workers); w++ {
		start := (w + 1) * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		active++
		p.pending.Add(1)
		p.workers[w].tasks <- task{body: body, start: start, end: end}
	}

	// The caller executes chunk 0 itself.
	first := chunk
	if first > n {
		first = n
	}
	p.exec(task{body: body, start: 0, end: first})

	// Spin join: workers signal completion by decrementing the atomic
	// counter; no locks or condition variables on the fast path.
	for spins := 0; p.pending.Load() != 0; spins++ {
		if spins < 64 {
			continue // busy spin
		}
		runtime.Gosched()
	}

	if pv := p.panicVal.Swap(nil); pv != nil {
		panic(fmt.Sprintf("threadpool: panic in parallel region: %v", pv.v))
	}
}

// Close shuts down the workers. The pool must not be used afterwards.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for _, w := range p.workers {
		close(w.tasks)
	}
}

// OMPPool models OpenMP's parallel-for execution: every region forks a fresh
// team of goroutines and joins them through a central WaitGroup barrier.
// Static scheduling with one contiguous chunk per thread matches the
// environment-variable configuration used in the paper's comparison
// (Section 4.2.4).
type OMPPool struct {
	threads int
	closed  atomic.Bool
}

// Close marks the runtime shut down. OMP-style teams are forked per region,
// so there are no long-lived workers to reap, but Close gives OMPPool the
// same lifecycle contract as Pool: owners release both uniformly and
// use-after-close is caught instead of silently forking new teams.
func (o *OMPPool) Close() {
	o.closed.Store(true)
}

// NewOMPPool creates an OpenMP-style runtime with the given team width.
func NewOMPPool(n int) *OMPPool {
	if n < 1 {
		n = 1
	}
	return &OMPPool{threads: n}
}

// Threads returns the team width.
func (o *OMPPool) Threads() int { return o.threads }

// ParallelFor runs body over [0, n) with a freshly launched team, paying the
// fork/join overhead that the custom pool avoids. Like Pool.ParallelFor, a
// panic in any team member is re-raised on the caller after the region
// completes — a kernel panic must reach the submitting goroutine's recovery
// boundary, never kill the process from an anonymous worker.
func (o *OMPPool) ParallelFor(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if o.closed.Load() {
		panic("threadpool: ParallelFor on closed OMPPool")
	}
	if o.threads == 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	chunk := (n + o.threads - 1) / o.threads
	var wg sync.WaitGroup
	var panicked atomic.Pointer[panicBox]
	for t := 0; t < o.threads; t++ {
		start := t * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicBox{r})
				}
			}()
			for i := start; i < end; i++ {
				body(i)
			}
		}(start, end)
	}
	wg.Wait()
	if pv := panicked.Swap(nil); pv != nil {
		panic(fmt.Sprintf("threadpool: panic in parallel region: %v", pv.v))
	}
}

// Serial runs body on the calling goroutine; it is the 1-thread backend.
func Serial(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

package machine

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestGroupedWorkloadAccounting pins the grouped workload arithmetic: FLOPs
// and weight bytes shrink by the group count, dense keys stay stable, grouped
// keys are distinct, and winograd is gated off.
func TestGroupedWorkloadAccounting(t *testing.T) {
	dense := ConvWorkload{InC: 32, InH: 14, InW: 14, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	dw := dense
	dw.Groups = 32

	if got, want := dw.FLOPs(), dense.FLOPs()/32; got != want {
		t.Fatalf("depthwise FLOPs = %g, want dense/32 = %g", got, want)
	}
	if !dw.Depthwise() {
		t.Fatal("Groups == InC == OutC must classify as depthwise")
	}
	if dense.Depthwise() || dense.GroupCount() != 1 {
		t.Fatal("dense workload misclassified")
	}
	if dw.Bytes() >= dense.Bytes() {
		t.Fatal("depthwise weight bytes must shrink")
	}
	if strings.Contains(dense.Key(), "-g") {
		t.Fatalf("dense key %q must not carry a group suffix (schedule DBs would be invalidated)", dense.Key())
	}
	if !strings.HasSuffix(dw.Key(), "-g32") {
		t.Fatalf("depthwise key %q must carry the group suffix", dw.Key())
	}
	if dense.Key() == dw.Key() {
		t.Fatal("dense and depthwise workloads must not collide in the schedule DB")
	}
	if dw.WinogradViable() {
		t.Fatal("winograd must not be viable on depthwise workloads")
	}
	grouped := dense
	grouped.Groups = 4
	if grouped.WinogradViable() {
		t.Fatal("winograd must not be viable on grouped workloads")
	}
	if !dense.WinogradViable() {
		t.Fatal("dense 3x3 stride-1 control must stay winograd-viable")
	}
}

// TestDepthwiseConvTime checks the cost model prices the depthwise template
// sanely: positive, cheaper than the equivalent dense convolution (32x fewer
// FLOPs must show through even at depthwise's lower efficiency ceiling), and
// never below the memory floor.
func TestDepthwiseConvTime(t *testing.T) {
	tgt := IntelSkylakeC5()
	dense := ConvWorkload{InC: 128, InH: 28, InW: 28, OutC: 128, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	dw := dense
	dw.Groups = 128
	s := ConvSchedule{Layout: tensor.NCHWc(16), ICBlock: 16, OCBlock: 16, RegN: 16, UnrollKer: true}

	td := tgt.ConvTime(dense, s, 1, BackendSerial, 1)
	tw := tgt.ConvTime(dw, s, 1, BackendSerial, 1)
	if tw <= 0 || td <= 0 {
		t.Fatalf("non-positive times: dense %g, depthwise %g", td, tw)
	}
	if tw >= td {
		t.Fatalf("depthwise (%g s) must be cheaper than dense (%g s)", tw, td)
	}
	floor := dw.Bytes() / (tgt.MemBWGBs * 1e9)
	if tw < floor {
		t.Fatalf("depthwise time %g below raw bandwidth floor %g", tw, floor)
	}
	// Int8 pricing must also flow through the grouped accounting.
	ti := tgt.Int8ConvTime(dw, s, 1, BackendSerial, 1)
	if ti <= 0 || ti >= td {
		t.Fatalf("int8 depthwise time %g out of range (dense fp32 %g)", ti, td)
	}
}

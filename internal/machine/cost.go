package machine

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvWorkload identifies a convolution workload the way the paper's schedule
// database does: by feature-map and kernel geometry (Section 3.3.1). Batch
// size is always 1 for latency experiments (Section 4).
type ConvWorkload struct {
	InC, InH, InW    int // input channels and spatial size
	OutC, KH, KW     int // kernels
	StrideH, StrideW int
	PadH, PadW       int
	// Groups partitions the channels (0 or 1 = dense; InC = depthwise). Each
	// output channel reduces over InC/Groups inputs, so FLOPs and weight
	// bytes shrink by the group count.
	Groups int
}

// GroupCount normalizes the Groups field: the zero value means one dense
// group.
func (w ConvWorkload) GroupCount() int {
	if w.Groups <= 1 {
		return 1
	}
	return w.Groups
}

// Depthwise reports whether the workload is a depthwise convolution: one
// group per input channel, channel multiplier 1.
func (w ConvWorkload) Depthwise() bool {
	return w.GroupCount() > 1 && w.Groups == w.InC && w.OutC == w.InC
}

// OutH returns the output feature-map height.
func (w ConvWorkload) OutH() int { return (w.InH+2*w.PadH-w.KH)/w.StrideH + 1 }

// OutW returns the output feature-map width.
func (w ConvWorkload) OutW() int { return (w.InW+2*w.PadW-w.KW)/w.StrideW + 1 }

// FLOPs returns the floating-point operation count (multiply and add counted
// separately) of a direct convolution.
func (w ConvWorkload) FLOPs() float64 {
	return 2 * float64(w.OutH()) * float64(w.OutW()) * float64(w.OutC) *
		float64(w.InC/w.GroupCount()) * float64(w.KH) * float64(w.KW)
}

// Bytes returns the minimum bytes touched: input + weights + output, fp32.
func (w ConvWorkload) Bytes() float64 {
	in := float64(w.InC * w.InH * w.InW * 4)
	wt := float64(w.OutC * (w.InC / w.GroupCount()) * w.KH * w.KW * 4)
	out := float64(w.OutC*w.OutH()*w.OutW()) * 4
	return in + wt + out
}

// Key returns the database key for this workload (Section 3.3.1: "defined by
// the feature map and convolution kernel sizes"). Dense workloads keep their
// pre-groups key so existing schedule databases stay valid.
func (w ConvWorkload) Key() string {
	k := fmt.Sprintf("c%dx%dx%d-k%dx%dx%d-s%dx%d-p%dx%d",
		w.InC, w.InH, w.InW, w.OutC, w.KH, w.KW, w.StrideH, w.StrideW, w.PadH, w.PadW)
	if g := w.GroupCount(); g > 1 {
		k += fmt.Sprintf("-g%d", g)
	}
	return k
}

// ValidateBlocks checks a blocked (NCHW[x]c) schedule's channel-block pair
// against this workload's grouping — the single source of truth shared by
// AlterOpLayout (compile-time scheme validation) and plan loading:
//
//   - depthwise: one shared block on both sides (output lane v of a channel
//     block reads input lane v of the same block), dividing the channel count;
//   - grouped and dense (one group): ic_bn divides in_channels/groups and
//     oc_bn divides out_channels/groups, so blocks never straddle a group.
func (w ConvWorkload) ValidateBlocks(s ConvSchedule) error {
	if w.Depthwise() {
		if s.ICBlock != s.OCBlock {
			return fmt.Errorf("depthwise schedules require ic_bn == oc_bn, got (%d,%d)", s.ICBlock, s.OCBlock)
		}
		if s.ICBlock <= 0 || w.InC%s.ICBlock != 0 {
			return fmt.Errorf("depthwise block %d does not divide channels %d", s.ICBlock, w.InC)
		}
		return nil
	}
	g := w.GroupCount()
	if s.ICBlock <= 0 || (w.InC/g)%s.ICBlock != 0 || s.OCBlock <= 0 || (w.OutC/g)%s.OCBlock != 0 {
		return fmt.Errorf("blocks (%d,%d) do not divide per-group channels (%d,%d)",
			s.ICBlock, s.OCBlock, w.InC/g, w.OutC/g)
	}
	return nil
}

// ConvAlgorithm selects the convolution computation algorithm of a schedule.
// The paper's Section 6 names "extending to other convolution computation
// algorithms such as Winograd" as future work; here the algorithm is one more
// searched dimension of the optimization scheme.
type ConvAlgorithm int

const (
	// AlgoDirect is the Algorithm-1 direct template (the default; the zero
	// value so pre-existing schedules and serialized plans mean direct).
	AlgoDirect ConvAlgorithm = iota
	// AlgoWinograd is the F(2x2, 3x3) Winograd algorithm: 2.25x fewer
	// multiplies, paid for with per-tile data and inverse transforms.
	AlgoWinograd
)

func (a ConvAlgorithm) String() string {
	if a == AlgoWinograd {
		return "winograd"
	}
	return "direct"
}

// WinogradSupported reports whether the F(2x2, 3x3) Winograd algorithm can
// compute a convolution with the given kernel and stride: 3x3 kernels at
// stride 1 only (any padding).
func WinogradSupported(kh, kw, strideH, strideW int) bool {
	return kh == 3 && kw == 3 && strideH == 1 && strideW == 1
}

// WinogradViable reports whether the Winograd algorithm applies to this
// workload: 3x3 stride-1 dense convolutions only. Grouped and depthwise
// convolutions are excluded — the F(2,3) kernel reduces over all input
// channels, and a per-group transform domain would forfeit the amortization
// the algorithm's saving depends on. The search only emits winograd
// candidates for viable workloads, and plan loading rejects winograd entries
// on non-viable convolutions.
func (w ConvWorkload) WinogradViable() bool {
	return WinogradSupported(w.KH, w.KW, w.StrideH, w.StrideW) && w.GroupCount() == 1
}

// ConvSchedule is the optimization-scheme tuple of Section 3.3:
// (ic_bn, oc_bn, reg_n, unroll_ker), plus the data layout the convolution
// executes in and the convolution algorithm (direct or winograd). For
// NCHW/NHWC layouts the blocking fields are ignored; for winograd schedules
// reg_n and unroll_ker are ignored (the kernel's tiling is fixed at 2x2).
type ConvSchedule struct {
	Layout    tensor.Layout // activation layout (NCHW, NHWC or NCHWc)
	ICBlock   int           // ic_bn: input-channel split factor x
	OCBlock   int           // oc_bn: output-channel split factor y
	RegN      int           // reg_n: register-blocking width along out_width
	UnrollKer bool          // unroll_ker: unroll the kernel-entry loop
	Algorithm ConvAlgorithm // convolution algorithm (direct or winograd)
	// Grain is the parallel chunk size: how many outermost work units (output
	// rows for the direct template, tile rows for winograd) one thread-pool
	// work item covers. 0 and 1 both mean one unit per item — the historical
	// behavior, and what absent fields in serialized plans decode to. Larger
	// grains amortize dispatch overhead at the price of static-partitioning
	// imbalance; the searcher picks the grain jointly with the block sizes.
	Grain int
}

func (s ConvSchedule) String() string {
	if s.Layout.Kind != tensor.LayoutNCHWc {
		return fmt.Sprintf("{%v}", s.Layout)
	}
	grain := ""
	if s.Grain > 1 {
		grain = fmt.Sprintf(" grain=%d", s.Grain)
	}
	if s.Algorithm == AlgoWinograd {
		return fmt.Sprintf("{winograd ic_bn=%d oc_bn=%d%s}", s.ICBlock, s.OCBlock, grain)
	}
	return fmt.Sprintf("{ic_bn=%d oc_bn=%d reg_n=%d unroll=%v%s}", s.ICBlock, s.OCBlock, s.RegN, s.UnrollKer, grain)
}

// Cost-model tuning constants. These are calibrated once against the paper's
// hardware (see machine calibration tests) and shared by every experiment;
// they are not fit per-model.
const (
	// peakFractionDirect is the fraction of peak FLOPS a perfectly scheduled
	// direct convolution reaches (cache misses, prologue/epilogue, address
	// arithmetic keep it below 1).
	peakFractionDirect = 0.52
	// layoutFactorNCHW is the relative kernel efficiency of a plain NCHW
	// direct convolution: the innermost width dimension is vectorizable but
	// accumulating across in-channels walks large strides, defeating both
	// the FMA pipeline and the cache (Section 4.2.1 measures 4-8x).
	layoutFactorNCHW = 0.135
	// layoutFactorNHWC is the relative efficiency of channels-last direct
	// convolution: unit-stride channel access vectorizes, but per-pixel
	// weight reuse is poor without blocking.
	layoutFactorNHWC = 0.24
	// bwEfficiency is the achievable fraction of peak memory bandwidth for
	// streaming layout transforms and element-wise operators.
	bwEfficiency = 0.65
	// spillPenalty is the throughput factor once the schedule needs more
	// accumulators than architectural vector registers.
	spillPenalty = 0.42

	// winogradMulSaving is F(2x2,3x3)'s 36 -> 16 multiply reduction per tile.
	winogradMulSaving = 2.25
	// peakFractionWinograd is the peak fraction the transform-domain products
	// reach: slightly below the direct template because the 16 component
	// accumulators are scattered rather than one contiguous register tile.
	peakFractionWinograd = 0.46
	// winogradAccumRegs is the transform-domain accumulator count per tile
	// (one vector per Winograd component); like reg_n for the direct
	// template, these must fit the register file or the kernel spills.
	winogradAccumRegs = 16
	// winogradXformOpsIn / winogradXformOpsOut are the scalar add-ops of the
	// data transform Bᵀ d B per (tile, in-channel) and the inverse transform
	// Aᵀ M A per (tile, out-channel). The weight transform G g Gᵀ runs at
	// compile time and is free here.
	winogradXformOpsIn  = 32
	winogradXformOpsOut = 24
	// winogradXformLaneEff is the fraction of vector lanes the strided
	// transform gather/scatter loops keep busy.
	winogradXformLaneEff = 0.45
	// winogradInvalidSeconds prices a winograd schedule on a workload the
	// algorithm cannot compute (non-3x3 or strided): large enough that no
	// search keeps it, finite so solver arithmetic never produces NaN.
	winogradInvalidSeconds = 1e6

	// peakFractionDepthwise is the peak fraction of the depthwise template:
	// every lane-wise FMA consumes a fresh input vector — there is no channel
	// reduction to amortize loads over, so the kernel is load-port bound well
	// below the dense template's ceiling.
	peakFractionDepthwise = 0.34
	// groupedFragFactor penalizes grouped (1 < g < C) convolutions relative
	// to dense: per-group weight slabs fragment the streaming pattern and
	// shrink the reduction the register tile amortizes over.
	groupedFragFactor = 0.92

	// itemDispatchSeconds prices one thread-pool work item: the dispatch
	// closure call, unit-index decode and accumulator-tile setup. Grouping
	// `grain` units into a single item divides this cost by the grain, which
	// is the benefit the searched grain buys with partitioning imbalance. The
	// value is small enough that grain-1 predictions stay within the
	// calibration tolerances of the per-model cost tests.
	itemDispatchSeconds = 12e-9
)

// RegionOverhead returns the fork-join cost in seconds of launching one
// parallel region on the given backend with n worker threads. The custom
// thread pool hands tasks over SPSC lock-free queues and spin-joins; the
// OpenMP-style runtime wakes and suppresses its team through a central
// barrier, which costs more and grows faster with the team size
// (Section 4.2.4).
func RegionOverhead(backend ThreadBackend, threads int) float64 {
	if threads <= 1 {
		return 0
	}
	switch backend {
	case BackendPool:
		return 0.4e-6 + 0.03e-6*float64(threads)
	case BackendOMP:
		return 2.6e-6 + 0.34e-6*float64(threads)
	default:
		return 0
	}
}

// parallelUnits returns the number of independent work items a convolution
// exposes to the thread pool: the outermost OFMAP chunks of Algorithm 1 for
// the direct template, or the 2-row tile bands of the Winograd kernel (which
// amortizes each data transform across every output channel, so its parallel
// grain is per tile row rather than per output block).
func parallelUnits(wl ConvWorkload, s ConvSchedule) int {
	if s.Algorithm == AlgoWinograd && s.Layout.Kind == tensor.LayoutNCHWc {
		units := (wl.OutH() + 1) / 2
		if units < 1 {
			units = 1
		}
		return units
	}
	oc := wl.OutC
	ocb := s.OCBlock
	if s.Layout.Kind != tensor.LayoutNCHWc || ocb <= 0 {
		ocb = 1
	}
	units := (oc / ocb) * wl.OutH()
	if units < 1 {
		units = 1
	}
	return units
}

// ParallelEfficiency returns the fraction of linear speedup achievable when
// distributing `units` equal work items over `threads` threads: the load
// imbalance of static partitioning plus a per-thread coherence/bandwidth
// friction term. Equivalent to GrainedParallelEfficiency at grain 1.
func (t *Target) ParallelEfficiency(units, threads int) float64 {
	return t.GrainedParallelEfficiency(units, 1, threads)
}

// GrainedParallelEfficiency is ParallelEfficiency for chunked dispatch: the
// units are grouped `grain` to a work item before the pool's static
// partitioning, so the busiest thread processes ceil(chunks/threads) chunks of
// grain units each. Large grains coarsen the partition and raise imbalance —
// the cost the searched grain trades against per-item dispatch overhead. At
// grain 1 this reduces exactly to the historical per-unit model.
func (t *Target) GrainedParallelEfficiency(units, grain, threads int) float64 {
	if threads <= 1 {
		return 1
	}
	if threads > t.Cores {
		threads = t.Cores
	}
	if grain < 1 {
		grain = 1
	}
	if grain > units {
		grain = units
	}
	chunks := (units + grain - 1) / grain
	perThread := (chunks + threads - 1) / threads
	imbalance := float64(units) / float64(perThread*threads*grain)
	friction := 1 / (1 + 0.009*float64(threads-1))
	return imbalance * friction
}

// ConvEfficiency predicts the fraction of peak FLOPS a single-threaded
// direct convolution achieves under the given schedule. It encodes the
// schedule-quality criteria of Section 3.1.1:
//
//   - full vector lanes: oc_bn should be a multiple of the vector width;
//   - FMA latency hiding: reg_n accumulators must cover latency*throughput;
//   - no register spills: reg_n+2 registers must fit the register file;
//   - cache residence: the inner working set should fit L1 (or at least L2);
//   - tail waste: out_width should divide evenly by reg_n;
//   - unroll_ker helps small kernels and hurts very large unrolled bodies.
func (t *Target) ConvEfficiency(wl ConvWorkload, s ConvSchedule) float64 {
	switch s.Layout.Kind {
	case tensor.LayoutNCHW:
		return peakFractionDirect * layoutFactorNCHW
	case tensor.LayoutNHWC:
		return peakFractionDirect * layoutFactorNHWC
	case tensor.LayoutNCHWc:
		if s.Algorithm == AlgoWinograd {
			return t.winogradEfficiency(wl, s)
		}
		if wl.Depthwise() {
			return t.depthwiseEfficiency(wl, s)
		}
		// Grouped (and dense) convolutions use the blocked direct model
		// below: ic_bn is the per-group block, so the working-set and
		// lane-utilization terms carry over; only the fragmentation factor
		// differs.
	default:
		return peakFractionDirect * layoutFactorNCHW
	}

	// Vector lane utilization: the oc_bn sub-channels are what the kernel
	// broadcasts into lanes (Figure 1).
	lanes := t.VectorLanes
	var laneUtil float64
	switch {
	case s.OCBlock%lanes == 0:
		laneUtil = 1
	case s.OCBlock > lanes:
		// Full vectors plus a partial tail vector.
		full := s.OCBlock / lanes
		laneUtil = float64(s.OCBlock) / float64((full+1)*lanes)
	default:
		laneUtil = float64(s.OCBlock) / float64(lanes)
	}

	// FMA latency hiding: with fewer than latency*issue accumulators in
	// flight the FMA pipeline stalls proportionally.
	need := t.FMALatency * t.FMAPerCycle
	latHide := float64(s.RegN) / float64(need)
	if latHide > 1 {
		latHide = 1
	}
	if latHide < 0.2 {
		latHide = 0.2
	}

	// Register pressure: reg_n accumulators + 1 kernel vector + 1 input
	// broadcast (Algorithm 1 lines 10-17).
	pressure := 1.0
	if s.RegN+2 > t.NumVecRegs {
		pressure = spillPenalty
	}

	// Tail waste along out_width.
	ow := wl.OutW()
	tiles := (ow + s.RegN - 1) / s.RegN
	tail := float64(ow) / float64(tiles*s.RegN)

	// Cache residence of the inner block: one weight slab
	// (ic_bn*KH*KW*oc_bn), reg_n input positions and reg_n*oc_bn outputs.
	ws := 4 * (s.ICBlock*wl.KH*wl.KW*s.OCBlock +
		s.ICBlock*(s.RegN*wl.StrideW+wl.KW) +
		s.RegN*s.OCBlock)
	var cacheF float64
	switch {
	case ws <= t.L1DKB*1024:
		cacheF = 1
	case ws <= t.L2KB*1024:
		cacheF = 0.86
	default:
		cacheF = 0.58
	}

	// Very small channel blocks underuse the FMA broadcast operand.
	chanF := 1.0
	if s.ICBlock < 4 {
		chanF = 0.82
	}

	// unroll_ker reduces branch penalties for small kernel loops but bloats
	// the instruction stream for large ones (Section 3.3.1).
	unrollF := 1.0
	if s.UnrollKer {
		if wl.KH*wl.KW <= 9 {
			unrollF = 1.05
		} else {
			unrollF = 0.95
		}
	}

	groupF := 1.0
	if wl.GroupCount() > 1 {
		groupF = groupedFragFactor
	}

	return peakFractionDirect * laneUtil * latHide * pressure * tail * cacheF * chanF * unrollF * groupF
}

// depthwiseEfficiency is the blocked-schedule quality model for the depthwise
// template: the schedule knobs are the shared channel block (ic_bn == oc_bn),
// reg_n and unroll_ker, but there is no input-channel reduction — each
// lane-wise FMA loads its own input vector, so the ceiling sits at
// peakFractionDepthwise and the cache term covers only the tiny per-channel
// kernel slab plus the register tile.
func (t *Target) depthwiseEfficiency(wl ConvWorkload, s ConvSchedule) float64 {
	lanes := t.VectorLanes
	var laneUtil float64
	switch {
	case s.OCBlock%lanes == 0:
		laneUtil = 1
	case s.OCBlock > lanes:
		full := s.OCBlock / lanes
		laneUtil = float64(s.OCBlock) / float64((full+1)*lanes)
	default:
		laneUtil = float64(s.OCBlock) / float64(lanes)
	}

	need := t.FMALatency * t.FMAPerCycle
	latHide := float64(s.RegN) / float64(need)
	if latHide > 1 {
		latHide = 1
	}
	if latHide < 0.2 {
		latHide = 0.2
	}

	pressure := 1.0
	if s.RegN+2 > t.NumVecRegs {
		pressure = spillPenalty
	}

	ow := wl.OutW()
	tiles := (ow + s.RegN - 1) / s.RegN
	tail := float64(ow) / float64(tiles*s.RegN)

	// Working set: one kernel slab (KH*KW*bn), reg_n input positions and the
	// accumulator tile — per channel block, always L1-resident in practice.
	ws := 4 * (wl.KH*wl.KW*s.OCBlock +
		s.OCBlock*(s.RegN*wl.StrideW+wl.KW) +
		s.RegN*s.OCBlock)
	cacheF := 1.0
	if ws > t.L1DKB*1024 {
		cacheF = 0.86
	}

	unrollF := 1.0
	if s.UnrollKer && wl.KH*wl.KW <= 9 {
		unrollF = 1.05
	}

	return peakFractionDepthwise * laneUtil * latHide * pressure * tail * cacheF * unrollF
}

// winogradEfficiency is the blocked-schedule quality model for the Winograd
// kernel's transform-domain products. The knobs differ from the direct
// template: the tile shape is fixed at 2x2 (no reg_n), and the accumulator
// tile is the 16 Winograd components — wide enough to hide FMA latency on
// every target, but spilling on register files below 18 vector registers
// (AVX2's 16: the structural reason Winograd wins less there).
func (t *Target) winogradEfficiency(wl ConvWorkload, s ConvSchedule) float64 {
	lanes := t.VectorLanes
	var laneUtil float64
	switch {
	case s.OCBlock%lanes == 0:
		laneUtil = 1
	case s.OCBlock > lanes:
		full := s.OCBlock / lanes
		laneUtil = float64(s.OCBlock) / float64((full+1)*lanes)
	default:
		laneUtil = float64(s.OCBlock) / float64(lanes)
	}

	// 16 component accumulators + 1 U vector + 1 V broadcast in flight.
	pressure := 1.0
	if winogradAccumRegs+2 > t.NumVecRegs {
		pressure = spillPenalty
	}

	// Tail waste of the 2x2 output tiling on odd feature-map sizes.
	oh, ow := wl.OutH(), wl.OutW()
	tiles := ((oh + 1) / 2) * ((ow + 1) / 2)
	tail := float64(oh*ow) / float64(tiles*4)

	// Cache residence: the reduction streams the transformed weight slab
	// (16 components x in-channels x oc_bn) plus the V tiles (16 x
	// in-channels) per output block — a larger working set than the direct
	// template's one kernel slab.
	ws := 4 * (winogradAccumRegs*wl.InC*s.OCBlock + winogradAccumRegs*wl.InC + winogradAccumRegs*s.OCBlock)
	var cacheF float64
	switch {
	case ws <= t.L1DKB*1024:
		cacheF = 1
	case ws <= t.L2KB*1024:
		cacheF = 0.88
	default:
		cacheF = 0.6
	}

	chanF := 1.0
	if s.ICBlock < 4 {
		chanF = 0.82
	}
	return peakFractionWinograd * laneUtil * pressure * tail * cacheF * chanF
}

// winogradXformSeconds prices the per-inference data and inverse transforms:
// scalar-add heavy loops that vectorize over channels at partial lane
// utilization.
func (t *Target) winogradXformSeconds(wl ConvWorkload) float64 {
	tiles := float64(((wl.OutH() + 1) / 2) * ((wl.OutW() + 1) / 2))
	ops := tiles * (float64(wl.InC)*winogradXformOpsIn + float64(wl.OutC)*winogradXformOpsOut)
	return ops / (t.FreqGHz * 1e9 * float64(t.VectorLanes) * winogradXformLaneEff)
}

// ConvTime predicts the wall-clock seconds of one convolution under the
// given schedule, thread count and threading backend. kernelQuality scales
// the single-thread efficiency and models how well an engine's kernels are
// tuned for this target (1.0 = NeoCPU's searched template; vendor libraries
// pass <1 on foreign architectures).
func (t *Target) ConvTime(wl ConvWorkload, s ConvSchedule, threads int, backend ThreadBackend, kernelQuality float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > t.Cores {
		threads = t.Cores
	}
	winograd := s.Algorithm == AlgoWinograd && s.Layout.Kind == tensor.LayoutNCHWc
	if winograd && !wl.WinogradViable() {
		return winogradInvalidSeconds
	}
	eff := t.ConvEfficiency(wl, s) * kernelQuality
	if eff <= 0 {
		eff = 1e-4
	}
	flops := wl.FLOPs()
	if winograd {
		// 2.25x fewer multiplies in the transform domain, plus the per-tile
		// data and inverse transforms the saving pays for.
		flops = flops / winogradMulSaving
	}
	compute := flops / (t.PeakCoreGFLOPS() * 1e9 * eff)
	if winograd {
		kq := kernelQuality
		if kq <= 0 {
			kq = 1e-4
		}
		compute += t.winogradXformSeconds(wl) / kq
	}

	units := parallelUnits(wl, s)
	pe := t.GrainedParallelEfficiency(units, s.Grain, threads)
	par := compute/(float64(threads)*pe) + dispatchSeconds(units, s.Grain, threads)

	// Memory floor: a convolution can never run faster than streaming its
	// operands once.
	floor := wl.Bytes() / (t.MemBWGBs * 1e9 * bwEfficiency)
	if par < floor {
		par = floor
	}
	return par + RegionOverhead(backend, threads)
}

// dispatchSeconds prices the per-work-item overhead of a chunked parallel
// region: chunks items at itemDispatchSeconds each, spread across the threads
// that execute them.
func dispatchSeconds(units, grain, threads int) float64 {
	if units < 1 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	if threads < 1 {
		threads = 1
	}
	chunks := (units + grain - 1) / grain
	return float64(chunks) * itemDispatchSeconds / float64(threads)
}

// TransformTime predicts the seconds to execute a layout transformation over
// `elems` fp32 elements. Transforms are bandwidth-bound gather/scatter loops
// with imperfect streaming, so they cost more per byte than a pure copy.
func (t *Target) TransformTime(elems int, threads int, backend ThreadBackend) float64 {
	if elems <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	if threads > t.Cores {
		threads = t.Cores
	}
	bytes := float64(elems) * 4 * 2 // read + write
	// Strided access achieves a fraction of streaming bandwidth; extra
	// threads help until the bus saturates (~4 threads).
	effThreads := float64(threads)
	if effThreads > 4 {
		effThreads = 4
	}
	bw := t.MemBWGBs * 1e9 * bwEfficiency * (0.35 + 0.1625*effThreads)
	return bytes/bw + RegionOverhead(backend, threads)
}

// EltwiseTime predicts the seconds for a memory-bound element-wise operator
// (ReLU, BatchNorm at inference, element-wise add, bias add) touching the
// given number of bytes (all operands, read plus write).
func (t *Target) EltwiseTime(bytes float64, threads int, backend ThreadBackend) float64 {
	if bytes <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	if threads > t.Cores {
		threads = t.Cores
	}
	effThreads := float64(threads)
	if effThreads > 6 {
		effThreads = 6
	}
	bw := t.MemBWGBs * 1e9 * bwEfficiency * (0.3 + 0.1167*effThreads)
	return bytes/bw + RegionOverhead(backend, threads)
}

// PoolTime predicts the seconds for a pooling operator with the given window
// over `outBytes` of output; pooling re-reads each input window.
func (t *Target) PoolTime(inBytes, outBytes float64, window int, threads int, backend ThreadBackend) float64 {
	return t.EltwiseTime(inBytes*float64(window)/2+outBytes, threads, backend)
}

// Int8Factor returns the throughput multiplier of int8 convolution kernels
// over fp32 on this ISA: AVX-512BW chains vpmaddubsw/vpmaddwd for roughly 2x
// MAC throughput (pre-VNNI Skylake), AVX2 similarly via pmaddubsw, while the
// Cortex-A72 lacks the sdot instruction and gains less from widening int8
// arithmetic.
func (t *Target) Int8Factor() float64 {
	if t.Int8Throughput > 0 {
		return t.Int8Throughput
	}
	switch t.ISA {
	case AVX512:
		return 2.0
	case AVX2:
		return 1.8
	default: // NEON on A72: no sdot
		return 1.4
	}
}

// Int8ConvTime predicts the seconds of a quantized int8 convolution under
// the given schedule: the fp32 prediction divided by the ISA's int8
// throughput factor, with the memory floor shrunk by the 4x smaller
// operands.
func (t *Target) Int8ConvTime(wl ConvWorkload, s ConvSchedule, threads int, backend ThreadBackend, kernelQuality float64) float64 {
	// Quantized convolution has no winograd kernel (the transform-domain
	// products would need widening well past int32); int8 modules always
	// execute the direct template, so price that.
	s.Algorithm = AlgoDirect
	if threads < 1 {
		threads = 1
	}
	if threads > t.Cores {
		threads = t.Cores
	}
	eff := t.ConvEfficiency(wl, s) * kernelQuality * t.Int8Factor()
	if eff <= 0 {
		eff = 1e-4
	}
	compute := wl.FLOPs() / (t.PeakCoreGFLOPS() * 1e9 * eff)
	units := parallelUnits(wl, s)
	pe := t.GrainedParallelEfficiency(units, s.Grain, threads)
	par := compute/(float64(threads)*pe) + dispatchSeconds(units, s.Grain, threads)
	floor := (wl.Bytes() / 4) / (t.MemBWGBs * 1e9 * bwEfficiency)
	if par < floor {
		par = floor
	}
	return par + RegionOverhead(backend, threads)
}

// DenseTime predicts the seconds for a fully-connected layer mapping `in`
// features to `out` features at batch 1. A batch-1 GEMV is memory-bound on
// the weight matrix.
func (t *Target) DenseTime(in, out int, threads int, backend ThreadBackend, kernelQuality float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > t.Cores {
		threads = t.Cores
	}
	flops := 2 * float64(in) * float64(out)
	compute := flops / (t.PeakCoreGFLOPS() * 1e9 * 0.35 * kernelQuality)
	pe := t.ParallelEfficiency(out, threads)
	par := compute / (float64(threads) * pe)
	bytes := 4 * float64(in) * float64(out)
	floor := bytes / (t.MemBWGBs * 1e9 * 0.8)
	if par < floor {
		par = floor
	}
	return par + RegionOverhead(backend, threads)
}

package machine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestTargetPresets(t *testing.T) {
	sky := IntelSkylakeC5()
	if sky.Cores != 18 || sky.ISA != AVX512 || sky.VectorLanes != 16 || sky.NumVecRegs != 32 {
		t.Fatalf("skylake preset wrong: %+v", sky)
	}
	// 18 cores * 3 GHz * 16 lanes * 2 FMA * 2 flops = 3456 GFLOPS.
	if got := sky.PeakGFLOPS(); math.Abs(got-3456) > 1e-9 {
		t.Fatalf("skylake peak = %v, want 3456", got)
	}
	epyc := AMDEpycM5a()
	if epyc.Cores != 24 || epyc.ISA != AVX2 || epyc.VectorLanes != 8 {
		t.Fatalf("epyc preset wrong: %+v", epyc)
	}
	arm := ARMCortexA72()
	if arm.Cores != 16 || arm.ISA != NEON || arm.VectorLanes != 4 {
		t.Fatalf("a72 preset wrong: %+v", arm)
	}
	if len(AllTargets()) != 3 {
		t.Fatal("AllTargets must return 3 targets")
	}
}

func TestTargetByName(t *testing.T) {
	got, err := TargetByName("amd-epyc")
	if err != nil || got.ISA != AVX2 {
		t.Fatalf("TargetByName(amd-epyc) = %v, %v", got, err)
	}
	if _, err := TargetByName("sparc"); err == nil {
		t.Fatal("expected error for unknown target")
	}
}

func TestISAAndBackendStrings(t *testing.T) {
	if AVX512.String() != "AVX-512" || AVX2.String() != "AVX2" || NEON.String() != "NEON" {
		t.Fatal("ISA strings wrong")
	}
	if BackendPool.String() != "threadpool" || BackendOMP.String() != "openmp" || BackendSerial.String() != "serial" {
		t.Fatal("backend strings wrong")
	}
}

// resnetConv is a representative mid-network ResNet-50 convolution.
var resnetConv = ConvWorkload{
	InC: 128, InH: 28, InW: 28, OutC: 128, KH: 3, KW: 3,
	StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
}

func TestConvWorkloadGeometry(t *testing.T) {
	if resnetConv.OutH() != 28 || resnetConv.OutW() != 28 {
		t.Fatalf("output geometry wrong: %dx%d", resnetConv.OutH(), resnetConv.OutW())
	}
	wantFLOPs := 2.0 * 28 * 28 * 128 * 128 * 9
	if resnetConv.FLOPs() != wantFLOPs {
		t.Fatalf("FLOPs = %v, want %v", resnetConv.FLOPs(), wantFLOPs)
	}
	stride2 := ConvWorkload{InC: 3, InH: 224, InW: 224, OutC: 64, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	if stride2.OutH() != 112 || stride2.OutW() != 112 {
		t.Fatalf("7x7/2 geometry wrong: %dx%d", stride2.OutH(), stride2.OutW())
	}
	if resnetConv.Key() == stride2.Key() {
		t.Fatal("distinct workloads must have distinct keys")
	}
}

func goodSchedule(t *Target) ConvSchedule {
	return ConvSchedule{
		Layout:  tensor.NCHWc(t.VectorLanes),
		ICBlock: t.VectorLanes, OCBlock: t.VectorLanes,
		RegN: t.FMALatency * t.FMAPerCycle, UnrollKer: true,
	}
}

func TestBlockedBeatsNCHW(t *testing.T) {
	for _, tgt := range AllTargets() {
		blocked := tgt.ConvEfficiency(resnetConv, goodSchedule(tgt))
		nchw := tgt.ConvEfficiency(resnetConv, ConvSchedule{Layout: tensor.NCHW()})
		nhwc := tgt.ConvEfficiency(resnetConv, ConvSchedule{Layout: tensor.NHWC()})
		ratio := blocked / nchw
		// Section 4.2.1 measures 4-8x from layout optimization alone.
		if ratio < 3.5 || ratio > 9 {
			t.Errorf("%s: blocked/NCHW ratio = %.2f, want within [3.5, 9]", tgt.Name, ratio)
		}
		if nhwc <= nchw {
			t.Errorf("%s: NHWC (%.3f) should beat NCHW (%.3f) for direct conv", tgt.Name, nhwc, nchw)
		}
		if blocked <= nhwc {
			t.Errorf("%s: blocked (%.3f) should beat NHWC (%.3f)", tgt.Name, blocked, nhwc)
		}
	}
}

func winogradSchedule(t *Target) ConvSchedule {
	s := goodSchedule(t)
	s.Algorithm = AlgoWinograd
	s.RegN, s.UnrollKer = 1, false
	return s
}

func TestWinogradViability(t *testing.T) {
	if !resnetConv.WinogradViable() {
		t.Fatal("3x3 stride-1 workload must be winograd-viable")
	}
	strided := resnetConv
	strided.StrideH, strided.StrideW = 2, 2
	if strided.WinogradViable() {
		t.Fatal("strided workload must not be winograd-viable")
	}
	oneByOne := resnetConv
	oneByOne.KH, oneByOne.KW = 1, 1
	if oneByOne.WinogradViable() {
		t.Fatal("1x1 workload must not be winograd-viable")
	}
	if !WinogradSupported(3, 3, 1, 1) || WinogradSupported(5, 5, 1, 1) {
		t.Fatal("WinogradSupported gate wrong")
	}
}

func TestWinogradBeatsDirectOnViableWorkloads(t *testing.T) {
	// The algorithm dimension's raison d'être: on AVX-512, a ResNet-style
	// 3x3 stride-1 convolution runs faster under winograd (2.25x fewer
	// multiplies) despite the transform overhead.
	tgt := IntelSkylakeC5()
	direct := tgt.ConvTime(resnetConv, goodSchedule(tgt), 1, BackendSerial, 1)
	wino := tgt.ConvTime(resnetConv, winogradSchedule(tgt), 1, BackendSerial, 1)
	if wino >= direct {
		t.Fatalf("winograd %.3gs should beat direct %.3gs on 3x3 stride-1", wino, direct)
	}
	// But never by more than the multiply reduction itself.
	if direct/wino > winogradMulSaving {
		t.Fatalf("winograd speedup %.2fx exceeds the %.2fx multiply saving", direct/wino, winogradMulSaving)
	}
}

func TestWinogradSpillsOnNarrowRegisterFiles(t *testing.T) {
	// AVX2 has 16 vector registers; the 16 transform-domain accumulators
	// plus operands spill, so winograd's edge shrinks (and can invert)
	// relative to AVX-512 — the structural reason the *search* decides
	// per target instead of always preferring winograd.
	intel := IntelSkylakeC5()
	amd := AMDEpycM5a()
	gainIntel := intel.ConvTime(resnetConv, goodSchedule(intel), 1, BackendSerial, 1) /
		intel.ConvTime(resnetConv, winogradSchedule(intel), 1, BackendSerial, 1)
	gainAMD := amd.ConvTime(resnetConv, goodSchedule(amd), 1, BackendSerial, 1) /
		amd.ConvTime(resnetConv, winogradSchedule(amd), 1, BackendSerial, 1)
	if gainAMD >= gainIntel {
		t.Fatalf("winograd gain on AVX2 (%.2fx) should trail AVX-512 (%.2fx)", gainAMD, gainIntel)
	}
}

func TestWinogradInvalidWorkloadPricedOut(t *testing.T) {
	tgt := IntelSkylakeC5()
	strided := resnetConv
	strided.StrideH, strided.StrideW = 2, 2
	bad := tgt.ConvTime(strided, winogradSchedule(tgt), 1, BackendSerial, 1)
	good := tgt.ConvTime(strided, goodSchedule(tgt), 1, BackendSerial, 1)
	if bad < 1e3 || bad <= good {
		t.Fatalf("winograd on a strided workload must be priced out (got %.3gs vs direct %.3gs)", bad, good)
	}
	// Finite, so solver cost sums never go NaN.
	if bad != bad || bad > 1e12 {
		t.Fatalf("invalid-schedule price must be finite: %v", bad)
	}
}

func TestWinogradTransformOverheadGrowsWithChannels(t *testing.T) {
	// Small-channel workloads amortize the transforms poorly: the winograd
	// advantage must shrink as channels drop.
	tgt := IntelSkylakeC5()
	small := ConvWorkload{InC: 8, InH: 28, InW: 28, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	sSmall := ConvSchedule{Layout: tensor.NCHWc(8), ICBlock: 8, OCBlock: 8, RegN: 1, Algorithm: AlgoWinograd}
	dSmall := ConvSchedule{Layout: tensor.NCHWc(8), ICBlock: 8, OCBlock: 8, RegN: 8, UnrollKer: true}
	gainSmall := tgt.ConvTime(small, dSmall, 1, BackendSerial, 1) / tgt.ConvTime(small, sSmall, 1, BackendSerial, 1)
	gainBig := tgt.ConvTime(resnetConv, goodSchedule(tgt), 1, BackendSerial, 1) /
		tgt.ConvTime(resnetConv, winogradSchedule(tgt), 1, BackendSerial, 1)
	if gainSmall >= gainBig {
		t.Fatalf("winograd gain should shrink with channels: %d-ch %.2fx vs %d-ch %.2fx",
			small.InC, gainSmall, resnetConv.InC, gainBig)
	}
}

func TestInt8IgnoresWinograd(t *testing.T) {
	// There is no quantized winograd kernel: the int8 predictor prices the
	// direct template regardless of the schedule's algorithm field.
	tgt := IntelSkylakeC5()
	d := tgt.Int8ConvTime(resnetConv, goodSchedule(tgt), 1, BackendSerial, 1)
	w := tgt.Int8ConvTime(resnetConv, winogradSchedule(tgt), 1, BackendSerial, 1)
	// reg_n differs between the two schedules, so compare with algorithm
	// normalized out.
	s := winogradSchedule(tgt)
	s.Algorithm = AlgoDirect
	wNorm := tgt.Int8ConvTime(resnetConv, s, 1, BackendSerial, 1)
	if w != wNorm {
		t.Fatalf("int8 time must ignore the algorithm field: %v vs %v", w, wNorm)
	}
	if d <= 0 || w <= 0 {
		t.Fatal("int8 times must be positive")
	}
}

func TestEfficiencyRewardsLatencyHiding(t *testing.T) {
	tgt := IntelSkylakeC5()
	s := goodSchedule(tgt)
	s.RegN = 2 // far below FMALatency*FMAPerCycle = 8
	low := tgt.ConvEfficiency(resnetConv, s)
	s.RegN = 8
	high := tgt.ConvEfficiency(resnetConv, s)
	if low >= high {
		t.Fatalf("reg_n=2 eff %.3f should be below reg_n=8 eff %.3f", low, high)
	}
}

func TestEfficiencyPenalizesSpill(t *testing.T) {
	tgt := AMDEpycM5a() // 16 vector registers
	s := goodSchedule(tgt)
	s.RegN = 8
	ok := tgt.ConvEfficiency(resnetConv, s)
	s.RegN = 32 // 32+2 > 16 registers: must spill
	spill := tgt.ConvEfficiency(resnetConv, s)
	if spill >= ok {
		t.Fatalf("spilling schedule eff %.3f should be below fitting schedule %.3f", spill, ok)
	}
}

func TestEfficiencyPenalizesPartialLanes(t *testing.T) {
	tgt := IntelSkylakeC5() // 16 lanes
	s := goodSchedule(tgt)
	s.OCBlock = 16
	full := tgt.ConvEfficiency(resnetConv, s)
	s.OCBlock = 8 // half a ZMM register
	half := tgt.ConvEfficiency(resnetConv, s)
	if half >= full {
		t.Fatalf("oc_bn=8 eff %.3f should be below oc_bn=16 eff %.3f on AVX-512", half, full)
	}
}

func TestEfficiencyBounded(t *testing.T) {
	f := func(icRaw, ocRaw, regRaw uint8, unroll bool) bool {
		blocks := []int{1, 2, 4, 8, 16, 32, 64}
		s := ConvSchedule{
			Layout:    tensor.NCHWc(blocks[int(icRaw)%len(blocks)]),
			ICBlock:   blocks[int(icRaw)%len(blocks)],
			OCBlock:   blocks[int(ocRaw)%len(blocks)],
			RegN:      []int{2, 4, 8, 16, 32}[int(regRaw)%5],
			UnrollKer: unroll,
		}
		for _, tgt := range AllTargets() {
			e := tgt.ConvEfficiency(resnetConv, s)
			if e <= 0 || e > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConvTimeDecreasesWithThreads(t *testing.T) {
	tgt := IntelSkylakeC5()
	s := goodSchedule(tgt)
	t1 := tgt.ConvTime(resnetConv, s, 1, BackendPool, 1)
	t8 := tgt.ConvTime(resnetConv, s, 8, BackendPool, 1)
	t18 := tgt.ConvTime(resnetConv, s, 18, BackendPool, 1)
	if !(t1 > t8 && t8 > t18) {
		t.Fatalf("conv time must decrease with threads: %v %v %v", t1, t8, t18)
	}
	// Speedup at 8 threads should be substantial but sub-linear.
	sp := t1 / t8
	if sp < 4 || sp > 8 {
		t.Fatalf("8-thread speedup = %.2f, want within [4, 8]", sp)
	}
}

func TestPoolBeatsOMPOverhead(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		if RegionOverhead(BackendPool, n) >= RegionOverhead(BackendOMP, n) {
			t.Fatalf("pool overhead must be below OMP at %d threads", n)
		}
	}
	if RegionOverhead(BackendPool, 1) != 0 || RegionOverhead(BackendOMP, 1) != 0 {
		t.Fatal("single-thread region overhead must be zero")
	}
}

func TestParallelEfficiency(t *testing.T) {
	tgt := IntelSkylakeC5()
	if e := tgt.ParallelEfficiency(1000, 1); e != 1 {
		t.Fatalf("1-thread efficiency = %v, want 1", e)
	}
	big := tgt.ParallelEfficiency(10000, 18)
	small := tgt.ParallelEfficiency(19, 18) // nasty imbalance: 2 chunks on one thread
	if big <= small {
		t.Fatalf("fine-grained work (%v) must parallelize better than 19 units (%v)", big, small)
	}
	if small > 0.6 {
		t.Fatalf("19 units on 18 threads should show ~0.53 imbalance, got %v", small)
	}
	// Efficiency is a fraction.
	for units := 1; units < 300; units += 7 {
		for _, th := range []int{1, 2, 5, 18, 40} {
			e := tgt.ParallelEfficiency(units, th)
			if e <= 0 || e > 1 {
				t.Fatalf("efficiency out of range: units=%d threads=%d e=%v", units, th, e)
			}
		}
	}
}

func TestMemoryFloor(t *testing.T) {
	tgt := IntelSkylakeC5()
	// A 1x1 conv over few channels is bandwidth bound; time must not drop
	// below bytes/peak-bandwidth even with all cores.
	wl := ConvWorkload{InC: 16, InH: 224, InW: 224, OutC: 16, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	s := goodSchedule(tgt)
	s.ICBlock, s.OCBlock = 16, 16
	got := tgt.ConvTime(wl, s, 18, BackendPool, 1)
	floor := wl.Bytes() / (tgt.MemBWGBs * 1e9)
	if got < floor {
		t.Fatalf("conv time %v below absolute memory floor %v", got, floor)
	}
}

func TestTransformTimeScales(t *testing.T) {
	tgt := IntelSkylakeC5()
	small := tgt.TransformTime(1000, 1, BackendSerial)
	big := tgt.TransformTime(1000000, 1, BackendSerial)
	if big <= small {
		t.Fatal("larger transform must cost more")
	}
	if tgt.TransformTime(0, 1, BackendSerial) != 0 {
		t.Fatal("empty transform must be free")
	}
	// Threads help, but not unboundedly (bandwidth bound).
	t1 := tgt.TransformTime(1<<22, 1, BackendPool)
	t4 := tgt.TransformTime(1<<22, 4, BackendPool)
	t18 := tgt.TransformTime(1<<22, 18, BackendPool)
	if !(t4 < t1) {
		t.Fatalf("4 threads should beat 1: %v vs %v", t4, t1)
	}
	if t18 < t4*0.5 {
		t.Fatalf("bandwidth-bound transform should not scale past saturation: t4=%v t18=%v", t4, t18)
	}
}

func TestDenseTimeIsMemoryBound(t *testing.T) {
	tgt := IntelSkylakeC5()
	// VGG's first FC layer: 25088 -> 4096 = 98M weights = 393 MB.
	got := tgt.DenseTime(25088, 4096, 18, BackendPool, 1)
	bytes := 4.0 * 25088 * 4096
	floor := bytes / (tgt.MemBWGBs * 1e9)
	if got < floor {
		t.Fatalf("dense time %v below bandwidth floor %v", got, floor)
	}
	// And it should be within ~3x of the floor (it is a GEMV).
	if got > 3*floor/0.8 {
		t.Fatalf("dense time %v too far above floor %v", got, floor)
	}
}

func TestEltwiseAndPoolTimes(t *testing.T) {
	tgt := ARMCortexA72()
	e := tgt.EltwiseTime(1<<20, 4, BackendPool)
	if e <= 0 {
		t.Fatal("eltwise time must be positive")
	}
	if tgt.EltwiseTime(0, 4, BackendPool) != 0 {
		t.Fatal("zero-byte eltwise must be free")
	}
	p := tgt.PoolTime(1<<20, 1<<18, 9, 4, BackendPool)
	if p <= e {
		t.Fatal("3x3 pooling over same input should cost more than eltwise")
	}
}

func TestConvTimeKernelQuality(t *testing.T) {
	tgt := AMDEpycM5a()
	s := goodSchedule(tgt)
	tuned := tgt.ConvTime(resnetConv, s, 8, BackendPool, 1.0)
	detuned := tgt.ConvTime(resnetConv, s, 8, BackendPool, 0.6)
	if detuned <= tuned {
		t.Fatal("lower kernel quality must increase time")
	}
}

func TestInt8ConvTime(t *testing.T) {
	for _, tgt := range AllTargets() {
		s := goodSchedule(tgt)
		f32 := tgt.ConvTime(resnetConv, s, tgt.Cores, BackendPool, 1)
		i8 := tgt.Int8ConvTime(resnetConv, s, tgt.Cores, BackendPool, 1)
		if i8 >= f32 {
			t.Errorf("%s: int8 conv (%v) must beat fp32 (%v)", tgt.Name, i8, f32)
		}
		if f32/i8 > tgt.Int8Factor()*1.01 {
			t.Errorf("%s: int8 speedup %.2f exceeds ISA factor %.2f", tgt.Name, f32/i8, tgt.Int8Factor())
		}
	}
	// The paper's targets: Skylake (AVX-512BW) gains the most, the A72
	// (no sdot) the least.
	if !(IntelSkylakeC5().Int8Factor() > ARMCortexA72().Int8Factor()) {
		t.Fatal("int8 factor ordering wrong")
	}
}

func TestExtendedTargets(t *testing.T) {
	if len(ExtendedTargets()) != 5 {
		t.Fatalf("extended targets = %d, want 5", len(ExtendedTargets()))
	}
	// The paper's table set stays at three.
	if len(AllTargets()) != 3 {
		t.Fatal("paper target set must remain 3")
	}
	cl := IntelCascadeLakeC5()
	if cl.Int8Factor() != 4 {
		t.Fatalf("cascade lake VNNI factor = %v, want 4", cl.Int8Factor())
	}
	g2 := ARMGraviton2()
	if g2.Int8Factor() != 3 {
		t.Fatalf("graviton2 sdot factor = %v, want 3", g2.Int8Factor())
	}
	// Graviton2 is a faster fp32 machine than the A72, too.
	if g2.PeakGFLOPS() <= ARMCortexA72().PeakGFLOPS() {
		t.Fatal("graviton2 must out-peak the A72")
	}
	// Int8 speedup on VNNI hardware exceeds the pre-VNNI chain.
	s := goodSchedule(cl)
	sky := IntelSkylakeC5()
	clGain := cl.ConvTime(resnetConv, s, 1, BackendSerial, 1) / cl.Int8ConvTime(resnetConv, s, 1, BackendSerial, 1)
	skyGain := sky.ConvTime(resnetConv, goodSchedule(sky), 1, BackendSerial, 1) / sky.Int8ConvTime(resnetConv, goodSchedule(sky), 1, BackendSerial, 1)
	if clGain <= skyGain {
		t.Fatalf("VNNI gain %.2f must exceed pre-VNNI %.2f", clGain, skyGain)
	}
	if _, err := TargetByName("arm-graviton2"); err != nil {
		t.Fatal(err)
	}
}

// Package machine models the CPU targets the paper evaluates on and provides
// the analytic cost model used to predict execution time of convolution
// schedules, layout transformations and memory-bound operators.
//
// This package is the substitution for real SIMD hardware: Go has no vector
// intrinsics, so instead of measuring AVX-512/AVX2/NEON kernels we predict
// their cycle counts from the architectural parameters the paper's analysis
// depends on (vector lanes, FMA throughput and latency, register-file size,
// cache hierarchy, memory bandwidth, core count and fork-join overheads).
// The prediction is deliberately structural: it rewards exactly the schedule
// properties Section 3.1 of the paper optimizes (register blocking that hides
// FMA latency, channel blocking that fits the cache, full vector lanes) and
// penalizes the ones it avoids (strided access in plain NCHW, register
// spills, too-fine parallel grains).
package machine

import "fmt"

// ISA identifies the SIMD instruction family of a target.
type ISA int

const (
	// AVX512 is Intel's 512-bit extension: 16 fp32 lanes, 32 vector registers.
	AVX512 ISA = iota
	// AVX2 is the 256-bit extension: 8 fp32 lanes, 16 vector registers.
	AVX2
	// NEON is the ARM 128-bit extension: 4 fp32 lanes, 32 vector registers.
	NEON
)

func (i ISA) String() string {
	switch i {
	case AVX512:
		return "AVX-512"
	case AVX2:
		return "AVX2"
	case NEON:
		return "NEON"
	}
	return fmt.Sprintf("ISA(%d)", int(i))
}

// ThreadBackend identifies the multi-threading runtime used for parallel
// regions. The paper compares its custom thread pool against OpenMP
// (Section 3.1.2, Figure 4).
type ThreadBackend int

const (
	// BackendSerial runs everything on one thread.
	BackendSerial ThreadBackend = iota
	// BackendPool is NeoCPU's custom thread pool: statically partitioned
	// work, SPSC lock-free task handoff, spin join, threads bound to
	// disjoint physical cores.
	BackendPool
	// BackendOMP models an OpenMP parallel-for: a central fork/join with
	// larger per-region launch and suppression overhead.
	BackendOMP
)

func (b ThreadBackend) String() string {
	switch b {
	case BackendSerial:
		return "serial"
	case BackendPool:
		return "threadpool"
	case BackendOMP:
		return "openmp"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Target describes one CPU platform. The three presets correspond to the EC2
// instances in Section 4 of the paper.
type Target struct {
	// Name is a short identifier (used in reports).
	Name string
	// CPU is the marketing name of the processor.
	CPU string
	// ISA is the SIMD family.
	ISA ISA
	// Cores is the number of physical cores. Hyper-threading is never used
	// (Section 2.1).
	Cores int
	// FreqGHz is the sustained all-core frequency in GHz.
	FreqGHz float64
	// VectorLanes is the number of fp32 lanes per vector register.
	VectorLanes int
	// NumVecRegs is the architectural vector register count.
	NumVecRegs int
	// FMAPerCycle is the number of vector FMA instructions issued per cycle.
	FMAPerCycle int
	// FMALatency is the FMA pipeline latency in cycles; reg_n accumulators
	// must cover FMALatency*FMAPerCycle to reach peak throughput.
	FMALatency int
	// L1DKB, L2KB are per-core data cache sizes; L3MB is the shared LLC.
	L1DKB, L2KB int
	L3MB        float64
	// MemBWGBs is the sustained memory bandwidth in GB/s (whole socket).
	MemBWGBs float64
	// CacheLineB is the cache line size in bytes.
	CacheLineB int
	// Int8Throughput overrides the ISA-default int8 MAC throughput factor
	// (VNNI/sdot-capable extension targets); 0 means the ISA default.
	Int8Throughput float64
}

// IntelSkylakeC5 models the EC2 C5.9xlarge used in Table 2a: an 18-core
// Skylake-SP with AVX-512.
func IntelSkylakeC5() *Target {
	return &Target{
		Name:        "intel-skylake",
		CPU:         "Intel Xeon Platinum 8124M (C5.9xlarge)",
		ISA:         AVX512,
		Cores:       18,
		FreqGHz:     3.0,
		VectorLanes: 16,
		NumVecRegs:  32,
		FMAPerCycle: 2,
		FMALatency:  4,
		L1DKB:       32,
		L2KB:        1024,
		L3MB:        24.75,
		MemBWGBs:    90,
		CacheLineB:  64,
	}
}

// AMDEpycM5a models the EC2 M5a.12xlarge used in Table 2b: a 24-core EPYC
// (Zen) with AVX2.
func AMDEpycM5a() *Target {
	return &Target{
		Name:        "amd-epyc",
		CPU:         "AMD EPYC 7571 (M5a.12xlarge)",
		ISA:         AVX2,
		Cores:       24,
		FreqGHz:     2.5,
		VectorLanes: 8,
		NumVecRegs:  16,
		FMAPerCycle: 1,
		FMALatency:  5,
		L1DKB:       32,
		L2KB:        512,
		L3MB:        64,
		MemBWGBs:    75,
		CacheLineB:  64,
	}
}

// ARMCortexA72 models the EC2 A1.4xlarge used in Table 2c: a 16-core
// Cortex-A72 with NEON.
func ARMCortexA72() *Target {
	return &Target{
		Name:        "arm-cortex-a72",
		CPU:         "ARM Cortex-A72 (A1.4xlarge, Graviton)",
		ISA:         NEON,
		Cores:       16,
		FreqGHz:     2.3,
		VectorLanes: 4,
		NumVecRegs:  32,
		FMAPerCycle: 1,
		FMALatency:  7,
		L1DKB:       32,
		L2KB:        1024,
		L3MB:        32,
		MemBWGBs:    35,
		CacheLineB:  64,
	}
}

// AllTargets returns the three evaluation platforms in paper order.
func AllTargets() []*Target {
	return []*Target{IntelSkylakeC5(), AMDEpycM5a(), ARMCortexA72()}
}

// IntelCascadeLakeC5 models a VNNI-capable successor to the paper's Skylake
// instance (extension target: vpdpbusd fuses the int8 multiply-accumulate
// chain, quadrupling int8 MAC throughput). Not part of the paper's tables.
func IntelCascadeLakeC5() *Target {
	t := IntelSkylakeC5()
	t.Name = "intel-cascadelake"
	t.CPU = "Intel Xeon Platinum 8275CL (C5.12xlarge class)"
	t.Cores = 24
	t.FreqGHz = 3.1
	t.Int8Throughput = 4.0 // AVX-512 VNNI
	return t
}

// ARMGraviton2 models the Neoverse-N1 successor to the paper's A1 instance
// (extension target: the sdot instruction gives NEON a 4-way int8 dot
// product). Not part of the paper's tables.
func ARMGraviton2() *Target {
	t := ARMCortexA72()
	t.Name = "arm-graviton2"
	t.CPU = "AWS Graviton2 (Neoverse N1, M6g class)"
	t.Cores = 16
	t.FreqGHz = 2.5
	t.FMAPerCycle = 2
	t.FMALatency = 4
	t.MemBWGBs = 80
	t.Int8Throughput = 3.0 // NEON sdot
	return t
}

// ExtendedTargets returns the paper's targets plus the extension platforms
// used by the INT8 analysis.
func ExtendedTargets() []*Target {
	return append(AllTargets(), IntelCascadeLakeC5(), ARMGraviton2())
}

// TargetByName looks up one of the preset targets (including extensions).
func TargetByName(name string) (*Target, error) {
	for _, t := range ExtendedTargets() {
		if t.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown target %q", name)
}

// PeakCoreGFLOPS returns single-core peak fp32 GFLOP/s (FMA counts as two
// floating-point operations per lane).
func (t *Target) PeakCoreGFLOPS() float64 {
	return t.FreqGHz * float64(t.VectorLanes) * float64(t.FMAPerCycle) * 2
}

// PeakGFLOPS returns whole-chip peak fp32 GFLOP/s.
func (t *Target) PeakGFLOPS() float64 {
	return t.PeakCoreGFLOPS() * float64(t.Cores)
}

func (t *Target) String() string {
	return fmt.Sprintf("%s: %d cores @ %.1f GHz, %v (%d fp32 lanes, %d regs), peak %.0f GFLOPS",
		t.Name, t.Cores, t.FreqGHz, t.ISA, t.VectorLanes, t.NumVecRegs, t.PeakGFLOPS())
}

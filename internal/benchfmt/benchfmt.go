// Package benchfmt is the shared schema of the BENCH_<target>.json
// trajectory files: the machine-readable benchmark output neocpu-bench
// writes, neocpu-loadgen appends serving series to, and CI replays. One
// package owns the shape so kernel perf and serving perf stay in the same
// tracked document instead of drifting into parallel formats.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// SchemaVersion is the current BENCH_*.json schema. Version 1 carried only
// predicted + measured entries; version 2 adds the serving series
// (serving/<model>/qps-<n>) and is read-compatible with 1.
const SchemaVersion = 2

// Entry is one benchmark sample. Which fields are set depends on the
// series: predicted entries carry Model+Scheme, measured host entries carry
// Name (+ allocation and arena detail), scaling entries add Threads+Speedup,
// and serving entries (Name "serving/<model>/qps-<n>") carry the QPS and
// latency-percentile fields with NsPerOp as the mean OK-request latency.
type Entry struct {
	// Model + Scheme identify predicted entries; Name identifies measured
	// host benchmarks and serving samples.
	Model  string `json:"model,omitempty"`
	Scheme string `json:"scheme,omitempty"`
	Name   string `json:"name,omitempty"`
	// NsPerOp is the predicted (simulated target) or measured (host)
	// nanoseconds per inference / per kernel invocation; for serving
	// entries, the mean latency of successful requests.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are reported for measured entries only.
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// ArenaBytes is the planned per-session arena of the compiled module a
	// session benchmark ran against (the memory planner's footprint).
	ArenaBytes int64 `json:"arena_bytes,omitempty"`
	// Threads and Speedup are set on scaling/<model> entries only: the
	// thread count the module was compiled and run with, and the ratio
	// ns/op(threads=1) / ns/op(this entry) within the same series.
	Threads int     `json:"threads,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`

	// Serving-series fields (Name "serving/<model>/qps-<n>").

	// QPS is the offered (target) request rate of the load step;
	// AchievedQPS the rate the generator actually sustained.
	QPS         float64 `json:"qps,omitempty"`
	AchievedQPS float64 `json:"achieved_qps,omitempty"`
	// P50NS/P95NS/P99NS are latency percentiles of successful requests, in
	// nanoseconds.
	P50NS float64 `json:"p50_ns,omitempty"`
	P95NS float64 `json:"p95_ns,omitempty"`
	P99NS float64 `json:"p99_ns,omitempty"`
	// Requests counts everything sent; OK the 2xx answers; Rejected the
	// 429 backpressure answers; Deadline the 504 budget expiries;
	// Errors5xx other server errors; ErrorsOther everything else
	// (transport failures, unexpected statuses).
	Requests    int64 `json:"requests,omitempty"`
	OK          int64 `json:"ok,omitempty"`
	Rejected    int64 `json:"rejected_429,omitempty"`
	Deadline    int64 `json:"deadline_504,omitempty"`
	Errors5xx   int64 `json:"errors_5xx,omitempty"`
	ErrorsOther int64 `json:"errors_other,omitempty"`
}

// File is one serialized BENCH_<target>.json document. It carries no
// timestamp on purpose: the files are meant to be diffed across PRs, and a
// generation time would make every regeneration a spurious diff.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Target        string `json:"target"`
	CPU           string `json:"cpu"`
	// Predicted holds the cost-model latency of every registry model under
	// every optimization scheme on the (modeled) target.
	Predicted []Entry `json:"predicted"`
	// Measured holds real host wall-clock kernel benchmarks (identical
	// across target files; the host is whatever ran this command).
	Measured []Entry `json:"measured"`
	// Serving holds latency-vs-QPS samples from neocpu-loadgen
	// (serving/<model>/qps-<n>), host wall-clock like Measured.
	Serving []Entry `json:"serving,omitempty"`
}

// Load reads one bench file. Version-1 files (no serving section) load
// cleanly; unknown future versions are refused rather than silently
// rewritten.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	if f.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("benchfmt: %s has schema_version %d, this build understands <= %d",
			path, f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// Save writes the file with stable two-space indentation (the diffable
// on-disk form) and stamps the current schema version.
func (f *File) Save(path string) error {
	f.SchemaVersion = SchemaVersion
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ServingPrefix returns the series-name prefix of one model's serving
// entries.
func ServingPrefix(model string) string { return "serving/" + model + "/" }

// ServingName returns the canonical serving entry name for one QPS step.
// The rate is rendered without a trailing ".0" so whole-number rates read
// "qps-50", fractional ones "qps-12.5".
func ServingName(model string, qps float64) string {
	return ServingPrefix(model) + "qps-" + FormatQPS(qps)
}

// FormatQPS renders a request rate the way serving entry names spell it.
func FormatQPS(qps float64) string {
	s := fmt.Sprintf("%g", qps)
	return s
}

// MergeServing replaces the named model's serving series with entries,
// leaving other models' series (and everything else in the file) untouched.
// The result stays sorted: existing series keep their order, the new series
// lands where the old one was (or at the end).
func (f *File) MergeServing(model string, entries []Entry) {
	prefix := ServingPrefix(model)
	kept := make([]Entry, 0, len(f.Serving)+len(entries))
	inserted := false
	for _, e := range f.Serving {
		if strings.HasPrefix(e.Name, prefix) {
			if !inserted {
				kept = append(kept, entries...)
				inserted = true
			}
			continue
		}
		kept = append(kept, e)
	}
	if !inserted {
		kept = append(kept, entries...)
	}
	f.Serving = kept
}

package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_c5.json")
	f := &File{
		Target: "c5",
		CPU:    "skylake",
		Predicted: []Entry{
			{Model: "resnet-18", Scheme: "neocpu", NsPerOp: 1e6},
		},
		Measured: []Entry{
			{Name: "conv/3x3", NsPerOp: 4200, BytesPerOp: 0, AllocsPerOp: 0, ArenaBytes: 1 << 20},
			{Name: "scaling/resnet-18/t2", NsPerOp: 2100, Threads: 2, Speedup: 1.9},
		},
		Serving: []Entry{
			{Name: "serving/tiny-cnn/qps-50", NsPerOp: 3e5, QPS: 50, AchievedQPS: 49.7,
				P50NS: 2e5, P95NS: 5e5, P99NS: 9e5,
				Requests: 250, OK: 240, Rejected: 6, Deadline: 3, Errors5xx: 0, ErrorsOther: 1},
		},
	}
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != SchemaVersion {
		t.Fatalf("Save stamped version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Target != "c5" || got.CPU != "skylake" {
		t.Fatalf("header did not round-trip: %+v", got)
	}
	if len(got.Predicted) != 1 || len(got.Measured) != 2 || len(got.Serving) != 1 {
		t.Fatalf("section lengths: %d/%d/%d", len(got.Predicted), len(got.Measured), len(got.Serving))
	}
	if got.Serving[0] != f.Serving[0] {
		t.Fatalf("serving entry did not round-trip:\n got %+v\nwant %+v", got.Serving[0], f.Serving[0])
	}
	if got.Measured[1] != f.Measured[1] {
		t.Fatalf("scaling entry did not round-trip:\n got %+v\nwant %+v", got.Measured[1], f.Measured[1])
	}

	// The on-disk form is the diffable one: indented, no timestamps.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "\n  \"target\": \"c5\"") {
		t.Fatalf("file is not two-space indented:\n%s", raw)
	}
	if strings.Contains(string(raw), "time") {
		t.Fatalf("file carries a timestamp-looking field:\n%s", raw)
	}
}

func TestLoadRefusesFutureSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "target": "x", "cpu": "y"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted schema_version 99")
	}
	// Version-1 files (pre-serving) still load.
	if err := os.WriteFile(path, []byte(`{"schema_version": 1, "target": "x", "cpu": "y", "predicted": [], "measured": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Serving != nil {
		t.Fatalf("version-1 file grew a serving section: %+v", f.Serving)
	}
}

func TestServingName(t *testing.T) {
	for _, tc := range []struct {
		model string
		qps   float64
		want  string
	}{
		{"tiny-cnn", 50, "serving/tiny-cnn/qps-50"},
		{"tiny-cnn", 12.5, "serving/tiny-cnn/qps-12.5"},
		{"resnet-18", 0.5, "serving/resnet-18/qps-0.5"},
	} {
		if got := ServingName(tc.model, tc.qps); got != tc.want {
			t.Errorf("ServingName(%q, %g) = %q, want %q", tc.model, tc.qps, got, tc.want)
		}
	}
}

func names(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

func TestMergeServing(t *testing.T) {
	mk := func(ns ...string) []Entry {
		out := make([]Entry, len(ns))
		for i, n := range ns {
			out[i] = Entry{Name: n}
		}
		return out
	}
	f := &File{Serving: mk(
		"serving/a/qps-10", "serving/a/qps-20",
		"serving/b/qps-10",
		"serving/c/qps-10",
	)}

	// Replace in place: a's new series lands where the old one sat, b and c
	// keep their positions and contents.
	f.MergeServing("a", mk("serving/a/qps-15", "serving/a/qps-30", "serving/a/qps-60"))
	want := []string{
		"serving/a/qps-15", "serving/a/qps-30", "serving/a/qps-60",
		"serving/b/qps-10",
		"serving/c/qps-10",
	}
	if got := names(f.Serving); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("replace-in-place:\n got %v\nwant %v", got, want)
	}

	// A new model appends at the end.
	f.MergeServing("d", mk("serving/d/qps-5"))
	if got := names(f.Serving); got[len(got)-1] != "serving/d/qps-5" || len(got) != 6 {
		t.Fatalf("append-new-model: %v", got)
	}

	// Merging an empty series removes the model.
	f.MergeServing("a", nil)
	want = []string{"serving/b/qps-10", "serving/c/qps-10", "serving/d/qps-5"}
	if got := names(f.Serving); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("remove-on-empty:\n got %v\nwant %v", got, want)
	}

	// "a" must not swallow "ab": prefix matching is per path segment.
	f.Serving = mk("serving/ab/qps-10")
	f.MergeServing("a", mk("serving/a/qps-1"))
	want = []string{"serving/ab/qps-10", "serving/a/qps-1"}
	if got := names(f.Serving); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("model-name prefix collision:\n got %v\nwant %v", got, want)
	}
}

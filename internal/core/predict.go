package core

import (
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/tensor"
)

// PredictConfig parameterizes the analytic latency prediction. Engine
// simulators (internal/baselines) reuse this predictor with their own kernel
// quality and dispatch overhead; NeoCPU itself predicts with the defaults.
type PredictConfig struct {
	// Threads is the execution width; 0 uses the module's configuration.
	Threads int
	// Backend is the threading runtime; 0 (serial) with Threads>1 is
	// overridden by the module's configured backend.
	Backend machine.ThreadBackend
	// KernelQuality scales convolution efficiency; 1.0 is a fully tuned
	// kernel for this target, lower models vendor libraries running on
	// foreign architectures. 0 means 1.0.
	KernelQuality float64
	// DispatchOverhead is added per executed graph node, modeling framework
	// operator-dispatch cost (interpreted frameworks pay more than compiled
	// modules).
	DispatchOverhead float64
}

// PredictLatency walks the compiled program through the machine cost model
// and returns the predicted end-to-end seconds for one batch-1 inference on
// the module's target. This is the simulated measurement used to regenerate
// the paper's tables: the target hardware (AVX-512/AVX2/NEON) is modeled,
// not the host this binary runs on.
func (m *Module) PredictLatency(cfg PredictConfig) float64 {
	threads := cfg.Threads
	if threads <= 0 {
		threads = m.threads
	}
	backend := cfg.Backend
	if backend == machine.BackendSerial && threads > 1 {
		backend = m.backend
	}
	quality := cfg.KernelQuality
	if quality <= 0 {
		quality = 1
	}
	t := m.Target

	total := 0.0
	for _, n := range m.program {
		total += cfg.DispatchOverhead
		switch n.Op {
		case graph.OpConv2D:
			wl := graph.ConvWorkload(n)
			if m.Int8 && n.Sched.Layout.Kind == tensor.LayoutNCHWc {
				total += t.Int8ConvTime(wl, n.Sched, threads, backend, quality)
				// Dynamic activation quantization is one extra streaming
				// pass over the input.
				total += t.EltwiseTime(float64(n.Inputs[0].OutShape.Volume())*5, threads, backend)
			} else {
				total += t.ConvTime(wl, n.Sched, threads, backend, quality)
			}
			// The fused epilogue (bias/residual/ReLU) rides along with the
			// output store: that is the point of fusion.

		case graph.OpLayoutTransform:
			from := n.Inputs[0].OutLayout
			to := n.Transform
			if physicallyFree(from, to) {
				continue
			}
			total += t.TransformTime(n.OutShape.Volume(), threads, backend)

		case graph.OpBatchNorm, graph.OpReLU, graph.OpAdd:
			bytes := float64(n.OutShape.Volume()) * 4 * 2
			if n.Op == graph.OpAdd {
				bytes = float64(n.OutShape.Volume()) * 4 * 3
			}
			total += t.EltwiseTime(bytes, threads, backend)

		case graph.OpPool:
			in := n.Inputs[0].OutShape
			total += t.PoolTime(float64(in.Volume())*4, float64(n.OutShape.Volume())*4,
				n.Pool.KH*n.Pool.KW, threads, backend)

		case graph.OpGlobalAvgPool:
			in := n.Inputs[0].OutShape
			total += t.EltwiseTime(float64(in.Volume())*4, threads, backend)

		case graph.OpConcat:
			total += t.EltwiseTime(float64(n.OutShape.Volume())*4*2, threads, backend)

		case graph.OpDense:
			total += t.DenseTime(n.Weight.Shape[1], n.Weight.Shape[0], threads, backend, quality)

		case graph.OpSoftmax:
			total += t.EltwiseTime(float64(n.OutShape.Volume())*4*4, threads, backend)

		case graph.OpSSDHead:
			total += m.predictSSDHead(n, threads, backend)

		case graph.OpInput, graph.OpFlatten, graph.OpDropout:
			// Free: flatten is a view, dropout is identity at inference.
		}
	}
	return total
}

// predictSSDHead models the multibox post-processing: gathering and
// re-ordering the per-scale predictions (bandwidth), per-anchor softmax and
// decode (largely serial scalar work), and NMS.
func (m *Module) predictSSDHead(n *graph.Node, threads int, backend machine.ThreadBackend) float64 {
	t := m.Target
	var bytes float64
	for _, in := range n.Inputs {
		bytes += float64(in.OutShape.Volume()) * 4
	}
	gather := t.EltwiseTime(bytes*2, threads, backend)

	anchors := float64(n.OutShape.Dims[1])
	classes := float64(n.SSD.NumClasses + 1)
	// ~8 scalar ops per (anchor, class) for softmax + argmax, ~40 per anchor
	// for decode, at one op/cycle without SIMD benefit.
	cycles := anchors*classes*8 + anchors*40
	scalar := cycles / (t.FreqGHz * 1e9)
	// NMS: quadratic in kept candidates, bounded by topK.
	topK := float64(n.SSD.Detection.NMSTopK)
	nms := topK * topK / 2 * 12 / (t.FreqGHz * 1e9)
	return gather + scalar + nms
}

// PredictSSDHeadOnly returns the predicted cost of the SSD multibox head
// alone. The OpenVINO simulator subtracts it, reproducing the sample that
// "does not measure the entire SSD execution time" (Table 2 asterisk).
func (m *Module) PredictSSDHeadOnly(cfg PredictConfig) float64 {
	threads := cfg.Threads
	if threads <= 0 {
		threads = m.threads
	}
	backend := cfg.Backend
	if backend == machine.BackendSerial && threads > 1 {
		backend = m.backend
	}
	total := 0.0
	for _, n := range m.program {
		if n.Op == graph.OpSSDHead {
			total += m.predictSSDHead(n, threads, backend)
		}
	}
	return total
}

// physicallyFree reports whether a layout transform is a no-op in memory
// (NCHW and NCHW[1]c share the same element order).
func physicallyFree(from, to tensor.Layout) bool {
	b := func(l tensor.Layout) (int, bool) {
		switch l.Kind {
		case tensor.LayoutNCHW:
			return 1, true
		case tensor.LayoutNCHWc:
			return l.BlockC, true
		}
		return 0, false
	}
	fb, ok1 := b(from)
	tb, ok2 := b(to)
	return ok1 && ok2 && fb == tb
}

// TransformCount reports how many non-free LayoutTransform nodes the
// compiled program executes (used by the ablation reports).
func (m *Module) TransformCount() int {
	count := 0
	for _, n := range m.program {
		if n.Op == graph.OpLayoutTransform && !physicallyFree(n.Inputs[0].OutLayout, n.Transform) {
			count++
		}
	}
	return count
}

package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

func sessionModule(t *testing.T, threads int, backend machine.ThreadBackend) *Module {
	t.Helper()
	m, err := Compile(models.TinyResNet(4), skylake(), Options{
		Level: OptTransformElim, Threads: threads, Backend: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestSessionMatchesRun(t *testing.T) {
	m := sessionModule(t, 1, machine.BackendSerial)
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(11, 1)
	want, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Repeated runs must be deterministic and bit-identical to Module.Run:
	// the arena is reused, never re-derived.
	for i := 0; i < 3; i++ {
		got, err := s.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(want[0], got[0]) != 0 {
			t.Fatalf("run %d: session output diverges from Module.Run", i)
		}
	}
}

func TestSessionArenaReuse(t *testing.T) {
	m := sessionModule(t, 1, machine.BackendSerial)
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(11, 1)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Run(ctx, in); err != nil { // warm-up
		t.Fatal(err)
	}

	sessAllocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Run(ctx, in); err != nil {
			t.Fatal(err)
		}
	})
	modAllocs := testing.AllocsPerRun(10, func() {
		if _, err := m.Run(in); err != nil {
			t.Fatal(err)
		}
	})
	// Steady-state session execution allocates no tensors: what remains is
	// the handful of parallel-region closures the kernels pass to the
	// threading runtime (about one per graph node).
	if limit := float64(2 * len(m.program)); sessAllocs > limit {
		t.Fatalf("session allocs/op = %v, want <= %v (program has %d nodes)", sessAllocs, limit, len(m.program))
	}
	if sessAllocs*2 > modAllocs {
		t.Fatalf("arena win too small: session %v allocs/op vs module %v", sessAllocs, modAllocs)
	}

	// The byte volume is where the arena matters: Module.Run re-allocates
	// every feature map, the session none of them.
	bytesPer := func(f func()) uint64 {
		const reps = 10
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < reps; i++ {
			f()
		}
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / reps
	}
	sessBytes := bytesPer(func() { s.Run(ctx, in) })
	modBytes := bytesPer(func() { m.Run(in) })
	if sessBytes*10 > modBytes {
		t.Fatalf("arena byte win too small: session %dB/op vs module %dB/op", sessBytes, modBytes)
	}
}

func TestConcurrentSessionsShareModule(t *testing.T) {
	// >= 4 goroutines, one session each, over one shared module with the
	// custom thread pool — the scenario the compile-time pool construction
	// and read-only weight sharing exist for. Run under -race in CI.
	m := sessionModule(t, 4, machine.BackendPool)
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(7, 1)
	want, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	const runsEach = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := m.NewSession()
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < runsEach; i++ {
				outs, err := s.Run(context.Background(), in)
				if err != nil {
					errs <- err
					return
				}
				if tensor.MaxAbsDiff(want[0], outs[0]) != 0 {
					errs <- errors.New("concurrent session output diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// winogradModule compiles TinyResNet at OptGlobalSearch and asserts the
// search actually scheduled winograd convolutions (otherwise the tests built
// on it would silently stop covering the winograd execution path).
func winogradModule(t *testing.T, threads int, backend machine.ThreadBackend) *Module {
	t.Helper()
	m, err := Compile(models.TinyResNet(4), skylake(), Options{
		Level: OptGlobalSearch, Threads: threads, Backend: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	wino := 0
	for _, n := range m.Graph.Convs() {
		if n.Sched.Algorithm == machine.AlgoWinograd {
			wino++
		}
	}
	if wino == 0 {
		t.Fatal("global search scheduled no winograd convolutions on tiny-resnet")
	}
	return m
}

func TestConcurrentWinogradSessions(t *testing.T) {
	// Concurrent sessions over one winograd-planned module, run under -race
	// in CI: the shared pre-transformed U weights are read-only, and each
	// session owns its transform scratch, so nothing may race.
	m := winogradModule(t, 4, machine.BackendPool)
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(23, 1)
	want, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	const runsEach = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := m.NewSession()
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < runsEach; i++ {
				outs, err := s.Run(context.Background(), in)
				if err != nil {
					errs <- err
					return
				}
				if tensor.MaxAbsDiff(want[0], outs[0]) != 0 {
					errs <- errors.New("concurrent winograd session output diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestWinogradSessionArenaReuse(t *testing.T) {
	// The winograd scratch comes from the session arena, so steady-state
	// execution must allocate no more than the direct path's closure change.
	m := winogradModule(t, 1, machine.BackendSerial)
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(5, 1)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Run(ctx, in); err != nil {
		t.Fatal(err)
	}
	sessAllocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Run(ctx, in); err != nil {
			t.Fatal(err)
		}
	})
	if limit := float64(2 * len(m.program)); sessAllocs > limit {
		t.Fatalf("winograd session allocs/op = %v, want <= %v (program has %d nodes)", sessAllocs, limit, len(m.program))
	}
}

func TestSessionContextCancellation(t *testing.T) {
	m := sessionModule(t, 1, machine.BackendSerial)
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(3, 1)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
	}
	if _, err := s.RunBatch(ctx, []*tensor.Tensor{in}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: got %v, want context.Canceled", err)
	}
	// The session must recover cleanly after a cancelled run.
	outs, err := s.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(want[0], outs[0]) != 0 {
		t.Fatal("post-cancellation run diverged")
	}
}

func TestSessionRunBatch(t *testing.T) {
	m := sessionModule(t, 2, machine.BackendPool)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	var inputs []*tensor.Tensor
	for i := 0; i < 3; i++ {
		in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		in.FillRandom(uint64(100+i), 1)
		inputs = append(inputs, in)
	}
	batch, err := s.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(inputs) {
		t.Fatalf("got %d results for %d inputs", len(batch), len(inputs))
	}
	// Batch results are deep copies: each must match its independent run even
	// though the arena was reused in between.
	for i, in := range inputs {
		want, err := m.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(want[0], batch[i][0]) != 0 {
			t.Fatalf("batch item %d diverges from independent run", i)
		}
	}
}

func TestSessionRejectsBadInput(t *testing.T) {
	m := sessionModule(t, 1, machine.BackendSerial)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), tensor.New(tensor.NCHW(), 1, 3, 8, 8)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := s.RunBatch(context.Background(), []*tensor.Tensor{
		tensor.New(tensor.NCHW(), 1, 3, 32, 32),
		tensor.New(tensor.NCHW(), 1, 3, 8, 8),
	}); err == nil {
		t.Fatal("expected batch shape error")
	}
}

func TestSessionRefusedOnPredictOnly(t *testing.T) {
	m, err := Compile(models.TinyCNN(1), skylake(), Options{Level: OptTransformElim, NoPrepack: true})
	if err != nil {
		t.Fatal(err)
	}
	if !m.PredictOnly() {
		t.Fatal("module must report PredictOnly")
	}
	if _, err := m.NewSession(); err == nil {
		t.Fatal("prediction-only module must refuse sessions")
	}
}

func TestSessionAcrossLevelsAndModels(t *testing.T) {
	// The session path must agree with Module.Run across every optimization
	// level and model family the arena has to handle: residual adds
	// (tiny-resnet), blocked concats (tiny-densenet), per-conv transforms
	// (layout-opt mode), and the plain NCHW baseline.
	builders := map[string]func(uint64) *graph.Graph{
		"tiny-cnn":      models.TinyCNN,
		"tiny-resnet":   models.TinyResNet,
		"tiny-densenet": models.TinyDenseNet,
	}
	levels := []OptLevel{OptNone, OptLayout, OptTransformElim, OptGlobalSearch}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(17, 1)
	for name, mk := range builders {
		for _, level := range levels {
			m, err := Compile(mk(4), skylake(), Options{Level: level, Threads: 1, Backend: machine.BackendSerial})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, level, err)
			}
			want, err := m.Run(in)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, level, err)
			}
			s, err := m.NewSession()
			if err != nil {
				t.Fatalf("%s/%v: %v", name, level, err)
			}
			got, err := s.Run(context.Background(), in)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, level, err)
			}
			if tensor.MaxAbsDiff(want[0], got[0]) != 0 {
				t.Fatalf("%s/%v: session output diverges from Module.Run", name, level)
			}
		}
	}
}

func TestSessionInt8(t *testing.T) {
	m, err := Compile(models.TinyCNN(9), skylake(), Options{
		Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial, Int8: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(31, 1)
	want, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(want[0], got[0]) != 0 {
		t.Fatal("int8 session diverges from int8 Module.Run")
	}
}

func TestSessionSSD(t *testing.T) {
	// The SSD head's output size is data-dependent, so its arena slot stays
	// dynamic; the session must still execute it (and everything upstream)
	// correctly, twice in a row.
	b := graph.NewBuilder("sess-ssd", 21)
	x := b.Input(3, 64, 64)
	x = b.ConvBNReLU(x, 16, 3, 2, 1)
	s0 := b.ConvBNReLU(x, 32, 3, 2, 1)
	attrs := graph.SSDHeadAttrs{
		NumClasses: 4,
		Sizes:      [][]float32{{0.2, 0.3}},
		Ratios:     [][]float32{{1, 2, 0.5}},
	}
	attrs.Detection.ScoreThresh = 0.1
	attrs.Detection.NMSThresh = 0.45
	attrs.Detection.NMSTopK = 100
	attrs.Detection.Variances = [4]float32{0.1, 0.1, 0.2, 0.2}
	per := 4
	cls := b.Conv(s0, per*(attrs.NumClasses+1), 3, 1, 1)
	loc := b.Conv(s0, per*4, 3, 1, 1)
	g := b.Finish(b.SSDHead(attrs, cls, loc))

	m, err := Compile(g, skylake(), Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 64, 64)
	in.FillRandom(7, 1)
	want, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := s.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(want[0], got[0]) != 0 {
			t.Fatalf("run %d: SSD session diverges from Module.Run", i)
		}
	}
}

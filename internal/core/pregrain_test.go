package core

import (
	"bytes"
	"context"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

// The pregrain_tiny-resnet.* fixtures under testdata/ were saved by the
// compiler BEFORE the schedule grain field existed (see gen_pregrain.go for
// provenance). These tests pin backward compatibility: old artifacts must
// keep loading, their absent grain must decode to the serial-equivalent
// value (0, one parallel unit per work item — exactly the pre-grain
// dispatch), and modules built from them must execute and agree bit for bit
// with each other.

func TestPreGrainPlanCompat(t *testing.T) {
	f, err := os.Open("testdata/pregrain_tiny-resnet.plan.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pf, err := LoadPlan(f)
	if err != nil {
		t.Fatalf("pre-grain plan must keep loading: %v", err)
	}
	for _, e := range pf.Entries {
		if e.Grain != 0 {
			t.Fatalf("entry %q: absent grain must decode to 0 (serial-equivalent), got %d", e.Conv, e.Grain)
		}
	}
	g, err := models.BuildAny("tiny-resnet", 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := CompileWithPlan(g, skylake(), pf, Options{Threads: 2, Backend: machine.BackendPool})
	if err != nil {
		t.Fatalf("pre-grain plan must keep compiling: %v", err)
	}
	defer m.Close()
	for _, n := range m.program {
		if n.Op == graph.OpConv2D && n.Sched.Grain != 0 {
			t.Fatalf("%v: plan application invented grain %d for a pre-grain entry", n, n.Sched.Grain)
		}
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(21, 1)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(context.Background(), in)
	if err != nil {
		t.Fatalf("pre-grain planned module must execute: %v", err)
	}
	want, err := referenceRun(m, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want[0], got[0]); d != 0 {
		t.Fatalf("pre-grain plan execution diverges from reference by %g", d)
	}
}

func TestPreGrainBundleCompat(t *testing.T) {
	raw, err := os.ReadFile("testdata/pregrain_tiny-resnet.bundle")
	if err != nil {
		t.Fatal(err)
	}
	bm, err := LoadBundle(bytes.NewReader(raw), models.ResolveGraph, Options{Threads: 2, Backend: machine.BackendPool})
	if err != nil {
		t.Fatalf("pre-grain bundle must keep loading: %v", err)
	}
	defer bm.Close()
	for _, n := range bm.program {
		if n.Op == graph.OpConv2D && n.Sched.Grain != 0 {
			t.Fatalf("%v: bundle load invented grain %d for a pre-grain artifact", n, n.Sched.Grain)
		}
	}

	// The plan fixture carries the same schedules the bundle does, so the
	// two load paths must produce bit-identical modules.
	f, err := os.Open("testdata/pregrain_tiny-resnet.plan.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pf, err := LoadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := models.BuildAny("tiny-resnet", 1)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := CompileWithPlan(g, skylake(), pf, Options{Threads: 2, Backend: machine.BackendPool})
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()

	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(22, 1)
	fromBundle, err := bm.Run(in)
	if err != nil {
		t.Fatalf("pre-grain bundle module must execute: %v", err)
	}
	fromPlan, err := pm.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(fromPlan[0], fromBundle[0]); d != 0 {
		t.Fatalf("bundle- and plan-loaded pre-grain modules diverge by %g", d)
	}
}

package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

// TestKernelFamiliesBitIdenticalAcrossPolicies is the cross-product property
// of this package's threading story: for every kernel family (blocked
// direct, winograd, depthwise, int8, plus a branchy graph for policy
// coverage) executed under a serial lane, a forced-intra pool, and pools
// sized to trigger inter-op and hybrid levels, the session output must be
// bit-identical to the strictly sequential fresh-buffer reference — and must
// stay bit-identical when every convolution's parallel grain is forced
// through 0 (serial-equivalent), odd chunk sizes, and chunks larger than any
// unit count. Chunked dispatch and policy choice may only move work between
// threads, never change a bit. CI runs this package under -race, so the
// sweep doubles as the data-race check on every dispatch path.
func TestKernelFamiliesBitIdenticalAcrossPolicies(t *testing.T) {
	execConfigs := []struct {
		name    string
		threads int
		backend machine.ThreadBackend
		disable bool
	}{
		{"serial", 1, machine.BackendSerial, false},
		{"intra", 4, machine.BackendPool, true},    // DisableInterOp: every level intra-op
		{"inter", 3, machine.BackendPool, false},   // narrow pool: balanced wide levels go inter-op
		{"hybrid", 16, machine.BackendPool, false}, // wide pool: multi-node levels go hybrid
	}
	families := []struct {
		name  string
		graph *graph.Graph
		opts  Options
	}{
		{"direct", models.TinyResNet(4), Options{Level: OptTransformElim, DisableWinograd: true}},
		{"winograd", models.TinyResNet(4), Options{Level: OptGlobalSearch}},
		{"depthwise", models.TinyMobileNet(4), Options{Level: OptTransformElim}},
		{"int8", models.TinyResNet(4), Options{Level: OptTransformElim, Int8: true}},
		{"branchy", models.TinyInception(4), Options{Level: OptTransformElim}},
	}
	for _, fam := range families {
		for _, cfg := range execConfigs {
			t.Run(fmt.Sprintf("%s/%s", fam.name, cfg.name), func(t *testing.T) {
				opts := fam.opts
				opts.Threads = cfg.threads
				opts.Backend = cfg.backend
				opts.DisableInterOp = cfg.disable
				m, err := Compile(fam.graph, skylake(), opts)
				if err != nil {
					t.Fatal(err)
				}
				defer m.Close()

				in := tensor.New(tensor.NCHW(), 1, 3, m.Graph.Input.OutShape.Dims[2], m.Graph.Input.OutShape.Dims[3])
				in.FillRandom(9, 1)
				want, err := referenceRun(m, in)
				if err != nil {
					t.Fatal(err)
				}
				s, err := m.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				check := func(label string) {
					t.Helper()
					got, err := s.Run(context.Background(), in)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					for oi := range want {
						if d := tensor.MaxAbsDiff(want[oi], got[oi]); d != 0 {
							t.Fatalf("%s: output %d diverges from sequential reference by %g", label, oi, d)
						}
					}
				}
				check("searched grains")
				// Force the grain through the chunked dispatch's edge cases:
				// 0 (absent-field convention, one unit per item), an odd size
				// that leaves a ragged tail chunk, and a size larger than any
				// kernel's unit count (one chunk swallows the whole loop).
				for _, grain := range []int{0, 3, 1 << 20} {
					for _, n := range m.program {
						if n.Op == graph.OpConv2D {
							n.Sched.Grain = grain
						}
					}
					check(fmt.Sprintf("forced grain %d", grain))
				}
			})
		}
	}
}

// TestPolicyActivation pins the compile-time policy on a branchy model: a
// narrow pool must dispatch tiny-inception's balanced towers inter-op, a
// pool wider than any level must fall back to hybrid for the same levels,
// and DisableInterOp or a serial lane must plan neither.
func TestPolicyActivation(t *testing.T) {
	inter, err := Compile(models.TinyInception(1), skylake(), Options{Level: OptTransformElim, Threads: 3, Backend: machine.BackendPool})
	if err != nil {
		t.Fatal(err)
	}
	defer inter.Close()
	if st := inter.PlanStats(); st.InterOpLevels == 0 {
		t.Fatalf("narrow pool over balanced towers must plan inter-op levels, got %+v", st)
	}

	hybrid, err := Compile(models.TinyInception(1), skylake(), Options{Level: OptTransformElim, Threads: 16, Backend: machine.BackendPool})
	if err != nil {
		t.Fatal(err)
	}
	defer hybrid.Close()
	if st := hybrid.PlanStats(); st.HybridLevels == 0 {
		t.Fatalf("a pool wider than every level must plan hybrid levels, got %+v", st)
	}
	if st := hybrid.PlanStats(); st.InterOpLevels != 0 {
		t.Fatalf("no tiny-inception level holds 16 working nodes; inter-op must not activate, got %+v", st)
	}

	seq, err := Compile(models.TinyInception(1), skylake(), Options{Level: OptTransformElim, Threads: 16, Backend: machine.BackendPool, DisableInterOp: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if st := seq.PlanStats(); st.InterOpLevels != 0 || st.HybridLevels != 0 {
		t.Fatalf("DisableInterOp must pin every level intra-op, got %+v", st)
	}
}

package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Session is a reusable execution context over a compiled Module. It owns a
// per-node tensor arena: every operator's output buffer (plus the padding and
// transform scratch the kernels need) is allocated once at session creation,
// sized from the compiled graph's shapes, and reused across calls — so
// steady-state Run performs no per-node allocation.
//
// A Session is NOT safe for concurrent use: it is a single execution lane.
// The Module it came from IS safe to share — weights, packed parameters and
// the threading runtime are finalized at compile time and only read here —
// so concurrent inference over one model is one Session per goroutine:
//
//	m, _ := core.Compile(g, target, opts)
//	for i := 0; i < workers; i++ {
//		go func() {
//			s, _ := m.NewSession()
//			for job := range jobs {
//				outs, _ := s.Run(ctx, job)
//				...
//			}
//		}()
//	}
//
// Threading note: with BackendPool (or BackendOMP), the module's kernel
// parallel regions are serialized across sessions — the shared pool runs one
// region at a time, so a wide pool minimizes single-request latency but adds
// no cross-session throughput. Throughput-oriented servers should compile
// with Threads=1/BackendSerial: each session then runs its whole inference
// on its own goroutine, and N sessions genuinely occupy N cores.
type Session struct {
	m    *Module
	vals []*tensor.Tensor
	bufs []nodeBuffers
	outs []*tensor.Tensor

	// Work counters. The session itself is a single execution lane, but a
	// serving pool reads these concurrently with runs (stats endpoints,
	// sizing heuristics), so they are atomics.
	runs      atomic.Uint64
	items     atomic.Uint64
	busyNanos atomic.Int64
}

// SessionStats counts the work one session has executed. Runs counts Run
// and RunBatch calls, including failed or cancelled ones; Items counts only
// completed inference items (a successful Run is one item, a RunBatch adds
// one per completed input); Busy is the cumulative wall-clock spent inside
// Run/RunBatch, the pool's utilization signal.
type SessionStats struct {
	Runs  uint64
	Items uint64
	Busy  time.Duration
}

// Stats returns the session's work counters. Safe to call concurrently with
// runs on the session's own goroutine.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Runs:  s.runs.Load(),
		Items: s.items.Load(),
		Busy:  time.Duration(s.busyNanos.Load()),
	}
}

// ArenaBytes reports the total size of the session's preallocated tensor
// arena. Serving layers use it to budget pool growth and to bound acceptable
// per-request allocation (steady-state request handling should allocate well
// under one arena's worth).
func (s *Session) ArenaBytes() int {
	total := 0
	add := func(t *tensor.Tensor) {
		if t != nil {
			total += 4 * len(t.Data)
		}
	}
	for i := range s.bufs {
		b := &s.bufs[i]
		add(b.out)
		add(b.pad)
		add(b.wino)
		add(b.scratch)
	}
	return total
}

// BatchError reports that a RunBatch stopped before executing every input.
// Completed counts the items that finished: the batch results returned
// alongside the error hold exactly those entries, in input order. Err is the
// cause (a ctx error for cancellation, or the failing item's execution
// error) and is exposed through Unwrap for errors.Is/As.
type BatchError struct {
	Completed int
	Err       error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: batch stopped after %d item(s): %v", e.Completed, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// NewSession creates an execution context with a freshly allocated arena.
// Prediction-only (NoPrepack) modules cannot execute and return an error.
func (m *Module) NewSession() (*Session, error) {
	if m.noPrepack {
		return nil, fmt.Errorf("core: module was compiled with NoPrepack (prediction-only); recompile without it to execute")
	}
	s := &Session{
		m:    m,
		vals: make([]*tensor.Tensor, len(m.program)),
		bufs: make([]nodeBuffers, len(m.program)),
		outs: make([]*tensor.Tensor, len(m.Graph.Outputs)),
	}
	for i, n := range m.program {
		s.bufs[i] = m.arenaFor(n)
	}
	return s, nil
}

// arenaFor sizes one node's arena buffers from the compiled shapes
// (OutShape + OutLayout). Nodes whose output is an alias (input, dropout) or
// data-dependent (SSD head) get no buffer and keep allocating per call.
func (m *Module) arenaFor(n *graph.Node) nodeBuffers {
	var b nodeBuffers
	switch n.Op {
	case graph.OpInput, graph.OpDropout, graph.OpSSDHead:
		return b
	case graph.OpConcat:
		b.concat = make([]*tensor.Tensor, len(n.Inputs))
	case graph.OpConv2D:
		if n.Sched.Layout.Kind == tensor.LayoutNCHWc && !m.Int8 {
			in := n.Inputs[0]
			physIn := physicalDims(in.OutShape, in.OutLayout)
			if n.Sched.Algorithm == machine.AlgoWinograd {
				// Winograd pads implicitly in its data transform; its scratch
				// is the per-tile-row V buffer instead.
				b.wino = tensor.New(tensor.Flat(), ops.WinogradScratchShape(physIn, n.Conv)...)
			} else if pad := ops.PaddedShapeNCHWc(physIn, n.Conv); pad != nil {
				b.pad = tensor.New(in.OutLayout, pad...)
			}
		}
	case graph.OpLayoutTransform:
		if tensor.NeedsTransformScratch(n.Inputs[0].OutLayout, n.Transform) {
			b.scratch = tensor.New(tensor.NCHW(), n.OutShape.Dims...)
		}
	}
	b.out = tensor.New(n.OutLayout, physicalDims(n.OutShape, n.OutLayout)...)
	return b
}

// physicalDims converts a logical output shape plus its assigned physical
// layout into concrete buffer dimensions.
func physicalDims(shape graph.Shape, l tensor.Layout) []int {
	switch l.Kind {
	case tensor.LayoutNCHW, tensor.LayoutNHWC, tensor.LayoutNCHWc:
		as := tensor.ActivationShape{N: shape.Dims[0], C: shape.Dims[1], H: shape.Dims[2], W: shape.Dims[3]}
		return as.PhysicalShape(l)
	default:
		// Flat (and any rank-2) outputs store exactly their logical dims.
		return shape.Dims
	}
}

// run executes one inference into the arena, checking ctx between nodes.
func (s *Session) run(ctx context.Context, input *tensor.Tensor, pf ops.ParallelFor) error {
	m := s.m
	for i, n := range m.program {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		out, err := m.exec(n, s.vals, input, pf, &s.bufs[i])
		if err != nil {
			return fmt.Errorf("core: executing %v: %w", n, err)
		}
		s.vals[i] = out
	}
	return nil
}

// Run executes the model on one NCHW input, reusing the session arena. The
// returned tensors are views into the arena: they are valid until the next
// Run/RunBatch on this session, and must be Clone()d to outlive it. Ctx is
// checked between graph nodes, so cancellation takes effect mid-inference.
func (s *Session) Run(ctx context.Context, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := s.m.checkInput(input); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		s.busyNanos.Add(int64(time.Since(start)))
		s.runs.Add(1)
	}()
	if err := s.run(ctx, input, s.m.parallelFor()); err != nil {
		return nil, err
	}
	for i, o := range s.m.Graph.Outputs {
		s.outs[i] = s.vals[s.m.slot[o]]
	}
	s.items.Add(1)
	return s.outs, nil
}

// RunBatch executes the model once per input, amortizing validation and
// dispatch setup across the batch. Unlike Run, the returned tensors are
// deep copies (the arena is reused between batch items), so they remain
// valid indefinitely.
//
// Ctx is checked between batch items as well as between graph nodes. When a
// batch stops early — cancellation, or one item failing — RunBatch returns
// the results of the items that completed together with a *BatchError whose
// Completed field counts them: results[:Completed] are valid, fully
// executed outputs. errors.Is still matches the underlying cause (e.g.
// context.Canceled) through BatchError.Unwrap.
func (s *Session) RunBatch(ctx context.Context, inputs []*tensor.Tensor) ([][]*tensor.Tensor, error) {
	for i, in := range inputs {
		if err := s.m.checkInput(in); err != nil {
			return nil, fmt.Errorf("core: batch input %d: %w", i, err)
		}
	}
	pf := s.m.parallelFor()
	start := time.Now()
	defer func() {
		s.busyNanos.Add(int64(time.Since(start)))
		s.runs.Add(1)
	}()
	results := make([][]*tensor.Tensor, 0, len(inputs))
	for i, in := range inputs {
		// The between-items check: a cancellation that lands after item i-1
		// finished must not run item i to completion.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return results, &BatchError{Completed: i, Err: err}
			}
		}
		if err := s.run(ctx, in, pf); err != nil {
			return results, &BatchError{Completed: i, Err: fmt.Errorf("core: batch input %d: %w", i, err)}
		}
		outs := make([]*tensor.Tensor, len(s.m.Graph.Outputs))
		for j, o := range s.m.Graph.Outputs {
			outs[j] = s.vals[s.m.slot[o]].Clone()
		}
		results = append(results, outs)
		s.items.Add(1)
	}
	return results, nil
}

// Module returns the compiled module this session executes.
func (s *Session) Module() *Module { return s.m }

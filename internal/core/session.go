package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/ops"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// Session is a reusable execution context over a compiled Module. It
// materializes the module's compile-time execution plan: a small set of
// shared, size-classed arena slots (assigned by liveness analysis, so
// simultaneously-live values never alias) backs every operator's output,
// padding and transform scratch — allocated once at session creation and
// reused across calls, so steady-state Run performs no per-node allocation
// and the arena is several-fold smaller than one buffer per node.
//
// A Session is NOT safe for concurrent use: it is a single execution lane.
// The Module it came from IS safe to share — weights, packed parameters and
// the threading runtime are finalized at compile time and only read here —
// so concurrent inference over one model is one Session per goroutine:
//
//	m, _ := core.Compile(g, target, opts)
//	for i := 0; i < workers; i++ {
//		go func() {
//			s, _ := m.NewSession()
//			for job := range jobs {
//				outs, _ := s.Run(ctx, job)
//				...
//			}
//		}()
//	}
//
// Threading note: with BackendPool (or BackendOMP), one shared pool serves
// every session's parallel regions — chunked kernel loops on intra-op
// levels, node dispatch on inter-op levels, racing nodes on hybrid levels.
// The pool runs one region at a time, but a submitter that finds the pool
// busy is never blocked: threadpool.Pool's re-entrant ParallelFor degrades
// it to an inline serial loop on its own goroutine. A wide pool therefore
// minimizes single-request latency while concurrent sessions still make
// serial progress; throughput-oriented servers should still compile with
// Threads=1/BackendSerial so N sessions genuinely occupy N cores with no
// contention for the pool at all.
type Session struct {
	m *Module
	// slotData holds one backing array per plan slot; bufs holds the
	// per-node tensor views over them.
	slotData [][]float32
	vals     []*tensor.Tensor
	bufs     []nodeBuffers
	outs     []*tensor.Tensor
	// errs and panics are the per-lane staging areas for inter-op and hybrid
	// levels, sized to the widest level once so dispatch allocates nothing.
	errs   []error
	panics []any

	// Work counters. The session itself is a single execution lane, but a
	// serving pool reads these concurrently with runs (stats endpoints,
	// sizing heuristics), so they are atomics.
	runs      atomic.Uint64
	items     atomic.Uint64
	busyNanos atomic.Int64

	// corrupt marks a session whose execution panicked: the arena may hold
	// partial writes, so the session refuses further runs (see Corrupted).
	corrupt atomic.Bool
}

// SessionStats counts the work one session has executed. Runs counts Run
// and RunBatch calls, including failed or cancelled ones; Items counts only
// completed inference items (a successful Run is one item, a RunBatch adds
// one per completed input); Busy is the cumulative wall-clock spent inside
// Run/RunBatch, the pool's utilization signal.
type SessionStats struct {
	Runs  uint64
	Items uint64
	Busy  time.Duration
}

// Stats returns the session's work counters. Safe to call concurrently with
// runs on the session's own goroutine.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Runs:  s.runs.Load(),
		Items: s.items.Load(),
		Busy:  time.Duration(s.busyNanos.Load()),
	}
}

// ArenaBytes reports the total size of the session's preallocated arena —
// the planned shared slots, each counted once. Serving layers use it to
// budget pool growth and to bound acceptable per-request allocation
// (steady-state request handling should allocate well under one arena's
// worth).
func (s *Session) ArenaBytes() int {
	return s.m.plan.stats.ArenaBytes
}

// PlanStats returns the compile-time execution-plan summary this session
// materializes: slot packing, arena footprint, and the inter-op schedule.
func (s *Session) PlanStats() PlanStats { return s.m.PlanStats() }

// BatchError reports that a RunBatch stopped before executing every input.
// Completed counts the items that finished: the batch results returned
// alongside the error hold exactly those entries, in input order. Err is the
// cause (a ctx error for cancellation, or the failing item's execution
// error) and is exposed through Unwrap for errors.Is/As.
type BatchError struct {
	Completed int
	Err       error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("core: batch stopped after %d item(s): %v", e.Completed, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// NewSession materializes the module's execution plan into a freshly
// allocated arena. Prediction-only (NoPrepack) modules cannot execute and
// return an error.
func (m *Module) NewSession() (*Session, error) {
	if m.noPrepack {
		return nil, fmt.Errorf("core: module was compiled with NoPrepack (prediction-only); recompile without it to execute")
	}
	p := m.plan
	s := &Session{
		m:        m,
		slotData: make([][]float32, len(p.slots)),
		vals:     make([]*tensor.Tensor, len(m.program)),
		bufs:     make([]nodeBuffers, len(m.program)),
		outs:     make([]*tensor.Tensor, len(m.Graph.Outputs)),
		errs:     make([]error, p.stats.MaxWidth),
		panics:   make([]any, p.stats.MaxWidth),
	}
	for i, sl := range p.slots {
		// Zero-filled by make: pad slots rely on their border staying zero
		// (kernels only ever write the interior, and a pad slot is shared
		// exclusively between identical geometries).
		s.slotData[i] = make([]float32, sl.elems)
	}
	view := func(b planBuf) *tensor.Tensor {
		if b.slot < 0 {
			return nil
		}
		return &tensor.Tensor{
			Shape:  append([]int(nil), b.dims...),
			Data:   s.slotData[b.slot][:b.elems],
			Layout: b.layout,
		}
	}
	for i, st := range p.steps {
		s.bufs[i] = nodeBuffers{
			out:     view(st.out),
			pad:     view(st.pad),
			wino:    view(st.wino),
			scratch: view(st.scratch),
		}
		if st.concat > 0 {
			s.bufs[i].concat = make([]*tensor.Tensor, st.concat)
		}
	}
	return s, nil
}

// execStep executes one program node into its planned buffers.
func (s *Session) execStep(i int, input *tensor.Tensor, pf ops.ParallelFor) error {
	n := s.m.program[i]
	out, err := s.m.exec(n, s.vals, input, pf, &s.bufs[i])
	if err != nil {
		return fmt.Errorf("core: executing %v: %w", n, err)
	}
	s.vals[i] = out
	return nil
}

// run executes one inference through the level-synchronous plan under the
// per-level policy the compiler chose: intra-op levels run their nodes
// sequentially and hand the thread pool to the kernels' chunked loops;
// inter-op levels dispatch their independent nodes across the pool with
// serial kernels; hybrid levels run every node on its own goroutine with the
// pool-backed ParallelFor, so the first node into a parallel region claims
// the pool and its siblings degrade to inline serial loops. Ctx is checked
// between levels (and between nodes of sequential levels), so cancellation
// takes effect mid-inference.
func (s *Session) run(ctx context.Context, input *tensor.Tensor, pf ops.ParallelFor) error {
	m := s.m
	p := m.plan
	for li, level := range p.levels {
		if p.policy[li] != policyIntra && len(level) > 1 {
			// One cancellation poll per concurrent level: the level is the
			// unit of dispatch, so a poll per node would buy no earlier exit.
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			var err error
			if p.policy[li] == policyInter {
				err = s.runInterLevel(level, input, pf)
			} else {
				err = s.runHybridLevel(level, input, pf)
			}
			if err != nil {
				return err
			}
			continue
		}
		for _, i := range level {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := s.execStep(i, input, pf); err != nil {
				return err
			}
		}
	}
	return nil
}

// runInterLevel dispatches one inter-op level: one pool lane per independent
// node, kernels serial. The pool's join is the level barrier; lanes write
// disjoint vals entries and disjoint arena slots (the planner keeps a whole
// level alias-free).
func (s *Session) runInterLevel(level []int, input *tensor.Tensor, pf ops.ParallelFor) error {
	errs := s.errs[:len(level)]
	pf(len(level), func(k int) {
		errs[k] = s.execStep(level[k], input, threadpool.Serial)
	})
	var first error
	for k, err := range errs {
		if err != nil && first == nil {
			first = err
		}
		errs[k] = nil
	}
	return first
}

// runHybridLevel dispatches one hybrid level: every node on its own
// goroutine, every node handed the pool-backed ParallelFor. The first node
// to reach a parallel region wins the pool and spreads its kernel across
// the workers; concurrent siblings fall back to inline serial loops inside
// threadpool.Pool's re-entrant ParallelFor, so the level's nodes genuinely
// overlap without a second pool. Node 0 runs on the calling goroutine. A
// panic on a node goroutine is captured per lane and re-raised here, on the
// run goroutine, so safeRun's recoverExec still converts it into a typed
// *ExecPanicError and quarantines the session.
func (s *Session) runHybridLevel(level []int, input *tensor.Tensor, pf ops.ParallelFor) error {
	errs := s.errs[:len(level)]
	panics := s.panics[:len(level)]
	var wg sync.WaitGroup
	lane := func(k int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panics[k] = r
			}
		}()
		errs[k] = s.execStep(level[k], input, pf)
	}
	wg.Add(len(level))
	for k := 1; k < len(level); k++ {
		go lane(k)
	}
	lane(0)
	wg.Wait()
	var first error
	var repanic any
	for k := range level {
		if panics[k] != nil && repanic == nil {
			repanic = panics[k]
		}
		if errs[k] != nil && first == nil {
			first = errs[k]
		}
		errs[k], panics[k] = nil, nil
	}
	if repanic != nil {
		panic(repanic)
	}
	return first
}

// safeRun is the session-run boundary: a quarantined session refuses to
// execute, the fault-injection site fires (no-op unless a test armed it),
// and a panic anywhere in the kernels or executor is recovered into a typed
// *ExecPanicError instead of crashing the process. Both threading runtimes
// re-raise worker panics on the submitting goroutine, so this boundary
// catches parallel-region panics too.
func (s *Session) safeRun(ctx context.Context, input *tensor.Tensor, pf ops.ParallelFor) (err error) {
	if s.corrupt.Load() {
		return fmt.Errorf("core: session for %q is quarantined after a panic; create a new session", s.m.Graph.Name)
	}
	defer s.recoverExec(&err)
	if err := faults.Fire(faults.SiteSessionRun, s.m.Graph.Name); err != nil {
		return err
	}
	return s.run(ctx, input, pf)
}

// Run executes the model on one NCHW input, reusing the session arena. The
// returned tensors are views into the arena's pinned output slots: they are
// valid until the next Run/RunBatch on this session, and must be Clone()d to
// outlive it.
func (s *Session) Run(ctx context.Context, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := s.m.checkInput(input); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		s.busyNanos.Add(int64(time.Since(start)))
		s.runs.Add(1)
	}()
	if err := s.safeRun(ctx, input, s.m.parallelFor()); err != nil {
		return nil, err
	}
	for i, o := range s.m.Graph.Outputs {
		s.outs[i] = s.vals[s.m.slot[o]]
	}
	s.items.Add(1)
	return s.outs, nil
}

// RunBatch executes the model once per input, amortizing validation and
// dispatch setup across the batch. Unlike Run, the returned tensors are
// deep copies (the arena is reused between batch items), so they remain
// valid indefinitely.
//
// Ctx is checked between batch items as well as between graph levels. When a
// batch stops early — cancellation, or one item failing — RunBatch returns
// the results of the items that completed together with a *BatchError whose
// Completed field counts them: results[:Completed] are valid, fully
// executed outputs. errors.Is still matches the underlying cause (e.g.
// context.Canceled) through BatchError.Unwrap.
func (s *Session) RunBatch(ctx context.Context, inputs []*tensor.Tensor) ([][]*tensor.Tensor, error) {
	for i, in := range inputs {
		if err := s.m.checkInput(in); err != nil {
			return nil, fmt.Errorf("core: batch input %d: %w", i, err)
		}
	}
	pf := s.m.parallelFor()
	start := time.Now()
	defer func() {
		s.busyNanos.Add(int64(time.Since(start)))
		s.runs.Add(1)
	}()
	results := make([][]*tensor.Tensor, 0, len(inputs))
	for i, in := range inputs {
		// The between-items check: a cancellation that lands after item i-1
		// finished must not run item i to completion.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return results, &BatchError{Completed: i, Err: err}
			}
		}
		if err := s.safeRun(ctx, in, pf); err != nil {
			return results, &BatchError{Completed: i, Err: fmt.Errorf("core: batch input %d: %w", i, err)}
		}
		outs := make([]*tensor.Tensor, len(s.m.Graph.Outputs))
		for j, o := range s.m.Graph.Outputs {
			outs[j] = s.vals[s.m.slot[o]].Clone()
		}
		results = append(results, outs)
		s.items.Add(1)
	}
	return results, nil
}

// Module returns the compiled module this session executes.
func (s *Session) Module() *Module { return s.m }

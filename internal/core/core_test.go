package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/schedule"
	"repro/internal/search"
	"repro/internal/tensor"
)

func skylake() *machine.Target { return machine.IntelSkylakeC5() }

func runModel(t *testing.T, g *graph.Graph, level OptLevel, threads int, backend machine.ThreadBackend) []*tensor.Tensor {
	t.Helper()
	tgt := skylake()
	m, err := Compile(g, tgt, Options{Level: level, Threads: threads, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	in := tensor.New(tensor.NCHW(), g.Input.OutShape.Dims...)
	in.FillRandom(99, 1)
	outs, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

// TestOptLevelsAgree is the central correctness property: every optimization
// level computes the same function ("since our optimization does not change
// the semantics of the model, we do not expect any change of the model
// output", Section 4).
func TestOptLevelsAgree(t *testing.T) {
	builders := map[string]func(uint64) *graph.Graph{
		"tiny-cnn":      models.TinyCNN,
		"tiny-resnet":   models.TinyResNet,
		"tiny-densenet": models.TinyDenseNet,
		"tiny-vgg":      models.TinyVGG,
	}
	for name, mk := range builders {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			ref := runModel(t, mk(4), OptNone, 1, machine.BackendSerial)[0]
			for _, level := range []OptLevel{OptLayout, OptTransformElim, OptGlobalSearch} {
				got := runModel(t, mk(4), level, 1, machine.BackendSerial)[0]
				if !tensor.AllClose(ref, got, 1e-4) {
					t.Fatalf("%v output diverges from baseline: max diff %g",
						level, tensor.MaxAbsDiff(ref, got))
				}
			}
		})
	}
}

func TestThreadedExecutionMatchesSerial(t *testing.T) {
	ref := runModel(t, models.TinyResNet(8), OptTransformElim, 1, machine.BackendSerial)[0]
	pool := runModel(t, models.TinyResNet(8), OptTransformElim, 4, machine.BackendPool)[0]
	omp := runModel(t, models.TinyResNet(8), OptTransformElim, 4, machine.BackendOMP)[0]
	if tensor.MaxAbsDiff(ref, pool) != 0 {
		t.Fatal("thread pool execution must be bit-identical to serial")
	}
	if tensor.MaxAbsDiff(ref, omp) != 0 {
		t.Fatal("OMP-style execution must be bit-identical to serial")
	}
}

func TestFusionPreservesSemantics(t *testing.T) {
	tgt := skylake()
	mkOut := func(disableFusion bool) *tensor.Tensor {
		g := models.TinyResNet(12)
		m, err := Compile(g, tgt, Options{
			Level: OptTransformElim, Threads: 1,
			Backend: machine.BackendSerial, DisableFusion: disableFusion,
		})
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		in.FillRandom(5, 1)
		outs, err := m.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		return outs[0]
	}
	fused, unfused := mkOut(false), mkOut(true)
	if !tensor.AllClose(fused, unfused, 1e-5) {
		t.Fatalf("fusion changed semantics: %g", tensor.MaxAbsDiff(fused, unfused))
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	g := models.TinyCNN(1)
	m, err := Compile(g, skylake(), Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(tensor.New(tensor.NCHW(), 1, 3, 16, 16)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := m.Run(tensor.New(tensor.NHWC(), 1, 32, 32, 3)); err == nil {
		t.Fatal("expected layout error")
	}
}

func TestSoftmaxOutputIsDistribution(t *testing.T) {
	out := runModel(t, models.TinyCNN(3), OptTransformElim, 2, machine.BackendPool)[0]
	var sum float64
	for _, v := range out.Data {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", v)
		}
		sum += float64(v)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestPredictLatencyOrdering(t *testing.T) {
	// Table 3's monotone improvement: baseline > layout opt > transform
	// elim >= global search, on a real model's structure.
	tgt := skylake()
	lat := map[OptLevel]float64{}
	for _, level := range []OptLevel{OptNone, OptLayout, OptTransformElim, OptGlobalSearch} {
		g := models.MustBuild("resnet-18", 2)
		m, err := Compile(g, tgt, Options{Level: level, Search: search.Options{MaxCands: 8}})
		if err != nil {
			t.Fatal(err)
		}
		lat[level] = m.PredictLatency(PredictConfig{})
	}
	if !(lat[OptNone] > lat[OptLayout] && lat[OptLayout] > lat[OptTransformElim]) {
		t.Fatalf("latency not monotone: %v", lat)
	}
	if lat[OptGlobalSearch] > lat[OptTransformElim]*1.001 {
		t.Fatalf("global search (%v) must not lose to uniform plan (%v)",
			lat[OptGlobalSearch], lat[OptTransformElim])
	}
	// Layout optimization dominates (Section 4.2.1 reports 4-8x).
	speedup := lat[OptNone] / lat[OptLayout]
	if speedup < 3 || speedup > 10 {
		t.Fatalf("layout-opt speedup = %.2f, want within [3, 10]", speedup)
	}
}

func TestPredictLatencyThreadScaling(t *testing.T) {
	g := models.MustBuild("resnet-50", 2)
	m, err := Compile(g, skylake(), Options{Level: OptTransformElim})
	if err != nil {
		t.Fatal(err)
	}
	t1 := m.PredictLatency(PredictConfig{Threads: 1})
	t18 := m.PredictLatency(PredictConfig{Threads: 18, Backend: machine.BackendPool})
	if t18 >= t1 {
		t.Fatal("more threads must predict lower latency")
	}
	sp := t1 / t18
	if sp < 6 || sp > 18 {
		t.Fatalf("18-thread speedup = %.1f, want substantial but sub-linear", sp)
	}
	// OMP pays more region overhead at high thread counts.
	omp := m.PredictLatency(PredictConfig{Threads: 18, Backend: machine.BackendOMP})
	if omp <= t18 {
		t.Fatalf("OMP (%v) must predict slower than the custom pool (%v)", omp, t18)
	}
}

func TestTransformCountsAcrossLevels(t *testing.T) {
	tgt := skylake()
	counts := map[OptLevel]int{}
	for _, level := range []OptLevel{OptNone, OptLayout, OptTransformElim} {
		g := models.MustBuild("resnet-18", 2)
		m, err := Compile(g, tgt, Options{Level: level})
		if err != nil {
			t.Fatal(err)
		}
		counts[level] = m.TransformCount()
	}
	if counts[OptNone] != 0 {
		t.Fatalf("NCHW baseline has %d transforms, want 0", counts[OptNone])
	}
	if counts[OptLayout] <= counts[OptTransformElim] {
		t.Fatalf("library mode (%d) must pay more transforms than elimination (%d)",
			counts[OptLayout], counts[OptTransformElim])
	}
	// ResNet-18 has 20 convs: library mode pays roughly 2 transforms per
	// conv.
	if counts[OptLayout] < 20 {
		t.Fatalf("library mode transforms = %d, want >= one per conv", counts[OptLayout])
	}
	if counts[OptTransformElim] > 4 {
		t.Fatalf("elimination left %d transforms, want <= 4", counts[OptTransformElim])
	}
}

func TestSSDCompilesAndPredicts(t *testing.T) {
	g := models.MustBuild("ssd-resnet-50", 2)
	m, err := Compile(g, skylake(), Options{
		Level:  OptGlobalSearch,
		Search: search.Options{MaxCands: 4, ForcePBQP: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Search == nil || m.Search.Algorithm != search.AlgoPBQP {
		t.Fatalf("SSD must use the PBQP approximation, got %+v", m.Search)
	}
	lat := m.PredictLatency(PredictConfig{})
	if lat <= 0 {
		t.Fatalf("latency = %v", lat)
	}
}

func TestTinySSDRunsEndToEnd(t *testing.T) {
	// A miniature SSD exercises the head executor for real (and, with a
	// 2-thread pool, the inter-op dispatch of its independent head convs).
	g := models.TinySSD(21)
	m, err := Compile(g, skylake(), Options{Level: OptTransformElim, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	in := tensor.New(tensor.NCHW(), 1, 3, 64, 64)
	in.FillRandom(7, 1)
	outs, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	det := outs[0]
	if det.Rank() != 3 || det.Shape[2] != 6 {
		t.Fatalf("detection tensor shape %v", det.Shape)
	}
	const scoreThresh = 0.1 // models.TinySSD's detection threshold
	for i := 0; i < det.Shape[1]; i++ {
		score := det.Data[i*6+1]
		if score < scoreThresh || score > 1 {
			t.Fatalf("detection %d score %v out of range", i, score)
		}
	}
}

func TestGlobalSearchDBReuse(t *testing.T) {
	db := schedule.NewDB()
	g := models.MustBuild("resnet-18", 2)
	if _, err := Compile(g, skylake(), Options{Level: OptGlobalSearch, Search: search.Options{MaxCands: 4, DB: db}}); err != nil {
		t.Fatal(err)
	}
	mid := db.Len()
	if mid == 0 {
		t.Fatal("global search must populate the schedule DB")
	}
	// Compiling the same model again must not add workloads: the per-
	// workload results are memoized (the paper's database of searched
	// convolution workloads).
	g2 := models.MustBuild("resnet-18", 3)
	if _, err := Compile(g2, skylake(), Options{Level: OptGlobalSearch, Search: search.Options{MaxCands: 4, DB: db}}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != mid {
		t.Fatal("identical workloads must hit the schedule DB")
	}
	// The process-wide registry hands back the same DB per configuration.
	a := SharedScheduleDB(skylake(), 18, machine.BackendPool)
	b := SharedScheduleDB(skylake(), 18, machine.BackendPool)
	c := SharedScheduleDB(skylake(), 1, machine.BackendSerial)
	if a != b || a == c {
		t.Fatal("shared DB registry must key by execution configuration")
	}
}

func TestInt8ModuleCloseToFP32(t *testing.T) {
	// The Section 6 INT8 extension: quantized inference must track the fp32
	// module within quantization noise while using the same graph plan.
	tgt := skylake()
	for _, mk := range []func(uint64) *graph.Graph{models.TinyCNN, models.TinyResNet, models.TinyDenseNet} {
		in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		in.FillRandom(31, 1)

		f32, err := Compile(mk(9), tgt, Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
		if err != nil {
			t.Fatal(err)
		}
		i8, err := Compile(mk(9), tgt, Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial, Int8: true})
		if err != nil {
			t.Fatal(err)
		}
		if !i8.Int8 {
			t.Fatal("module must be marked Int8")
		}
		a, err := f32.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := i8.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		// Outputs are post-softmax probabilities: compare absolutely.
		if d := tensor.MaxAbsDiff(a[0], b[0]); d > 0.05 {
			t.Fatalf("int8 output diverges from fp32 by %g", d)
		}
	}
}

func TestInt8PredictsFaster(t *testing.T) {
	tgt := skylake()
	g1 := models.MustBuild("resnet-18", 2)
	f32, err := Compile(g1, tgt, Options{Level: OptTransformElim, NoPrepack: true})
	if err != nil {
		t.Fatal(err)
	}
	g2 := models.MustBuild("resnet-18", 2)
	i8, err := Compile(g2, tgt, Options{Level: OptTransformElim, NoPrepack: true, Int8: true})
	if err != nil {
		t.Fatal(err)
	}
	tf := f32.PredictLatency(PredictConfig{})
	ti := i8.PredictLatency(PredictConfig{})
	if ti >= tf {
		t.Fatalf("int8 predicted %v, must beat fp32 %v", ti, tf)
	}
	// Bounded by the ISA factor (2x on modeled Skylake) plus memory effects.
	if tf/ti > 2.2 {
		t.Fatalf("int8 speedup %.2f implausibly high", tf/ti)
	}
}

func TestBatchedInference(t *testing.T) {
	// Batch-N execution must equal N independent batch-1 runs ("we just
	// need to add the N value to our configuration tuple", Section 4).
	tgt := skylake()
	mkBatched := func(n int) *graph.Graph {
		b := graph.NewBuilder("batched", 3)
		x := b.InputBatch(n, 3, 16, 16)
		x = b.ConvBNReLU(x, 8, 3, 1, 1)
		x = b.MaxPool(x, 2, 2, 0)
		x = b.ConvBNReLU(x, 16, 3, 1, 1)
		x = b.GlobalAvgPool(x)
		x = b.Flatten(x)
		return b.Finish(b.Softmax(b.Dense(x, 4)))
	}

	single, err := Compile(mkBatched(1), tgt, Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Compile(mkBatched(3), tgt, Options{Level: OptTransformElim, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	batchIn := tensor.New(tensor.NCHW(), 3, 3, 16, 16)
	batchIn.FillRandom(55, 1)
	bOut, err := batched.Run(batchIn)
	if err != nil {
		t.Fatal(err)
	}
	perImage := batchIn.NumElements() / 3
	perOut := bOut[0].NumElements() / 3
	for img := 0; img < 3; img++ {
		one := tensor.FromData(tensor.NCHW(), batchIn.Data[img*perImage:(img+1)*perImage], 1, 3, 16, 16)
		sOut, err := single.Run(one)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perOut; i++ {
			got := bOut[0].Data[img*perOut+i]
			want := sOut[0].Data[i]
			d := got - want
			if d < -1e-5 || d > 1e-5 {
				t.Fatalf("image %d output %d: batched %v vs single %v", img, i, got, want)
			}
		}
	}
}

func TestRunProfiled(t *testing.T) {
	g := models.TinyResNet(2)
	m, err := Compile(g, skylake(), Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(1, 1)
	outsRef, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	outs, prof, err := m.RunProfiled(in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(outsRef[0], outs[0]) != 0 {
		t.Fatal("profiled run changed the output")
	}
	if prof.Total <= 0 || len(prof.Timings) == 0 {
		t.Fatalf("empty profile: %+v", prof)
	}
	byKind := prof.ByKind()
	if len(byKind) == 0 || byKind[0].Kind != graph.OpConv2D {
		t.Fatalf("convolution must dominate the profile, got %v", byKind)
	}
	if s := prof.String(); !strings.Contains(s, "conv2d") {
		t.Fatalf("profile rendering incomplete: %s", s)
	}
	// Profiled shape errors mirror Run's.
	if _, _, err := m.RunProfiled(tensor.New(tensor.NCHW(), 1, 3, 8, 8)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestNoPrepackModuleCannotRun(t *testing.T) {
	m, err := Compile(models.TinyCNN(1), skylake(), Options{Level: OptTransformElim, NoPrepack: true})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	if _, err := m.Run(in); err == nil {
		t.Fatal("prediction-only module must refuse to Run")
	}
	if _, _, err := m.RunProfiled(in); err == nil {
		t.Fatal("prediction-only module must refuse to RunProfiled")
	}
	if m.PredictLatency(PredictConfig{}) <= 0 {
		t.Fatal("prediction must still work")
	}
}

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	tgt := skylake()
	// Compile with global search and export the plan.
	orig, err := Compile(models.MustBuild("resnet-18", 2), tgt,
		Options{Level: OptGlobalSearch, Threads: 4, Search: search.Options{MaxCands: 6}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SavePlan(&buf); err != nil {
		t.Fatal(err)
	}

	// Re-apply to a fresh graph of the same model: no search, same plan.
	pf, err := LoadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Model != "resnet-18" || pf.Target != tgt.Name {
		t.Fatalf("plan header wrong: %+v", pf)
	}
	replayed, err := CompileWithPlan(models.MustBuild("resnet-18", 2), tgt, pf, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := orig.PredictLatency(PredictConfig{})
	b := replayed.PredictLatency(PredictConfig{})
	if d := a - b; d < -1e-12 || d > 1e-12 {
		t.Fatalf("replayed plan latency %v != original %v", b, a)
	}
	if orig.TransformCount() != replayed.TransformCount() {
		t.Fatal("replayed plan has different transform structure")
	}

	// Outputs agree with a baseline module.
	in := tensor.New(tensor.NCHW(), 1, 3, 224, 224)
	in.FillRandom(1, 1)
	wantOut, err := orig.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, err := replayed.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(wantOut[0], gotOut[0]) != 0 {
		t.Fatal("replayed module computes different outputs")
	}
	orig.Close()
	replayed.Close()
}

func TestWinogradPlanRoundTrip(t *testing.T) {
	tgt := skylake()
	orig, err := Compile(models.TinyResNet(3), tgt,
		Options{Level: OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	var buf bytes.Buffer
	if err := orig.SavePlan(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"algorithm": "winograd"`) {
		t.Fatalf("saved plan carries no winograd entry:\n%s", buf.String())
	}

	pf, err := LoadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := CompileWithPlan(models.TinyResNet(3), tgt, pf, Options{Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	// The algorithm choice must survive the round trip per convolution.
	algoByName := map[string]machine.ConvAlgorithm{}
	for _, n := range orig.Graph.Convs() {
		algoByName[n.Name] = n.Sched.Algorithm
	}
	winograd := 0
	for _, n := range replayed.Graph.Convs() {
		if n.Sched.Algorithm != algoByName[n.Name] {
			t.Fatalf("conv %q: algorithm %v after replay, want %v", n.Name, n.Sched.Algorithm, algoByName[n.Name])
		}
		if n.Sched.Algorithm == machine.AlgoWinograd {
			winograd++
		}
	}
	if winograd == 0 {
		t.Fatal("replayed plan lost every winograd schedule")
	}
	// And the replayed module must execute bit-identically.
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(13, 1)
	want, err := orig.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := replayed.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(want[0], got[0]) != 0 {
		t.Fatal("replayed winograd module computes different outputs")
	}

	// Plans saved before the algorithm field existed (no "algorithm" keys)
	// must still load and default every convolution to the direct template.
	for i := range pf.Entries {
		pf.Entries[i].Algorithm = ""
	}
	direct, err := CompileWithPlan(models.TinyResNet(3), tgt, pf, Options{Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatalf("plan without algorithm fields must load: %v", err)
	}
	defer direct.Close()
	for _, n := range direct.Graph.Convs() {
		if n.Sched.Algorithm != machine.AlgoDirect {
			t.Fatalf("conv %q: algorithm-less plan entry produced %v", n.Name, n.Sched.Algorithm)
		}
	}
	if _, err := direct.Run(in); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradPlanValidation(t *testing.T) {
	tgt := skylake()
	m, err := Compile(models.TinyResNet(3), tgt,
		Options{Level: OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var buf bytes.Buffer
	if err := m.SavePlan(&buf); err != nil {
		t.Fatal(err)
	}
	load := func() *PlanFile {
		pf, err := LoadPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return pf
	}

	// Winograd on a non-3x3 convolution (the 1x1 residual projection) must
	// be rejected at plan-apply time.
	non3x3 := ""
	for _, n := range m.Graph.Convs() {
		if n.Conv.KH != 3 {
			non3x3 = n.Name
			break
		}
	}
	if non3x3 == "" {
		t.Fatal("test model has no non-3x3 convolution")
	}
	pf := load()
	for i := range pf.Entries {
		if pf.Entries[i].Conv == non3x3 {
			pf.Entries[i].Algorithm = "winograd"
		}
	}
	if _, err := CompileWithPlan(models.TinyResNet(3), tgt, pf, Options{}); err == nil {
		t.Fatal("expected error scheduling winograd on a non-3x3 convolution")
	}

	// Unknown algorithm names fail loudly.
	pf = load()
	pf.Entries[0].Algorithm = "strassen"
	if _, err := CompileWithPlan(models.TinyResNet(3), tgt, pf, Options{}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}

	// Winograd plans cannot drive an int8 module (no quantized kernel).
	pf = load()
	if _, err := CompileWithPlan(models.TinyResNet(3), tgt, pf, Options{Int8: true}); err == nil {
		t.Fatal("expected error applying a winograd plan to an int8 module")
	}
}

func TestDisableWinogradPinsDirect(t *testing.T) {
	m, err := Compile(models.TinyResNet(3), skylake(),
		Options{Level: OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial, DisableWinograd: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, n := range m.Graph.Convs() {
		if n.Sched.Algorithm != machine.AlgoDirect {
			t.Fatalf("conv %q scheduled %v with winograd disabled", n.Name, n.Sched.Algorithm)
		}
	}
	// Int8 implies the same restriction (and must compile + run).
	q, err := Compile(models.TinyResNet(3), skylake(),
		Options{Level: OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial, Int8: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for _, n := range q.Graph.Convs() {
		if n.Sched.Algorithm != machine.AlgoDirect {
			t.Fatalf("int8 conv %q scheduled %v", n.Name, n.Sched.Algorithm)
		}
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(2, 1)
	if _, err := q.Run(in); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMismatchesFail(t *testing.T) {
	tgt := skylake()
	m, err := Compile(models.TinyCNN(1), tgt, Options{Level: OptGlobalSearch, Search: search.Options{MaxCands: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SavePlan(&buf); err != nil {
		t.Fatal(err)
	}
	pf, err := LoadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong model: conv names will not match.
	if _, err := CompileWithPlan(models.TinyResNet(1), tgt, pf, Options{}); err == nil {
		t.Fatal("expected error applying plan to a different model")
	}
	// Wrong target.
	if _, err := CompileWithPlan(models.TinyCNN(1), machine.ARMCortexA72(), pf, Options{}); err == nil {
		t.Fatal("expected error applying plan to a different target")
	}
	// Corrupt JSON.
	if _, err := LoadPlan(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
	// Corrupt blocks.
	pf.Entries[0].ICBlock = 7 // does not divide 3 input channels
	pf.Entries[0].Layout = "nchwc"
	if _, err := CompileWithPlan(models.TinyCNN(1), tgt, pf, Options{}); err == nil {
		t.Fatal("expected error for non-dividing blocks")
	}
}

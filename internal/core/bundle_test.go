package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/artifact"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// saveBundleBytes compiles a model and serializes it, returning the module
// too so tests can compare against the original.
func saveBundleBytes(t testing.TB, model string, opts Options) (*Module, []byte) {
	t.Helper()
	g, err := models.BuildAny(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(g, skylake(), opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", model, err)
	}
	var buf bytes.Buffer
	if err := m.SaveBundle(&buf); err != nil {
		t.Fatalf("%s: save bundle: %v", model, err)
	}
	return m, buf.Bytes()
}

// TestBundleRoundTrip is the core contract: a module loaded from a bundle —
// no search, no packing — computes bit-identical results to the module that
// produced the bundle, across algorithms (direct, winograd, depthwise),
// precisions (fp32, int8) and pass-pipeline ablations.
func TestBundleRoundTrip(t *testing.T) {
	cases := []struct {
		model string
		opts  Options
	}{
		{"tiny-resnet", Options{Level: OptGlobalSearch, Threads: 2, Backend: machine.BackendPool}},
		{"tiny-mobilenet", Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial}},
		{"tiny-cnn", Options{Level: OptGlobalSearch, Int8: true, Threads: 1, Backend: machine.BackendSerial}},
		{"tiny-cnn", Options{Level: OptNone, Threads: 1, Backend: machine.BackendSerial}},
		{"tiny-vgg", Options{Level: OptLayout, Threads: 1, Backend: machine.BackendSerial}},
		{"tiny-resnet", Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial, DisableBNFold: true, DisableFusion: true}},
	}
	for _, tc := range cases {
		orig, raw := saveBundleBytes(t, tc.model, tc.opts)
		loaded, err := LoadBundle(bytes.NewReader(raw), models.ResolveGraph, Options{Threads: tc.opts.Threads, Backend: tc.opts.Backend})
		if err != nil {
			t.Fatalf("%s %+v: load bundle: %v", tc.model, tc.opts, err)
		}
		if loaded.PlanStats().ArenaBytes != orig.PlanStats().ArenaBytes {
			t.Fatalf("%s: loaded arena %d, original %d", tc.model, loaded.PlanStats().ArenaBytes, orig.PlanStats().ArenaBytes)
		}
		if loaded.Int8 != orig.Int8 || loaded.Level != orig.Level {
			t.Fatalf("%s: loaded int8=%v level=%v, original int8=%v level=%v", tc.model, loaded.Int8, loaded.Level, orig.Int8, orig.Level)
		}

		in := tensor.New(tensor.NCHW(), orig.Graph.Input.OutShape.Dims...)
		in.FillRandom(99, 1)
		want, err := orig.Run(in)
		if err != nil {
			t.Fatalf("%s: original run: %v", tc.model, err)
		}
		got, err := loaded.Run(in)
		if err != nil {
			t.Fatalf("%s: loaded run: %v", tc.model, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d outputs, want %d", tc.model, len(got), len(want))
		}
		for i := range want {
			if len(got[i].Data) != len(want[i].Data) {
				t.Fatalf("%s output %d: %d values, want %d", tc.model, i, len(got[i].Data), len(want[i].Data))
			}
			for j := range want[i].Data {
				if got[i].Data[j] != want[i].Data[j] {
					t.Fatalf("%s output %d[%d]: loaded %v != original %v (must be bit-identical)",
						tc.model, i, j, got[i].Data[j], want[i].Data[j])
				}
			}
		}
		orig.Close()
		loaded.Close()
	}
}

// TestBundleSharedPool verifies a loaded module can borrow a caller-owned
// thread pool and that Close leaves the pool running for its owner.
func TestBundleSharedPool(t *testing.T) {
	orig, raw := saveBundleBytes(t, "tiny-resnet", Options{Level: OptTransformElim, Threads: 2, Backend: machine.BackendPool})
	defer orig.Close()

	shared := threadpool.NewPool(2)
	defer shared.Close()
	a, err := LoadBundle(bytes.NewReader(raw), models.ResolveGraph, Options{Threads: 2, Backend: machine.BackendPool, SharedPool: shared})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(bytes.NewReader(raw), models.ResolveGraph, Options{Threads: 2, Backend: machine.BackendPool, SharedPool: shared})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), orig.Graph.Input.OutShape.Dims...)
	in.FillRandom(5, 1)
	want, err := orig.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	outA, err := a.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	a.Close() // must not tear down the shared pool under b
	outB, err := b.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	for j := range want[0].Data {
		if outA[0].Data[j] != want[0].Data[j] || outB[0].Data[j] != want[0].Data[j] {
			t.Fatalf("shared-pool output diverges at %d", j)
		}
	}
}

// TestBundleTargetMismatch: a bundle whose target signature disagrees with
// what this build resolves must be rejected with ErrBundleTarget.
func TestBundleTargetMismatch(t *testing.T) {
	_, raw := saveBundleBytes(t, "tiny-cnn", Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	rewrite := func(mut func(h *artifact.Header)) []byte {
		b, err := artifact.Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		mut(&b.Header)
		var buf bytes.Buffer
		if err := artifact.Write(&buf, b.Header, b.Params); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	skewedLanes := rewrite(func(h *artifact.Header) { h.Target.VectorLanes /= 2 })
	if _, err := LoadBundle(bytes.NewReader(skewedLanes), models.ResolveGraph, Options{}); !errors.Is(err, ErrBundleTarget) {
		t.Fatalf("skewed lanes: err = %v, want ErrBundleTarget", err)
	}
	unknown := rewrite(func(h *artifact.Header) { h.Target.Name = "no-such-cpu" })
	if _, err := LoadBundle(bytes.NewReader(unknown), models.ResolveGraph, Options{}); !errors.Is(err, ErrBundleTarget) {
		t.Fatalf("unknown target: err = %v, want ErrBundleTarget", err)
	}
	// Cores is provenance only: a different core count must still load.
	cores := rewrite(func(h *artifact.Header) { h.Target.Cores = 99 })
	m, err := LoadBundle(bytes.NewReader(cores), models.ResolveGraph, Options{Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatalf("different cores: %v", err)
	}
	m.Close()
}

// TestBundleStaleContent: bundles that decode structurally but disagree with
// the rebuilt graph (wrong model, missing or surplus params, drifted arena)
// fail with ErrInvalidArtifact.
func TestBundleStaleContent(t *testing.T) {
	_, raw := saveBundleBytes(t, "tiny-cnn", Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	b, err := artifact.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	mutations := []func(h *artifact.Header, params []artifact.Param) []artifact.Param{
		func(h *artifact.Header, params []artifact.Param) []artifact.Param {
			h.Model = "tiny-resnet" // plan/params from another model
			return params
		},
		func(h *artifact.Header, params []artifact.Param) []artifact.Param {
			h.Model = "no-such-model"
			return params
		},
		func(h *artifact.Header, params []artifact.Param) []artifact.Param {
			return params[:len(params)-1] // drop a required param
		},
		func(h *artifact.Header, params []artifact.Param) []artifact.Param {
			return append(params, params[len(params)-1]) // duplicate param
		},
		func(h *artifact.Header, params []artifact.Param) []artifact.Param {
			h.ArenaBytes += 4096 // recorded arena drifts from the rebuilt plan
			return params
		},
		func(h *artifact.Header, params []artifact.Param) []artifact.Param {
			h.Level = "warp-speed"
			return params
		},
	}
	for i, mut := range mutations {
		h := b.Header
		params := append([]artifact.Param(nil), b.Params...)
		params = mut(&h, params)
		var buf bytes.Buffer
		if err := artifact.Write(&buf, h, params); err != nil {
			t.Fatalf("mutation %d: rewrite: %v", i, err)
		}
		if _, err := LoadBundle(bytes.NewReader(buf.Bytes()), models.ResolveGraph, Options{}); !errors.Is(err, artifact.ErrInvalidArtifact) {
			t.Fatalf("mutation %d: err = %v, want ErrInvalidArtifact", i, err)
		}
	}
}

// FuzzLoadBundle mirrors FuzzLoadPlan for the binary bundle format: however
// corrupted, truncated or version-skewed the input, LoadBundle never panics
// and every rejection is typed (artifact.ErrInvalidArtifact or
// ErrBundleTarget), so repository tooling can distinguish "this bundle is
// bad" from an internal failure. Decoding must also never allocate
// proportionally to attacker-claimed sizes — the fuzz engine's memory limit
// enforces that side.
func FuzzLoadBundle(f *testing.F) {
	_, valid := saveBundleBytes(f, "tiny-cnn", Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:11])
	f.Add([]byte{})
	f.Add([]byte("NEOB"))
	f.Add([]byte("not a bundle at all........."))
	// Version skew.
	skew := append([]byte(nil), valid...)
	skew[4]++
	f.Add(skew)
	// Flipped header byte (breaks JSON or a validated field).
	hdr := append([]byte(nil), valid...)
	hdr[20] ^= 0x20
	f.Add(hdr)
	// Flipped payload byte (breaks the CRC).
	pay := append([]byte(nil), valid...)
	pay[len(pay)-5] ^= 0x01
	f.Add(pay)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadBundle(bytes.NewReader(data), models.ResolveGraph, Options{Threads: 1, Backend: machine.BackendSerial})
		if err != nil {
			if !errors.Is(err, artifact.ErrInvalidArtifact) && !errors.Is(err, ErrBundleTarget) {
				t.Fatalf("LoadBundle returned an untyped error: %v", err)
			}
			return
		}
		m.Close()
	})
}

package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// OpTiming is one node's measured execution time from a profiled run.
type OpTiming struct {
	Node    *graph.Node
	Elapsed time.Duration
}

// Profile is the per-operator breakdown of one real inference.
type Profile struct {
	Total   time.Duration
	Timings []OpTiming
}

// ByKind aggregates the profile per operator kind, descending by time.
func (p *Profile) ByKind() []struct {
	Kind    graph.OpKind
	Elapsed time.Duration
	Count   int
} {
	agg := map[graph.OpKind]*struct {
		d time.Duration
		c int
	}{}
	for _, t := range p.Timings {
		e, ok := agg[t.Node.Op]
		if !ok {
			e = &struct {
				d time.Duration
				c int
			}{}
			agg[t.Node.Op] = e
		}
		e.d += t.Elapsed
		e.c++
	}
	out := make([]struct {
		Kind    graph.OpKind
		Elapsed time.Duration
		Count   int
	}, 0, len(agg))
	for k, e := range agg {
		out = append(out, struct {
			Kind    graph.OpKind
			Elapsed time.Duration
			Count   int
		}{k, e.d, e.c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Elapsed > out[j].Elapsed })
	return out
}

// String renders the aggregate breakdown.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total %v over %d ops\n", p.Total.Round(time.Microsecond), len(p.Timings))
	for _, e := range p.ByKind() {
		pct := 100 * float64(e.Elapsed) / float64(p.Total)
		fmt.Fprintf(&b, "  %-18s %10v  %5.1f%%  (%d ops)\n",
			e.Kind, e.Elapsed.Round(time.Microsecond), pct, e.Count)
	}
	return b.String()
}

// RunProfiled executes one inference like Run while timing every operator.
// It returns the outputs and the profile. Per-operator timing requires
// sequential node execution, so profiled runs walk the plan's levels in
// order with intra-op kernels only (inter-op dispatch is disabled for the
// measurement), and instrumentation adds one clock read per node — profiled
// latency slightly exceeds Run latency.
func (m *Module) RunProfiled(input *tensor.Tensor) ([]*tensor.Tensor, *Profile, error) {
	if err := m.checkInput(input); err != nil {
		return nil, nil, err
	}
	s, err := m.NewSession()
	if err != nil {
		return nil, nil, err
	}
	pf := m.parallelFor()
	prof := &Profile{Timings: make([]OpTiming, 0, len(m.program))}
	start := time.Now()
	for _, level := range m.plan.levels {
		for _, i := range level {
			opStart := time.Now()
			if err := s.execStep(i, input, pf); err != nil {
				return nil, nil, err
			}
			prof.Timings = append(prof.Timings, OpTiming{Node: m.program[i], Elapsed: time.Since(opStart)})
		}
	}
	prof.Total = time.Since(start)
	outs := make([]*tensor.Tensor, len(m.Graph.Outputs))
	for i, o := range m.Graph.Outputs {
		outs[i] = s.vals[m.slot[o]]
	}
	return outs, prof, nil
}

package core

import (
	"fmt"
	"runtime/debug"
)

// ExecPanicError reports a panic recovered at the session-run boundary: a
// kernel or executor blew up mid-inference instead of returning an error.
// The session that was executing is quarantined (Session.Corrupted reports
// true) because its arena may hold partially written state — serving layers
// must discard it rather than recycle it into a pool, and should treat
// repeated ExecPanicErrors on one model as a degradation signal (circuit
// breaker) rather than crashing the process.
type ExecPanicError struct {
	// Model is the graph name of the module that was executing.
	Model string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *ExecPanicError) Error() string {
	return fmt.Sprintf("core: panic executing %q: %v", e.Model, e.Value)
}

// recoverExec converts an in-flight panic into an *ExecPanicError and marks
// the session corrupted. It must be called via defer with the run's named
// error result.
func (s *Session) recoverExec(err *error) {
	if r := recover(); r != nil {
		s.corrupt.Store(true)
		*err = &ExecPanicError{Model: s.m.Graph.Name, Value: r, Stack: debug.Stack()}
	}
}

// Corrupted reports whether a panic was recovered while this session was
// executing. A corrupted session's arena is in an unknown state: it must not
// be reused for inference, and pooled-session owners should discard it and
// create a fresh session instead.
func (s *Session) Corrupted() bool { return s.corrupt.Load() }

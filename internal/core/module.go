package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/quant"
	"repro/internal/search"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// Module is a compiled model: the optimized graph, the pre-transformed
// parameters, and the threading runtime. It is the NeoCPU "standalone module
// with minimal size" — executing it requires nothing beyond this package.
type Module struct {
	Graph  *graph.Graph
	Target *machine.Target
	Level  OptLevel
	// Search carries the global-search diagnostics when Level is
	// OptGlobalSearch (nil otherwise).
	Search *search.Outcome
	// Int8 marks quantized modules (blocked convolutions run in int8).
	Int8 bool
	// noPrepack marks prediction-only modules (weights were released).
	noPrepack bool

	threads int
	backend machine.ThreadBackend
	program []*graph.Node
	// packed holds the compile-time pre-transformed OIHW[x]i[y]o weights.
	packed map[*graph.Node]*tensor.Tensor
	// qpacked holds the quantized pre-transformed weights (Int8 modules).
	qpacked map[*graph.Node]*quant.QTensor
	// anchors holds the pre-computed SSD anchor boxes per head node.
	anchors map[*graph.Node]*tensor.Tensor

	pool *threadpool.Pool
	omp  *threadpool.OMPPool
}

// Threads returns the configured execution width.
func (m *Module) Threads() int { return m.threads }

// Backend returns the configured threading runtime.
func (m *Module) Backend() machine.ThreadBackend { return m.backend }

// parallelFor lazily constructs the threading runtime.
func (m *Module) parallelFor() ops.ParallelFor {
	switch m.backend {
	case machine.BackendPool:
		if m.pool == nil {
			m.pool = threadpool.NewPool(m.threads)
		}
		return m.pool.ParallelFor
	case machine.BackendOMP:
		if m.omp == nil {
			m.omp = threadpool.NewOMPPool(m.threads)
		}
		return m.omp.ParallelFor
	default:
		return threadpool.Serial
	}
}

// Close releases the thread pool. The module remains usable; a subsequent
// Run recreates the pool.
func (m *Module) Close() {
	if m.pool != nil {
		m.pool.Close()
		m.pool = nil
	}
}

// Run executes the model on one NCHW input image and returns the outputs in
// graph-output order. Classification models return (1, classes)
// probabilities; SSD returns a (1, numDetections, 6) tensor whose rows are
// (class, score, xmin, ymin, xmax, ymax).
func (m *Module) Run(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if m.noPrepack {
		return nil, fmt.Errorf("core: module was compiled with NoPrepack (prediction-only); recompile without it to execute")
	}
	in := m.Graph.Input.OutShape
	want := []int{in.Dims[0], in.Dims[1], in.Dims[2], in.Dims[3]}
	if input.Layout.Kind != tensor.LayoutNCHW || len(input.Shape) != 4 {
		return nil, fmt.Errorf("core: input must be NCHW rank-4, got %v %v", input.Layout, input.Shape)
	}
	for i, d := range want {
		if input.Shape[i] != d {
			return nil, fmt.Errorf("core: input shape %v, want %v", input.Shape, want)
		}
	}
	pf := m.parallelFor()

	env := make(map[*graph.Node]*tensor.Tensor, len(m.program))
	for _, n := range m.program {
		out, err := m.exec(n, env, input, pf)
		if err != nil {
			return nil, fmt.Errorf("core: executing %v: %w", n, err)
		}
		env[n] = out
	}
	outs := make([]*tensor.Tensor, len(m.Graph.Outputs))
	for i, o := range m.Graph.Outputs {
		outs[i] = env[o]
	}
	return outs, nil
}

func (m *Module) exec(n *graph.Node, env map[*graph.Node]*tensor.Tensor, input *tensor.Tensor, pf ops.ParallelFor) (*tensor.Tensor, error) {
	arg := func(i int) *tensor.Tensor { return env[n.Inputs[i]] }
	switch n.Op {
	case graph.OpInput:
		return input, nil

	case graph.OpConv2D:
		epi := ops.Epilogue{Bias: n.Bias, ReLU: n.FusedReLU}
		if n.FusedResidual != nil {
			epi.Residual = env[n.FusedResidual]
		}
		switch n.Sched.Layout.Kind {
		case tensor.LayoutNCHWc:
			if m.Int8 {
				// Dynamic activation quantization: symmetric per-tensor
				// scale from this activation's max-abs, then the int32-
				// accumulating blocked kernel with fused rescale.
				qin := quant.Quantize(arg(0))
				return quant.Conv2DInt8NCHWc(qin, m.qpacked[n], n.Conv,
					n.Sched.ICBlock, n.Sched.OCBlock, n.Sched.RegN, epi, pf), nil
			}
			return ops.Conv2DNCHWc(arg(0), m.packed[n], n.Conv,
				n.Sched.ICBlock, n.Sched.OCBlock, n.Sched.RegN, n.Sched.UnrollKer, epi, pf), nil
		case tensor.LayoutNHWC:
			return ops.Conv2DNHWC(arg(0), n.Weight, n.Conv, epi, pf), nil
		default:
			return ops.Conv2DNCHW(arg(0), n.Weight, n.Conv, epi, pf), nil
		}

	case graph.OpBatchNorm:
		return ops.BatchNormInference(arg(0), n.BN, pf), nil
	case graph.OpReLU:
		return ops.ReLU(arg(0), pf), nil
	case graph.OpDropout:
		return arg(0), nil
	case graph.OpPool:
		return ops.Pool2D(arg(0), n.Pool, pf), nil
	case graph.OpGlobalAvgPool:
		return ops.GlobalAvgPool(arg(0), pf), nil
	case graph.OpAdd:
		return ops.Add(arg(0), arg(1), pf), nil
	case graph.OpConcat:
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i := range n.Inputs {
			ins[i] = arg(i)
		}
		return ops.Concat(ins, pf), nil
	case graph.OpFlatten:
		return ops.Flatten(arg(0)), nil
	case graph.OpDense:
		return ops.Dense(arg(0), n.Weight, n.Bias, false, pf), nil
	case graph.OpSoftmax:
		return ops.Softmax(arg(0)), nil
	case graph.OpLayoutTransform:
		return tensor.Transform(arg(0), n.Transform), nil
	case graph.OpSSDHead:
		return m.execSSDHead(n, env)
	}
	return nil, fmt.Errorf("unsupported op %v", n.Op)
}

// buildAnchors concatenates the per-scale MultiBoxPrior outputs for one SSD
// head at compile time.
func buildAnchors(n *graph.Node) *tensor.Tensor {
	var all []float32
	total := 0
	for i := 0; i < len(n.Inputs); i += 2 {
		cls := n.Inputs[i].OutShape
		h, w := cls.Dims[2], cls.Dims[3]
		a := ops.MultiBoxPrior(h, w, n.SSD.Sizes[i/2], n.SSD.Ratios[i/2])
		all = append(all, a.Data...)
		total += a.Shape[1]
	}
	return tensor.FromData(tensor.Flat(), all, 1, total, 4)
}

// execSSDHead gathers the per-scale class/location convolution outputs,
// rearranges them into per-anchor order, applies softmax over classes, and
// decodes+NMSes via MultiBoxDetection.
func (m *Module) execSSDHead(n *graph.Node, env map[*graph.Node]*tensor.Tensor) (*tensor.Tensor, error) {
	numClasses := n.SSD.NumClasses
	anchorsT := m.anchors[n]
	numAnchors := anchorsT.Shape[1]

	clsLogits := make([]float32, (numClasses+1)*numAnchors) // [class][anchor]
	locPred := make([]float32, numAnchors*4)

	base := 0
	for i := 0; i < len(n.Inputs); i += 2 {
		cls := env[n.Inputs[i]]
		loc := env[n.Inputs[i+1]]
		if cls.Layout.Kind != tensor.LayoutNCHW || loc.Layout.Kind != tensor.LayoutNCHW {
			return nil, fmt.Errorf("ssd head requires NCHW inputs, got %v/%v", cls.Layout, loc.Layout)
		}
		per := len(n.SSD.Sizes[i/2]) + len(n.SSD.Ratios[i/2]) - 1
		h, w := cls.Shape[2], cls.Shape[3]
		// cls channels: a*(numClasses+1)+c; anchor index: (y*w+x)*per + a.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for a := 0; a < per; a++ {
					anchor := base + (y*w+x)*per + a
					for c := 0; c <= numClasses; c++ {
						v := cls.Data[((a*(numClasses+1)+c)*h+y)*w+x]
						clsLogits[c*numAnchors+anchor] = v
					}
					for k := 0; k < 4; k++ {
						locPred[anchor*4+k] = loc.Data[((a*4+k)*h+y)*w+x]
					}
				}
			}
		}
		base += per * h * w
	}

	// Softmax over classes per anchor.
	probs := make([]float32, len(clsLogits))
	for a := 0; a < numAnchors; a++ {
		maxV := clsLogits[a]
		for c := 1; c <= numClasses; c++ {
			if v := clsLogits[c*numAnchors+a]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for c := 0; c <= numClasses; c++ {
			e := math.Exp(float64(clsLogits[c*numAnchors+a] - maxV))
			probs[c*numAnchors+a] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for c := 0; c <= numClasses; c++ {
			probs[c*numAnchors+a] *= inv
		}
	}

	clsT := tensor.FromData(tensor.Flat(), probs, 1, numClasses+1, numAnchors)
	locT := tensor.FromData(tensor.Flat(), locPred, 1, numAnchors*4)
	dets := ops.MultiBoxDetection(clsT, locT, anchorsT, n.SSD.Detection)

	out := tensor.New(tensor.Flat(), 1, len(dets), 6)
	for i, d := range dets {
		off := i * 6
		out.Data[off] = float32(d.Class)
		out.Data[off+1] = d.Score
		out.Data[off+2] = d.Box[0]
		out.Data[off+3] = d.Box[1]
		out.Data[off+4] = d.Box[2]
		out.Data[off+5] = d.Box[3]
	}
	return out, nil
}

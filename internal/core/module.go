package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/quant"
	"repro/internal/search"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// Module is a compiled model: the optimized graph, the pre-transformed
// parameters, and the threading runtime. It is the NeoCPU "standalone module
// with minimal size" — executing it requires nothing beyond this package.
//
// A Module is safe for concurrent read-only use once compiled: its weights,
// program and threading runtime are all finalized at compile time (the
// runtime is constructed in finalizeModule precisely so that concurrent
// Sessions never race on lazy initialization). Run allocates fresh buffers
// per call; NewSession returns an execution context with a reusable arena.
type Module struct {
	Graph  *graph.Graph
	Target *machine.Target
	Level  OptLevel
	// Search carries the global-search diagnostics when Level is
	// OptGlobalSearch (nil otherwise).
	Search *search.Outcome
	// Int8 marks quantized modules (blocked convolutions run in int8).
	Int8 bool
	// noPrepack marks prediction-only modules (weights were released).
	noPrepack bool
	// disableFusion/disableBNFold record the pass-pipeline ablations the
	// module was compiled with, so SaveBundle can make a loader rebuild the
	// exact node set the parameters were saved against.
	disableFusion bool
	disableBNFold bool

	threads int
	backend machine.ThreadBackend
	program []*graph.Node
	// slot maps every program node to its index in per-run value tables.
	slot map[*graph.Node]int
	// plan is the compile-time execution plan (liveness-packed arena slots,
	// level-synchronous inter-op schedule). Nil only for prediction-only
	// modules, which cannot execute.
	plan *execPlan
	// packed holds the compile-time pre-transformed OIHW[x]i[y]o weights.
	packed map[*graph.Node]*tensor.Tensor
	// qpacked holds the quantized pre-transformed weights (Int8 modules).
	qpacked map[*graph.Node]*quant.QTensor
	// anchors holds the pre-computed SSD anchor boxes per head node.
	anchors map[*graph.Node]*tensor.Tensor

	pool *threadpool.Pool
	omp  *threadpool.OMPPool
	// sharedPool marks a borrowed pool (Options.SharedPool): Close leaves it
	// running for its owner.
	sharedPool bool
}

// Threads returns the configured execution width.
func (m *Module) Threads() int { return m.threads }

// Backend returns the configured threading runtime.
func (m *Module) Backend() machine.ThreadBackend { return m.backend }

// PredictOnly reports whether the module was compiled with NoPrepack and can
// only PredictLatency, not execute.
func (m *Module) PredictOnly() bool { return m.noPrepack }

// parallelFor returns the threading runtime constructed at compile time.
// After Close (or on prediction-only modules) it degrades to serial
// execution.
func (m *Module) parallelFor() ops.ParallelFor {
	switch {
	case m.pool != nil:
		return m.pool.ParallelFor
	case m.omp != nil:
		return m.omp.ParallelFor
	default:
		return threadpool.Serial
	}
}

// Close releases the threading runtime (both the custom pool and the
// OMP-style runtime). A pool borrowed via Options.SharedPool is dropped, not
// closed — its owner decides its lifetime. The module remains usable;
// subsequent runs execute serially. Close must not race with in-flight
// Run/Session.Run calls.
func (m *Module) Close() {
	if m.pool != nil {
		if !m.sharedPool {
			m.pool.Close()
		}
		m.pool = nil
	}
	if m.omp != nil {
		m.omp.Close()
		m.omp = nil
	}
}

// checkInput validates a batch input against the compiled graph.
func (m *Module) checkInput(input *tensor.Tensor) error {
	if m.noPrepack {
		return fmt.Errorf("core: module was compiled with NoPrepack (prediction-only); recompile without it to execute")
	}
	in := m.Graph.Input.OutShape
	if input.Layout.Kind != tensor.LayoutNCHW || len(input.Shape) != 4 {
		return fmt.Errorf("core: input must be NCHW rank-4, got %v %v", input.Layout, input.Shape)
	}
	for i, d := range in.Dims {
		if input.Shape[i] != d {
			return fmt.Errorf("core: input shape %v, want %v", input.Shape, in.Dims)
		}
	}
	return nil
}

// Run executes the model on one NCHW input image and returns the outputs in
// graph-output order. Classification models return (1, classes)
// probabilities; SSD returns a (1, numDetections, 6) tensor whose rows are
// (class, score, xmin, ymin, xmax, ymax).
//
// Run materializes a throwaway arena per call — there is exactly one
// execution code path, the planned executor behind Session. The returned
// tensors own that arena's output slots, so they remain valid indefinitely.
// For repeated or concurrent inference prefer NewSession, which reuses its
// arena and makes steady-state execution allocation-free.
func (m *Module) Run(input *tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := m.checkInput(input); err != nil {
		return nil, err
	}
	s, err := m.NewSession()
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background(), input)
}

// PlanStats summarizes the module's compile-time execution plan (arena slot
// packing, level schedule). The zero value is returned for prediction-only
// modules, which carry no plan.
func (m *Module) PlanStats() PlanStats {
	if m.plan == nil {
		return PlanStats{}
	}
	return m.plan.stats
}

// nodeBuffers carries one node's preallocated arena slots for a Session run.
// A nil *nodeBuffers (Module.Run's allocating path) means "allocate fresh".
type nodeBuffers struct {
	// out receives the node's output (nil for data-dependent outputs such
	// as the SSD head, and for aliasing nodes).
	out *tensor.Tensor
	// pad is the blocked direct convolution's explicit-padding scratch.
	pad *tensor.Tensor
	// wino is the blocked winograd convolution's transform scratch (the
	// per-tile-row V tiles, sized by ops.WinogradScratchShape).
	wino *tensor.Tensor
	// scratch is the two-hop layout transform's NCHW intermediate.
	scratch *tensor.Tensor
	// concat is the reused operand slice for concat nodes.
	concat []*tensor.Tensor
}

func (b *nodeBuffers) outT() *tensor.Tensor {
	if b == nil {
		return nil
	}
	return b.out
}

func (b *nodeBuffers) padT() *tensor.Tensor {
	if b == nil {
		return nil
	}
	return b.pad
}

func (b *nodeBuffers) winoT() *tensor.Tensor {
	if b == nil {
		return nil
	}
	return b.wino
}

func (b *nodeBuffers) scratchT() *tensor.Tensor {
	if b == nil {
		return nil
	}
	return b.scratch
}

// exec runs one node. vals is the slot-indexed value table for the current
// inference; buf, when non-nil, provides the destination buffers of a
// Session arena.
func (m *Module) exec(n *graph.Node, vals []*tensor.Tensor, input *tensor.Tensor, pf ops.ParallelFor, buf *nodeBuffers) (*tensor.Tensor, error) {
	arg := func(i int) *tensor.Tensor { return vals[m.slot[n.Inputs[i]]] }
	switch n.Op {
	case graph.OpInput:
		return input, nil

	case graph.OpConv2D:
		epi := ops.Epilogue{Bias: n.Bias, ReLU: n.FusedReLU}
		if n.FusedResidual != nil {
			epi.Residual = vals[m.slot[n.FusedResidual]]
		}
		switch n.Sched.Layout.Kind {
		case tensor.LayoutNCHWc:
			depthwise := n.Conv.Depthwise(n.Inputs[0].OutShape.Dims[1])
			if m.Int8 {
				// Dynamic activation quantization: symmetric per-tensor
				// scale from this activation's max-abs, then the int32-
				// accumulating blocked kernel with fused rescale.
				qin := quant.Quantize(arg(0))
				if depthwise {
					return quant.Conv2DInt8DepthwiseNCHWcInto(buf.outT(), qin, m.qpacked[n], n.Conv,
						n.Sched.OCBlock, n.Sched.RegN, n.Sched.Grain, epi, pf), nil
				}
				return quant.Conv2DInt8NCHWcInto(buf.outT(), qin, m.qpacked[n], n.Conv,
					n.Sched.ICBlock, n.Sched.OCBlock, n.Sched.RegN, n.Sched.Grain, epi, pf), nil
			}
			if n.Sched.Algorithm == machine.AlgoWinograd {
				return ops.Conv2DWinogradNCHWcInto(buf.outT(), buf.winoT(), arg(0), m.packed[n], n.Conv,
					n.Sched.ICBlock, n.Sched.OCBlock, n.Sched.Grain, epi, pf), nil
			}
			if depthwise {
				return ops.Conv2DDepthwiseNCHWcInto(buf.outT(), buf.padT(), arg(0), m.packed[n], n.Conv,
					n.Sched.OCBlock, n.Sched.RegN, n.Sched.UnrollKer, n.Sched.Grain, epi, pf), nil
			}
			return ops.Conv2DNCHWcInto(buf.outT(), buf.padT(), arg(0), m.packed[n], n.Conv,
				n.Sched.ICBlock, n.Sched.OCBlock, n.Sched.RegN, n.Sched.UnrollKer, n.Sched.Grain, epi, pf), nil
		case tensor.LayoutNHWC:
			return ops.Conv2DNHWCInto(buf.outT(), arg(0), n.Weight, n.Conv, epi, pf), nil
		default:
			return ops.Conv2DNCHWInto(buf.outT(), arg(0), n.Weight, n.Conv, epi, pf), nil
		}

	case graph.OpBatchNorm:
		return ops.BatchNormInferenceInto(buf.outT(), arg(0), n.BN, pf), nil
	case graph.OpReLU:
		return ops.ReLUInto(buf.outT(), arg(0), pf), nil
	case graph.OpDropout:
		return arg(0), nil
	case graph.OpPool:
		return ops.Pool2DInto(buf.outT(), arg(0), n.Pool, pf), nil
	case graph.OpGlobalAvgPool:
		return ops.GlobalAvgPoolInto(buf.outT(), arg(0), pf), nil
	case graph.OpAdd:
		return ops.AddInto(buf.outT(), arg(0), arg(1), pf), nil
	case graph.OpConcat:
		var ins []*tensor.Tensor
		if buf != nil && buf.concat != nil {
			ins = buf.concat
		} else {
			ins = make([]*tensor.Tensor, len(n.Inputs))
		}
		for i := range n.Inputs {
			ins[i] = arg(i)
		}
		return ops.ConcatInto(buf.outT(), ins, pf), nil
	case graph.OpFlatten:
		return ops.FlattenInto(buf.outT(), arg(0)), nil
	case graph.OpDense:
		return ops.DenseInto(buf.outT(), arg(0), n.Weight, n.Bias, false, pf), nil
	case graph.OpSoftmax:
		return ops.SoftmaxInto(buf.outT(), arg(0)), nil
	case graph.OpLayoutTransform:
		return tensor.TransformInto(buf.outT(), buf.scratchT(), arg(0), n.Transform), nil
	case graph.OpSSDHead:
		return m.execSSDHead(n, vals)
	}
	return nil, fmt.Errorf("unsupported op %v", n.Op)
}

// buildAnchors concatenates the per-scale MultiBoxPrior outputs for one SSD
// head at compile time.
func buildAnchors(n *graph.Node) *tensor.Tensor {
	var all []float32
	total := 0
	for i := 0; i < len(n.Inputs); i += 2 {
		cls := n.Inputs[i].OutShape
		h, w := cls.Dims[2], cls.Dims[3]
		a := ops.MultiBoxPrior(h, w, n.SSD.Sizes[i/2], n.SSD.Ratios[i/2])
		all = append(all, a.Data...)
		total += a.Shape[1]
	}
	return tensor.FromData(tensor.Flat(), all, 1, total, 4)
}

// execSSDHead gathers the per-scale class/location convolution outputs,
// rearranges them into per-anchor order, applies softmax over classes, and
// decodes+NMSes via MultiBoxDetection. Its output size depends on how many
// detections survive NMS, so this node always allocates (sessions leave its
// arena slot empty).
func (m *Module) execSSDHead(n *graph.Node, vals []*tensor.Tensor) (*tensor.Tensor, error) {
	numClasses := n.SSD.NumClasses
	anchorsT := m.anchors[n]
	numAnchors := anchorsT.Shape[1]

	clsLogits := make([]float32, (numClasses+1)*numAnchors) // [class][anchor]
	locPred := make([]float32, numAnchors*4)

	base := 0
	for i := 0; i < len(n.Inputs); i += 2 {
		cls := vals[m.slot[n.Inputs[i]]]
		loc := vals[m.slot[n.Inputs[i+1]]]
		if cls.Layout.Kind != tensor.LayoutNCHW || loc.Layout.Kind != tensor.LayoutNCHW {
			return nil, fmt.Errorf("ssd head requires NCHW inputs, got %v/%v", cls.Layout, loc.Layout)
		}
		per := len(n.SSD.Sizes[i/2]) + len(n.SSD.Ratios[i/2]) - 1
		h, w := cls.Shape[2], cls.Shape[3]
		// cls channels: a*(numClasses+1)+c; anchor index: (y*w+x)*per + a.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for a := 0; a < per; a++ {
					anchor := base + (y*w+x)*per + a
					for c := 0; c <= numClasses; c++ {
						v := cls.Data[((a*(numClasses+1)+c)*h+y)*w+x]
						clsLogits[c*numAnchors+anchor] = v
					}
					for k := 0; k < 4; k++ {
						locPred[anchor*4+k] = loc.Data[((a*4+k)*h+y)*w+x]
					}
				}
			}
		}
		base += per * h * w
	}

	// Softmax over classes per anchor.
	probs := make([]float32, len(clsLogits))
	for a := 0; a < numAnchors; a++ {
		maxV := clsLogits[a]
		for c := 1; c <= numClasses; c++ {
			if v := clsLogits[c*numAnchors+a]; v > maxV {
				maxV = v
			}
		}
		var sum float64
		for c := 0; c <= numClasses; c++ {
			e := math.Exp(float64(clsLogits[c*numAnchors+a] - maxV))
			probs[c*numAnchors+a] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for c := 0; c <= numClasses; c++ {
			probs[c*numAnchors+a] *= inv
		}
	}

	clsT := tensor.FromData(tensor.Flat(), probs, 1, numClasses+1, numAnchors)
	locT := tensor.FromData(tensor.Flat(), locPred, 1, numAnchors*4)
	dets := ops.MultiBoxDetection(clsT, locT, anchorsT, n.SSD.Detection)

	out := tensor.New(tensor.Flat(), 1, len(dets), 6)
	for i, d := range dets {
		off := i * 6
		out.Data[off] = float32(d.Class)
		out.Data[off+1] = d.Score
		out.Data[off+2] = d.Box[0]
		out.Data[off+3] = d.Box[1]
		out.Data[off+4] = d.Box[2]
		out.Data[off+5] = d.Box[3]
	}
	return out, nil
}

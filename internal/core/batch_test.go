package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/tensor"
)

// TestRunBatchMatchesSequentialRuns is the batching property test: for
// randomly shaped graphs and for both convolution algorithms, in fp32 and
// int8, RunBatch over N inputs must be bit-identical to N sequential
// Session.Run calls. The serving micro-batcher leans on exactly this
// property — coalescing requests must never change anyone's answer.
func TestRunBatchMatchesSequentialRuns(t *testing.T) {
	tgt := skylake()
	type variant struct {
		name string
		opts Options
	}
	variants := []variant{
		// Global search over random graphs: the searched plans mix direct
		// and winograd convolutions (seeds with 3x3 stride-1 convs).
		{"fp32-searched", Options{Level: OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial}},
		{"fp32-direct-only", Options{Level: OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial, DisableWinograd: true}},
		{"int8", Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial, Int8: true}},
	}
	const batchN = 3
	sawWinograd := false
	for seed := uint64(1); seed <= 6; seed++ {
		inputs := make([]*tensor.Tensor, batchN)
		for i := range inputs {
			inputs[i] = tensor.New(tensor.NCHW(), 1, 3, 32, 32)
			inputs[i].FillRandom(seed*100+uint64(i), 1)
		}
		for _, v := range variants {
			m, err := Compile(randomGraph(seed), tgt, v.opts)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			for _, n := range m.Graph.Convs() {
				if n.Sched.Algorithm == machine.AlgoWinograd {
					sawWinograd = true
				}
			}
			batchSess, err := m.NewSession()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			seqSess, err := m.NewSession()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			batch, err := batchSess.RunBatch(context.Background(), inputs)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			if len(batch) != batchN {
				t.Fatalf("seed %d %s: %d results for %d inputs", seed, v.name, len(batch), batchN)
			}
			for i, in := range inputs {
				want, err := seqSess.Run(context.Background(), in)
				if err != nil {
					t.Fatalf("seed %d %s input %d: %v", seed, v.name, i, err)
				}
				if len(want) != len(batch[i]) {
					t.Fatalf("seed %d %s input %d: output arity mismatch", seed, v.name, i)
				}
				for j := range want {
					if tensor.MaxAbsDiff(want[j], batch[i][j]) != 0 {
						t.Fatalf("seed %d %s input %d output %d: RunBatch diverges from sequential Run by %g",
							seed, v.name, i, j, tensor.MaxAbsDiff(want[j], batch[i][j]))
					}
				}
			}
			m.Close()
		}
	}
	if !sawWinograd {
		t.Fatal("no random seed produced a winograd schedule; the property test lost its winograd coverage")
	}
}

// TestRunBatchMatchesSequentialWinograd pins the winograd path explicitly
// (the random sweep above covers it opportunistically): a module the search
// provably scheduled winograd on must hold the same batching property.
func TestRunBatchMatchesSequentialWinograd(t *testing.T) {
	m := winogradModule(t, 1, machine.BackendSerial)
	inputs := make([]*tensor.Tensor, 4)
	for i := range inputs {
		inputs[i] = tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		inputs[i].FillRandom(uint64(40+i), 1)
	}
	batchSess, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	seqSess, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchSess.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		want, err := seqSess.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(want[0], batch[i][0]) != 0 {
			t.Fatalf("input %d: winograd RunBatch diverges from sequential Run", i)
		}
	}
}

// stepCtx cancels after a fixed number of Err polls. The session polls
// ctx.Err once per graph node and RunBatch once more between items, so a
// budget of exactly one item's node count makes the cancellation land on
// the between-items check — deterministically mid-batch.
type stepCtx struct {
	context.Context
	remaining int
}

func (c *stepCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestRunBatchPartialCancellation: a cancellation landing between batch
// items must stop the batch AND hand back the completed prefix through
// BatchError instead of discarding finished work or running to completion.
func TestRunBatchPartialCancellation(t *testing.T) {
	m := sessionModule(t, 1, machine.BackendSerial)
	inputs := make([]*tensor.Tensor, 3)
	for i := range inputs {
		inputs[i] = tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		inputs[i].FillRandom(uint64(70+i), 1)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Budget: RunBatch's pre-item check for item 0, then one poll per node
	// while item 0 executes. The next poll — the between-items check before
	// item 1 — cancels.
	ctx := &stepCtx{Context: context.Background(), remaining: 1 + len(m.program)}
	results, err := s.RunBatch(ctx, inputs)

	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("got %v (%T), want *BatchError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchError must unwrap to the ctx cause, got %v", err)
	}
	if be.Completed != 1 {
		t.Fatalf("Completed = %d, want 1 (cancellation landed between items)", be.Completed)
	}
	if len(results) != 1 {
		t.Fatalf("got %d partial results, want 1", len(results))
	}
	want, err := m.Run(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(want[0], results[0][0]) != 0 {
		t.Fatal("partial result diverges from an independent run of the same input")
	}

	// The session must be reusable after the aborted batch.
	full, err := s.RunBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(inputs) {
		t.Fatalf("post-cancellation batch returned %d results", len(full))
	}
}

// TestRunBatchMidItemCancellation: a cancellation landing inside an item
// reports only the fully completed prefix.
func TestRunBatchMidItemCancellation(t *testing.T) {
	m := sessionModule(t, 1, machine.BackendSerial)
	inputs := []*tensor.Tensor{
		tensor.New(tensor.NCHW(), 1, 3, 32, 32),
		tensor.New(tensor.NCHW(), 1, 3, 32, 32),
	}
	for i, in := range inputs {
		in.FillRandom(uint64(80+i), 1)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Enough budget to finish item 0 and begin item 1, then cancel midway
	// through item 1's nodes.
	ctx := &stepCtx{Context: context.Background(), remaining: 1 + len(m.program) + 1 + len(m.program)/2}
	results, err := s.RunBatch(ctx, inputs)
	var be *BatchError
	if !errors.As(err, &be) || be.Completed != 1 || len(results) != 1 {
		t.Fatalf("got err=%v, %d results; want BatchError with Completed=1", err, len(results))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not preserved: %v", err)
	}
}

// TestSessionStatsCount covers the serving pool's per-session counters.
func TestSessionStatsCount(t *testing.T) {
	m := sessionModule(t, 1, machine.BackendSerial)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s.ArenaBytes() == 0 {
		t.Fatal("session arena reported as empty")
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(1, 1)
	if _, err := s.Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunBatch(context.Background(), []*tensor.Tensor{in, in, in}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Runs != 2 || st.Items != 4 {
		t.Fatalf("stats %+v, want Runs=2 Items=4", st)
	}
	if st.Busy <= 0 {
		t.Fatal("busy time not accumulated")
	}
	// A cancelled batch counts only its completed items.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunBatch(ctx, []*tensor.Tensor{in}); err == nil {
		t.Fatal("expected cancellation")
	}
	if st := s.Stats(); st.Items != 4 {
		t.Fatalf("cancelled batch leaked items into stats: %+v", st)
	}
}

// Package core is NeoCPU-Go's compilation pipeline: it takes a model graph
// and a CPU target, runs the graph-level optimizations of Section 3
// (inference simplification, operator fusion, layout planning with transform
// elimination, and the two-stage optimization-scheme search), pre-transforms
// the convolution weights, and produces a standalone executable Module.
//
// The four optimization levels correspond to the rows of Table 3:
//
//	OptNone          — plain NCHW convolutions (baseline).
//	OptLayout        — NCHW[x]c convolutions with library-style transforms
//	                   around every CONV ("Layout Opt.").
//	OptTransformElim — the blocked layout flows through the graph; uniform x
//	                   ("Transform Elim.").
//	OptGlobalSearch  — per-CONV schemes from local search combined by the
//	                   DP/PBQP global search ("Global Search").
package core

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/quant"
	"repro/internal/schedule"
	"repro/internal/search"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// OptLevel selects how far the layout optimizations go (Table 3).
type OptLevel int

const (
	// OptNone executes every convolution in NCHW.
	OptNone OptLevel = iota
	// OptLayout blocks each convolution locally, paying per-CONV transforms.
	OptLayout
	// OptTransformElim keeps one blocked layout flowing through the graph.
	OptTransformElim
	// OptGlobalSearch adds the per-CONV scheme search of Section 3.3.
	OptGlobalSearch
)

func (l OptLevel) String() string {
	switch l {
	case OptNone:
		return "baseline-nchw"
	case OptLayout:
		return "layout-opt"
	case OptTransformElim:
		return "transform-elim"
	case OptGlobalSearch:
		return "global-search"
	}
	return fmt.Sprintf("opt(%d)", int(l))
}

// Options configures compilation.
type Options struct {
	// Level is the optimization level; the default (zero value) is OptNone.
	Level OptLevel
	// Threads is the execution width; 0 means the target's core count
	// (capped by the host when actually running).
	Threads int
	// Backend selects the threading runtime; the default is the custom
	// thread pool.
	Backend machine.ThreadBackend
	// UniformBlock is the shared split factor x for OptLayout and
	// OptTransformElim; 0 means the target's vector width (the paper's
	// "constant number (e.g. 16)").
	UniformBlock int
	// DisableFusion keeps ReLU/add as standalone operators (ablation).
	DisableFusion bool
	// DisableBNFold keeps BatchNorm as a standalone runtime operator
	// instead of folding it into the preceding convolution's parameters.
	// Engine simulators use this to model frameworks that execute BN
	// separately.
	DisableBNFold bool
	// NoPrepack skips the compile-time weight packing. The module can then
	// only PredictLatency, not Run; latency-simulation harnesses use this to
	// avoid materializing hundreds of megabytes of packed VGG weights.
	NoPrepack bool
	// Int8 enables quantized inference (the paper's Section 6 INT8
	// extension): convolution weights are quantized per-output-channel at
	// compile time, activations are quantized dynamically at each blocked
	// convolution, accumulation is int32, and outputs are rescaled to
	// float32 so the rest of the graph is unchanged. Convolutions scheduled
	// in plain NCHW (the un-optimized baseline) stay in fp32. Int8 implies
	// DisableWinograd: there is no quantized Winograd kernel.
	Int8 bool
	// DisableWinograd removes the Winograd algorithm from the global
	// search's candidate space, pinning every convolution to the direct
	// template. Winograd's fp32 transforms accumulate slightly different
	// rounding than direct summation; callers needing bit-compatible direct
	// results can opt out here.
	DisableWinograd bool
	// DisableInterOp pins every dependency level of the execution plan to
	// sequential (intra-op only) node execution. By default the compile-time
	// policy dispatches levels of balanced independent branches (Inception
	// towers, SSD heads) across the thread pool; results are bit-identical
	// either way — the plan keeps concurrent levels alias-free — so this is
	// a performance knob, not a numerics one.
	DisableInterOp bool
	// SharedPool, when non-nil and the backend is the custom thread pool,
	// makes the module execute on the caller's pool instead of constructing
	// its own. Multi-model serving uses this so N loaded models contend for
	// one set of worker goroutines rather than N×threads of them. The pool is
	// borrowed: Module.Close leaves it running for its owner.
	SharedPool *threadpool.Pool
	// Search configures the global search at OptGlobalSearch.
	Search search.Options
}

// Compile lowers the graph for the target. It takes ownership of g: passes
// rewrite it in place. Executable modules (without NoPrepack) construct
// their thread pool here, so they must be Closed when no longer needed.
func Compile(g *graph.Graph, t *machine.Target, opts Options) (*Module, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := graph.RemoveDropout(g); err != nil {
		return nil, fmt.Errorf("core: simplify: %w", err)
	}
	if !opts.DisableBNFold {
		if err := graph.FoldBatchNorms(g); err != nil {
			return nil, fmt.Errorf("core: fold batch norm: %w", err)
		}
	}
	if !opts.DisableFusion {
		if err := graph.FuseOps(g); err != nil {
			return nil, fmt.Errorf("core: fuse: %w", err)
		}
	}

	block := opts.UniformBlock
	if block <= 0 {
		block = t.VectorLanes
	}
	// The hand-picked schedule of Table 3 rows 2-3: a 16-wide register tile
	// everywhere (clamped so the accumulators plus the kernel and broadcast
	// registers fit the architectural register file), mirroring the paper's
	// "we make x a constant number (e.g. 16) across all CONVs". The global
	// search of row 4 beats it by picking reg_n and the block pair per
	// workload (tail waste, register pressure and FMA-latency hiding differ
	// across feature-map sizes).
	defaultRegN := 16
	if defaultRegN+2 > t.NumVecRegs {
		defaultRegN = t.NumVecRegs - 2
	}

	var plan graph.LayoutPlan
	var searchOutcome *search.Outcome
	eliminate := true
	switch opts.Level {
	case OptNone:
		plan = graph.NCHWPlan(g)
	case OptLayout:
		plan = graph.UniformPlan(g, block, defaultRegN, true)
		eliminate = false
	case OptTransformElim:
		plan = graph.UniformPlan(g, block, defaultRegN, true)
	case OptGlobalSearch:
		sOpts := opts.Search
		if opts.DisableWinograd || opts.Int8 {
			sOpts.DisableWinograd = true
		}
		if sOpts.Threads <= 0 {
			sOpts.Threads = opts.Threads
			if sOpts.Threads <= 0 {
				sOpts.Threads = t.Cores
			}
			sOpts.Backend = opts.Backend
			if sOpts.Backend == machine.BackendSerial && sOpts.Threads > 1 {
				sOpts.Backend = machine.BackendPool
			}
		}
		if sOpts.DB == nil {
			sOpts.DB = SharedScheduleDB(t, sOpts.Threads, sOpts.Backend)
		}
		out, err := search.GlobalSearch(g, t, sOpts)
		if err != nil {
			return nil, fmt.Errorf("core: global search: %w", err)
		}
		plan = out.Plan
		searchOutcome = out
	default:
		return nil, fmt.Errorf("core: unknown optimization level %d", opts.Level)
	}
	if err := graph.AlterOpLayout(g, plan, eliminate); err != nil {
		return nil, fmt.Errorf("core: alter op layout: %w", err)
	}

	return finalizeModule(g, t, opts.Level, searchOutcome, opts)
}

// sharedDBs memoizes local-search results across compilations in one
// process, the way the paper's schedule database avoids repeating searches
// for the same convolution workload across models. One database per
// (target, execution config): schedule quality depends on the thread count
// the plan is optimized for.
var (
	sharedDBMu sync.Mutex
	sharedDBs  = map[string]*schedule.DB{}
)

// SharedScheduleDB returns the process-wide schedule database for one
// execution configuration.
func SharedScheduleDB(t *machine.Target, threads int, backend machine.ThreadBackend) *schedule.DB {
	key := fmt.Sprintf("%s/%d/%v", t.Name, threads, backend)
	sharedDBMu.Lock()
	defer sharedDBMu.Unlock()
	db, ok := sharedDBs[key]
	if !ok {
		db = schedule.NewDB()
		sharedDBs[key] = db
	}
	return db
}

// newModule constructs the module shell shared by the compile and
// bundle-load paths: execution-width defaults and the pass-pipeline record,
// with no parameters installed and no runtime yet.
func newModule(g *graph.Graph, t *machine.Target, level OptLevel, searchOutcome *search.Outcome, opts Options) *Module {
	m := &Module{
		Graph:         g,
		Target:        t,
		Level:         level,
		Search:        searchOutcome,
		Int8:          opts.Int8,
		disableFusion: opts.DisableFusion,
		disableBNFold: opts.DisableBNFold,
		threads:       opts.Threads,
		backend:       opts.Backend,
		packed:        map[*graph.Node]*tensor.Tensor{},
		qpacked:       map[*graph.Node]*quant.QTensor{},
		anchors:       map[*graph.Node]*tensor.Tensor{},
	}
	if m.threads <= 0 {
		m.threads = t.Cores
	}
	if opts.Backend == machine.BackendSerial && m.threads > 1 {
		// Zero value means "unspecified": default to the custom pool.
		m.backend = machine.BackendPool
	}
	return m
}

// finishRuntime performs the execution tail shared by compilation and bundle
// loading, after the module's parameters are in place: SSD anchor
// pre-computation, the program/slot tables, the execution plan, and the
// threading runtime. Prediction-only modules skip the plan and the runtime.
func (m *Module) finishRuntime(opts Options) {
	m.program = m.Graph.Topo()
	m.slot = make(map[*graph.Node]int, len(m.program))
	for i, n := range m.program {
		m.slot[n] = i
		// Pre-compute SSD anchors (they depend only on feature-map shapes).
		if n.Op == graph.OpSSDHead {
			m.anchors[n] = buildAnchors(n)
		}
	}
	if opts.NoPrepack {
		return
	}
	// Compile the execution plan: liveness-packed arena slots and the
	// level-synchronous inter-op schedule.
	m.plan = buildExecPlan(m.Graph, m.program, m.Int8, m.threads, m.backend, opts.DisableInterOp)
	// Construct the threading runtime now rather than lazily on first Run:
	// concurrent Sessions share one module, and a lazy first-use init would
	// race.
	switch m.backend {
	case machine.BackendPool:
		if opts.SharedPool != nil {
			m.pool = opts.SharedPool
			m.sharedPool = true
		} else {
			m.pool = threadpool.NewPool(m.threads)
		}
	case machine.BackendOMP:
		m.omp = threadpool.NewOMPPool(m.threads)
	}
}

// finalizeModule performs the compilation tail shared by Compile and
// CompileWithPlan: module construction, execution-width defaults, weight
// pre-packing (fp32 or int8) and SSD anchor pre-computation.
func finalizeModule(g *graph.Graph, t *machine.Target, level OptLevel, searchOutcome *search.Outcome, opts Options) (*Module, error) {
	m := newModule(g, t, level, searchOutcome, opts)

	// Pre-transform convolution weights at compile time (Figure 2: the
	// kernel layout is invariant, so the transform is paid once here, never
	// at inference).
	if opts.NoPrepack {
		m.noPrepack = true
		// Prediction-only module: release the weight payloads (shapes are
		// all the cost model reads) so cached modules stay small.
		for _, n := range g.Nodes() {
			if n.Weight != nil {
				n.Weight = &tensor.Tensor{Shape: n.Weight.Shape, Layout: n.Weight.Layout}
			}
		}
	} else {
		for _, n := range g.Convs() {
			if n.Sched.Layout.Kind != tensor.LayoutNCHWc {
				continue
			}
			// Depthwise weights are logically (C, 1, KH, KW): their packed
			// form splits only the output channels, so the input-channel
			// block of the packing is 1 regardless of the schedule's shared
			// activation block (see ops.Conv2DDepthwiseNCHWc).
			wIC := n.Sched.ICBlock
			if graph.ConvWorkload(n).Depthwise() {
				wIC = 1
			}
			switch {
			case opts.Int8:
				if n.Sched.Algorithm == machine.AlgoWinograd {
					return nil, fmt.Errorf("core: %v is scheduled as winograd but the module is int8 (no quantized winograd kernel); compile with DisableWinograd or a direct plan", n)
				}
				qw := quant.QuantizeWeightsPerChannel(n.Weight)
				m.qpacked[n] = quant.PackWeightsOIHWio(qw, wIC, n.Sched.OCBlock)
			case n.Sched.Algorithm == machine.AlgoWinograd:
				// U = G g Gᵀ, packed for the blocked kernel — the winograd
				// analog of the compile-time weight pre-packing.
				m.packed[n] = ops.WinogradWeightTransformNCHWc(n.Weight, n.Sched.ICBlock, n.Sched.OCBlock)
			default:
				m.packed[n] = tensor.PackWeights(n.Weight, wIC, n.Sched.OCBlock)
			}
		}
	}
	m.finishRuntime(opts)
	return m, nil
}

package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

func panicTestModule(t *testing.T) *core.Module {
	t.Helper()
	m, err := core.Compile(models.TinyCNN(1), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func panicTestInput() *tensor.Tensor {
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(11, 1)
	return in
}

// TestRunRecoversPanicIntoTypedError: a kernel panic must surface as
// *core.ExecPanicError carrying the model name and stack — never escape and
// crash the caller — and must quarantine the session.
func TestRunRecoversPanicIntoTypedError(t *testing.T) {
	defer faults.Reset()
	m := panicTestModule(t)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	faults.Inject(faults.SiteSessionRun, faults.OnLabel(m.Graph.Name, faults.Panic("synthetic kernel panic")))

	_, err = s.Run(context.Background(), panicTestInput())
	var pe *core.ExecPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *ExecPanicError", err)
	}
	if pe.Model != m.Graph.Name {
		t.Fatalf("panic error names model %q, want %q", pe.Model, m.Graph.Name)
	}
	if pe.Value != "synthetic kernel panic" {
		t.Fatalf("panic value %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if !s.Corrupted() {
		t.Fatal("session not quarantined after panic")
	}

	// A quarantined session refuses further runs even after the fault heals.
	faults.Reset()
	if _, err := s.Run(context.Background(), panicTestInput()); err == nil ||
		!strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("quarantined session ran: %v", err)
	}

	// A fresh session off the same module works: the module (weights, plan,
	// runtime) is read-only and survives the panic untouched.
	s2, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(context.Background(), panicTestInput()); err != nil {
		t.Fatalf("fresh session after panic: %v", err)
	}
}

// TestRunBatchPanicReportsCompletedPrefix: a panic on item k must deliver
// items [0,k) and a BatchError wrapping the ExecPanicError.
func TestRunBatchPanicReportsCompletedPrefix(t *testing.T) {
	defer faults.Reset()
	m := panicTestModule(t)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Panic on the second run only.
	calls := 0
	faults.Inject(faults.SiteSessionRun, func(label string) error {
		calls++
		if calls == 2 {
			panic("batch item panic")
		}
		return nil
	})

	inputs := []*tensor.Tensor{panicTestInput(), panicTestInput(), panicTestInput()}
	results, err := s.RunBatch(context.Background(), inputs)
	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BatchError", err)
	}
	if be.Completed != 1 || len(results) != 1 {
		t.Fatalf("completed %d with %d results, want 1/1", be.Completed, len(results))
	}
	var pe *core.ExecPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("BatchError does not wrap ExecPanicError: %v", err)
	}
	if !s.Corrupted() {
		t.Fatal("session not quarantined after batch panic")
	}
}

package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// This file implements the compile-time execution plan: the paper's thesis —
// decide everything ahead of time — applied to the runtime itself. Where the
// previous Session arena allocated one buffer per graph node, the planner
// runs liveness analysis over the topological order and greedily assigns
// node outputs, padding scratch and winograd scratch to a small set of
// shared, size-classed arena slots; and where execution was strictly
// sequential, the plan partitions the program into dependency levels and
// assigns each level a threading policy — intra-op (nodes sequential, each
// kernel spreading its chunked grain loop across the pool), inter-op (one
// pool lane per independent node, kernels serial), or hybrid (one goroutine
// per node, each handed the pool-backed ParallelFor; the first to reach a
// parallel region claims the pool and its siblings degrade to inline serial
// loops) — so branchy graphs like Inception, DenseNet and SSD spend the
// thread budget where the compile-time cost signal says it pays.

// PlanStats summarizes a compiled execution plan. It is the metadata the
// serving layer sizes pools from and the benchmarks report.
type PlanStats struct {
	// Values counts the buffers the program needs (node outputs plus kernel
	// scratch); Slots counts the shared arena slots they were packed into.
	Values int `json:"values"`
	Slots  int `json:"slots"`
	// ArenaBytes is one session's planned arena footprint; NaiveArenaBytes is
	// what a one-buffer-per-value arena would have allocated (the pre-planner
	// behavior), so NaiveArenaBytes/ArenaBytes is the planner's saving.
	ArenaBytes      int `json:"arena_bytes"`
	NaiveArenaBytes int `json:"naive_arena_bytes"`
	// Levels counts the dependency levels of the level-synchronous schedule;
	// InterOpLevels how many of them dispatch nodes across the pool with
	// serial kernels; HybridLevels how many run concurrent nodes that each
	// keep the pool-backed ParallelFor; MaxWidth the widest level (the
	// graph's branching factor).
	Levels        int `json:"levels"`
	InterOpLevels int `json:"inter_op_levels"`
	HybridLevels  int `json:"hybrid_levels"`
	MaxWidth      int `json:"max_width"`
}

// planBuf is one planned buffer: an arena slot plus the concrete tensor
// geometry of the view a session materializes over it.
type planBuf struct {
	slot   int // -1: no planned buffer
	layout tensor.Layout
	dims   []int
	elems  int
}

func noBuf() planBuf { return planBuf{slot: -1} }

// planStep carries the planned buffers of one program node.
type planStep struct {
	out     planBuf
	pad     planBuf
	wino    planBuf
	scratch planBuf
	// concat is the operand-slice length for concat nodes (0 otherwise).
	concat int
}

// slotClass distinguishes how a slot's contents may be recycled.
type slotClass int

const (
	// slotGeneric slots hold buffers that every user fully overwrites before
	// reading (node outputs, winograd V scratch, transform intermediates).
	slotGeneric slotClass = iota
	// slotPad slots back explicit-padding scratch: kernels write only the
	// interior and rely on the border staying zero from allocation, so a pad
	// slot is shared exclusively between pad buffers of identical geometry
	// (same padded dims and pad amounts — identical interior, identical
	// untouched border).
	slotPad
	// slotPinned slots hold graph outputs. They are never recycled: the
	// views Run returns must stay valid until the next run.
	slotPinned
)

type planSlot struct {
	elems int
	class slotClass
	// padKey identifies the exact pad geometry a slotPad slot serves.
	padKey string
}

// levelPolicy is the compile-time choice of how the executor spends the
// thread budget on one dependency level.
type levelPolicy uint8

const (
	// policyIntra runs the level's nodes sequentially, each kernel spreading
	// its own chunked parallel loop across the whole pool. The only policy
	// for single-node levels, serial lanes, and DisableInterOp modules.
	policyIntra levelPolicy = iota
	// policyInter dispatches the level's nodes across the pool, one lane per
	// node with serial kernels — chosen when the level holds enough
	// comparably-weighted nodes to occupy every thread by itself.
	policyInter
	// policyHybrid runs each node on its own goroutine, every node handed
	// the pool-backed ParallelFor: the first to reach a parallel region
	// claims the pool (its kernels go wide), while concurrent siblings
	// degrade to inline serial loops (threadpool.Pool's re-entrant
	// ParallelFor). Chosen for levels with a few working nodes — too narrow
	// to fill the pool inter-op, too branchy to make the siblings wait.
	policyHybrid
)

// execPlan is the compiled execution plan: per-node buffer assignments over
// shared slots plus the level-synchronous threading schedule.
type execPlan struct {
	steps []planStep
	slots []planSlot
	// levels holds program indices grouped by dependency depth; policy[k]
	// is the threading policy the executor applies to level k.
	levels [][]int
	policy []levelPolicy
	stats  PlanStats
}

// interOpBalanceCut is the compile-time balance knob: a level is dispatched
// pure inter-op (serial kernels) only when no single node holds more than
// this fraction of the level's work. A dominated level keeps the pool with
// the dominant kernel instead — hybrid, so stragglers still overlap on their
// own goroutines — since serial-kernel lanes would idle most threads for the
// tail of the level.
const interOpBalanceCut = 0.75

// physicalDims converts a logical output shape plus its assigned physical
// layout into concrete buffer dimensions.
func physicalDims(shape graph.Shape, l tensor.Layout) []int {
	switch l.Kind {
	case tensor.LayoutNCHW, tensor.LayoutNHWC, tensor.LayoutNCHWc:
		as := tensor.ActivationShape{N: shape.Dims[0], C: shape.Dims[1], H: shape.Dims[2], W: shape.Dims[3]}
		return as.PhysicalShape(l)
	default:
		// Flat (and any rank-2) outputs store exactly their logical dims.
		return shape.Dims
	}
}

// nodeCost estimates one node's work for the inter-op policy: convolution
// and dense FLOPs for compute-bound nodes, output volume (memory traffic)
// for the rest.
func nodeCost(n *graph.Node) float64 {
	switch n.Op {
	case graph.OpInput, graph.OpDropout:
		return 0
	case graph.OpConv2D:
		return graph.ConvWorkload(n).FLOPs()
	case graph.OpDense:
		return 2 * float64(n.Weight.Shape[0]) * float64(n.Weight.Shape[1])
	default:
		return float64(n.OutShape.Volume())
	}
}

// stepBuffers derives the buffer requirements of one node from its compiled
// schedule — the same geometry the per-node arena used to allocate, now
// expressed as slot requests.
func stepBuffers(n *graph.Node, int8 bool) planStep {
	st := planStep{out: noBuf(), pad: noBuf(), wino: noBuf(), scratch: noBuf()}
	mk := func(layout tensor.Layout, dims []int) planBuf {
		elems := 1
		for _, d := range dims {
			elems *= d
		}
		return planBuf{layout: layout, dims: dims, elems: elems}
	}
	switch n.Op {
	case graph.OpInput, graph.OpDropout, graph.OpSSDHead:
		// Aliasing (input, dropout) or data-dependent (SSD head) outputs:
		// nothing to plan.
		return st
	case graph.OpConcat:
		st.concat = len(n.Inputs)
	case graph.OpConv2D:
		if n.Sched.Layout.Kind == tensor.LayoutNCHWc && !int8 {
			in := n.Inputs[0]
			physIn := physicalDims(in.OutShape, in.OutLayout)
			if n.Sched.Algorithm == machine.AlgoWinograd {
				// Winograd pads implicitly in its data transform; its scratch
				// is the per-tile-row V buffer instead.
				st.wino = mk(tensor.Flat(), ops.WinogradScratchShape(physIn, n.Conv))
			} else if pad := ops.PaddedShapeNCHWc(physIn, n.Conv); pad != nil {
				st.pad = mk(in.OutLayout, pad)
			}
		}
	case graph.OpLayoutTransform:
		if tensor.NeedsTransformScratch(n.Inputs[0].OutLayout, n.Transform) {
			st.scratch = mk(tensor.NCHW(), n.OutShape.Dims)
		}
	}
	st.out = mk(n.OutLayout, physicalDims(n.OutShape, n.OutLayout))
	return st
}

// slotPool is the planner's free-slot bookkeeping.
type slotPool struct {
	slots   []planSlot
	free    []int            // generic slots available for reuse
	freePad map[string][]int // pad slots available, by exact geometry
}

// alloc assigns a generic slot of at least elems elements: best-fit over the
// free list, else grow the largest free slot (growth is free — backing memory
// is allocated once per session, sized to the final slot capacity), else a
// fresh slot.
func (p *slotPool) alloc(elems int) int {
	best, bestAt := -1, -1
	largest, largestAt := -1, -1
	for at, id := range p.free {
		sz := p.slots[id].elems
		if sz >= elems && (best == -1 || sz < p.slots[best].elems) {
			best, bestAt = id, at
		}
		if largest == -1 || sz > p.slots[largest].elems {
			largest, largestAt = id, at
		}
	}
	take := func(id, at int) int {
		p.free = append(p.free[:at], p.free[at+1:]...)
		return id
	}
	if best != -1 {
		return take(best, bestAt)
	}
	if largest != -1 {
		p.slots[largest].elems = elems
		return take(largest, largestAt)
	}
	p.slots = append(p.slots, planSlot{elems: elems, class: slotGeneric})
	return len(p.slots) - 1
}

// allocPad assigns a pad slot for the exact geometry key, reusing only slots
// that served the identical geometry (their zero border is still intact).
func (p *slotPool) allocPad(key string, elems int) int {
	if ids := p.freePad[key]; len(ids) > 0 {
		id := ids[len(ids)-1]
		p.freePad[key] = ids[:len(ids)-1]
		return id
	}
	p.slots = append(p.slots, planSlot{elems: elems, class: slotPad, padKey: key})
	return len(p.slots) - 1
}

// allocPinned creates a dedicated never-recycled slot for a graph output.
func (p *slotPool) allocPinned(elems int) int {
	p.slots = append(p.slots, planSlot{elems: elems, class: slotPinned})
	return len(p.slots) - 1
}

func (p *slotPool) release(id int) {
	switch p.slots[id].class {
	case slotGeneric:
		p.free = append(p.free, id)
	case slotPad:
		p.freePad[p.slots[id].padKey] = append(p.freePad[p.slots[id].padKey], id)
	}
	// Pinned slots are never released.
}

// buildExecPlan compiles the execution plan for a finalized module: liveness
// intervals at level granularity (so one plan is correct under both the
// sequential and the inter-op executor), greedy shared-slot assignment, and
// the per-level inter- vs intra-op policy.
func buildExecPlan(g *graph.Graph, program []*graph.Node, int8 bool, threads int, backend machine.ThreadBackend, disableInterOp bool) *execPlan {
	lv := graph.AnalyzeLiveness(g, program)
	levels := lv.Levels()

	p := &execPlan{
		steps:  make([]planStep, len(program)),
		levels: levels,
		policy: make([]levelPolicy, len(levels)),
	}

	// Value lifetimes at level granularity: a value defined at level d and
	// last read at level L is considered live for every level in [d, L]. This
	// is the invariant that keeps the plan valid when a level's nodes run
	// concurrently: nothing that a level reads or writes is recycled until
	// the whole level has completed.
	lastUseLevel := make([]int, len(program))
	for i := range program {
		lastUseLevel[i] = lv.Depth[lv.LastUse[i]]
		if lv.Pinned[i] {
			lastUseLevel[i] = len(levels) // beyond the last level: never freed
		}
	}

	pool := &slotPool{freePad: map[string][]int{}}
	releaseAt := make([][]int, len(levels)+1)
	naive := 0

	for li, level := range levels {
		for _, i := range level {
			n := program[i]
			st := stepBuffers(n, int8)
			if st.out.dims != nil {
				p.stats.Values++
				naive += st.out.elems
				if lv.Pinned[i] {
					st.out.slot = pool.allocPinned(st.out.elems)
				} else {
					st.out.slot = pool.alloc(st.out.elems)
					releaseAt[lastUseLevel[i]] = append(releaseAt[lastUseLevel[i]], st.out.slot)
				}
			} else {
				st.out = noBuf()
			}
			if st.pad.dims != nil {
				p.stats.Values++
				naive += st.pad.elems
				key := fmt.Sprintf("%v/%d/%d", st.pad.dims, n.Conv.PadH, n.Conv.PadW)
				st.pad.slot = pool.allocPad(key, st.pad.elems)
				releaseAt[li] = append(releaseAt[li], st.pad.slot)
			} else {
				st.pad = noBuf()
			}
			for _, b := range []*planBuf{&st.wino, &st.scratch} {
				if b.dims != nil {
					p.stats.Values++
					naive += b.elems
					b.slot = pool.alloc(b.elems)
					releaseAt[li] = append(releaseAt[li], b.slot)
				} else {
					*b = noBuf()
				}
			}
			p.steps[i] = st
		}
		// Frees happen only after every allocation of the level: a buffer
		// allocated in level li can therefore never reuse a slot whose value
		// is still read (or written) within li — the no-in-place guarantee.
		for _, id := range releaseAt[li] {
			pool.release(id)
		}
		p.policy[li] = levelPolicyFor(program, level, threads, backend, disableInterOp)
	}

	p.slots = pool.slots
	p.stats.Slots = len(p.slots)
	for _, s := range p.slots {
		p.stats.ArenaBytes += 4 * s.elems
	}
	p.stats.NaiveArenaBytes = 4 * naive
	p.stats.Levels = len(levels)
	for li, level := range levels {
		switch p.policy[li] {
		case policyInter:
			p.stats.InterOpLevels++
		case policyHybrid:
			p.stats.HybridLevels++
		}
		if len(level) > p.stats.MaxWidth {
			p.stats.MaxWidth = len(level)
		}
	}
	return p
}

// levelPolicyFor is the compile-time policy choosing how a level spends the
// thread budget, from the level's FLOPs-balance signal: pure inter-op (one
// node per pool lane, kernels serial) when the level holds enough
// comparably-weighted working nodes to occupy every thread by itself;
// hybrid (concurrent nodes racing for the pool) when it has at least two
// working nodes but is too narrow or too imbalanced for serial-kernel
// lanes; intra-op (nodes sequential, kernels parallel) otherwise.
func levelPolicyFor(program []*graph.Node, level []int, threads int, backend machine.ThreadBackend, disable bool) levelPolicy {
	if disable || threads < 2 || backend == machine.BackendSerial {
		return policyIntra
	}
	working := 0
	var total, max float64
	for _, i := range level {
		c := nodeCost(program[i])
		if c <= 0 {
			continue
		}
		working++
		total += c
		if c > max {
			max = c
		}
	}
	if working < 2 {
		return policyIntra
	}
	if working >= threads && max <= interOpBalanceCut*total {
		return policyInter
	}
	return policyHybrid
}

// validate checks the plan's structural invariants against an independently
// recomputed liveness: no buffer exceeds its slot, pinned slots serve exactly
// one value, pad slots serve exactly one geometry, and — the load-bearing
// one — no two simultaneously-live buffers share a slot. The property tests
// call it on randomized graphs.
func (p *execPlan) validate(g *graph.Graph, program []*graph.Node) error {
	lv := graph.AnalyzeLiveness(g, program)
	levelOf := make([]int, len(p.steps))
	for li, level := range p.levels {
		for _, i := range level {
			levelOf[i] = li
		}
	}
	type window struct {
		step       int
		kind       string
		start, end int // inclusive level range the buffer is live for
	}
	bySlot := make(map[int][]window)
	for i, st := range p.steps {
		li := levelOf[i]
		if st.out.slot >= 0 {
			end := lv.Depth[lv.LastUse[i]]
			if lv.Pinned[i] {
				end = len(p.levels) // outlives the program
			}
			bySlot[st.out.slot] = append(bySlot[st.out.slot], window{i, "out", li, end})
		}
		for _, b := range []struct {
			buf  planBuf
			kind string
		}{{st.pad, "pad"}, {st.wino, "wino"}, {st.scratch, "scratch"}} {
			if b.buf.slot >= 0 {
				bySlot[b.buf.slot] = append(bySlot[b.buf.slot], window{i, b.kind, li, li})
			}
		}
	}
	for i, st := range p.steps {
		for _, b := range []planBuf{st.out, st.pad, st.wino, st.scratch} {
			if b.slot >= 0 && b.elems > p.slots[b.slot].elems {
				return fmt.Errorf("execplan: step %d buffer of %d elems exceeds slot %d capacity %d", i, b.elems, b.slot, p.slots[b.slot].elems)
			}
		}
	}
	for slot, ws := range bySlot {
		if p.slots[slot].class == slotPinned && len(ws) != 1 {
			return fmt.Errorf("execplan: pinned slot %d serves %d buffers", slot, len(ws))
		}
		for a := 0; a < len(ws); a++ {
			for b := a + 1; b < len(ws); b++ {
				if ws[a].start <= ws[b].end && ws[b].start <= ws[a].end {
					return fmt.Errorf("execplan: slot %d aliases live buffers: step %d %s (levels %d-%d) and step %d %s (levels %d-%d)",
						slot, ws[a].step, ws[a].kind, ws[a].start, ws[a].end, ws[b].step, ws[b].kind, ws[b].start, ws[b].end)
				}
			}
		}
	}
	return nil
}

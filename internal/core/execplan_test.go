package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// referenceRun executes the module's program strictly sequentially with
// freshly allocated buffers for every node — no arena, no slot sharing, no
// inter-op. It is the executable specification the planned executor must
// match bit for bit.
func referenceRun(m *Module, input *tensor.Tensor) ([]*tensor.Tensor, error) {
	vals := make([]*tensor.Tensor, len(m.program))
	for i, n := range m.program {
		out, err := m.exec(n, vals, input, threadpool.Serial, nil)
		if err != nil {
			return nil, err
		}
		vals[i] = out
	}
	outs := make([]*tensor.Tensor, len(m.Graph.Outputs))
	for i, o := range m.Graph.Outputs {
		outs[i] = vals[m.slot[o]]
	}
	return outs, nil
}

// planConfigs are the compilation configurations the property tests sweep:
// direct fp32, winograd-enabled global search, and int8 — each under both a
// serial lane and a pool wide enough to activate inter-op dispatch.
var planConfigs = []struct {
	name string
	opts Options
}{
	{"direct-serial", Options{Level: OptTransformElim, DisableWinograd: true, Threads: 1, Backend: machine.BackendSerial}},
	{"direct-interop", Options{Level: OptTransformElim, DisableWinograd: true, Threads: 3, Backend: machine.BackendPool}},
	{"winograd-interop", Options{Level: OptGlobalSearch, Threads: 3, Backend: machine.BackendPool}},
	{"int8-interop", Options{Level: OptTransformElim, Int8: true, Threads: 3, Backend: machine.BackendPool}},
}

// TestPlannedExecutionMatchesReference is the end-to-end property: for random
// branchy graphs under every configuration, (1) the plan never assigns two
// simultaneously-live buffers to one slot, (2) planned (and inter-op) session
// execution is bit-identical to the sequential fresh-buffer reference, (3)
// arena reuse across runs leaks nothing between inferences, and (4) the
// shared arena never exceeds the naive one-buffer-per-value footprint.
func TestPlannedExecutionMatchesReference(t *testing.T) {
	for id := 0; id < 6; id++ {
		for _, cfg := range planConfigs {
			// The builder-style fuzz generator from fuzz_test.go: conv/pool
			// chains with residual adds, concat fan-ins and dropout, so the
			// planner sees multi-consumer values, aliasing nodes and levels
			// wider than one.
			g := randomGraph(uint64(id)*1337 + 17)
			name := fmt.Sprintf("seed-%d/%s", id, cfg.name)
			m, err := Compile(g, skylake(), cfg.opts)
			if err != nil {
				t.Fatalf("%s: compile: %v", name, err)
			}
			if err := m.plan.validate(m.Graph, m.program); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			st := m.PlanStats()
			if st.ArenaBytes > st.NaiveArenaBytes {
				t.Fatalf("%s: planned arena %d exceeds naive %d", name, st.ArenaBytes, st.NaiveArenaBytes)
			}
			if st.Slots > st.Values {
				t.Fatalf("%s: more slots (%d) than values (%d)", name, st.Slots, st.Values)
			}

			in := tensor.New(tensor.NCHW(), 1, 3, m.Graph.Input.OutShape.Dims[2], m.Graph.Input.OutShape.Dims[3])
			in.FillRandom(uint64(id)+5, 1)
			in2 := tensor.New(tensor.NCHW(), in.Shape...)
			in2.FillRandom(uint64(id)+55, 1)

			want, err := referenceRun(m, in)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}
			want2, err := referenceRun(m, in2)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}

			s, err := m.NewSession()
			if err != nil {
				t.Fatalf("%s: session: %v", name, err)
			}
			ctx := context.Background()
			// Three passes over the reused arena: a slot-sharing bug that
			// leaves stale data (dirty pad borders, mis-shared outputs) shows
			// up as divergence on the second or third pass.
			for pass := 0; pass < 3; pass++ {
				input, expect := in, want
				if pass == 1 {
					input, expect = in2, want2
				}
				got, err := s.Run(ctx, input)
				if err != nil {
					t.Fatalf("%s pass %d: %v", name, pass, err)
				}
				for oi := range expect {
					if d := tensor.MaxAbsDiff(expect[oi], got[oi]); d != 0 {
						t.Fatalf("%s pass %d: output %d diverges from sequential reference by %g", name, pass, oi, d)
					}
				}
			}
			m.Close()
		}
	}
}

// TestPlanInterOpActivates pins the policy: branchy models must plan
// inter-op levels when compiled with a multi-thread pool, and must not when
// inter-op is disabled or the module is a single serial lane.
func TestPlanInterOpActivates(t *testing.T) {
	m, err := Compile(models.TinyInception(1), skylake(), Options{Level: OptTransformElim, Threads: 4, Backend: machine.BackendPool})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if st := m.PlanStats(); st.InterOpLevels == 0 || st.MaxWidth < 4 {
		t.Fatalf("tiny-inception must plan inter-op levels over its towers, got %+v", st)
	}

	seq, err := Compile(models.TinyInception(1), skylake(), Options{Level: OptTransformElim, Threads: 4, Backend: machine.BackendPool, DisableInterOp: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	if st := seq.PlanStats(); st.InterOpLevels != 0 {
		t.Fatalf("DisableInterOp must pin every level sequential, got %+v", st)
	}

	serial, err := Compile(models.TinyInception(1), skylake(), Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	if st := serial.PlanStats(); st.InterOpLevels != 0 {
		t.Fatalf("a single serial lane must not plan inter-op, got %+v", st)
	}
}

// TestPlanArenaSharing pins the headline saving: tiny-resnet's planned arena
// must be at least half the naive per-node arena (the acceptance bar for the
// planner), and model outputs must sit in dedicated pinned slots.
func TestPlanArenaSharing(t *testing.T) {
	m, err := Compile(models.TinyResNet(1), skylake(), Options{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st := m.PlanStats()
	if st.ArenaBytes*2 > st.NaiveArenaBytes {
		t.Fatalf("planned arena %d not ≥2x smaller than naive %d", st.ArenaBytes, st.NaiveArenaBytes)
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s.ArenaBytes() != st.ArenaBytes {
		t.Fatalf("session arena %d != planned %d", s.ArenaBytes(), st.ArenaBytes)
	}
	for _, o := range m.Graph.Outputs {
		st := m.plan.steps[m.slot[o]]
		if st.out.slot < 0 || m.plan.slots[st.out.slot].class != slotPinned {
			t.Fatalf("output %v not in a pinned slot", o)
		}
	}
	// The returned views must really be the pinned slots: running a second
	// inference on a DIFFERENT input must overwrite them (valid-until-next-run
	// semantics), not leave stale copies.
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(1, 1)
	outs, err := s.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	first := outs[0].Clone()
	in2 := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in2.FillRandom(99, 1)
	if _, err := s.Run(context.Background(), in2); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(first, outs[0]) == 0 {
		t.Fatal("second run did not write the pinned output slot")
	}
}

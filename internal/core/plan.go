package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/tensor"
)

// ErrInvalidPlan is the typed cause wrapped by every plan-parsing and
// plan-resolution failure (malformed JSON, truncated files, unknown layouts
// or algorithms, entries that do not match the graph). Callers branch with
// errors.Is(err, ErrInvalidPlan) instead of string matching; corrupted plan
// files must surface as this error, never as a panic.
var ErrInvalidPlan = errors.New("core: invalid plan")

// This file implements plan serialization: the optimization schemes a
// (possibly hours-long, in the paper's TVM setting) search produced can be
// exported and re-applied to a freshly built model without searching again —
// the compile-once/deploy-everywhere flow of the SageMaker Neo service the
// paper describes.

// PlanEntry is one convolution's serialized scheme. Convolutions are
// identified by their builder-assigned layer name, which is deterministic
// for a given model builder.
type PlanEntry struct {
	Conv      string `json:"conv"`
	Layout    string `json:"layout"` // "nchw", "nhwc" or "nchwc"
	ICBlock   int    `json:"ic_bn,omitempty"`
	OCBlock   int    `json:"oc_bn,omitempty"`
	RegN      int    `json:"reg_n,omitempty"`
	UnrollKer bool   `json:"unroll_ker,omitempty"`
	// Algorithm selects the convolution algorithm: "winograd" or "direct".
	// Absent (plans saved before the field existed) means direct.
	Algorithm string `json:"algorithm,omitempty"`
	// Grain is the parallel chunk size of the kernel's outermost loop. Absent
	// (plans saved before the field existed) means 1: one unit per work item,
	// the pre-grain kernels' behavior.
	Grain int `json:"grain,omitempty"`
}

// PlanFile is the serialized compilation plan.
type PlanFile struct {
	Model   string      `json:"model"`
	Target  string      `json:"target"`
	Level   string      `json:"level"`
	Entries []PlanEntry `json:"entries"`
}

// planEntries serializes the module's chosen per-convolution schemes.
func (m *Module) planEntries() []PlanEntry {
	var entries []PlanEntry
	for _, n := range m.Graph.Convs() {
		e := PlanEntry{Conv: n.Name}
		switch n.Sched.Layout.Kind {
		case tensor.LayoutNCHWc:
			e.Layout = "nchwc"
			e.ICBlock = n.Sched.ICBlock
			e.OCBlock = n.Sched.OCBlock
			e.RegN = n.Sched.RegN
			e.UnrollKer = n.Sched.UnrollKer
			if n.Sched.Algorithm == machine.AlgoWinograd {
				e.Algorithm = machine.AlgoWinograd.String()
			}
			if n.Sched.Grain > 1 {
				e.Grain = n.Sched.Grain
			}
		case tensor.LayoutNHWC:
			e.Layout = "nhwc"
		default:
			e.Layout = "nchw"
		}
		entries = append(entries, e)
	}
	return entries
}

// SavePlan serializes the module's chosen per-convolution schemes as JSON.
func (m *Module) SavePlan(w io.Writer) error {
	pf := PlanFile{
		Model:   m.Graph.Name,
		Target:  m.Target.Name,
		Level:   m.Level.String(),
		Entries: m.planEntries(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pf)
}

// LoadPlan parses a serialized plan. Malformed or truncated plan content
// fails with ErrInvalidPlan; an error from the reader itself (I/O, not
// corruption) is passed through untyped so callers do not mistake a
// transient read failure for a bad plan file.
func LoadPlan(r io.Reader) (*PlanFile, error) {
	var pf PlanFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		if errors.As(err, &syn) || errors.As(err, &typ) ||
			errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: decode: %v", ErrInvalidPlan, err)
		}
		return nil, fmt.Errorf("core: load plan: %w", err)
	}
	return &pf, nil
}

// Apply resolves the plan against a freshly built graph of the same model,
// returning a layout plan keyed by the graph's own conv nodes. Every
// convolution in the graph must have an entry; extra entries are an error so
// stale plans fail loudly.
func (pf *PlanFile) Apply(g *graph.Graph) (graph.LayoutPlan, error) {
	byName := make(map[string]PlanEntry, len(pf.Entries))
	for _, e := range pf.Entries {
		if _, dup := byName[e.Conv]; dup {
			return nil, fmt.Errorf("%w: duplicate entry for %q", ErrInvalidPlan, e.Conv)
		}
		byName[e.Conv] = e
	}
	plan := graph.LayoutPlan{}
	for _, n := range g.Convs() {
		e, ok := byName[n.Name]
		if !ok {
			return nil, fmt.Errorf("%w: no entry for convolution %q", ErrInvalidPlan, n.Name)
		}
		delete(byName, n.Name)
		algo := machine.AlgoDirect
		switch e.Algorithm {
		case "", machine.AlgoDirect.String():
			// Plans predating the algorithm field load as direct.
		case machine.AlgoWinograd.String():
			algo = machine.AlgoWinograd
		default:
			return nil, fmt.Errorf("%w: entry %q has unknown algorithm %q", ErrInvalidPlan, e.Conv, e.Algorithm)
		}
		if e.Grain < 0 {
			return nil, fmt.Errorf("%w: entry %q has negative grain %d", ErrInvalidPlan, e.Conv, e.Grain)
		}
		var s machine.ConvSchedule
		switch e.Layout {
		case "nchwc":
			s = machine.ConvSchedule{
				Layout:  tensor.NCHWc(e.ICBlock),
				ICBlock: e.ICBlock, OCBlock: e.OCBlock,
				RegN: e.RegN, UnrollKer: e.UnrollKer,
				Algorithm: algo, Grain: e.Grain,
			}
			wl := graph.ConvWorkload(n)
			if err := wl.ValidateBlocks(s); err != nil {
				return nil, fmt.Errorf("%w: entry %q: %v", ErrInvalidPlan, e.Conv, err)
			}
			if algo == machine.AlgoWinograd && !wl.WinogradViable() {
				return nil, fmt.Errorf("%w: entry %q schedules winograd for a %dx%d stride-%dx%d convolution with %d group(s) (dense 3x3 stride-1 only)",
					ErrInvalidPlan, e.Conv, wl.KH, wl.KW, wl.StrideH, wl.StrideW, wl.GroupCount())
			}
		case "nhwc", "nchw":
			if algo == machine.AlgoWinograd {
				return nil, fmt.Errorf("%w: entry %q schedules winograd in layout %q (NCHW[x]c only)", ErrInvalidPlan, e.Conv, e.Layout)
			}
			if e.Layout == "nhwc" {
				s = machine.ConvSchedule{Layout: tensor.NHWC()}
			} else {
				s = machine.ConvSchedule{Layout: tensor.NCHW()}
			}
		default:
			return nil, fmt.Errorf("%w: entry %q has unknown layout %q", ErrInvalidPlan, e.Conv, e.Layout)
		}
		plan[n] = s
	}
	if len(byName) != 0 {
		for name := range byName {
			return nil, fmt.Errorf("%w: entry %q matches no convolution in graph %q", ErrInvalidPlan, name, g.Name)
		}
	}
	return plan, nil
}

// CompileWithPlan compiles a graph using a previously saved plan instead of
// running any search. The target must match the plan's.
func CompileWithPlan(g *graph.Graph, t *machine.Target, pf *PlanFile, opts Options) (*Module, error) {
	if pf.Target != "" && pf.Target != t.Name {
		return nil, fmt.Errorf("%w: plan was produced for target %q, compiling for %q", ErrInvalidPlan, pf.Target, t.Name)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := graph.RemoveDropout(g); err != nil {
		return nil, err
	}
	if !opts.DisableBNFold {
		if err := graph.FoldBatchNorms(g); err != nil {
			return nil, err
		}
	}
	if !opts.DisableFusion {
		if err := graph.FuseOps(g); err != nil {
			return nil, err
		}
	}
	plan, err := pf.Apply(g)
	if err != nil {
		return nil, err
	}
	if err := graph.AlterOpLayout(g, plan, true); err != nil {
		return nil, fmt.Errorf("core: alter op layout: %w", err)
	}
	return finalizeModule(g, t, OptGlobalSearch, nil, opts)
}

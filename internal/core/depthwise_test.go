package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

// randomMobileGraph generates structurally random depthwise/grouped networks:
// depthwise-separable blocks, bare depthwise convolutions, grouped
// convolutions with channel expansion, residual adds and strides — the
// MobileNet-shaped counterpart of randomGraph, exercising shared-block
// depthwise schedules and per-group blocked schedules through every pass.
func randomMobileGraph(seed uint64) *graph.Graph {
	rng := seed
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	b := graph.NewBuilder("mobilefuzz", seed)
	x := b.Input(3, 24, 24)
	c := []int{8, 16, 24}[next(3)]
	x = b.ConvBNReLU(x, c, 3, 1, 1)
	h := 24
	var residualPool []*graph.Node

	blocks := 2 + next(4)
	for i := 0; i < blocks; i++ {
		switch next(4) {
		case 0:
			// Depthwise-separable with optional stride and channel change.
			stride := 1
			if h >= 8 && next(3) == 0 {
				stride = 2
			}
			newC := []int{c, c * 2, 16, 32}[next(4)]
			x = b.DepthwiseSeparable(x, newC, stride)
			c = newC
			if stride == 2 {
				h = (h-1)/2 + 1
				residualPool = nil
			}
		case 1:
			// Bare depthwise + BN + ReLU (channels preserved); sometimes 5x5.
			k := []int{3, 3, 5}[next(3)]
			x = b.ReLU(b.BatchNorm(b.DepthwiseConv(x, k, 1, k/2)))
		case 2:
			// Grouped convolution with 2 or 4 groups, optionally expanding.
			g := 2
			if c%4 == 0 && next(2) == 0 {
				g = 4
			}
			newC := c * []int{1, 2}[next(2)]
			x = b.ReLU(b.GroupedConv(x, newC, 3, 1, 1, g))
			c = newC
		default:
			// Dense 1x1 mixer keeps dense/blocked boundaries in play.
			x = b.ConvBNReLU(x, c, 1, 1, 0)
		}
		for _, cand := range residualPool {
			if cand.OutShape.Equal(x.OutShape) && next(2) == 0 {
				x = b.Add(x, cand)
				break
			}
		}
		residualPool = append(residualPool, x)
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TestDepthwisePlannedExecutionMatchesReference is the depthwise/grouped
// property test: for random MobileNet-shaped graphs under fp32 and int8,
// serial and inter-op execution, the planned arena-reusing session must be
// bit-identical to the sequential fresh-buffer reference (the same invariant
// the dense property test pins), and the plan must stay alias-free.
func TestDepthwisePlannedExecutionMatchesReference(t *testing.T) {
	for id := 0; id < 6; id++ {
		for _, cfg := range planConfigs {
			g := randomMobileGraph(uint64(id)*9176 + 31)
			name := fmt.Sprintf("seed-%d/%s", id, cfg.name)
			m, err := Compile(g, skylake(), cfg.opts)
			if err != nil {
				t.Fatalf("%s: compile: %v", name, err)
			}
			if err := m.plan.validate(m.Graph, m.program); err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			in := tensor.New(tensor.NCHW(), 1, 3, 24, 24)
			in.FillRandom(uint64(id)+13, 1)
			in2 := tensor.New(tensor.NCHW(), in.Shape...)
			in2.FillRandom(uint64(id)+113, 1)

			want, err := referenceRun(m, in)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}
			want2, err := referenceRun(m, in2)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}

			s, err := m.NewSession()
			if err != nil {
				t.Fatalf("%s: session: %v", name, err)
			}
			ctx := context.Background()
			for pass := 0; pass < 3; pass++ {
				input, expect := in, want
				if pass == 1 {
					input, expect = in2, want2
				}
				got, err := s.Run(ctx, input)
				if err != nil {
					t.Fatalf("%s pass %d: %v", name, pass, err)
				}
				for oi := range expect {
					if d := tensor.MaxAbsDiff(expect[oi], got[oi]); d != 0 {
						t.Fatalf("%s pass %d: output %d diverges from sequential reference by %g", name, pass, oi, d)
					}
				}
			}
			m.Close()
		}
	}
}

// TestDepthwiseGlobalSearchAgreesWithBaseline checks the full pipeline on
// TinyMobileNet: global search (which must pick shared-block depthwise
// schedules) agrees with the unoptimized NCHW baseline within fp32 tolerance,
// and the searched plan round-trips through SavePlan/LoadPlan/CompileWithPlan.
func TestDepthwiseGlobalSearchAgreesWithBaseline(t *testing.T) {
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(3, 1)

	base, err := Compile(models.TinyMobileNet(2), skylake(), Options{Level: OptNone, Threads: 1, Backend: machine.BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	m, err := Compile(models.TinyMobileNet(2), skylake(), Options{Level: OptGlobalSearch, Threads: 2, Backend: machine.BackendPool})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// The searched plan must schedule every depthwise conv with a shared
	// blocked pair — the kernel contract — and never winograd.
	dwConvs := 0
	for _, n := range m.Graph.Convs() {
		if !graph.ConvWorkload(n).Depthwise() {
			continue
		}
		dwConvs++
		if n.Sched.Layout.Kind != tensor.LayoutNCHWc {
			t.Fatalf("%v: depthwise conv not blocked: %v", n, n.Sched)
		}
		if n.Sched.ICBlock != n.Sched.OCBlock {
			t.Fatalf("%v: depthwise schedule blocks differ: %v", n, n.Sched)
		}
		if n.Sched.Algorithm == machine.AlgoWinograd {
			t.Fatalf("%v: winograd scheduled on a depthwise conv", n)
		}
	}
	if dwConvs != 3 {
		t.Fatalf("tiny-mobilenet has %d depthwise convs after compilation, want 3", dwConvs)
	}
	got, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want[0], got[0], 1e-4) {
		t.Fatalf("global-search output diverges from baseline by %g", tensor.MaxAbsDiff(want[0], got[0]))
	}

	// Plan round trip: save, load, re-apply to a fresh build, same outputs.
	var buf bytes.Buffer
	if err := m.SavePlan(&buf); err != nil {
		t.Fatal(err)
	}
	pf, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := CompileWithPlan(models.TinyMobileNet(2), skylake(), pf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	got2, err := replayed.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got[0], got2[0]); d != 0 {
		t.Fatalf("replayed plan diverges from searched module by %g", d)
	}
}

package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

// randomGraph builds a structurally random but valid CNN from a seed:
// conv/BN/ReLU/pool/residual/concat stages followed by a classifier head.
// It is the generator for the differential test below.
func randomGraph(seed uint64) *graph.Graph {
	rng := seed
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	b := graph.NewBuilder("fuzz", seed)
	x := b.Input(3, 32, 32)
	h := 32
	// Track same-shape candidates for residual connections.
	var residualPool []*graph.Node

	layers := 3 + next(5)
	for i := 0; i < layers; i++ {
		outC := []int{8, 12, 16, 24}[next(4)]
		k := []int{1, 3, 5}[next(3)]
		stride := 1
		if h >= 8 && next(4) == 0 {
			stride = 2
		}
		x = b.Conv(x, outC, k, stride, k/2)
		h = (h+2*(k/2)-k)/stride + 1
		if next(2) == 0 {
			x = b.BatchNorm(x)
		}
		if next(3) != 0 {
			x = b.ReLU(x)
		}
		if next(4) == 0 {
			x = b.Dropout(x)
		}
		// Residual add against an earlier same-shape tensor.
		for _, cand := range residualPool {
			if cand.OutShape.Equal(x.OutShape) && next(2) == 0 {
				x = b.Add(x, cand)
				break
			}
		}
		residualPool = append(residualPool, x)
		// Occasional concat branch.
		if next(4) == 0 {
			branch := b.ReLU(b.Conv(x, 8, 1, 1, 0))
			x = b.Concat(x, branch)
			residualPool = nil // shapes changed
		}
		if h >= 8 && next(3) == 0 {
			x = b.MaxPool(x, 2, 2, 0)
			h /= 2
			residualPool = nil
		}
	}
	x = b.GlobalAvgPool(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	return b.Finish(b.Softmax(x))
}

// TestFuzzOptLevelsAgree is the differential property test: for randomly
// generated graphs, every optimization level, precision aside, and every
// threading backend must compute the same function as the unoptimized
// serial NCHW baseline.
func TestFuzzOptLevelsAgree(t *testing.T) {
	tgt := skylake()
	for seed := uint64(1); seed <= 12; seed++ {
		g := randomGraph(seed)
		in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
		in.FillRandom(seed*31, 1)

		base, err := Compile(randomGraph(seed), tgt, Options{Level: OptNone, Threads: 1, Backend: machine.BackendSerial})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := base.Run(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		cases := []Options{
			{Level: OptLayout, Threads: 1, Backend: machine.BackendSerial},
			{Level: OptTransformElim, Threads: 3, Backend: machine.BackendPool},
			{Level: OptGlobalSearch, Threads: 2, Backend: machine.BackendOMP},
			{Level: OptTransformElim, Threads: 2, Backend: machine.BackendPool, DisableFusion: true},
			{Level: OptTransformElim, Threads: 1, Backend: machine.BackendSerial, DisableBNFold: true},
		}
		for ci, opts := range cases {
			m, err := Compile(randomGraph(seed), tgt, opts)
			if err != nil {
				t.Fatalf("seed %d case %d: %v", seed, ci, err)
			}
			got, err := m.Run(in)
			if err != nil {
				t.Fatalf("seed %d case %d: %v", seed, ci, err)
			}
			if !tensor.AllClose(want[0], got[0], 1e-4) {
				t.Fatalf("seed %d case %d (%+v): output diverges by %g",
					seed, ci, opts, tensor.MaxAbsDiff(want[0], got[0]))
			}
			m.Close()
		}
		_ = g
	}
}

// FuzzLoadPlan hammers plan parsing and resolution with corrupted,
// truncated and mutated plan files. The contract under fuzz: LoadPlan and
// PlanFile.Apply never panic, and every rejection is typed —
// errors.Is(err, ErrInvalidPlan) — so deployment tooling can distinguish "this
// plan file is bad" from an internal failure without string matching.
func FuzzLoadPlan(f *testing.F) {
	// Seed with a genuine plan (saved from a searched compile), truncations
	// of it, and targeted corruptions of every field the loader validates.
	m, err := Compile(models.TinyResNet(1), skylake(), Options{Level: OptGlobalSearch, NoPrepack: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SavePlan(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	f.Add([]byte{})
	f.Add([]byte("not json at all"))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"entries":null}`))
	f.Add([]byte(`{"model":"m","target":"t","entries":[{"conv":"c","layout":"qqq"}]}`))
	f.Add([]byte(`{"entries":[{"conv":"c","layout":"nchwc","ic_bn":-8,"oc_bn":0}]}`))
	f.Add([]byte(`{"entries":[{"conv":"c","layout":"nchw","algorithm":"winograd"}]}`))
	f.Add([]byte(`{"entries":[{"conv":"c","layout":"nchwc","ic_bn":3,"oc_bn":16,"algorithm":"fft"}]}`))
	f.Add([]byte(`{"entries":[{"conv":"c"},{"conv":"c"}]}`))
	f.Add(bytes.Replace(valid, []byte(`"nchwc"`), []byte(`"nhwc"`), 1))
	f.Add(bytes.Replace(valid, []byte(`"algorithm": "winograd"`), []byte(`"algorithm": "direct "`), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := LoadPlan(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrInvalidPlan) {
				t.Fatalf("LoadPlan returned an untyped error: %v", err)
			}
			return
		}
		// Whatever parsed must resolve against a real graph without
		// panicking; rejections stay typed.
		g := models.TinyResNet(1)
		if _, err := pf.Apply(g); err != nil && !errors.Is(err, ErrInvalidPlan) {
			t.Fatalf("Apply returned an untyped error: %v", err)
		}
	})
}

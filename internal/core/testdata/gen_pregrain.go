//go:build ignore

// gen_pregrain.go produced the pre-grain compatibility fixtures checked in
// next to it: a plan file and an artifact bundle saved by the compiler
// BEFORE the schedule grain field existed. The fixtures are frozen — they
// exist so plan/bundle loading keeps accepting artifacts from older builds
// (absent grain must mean serial-equivalent grain 1) — and this generator is
// kept only as provenance; re-running it against a current build would
// produce post-grain artifacts and defeat the fixtures' purpose.
//
// Usage (from the repo root, at the pre-grain revision):
//
//	go run internal/core/testdata/gen_pregrain.go
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
)

func main() {
	g, err := models.BuildAny("tiny-resnet", 1)
	if err != nil {
		panic(err)
	}
	m, err := core.Compile(g, machine.IntelSkylakeC5(), core.Options{
		Level: core.OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		panic(err)
	}
	plan, err := os.Create("internal/core/testdata/pregrain_tiny-resnet.plan.json")
	if err != nil {
		panic(err)
	}
	defer plan.Close()
	if err := m.SavePlan(plan); err != nil {
		panic(err)
	}
	bundle, err := os.Create("internal/core/testdata/pregrain_tiny-resnet.bundle")
	if err != nil {
		panic(err)
	}
	defer bundle.Close()
	if err := m.SaveBundle(bundle); err != nil {
		panic(err)
	}
	fmt.Println("wrote pregrain fixtures")
}

package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/artifact"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/ops"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// This file implements the compiled artifact bundle on top of
// internal/artifact: SaveBundle serializes everything a serving node needs
// to execute this module, and LoadBundle reconstructs an executable Module
// from a bundle without repeating schedule search or weight packing. The
// graph *structure* is rebuilt deterministically from the model name (node
// names are builder-assigned and stable), while every runtime parameter —
// packed fp32 weights, quantized weights with scales, raw NCHW/NHWC and
// dense weights, folded biases, surviving batch-norm statistics — is
// installed from the bundle, never regenerated: a structural rebuild does
// not replay the original parameter RNG sequence.

// ErrBundleTarget is the typed cause for loading a bundle on a target whose
// schedule-validity signature (vector lanes, vector registers) differs from
// the one the bundle's schemes were chosen for. Callers recompile for the
// new target instead.
var ErrBundleTarget = errors.New("core: bundle target mismatch")

// GraphResolver rebuilds the structure of a named model for bundle loading.
// It must return a freshly built graph (the loader rewrites it in place)
// whose node names match the ones the bundle was saved against; a shape-only
// build is sufficient since every runtime parameter comes from the bundle.
type GraphResolver func(model string, seed uint64) (*graph.Graph, error)

// ParseLevel resolves an optimization level's canonical name (the
// OptLevel.String forms, e.g. "global-search").
func ParseLevel(s string) (OptLevel, error) {
	for _, l := range []OptLevel{OptNone, OptLayout, OptTransformElim, OptGlobalSearch} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown optimization level %q", s)
}

// SaveBundle serializes the compiled module as a self-contained artifact
// bundle: the plan, the IO metadata, the target signature, and every runtime
// parameter in its packed executable form. Prediction-only modules released
// their weights at compile time and cannot be bundled.
func (m *Module) SaveBundle(w io.Writer) error {
	if m.noPrepack {
		return fmt.Errorf("core: cannot bundle a prediction-only module (compiled with NoPrepack)")
	}
	g := m.Graph
	h := artifact.Header{
		Model: g.Name,
		Target: artifact.TargetSig{
			Name:        m.Target.Name,
			VectorLanes: m.Target.VectorLanes,
			NumVecRegs:  m.Target.NumVecRegs,
			Cores:       m.Target.Cores,
		},
		Level:      m.Level.String(),
		Int8:       m.Int8,
		NoFusion:   m.disableFusion,
		NoBNFold:   m.disableBNFold,
		InputShape: append([]int(nil), g.Input.OutShape.Dims...),
		ArenaBytes: m.PlanStats().ArenaBytes,
	}
	for _, e := range m.planEntries() {
		h.Plan = append(h.Plan, artifact.SchedEntry(e))
	}
	for _, out := range g.Outputs {
		h.OutputShapes = append(h.OutputShapes, append([]int(nil), out.OutShape.Dims...))
	}

	var params []artifact.Param
	tensorParam := func(n *graph.Node, role string, t *tensor.Tensor) {
		params = append(params, artifact.Param{
			Entry: artifact.ParamEntry{
				Node: n.Name, Role: role,
				Layout: artifact.RefOf(t.Layout),
				Shape:  append([]int(nil), t.Shape...),
			},
			F32: t.Data,
		})
	}
	biasParam := func(n *graph.Node) {
		params = append(params, artifact.Param{
			Entry: artifact.ParamEntry{
				Node: n.Name, Role: artifact.RoleBias,
				Layout: artifact.RefOf(tensor.Flat()),
				Shape:  []int{len(n.Bias)},
			},
			F32: n.Bias,
		})
	}
	for _, n := range g.Topo() {
		switch n.Op {
		case graph.OpConv2D:
			switch {
			case m.qpacked[n] != nil:
				q := m.qpacked[n]
				params = append(params, artifact.Param{
					Entry: artifact.ParamEntry{
						Node: n.Name, Role: artifact.RoleQPacked,
						Layout: artifact.RefOf(q.Layout),
						Shape:  append([]int(nil), q.Shape...),
						Scales: len(q.Scales),
					},
					I8: q.Data, Scales: q.Scales,
				})
			case m.packed[n] != nil:
				tensorParam(n, artifact.RolePacked, m.packed[n])
			default:
				// NCHW/NHWC-scheduled convolutions execute from the raw weight.
				tensorParam(n, artifact.RoleWeight, n.Weight)
			}
			if n.Bias != nil {
				biasParam(n)
			}
		case graph.OpDense:
			tensorParam(n, artifact.RoleWeight, n.Weight)
			if n.Bias != nil {
				biasParam(n)
			}
		case graph.OpBatchNorm:
			// A batch norm surviving the folding pass (multi-consumer conv, or
			// a NoBNFold pipeline) executes from its statistics at runtime.
			c := n.BN.Channels()
			data := make([]float32, 0, 4*c)
			data = append(data, n.BN.Gamma...)
			data = append(data, n.BN.Beta...)
			data = append(data, n.BN.Mean...)
			data = append(data, n.BN.Var...)
			params = append(params, artifact.Param{
				Entry: artifact.ParamEntry{
					Node: n.Name, Role: artifact.RoleBN,
					Layout: artifact.RefOf(tensor.Flat()),
					Shape:  []int{4, c},
					Eps:    n.BN.Eps,
				},
				F32: data,
			})
		}
	}
	return artifact.Write(w, h, params)
}

// LoadBundle reconstructs an executable Module from a bundle, skipping
// schedule search and weight packing entirely. The model's structure is
// rebuilt via resolve and rewritten with the exact pass pipeline recorded in
// the bundle; all runtime parameters are installed from the bundle payload.
//
// The honored fields of opts are the runtime choices a bundle does not pin:
// Threads, Backend, DisableInterOp and SharedPool. Everything the schedules
// depend on (level, int8, pipeline ablations) comes from the bundle.
//
// Malformed bundle content fails with artifact.ErrInvalidArtifact; a target
// whose vector signature disagrees with the bundle fails with
// ErrBundleTarget.
func LoadBundle(r io.Reader, resolve GraphResolver, opts Options) (*Module, error) {
	b, err := artifact.Read(r)
	if err != nil {
		return nil, err
	}
	h := &b.Header
	t, err := machine.TargetByName(h.Target.Name)
	if err != nil {
		return nil, fmt.Errorf("%w: unknown target %q", ErrBundleTarget, h.Target.Name)
	}
	if t.VectorLanes != h.Target.VectorLanes || t.NumVecRegs != h.Target.NumVecRegs {
		return nil, fmt.Errorf("%w: bundle schedules assume %d lanes / %d vector registers for %q, this build resolves %d / %d",
			ErrBundleTarget, h.Target.VectorLanes, h.Target.NumVecRegs, h.Target.Name, t.VectorLanes, t.NumVecRegs)
	}
	level, err := ParseLevel(h.Level)
	if err != nil {
		return nil, fmt.Errorf("%w: level %q", artifact.ErrInvalidArtifact, h.Level)
	}
	if resolve == nil {
		return nil, fmt.Errorf("core: load bundle: nil graph resolver")
	}
	g, err := resolve(h.Model, h.Seed)
	if err != nil {
		// A bundle naming a model this process cannot rebuild is bad content
		// from the loader's point of view, so the rejection stays typed.
		return nil, fmt.Errorf("%w: resolve model %q: %v", artifact.ErrInvalidArtifact, h.Model, err)
	}

	// Replay the exact pass pipeline the bundle records, so the rebuilt node
	// set matches the one the parameters were saved against.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	if err := graph.RemoveDropout(g); err != nil {
		return nil, fmt.Errorf("core: load bundle: simplify: %w", err)
	}
	if !h.NoBNFold {
		if err := graph.FoldBatchNorms(g); err != nil {
			return nil, fmt.Errorf("core: load bundle: fold batch norm: %w", err)
		}
	}
	if !h.NoFusion {
		if err := graph.FuseOps(g); err != nil {
			return nil, fmt.Errorf("core: load bundle: fuse: %w", err)
		}
	}
	pf := &PlanFile{Model: h.Model, Target: h.Target.Name, Level: h.Level}
	for _, e := range h.Plan {
		pf.Entries = append(pf.Entries, PlanEntry(e))
	}
	plan, err := pf.Apply(g)
	if err != nil {
		return nil, fmt.Errorf("%w: plan: %v", artifact.ErrInvalidArtifact, err)
	}
	// OptLayout is the one level that keeps per-CONV transforms (Table 3 row
	// 2); every other level eliminates them, exactly as Compile does.
	if err := graph.AlterOpLayout(g, plan, level != OptLayout); err != nil {
		return nil, fmt.Errorf("core: load bundle: alter op layout: %w", err)
	}
	if !equalDims(g.Input.OutShape.Dims, h.InputShape) {
		return nil, fmt.Errorf("%w: bundle input shape %v, rebuilt graph has %v", artifact.ErrInvalidArtifact, h.InputShape, g.Input.OutShape.Dims)
	}
	if len(g.Outputs) != len(h.OutputShapes) {
		return nil, fmt.Errorf("%w: bundle has %d outputs, rebuilt graph has %d", artifact.ErrInvalidArtifact, len(h.OutputShapes), len(g.Outputs))
	}
	for i, out := range g.Outputs {
		if !equalDims(out.OutShape.Dims, h.OutputShapes[i]) {
			return nil, fmt.Errorf("%w: bundle output %d shape %v, rebuilt graph has %v", artifact.ErrInvalidArtifact, i, h.OutputShapes[i], out.OutShape.Dims)
		}
	}

	lopts := Options{
		Level:          level,
		Threads:        opts.Threads,
		Backend:        opts.Backend,
		Int8:           h.Int8,
		DisableFusion:  h.NoFusion,
		DisableBNFold:  h.NoBNFold,
		DisableInterOp: opts.DisableInterOp,
		SharedPool:     opts.SharedPool,
	}
	m := newModule(g, t, level, nil, lopts)
	if err := m.installParams(b); err != nil {
		return nil, err
	}
	m.finishRuntime(lopts)
	if h.ArenaBytes != 0 && m.plan.stats.ArenaBytes != h.ArenaBytes {
		return nil, fmt.Errorf("%w: rebuilt execution plan needs a %d-byte arena, bundle recorded %d (compiler drift — recompile the bundle)",
			artifact.ErrInvalidArtifact, m.plan.stats.ArenaBytes, h.ArenaBytes)
	}
	return m, nil
}

// paramKey identifies one (node, role) parameter slot.
type paramKey struct{ node, role string }

// installParams applies every bundle parameter onto the rebuilt graph,
// validating each blob's geometry against the schedule and requiring the
// provided set to exactly match what the graph needs — a stale or truncated
// parameter table fails loudly rather than executing garbage.
func (m *Module) installParams(b *artifact.Bundle) error {
	byName := map[string]*graph.Node{}
	needed := map[paramKey]bool{}
	for _, n := range m.Graph.Topo() {
		byName[n.Name] = n
		switch n.Op {
		case graph.OpConv2D:
			if n.Sched.Layout.Kind == tensor.LayoutNCHWc {
				if m.Int8 {
					needed[paramKey{n.Name, artifact.RoleQPacked}] = true
				} else {
					needed[paramKey{n.Name, artifact.RolePacked}] = true
				}
			} else {
				needed[paramKey{n.Name, artifact.RoleWeight}] = true
			}
			if n.Bias != nil {
				needed[paramKey{n.Name, artifact.RoleBias}] = true
			}
		case graph.OpDense:
			needed[paramKey{n.Name, artifact.RoleWeight}] = true
			if n.Bias != nil {
				needed[paramKey{n.Name, artifact.RoleBias}] = true
			}
		case graph.OpBatchNorm:
			needed[paramKey{n.Name, artifact.RoleBN}] = true
		}
	}

	applied := map[paramKey]bool{}
	for i := range b.Params {
		p := &b.Params[i]
		e := p.Entry
		k := paramKey{e.Node, e.Role}
		if !needed[k] {
			return fmt.Errorf("%w: unexpected param %q/%s for model %q", artifact.ErrInvalidArtifact, e.Node, e.Role, m.Graph.Name)
		}
		if applied[k] {
			return fmt.Errorf("%w: duplicate param %q/%s", artifact.ErrInvalidArtifact, e.Node, e.Role)
		}
		applied[k] = true
		n := byName[e.Node]
		layout, err := e.Layout.Layout()
		if err != nil {
			return err
		}
		switch e.Role {
		case artifact.RolePacked:
			shape, wantLayout, err := packedGeometry(n)
			if err != nil {
				return err
			}
			if !layout.Equal(wantLayout) || !equalDims(e.Shape, shape) {
				return fmt.Errorf("%w: param %q/%s is %v %v, schedule needs %v %v", artifact.ErrInvalidArtifact, e.Node, e.Role, layout, e.Shape, wantLayout, shape)
			}
			m.packed[n] = &tensor.Tensor{Shape: e.Shape, Data: p.F32, Layout: layout}
		case artifact.RoleQPacked:
			if n.Sched.Algorithm == machine.AlgoWinograd {
				return fmt.Errorf("%w: %q schedules winograd in an int8 bundle (no quantized winograd kernel)", artifact.ErrInvalidArtifact, e.Node)
			}
			shape, wantLayout, err := packedGeometry(n)
			if err != nil {
				return err
			}
			if !layout.Equal(wantLayout) || !equalDims(e.Shape, shape) || len(p.Scales) != n.Weight.Shape[0] {
				return fmt.Errorf("%w: param %q/%s does not match the schedule's packing", artifact.ErrInvalidArtifact, e.Node, e.Role)
			}
			m.qpacked[n] = &quant.QTensor{Shape: e.Shape, Data: p.I8, Layout: layout, Scales: p.Scales}
		case artifact.RoleWeight:
			if n.Weight == nil || !equalDims(e.Shape, n.Weight.Shape) || layout.Kind != n.Weight.Layout.Kind {
				return fmt.Errorf("%w: param %q/%s is %v %v, graph declares %v", artifact.ErrInvalidArtifact, e.Node, e.Role, layout, e.Shape, n.Weight)
			}
			n.Weight = &tensor.Tensor{Shape: e.Shape, Data: p.F32, Layout: layout}
		case artifact.RoleBias:
			want := n.DenseOut
			if n.Op == graph.OpConv2D {
				want = n.Conv.OutC
			}
			if len(p.F32) != want {
				return fmt.Errorf("%w: param %q/%s has %d values, node has %d output channels", artifact.ErrInvalidArtifact, e.Node, e.Role, len(p.F32), want)
			}
			n.Bias = p.F32
		case artifact.RoleBN:
			c := n.BN.Channels()
			if !equalDims(e.Shape, []int{4, c}) {
				return fmt.Errorf("%w: param %q/%s shape %v, node has %d channels", artifact.ErrInvalidArtifact, e.Node, e.Role, e.Shape, c)
			}
			n.BN = ops.BatchNormParams{
				Gamma: p.F32[:c], Beta: p.F32[c : 2*c],
				Mean: p.F32[2*c : 3*c], Var: p.F32[3*c : 4*c],
				Eps: e.Eps,
			}
		}
	}
	for k := range needed {
		if !applied[k] {
			return fmt.Errorf("%w: bundle provides no %s param for node %q", artifact.ErrInvalidArtifact, k.role, k.node)
		}
	}
	return nil
}

// packedGeometry computes the packed-weight shape and layout a convolution's
// schedule demands, mirroring the compile-time packing exactly.
func packedGeometry(n *graph.Node) ([]int, tensor.Layout, error) {
	s := n.Sched
	w := n.Weight
	if w == nil || len(w.Shape) != 4 {
		return nil, tensor.Layout{}, fmt.Errorf("%w: %q has no rank-4 weight to pack against", artifact.ErrInvalidArtifact, n.Name)
	}
	o, i, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if s.Algorithm == machine.AlgoWinograd {
		if s.OCBlock <= 0 || s.ICBlock <= 0 || o%s.OCBlock != 0 || i%s.ICBlock != 0 {
			return nil, tensor.Layout{}, fmt.Errorf("%w: %q blocks (%d,%d) do not divide weight %v", artifact.ErrInvalidArtifact, n.Name, s.ICBlock, s.OCBlock, w.Shape)
		}
		return []int{16, o / s.OCBlock, i / s.ICBlock, s.ICBlock, s.OCBlock}, tensor.Flat(), nil
	}
	// Depthwise weights are logically (C, 1, KH, KW): their packing splits
	// only the output channels (see finalizeModule).
	wIC := s.ICBlock
	if graph.ConvWorkload(n).Depthwise() {
		wIC = 1
	}
	if s.OCBlock <= 0 || wIC <= 0 || o%s.OCBlock != 0 || i%wIC != 0 {
		return nil, tensor.Layout{}, fmt.Errorf("%w: %q blocks (%d,%d) do not divide weight %v", artifact.ErrInvalidArtifact, n.Name, wIC, s.OCBlock, w.Shape)
	}
	return []int{o / s.OCBlock, i / wIC, kh, kw, wIC, s.OCBlock}, tensor.OIHWio(wIC, s.OCBlock), nil
}

func equalDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package artifact defines the on-disk compiled bundle format — the
// serializable "compiled artifact" the compile-once/deploy-many flow ships to
// serving nodes. One bundle file packages everything a process needs to
// execute a model without ever repeating schedule search or weight packing:
// the per-convolution optimization schemes (the plan), every runtime
// parameter in its packed executable form (blocked fp32 weights, quantized
// int8 weights with their scales, folded biases, surviving batch-norm
// statistics), the graph/IO metadata needed to validate a rebuild, and the
// signature of the CPU target the schedules were chosen for.
//
// This package is the dumb format layer: it encodes and decodes bundles and
// enforces their structural invariants, but knows nothing about graphs or
// modules. internal/core implements the semantic halves (Module.SaveBundle,
// core.LoadBundle) on top of it.
//
// # Wire layout (version 1)
//
//	offset  size  field
//	0       4     magic "NEOB"
//	4       4     format version, uint32 little-endian
//	8       4     header length H, uint32 little-endian
//	12      H     header, JSON (Header)
//	12+H    ...   payload: each Params entry's blob, in order
//
// Float32 data is stored as little-endian IEEE-754 bits; int8 data as raw
// bytes. A quantized entry's blob is its per-output-channel scales (float32)
// followed by its int8 data. The header records the payload's total length
// and CRC-32 (IEEE), so truncation and corruption are detected before any
// tensor is handed to the execution engine.
//
// Every malformed-input failure — bad magic, version skew, truncated files,
// inconsistent lengths, oversized claims — is reported as an error wrapping
// ErrInvalidArtifact and never as a panic; decoding allocates proportionally
// to the bytes actually present, not to attacker-claimed sizes.
package artifact

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/tensor"
)

// Magic identifies a NeoCPU bundle file.
const Magic = "NEOB"

// Version is the current format version. Readers reject other versions: the
// bundle carries derived compiler state (packed layouts, planned arena
// sizes), so cross-version compatibility is an explicit non-goal — recompile
// instead.
const Version = 1

// ErrInvalidArtifact is the typed cause wrapped by every bundle-decoding
// failure: corrupted or truncated files, version skew, inconsistent shapes
// or lengths. Callers branch with errors.Is.
var ErrInvalidArtifact = errors.New("artifact: invalid bundle")

// ErrTruncated marks the subset of invalid-bundle failures where the stream
// ended before the header's claims were satisfied. Truncation is the
// signature of a torn read — a bundle observed mid-write or over flaky I/O —
// so unlike the rest of ErrInvalidArtifact it is worth retrying. Errors on
// truncated paths wrap both sentinels.
var ErrTruncated = errors.New("artifact: truncated bundle")

// Retryable classifies a model-load failure for retry loops: transient
// failures (torn reads, interrupted I/O) return true; deterministic ones —
// a missing bundle, a permission error, a bundle that is simply corrupt —
// return false, since retrying them only delays the inevitable failure.
// Errors may also self-classify by implementing Retryable() bool.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var rt interface{ Retryable() bool }
	if errors.As(err, &rt) {
		return rt.Retryable()
	}
	return errors.Is(err, ErrTruncated)
}

// Decoding limits. They bound what a hostile header can make the reader
// allocate or loop over; real bundles sit far below all of them.
const (
	maxHeaderLen  = 8 << 20  // 8 MiB of JSON metadata
	maxShapeRank  = 8        // packed weights are rank 6, winograd rank 5
	maxParamElems = 1 << 28  // 256M elements (1 GiB fp32) per parameter
	maxParams     = 1 << 16  // distinct parameter entries
	maxPlanConvs  = 1 << 16  // plan entries
)

// Param roles. Each role determines how internal/core applies the blob to
// the rebuilt graph and how its byte length derives from Shape.
const (
	// RolePacked is a convolution's pre-transformed fp32 weight: the blocked
	// OIHW[x]i[y]o packing for the direct algorithm, or the transformed
	// winograd kernel U = G g Gᵀ in its blocked form.
	RolePacked = "packed"
	// RoleQPacked is a convolution's quantized packed weight: int8 data in
	// OIHW[x]i[y]o plus per-output-channel float32 scales.
	RoleQPacked = "qpacked"
	// RoleWeight is an unpacked fp32 node weight: convolutions scheduled in
	// plain NCHW/NHWC, and dense layers.
	RoleWeight = "weight"
	// RoleBias is a per-output-channel fp32 bias vector (possibly produced by
	// compile-time batch-norm folding).
	RoleBias = "bias"
	// RoleBN carries a surviving (unfolded) batch normalization's inference
	// statistics: gamma, beta, mean, var concatenated, shape (4, C), with the
	// epsilon in the entry's Eps field.
	RoleBN = "bn"
)

// TargetSig identifies the CPU target a bundle's schedules were chosen for.
// Name selects the machine model; VectorLanes and NumVecRegs are the
// schedule-validity parameters (a plan blocked for 16 lanes is wrong on 8),
// so loaders must reject bundles whose signature disagrees with the resolved
// target. Cores is provenance only — the thread count is a runtime choice.
type TargetSig struct {
	Name        string `json:"name"`
	VectorLanes int    `json:"vector_lanes"`
	NumVecRegs  int    `json:"num_vec_regs"`
	Cores       int    `json:"cores,omitempty"`
}

// SchedEntry is one convolution's serialized optimization scheme, mirroring
// the plan-file entries of internal/core (the bundle embeds the plan so a
// loaded model never re-runs the global search).
type SchedEntry struct {
	Conv      string `json:"conv"`
	Layout    string `json:"layout"` // "nchw", "nhwc" or "nchwc"
	ICBlock   int    `json:"ic_bn,omitempty"`
	OCBlock   int    `json:"oc_bn,omitempty"`
	RegN      int    `json:"reg_n,omitempty"`
	UnrollKer bool   `json:"unroll_ker,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// Grain is the kernel's parallel chunk size; absent (pre-grain bundles)
	// means 1. Kept field-identical with core.PlanEntry — the two convert by
	// direct struct conversion.
	Grain int `json:"grain,omitempty"`
}

// LayoutRef is a serializable tensor layout.
type LayoutRef struct {
	Kind   string `json:"kind"`
	BlockC int    `json:"block_c,omitempty"`
	BlockK int    `json:"block_k,omitempty"`
}

// layoutKinds maps the wire names onto tensor layout families.
var layoutKinds = map[string]tensor.LayoutKind{
	"nchw":   tensor.LayoutNCHW,
	"nhwc":   tensor.LayoutNHWC,
	"nchwc":  tensor.LayoutNCHWc,
	"oihw":   tensor.LayoutOIHW,
	"oihwio": tensor.LayoutOIHWio,
	"flat":   tensor.LayoutFlat,
	"any":    tensor.LayoutAny,
}

// RefOf converts a tensor layout to its wire form.
func RefOf(l tensor.Layout) LayoutRef {
	for name, kind := range layoutKinds {
		if kind == l.Kind {
			return LayoutRef{Kind: name, BlockC: l.BlockC, BlockK: l.BlockK}
		}
	}
	return LayoutRef{Kind: fmt.Sprintf("layout(%d)", int(l.Kind))}
}

// Layout converts the wire form back to a tensor layout.
func (r LayoutRef) Layout() (tensor.Layout, error) {
	kind, ok := layoutKinds[r.Kind]
	if !ok {
		return tensor.Layout{}, fmt.Errorf("%w: unknown layout kind %q", ErrInvalidArtifact, r.Kind)
	}
	return tensor.Layout{Kind: kind, BlockC: r.BlockC, BlockK: r.BlockK}, nil
}

// ParamEntry describes one runtime parameter blob in the payload. The blob's
// byte length is derived from Role, Shape and Scales — it is never trusted
// from a separate length field.
type ParamEntry struct {
	// Node is the graph node the parameter belongs to (builder-assigned layer
	// name, stable across rebuilds).
	Node string `json:"node"`
	// Role is one of the Role* constants.
	Role string `json:"role"`
	// Layout is the blob's tensor layout (meaningful for tensor roles).
	Layout LayoutRef `json:"layout"`
	// Shape is the blob's tensor shape ((4, C) for RoleBN, (N) for RoleBias).
	Shape []int `json:"shape"`
	// Scales counts the per-output-channel float32 scales preceding a
	// RoleQPacked entry's int8 data.
	Scales int `json:"scales,omitempty"`
	// Eps is the batch-norm epsilon for RoleBN entries.
	Eps float32 `json:"eps,omitempty"`
}

// Elems returns the entry's shape volume.
func (e *ParamEntry) Elems() int {
	n := 1
	for _, d := range e.Shape {
		n *= d
	}
	return n
}

// payloadBytes returns the entry's exact blob size, or an error for
// out-of-bounds claims.
func (e *ParamEntry) payloadBytes() (int, error) {
	if len(e.Shape) == 0 || len(e.Shape) > maxShapeRank {
		return 0, fmt.Errorf("%w: param %q/%s has shape rank %d", ErrInvalidArtifact, e.Node, e.Role, len(e.Shape))
	}
	elems := 1
	for _, d := range e.Shape {
		if d <= 0 || d > maxParamElems {
			return 0, fmt.Errorf("%w: param %q/%s has dimension %d in shape %v", ErrInvalidArtifact, e.Node, e.Role, d, e.Shape)
		}
		elems *= d
		if elems > maxParamElems {
			return 0, fmt.Errorf("%w: param %q/%s volume exceeds %d elements", ErrInvalidArtifact, e.Node, e.Role, maxParamElems)
		}
	}
	if e.Scales < 0 || e.Scales > maxParamElems {
		return 0, fmt.Errorf("%w: param %q/%s claims %d scales", ErrInvalidArtifact, e.Node, e.Role, e.Scales)
	}
	switch e.Role {
	case RolePacked, RoleWeight, RoleBias, RoleBN:
		if e.Scales != 0 {
			return 0, fmt.Errorf("%w: param %q/%s carries scales", ErrInvalidArtifact, e.Node, e.Role)
		}
		return 4 * elems, nil
	case RoleQPacked:
		if e.Scales == 0 {
			return 0, fmt.Errorf("%w: quantized param %q has no scales", ErrInvalidArtifact, e.Node)
		}
		return 4*e.Scales + elems, nil
	}
	return 0, fmt.Errorf("%w: param %q has unknown role %q", ErrInvalidArtifact, e.Node, e.Role)
}

// Header is the bundle's JSON metadata block.
type Header struct {
	// Model is the graph/builder name the bundle was compiled from; Seed is
	// the synthetic-parameter seed (provenance — loading never regenerates
	// parameters from it).
	Model string `json:"model"`
	Seed  uint64 `json:"seed,omitempty"`
	// Target is the compiled-for CPU signature.
	Target TargetSig `json:"target"`
	// Level is the optimization level's canonical name.
	Level string `json:"level"`
	// Int8 marks quantized modules.
	Int8 bool `json:"int8,omitempty"`
	// NoFusion/NoBNFold record pipeline ablations, so the loader rebuilds
	// the exact node set the parameters were saved against.
	NoFusion bool `json:"no_fusion,omitempty"`
	NoBNFold bool `json:"no_bn_fold,omitempty"`
	// Plan is the per-convolution scheme table.
	Plan []SchedEntry `json:"plan"`
	// InputShape/OutputShapes are the model's IO geometry, for validation and
	// for serving layers that size request limits before loading weights.
	InputShape   []int   `json:"input_shape"`
	OutputShapes [][]int `json:"output_shapes"`
	// ArenaBytes is the planned per-session arena footprint recorded at save
	// time; loaders cross-check it against the rebuilt execution plan to
	// catch compiler drift that silently changes execution memory.
	ArenaBytes int `json:"arena_bytes,omitempty"`
	// Params describes the payload blobs, in payload order.
	Params []ParamEntry `json:"params"`
	// PayloadLen/PayloadCRC guard the payload's integrity.
	PayloadLen int64  `json:"payload_len"`
	PayloadCRC uint32 `json:"payload_crc"`
}

// Param is one decoded parameter: its entry plus the typed data. Tensor
// roles fill F32; RoleQPacked fills I8 and Scales.
type Param struct {
	Entry  ParamEntry
	F32    []float32
	I8     []int8
	Scales []float32
}

// Bundle is a fully decoded artifact.
type Bundle struct {
	Header Header
	Params []Param
}

// encodeBlob writes one parameter's payload bytes.
func encodeBlob(w io.Writer, p *Param) error {
	var scratch [4]byte
	writeF32 := func(xs []float32) error {
		buf := make([]byte, 0, 4096)
		for _, x := range xs {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(x))
			buf = append(buf, scratch[:]...)
			if len(buf) >= 4096-4 {
				if _, err := w.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			_, err := w.Write(buf)
			return err
		}
		return nil
	}
	if p.Entry.Role == RoleQPacked {
		if err := writeF32(p.Scales); err != nil {
			return err
		}
		buf := make([]byte, len(p.I8))
		for i, v := range p.I8 {
			buf[i] = byte(v)
		}
		_, err := w.Write(buf)
		return err
	}
	return writeF32(p.F32)
}

// validateParam checks a parameter's data lengths against its entry.
func validateParam(p *Param) error {
	want, err := p.Entry.payloadBytes()
	if err != nil {
		return err
	}
	var got int
	if p.Entry.Role == RoleQPacked {
		got = 4*len(p.Scales) + len(p.I8)
		if len(p.Scales) != p.Entry.Scales || len(p.I8) != p.Entry.Elems() {
			return fmt.Errorf("%w: param %q/%s data does not match its entry", ErrInvalidArtifact, p.Entry.Node, p.Entry.Role)
		}
	} else {
		got = 4 * len(p.F32)
		if len(p.F32) != p.Entry.Elems() {
			return fmt.Errorf("%w: param %q/%s has %d values for shape %v", ErrInvalidArtifact, p.Entry.Node, p.Entry.Role, len(p.F32), p.Entry.Shape)
		}
	}
	if got != want {
		return fmt.Errorf("%w: param %q/%s payload is %d bytes, want %d", ErrInvalidArtifact, p.Entry.Node, p.Entry.Role, got, want)
	}
	return nil
}

// Write encodes a bundle. The header's Params, PayloadLen and PayloadCRC
// fields are computed from params; any caller-provided values are ignored.
func Write(w io.Writer, h Header, params []Param) error {
	h.Params = make([]ParamEntry, len(params))
	var total int64
	crc := crc32.NewIEEE()
	for i := range params {
		p := &params[i]
		if err := validateParam(p); err != nil {
			return err
		}
		n, _ := p.Entry.payloadBytes()
		h.Params[i] = p.Entry
		total += int64(n)
		// First pass: CRC only. The payload is already in memory, so the
		// second encoding pass below costs a copy, not a search or a pack.
		if err := encodeBlob(crc, p); err != nil {
			return err
		}
	}
	h.PayloadLen = total
	h.PayloadCRC = crc.Sum32()

	hj, err := json.Marshal(&h)
	if err != nil {
		return fmt.Errorf("artifact: encode header: %w", err)
	}
	if len(hj) > maxHeaderLen {
		return fmt.Errorf("artifact: header is %d bytes (limit %d)", len(hj), maxHeaderLen)
	}
	var fixed [12]byte
	copy(fixed[:4], Magic)
	binary.LittleEndian.PutUint32(fixed[4:8], Version)
	binary.LittleEndian.PutUint32(fixed[8:12], uint32(len(hj)))
	if _, err := w.Write(fixed[:]); err != nil {
		return err
	}
	if _, err := w.Write(hj); err != nil {
		return err
	}
	for i := range params {
		if err := encodeBlob(w, &params[i]); err != nil {
			return err
		}
	}
	return nil
}

// readExact reads exactly n bytes, growing the buffer incrementally so a
// huge claimed size with a short actual stream fails after reading what is
// there rather than allocating the claim up front.
func readExact(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: %w (%v)", ErrInvalidArtifact, ErrTruncated, err)
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		m := min(chunk, n-len(buf))
		start := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, fmt.Errorf("%w: %w (%v)", ErrInvalidArtifact, ErrTruncated, err)
		}
	}
	return buf, nil
}

// decodeF32 converts little-endian float32 bytes.
func decodeF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// ReadHeader decodes and validates the fixed prelude and header without
// touching the payload. Serving layers use it to index repositories cheaply.
func ReadHeader(r io.Reader) (*Header, error) {
	var fixed [12]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: %w: short prelude (%v)", ErrInvalidArtifact, ErrTruncated, err)
	}
	if string(fixed[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInvalidArtifact, fixed[:4])
	}
	if v := binary.LittleEndian.Uint32(fixed[4:8]); v != Version {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrInvalidArtifact, v, Version)
	}
	hlen := binary.LittleEndian.Uint32(fixed[8:12])
	if hlen == 0 || hlen > maxHeaderLen {
		return nil, fmt.Errorf("%w: header length %d", ErrInvalidArtifact, hlen)
	}
	hj, err := readExact(r, int(hlen))
	if err != nil {
		return nil, err
	}
	var h Header
	if err := json.Unmarshal(hj, &h); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrInvalidArtifact, err)
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// validate checks the header's structural invariants (not its payload).
func (h *Header) validate() error {
	if h.Model == "" {
		return fmt.Errorf("%w: missing model name", ErrInvalidArtifact)
	}
	if h.Target.Name == "" {
		return fmt.Errorf("%w: missing target signature", ErrInvalidArtifact)
	}
	if len(h.Plan) > maxPlanConvs {
		return fmt.Errorf("%w: %d plan entries (limit %d)", ErrInvalidArtifact, len(h.Plan), maxPlanConvs)
	}
	if len(h.Params) > maxParams {
		return fmt.Errorf("%w: %d params (limit %d)", ErrInvalidArtifact, len(h.Params), maxParams)
	}
	if len(h.InputShape) != 4 {
		return fmt.Errorf("%w: input shape %v is not rank-4 NCHW", ErrInvalidArtifact, h.InputShape)
	}
	if len(h.OutputShapes) == 0 {
		return fmt.Errorf("%w: no output shapes", ErrInvalidArtifact)
	}
	if h.PayloadLen < 0 {
		return fmt.Errorf("%w: negative payload length", ErrInvalidArtifact)
	}
	var total int64
	for i := range h.Params {
		n, err := h.Params[i].payloadBytes()
		if err != nil {
			return err
		}
		total += int64(n)
	}
	if total != h.PayloadLen {
		return fmt.Errorf("%w: params sum to %d payload bytes, header claims %d", ErrInvalidArtifact, total, h.PayloadLen)
	}
	return nil
}

// Read decodes a complete bundle, verifying the payload CRC.
func Read(r io.Reader) (*Bundle, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Header: *h, Params: make([]Param, len(h.Params))}
	crc := crc32.NewIEEE()
	for i := range h.Params {
		e := h.Params[i]
		n, _ := e.payloadBytes() // validated by ReadHeader
		blob, err := readExact(r, n)
		if err != nil {
			return nil, fmt.Errorf("param %q/%s: %w", e.Node, e.Role, err)
		}
		crc.Write(blob)
		p := Param{Entry: e}
		if e.Role == RoleQPacked {
			p.Scales = decodeF32(blob[:4*e.Scales])
			raw := blob[4*e.Scales:]
			p.I8 = make([]int8, len(raw))
			for j, v := range raw {
				p.I8[j] = int8(v)
			}
		} else {
			p.F32 = decodeF32(blob)
		}
		b.Params[i] = p
	}
	if got := crc.Sum32(); got != h.PayloadCRC {
		return nil, fmt.Errorf("%w: payload CRC %08x, header claims %08x", ErrInvalidArtifact, got, h.PayloadCRC)
	}
	return b, nil
}

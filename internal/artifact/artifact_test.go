package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func testHeader() Header {
	return Header{
		Model:  "tiny-test",
		Seed:   7,
		Target: TargetSig{Name: "intel-skylake", VectorLanes: 16, NumVecRegs: 32, Cores: 18},
		Level:  "global-search",
		Plan: []SchedEntry{
			{Conv: "conv0", Layout: "nchwc", ICBlock: 4, OCBlock: 8, RegN: 7},
		},
		InputShape:   []int{1, 3, 8, 8},
		OutputShapes: [][]int{{1, 10}},
		ArenaBytes:   4096,
	}
}

func testParams() []Param {
	f := make([]float32, 2*1*3*3*4*8) // (oo, io, kh, kw, ic_bn, oc_bn)
	for i := range f {
		f[i] = float32(i) * 0.25
	}
	bias := []float32{1, 2, 3, -4}
	q := make([]int8, 16)
	for i := range q {
		q[i] = int8(i - 8)
	}
	return []Param{
		{
			Entry: ParamEntry{Node: "conv0", Role: RolePacked, Layout: RefOf(tensor.OIHWio(4, 8)), Shape: []int{2, 1, 3, 3, 4, 8}},
			F32:   f,
		},
		{
			Entry: ParamEntry{Node: "conv0", Role: RoleBias, Layout: RefOf(tensor.Flat()), Shape: []int{4}},
			F32:   bias,
		},
		{
			Entry:  ParamEntry{Node: "conv1", Role: RoleQPacked, Layout: RefOf(tensor.OIHWio(4, 4)), Shape: []int{1, 1, 1, 1, 4, 4}, Scales: 4},
			I8:     q,
			Scales: []float32{0.5, 0.25, 0.125, 1},
		},
		{
			Entry: ParamEntry{Node: "bn2", Role: RoleBN, Layout: RefOf(tensor.Flat()), Shape: []int{4, 2}, Eps: 1e-5},
			F32:   []float32{1, 1, 0, 0, 0.5, 0.5, 1, 1},
		},
	}
}

func encode(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, testHeader(), testParams()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	raw := encode(t)
	b, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if b.Header.Model != "tiny-test" || b.Header.Target.VectorLanes != 16 {
		t.Fatalf("header mangled: %+v", b.Header)
	}
	if len(b.Params) != 4 {
		t.Fatalf("got %d params", len(b.Params))
	}
	want := testParams()
	for i, p := range b.Params {
		if p.Entry.Node != want[i].Entry.Node || p.Entry.Role != want[i].Entry.Role {
			t.Fatalf("param %d entry = %+v", i, p.Entry)
		}
		for j, v := range want[i].F32 {
			if p.F32[j] != v {
				t.Fatalf("param %d f32[%d] = %v, want %v", i, j, p.F32[j], v)
			}
		}
		for j, v := range want[i].I8 {
			if p.I8[j] != v {
				t.Fatalf("param %d i8[%d] = %v, want %v", i, j, p.I8[j], v)
			}
		}
		for j, v := range want[i].Scales {
			if p.Scales[j] != v {
				t.Fatalf("param %d scale[%d] = %v, want %v", i, j, p.Scales[j], v)
			}
		}
	}
	l, err := b.Params[0].Entry.Layout.Layout()
	if err != nil || !l.Equal(tensor.OIHWio(4, 8)) {
		t.Fatalf("layout round trip: %v %v", l, err)
	}
}

func TestTruncationAndCorruption(t *testing.T) {
	raw := encode(t)
	// Every strict prefix must fail with ErrInvalidArtifact, never panic.
	for n := 0; n < len(raw); n += 7 {
		if _, err := Read(bytes.NewReader(raw[:n])); !errors.Is(err, ErrInvalidArtifact) {
			t.Fatalf("prefix %d: err = %v, want ErrInvalidArtifact", n, err)
		}
	}
	// A flipped payload byte must fail the CRC.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-3] ^= 0x40
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrInvalidArtifact) {
		t.Fatalf("corrupt payload: err = %v", err)
	}
}

func TestVersionAndMagicSkew(t *testing.T) {
	raw := encode(t)
	wrongMagic := append([]byte(nil), raw...)
	copy(wrongMagic, "NOPE")
	if _, err := Read(bytes.NewReader(wrongMagic)); !errors.Is(err, ErrInvalidArtifact) {
		t.Fatalf("bad magic: err = %v", err)
	}
	wrongVer := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(wrongVer[4:8], Version+1)
	if _, err := Read(bytes.NewReader(wrongVer)); !errors.Is(err, ErrInvalidArtifact) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: err = %v", err)
	}
}

func TestHostileHeaderClaims(t *testing.T) {
	// A header claiming a huge parameter must be rejected up front — the
	// reader must not allocate the claim.
	h := testHeader()
	h.Params = []ParamEntry{{Node: "x", Role: RoleWeight, Shape: []int{1 << 20, 1 << 20}}}
	var buf bytes.Buffer
	if err := Write(&buf, h, []Param{{Entry: h.Params[0]}}); !errors.Is(err, ErrInvalidArtifact) {
		t.Fatalf("oversized write: err = %v", err)
	}

	cases := []ParamEntry{
		{Node: "x", Role: "exotic", Shape: []int{1}},
		{Node: "x", Role: RoleWeight, Shape: nil},
		{Node: "x", Role: RoleWeight, Shape: []int{0}},
		{Node: "x", Role: RoleWeight, Shape: []int{-3}},
		{Node: "x", Role: RoleWeight, Shape: []int{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{Node: "x", Role: RoleWeight, Shape: []int{2}, Scales: 3},
		{Node: "x", Role: RoleQPacked, Shape: []int{2}},
	}
	for _, e := range cases {
		if _, err := e.payloadBytes(); !errors.Is(err, ErrInvalidArtifact) {
			t.Fatalf("entry %+v: err = %v, want ErrInvalidArtifact", e, err)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	mutate := []func(*Header){
		func(h *Header) { h.Model = "" },
		func(h *Header) { h.Target.Name = "" },
		func(h *Header) { h.InputShape = []int{1, 3} },
		func(h *Header) { h.OutputShapes = nil },
		func(h *Header) { h.PayloadLen += 4 },
	}
	for i, m := range mutate {
		var buf bytes.Buffer
		if err := Write(&buf, testHeader(), testParams()); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		// Re-decode the header JSON, mutate, re-encode by hand.
		b, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		h := b.Header
		m(&h)
		if err := h.validate(); !errors.Is(err, ErrInvalidArtifact) {
			t.Fatalf("mutation %d: err = %v, want ErrInvalidArtifact", i, err)
		}
	}
}

// Package benchkernels defines the shared convolution-algorithm benchmark
// workload: the mid-network ResNet convolution (64x28x28 -> 64, 3x3 stride 1)
// that both the Go benchmark harness (bench_test.go) and the machine-readable
// emitter (neocpu-bench -json) time. Keeping the geometry and kernel
// invocations in one place guarantees the BENCH_<target>.json trajectory
// measures exactly the matchup BenchmarkConvAlgorithm reports.
package benchkernels

import (
	"repro/internal/ops"
	"repro/internal/tensor"
)

// ConvCase returns the benchmark convolution workload: deterministic random
// NCHW input, OIHW weight, and the 3x3 stride-1 pad-1 attributes.
func ConvCase() (*tensor.Tensor, *tensor.Tensor, ops.Conv2DAttrs) {
	in := tensor.New(tensor.NCHW(), 1, 64, 28, 28)
	in.FillRandom(1, 1)
	wt := tensor.New(tensor.OIHW(), 64, 64, 3, 3)
	wt.FillRandom(2, 0.5)
	return in, wt, ops.Conv2DAttrs{OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
}

// DirectBlocked prepares the direct-template benchmark at the given block
// factor and returns one steady-state iteration: all buffers (packed weight,
// padding scratch, destination) are preallocated so the timed loop measures
// only the kernel.
func DirectBlocked(blk int) func() {
	in, wt, attrs := ConvCase()
	bi := tensor.ToNCHWc(in, blk)
	bw := tensor.PackWeights(wt, blk, blk)
	pad := tensor.New(bi.Layout, ops.PaddedShapeNCHWc(bi.Shape, attrs)...)
	dst := tensor.New(tensor.NCHWc(blk), 1, attrs.OutC/blk, 28, 28, blk)
	return func() {
		ops.Conv2DNCHWcInto(dst, pad, bi, bw, attrs, blk, blk, 8, true, 1, ops.Epilogue{}, nil)
	}
}

// WinogradBlocked prepares the blocked Winograd benchmark at the given block
// factor: weights pre-transformed (U = G g Gᵀ), transform scratch and
// destination preallocated.
func WinogradBlocked(blk int) func() {
	in, wt, attrs := ConvCase()
	bi := tensor.ToNCHWc(in, blk)
	u := ops.WinogradWeightTransformNCHWc(wt, blk, blk)
	scratch := tensor.New(tensor.Flat(), ops.WinogradScratchShape(bi.Shape, attrs)...)
	dst := tensor.New(tensor.NCHWc(blk), 1, attrs.OutC/blk, 28, 28, blk)
	return func() {
		ops.Conv2DWinogradNCHWcInto(dst, scratch, bi, u, attrs, blk, blk, 1, ops.Epilogue{}, nil)
	}
}

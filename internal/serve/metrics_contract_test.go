// Black-box contract tests for the /metrics endpoint: scripted traffic with
// known outcomes (successes, backpressure, deadline expiries, panics,
// unknown models), then the exposition is parsed with the strict test-only
// parser and every counter delta checked exactly against what the clients
// observed. A second scrape locks in counter monotonicity.
package serve_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
)

// scrapeMetrics GETs /metrics and parses the body.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *promDoc {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics Content-Type %q", ct)
	}
	return parseProm(t, string(body))
}

// awaitBatcherQuiet polls a model's batch counters until two consecutive
// snapshots agree — delayed in-flight batches from a prior phase have
// finished, so the next phase's counter deltas are exact.
func awaitBatcherQuiet(t *testing.T, reg *serve.Registry, model string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev, err := reg.ModelStatsFor(model)
	if err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		time.Sleep(30 * time.Millisecond)
		cur, err := reg.ModelStatsFor(model)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Batch.Batches == prev.Batch.Batches && cur.Batch.Items == prev.Batch.Items &&
			cur.Batch.Panics == prev.Batch.Panics {
			return
		}
		prev = cur
	}
	t.Fatal("batcher never went quiet")
}

func TestMetricsContract(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn", "tiny-resnet")
	cfg := serve.RegistryConfig{Defaults: serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, QueueDepth: 4,
		BreakerThreshold: -1, // keep 500s/panics out of breaker state
		DrainTimeout:     time.Second,
	}}
	reg, ts := chaosServer(t, dir, cfg, "tiny-cnn", "tiny-resnet")
	in := chaosInput()
	body := inferBody(t, in)
	labels := func(kv ...string) map[string]string {
		m := map[string]string{}
		for i := 0; i < len(kv); i += 2 {
			m[kv[i]] = kv[i+1]
		}
		return m
	}

	// Baseline: a fresh server is ready, exposes the per-model gauges for
	// every loaded model, and elides all-zero counter series.
	base := scrapeMetrics(t, ts)
	if v := base.value(t, "neocpu_health_state", labels("state", "ready")); v != 1 {
		t.Fatalf("health_state{ready} = %g at boot", v)
	}
	for _, state := range []string{"degraded", "draining", "closed"} {
		if v := base.value(t, "neocpu_health_state", labels("state", state)); v != 0 {
			t.Fatalf("health_state{%s} = %g at boot", state, v)
		}
	}
	if v := base.value(t, "neocpu_pool_max_sessions", labels("model", "tiny-resnet")); v < 1 {
		t.Fatalf("pool_max_sessions{tiny-resnet} = %g", v)
	}
	if _, ok := base.lookup("neocpu_requests_total", labels("model", "tiny-resnet", "code", "200")); ok {
		t.Fatal("zero requests_total series not elided at boot")
	}

	// Phase 1 — successes: 5 sequential 200s on tiny-resnet.
	const okReqs = 5
	for i := 0; i < okReqs; i++ {
		status, _, _, err := chaosPost(ts, "tiny-resnet", body, nil)
		if err != nil || status != http.StatusOK {
			t.Fatalf("success request %d: status %d err %v", i, status, err)
		}
	}

	// Phase 2 — unknown models: names the repository never registered count
	// in the unlabeled counter and must not mint per-model series (a hostile
	// client cannot grow the exposition).
	for _, name := range []string{"no-such-model", "evil%22mod%0Ael"} {
		status, _, _, err := chaosPost(ts, name, body, nil)
		if err != nil || status != http.StatusNotFound {
			t.Fatalf("unknown model %q: status %d err %v", name, status, err)
		}
	}

	// Phase 3 — saturation: 80ms batches against 50ms budgets on a 4-deep
	// queue. Every request resolves as 504 (budget expiry) or 429
	// (backpressure); tally what the clients saw for the exact-delta check.
	removeDelay := faults.Inject(faults.SiteBatcherDispatch,
		faults.OnLabel("tiny-cnn", faults.Delay(80*time.Millisecond)))
	const saturate = 8
	var mu sync.Mutex
	clientCodes := map[int]int{}
	var wg sync.WaitGroup
	for c := 0; c < saturate; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _, err := chaosPost(ts, "tiny-cnn", body, map[string]string{"X-Request-Timeout": "50ms"})
			if err != nil {
				t.Errorf("saturation transport error: %v", err)
				return
			}
			mu.Lock()
			clientCodes[status]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	removeDelay()
	for code := range clientCodes {
		if code != http.StatusGatewayTimeout && code != http.StatusTooManyRequests {
			t.Fatalf("saturation answered %d (counts %v)", code, clientCodes)
		}
	}
	if clientCodes[http.StatusGatewayTimeout] == 0 {
		t.Fatalf("no 504 under saturation (counts %v)", clientCodes)
	}
	// Delayed batches may still be in flight after their clients got 504;
	// let them finish so the panic phase's deltas are exact.
	awaitBatcherQuiet(t, reg, "tiny-cnn")
	preStats, err := reg.ModelStatsFor("tiny-cnn")
	if err != nil {
		t.Fatal(err)
	}

	// Phase 4 — panics: each request is its own batch (MaxBatch 1), panics,
	// quarantines its session, answers 500.
	removePanic := faults.Inject(faults.SiteSessionRun,
		faults.OnLabel("tiny-cnn", faults.Panic("metrics contract: injected panic")))
	const panics = 2
	for i := 0; i < panics; i++ {
		status, _, _, err := chaosPost(ts, "tiny-cnn", body, nil)
		if err != nil || status != http.StatusInternalServerError {
			t.Fatalf("panic request %d: status %d err %v", i, status, err)
		}
	}
	removePanic()

	// The contract: every family present, every counter delta exactly what
	// the clients observed.
	doc := scrapeMetrics(t, ts)
	if v := doc.value(t, "neocpu_requests_total", labels("model", "tiny-resnet", "code", "200")); v != okReqs {
		t.Fatalf("requests_total{tiny-resnet,200} = %g, want %d", v, okReqs)
	}
	if v := doc.value(t, "neocpu_unknown_model_requests_total", nil); v != 2 {
		t.Fatalf("unknown_model_requests_total = %g, want 2", v)
	}
	for code, n := range clientCodes {
		got := doc.value(t, "neocpu_requests_total", labels("model", "tiny-cnn", "code", strconv.Itoa(code)))
		if got != float64(n) {
			t.Fatalf("requests_total{tiny-cnn,%d} = %g, clients saw %d", code, got, n)
		}
	}
	if v := doc.value(t, "neocpu_requests_total", labels("model", "tiny-cnn", "code", "500")); v != panics {
		t.Fatalf("requests_total{tiny-cnn,500} = %g, want %d", v, panics)
	}
	if v := doc.value(t, "neocpu_session_discards_total", labels("model", "tiny-cnn")); v != float64(preStats.Pool.Discards)+panics {
		t.Fatalf("session_discards_total{tiny-cnn} = %g, want %d", v, preStats.Pool.Discards+panics)
	}
	if v := doc.value(t, "neocpu_exec_panics_total", labels("model", "tiny-cnn")); v != float64(preStats.Batch.Panics)+panics {
		t.Fatalf("exec_panics_total{tiny-cnn} = %g, want %d", v, preStats.Batch.Panics+panics)
	}

	// A hostile model name never becomes a series.
	for _, f := range doc.families {
		for _, s := range f.samples {
			if m, ok := s.labels["model"]; ok && m != "tiny-cnn" && m != "tiny-resnet" {
				t.Fatalf("unexpected model label %q in %s", m, s.name)
			}
		}
	}

	// Histograms: well-formed for both models; tiny-resnet's counts are
	// exact (5 sequential requests through MaxBatch-1 = 5 single-item
	// batches, all admitted instantly).
	for _, fam := range []string{
		"neocpu_request_duration_seconds",
		"neocpu_queue_wait_seconds",
		"neocpu_batch_duration_seconds",
		"neocpu_batch_size",
	} {
		if n := checkHistogram(t, doc, fam, "tiny-resnet"); n != okReqs {
			t.Fatalf("%s{tiny-resnet} count = %g, want %d", fam, n, okReqs)
		}
		checkHistogram(t, doc, fam, "tiny-cnn")
	}
	if v := doc.value(t, "neocpu_batch_size_sum", labels("model", "tiny-resnet")); v != okReqs {
		t.Fatalf("batch_size_sum{tiny-resnet} = %g, want %d", v, okReqs)
	}
	if v := doc.value(t, "neocpu_batches_total", labels("model", "tiny-resnet")); v != okReqs {
		t.Fatalf("batches_total{tiny-resnet} = %g, want %d", v, okReqs)
	}
	if v := doc.value(t, "neocpu_sharded_batches_total", labels("model", "tiny-resnet")); v != 0 {
		t.Fatalf("sharded_batches_total{tiny-resnet} = %g, want 0 (pool of 1-item batches)", v)
	}

	// Gauges settle with no traffic in flight.
	if v := doc.value(t, "neocpu_queue_depth", labels("model", "tiny-resnet")); v != 0 {
		t.Fatalf("queue_depth{tiny-resnet} = %g at rest", v)
	}
	if v := doc.value(t, "neocpu_health_state", labels("state", "ready")); v != 1 {
		t.Fatalf("health_state{ready} = %g after traffic (breaker disabled)", v)
	}

	// Second scrape: no counter goes backwards, scraping is side-effect-free
	// on the counters themselves.
	checkMonotonic(t, doc, scrapeMetrics(t, ts))
}

// TestMetricsDisabled: WithMetrics(false)-equivalent config unexposes the
// endpoint (collection itself stays on, so flipping it back needs no restart).
func TestMetricsDisabled(t *testing.T) {
	mod := newModule(t)
	_, ts := newServer(t, mod, serve.Config{
		PoolSize: 1, MaxLatency: serve.NoLatency, DisableMetrics: true,
	})
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics: %d, want 404", resp.StatusCode)
	}
}

// TestStatsConsistentUnderLoad is the /v2/stats tearing regression: Stats
// snapshots racing live traffic must each be internally consistent —
// Waits <= Acquires, Idle <= Size <= MaxSize, Items >= Batches — and the
// counters monotonic across snapshots. Run under -race in CI.
func TestStatsConsistentUnderLoad(t *testing.T) {
	mod := newModule(t)
	srv, _ := newServer(t, mod, serve.Config{
		PoolSize: 2, MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 64,
	})
	h := srv.Handler()
	body := inferBody(t, testInput(5))

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for c := 0; c < 4; c++ {
		traffic.Add(1)
		go func() {
			defer traffic.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodPost, "/v2/models/tiny-resnet/infer", bytes.NewReader(body))
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
					t.Errorf("traffic status %d", rec.Code)
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	var prev serve.Stats
	snapshots := 0
	for time.Now().Before(deadline) {
		st := srv.Stats()
		snapshots++
		p := st.Pool
		if p.Waits > p.Acquires {
			t.Fatalf("torn snapshot: waits %d > acquires %d", p.Waits, p.Acquires)
		}
		if p.Idle > p.Size || p.Size > p.MaxSize {
			t.Fatalf("torn snapshot: idle %d size %d max %d", p.Idle, p.Size, p.MaxSize)
		}
		if st.Batch.Items < st.Batch.Batches {
			t.Fatalf("torn snapshot: %d items < %d batches", st.Batch.Items, st.Batch.Batches)
		}
		if p.Acquires < prev.Pool.Acquires || st.Batch.Items < prev.Batch.Items {
			t.Fatalf("counters went backwards between snapshots: %+v then %+v", prev, st)
		}
		prev = st
	}
	close(stop)
	traffic.Wait()
	if snapshots < 10 {
		t.Fatalf("only %d snapshots taken", snapshots)
	}
	t.Logf("%d consistent snapshots against live traffic", snapshots)
}

package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/tensor"
)

func testModule(t *testing.T) *core.Module {
	t.Helper()
	m, err := core.Compile(models.TinyCNN(1), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestPoolGrowsLazilyAndReuses(t *testing.T) {
	p, err := NewSessionPool(testModule(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Size != 1 || st.Idle != 1 {
		t.Fatalf("fresh pool: %+v, want one warm idle session", st)
	}
	ctx := context.Background()
	a, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire(ctx) // grows
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same session twice")
	}
	if st := p.Stats(); st.Size != 2 {
		t.Fatalf("size %d after growth, want 2", st.Size)
	}
	p.Release(a)
	c, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("pool did not reuse the released session")
	}
	if st := p.Stats(); st.Size != 2 {
		t.Fatalf("reuse grew the pool to %d", st.Size)
	}
	if st := p.Stats(); st.ArenaBytesPerSession == 0 {
		t.Fatal("arena accounting reported 0")
	}
	p.Release(b)
	p.Release(c)
}

func TestPoolBlocksAtBound(t *testing.T) {
	p, err := NewSessionPool(testModule(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhausted pool: got %v, want DeadlineExceeded", err)
	}
	if st := p.Stats(); st.Waits == 0 {
		t.Fatal("blocked Acquire was not counted as a wait")
	}
	p.Release(s)
	got, err := p.Acquire(context.Background())
	if err != nil || got != s {
		t.Fatalf("after release: %v, %v", got, err)
	}
	p.Release(got)
}

func TestPoolRejectsBadConfigurations(t *testing.T) {
	if _, err := NewSessionPool(testModule(t), 0); err == nil {
		t.Fatal("pool size 0 must fail")
	}
	pred, err := core.Compile(models.TinyCNN(1), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptTransformElim, NoPrepack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSessionPool(pred, 2); err == nil {
		t.Fatal("predict-only module must fail pool construction eagerly")
	}
}

func TestPoolSessionStatsAggregate(t *testing.T) {
	mod := testModule(t)
	p, err := NewSessionPool(mod, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(2, 1)
	if _, err := s.Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunBatch(context.Background(), []*tensor.Tensor{in, in}); err != nil {
		t.Fatal(err)
	}
	p.Release(s)
	st := p.Stats()
	if st.Runs != 2 || st.Items != 3 {
		t.Fatalf("aggregated runs=%d items=%d, want 2/3", st.Runs, st.Items)
	}
	if st.Busy <= 0 {
		t.Fatal("busy time not accumulated")
	}
}

func TestBatcherClosedRejects(t *testing.T) {
	p, err := NewSessionPool(testModule(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher("test", p, Config{MaxBatch: 4, MaxLatency: NoLatency, QueueDepth: 4})
	b.Close()
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	if _, err := b.Do(context.Background(), in); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed batcher: got %v, want ErrClosed", err)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := Config{}.withDefaults()
	if c.PoolSize != 0 || c.MaxBatch != 8 || c.MaxLatency != 2*time.Millisecond || c.QueueDepth != 32 || c.ArenaBudget != 64<<20 {
		t.Fatalf("defaults: %+v", c)
	}
	if c := (Config{MaxLatency: NoLatency}).withDefaults(); c.MaxLatency != 0 {
		t.Fatalf("NoLatency must resolve to 0, got %v", c.MaxLatency)
	}
	mod := testModule(t)
	for _, bad := range []Config{
		{PoolSize: -1},
		{MaxBatch: -2},
		{QueueDepth: -3},
	} {
		if _, err := New(mod, "", bad); err == nil {
			t.Fatalf("config %+v must be rejected", bad)
		}
	}
}

// TestDefaultPoolSizeFromPlan: the auto pool bound follows the planned arena
// footprint — budget/arena sessions, clamped to [2, 16].
func TestDefaultPoolSizeFromPlan(t *testing.T) {
	mod := testModule(t)
	arena := mod.PlanStats().ArenaBytes
	if arena <= 0 {
		t.Fatal("module has no planned arena")
	}
	if got := defaultPoolSize(mod, 64<<20); got != 16 {
		t.Fatalf("tiny arenas under a 64MiB budget must clamp to 16, got %d", got)
	}
	if got := defaultPoolSize(mod, arena*5); got != 5 {
		t.Fatalf("budget of 5 arenas must size the pool at 5, got %d", got)
	}
	if got := defaultPoolSize(mod, 1); got != 2 {
		t.Fatalf("a starvation budget must still allow 2 lanes, got %d", got)
	}
	s, err := New(mod, "", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.Pool.MaxSize != 16 {
		t.Fatalf("server with auto sizing: MaxSize = %d, want 16", st.Pool.MaxSize)
	}
}

package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: all traffic admitted
	breakerOpen                         // degraded: traffic refused until cooldown
	breakerHalfOpen                     // probing: one request admitted to test recovery
)

// Breaker is a per-model circuit breaker over batch execution failures. It
// trips open after Threshold failures inside a sliding Window — repeated
// panics or executor errors mean the model is hurting itself and its
// co-hosted neighbours (each panic burns a pooled session and a batch of
// requests) — and then refuses traffic for Cooldown. After the cooldown one
// probe request is admitted (half-open); its success closes the breaker,
// its failure re-opens it for another cooldown.
//
// All methods are safe for concurrent use. The zero value is not usable;
// construct with newBreaker.
type Breaker struct {
	threshold int
	window    time.Duration
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	// onTransition, when set, is called with the state entered ("open",
	// "half_open", "closed") on every state change — the registry hangs the
	// model's breaker-transition metric on it. Set before traffic; called
	// with b.mu held, so it must not call back into the breaker.
	onTransition func(state string)

	mu       sync.Mutex
	state    breakerState
	failures []time.Time // failure timestamps inside the sliding window
	openedAt time.Time
	probing  bool // half-open: a probe is in flight
	trips    uint64
}

// OnTransition installs the state-change callback. It must be installed
// before the breaker sees traffic.
func (b *Breaker) OnTransition(fn func(state string)) { b.onTransition = fn }

func (b *Breaker) transitioned(state string) {
	if b.onTransition != nil {
		b.onTransition(state)
	}
}

func newBreaker(threshold int, window, cooldown time.Duration) *Breaker {
	return &Breaker{
		threshold: threshold,
		window:    window,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// Allow reports whether a request may proceed. In the open state it returns
// false until the cooldown elapses, then transitions to half-open and admits
// exactly one probe; further requests are refused until that probe reports
// through Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.transitioned("half_open")
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports one admitted request's batch-execution outcome. A nil err
// is a success: it closes a half-open breaker and clears the failure window.
// A non-nil err counts toward the threshold; crossing it (or failing the
// half-open probe) opens the breaker.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if err == nil {
		if b.state == breakerHalfOpen {
			b.state = breakerClosed
			b.failures = b.failures[:0]
			b.probing = false
			b.transitioned("closed")
		}
		return
	}
	if b.state == breakerHalfOpen {
		// The probe failed: back to a full cooldown.
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.trips++
		b.transitioned("open")
		return
	}
	if b.state == breakerOpen {
		return // refused-window stragglers; already open
	}
	// Slide the window, then count.
	keep := b.failures[:0]
	for _, t := range b.failures {
		if now.Sub(t) < b.window {
			keep = append(keep, t)
		}
	}
	b.failures = append(keep, now)
	if len(b.failures) >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.failures = b.failures[:0]
		b.trips++
		b.transitioned("open")
	}
}

// Degraded reports whether the breaker currently refuses (non-probe)
// traffic. Unlike Allow it has no side effects, so health endpoints can poll
// it without consuming the half-open probe slot.
func (b *Breaker) Degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false
	case breakerHalfOpen:
		return true
	default:
		return true
	}
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// RetryAfter reports how long until the breaker would next admit a request:
// the remaining cooldown when open, zero otherwise.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return 0
	}
	if rem := b.cooldown - b.now().Sub(b.openedAt); rem > 0 {
		return rem
	}
	return 0
}

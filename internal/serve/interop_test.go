// Inter-op serving tests: branchy models whose execution plans dispatch
// independent branches across the module's thread pool, driven concurrently
// through the serving layer's micro-batcher. Run under -race (CI does), this
// exercises every layer of the concurrency stack at once — HTTP handlers,
// batch coalescing, pooled sessions, level-synchronous inter-op dispatch and
// the shared kernel thread pool.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// TestServeInterOpModels hammers an inter-op-planned Inception, DenseNet and
// SSD through the micro-batcher from many goroutines and checks every
// response against a single-session reference run of the same input.
func TestServeInterOpModels(t *testing.T) {
	cases := []struct {
		name string
		mk   func(uint64) *graph.Graph
		c, h int
	}{
		{"tiny-inception", models.TinyInception, 3, 32},
		{"tiny-densenet", models.TinyDenseNet, 3, 32},
		{"tiny-ssd", models.TinySSD, 3, 64},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mod, err := core.Compile(tc.mk(11), machine.IntelSkylakeC5(), core.Options{
				Level: core.OptTransformElim, Threads: 2, Backend: machine.BackendPool,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(mod.Close)
			if tc.name != "tiny-densenet" && mod.PlanStats().InterOpLevels == 0 {
				t.Fatalf("%s must plan inter-op levels (stats %+v)", tc.name, mod.PlanStats())
			}

			_, ts := newServer(t, mod, serve.Config{PoolSize: 3, MaxBatch: 4})

			// Reference outputs from a private session per distinct input.
			ref, err := mod.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			const distinct = 4
			want := make([][][]float32, distinct)
			for i := 0; i < distinct; i++ {
				in := tensor.New(tensor.NCHW(), 1, tc.c, tc.h, tc.h)
				in.FillRandom(uint64(i)+100, 1)
				outs, err := ref.Run(context.Background(), in)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = make([][]float32, len(outs))
				for j, o := range outs {
					want[i][j] = append([]float32(nil), o.Data...)
				}
			}

			const clients, perClient = 8, 3
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			url := ts.URL + "/v2/models/" + mod.Graph.Name + "/infer"
			for c := 0; c < clients; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < perClient; r++ {
						which := (c + r) % distinct
						in := tensor.New(tensor.NCHW(), 1, tc.c, tc.h, tc.h)
						in.FillRandom(uint64(which)+100, 1)
						body, err := json.Marshal(serve.InferRequest{
							Inputs: []serve.InferTensor{{Name: "input", Shape: in.Shape, Datatype: "FP32", Data: in.Data}},
						})
						if err != nil {
							errCh <- err
							return
						}
						resp, err := http.Post(url, "application/json", bytes.NewReader(body))
						if err != nil {
							errCh <- err
							return
						}
						var ir serve.InferResponse
						err = json.NewDecoder(resp.Body).Decode(&ir)
						resp.Body.Close()
						if err != nil {
							errCh <- err
							return
						}
						if resp.StatusCode != http.StatusOK {
							errCh <- fmt.Errorf("status %d", resp.StatusCode)
							return
						}
						if len(ir.Outputs) != len(want[which]) {
							errCh <- fmt.Errorf("%d outputs, want %d", len(ir.Outputs), len(want[which]))
							return
						}
						for j, o := range ir.Outputs {
							if len(o.Data) != len(want[which][j]) {
								errCh <- fmt.Errorf("output %d length %d, want %d", j, len(o.Data), len(want[which][j]))
								return
							}
							for k := range o.Data {
								if o.Data[k] != want[which][j][k] {
									errCh <- fmt.Errorf("output %d[%d] = %v, want %v (inter-op batched result diverged)", j, k, o.Data[k], want[which][j][k])
									return
								}
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

// Error-surface contract tests: every non-2xx response the server emits
// must carry a kserve-v2-style JSON error body ({"error": "..."}) with
// Content-Type application/json — clients branch on status codes but log
// and surface the error field, so a bare text/plain body is a regression.
package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
)

// TestErrorResponsesAreKserveJSON drives every 4xx/5xx path reachable
// without timing games and asserts the body contract.
func TestErrorResponsesAreKserveJSON(t *testing.T) {
	defer faults.Reset()
	mod := newModule(t)
	_, ts := newServer(t, mod, serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, QueueDepth: 4,
		DrainTimeout: time.Second,
	})
	goodBody := inferBody(t, testInput(1))

	badShape, err := json.Marshal(serve.InferRequest{Inputs: []serve.InferTensor{{
		Name: "input", Shape: []int{1, 1, 2, 2}, Datatype: "FP32", Data: []float32{1, 2, 3, 4},
	}}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		headers    map[string]string
		body       []byte
		armFault   func()
		wantStatus int
	}{
		{
			name: "unknown model infer is 404", method: "POST",
			path: "/v2/models/no-such-model/infer", body: goodBody,
			wantStatus: http.StatusNotFound,
		},
		{
			name: "unknown model metadata is 404", method: "GET",
			path:       "/v2/models/no-such-model",
			wantStatus: http.StatusNotFound,
		},
		{
			name: "malformed JSON is 400", method: "POST",
			path: "/v2/models/tiny-resnet/infer", body: []byte(`{"inputs":[`),
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "wrong input shape is 400", method: "POST",
			path: "/v2/models/tiny-resnet/infer", body: badShape,
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "bad X-Request-Timeout is 400", method: "POST",
			path: "/v2/models/tiny-resnet/infer", body: goodBody,
			headers:    map[string]string{"X-Request-Timeout": "soon"},
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "negative X-Request-Timeout is 400", method: "POST",
			path: "/v2/models/tiny-resnet/infer", body: goodBody,
			headers:    map[string]string{"X-Request-Timeout": "-5ms"},
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "oversized body is 413", method: "POST",
			path: "/v2/models/tiny-resnet/infer",
			body: append(goodBody[:len(goodBody)-1], []byte(`,"id":"`+strings.Repeat("x", 512<<10)+`"}`)...),
			wantStatus: http.StatusRequestEntityTooLarge,
		},
		{
			name: "expired deadline budget is 504", method: "POST",
			path: "/v2/models/tiny-resnet/infer", body: goodBody,
			headers:    map[string]string{"X-Request-Timeout": "15ms"},
			armFault:   func() { faults.Inject(faults.SiteBatcherDispatch, faults.Delay(60*time.Millisecond)) },
			wantStatus: http.StatusGatewayTimeout,
		},
		{
			name: "recovered execution panic is 500", method: "POST",
			path: "/v2/models/tiny-resnet/infer", body: goodBody,
			armFault:   func() { faults.Inject(faults.SiteSessionRun, faults.Panic("test panic")) },
			wantStatus: http.StatusInternalServerError,
		},
		{
			name: "unloadable model unload is 404", method: "POST",
			path:       "/v2/repository/models/no-such-model/unload",
			wantStatus: http.StatusNotFound,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults.Reset()
			if tc.armFault != nil {
				tc.armFault()
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			for k, v := range tc.headers {
				req.Header.Set(k, v)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not valid JSON: %v", err)
			}
			if body.Error == "" {
				t.Fatal("error body has empty error field")
			}
		})
	}
}

// TestMaxBodyBytesConfigurable: WithMaxBodyBytes-style explicit caps must
// override the signature-derived default, rejecting otherwise-valid bodies
// with a typed 413.
func TestMaxBodyBytesConfigurable(t *testing.T) {
	mod := newModule(t)
	s, err := serve.New(mod, "", serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, MaxBodyBytes: 256,
		DrainTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	body := inferBody(t, testInput(1)) // far larger than 256 bytes
	resp, err := ts.Client().Post(ts.URL+"/v2/models/tiny-resnet/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "256") {
		t.Fatalf("413 body %+v err %v, want error naming the 256-byte limit", eb, err)
	}
}

// Depthwise serving test: TinyMobileNet — depthwise-separable blocks, the
// shared-block depthwise kernel — driven through the micro-batcher by many
// concurrent clients under -race (CI runs the race detector), with every
// response checked bit-for-bit against the module's own single-lane output
// and the batcher required to demonstrably coalesce.
package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/serve"
)

func TestServeTinyMobileNetCoalesces(t *testing.T) {
	mod, err := core.Compile(models.TinyMobileNet(21), machine.IntelSkylakeC5(), core.Options{
		Level: core.OptGlobalSearch, Threads: 1, Backend: machine.BackendSerial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mod.Close)

	srv, ts := newServer(t, mod, serve.Config{
		PoolSize:   1, // one lane: concurrent requests must queue and coalesce
		MaxBatch:   8,
		MaxLatency: 5 * time.Millisecond,
		QueueDepth: 256,
	})

	const clients = 24
	const runsEach = 2
	bodies := make([][]byte, clients)
	wants := make([][]float32, clients)
	for c := 0; c < clients; c++ {
		in := testInput(uint64(300 + c))
		bodies[c] = inferBody(t, in)
		wants[c] = append([]float32(nil), wantOutput(t, mod, in).Data...)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	url := ts.URL + "/v2/models/tiny-mobilenet/infer"
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for r := 0; r < runsEach; r++ {
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[c]))
				if err != nil {
					errs <- err
					return
				}
				var ir serve.InferResponse
				err = json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d run %d: status %d", c, r, resp.StatusCode)
					return
				}
				if len(ir.Outputs) != 1 || len(ir.Outputs[0].Data) != len(wants[c]) {
					errs <- fmt.Errorf("client %d run %d: malformed outputs", c, r)
					return
				}
				for i, v := range ir.Outputs[0].Data {
					if v != wants[c][i] {
						errs <- fmt.Errorf("client %d run %d: output[%d] = %v, want %v (batched depthwise result diverged)", c, r, i, v, wants[c][i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Batch.Items != clients*runsEach {
		t.Fatalf("batcher carried %d items, want %d", st.Batch.Items, clients*runsEach)
	}
	if st.Batch.MaxObserved <= 1 {
		t.Fatalf("max observed batch size %d: micro-batcher never coalesced %d concurrent mobilenet clients", st.Batch.MaxObserved, clients)
	}
	t.Logf("batches=%d items=%d max=%d", st.Batch.Batches, st.Batch.Items, st.Batch.MaxObserved)
}

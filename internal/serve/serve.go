package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Config tunes the serving stack. The zero value of each field selects the
// default noted on it.
type Config struct {
	// PoolSize bounds the session pool. Each session is one execution lane
	// with its own arena; for throughput, compile the module with
	// Threads=1/BackendSerial and size the pool to the core count. The
	// default (0) derives the bound from the module's planned arena bytes:
	// as many sessions as fit ArenaBudget, clamped to [2, 16]. Sessions are
	// still created lazily, so a generous bound costs nothing until load
	// actually needs it.
	PoolSize int
	// ArenaBudget caps the memory the default pool sizing spends on session
	// arenas, in bytes (default 64 MiB). Ignored when PoolSize is set
	// explicitly.
	ArenaBudget int
	// MaxBatch caps how many requests one dispatch coalesces (default 8).
	MaxBatch int
	// MaxLatency is the longest the batcher lingers for stragglers once a
	// session is free and at least one request is waiting. The default is
	// 2ms; pass NoLatency to dispatch immediately with whatever is queued.
	MaxLatency time.Duration
	// QueueDepth bounds admission; a full queue answers 429 (default
	// 4*MaxBatch).
	QueueDepth int
	// RequestTimeout is the per-request deadline budget applied when the
	// client sends no X-Request-Timeout header (default 30s; NoTimeout
	// disables the server-side budget). The budget covers the request's
	// whole lifetime — queueing and execution — and expiry answers 504.
	RequestTimeout time.Duration
	// MaxBodyBytes caps infer request bodies. The default (0) derives the
	// cap from the model's input signature (~32 bytes of JSON per float32
	// plus fixed headroom); oversized bodies answer 413.
	MaxBodyBytes int64
	// DrainTimeout bounds how long Close/Unload lets queued requests and
	// in-flight batches finish before cancelling them (default 5s;
	// negative drops the grace period entirely).
	DrainTimeout time.Duration
	// BreakerThreshold is how many batch-execution failures inside
	// BreakerWindow trip the model's circuit breaker into the degraded
	// state (default 3; negative disables the breaker). A degraded model
	// answers 503 until a half-open probe succeeds.
	BreakerThreshold int
	// BreakerWindow is the sliding window the threshold counts failures in
	// (default 10s).
	BreakerWindow time.Duration
	// BreakerCooldown is how long a tripped breaker refuses traffic before
	// admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// AccessLog, when set, receives one JSON line per inference request
	// (model, status code, latency, batch id, deadline budget, client id) —
	// including rejected requests (4xx/429/504). The writer is serialized
	// behind a mutex; hand it os.Stdout or a buffered file writer.
	AccessLog io.Writer
	// DisableMetrics removes the GET /metrics endpoint. Collection itself
	// stays on (it is a handful of atomic adds per request); this only
	// unexposes it.
	DisableMetrics bool
}

// NoLatency disables the straggler window: batches dispatch with whatever is
// already queued.
const NoLatency = time.Duration(-1)

// NoTimeout disables the server-side default request deadline; requests then
// carry a budget only when the client sets X-Request-Timeout.
const NoTimeout = time.Duration(-1)

// withDefaults resolves zero fields; it does not validate (New does), and it
// leaves PoolSize 0 ("auto") for pool construction to resolve against the
// module's planned arena footprint.
func (c Config) withDefaults() Config {
	if c.ArenaBudget == 0 {
		c.ArenaBudget = 64 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.MaxLatency == 0 {
		c.MaxLatency = 2 * time.Millisecond
	}
	if c.MaxLatency < 0 {
		c.MaxLatency = 0
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.DrainTimeout < 0 {
		c.DrainTimeout = 0
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 10 * time.Second
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// validate rejects negative knobs (zero means "default", negatives are
// always caller bugs).
func (c Config) validate() error {
	if c.PoolSize < 0 {
		return fmt.Errorf("serve: pool size must be positive, got %d", c.PoolSize)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: max batch must be positive, got %d", c.MaxBatch)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: queue depth must be positive, got %d", c.QueueDepth)
	}
	if c.MaxBodyBytes < 0 {
		return fmt.Errorf("serve: max body bytes must be positive, got %d", c.MaxBodyBytes)
	}
	return nil
}

// Server exposes a model registry over the kserve-v2-style JSON protocol:
//
//	GET  /v2                                     server metadata
//	GET  /v2/health/live                         liveness
//	GET  /v2/health/ready                        readiness (not closed)
//	GET  /v2/models/<name>                       model metadata
//	GET  /v2/models/<name>/ready                 per-model readiness
//	POST /v2/models/<name>/infer                 inference
//	GET  /v2/models/<name>/stats                 per-model statistics (extension)
//	GET  /v2/stats                               statistics (extension)
//	GET  /v2/repository/index                    repository index
//	POST /v2/repository/index                    repository index (kserve form)
//	POST /v2/repository/models/<name>/load       bring a model up
//	POST /v2/repository/models/<name>/unload     take a model down
//	GET  /metrics                                Prometheus metrics (unless disabled)
//
// Requests are admitted into the addressed model's micro-batcher; the
// Handler is safe for arbitrary concurrent use, including concurrently with
// repository load/unload transitions.
//
// A server is either single-model (New: one caller-owned compiled module,
// /v2/stats keeps its historical single-object shape) or repository-backed
// (NewRepository: N models loaded on demand from artifact bundles under one
// arena budget).
type Server struct {
	reg     *Registry
	primary string // single-model mode: the addressed model; "" in repository mode
	repo    bool
	mux     *http.ServeMux
	closed  atomic.Bool

	// timeout is the default per-request deadline budget (0 = none) and
	// maxBody the explicit body cap (0 = derive from the input signature);
	// both resolved from the server's default Config at construction.
	timeout time.Duration
	maxBody int64

	// accessLog is the structured request log (nil disables); metricsOn
	// exposes GET /metrics.
	accessLog *accessLogger
	metricsOn bool
}

// Stats aggregates one model's serving-side counters.
type Stats struct {
	Model string     `json:"model"`
	Pool  PoolStats  `json:"pool"`
	Batch BatchStats `json:"batch"`
}

// New builds a single-model server over a compiled module. The model name is
// the path component clients address (conventionally the graph name). The
// caller keeps ownership of the module; Close never closes it.
func New(mod *core.Module, model string, cfg Config) (*Server, error) {
	if model == "" {
		model = mod.Graph.Name
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg, err := NewRegistry(nil, RegistryConfig{Defaults: cfg})
	if err != nil {
		return nil, err
	}
	if err := reg.AddStatic(model, mod, cfg); err != nil {
		return nil, err
	}
	rc := cfg.withDefaults()
	s := &Server{reg: reg, primary: model, timeout: rc.RequestTimeout, maxBody: rc.MaxBodyBytes, metricsOn: !rc.DisableMetrics}
	if rc.AccessLog != nil {
		s.accessLog = newAccessLogger(rc.AccessLog)
	}
	s.routes()
	return s, nil
}

// NewRepository builds a server over a model registry — typically one backed
// by a DirSource of artifact bundles. The server takes ownership of the
// registry: Close drains and closes it.
func NewRepository(reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, errors.New("serve: nil registry")
	}
	rc := reg.cfg.Defaults.withDefaults()
	s := &Server{reg: reg, repo: true, timeout: rc.RequestTimeout, maxBody: rc.MaxBodyBytes, metricsOn: !rc.DisableMetrics}
	if rc.AccessLog != nil {
		s.accessLog = newAccessLogger(rc.AccessLog)
	}
	s.routes()
	return s, nil
}

// Handler returns the HTTP handler. Valid until Close.
func (s *Server) Handler() http.Handler { return s.mux }

// Model returns the served model name (single-model mode; empty for
// repository servers).
func (s *Server) Model() string { return s.primary }

// Registry returns the underlying model registry.
func (s *Server) Registry() *Registry { return s.reg }

// Stats snapshots the primary model's pool and batcher counters
// (single-model mode; zero for repository servers — use Registry().Stats()).
func (s *Server) Stats() Stats {
	if s.primary == "" {
		return Stats{}
	}
	st, err := s.reg.ModelStatsFor(s.primary)
	if err != nil {
		return Stats{Model: s.primary}
	}
	return st
}

// Drain flips the server into the draining health state: readiness goes
// false (so load balancers stop routing here), new inference requests are
// refused with 503, and in-flight requests run to completion. The graceful
// shutdown sequence is Drain, then http.Server.Shutdown (which waits for
// in-flight handlers), then Close.
func (s *Server) Drain() { s.reg.Drain() }

// Close drains every loaded model's batcher (bounded by each model's
// DrainTimeout), closes the registry and marks the server unready. Modules
// registered via New remain open (the caller owns them); repository-loaded
// modules are closed.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.reg.Close()
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v2", s.handleServerMetadata)
	s.mux.HandleFunc("GET /v2/health/live", s.handleLive)
	s.mux.HandleFunc("GET /v2/health/ready", s.handleReady)
	s.mux.HandleFunc("GET /v2/models/{model}", s.handleModelMetadata)
	s.mux.HandleFunc("GET /v2/models/{model}/ready", s.handleModelReady)
	s.mux.HandleFunc("POST /v2/models/{model}/infer", s.handleInfer)
	s.mux.HandleFunc("GET /v2/models/{model}/stats", s.handleModelStats)
	s.mux.HandleFunc("GET /v2/stats", s.handleStats)
	s.mux.HandleFunc("GET /v2/repository/index", s.handleRepositoryIndex)
	s.mux.HandleFunc("POST /v2/repository/index", s.handleRepositoryIndex)
	s.mux.HandleFunc("POST /v2/repository/models/{model}/load", s.handleRepositoryLoad)
	s.mux.HandleFunc("POST /v2/repository/models/{model}/unload", s.handleRepositoryUnload)
	if s.metricsOn {
		s.mux.Handle("GET /metrics", s.reg.Metrics().Handler())
	}
}

// Wire format (the kserve v2 inference protocol's JSON shapes, restricted to
// the FP32 tensors this engine trades in).

// InferTensor is one named tensor on the wire, row-major data.
type InferTensor struct {
	Name     string    `json:"name"`
	Shape    []int     `json:"shape"`
	Datatype string    `json:"datatype"`
	Data     []float32 `json:"data"`
}

// InferRequest is the POST /v2/models/<name>/infer body.
type InferRequest struct {
	ID     string        `json:"id,omitempty"`
	Inputs []InferTensor `json:"inputs"`
}

// InferResponse is the inference reply.
type InferResponse struct {
	ModelName string        `json:"model_name"`
	ID        string        `json:"id,omitempty"`
	Outputs   []InferTensor `json:"outputs"`
}

type modelMetadata struct {
	Name     string           `json:"name"`
	Platform string           `json:"platform"`
	Inputs   []tensorMetadata `json:"inputs"`
	Outputs  []tensorMetadata `json:"outputs"`
}

type tensorMetadata struct {
	Name     string `json:"name"`
	Datatype string `json:"datatype"`
	Shape    []int  `json:"shape"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// registryStatus maps the registry's typed errors onto HTTP statuses: a name
// the repository has never heard of is 404, a known-but-unloaded model is
// 503 (the kserve distinction clients retry on), a model mid-transition is
// 409, and budget exhaustion is 507.
func registryStatus(err error) int {
	switch {
	case errors.Is(err, ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrModelNotReady), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrModelBusy):
		return http.StatusConflict
	case errors.Is(err, ErrArenaBudget):
		return http.StatusInsufficientStorage
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

// handleReady reports the server's health state machine: "ready" (200),
// "degraded" (200 — healthy co-hosted models still serve, but at least one
// breaker is open so the payload flags it), "draining" and "closed" (503 —
// stop routing traffic here).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	state := s.reg.Health()
	if s.closed.Load() {
		state = HealthClosed
	}
	status := http.StatusOK
	if state == HealthDraining || state == HealthClosed {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": status == http.StatusOK, "state": string(state)})
}

func (s *Server) handleServerMetadata(w http.ResponseWriter, r *http.Request) {
	idx := s.reg.Index()
	names := make([]string, 0, len(idx))
	for _, m := range idx {
		names = append(names, m.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":       "neocpu-serve",
		"extensions": []string{"stats", "repository"},
		"models":     names,
	})
}

// resolveModel looks up the addressed model, writing the kserve-style error
// (404 unknown vs 503 known-but-unloaded) on failure.
func (s *Server) resolveModel(w http.ResponseWriter, r *http.Request) (string, *core.Module, bool) {
	name := r.PathValue("model")
	mod, err := s.reg.Module(name)
	if err != nil {
		writeError(w, registryStatus(err), "%v", err)
		return name, nil, false
	}
	return name, mod, true
}

// handleModelReady reports one model's readiness, distinguishing degraded
// (loaded but circuit-broken, 503 with state "degraded") from not loaded.
func (s *Server) handleModelReady(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	state, err := s.reg.StateOf(name)
	switch {
	case errors.Is(err, ErrModelNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case err == nil && state == StateReady:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "state": string(state)})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "state": string(state)})
	}
}

func (s *Server) handleModelMetadata(w http.ResponseWriter, r *http.Request) {
	name, mod, ok := s.resolveModel(w, r)
	if !ok {
		return
	}
	md := modelMetadata{
		Name:     name,
		Platform: "neocpu-go",
		Inputs: []tensorMetadata{{
			Name:     "input",
			Datatype: "FP32",
			Shape:    mod.Graph.Input.OutShape.Dims,
		}},
	}
	for i, o := range mod.Graph.Outputs {
		md.Outputs = append(md.Outputs, tensorMetadata{
			Name:     fmt.Sprintf("output_%d", i),
			Datatype: "FP32",
			Shape:    o.OutShape.Dims,
		})
	}
	writeJSON(w, http.StatusOK, md)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Single-model servers keep the historical single-object shape;
	// repository servers report every model.
	if !s.repo {
		writeJSON(w, http.StatusOK, s.Stats())
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Stats())
}

func (s *Server) handleModelStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	st, err := s.reg.ModelStatsFor(name)
	if err != nil {
		writeError(w, registryStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleRepositoryIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Index())
}

func (s *Server) handleRepositoryLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if err := s.reg.Load(name); err != nil {
		writeError(w, registryStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"model": name, "state": string(StateReady)})
}

func (s *Server) handleRepositoryUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if err := s.reg.Unload(name); err != nil {
		writeError(w, registryStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"model": name, "state": string(StateUnloaded)})
}

// requestDeadline resolves one request's deadline budget: the
// X-Request-Timeout header (a Go duration like "50ms", or a bare integer in
// milliseconds) overrides the server default. Zero means no budget.
func (s *Server) requestDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-Request-Timeout")
	if h == "" {
		return s.timeout, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil {
		ms, merr := strconv.ParseInt(h, 10, 64)
		if merr != nil {
			return 0, fmt.Errorf("invalid X-Request-Timeout %q: want a duration (\"50ms\") or integer milliseconds", h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return 0, fmt.Errorf("invalid X-Request-Timeout %q: must be positive", h)
	}
	return d, nil
}

// handleInfer wraps the inference path with per-request observability: the
// terminal status and whole-handler latency feed the model's metric set (or
// the unknown-model counter — request metrics never create label series from
// client-supplied names), and the access log gets one line per request,
// rejected ones included.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	start := time.Now()
	code, batchID, budget, reqID := s.serveInfer(w, r, name)
	elapsed := time.Since(start)
	if mm := s.reg.metrics.Lookup(name); mm != nil {
		mm.ObserveRequest(code, elapsed)
	} else {
		s.reg.metrics.IncUnknown()
	}
	s.accessLog.log(name, code, elapsed, batchID, budget, reqID)
}

// serveInfer runs one inference request end to end and reports its terminal
// HTTP status, the micro-batch that carried it (0 if none), its resolved
// deadline budget, and the client-supplied request id.
func (s *Server) serveInfer(w http.ResponseWriter, r *http.Request, name string) (code int, batchID uint64, budget time.Duration, reqID string) {
	mod, err := s.reg.Module(name)
	if err != nil {
		st := registryStatus(err)
		writeError(w, st, "%v", err)
		return st, 0, 0, ""
	}
	var req InferRequest
	// Bound request bodies: the input tensor is fixed-size, and JSON spends
	// at most ~32 bytes per float32; headroom covers ids and whitespace. An
	// explicit MaxBodyBytes overrides the derived cap.
	maxBody := s.maxBody
	if maxBody == 0 {
		maxBody = int64(32*mod.Graph.Input.OutShape.Volume() + 64*1024)
	}
	body := http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return http.StatusRequestEntityTooLarge, 0, 0, ""
		}
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return http.StatusBadRequest, 0, 0, ""
	}
	reqID = req.ID
	in, err := requestTensor(mod, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return http.StatusBadRequest, 0, 0, reqID
	}

	// The deadline budget covers the request's whole remaining lifetime:
	// admission, queueing and execution all charge against it.
	budget, err = s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return http.StatusBadRequest, 0, 0, reqID
	}
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, budget, ErrDeadline)
		defer cancel()
	}

	outs, batchID, err := s.reg.InferTraced(ctx, name, in)
	if err != nil {
		switch {
		case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
			// The budget ran out — at admission (the queue was predicted to
			// outlast it), in the queue, or mid-execution.
			code = http.StatusGatewayTimeout
			writeError(w, code, "request deadline exceeded (budget %v): %v", budget, err)
		case errors.Is(err, ErrQueueFull):
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(s.reg.RetryAfterSeconds(name)))
			writeError(w, code, "server overloaded: %v", err)
		case errors.Is(err, ErrModelDegraded):
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(s.reg.RetryAfterSeconds(name)))
			writeError(w, code, "%v", err)
		case errors.Is(err, ErrClosed), errors.Is(err, ErrModelNotReady):
			// The model was unloaded (or evicted) while the request was in
			// flight, or the server is draining; clients retry elsewhere.
			code = http.StatusServiceUnavailable
			writeError(w, code, "%v", err)
		case errors.Is(err, ErrModelNotFound):
			code = http.StatusNotFound
			writeError(w, code, "%v", err)
		case r.Context().Err() != nil:
			// The client is gone; the status is a formality.
			code = http.StatusRequestTimeout
			writeError(w, code, "request cancelled: %v", err)
		default:
			// Includes recovered execution panics (*core.ExecPanicError):
			// this request's batch failed, the session was quarantined, and
			// the model keeps serving (until its breaker says otherwise).
			code = http.StatusInternalServerError
			writeError(w, code, "inference failed: %v", err)
		}
		return code, batchID, budget, reqID
	}

	resp := InferResponse{ModelName: name, ID: req.ID}
	for i, o := range outs {
		resp.Outputs = append(resp.Outputs, InferTensor{
			Name:     fmt.Sprintf("output_%d", i),
			Shape:    o.Shape,
			Datatype: "FP32",
			Data:     o.Data,
		})
	}
	// Encode before writing the status: output tensors can legitimately
	// carry non-finite values (saturated activations), which JSON cannot
	// represent — that must surface as a 500, not a 200 with a dead body.
	payload, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return http.StatusInternalServerError, batchID, budget, reqID
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
	return http.StatusOK, batchID, budget, reqID
}

// requestTensor validates the request against the compiled input geometry
// and builds the NCHW input tensor.
func requestTensor(mod *core.Module, req *InferRequest) (*tensor.Tensor, error) {
	if len(req.Inputs) != 1 {
		return nil, fmt.Errorf("expected exactly 1 input tensor, got %d", len(req.Inputs))
	}
	in := req.Inputs[0]
	if in.Datatype != "" && in.Datatype != "FP32" {
		return nil, fmt.Errorf("unsupported datatype %q (only FP32)", in.Datatype)
	}
	want := mod.Graph.Input.OutShape.Dims
	if len(in.Shape) != len(want) {
		return nil, fmt.Errorf("input shape %v, want %v", in.Shape, want)
	}
	n := 1
	for i, d := range in.Shape {
		if d != want[i] {
			return nil, fmt.Errorf("input shape %v, want %v", in.Shape, want)
		}
		n *= d
	}
	if len(in.Data) != n {
		return nil, fmt.Errorf("input data has %d elements, shape %v needs %d", len(in.Data), in.Shape, n)
	}
	return tensor.FromData(tensor.NCHW(), in.Data, want...), nil
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Config tunes the serving stack. The zero value of each field selects the
// default noted on it.
type Config struct {
	// PoolSize bounds the session pool. Each session is one execution lane
	// with its own arena; for throughput, compile the module with
	// Threads=1/BackendSerial and size the pool to the core count. The
	// default (0) derives the bound from the module's planned arena bytes:
	// as many sessions as fit ArenaBudget, clamped to [2, 16]. Sessions are
	// still created lazily, so a generous bound costs nothing until load
	// actually needs it.
	PoolSize int
	// ArenaBudget caps the memory the default pool sizing spends on session
	// arenas, in bytes (default 64 MiB). Ignored when PoolSize is set
	// explicitly.
	ArenaBudget int
	// MaxBatch caps how many requests one dispatch coalesces (default 8).
	MaxBatch int
	// MaxLatency is the longest the batcher lingers for stragglers once a
	// session is free and at least one request is waiting. The default is
	// 2ms; pass NoLatency to dispatch immediately with whatever is queued.
	MaxLatency time.Duration
	// QueueDepth bounds admission; a full queue answers 429 (default
	// 4*MaxBatch).
	QueueDepth int
}

// NoLatency disables the straggler window: batches dispatch with whatever is
// already queued.
const NoLatency = time.Duration(-1)

// withDefaults resolves zero fields; it does not validate (New does), and it
// leaves PoolSize 0 ("auto") for New to resolve against the module's planned
// arena footprint.
func (c Config) withDefaults() Config {
	if c.ArenaBudget == 0 {
		c.ArenaBudget = 64 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.MaxLatency == 0 {
		c.MaxLatency = 2 * time.Millisecond
	}
	if c.MaxLatency < 0 {
		c.MaxLatency = 0
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// Server exposes one compiled module over the kserve-v2-style JSON protocol:
//
//	GET  /v2                        server metadata
//	GET  /v2/health/live            liveness
//	GET  /v2/health/ready           readiness (warm session, not closed)
//	GET  /v2/models/<name>          model metadata
//	GET  /v2/models/<name>/ready    per-model readiness
//	POST /v2/models/<name>/infer    inference
//	GET  /v2/stats                  pool + batcher statistics (extension)
//
// Requests are admitted into the micro-batcher; the Handler is safe for
// arbitrary concurrent use.
type Server struct {
	mod     *core.Module
	model   string
	cfg     Config
	pool    *SessionPool
	batcher *Batcher
	mux     *http.ServeMux
	closed  atomic.Bool

	maxBody int64
}

// Stats aggregates the serving-side counters.
type Stats struct {
	Model string     `json:"model"`
	Pool  PoolStats  `json:"pool"`
	Batch BatchStats `json:"batch"`
}

// New builds a server over a compiled module. The model name is the path
// component clients address (conventionally the graph name).
func New(mod *core.Module, model string, cfg Config) (*Server, error) {
	if model == "" {
		model = mod.Graph.Name
	}
	if cfg.PoolSize < 0 {
		return nil, fmt.Errorf("serve: pool size must be positive, got %d", cfg.PoolSize)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("serve: max batch must be positive, got %d", cfg.MaxBatch)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: queue depth must be positive, got %d", cfg.QueueDepth)
	}
	cfg = cfg.withDefaults()
	if cfg.PoolSize == 0 {
		cfg.PoolSize = defaultPoolSize(mod, cfg.ArenaBudget)
	}
	pool, err := NewSessionPool(mod, cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	s := &Server{
		mod:     mod,
		model:   model,
		cfg:     cfg,
		pool:    pool,
		batcher: NewBatcher(pool, cfg.MaxBatch, cfg.MaxLatency, cfg.QueueDepth),
	}
	// Bound request bodies: the input tensor is fixed-size, and JSON spends
	// at most ~32 bytes per float32; headroom covers ids and whitespace.
	s.maxBody = int64(32*s.mod.Graph.Input.OutShape.Volume() + 64*1024)
	s.routes()
	return s, nil
}

// Handler returns the HTTP handler. Valid until Close.
func (s *Server) Handler() http.Handler { return s.mux }

// Model returns the served model name.
func (s *Server) Model() string { return s.model }

// Stats snapshots the pool and batcher counters.
func (s *Server) Stats() Stats {
	return Stats{Model: s.model, Pool: s.pool.Stats(), Batch: s.batcher.Stats()}
}

// Close drains the batcher and marks the server unready. It does not close
// the underlying module (the caller owns it).
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.batcher.Close()
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v2", s.handleServerMetadata)
	s.mux.HandleFunc("GET /v2/health/live", s.handleLive)
	s.mux.HandleFunc("GET /v2/health/ready", s.handleReady)
	s.mux.HandleFunc("GET /v2/models/{model}", s.handleModelMetadata)
	s.mux.HandleFunc("GET /v2/models/{model}/ready", s.handleModelReady)
	s.mux.HandleFunc("POST /v2/models/{model}/infer", s.handleInfer)
	s.mux.HandleFunc("GET /v2/stats", s.handleStats)
}

// Wire format (the kserve v2 inference protocol's JSON shapes, restricted to
// the FP32 tensors this engine trades in).

// InferTensor is one named tensor on the wire, row-major data.
type InferTensor struct {
	Name     string    `json:"name"`
	Shape    []int     `json:"shape"`
	Datatype string    `json:"datatype"`
	Data     []float32 `json:"data"`
}

// InferRequest is the POST /v2/models/<name>/infer body.
type InferRequest struct {
	ID     string        `json:"id,omitempty"`
	Inputs []InferTensor `json:"inputs"`
}

// InferResponse is the inference reply.
type InferResponse struct {
	ModelName string        `json:"model_name"`
	ID        string        `json:"id,omitempty"`
	Outputs   []InferTensor `json:"outputs"`
}

type modelMetadata struct {
	Name     string           `json:"name"`
	Platform string           `json:"platform"`
	Inputs   []tensorMetadata `json:"inputs"`
	Outputs  []tensorMetadata `json:"outputs"`
}

type tensorMetadata struct {
	Name     string `json:"name"`
	Datatype string `json:"datatype"`
	Shape    []int  `json:"shape"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (s *Server) handleServerMetadata(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"name":       "neocpu-serve",
		"extensions": []string{"stats"},
		"models":     []string{s.model},
	})
}

func (s *Server) checkModel(w http.ResponseWriter, r *http.Request) bool {
	if name := r.PathValue("model"); name != s.model {
		writeError(w, http.StatusNotFound, "unknown model %q (serving %q)", name, s.model)
		return false
	}
	return true
}

func (s *Server) handleModelReady(w http.ResponseWriter, r *http.Request) {
	if !s.checkModel(w, r) {
		return
	}
	s.handleReady(w, r)
}

func (s *Server) handleModelMetadata(w http.ResponseWriter, r *http.Request) {
	if !s.checkModel(w, r) {
		return
	}
	md := modelMetadata{
		Name:     s.model,
		Platform: "neocpu-go",
		Inputs: []tensorMetadata{{
			Name:     "input",
			Datatype: "FP32",
			Shape:    s.mod.Graph.Input.OutShape.Dims,
		}},
	}
	for i, o := range s.mod.Graph.Outputs {
		md.Outputs = append(md.Outputs, tensorMetadata{
			Name:     fmt.Sprintf("output_%d", i),
			Datatype: "FP32",
			Shape:    o.OutShape.Dims,
		})
	}
	writeJSON(w, http.StatusOK, md)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if !s.checkModel(w, r) {
		return
	}
	var req InferRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	in, err := s.requestTensor(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	outs, err := s.batcher.Do(r.Context(), in)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server overloaded: %v", err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case r.Context().Err() != nil:
			// The client is gone; the status is a formality.
			writeError(w, http.StatusRequestTimeout, "request cancelled: %v", err)
		default:
			writeError(w, http.StatusInternalServerError, "inference failed: %v", err)
		}
		return
	}

	resp := InferResponse{ModelName: s.model, ID: req.ID}
	for i, o := range outs {
		resp.Outputs = append(resp.Outputs, InferTensor{
			Name:     fmt.Sprintf("output_%d", i),
			Shape:    o.Shape,
			Datatype: "FP32",
			Data:     o.Data,
		})
	}
	// Encode before writing the status: output tensors can legitimately
	// carry non-finite values (saturated activations), which JSON cannot
	// represent — that must surface as a 500, not a 200 with a dead body.
	payload, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// requestTensor validates the request against the compiled input geometry
// and builds the NCHW input tensor.
func (s *Server) requestTensor(req *InferRequest) (*tensor.Tensor, error) {
	if len(req.Inputs) != 1 {
		return nil, fmt.Errorf("expected exactly 1 input tensor, got %d", len(req.Inputs))
	}
	in := req.Inputs[0]
	if in.Datatype != "" && in.Datatype != "FP32" {
		return nil, fmt.Errorf("unsupported datatype %q (only FP32)", in.Datatype)
	}
	want := s.mod.Graph.Input.OutShape.Dims
	if len(in.Shape) != len(want) {
		return nil, fmt.Errorf("input shape %v, want %v", in.Shape, want)
	}
	n := 1
	for i, d := range in.Shape {
		if d != want[i] {
			return nil, fmt.Errorf("input shape %v, want %v", in.Shape, want)
		}
		n *= d
	}
	if len(in.Data) != n {
		return nil, fmt.Errorf("input data has %d elements, shape %v needs %d", len(in.Data), in.Shape, n)
	}
	return tensor.FromData(tensor.NCHW(), in.Data, want...), nil
}

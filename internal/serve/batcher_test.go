package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

var (
	errClientGone      = fmt.Errorf("wrap: %w", context.Canceled)
	errShutdown        = fmt.Errorf("wrap: %w", ErrClosed)
	errDeadlineWrapped = fmt.Errorf("wrap: %w", context.DeadlineExceeded)
	errExec            = errors.New("kernel exploded")
)

// TestRetryAfterTracksQueueAndLatency: the Retry-After estimate must be
// derived from live state — queue depth times observed batch latency — not a
// hardcoded constant, with a 1-second floor before any batch has been
// measured.
func TestRetryAfterTracksQueueAndLatency(t *testing.T) {
	b := &Batcher{maxBatch: 4, queue: make(chan *request, 32)}

	// Cold: no batch measured yet, estimate is unknown, floor applies.
	if w := b.EstimatedWait(); w != 0 {
		t.Fatalf("cold EstimatedWait = %v, want 0", w)
	}
	if got := b.RetryAfterSeconds(); got != 1 {
		t.Fatalf("cold RetryAfterSeconds = %d, want floor 1", got)
	}

	// One observed 3s batch, empty queue: one batch ahead of a new arrival.
	b.observeLatency(3 * time.Second)
	if w := b.EstimatedWait(); w != 3*time.Second {
		t.Fatalf("EstimatedWait = %v, want 3s", w)
	}
	if got := b.RetryAfterSeconds(); got != 3 {
		t.Fatalf("RetryAfterSeconds = %d, want 3", got)
	}

	// Eight queued requests at maxBatch 4: two more full batches ahead.
	for i := 0; i < 8; i++ {
		b.queue <- &request{}
	}
	if w := b.EstimatedWait(); w != 9*time.Second {
		t.Fatalf("EstimatedWait with depth 8 = %v, want 9s", w)
	}
	if got := b.RetryAfterSeconds(); got != 9 {
		t.Fatalf("RetryAfterSeconds with depth 8 = %d, want 9", got)
	}

	// The latency estimate is an EWMA (α = 1/5), not last-observation-wins:
	// 3s then 1s folds to 2.6s.
	b.observeLatency(time.Second)
	if w := b.estimatedWait(0); w != 2600*time.Millisecond {
		t.Fatalf("EWMA after 3s,1s = %v, want 2.6s", w)
	}

	// Sub-second estimates still floor at 1.
	b2 := &Batcher{maxBatch: 4, queue: make(chan *request, 4)}
	b2.observeLatency(5 * time.Millisecond)
	if got := b2.RetryAfterSeconds(); got != 1 {
		t.Fatalf("sub-second RetryAfterSeconds = %d, want floor 1", got)
	}
}

// TestExecFailureClassification: only genuine execution failures may count
// toward a circuit breaker — client aborts and shutdown must not trip it.
func TestExecFailureClassification(t *testing.T) {
	if execFailure(nil) != nil {
		t.Fatal("nil classified as failure")
	}
	for _, err := range []error{errClientGone, errShutdown, errDeadlineWrapped} {
		if execFailure(err) != nil {
			t.Fatalf("%v classified as execution failure", err)
		}
	}
	if execFailure(errExec) == nil {
		t.Fatal("execution error not classified as failure")
	}
}

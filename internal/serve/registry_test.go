// Black-box tests for the model repository subsystem: bundles are written to
// a real directory, loaded through DirSource, and driven through the
// Registry and the repository HTTP endpoints the way an operator would. The
// concurrency tests are written for -race: lifecycle transitions (load,
// unload, LRU eviction) overlap with live inference traffic.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/tensor"
)

var repoOpts = core.Options{Level: core.OptTransformElim, Threads: 1, Backend: machine.BackendSerial}

// writeBundles compiles the named tiny models, serializes each to
// dir/<name>.neob, and returns each model's per-session arena bytes (the
// unit the registry budget is denominated in).
func writeBundles(t testing.TB, dir string, names ...string) map[string]int {
	t.Helper()
	arenas := make(map[string]int, len(names))
	for _, name := range names {
		g, err := models.BuildAny(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.Compile(g, machine.IntelSkylakeC5(), repoOpts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Create(filepath.Join(dir, name+serve.BundleExt))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SaveBundle(f); err != nil {
			t.Fatalf("%s: save bundle: %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		arenas[name] = m.PlanStats().ArenaBytes
		m.Close()
	}
	return arenas
}

// refOutput computes the engine's own output for one model and input — the
// bit-identical reference every served response is held to.
func refOutput(t testing.TB, name string, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	g, err := models.BuildAny(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Compile(g, machine.IntelSkylakeC5(), repoOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	outs, err := m.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

func newRepoRegistry(t testing.TB, dir string, cfg serve.RegistryConfig) *serve.Registry {
	t.Helper()
	reg, err := serve.NewRegistry(&serve.DirSource{Dir: dir, Resolve: models.ResolveGraph}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

func indexState(idx []serve.ModelStatus, name string) string {
	for _, m := range idx {
		if m.Name == name {
			return m.State
		}
	}
	return "<absent>"
}

// TestRegistryLifecycleAndEviction is the acceptance-criteria walk: three
// bundles, a budget that fits only two, and the third load must evict the
// least-recently-used idle model — state transitions visible in the index
// throughout.
func TestRegistryLifecycleAndEviction(t *testing.T) {
	dir := t.TempDir()
	arenas := writeBundles(t, dir, "tiny-cnn", "tiny-resnet", "tiny-vgg")
	total := arenas["tiny-cnn"] + arenas["tiny-resnet"] + arenas["tiny-vgg"]
	over := map[string]serve.Config{}
	for name := range arenas {
		over[name] = serve.Config{PoolSize: 1, MaxLatency: serve.NoLatency}
	}
	// One session each; all three at once is exactly one byte over budget.
	reg := newRepoRegistry(t, dir, serve.RegistryConfig{
		ArenaBudget: total - 1,
		Overrides:   over,
		LoadOptions: core.Options{Threads: 1, Backend: machine.BackendSerial},
	})

	for _, m := range reg.Index() {
		if m.State != string(serve.StateAvailable) {
			t.Fatalf("%s starts %q, want available", m.Name, m.State)
		}
	}
	if err := reg.Load("no-such-model"); !errors.Is(err, serve.ErrModelNotFound) {
		t.Fatalf("loading unknown model: %v, want ErrModelNotFound", err)
	}
	if err := reg.Load("tiny-cnn"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("tiny-cnn"); err != nil {
		t.Fatalf("loading a ready model must be a no-op, got %v", err)
	}
	if err := reg.Load("tiny-resnet"); err != nil {
		t.Fatal(err)
	}

	// Touch tiny-cnn so tiny-resnet is the least recently used.
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(42, 1)
	want := refOutput(t, "tiny-cnn", in)
	outs, err := reg.Infer(context.Background(), "tiny-cnn", in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if outs[0].Data[i] != want.Data[i] {
			t.Fatalf("repository output diverges from engine at %d", i)
		}
	}

	if err := reg.Load("tiny-vgg"); err != nil {
		t.Fatalf("third load should evict the LRU idle model, got %v", err)
	}
	idx := reg.Index()
	if got := indexState(idx, "tiny-resnet"); got != string(serve.StateUnloaded) {
		t.Fatalf("tiny-resnet after eviction: %q, want unloaded (index: %+v)", got, idx)
	}
	if got := indexState(idx, "tiny-cnn"); got != string(serve.StateReady) {
		t.Fatalf("recently used tiny-cnn was evicted instead of the LRU model (index: %+v)", idx)
	}
	if got := indexState(idx, "tiny-vgg"); got != string(serve.StateReady) {
		t.Fatalf("tiny-vgg: %q, want ready", got)
	}
	if reg.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", reg.Evictions())
	}

	// Known-but-unloaded vs unknown: different typed errors.
	if _, err := reg.Infer(context.Background(), "tiny-resnet", in); !errors.Is(err, serve.ErrModelNotReady) {
		t.Fatalf("inferring on evicted model: %v, want ErrModelNotReady", err)
	}
	if _, err := reg.Infer(context.Background(), "nope", in); !errors.Is(err, serve.ErrModelNotFound) {
		t.Fatalf("inferring on unknown model: %v, want ErrModelNotFound", err)
	}

	// The evicted model reloads on demand (evicting someone else in turn).
	if err := reg.Load("tiny-resnet"); err != nil {
		t.Fatalf("reloading evicted model: %v", err)
	}
	if reg.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", reg.Evictions())
	}

	// Unload is idempotent for models that are already down.
	if err := reg.Unload("tiny-resnet"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unload("tiny-resnet"); err != nil {
		t.Fatalf("double unload: %v, want nil", err)
	}
	if err := reg.Unload("nope"); !errors.Is(err, serve.ErrModelNotFound) {
		t.Fatalf("unloading unknown model: %v, want ErrModelNotFound", err)
	}
}

// TestEvictionSkipsBusyModel: a model with a request in flight must never be
// torn down by the budget, even when it is the only eviction candidate — the
// load fails with ErrArenaBudget instead, and the in-flight request
// completes on its intact session.
func TestEvictionSkipsBusyModel(t *testing.T) {
	dir := t.TempDir()
	arenas := writeBundles(t, dir, "tiny-cnn", "tiny-resnet")
	reg := newRepoRegistry(t, dir, serve.RegistryConfig{
		// Either model fits alone; both together never do.
		ArenaBudget: arenas["tiny-cnn"] + arenas["tiny-resnet"] - 1,
		Overrides: map[string]serve.Config{
			// A long straggler window holds tiny-cnn requests (and the
			// model's in-flight count) open until a second request arrives
			// or the window lapses.
			"tiny-cnn":    {PoolSize: 1, MaxBatch: 2, MaxLatency: 2 * time.Second},
			"tiny-resnet": {PoolSize: 1, MaxLatency: serve.NoLatency},
		},
		LoadOptions: core.Options{Threads: 1, Backend: machine.BackendSerial},
	})
	if err := reg.Load("tiny-cnn"); err != nil {
		t.Fatal(err)
	}

	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(7, 1)
	want := refOutput(t, "tiny-cnn", in)
	type result struct {
		outs []*tensor.Tensor
		err  error
	}
	done := make(chan result, 1)
	go func() {
		outs, err := reg.Infer(context.Background(), "tiny-cnn", in)
		done <- result{outs, err}
	}()

	// Wait until the request is demonstrably in flight (sitting in the
	// coalescing window), then try to load the second model.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inflight := 0
		for _, m := range reg.Index() {
			if m.Name == "tiny-cnn" {
				inflight = m.Inflight
			}
		}
		if inflight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never entered the batcher")
		}
		time.Sleep(time.Millisecond)
	}
	if err := reg.Load("tiny-resnet"); !errors.Is(err, serve.ErrArenaBudget) {
		t.Fatalf("loading over budget with only a busy candidate: %v, want ErrArenaBudget", err)
	}
	if got := indexState(reg.Index(), "tiny-cnn"); got != string(serve.StateReady) {
		t.Fatalf("busy model state %q after refused eviction, want ready", got)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed: %v", r.err)
	}
	for i := range want.Data {
		if r.outs[0].Data[i] != want.Data[i] {
			t.Fatalf("in-flight request output diverges at %d", i)
		}
	}

	// Idle now: the same load succeeds by evicting it.
	if err := reg.Load("tiny-resnet"); err != nil {
		t.Fatalf("load after the model went idle: %v", err)
	}
	if got := indexState(reg.Index(), "tiny-cnn"); got != string(serve.StateUnloaded) {
		t.Fatalf("idle model state %q, want unloaded", got)
	}
}

// TestRegistryConcurrentChaos runs lifecycle churn (loads, unloads, budget
// evictions) against sustained inference traffic on three models under
// -race. Every successful response must be bit-identical to the engine;
// every failure must be one of the typed lifecycle errors.
func TestRegistryConcurrentChaos(t *testing.T) {
	dir := t.TempDir()
	names := []string{"tiny-cnn", "tiny-resnet", "tiny-vgg"}
	arenas := writeBundles(t, dir, names...)
	total := 0
	over := map[string]serve.Config{}
	for name, a := range arenas {
		total += a
		over[name] = serve.Config{PoolSize: 1, MaxLatency: serve.NoLatency, QueueDepth: 64}
	}
	reg := newRepoRegistry(t, dir, serve.RegistryConfig{
		ArenaBudget: total - 1, // any two fit, all three never do
		Overrides:   over,
		LoadOptions: core.Options{Threads: 1, Backend: machine.BackendSerial},
	})

	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(123, 1)
	wants := map[string]*tensor.Tensor{}
	for _, name := range names {
		wants[name] = refOutput(t, name, in)
	}

	const workers = 6
	const churnCycles = 15
	var wg, trafficWG sync.WaitGroup
	errs := make(chan error, workers+len(names))
	churnDone := make(chan struct{})

	// Churners: each cycles one model through load/unload. Budget and
	// transition rejections are part of normal operation under churn.
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < churnCycles; i++ {
				if err := reg.Load(name); err != nil &&
					!errors.Is(err, serve.ErrArenaBudget) && !errors.Is(err, serve.ErrModelBusy) {
					errs <- fmt.Errorf("load %s: %w", name, err)
					return
				}
				if i%3 == 2 {
					if err := reg.Unload(name); err != nil && !errors.Is(err, serve.ErrModelBusy) {
						errs <- fmt.Errorf("unload %s: %w", name, err)
						return
					}
				}
			}
		}(name)
	}
	// Traffic: workers hammer all three models for as long as the churn
	// lasts; lifecycle rejections are expected, wrong answers and untyped
	// errors are not.
	var servedMu sync.Mutex
	served := 0
	for w := 0; w < workers; w++ {
		trafficWG.Add(1)
		go func(w int) {
			defer trafficWG.Done()
			for i := 0; ; i++ {
				select {
				case <-churnDone:
					return
				default:
				}
				name := names[(w+i)%len(names)]
				outs, err := reg.Infer(context.Background(), name, in)
				if err != nil {
					if errors.Is(err, serve.ErrModelNotReady) || errors.Is(err, serve.ErrClosed) ||
						errors.Is(err, serve.ErrQueueFull) {
						continue
					}
					errs <- fmt.Errorf("infer %s: %w", name, err)
					return
				}
				want := wants[name]
				for j := range want.Data {
					if outs[0].Data[j] != want.Data[j] {
						errs <- fmt.Errorf("infer %s: output diverges at %d mid-churn", name, j)
						return
					}
				}
				servedMu.Lock()
				served++
				servedMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(churnDone)
	trafficWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-churn the registry must still function deterministically: every
	// model loads (evicting as needed) and serves the bit-identical answer.
	for _, name := range names {
		if err := reg.Load(name); err != nil {
			t.Fatalf("post-churn load %s: %v", name, err)
		}
		outs, err := reg.Infer(context.Background(), name, in)
		if err != nil {
			t.Fatalf("post-churn infer %s: %v", name, err)
		}
		want := wants[name]
		for j := range want.Data {
			if outs[0].Data[j] != want.Data[j] {
				t.Fatalf("post-churn infer %s: output diverges at %d", name, j)
			}
		}
	}
	st := reg.Stats()
	if st.ArenaReservedBytes > total-1 {
		t.Fatalf("reserved %d exceeds budget %d after churn", st.ArenaReservedBytes, total-1)
	}
	t.Logf("served=%d evictions=%d reserved=%d/%d", served, reg.Evictions(), st.ArenaReservedBytes, total-1)
}

// TestRepositoryServerHTTP drives the repository endpoints end-to-end: index,
// load, cross-model inference bit-identical to a fresh single-model server,
// per-model stats, unload, and the 404-unknown vs 503-unloaded distinction.
func TestRepositoryServerHTTP(t *testing.T) {
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn", "tiny-resnet")
	reg := newRepoRegistry(t, dir, serve.RegistryConfig{
		Defaults:    serve.Config{PoolSize: 2, MaxLatency: serve.NoLatency},
		LoadOptions: core.Options{Threads: 1, Backend: machine.BackendSerial},
	})
	srv, err := serve.NewRepository(reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	client := ts.Client()

	getIndex := func() []serve.ModelStatus {
		t.Helper()
		resp, err := client.Get(ts.URL + "/v2/repository/index")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("index: %d", resp.StatusCode)
		}
		var idx []serve.ModelStatus
		if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
			t.Fatal(err)
		}
		return idx
	}
	post := func(path string) int {
		t.Helper()
		resp, err := client.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	idx := getIndex()
	if len(idx) != 2 || idx[0].State != string(serve.StateAvailable) {
		t.Fatalf("boot index: %+v", idx)
	}
	// Unloaded-but-known models answer 503 on infer/ready; unknown 404.
	if code := post("/v2/models/tiny-cnn/infer"); code != http.StatusServiceUnavailable {
		t.Fatalf("infer before load: %d, want 503", code)
	}
	if code := post("/v2/models/missing/infer"); code != http.StatusNotFound {
		t.Fatalf("infer unknown: %d, want 404", code)
	}
	if code := post("/v2/repository/models/missing/load"); code != http.StatusNotFound {
		t.Fatalf("load unknown: %d, want 404", code)
	}

	for _, name := range []string{"tiny-cnn", "tiny-resnet"} {
		if code := post("/v2/repository/models/" + name + "/load"); code != http.StatusOK {
			t.Fatalf("load %s: %d", name, code)
		}
	}
	idx = getIndex()
	for _, m := range idx {
		if !m.Ready {
			t.Fatalf("after load, %s is %q", m.Name, m.State)
		}
	}

	// Cross-model inference: each routed response carries the routed model's
	// name and is bit-identical to a fresh single-model server of the same
	// model.
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(77, 1)
	body, err := json.Marshal(serve.InferRequest{Inputs: []serve.InferTensor{{
		Name: "input", Shape: in.Shape, Datatype: "FP32", Data: in.Data,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tiny-cnn", "tiny-resnet"} {
		g, err := models.BuildAny(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := core.Compile(g, machine.IntelSkylakeC5(), repoOpts)
		if err != nil {
			t.Fatal(err)
		}
		single, err := serve.New(mod, "", serve.Config{PoolSize: 1, MaxLatency: serve.NoLatency})
		if err != nil {
			t.Fatal(err)
		}
		sts := httptest.NewServer(single.Handler())

		decode := func(url string) serve.InferResponse {
			t.Helper()
			resp, err := client.Post(url+"/v2/models/"+name+"/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				raw, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s infer: %d: %s", name, resp.StatusCode, raw)
			}
			var ir serve.InferResponse
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				t.Fatal(err)
			}
			return ir
		}
		fromRepo := decode(ts.URL)
		fromSingle := decode(sts.URL)
		sts.Close()
		single.Close()
		mod.Close()

		if fromRepo.ModelName != name {
			t.Fatalf("repository response model_name %q, want %q (must reflect the routed model)", fromRepo.ModelName, name)
		}
		if len(fromRepo.Outputs) != 1 || len(fromRepo.Outputs[0].Data) != len(fromSingle.Outputs[0].Data) {
			t.Fatalf("%s: output geometry mismatch", name)
		}
		for i := range fromSingle.Outputs[0].Data {
			if fromRepo.Outputs[0].Data[i] != fromSingle.Outputs[0].Data[i] {
				t.Fatalf("%s: repository and single-model servers diverge at %d", name, i)
			}
		}
	}

	// Per-model stats carry real counters for loaded models and 404 for
	// unknown ones.
	resp, err := client.Get(ts.URL + "/v2/models/tiny-cnn/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Batch.Items == 0 || st.Pool.ArenaBytesPerSession == 0 {
		t.Fatalf("per-model stats look empty: %+v", st)
	}
	resp, err = client.Get(ts.URL + "/v2/models/missing/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model stats: %d, want 404", resp.StatusCode)
	}

	// Aggregate stats in repository mode list every model.
	resp, err = client.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var rst serve.RegistryStats
	if err := json.NewDecoder(resp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rst.Models) != 2 {
		t.Fatalf("aggregate stats cover %d models, want 2", len(rst.Models))
	}

	// Unload flips infer/ready to 503 while unknown names stay 404.
	if code := post("/v2/repository/models/tiny-resnet/unload"); code != http.StatusOK {
		t.Fatalf("unload: %d", code)
	}
	if got := indexState(getIndex(), "tiny-resnet"); got != string(serve.StateUnloaded) {
		t.Fatalf("tiny-resnet after unload: %q", got)
	}
	resp, err = client.Get(ts.URL + "/v2/models/tiny-resnet/ready")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unloaded model ready: %d, want 503", resp.StatusCode)
	}
}

// TestSidecarConfig: a <name>.config.json next to the bundle tunes that
// model's pool and batcher without touching the others.
func TestSidecarConfig(t *testing.T) {
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn", "tiny-resnet")
	sidecar := `{"pool_size": 1, "max_batch": 3, "max_latency_ms": -1, "queue_depth": 5}`
	if err := os.WriteFile(filepath.Join(dir, "tiny-cnn.config.json"), []byte(sidecar), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := newRepoRegistry(t, dir, serve.RegistryConfig{
		Defaults:    serve.Config{PoolSize: 4, MaxLatency: serve.NoLatency},
		LoadOptions: core.Options{Threads: 1, Backend: machine.BackendSerial},
	})
	for _, name := range []string{"tiny-cnn", "tiny-resnet"} {
		if err := reg.Load(name); err != nil {
			t.Fatal(err)
		}
	}
	cnn, err := reg.ModelStatsFor("tiny-cnn")
	if err != nil {
		t.Fatal(err)
	}
	if cnn.Pool.MaxSize != 1 {
		t.Fatalf("sidecar pool_size ignored: max %d, want 1", cnn.Pool.MaxSize)
	}
	resnet, err := reg.ModelStatsFor("tiny-resnet")
	if err != nil {
		t.Fatal(err)
	}
	if resnet.Pool.MaxSize != 4 {
		t.Fatalf("default pool size not applied: max %d, want 4", resnet.Pool.MaxSize)
	}
}

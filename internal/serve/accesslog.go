package serve

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// accessLogger writes one JSON line per inference request — the structured
// access log. The encoder is hand-rolled over a reused buffer under one
// mutex, so a log line costs the hot path a lock and a Write, not a
// json.Marshal's worth of allocations.
//
// Line schema (field order is fixed):
//
//	{"time":"2026-01-02T15:04:05.999999999Z","model":"tiny-cnn","code":200,
//	 "latency_ms":1.234,"batch_id":7,"deadline_ms":30000,"id":"req-1"}
//
// batch_id is 0 for requests that never reached a dispatched batch (4xx,
// 429, admission-time 504); deadline_ms is the request's resolved budget (0
// when budgets are disabled); id appears only when the client sent one.
type accessLogger struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	now func() time.Time // injectable clock for tests
}

func newAccessLogger(w io.Writer) *accessLogger {
	return &accessLogger{w: w, now: time.Now}
}

func (l *accessLogger) log(model string, code int, latency time.Duration, batchID uint64, deadline time.Duration, id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"time":"`...)
	b = l.now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","model":`...)
	b = appendJSONString(b, model)
	b = append(b, `,"code":`...)
	b = strconv.AppendInt(b, int64(code), 10)
	b = append(b, `,"latency_ms":`...)
	b = strconv.AppendFloat(b, float64(latency)/float64(time.Millisecond), 'f', 3, 64)
	b = append(b, `,"batch_id":`...)
	b = strconv.AppendUint(b, batchID, 10)
	b = append(b, `,"deadline_ms":`...)
	b = strconv.AppendInt(b, deadline.Milliseconds(), 10)
	if id != "" {
		b = append(b, `,"id":`...)
		b = appendJSONString(b, id)
	}
	b = append(b, '}', '\n')
	l.buf = b
	l.w.Write(b)
}

// appendJSONString appends s as a JSON string literal: quotes, backslashes
// and control characters escaped, everything else (valid UTF-8 included)
// verbatim.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

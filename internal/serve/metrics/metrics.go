// Package metrics is the serving tier's observability registry: a
// stdlib-only, lock-cheap collection of counters, histograms and gauges that
// the session pool, micro-batcher, model registry, circuit breaker and
// health machine all feed, exposed in the Prometheus text format on
// /metrics.
//
// The hot path is allocation-free by construction: every per-model metric
// set is resolved once (at model load, or one RLock'd map lookup per HTTP
// request) into a *Model whose counters are plain atomics and whose
// histograms are fixed bucket arrays — an Observe is a handful of atomic
// adds, never a map insert, never an interface boxing, never a []byte. All
// the formatting work happens at scrape time.
//
// Gauges are not stored at all: each model registers one callback snapshot
// function (queue depth, pool occupancy, arena bytes) that the exposition
// path invokes per scrape, so live values cost the hot path nothing.
//
// Every Model method is nil-receiver-safe, so instrumented components can
// run unmetered (tests, embedded uses) without scattering nil checks.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DurationBuckets are the histogram bounds (seconds) shared by the request
// latency, queue wait and batch latency families: exponential-ish from 100µs
// to 10s, matching the µs-to-ms regime of CPU CNN inference with headroom
// for saturated queues.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// SizeBuckets are the batch-size histogram bounds (requests per dispatched
// micro-batch).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// trackedCodes are the HTTP statuses the serving stack deliberately answers
// (see docs/SERVING.md's status matrix); anything else lands in the
// codeOther bucket so an unexpected status is still visible.
var trackedCodes = [...]int{200, 400, 404, 408, 409, 413, 429, 500, 503, 504, 507}

const codeOther = len(trackedCodes) // index of the catch-all bucket

func codeIndex(status int) int {
	for i, c := range trackedCodes {
		if c == status {
			return i
		}
	}
	return codeOther
}

// Breaker transition targets, the `state` label of
// neocpu_breaker_transitions_total.
const (
	BreakerOpen     = "open"
	BreakerHalfOpen = "half_open"
	BreakerClosed   = "closed"
)

var breakerStates = [...]string{BreakerOpen, BreakerHalfOpen, BreakerClosed}

func breakerIndex(state string) int {
	for i, s := range breakerStates {
		if s == state {
			return i
		}
	}
	return 0
}

// healthStates is the fixed label domain of neocpu_health_state.
var healthStates = []string{"ready", "degraded", "draining", "closed"}

// Histogram is a fixed-bucket, atomically updated histogram. Observe is
// wait-free apart from the CAS loop folding the sum (contended only under
// simultaneous observes, and even then a couple of retries).
type Histogram struct {
	bounds  []float64       // upper bounds, ascending
	counts  []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, +Inf when past the end
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a scrape-time copy of a histogram's state. Buckets
// are cumulative (Prometheus `le` semantics): Buckets[i] counts observations
// <= Bounds[i], and Buckets[len(Bounds)] is the +Inf bucket (== Count).
type HistogramSnapshot struct {
	Bounds  []float64
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// Snapshot copies the histogram's current state with cumulative buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Count = h.count.Load()
	return s
}

// Gauges is one model's scrape-time gauge snapshot, produced by the
// callback registered with Model.SetGaugeFunc.
type Gauges struct {
	// QueueDepth is the number of requests sitting in the admission queue.
	QueueDepth int
	// PoolSessions / PoolInUse / PoolMax describe the session pool: created
	// sessions, sessions currently checked out, and the bound.
	PoolSessions int
	PoolInUse    int
	PoolMax      int
	// ArenaBytes is the total preallocated session-arena footprint.
	ArenaBytes int
}

// Model is one served model's metric set. All counter and histogram methods
// are safe for concurrent use and allocation-free; all are no-ops on a nil
// receiver.
type Model struct {
	name string

	requests    [len(trackedCodes) + 1]atomic.Uint64
	batches     atomic.Uint64
	sharded     atomic.Uint64
	shards      atomic.Uint64
	discards    atomic.Uint64
	panics      atomic.Uint64
	transitions [len(breakerStates)]atomic.Uint64

	latency      *Histogram
	queueWait    *Histogram
	batchLatency *Histogram
	batchSize    *Histogram

	gauges atomic.Value // func() Gauges; a typed nil func means "cleared"
}

func newModel(name string) *Model {
	return &Model{
		name:         name,
		latency:      newHistogram(DurationBuckets),
		queueWait:    newHistogram(DurationBuckets),
		batchLatency: newHistogram(DurationBuckets),
		batchSize:    newHistogram(SizeBuckets),
	}
}

// ObserveRequest records one inference request's terminal HTTP status and
// whole-handler latency (decode, queue, execute, encode).
func (m *Model) ObserveRequest(code int, d time.Duration) {
	if m == nil {
		return
	}
	m.requests[codeIndex(code)].Add(1)
	m.latency.Observe(d.Seconds())
}

// ObserveQueueWait records how long one admitted request sat queued before
// its batch dispatched.
func (m *Model) ObserveQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.queueWait.Observe(d.Seconds())
}

// ObserveBatch records one dispatched micro-batch: its size (live requests),
// how many session lanes ran it (>1 means it was sharded), and its execution
// latency.
func (m *Model) ObserveBatch(size, lanes int, d time.Duration) {
	if m == nil {
		return
	}
	m.batches.Add(1)
	m.batchSize.Observe(float64(size))
	m.batchLatency.Observe(d.Seconds())
	if lanes > 1 {
		m.sharded.Add(1)
		m.shards.Add(uint64(lanes))
	}
}

// IncDiscard counts one session quarantined out of the pool.
func (m *Model) IncDiscard() {
	if m == nil {
		return
	}
	m.discards.Add(1)
}

// IncPanic counts one batch (or shard) that failed with a recovered
// execution panic.
func (m *Model) IncPanic() {
	if m == nil {
		return
	}
	m.panics.Add(1)
}

// BreakerTransition counts one circuit-breaker state change, labeled by the
// state entered (BreakerOpen, BreakerHalfOpen, BreakerClosed).
func (m *Model) BreakerTransition(state string) {
	if m == nil {
		return
	}
	m.transitions[breakerIndex(state)].Add(1)
}

// SetGaugeFunc installs (or, with nil, clears) the scrape-time gauge
// snapshot callback. The registry installs one per model at load and clears
// it at teardown so a scrape never touches a torn-down pool; a cleared model
// drops out of the gauge families entirely (its counters remain).
func (m *Model) SetGaugeFunc(fn func() Gauges) {
	if m == nil {
		return
	}
	// A nil fn is stored as a typed nil func (atomic.Value rejects only the
	// untyped nil); the scrape path treats it the same as never-set.
	m.gauges.Store(fn)
}

// RequestLatency exposes the request-latency histogram (tests and adaptive
// policies; the hot path uses ObserveRequest).
func (m *Model) RequestLatency() *Histogram {
	if m == nil {
		return nil
	}
	return m.latency
}

// Registry is the scrape root: the per-model metric sets plus the few
// registry-level series (evictions, unknown-model requests, health state).
// One Registry belongs to one serve.Registry / serve.Server.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model

	evictions atomic.Uint64
	unknown   atomic.Uint64
	health    atomic.Value // func() string
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]*Model{}}
}

// Model returns the named model's metric set, creating it on first use.
// Metric sets are never removed: counters survive unload/reload cycles, the
// way Prometheus counters are supposed to.
func (r *Registry) Model(name string) *Model {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	m := r.models[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.models[name]; m == nil {
		m = newModel(name)
		r.models[name] = m
	}
	return m
}

// Lookup returns the named model's metric set or nil — it never creates one,
// so arbitrary client-supplied names (404 traffic) cannot mint label series.
func (r *Registry) Lookup(name string) *Model {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.models[name]
}

// IncEviction counts one arena-budget LRU eviction.
func (r *Registry) IncEviction() {
	if r == nil {
		return
	}
	r.evictions.Add(1)
}

// IncUnknown counts one inference request addressed to a model name the
// repository has never registered. Deliberately unlabeled: labeling it with
// the requested name would let clients mint unbounded label series.
func (r *Registry) IncUnknown() {
	if r == nil {
		return
	}
	r.unknown.Add(1)
}

// SetHealthFunc installs the scrape-time health callback; it must return one
// of "ready", "degraded", "draining", "closed".
func (r *Registry) SetHealthFunc(fn func() string) {
	if r == nil || fn == nil {
		return
	}
	r.health.Store(fn)
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// snapshotModels returns the metric sets sorted by model name, for
// deterministic exposition order.
func (r *Registry) snapshotModels() []*Model {
	r.mu.RLock()
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.mu.RUnlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })
	return models
}

// WritePrometheus writes the whole registry in the Prometheus text
// exposition format (version 0.0.4). Families appear in a fixed order;
// series within a family are sorted by model name. Zero-valued code and
// breaker-transition series are elided (absent means zero); scalar per-model
// counters and histograms are always emitted so the families are visibly
// present the moment a model registers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	b := &expoWriter{w: w}
	models := r.snapshotModels()

	b.family("neocpu_requests_total", "counter",
		"Inference requests answered, by model and HTTP status code.")
	for _, m := range models {
		for i := range m.requests {
			v := m.requests[i].Load()
			if v == 0 {
				continue
			}
			code := "other"
			if i < len(trackedCodes) {
				code = strconv.Itoa(trackedCodes[i])
			}
			b.sample("neocpu_requests_total", v, "model", m.name, "code", code)
		}
	}

	b.family("neocpu_unknown_model_requests_total", "counter",
		"Inference requests addressed to model names the repository has never registered.")
	b.sample("neocpu_unknown_model_requests_total", r.unknown.Load())

	b.family("neocpu_batches_total", "counter", "Micro-batches dispatched.")
	for _, m := range models {
		b.sample("neocpu_batches_total", m.batches.Load(), "model", m.name)
	}
	b.family("neocpu_sharded_batches_total", "counter",
		"Dispatched batches split across more than one pooled session.")
	for _, m := range models {
		b.sample("neocpu_sharded_batches_total", m.sharded.Load(), "model", m.name)
	}
	b.family("neocpu_batch_shards_total", "counter",
		"Total session lanes used by sharded batches.")
	for _, m := range models {
		b.sample("neocpu_batch_shards_total", m.shards.Load(), "model", m.name)
	}
	b.family("neocpu_session_discards_total", "counter",
		"Sessions quarantined out of the pool after an execution panic.")
	for _, m := range models {
		b.sample("neocpu_session_discards_total", m.discards.Load(), "model", m.name)
	}
	b.family("neocpu_exec_panics_total", "counter",
		"Batches or shards that failed with a recovered execution panic.")
	for _, m := range models {
		b.sample("neocpu_exec_panics_total", m.panics.Load(), "model", m.name)
	}
	b.family("neocpu_breaker_transitions_total", "counter",
		"Circuit breaker state transitions, by state entered.")
	for _, m := range models {
		for i, state := range breakerStates {
			if v := m.transitions[i].Load(); v != 0 {
				b.sample("neocpu_breaker_transitions_total", v, "model", m.name, "state", state)
			}
		}
	}
	b.family("neocpu_model_evictions_total", "counter",
		"Models evicted by the arena-budget LRU.")
	b.sample("neocpu_model_evictions_total", r.evictions.Load())

	b.family("neocpu_request_duration_seconds", "histogram",
		"Whole-handler inference request latency: decode, queue, execute, encode.")
	for _, m := range models {
		b.histogram("neocpu_request_duration_seconds", m.name, m.latency.Snapshot())
	}
	b.family("neocpu_queue_wait_seconds", "histogram",
		"Time admitted requests sat queued before their batch dispatched.")
	for _, m := range models {
		b.histogram("neocpu_queue_wait_seconds", m.name, m.queueWait.Snapshot())
	}
	b.family("neocpu_batch_duration_seconds", "histogram",
		"Micro-batch execution latency.")
	for _, m := range models {
		b.histogram("neocpu_batch_duration_seconds", m.name, m.batchLatency.Snapshot())
	}
	b.family("neocpu_batch_size", "histogram",
		"Live requests per dispatched micro-batch.")
	for _, m := range models {
		b.histogram("neocpu_batch_size", m.name, m.batchSize.Snapshot())
	}

	// Gauges: only models with a live callback (i.e. currently loaded)
	// report; unloaded models have no queue or pool to describe.
	type gaugeRow struct {
		name string
		g    Gauges
	}
	var rows []gaugeRow
	for _, m := range models {
		fn, _ := m.gauges.Load().(func() Gauges)
		if fn == nil {
			continue
		}
		rows = append(rows, gaugeRow{m.name, fn()})
	}
	b.family("neocpu_queue_depth", "gauge", "Requests sitting in the admission queue.")
	for _, r := range rows {
		b.sample("neocpu_queue_depth", uint64(r.g.QueueDepth), "model", r.name)
	}
	b.family("neocpu_pool_sessions", "gauge", "Sessions created in the pool.")
	for _, r := range rows {
		b.sample("neocpu_pool_sessions", uint64(r.g.PoolSessions), "model", r.name)
	}
	b.family("neocpu_pool_in_use", "gauge", "Pooled sessions currently checked out.")
	for _, r := range rows {
		b.sample("neocpu_pool_in_use", uint64(r.g.PoolInUse), "model", r.name)
	}
	b.family("neocpu_pool_max_sessions", "gauge", "Session pool bound.")
	for _, r := range rows {
		b.sample("neocpu_pool_max_sessions", uint64(r.g.PoolMax), "model", r.name)
	}
	b.family("neocpu_model_arena_bytes", "gauge",
		"Total preallocated session-arena bytes for the model's pool.")
	for _, r := range rows {
		b.sample("neocpu_model_arena_bytes", uint64(r.g.ArenaBytes), "model", r.name)
	}

	b.family("neocpu_health_state", "gauge",
		"Server health state machine; exactly one state is 1.")
	current := ""
	if fn, _ := r.health.Load().(func() string); fn != nil {
		current = fn()
	}
	for _, state := range healthStates {
		v := uint64(0)
		if state == current {
			v = 1
		}
		b.sample("neocpu_health_state", v, "state", state)
	}
	return b.err
}

// expoWriter accumulates exposition lines, amortizing the buffer and
// capturing the first write error.
type expoWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func (b *expoWriter) flush() {
	if b.err == nil && len(b.buf) > 0 {
		_, b.err = b.w.Write(b.buf)
	}
	b.buf = b.buf[:0]
}

func (b *expoWriter) family(name, typ, help string) {
	b.buf = append(b.buf, "# HELP "...)
	b.buf = append(b.buf, name...)
	b.buf = append(b.buf, ' ')
	b.buf = append(b.buf, help...)
	b.buf = append(b.buf, "\n# TYPE "...)
	b.buf = append(b.buf, name...)
	b.buf = append(b.buf, ' ')
	b.buf = append(b.buf, typ...)
	b.buf = append(b.buf, '\n')
	b.flush()
}

// sample writes one `name{labels} value` line; labels are alternating
// key/value pairs, values escaped per the exposition format.
func (b *expoWriter) sample(name string, v uint64, labels ...string) {
	b.buf = appendSeries(b.buf, name, labels)
	b.buf = append(b.buf, ' ')
	b.buf = strconv.AppendUint(b.buf, v, 10)
	b.buf = append(b.buf, '\n')
	b.flush()
}

func (b *expoWriter) sampleFloat(name string, v float64, labels ...string) {
	b.buf = appendSeries(b.buf, name, labels)
	b.buf = append(b.buf, ' ')
	b.buf = appendFloat(b.buf, v)
	b.buf = append(b.buf, '\n')
	b.flush()
}

// histogram writes one histogram series set: cumulative _bucket lines with
// le bounds (always including +Inf), then _sum and _count.
func (b *expoWriter) histogram(name, model string, s HistogramSnapshot) {
	for i, cum := range s.Buckets {
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatBound(s.Bounds[i])
		}
		b.sample(name+"_bucket", cum, "model", model, "le", le)
	}
	b.sampleFloat(name+"_sum", s.Sum, "model", model)
	b.sample(name+"_count", s.Count, "model", model)
}

func appendSeries(buf []byte, name string, labels []string) []byte {
	buf = append(buf, name...)
	if len(labels) == 0 {
		return buf
	}
	buf = append(buf, '{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, labels[i]...)
		buf = append(buf, '=', '"')
		buf = appendEscapedLabel(buf, labels[i+1])
		buf = append(buf, '"')
	}
	return append(buf, '}')
}

// appendEscapedLabel escapes a label value per the exposition format:
// backslash, double quote and newline must be escaped; anything else passes
// through verbatim (values are UTF-8). This is what keeps hostile model
// names (from repository file names) from corrupting the format — see
// FuzzMetricsLabels.
func appendEscapedLabel(buf []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

func appendFloat(buf []byte, v float64) []byte {
	if math.IsInf(v, +1) {
		return append(buf, "+Inf"...)
	}
	if math.IsInf(v, -1) {
		return append(buf, "-Inf"...)
	}
	if math.IsNaN(v) {
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// formatBound renders a bucket bound the way Prometheus clients do: shortest
// round-trip decimal.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String implements fmt.Stringer for debugging convenience.
func (r *Registry) String() string {
	return fmt.Sprintf("metrics.Registry(%d models)", len(r.snapshotModels()))
}

package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 3, 9} { // 1 lands inclusively in le=1
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d", s.Count)
	}
	want := []uint64{2, 2, 3, 4}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (buckets %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Sum != 13.5 {
		t.Fatalf("sum %g, want 13.5", s.Sum)
	}
	var nilH *Histogram
	nilH.Observe(1) // nil-safe
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DurationBuckets)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001 * float64(g+1))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	if s.Buckets[len(s.Buckets)-1] != s.Count {
		t.Fatalf("+Inf bucket %d != count %d", s.Buckets[len(s.Buckets)-1], s.Count)
	}
	// Sum is CAS-folded: no observation may be lost.
	var wantSum float64
	for g := 0; g < goroutines; g++ {
		wantSum += per * 0.001 * float64(g+1)
	}
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum %g, want %g", s.Sum, wantSum)
	}
}

func TestNilModelIsSafe(t *testing.T) {
	var m *Model
	m.ObserveRequest(200, time.Millisecond)
	m.ObserveQueueWait(time.Millisecond)
	m.ObserveBatch(4, 2, time.Millisecond)
	m.IncDiscard()
	m.IncPanic()
	m.BreakerTransition(BreakerOpen)
	m.SetGaugeFunc(nil)
	if m.RequestLatency() != nil {
		t.Fatal("nil model returned a histogram")
	}
}

func TestLookupNeverCreates(t *testing.T) {
	r := NewRegistry()
	if got := r.Lookup("ghost"); got != nil {
		t.Fatal("Lookup minted a model")
	}
	m := r.Model("real")
	if m == nil {
		t.Fatal("Model returned nil")
	}
	if r.Lookup("real") != m {
		t.Fatal("Lookup found a different instance")
	}
	if r.Model("real") != m {
		t.Fatal("Model get-or-create returned a new instance")
	}
}

// exposition renders the registry the way /metrics would.
func exposition(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCodeBucketsAndOther(t *testing.T) {
	r := NewRegistry()
	m := r.Model("m")
	m.ObserveRequest(200, time.Millisecond)
	m.ObserveRequest(418, time.Millisecond) // untracked -> "other"
	m.ObserveRequest(999, time.Millisecond)
	out := exposition(t, r)
	for _, want := range []string{
		`neocpu_requests_total{model="m",code="200"} 1`,
		`neocpu_requests_total{model="m",code="other"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `code="400"`) {
		t.Fatal("zero code series not elided")
	}
}

func TestBreakerAndHealthExposition(t *testing.T) {
	r := NewRegistry()
	m := r.Model("m")
	m.BreakerTransition(BreakerOpen)
	m.BreakerTransition(BreakerHalfOpen)
	m.BreakerTransition(BreakerClosed)
	m.BreakerTransition(BreakerOpen)
	r.SetHealthFunc(func() string { return "degraded" })
	out := exposition(t, r)
	for _, want := range []string{
		`neocpu_breaker_transitions_total{model="m",state="open"} 2`,
		`neocpu_breaker_transitions_total{model="m",state="half_open"} 1`,
		`neocpu_breaker_transitions_total{model="m",state="closed"} 1`,
		`neocpu_health_state{state="degraded"} 1`,
		`neocpu_health_state{state="ready"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeLifecycle(t *testing.T) {
	r := NewRegistry()
	m := r.Model("m")
	m.SetGaugeFunc(func() Gauges {
		return Gauges{QueueDepth: 3, PoolSessions: 2, PoolInUse: 1, PoolMax: 4, ArenaBytes: 1024}
	})
	out := exposition(t, r)
	for _, want := range []string{
		`neocpu_queue_depth{model="m"} 3`,
		`neocpu_pool_sessions{model="m"} 2`,
		`neocpu_pool_in_use{model="m"} 1`,
		`neocpu_pool_max_sessions{model="m"} 4`,
		`neocpu_model_arena_bytes{model="m"} 1024`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Teardown clears the callback: the unloaded model stops exporting
	// gauges (counters survive for cross-load continuity).
	m.IncDiscard()
	m.SetGaugeFunc(nil)
	out = exposition(t, r)
	if strings.Contains(out, `neocpu_model_arena_bytes{model="m"}`) {
		t.Fatalf("unloaded model still exports arena gauge:\n%s", out)
	}
	if !strings.Contains(out, `neocpu_session_discards_total{model="m"} 1`) {
		t.Fatalf("counters did not survive gauge teardown:\n%s", out)
	}
}

func TestEvictionAndUnknownCounters(t *testing.T) {
	r := NewRegistry()
	r.IncEviction()
	r.IncEviction()
	r.IncUnknown()
	out := exposition(t, r)
	for _, want := range []string{
		"neocpu_model_evictions_total 2",
		"neocpu_unknown_model_requests_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// extractModelLabel pulls the unescaped model label out of the first
// requests_total sample, round-tripping the writer's escaping.
func extractModelLabel(t *testing.T, out string) (string, bool) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `neocpu_requests_total{model="`) {
			continue
		}
		rest := line[len(`neocpu_requests_total{model="`):]
		var val strings.Builder
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '"':
				return val.String(), true
			case '\\':
				i++
				if i >= len(rest) {
					t.Fatalf("dangling escape in %q", line)
				}
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("bad escape \\%c in %q", rest[i], line)
				}
			case '\n':
				t.Fatalf("raw newline inside label value: %q", line)
			default:
				val.WriteByte(rest[i])
			}
		}
		t.Fatalf("unterminated label value in %q", line)
	}
	return "", false
}

// FuzzMetricsLabels: arbitrary model names — quotes, backslashes, newlines,
// invalid UTF-8 — must round-trip through the exposition's label escaping
// without panicking, truncating a line, or corrupting the name.
func FuzzMetricsLabels(f *testing.F) {
	f.Add("tiny-cnn")
	f.Add(`we"ird`)
	f.Add(`back\slash`)
	f.Add("new\nline")
	f.Add("")
	f.Add("ünïcode-✓")
	f.Add("\x00\xff")
	f.Add(strings.Repeat("x", 300))
	f.Fuzz(func(t *testing.T, name string) {
		r := NewRegistry()
		r.Model(name).ObserveRequest(200, time.Millisecond)
		out := exposition(t, r)
		if out != "" && !strings.HasSuffix(out, "\n") {
			t.Fatal("exposition does not end in a newline")
		}
		got, ok := extractModelLabel(t, out)
		if !ok {
			t.Fatalf("requests_total series missing for %q:\n%s", name, out)
		}
		if got != name {
			t.Fatalf("label round-trip: wrote %q, read back %q", name, got)
		}
	})
}

// Chaos suite: fault-injection tests for the serving stack's robustness
// story. Every test here runs under -race in CI and drives the stack through
// its public surface (HTTP or Registry) while internal/faults arms failures
// at named sites. The invariants proved: a panicking model never crashes the
// process or perturbs a co-hosted healthy model's bit-identical outputs;
// circuit breakers walk degraded → half-open → ready; deadline budgets
// resolve promptly against saturated queues instead of hanging; shutdown
// during traffic drains cleanly; and transient repository faults retry while
// deterministic ones fail fast.
package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// chaosServer builds a repository-backed HTTP server over the given bundle
// directory with per-test serving defaults, loading every named model.
func chaosServer(t *testing.T, dir string, cfg serve.RegistryConfig, load ...string) (*serve.Registry, *httptest.Server) {
	t.Helper()
	reg := newRepoRegistry(t, dir, cfg)
	for _, name := range load {
		if err := reg.Load(name); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
	}
	srv, err := serve.NewRepository(reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return reg, ts
}

// chaosPost sends one infer and returns the status, decoded response (on
// 200) and the Retry-After header. Safe to call from test goroutines.
func chaosPost(ts *httptest.Server, model string, body []byte, hdr map[string]string) (int, *serve.InferResponse, string, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/models/"+model+"/infer", bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	retryAfter := resp.Header.Get("Retry-After")
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, retryAfter, nil
	}
	var ir serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		return resp.StatusCode, nil, retryAfter, err
	}
	return resp.StatusCode, &ir, retryAfter, nil
}

// exactOutput asserts a 200 response's first output is bit-identical to the
// reference tensor.
func exactOutput(t *testing.T, ir *serve.InferResponse, want *tensor.Tensor) {
	t.Helper()
	if len(ir.Outputs) != 1 || len(ir.Outputs[0].Data) != len(want.Data) {
		t.Fatalf("response shape mismatch: %d outputs", len(ir.Outputs))
	}
	for i, v := range ir.Outputs[0].Data {
		if v != want.Data[i] {
			t.Fatalf("output[%d] = %v, want %v (not bit-identical)", i, v, want.Data[i])
		}
	}
}

func chaosInput() *tensor.Tensor {
	in := tensor.New(tensor.NCHW(), 1, 3, 32, 32)
	in.FillRandom(7, 1)
	return in
}

// TestChaosPanicIsolationAcrossModels is the headline robustness invariant:
// while one co-hosted model's kernels panic on every batch, (1) the process
// never exits, (2) the panicking model's clients get clean 500s, (3) the
// healthy model's responses stay bit-identical to the engine's own output,
// and (4) healing the fault restores the panicked model (its quarantined
// sessions were discarded and replaced, its module untouched).
func TestChaosPanicIsolationAcrossModels(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn", "tiny-resnet")
	cfg := serve.RegistryConfig{Defaults: serve.Config{
		MaxBatch: 2, MaxLatency: serve.NoLatency, QueueDepth: 64,
		BreakerThreshold: -1, // isolate panic handling from circuit breaking
		DrainTimeout:     time.Second,
	}}
	reg, ts := chaosServer(t, dir, cfg, "tiny-cnn", "tiny-resnet")

	in := chaosInput()
	body := inferBody(t, in)
	wantHealthy := refOutput(t, "tiny-resnet", in)

	faults.Inject(faults.SiteSessionRun,
		faults.OnLabel("tiny-cnn", faults.Panic("chaos: injected kernel panic")))

	const clients = 6
	var wg sync.WaitGroup
	var faulted500 atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			status, ir, _, err := chaosPost(ts, "tiny-resnet", body, nil)
			if err != nil || status != http.StatusOK {
				t.Errorf("healthy model: status %d err %v", status, err)
				return
			}
			exactOutput(t, ir, wantHealthy)
		}()
		go func() {
			defer wg.Done()
			status, _, _, err := chaosPost(ts, "tiny-cnn", body, nil)
			if err != nil {
				t.Errorf("faulted model transport error: %v", err)
				return
			}
			if status != http.StatusInternalServerError {
				t.Errorf("faulted model: status %d, want 500", status)
				return
			}
			faulted500.Add(1)
		}()
	}
	wg.Wait()
	if faulted500.Load() != clients {
		t.Fatalf("faulted model answered 500 for %d/%d requests", faulted500.Load(), clients)
	}

	// Each panicked batch quarantined its session out of the pool.
	st, err := reg.ModelStatsFor("tiny-cnn")
	if err != nil {
		t.Fatal(err)
	}
	if st.Pool.Discards == 0 || st.Batch.Panics == 0 {
		t.Fatalf("no quarantine recorded: discards=%d panics=%d", st.Pool.Discards, st.Batch.Panics)
	}

	// Heal the fault: the module (weights, plan) survived untouched, and the
	// pool grows fresh sessions to replace the quarantined ones.
	faults.Reset()
	wantFaulted := refOutput(t, "tiny-cnn", in)
	status, ir, _, err := chaosPost(ts, "tiny-cnn", body, nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("healed model: status %d err %v", status, err)
	}
	exactOutput(t, ir, wantFaulted)
}

// TestChaosBreakerDegradedHalfOpenReady walks the circuit breaker through
// its full lifecycle via the HTTP surface: repeated execution failures trip
// the model into degraded (503 + Retry-After, health reports "degraded"),
// the cooldown admits a half-open probe, and a successful probe restores
// ready with bit-identical outputs.
func TestChaosBreakerDegradedHalfOpenReady(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn")
	const cooldown = 100 * time.Millisecond
	cfg := serve.RegistryConfig{Defaults: serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, QueueDepth: 16,
		BreakerThreshold: 2, BreakerWindow: 10 * time.Second, BreakerCooldown: cooldown,
		DrainTimeout: time.Second,
	}}
	_, ts := chaosServer(t, dir, cfg, "tiny-cnn")
	in := chaosInput()
	body := inferBody(t, in)

	health := func() string {
		resp, err := ts.Client().Get(ts.URL + "/v2/health/ready")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		return payload.State
	}

	if got := health(); got != "ready" {
		t.Fatalf("initial health %q", got)
	}

	// Two failing batches cross the threshold.
	faults.Inject(faults.SiteBatcherDispatch,
		faults.OnLabel("tiny-cnn", faults.Error(errors.New("chaos: executor failure"))))
	for i := 0; i < 2; i++ {
		if status, _, _, _ := chaosPost(ts, "tiny-cnn", body, nil); status != http.StatusInternalServerError {
			t.Fatalf("failing request %d: status %d, want 500", i, status)
		}
	}

	// Degraded: infers answer 503 with a Retry-After, health and the
	// per-model readiness both flag it.
	status, _, retryAfter, _ := chaosPost(ts, "tiny-cnn", body, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded infer: status %d, want 503", status)
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Fatalf("degraded Retry-After %q, want integer >= 1", retryAfter)
	}
	if got := health(); got != "degraded" {
		t.Fatalf("health %q, want degraded", got)
	}
	resp, err := ts.Client().Get(ts.URL + "/v2/models/tiny-cnn/ready")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Ready bool   `json:"ready"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Ready || ready.State != "degraded" {
		t.Fatalf("model ready endpoint: status %d payload %+v, want 503/degraded", resp.StatusCode, ready)
	}

	// Heal the fault and wait out the cooldown: the next request is the
	// half-open probe, succeeds, and closes the breaker.
	faults.Reset()
	time.Sleep(cooldown + 50*time.Millisecond)
	want := refOutput(t, "tiny-cnn", in)
	status, ir, _, err := chaosPost(ts, "tiny-cnn", body, nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("probe after cooldown: status %d err %v", status, err)
	}
	exactOutput(t, ir, want)
	if got := health(); got != "ready" {
		t.Fatalf("health after recovery %q, want ready", got)
	}
}

// TestChaosDeadlineAgainstSaturatedQueue is the acceptance scenario: 50ms
// deadline budgets against a queue saturated by 80ms batches must resolve
// promptly as 504 (or 429 backpressure) — never hang until some transport
// timeout.
func TestChaosDeadlineAgainstSaturatedQueue(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn")
	cfg := serve.RegistryConfig{Defaults: serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, QueueDepth: 4,
		DrainTimeout: time.Second,
	}}
	_, ts := chaosServer(t, dir, cfg, "tiny-cnn")
	body := inferBody(t, chaosInput())

	faults.Inject(faults.SiteBatcherDispatch, faults.Delay(80*time.Millisecond))

	const clients = 12
	start := time.Now()
	statuses := make(chan int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _, err := chaosPost(ts, "tiny-cnn", body, map[string]string{"X-Request-Timeout": "50ms"})
			if err != nil {
				t.Errorf("transport error: %v", err)
				return
			}
			statuses <- status
		}()
	}
	wg.Wait()
	close(statuses)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline flood took %v — requests hung instead of failing fast", elapsed)
	}
	counts := map[int]int{}
	for s := range statuses {
		counts[s]++
	}
	for s := range counts {
		if s != http.StatusGatewayTimeout && s != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d under 50ms budget vs 80ms batches (counts %v)", s, counts)
		}
	}
	if counts[http.StatusGatewayTimeout] == 0 {
		t.Fatalf("no request answered 504 (counts %v)", counts)
	}
}

// TestChaosCloseDuringTraffic is the close-during-traffic regression: Close
// racing live requests must resolve every request (success or a clean 5xx),
// drain in-flight batches, and never deadlock or leak a panic.
func TestChaosCloseDuringTraffic(t *testing.T) {
	mod := newModule(t)
	s, err := serve.New(mod, "", serve.Config{
		MaxBatch: 2, MaxLatency: serve.NoLatency, QueueDepth: 32,
		DrainTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := testInput(3)
	body := inferBody(t, in)
	want := wantOutput(t, mod, in)

	const clients = 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v2/models/tiny-resnet/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				// Connection-level failure is acceptable only after close.
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var ir serve.InferResponse
				if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				exactOutput(t, &ir, want)
			case http.StatusServiceUnavailable, http.StatusTooManyRequests:
				io.Copy(io.Discard, resp.Body)
			default:
				t.Errorf("status %d during close", resp.StatusCode)
			}
		}()
	}
	// Let some requests get in flight, then close concurrently with traffic.
	time.Sleep(5 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return while traffic was in flight")
	}
	// Idempotent second close.
	s.Close()
}

// TestChaosTransientLoadRetry: a repository load that fails once with a
// retryable (truncation-class) error must succeed on retry; a deterministic
// failure must fail fast without burning retries.
func TestChaosTransientLoadRetry(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn")
	reg := newRepoRegistry(t, dir, serve.RegistryConfig{Defaults: serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, DrainTimeout: time.Second,
	}})

	// One torn read, then healed: the retry loop must absorb it.
	faults.Inject(faults.SiteRegistryLoad,
		faults.Times(1, faults.Error(fmt.Errorf("chaos: %w", artifact.ErrTruncated))))
	if err := reg.Load("tiny-cnn"); err != nil {
		t.Fatalf("transient failure not retried: %v", err)
	}
	if n := faults.Count(faults.SiteRegistryLoad); n < 2 {
		t.Fatalf("load site fired %d times, want >= 2 (retry)", n)
	}
	if err := reg.Unload("tiny-cnn"); err != nil {
		t.Fatal(err)
	}
	faults.Reset()

	// Deterministic failure: exactly one attempt, then StateFailed.
	faults.Inject(faults.SiteRegistryLoad, faults.Error(errors.New("chaos: deterministic failure")))
	if err := reg.Load("tiny-cnn"); err == nil {
		t.Fatal("deterministic failure load succeeded")
	}
	if n := faults.Count(faults.SiteRegistryLoad); n != 1 {
		t.Fatalf("deterministic failure burned %d attempts, want 1", n)
	}
	if st := indexState(reg.Index(), "tiny-cnn"); st != string(serve.StateFailed) {
		t.Fatalf("state %q after failed load, want failed", st)
	}

	// Healed: loadable again.
	faults.Reset()
	if err := reg.Load("tiny-cnn"); err != nil {
		t.Fatalf("load after heal: %v", err)
	}
}

// TestChaosTornBundleRead: a bundle whose byte stream tears mid-read (a
// half-written file) must fail closed as an invalid/truncated artifact after
// exhausting the retry budget — truncation is retryable, so all attempts are
// spent — and load cleanly once the stream heals.
func TestChaosTornBundleRead(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn")
	reg := newRepoRegistry(t, dir, serve.RegistryConfig{Defaults: serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, DrainTimeout: time.Second,
	}})

	faults.InjectReader(faults.SiteBundleRead, faults.TornReader(64))
	err := reg.Load("tiny-cnn")
	if err == nil {
		t.Fatal("torn bundle loaded")
	}
	if !errors.Is(err, artifact.ErrInvalidArtifact) || !errors.Is(err, artifact.ErrTruncated) {
		t.Fatalf("torn bundle error %v, want ErrInvalidArtifact and ErrTruncated", err)
	}
	if n := faults.Count(faults.SiteBundleRead); n != 3 {
		t.Fatalf("bundle read attempted %d times, want 3 (truncation retries)", n)
	}

	faults.Reset()
	if err := reg.Load("tiny-cnn"); err != nil {
		t.Fatalf("load after heal: %v", err)
	}
	in := chaosInput()
	want := refOutput(t, "tiny-cnn", in)
	outs, err := reg.Infer(t.Context(), "tiny-cnn", in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range outs[0].Data {
		if v != want.Data[i] {
			t.Fatalf("output[%d] diverges after torn-read recovery", i)
		}
	}
}

// TestChaosDrainRefusesNewAdmitsInflight: Drain must flip readiness to
// draining (503), refuse new infers with 503, and let already-admitted
// requests complete.
func TestChaosDrainRefusesNewAdmitsInflight(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	writeBundles(t, dir, "tiny-cnn")
	cfg := serve.RegistryConfig{Defaults: serve.Config{
		MaxBatch: 1, MaxLatency: serve.NoLatency, QueueDepth: 16,
		DrainTimeout: 2 * time.Second,
	}}
	reg, ts := chaosServer(t, dir, cfg, "tiny-cnn")
	in := chaosInput()
	body := inferBody(t, in)
	want := refOutput(t, "tiny-cnn", in)

	// Slow batches so a request is reliably in flight when Drain lands.
	faults.Inject(faults.SiteBatcherDispatch, faults.Delay(50*time.Millisecond))

	inflight := make(chan struct{ status int }, 1)
	go func() {
		status, ir, _, _ := chaosPost(ts, "tiny-cnn", body, nil)
		if status == http.StatusOK {
			exactOutput(t, ir, want)
		}
		inflight <- struct{ status int }{status}
	}()
	time.Sleep(10 * time.Millisecond) // let it pass admission
	reg.Drain()

	// New request after Drain: refused.
	if status, _, _, _ := chaosPost(ts, "tiny-cnn", body, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("infer during drain: status %d, want 503", status)
	}
	// Health reports draining with 503.
	resp, err := ts.Client().Get(ts.URL + "/v2/health/ready")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Ready bool   `json:"ready"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || payload.Ready || payload.State != "draining" {
		t.Fatalf("health during drain: status %d payload %+v", resp.StatusCode, payload)
	}
	// The in-flight request still completed (200).
	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", r.status)
	}
}

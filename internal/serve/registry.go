package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/serve/metrics"
	"repro/internal/tensor"
)

// Typed registry errors. The HTTP layer maps them onto kserve-style status
// codes: unknown model 404, known-but-unloaded 503, transitioning 409,
// budget exhaustion 507.
var (
	// ErrModelNotFound marks a model name the repository has never heard of.
	ErrModelNotFound = errors.New("serve: model not found")
	// ErrModelNotReady marks a known model that is not currently loaded
	// (never loaded, explicitly unloaded, evicted, or failed).
	ErrModelNotReady = errors.New("serve: model not ready")
	// ErrModelBusy marks a model mid-transition (loading or unloading).
	ErrModelBusy = errors.New("serve: model is busy")
	// ErrArenaBudget is returned when loading a model would exceed the
	// registry's arena budget and no idle model can be evicted to make room.
	ErrArenaBudget = errors.New("serve: arena budget exhausted")
)

// ModelState is one model's lifecycle position in the registry.
type ModelState string

// The registry lifecycle: available → loading → ready → unloading →
// unloaded (→ loading again), with failed reachable from loading.
const (
	// StateAvailable: known to the source, never loaded.
	StateAvailable ModelState = "available"
	// StateLoading: a Load is building the module/pool.
	StateLoading ModelState = "loading"
	// StateReady: serving.
	StateReady ModelState = "ready"
	// StateUnloading: draining in-flight batches before teardown.
	StateUnloading ModelState = "unloading"
	// StateUnloaded: was loaded, then unloaded or evicted.
	StateUnloaded ModelState = "unloaded"
	// StateFailed: the last Load failed (see ModelStatus.Reason).
	StateFailed ModelState = "failed"
	// StateDegraded: loaded, but the model's circuit breaker is open after
	// repeated execution failures — only probe traffic is admitted. This is
	// a reported state (Index, StateOf), not a stored one: the entry stays
	// StateReady and recovers without a lifecycle transition.
	StateDegraded ModelState = "degraded"
)

// HealthState is the server-wide health state machine reported by
// /v2/health/ready.
type HealthState string

const (
	// HealthReady: serving normally.
	HealthReady HealthState = "ready"
	// HealthDegraded: serving, but at least one loaded model's circuit
	// breaker is open. Healthy co-hosted models are unaffected.
	HealthDegraded HealthState = "degraded"
	// HealthDraining: admission stopped, in-flight work finishing.
	HealthDraining HealthState = "draining"
	// HealthClosed: shut down.
	HealthClosed HealthState = "closed"
)

// ModelSource provides compiled modules by name — typically a repository
// directory of artifact bundles (DirSource). Implementations must be safe
// for concurrent use.
type ModelSource interface {
	// List enumerates the model names the source can load.
	List() ([]string, error)
	// Load materializes one model as an executable module. The registry owns
	// the returned module and Closes it on unload/eviction.
	Load(name string, opts core.Options) (*core.Module, error)
}

// ConfigSource is an optional ModelSource extension providing per-model
// serving configuration (pool bound, batcher shape).
type ConfigSource interface {
	// Config returns the model's serving config and whether one was found.
	Config(name string) (Config, bool, error)
}

// RegistryConfig tunes a model registry.
type RegistryConfig struct {
	// ArenaBudget caps the total session-arena bytes reserved across ready
	// models; 0 means unlimited. Loading past the budget evicts
	// least-recently-used idle models; if nothing idle can be evicted the
	// load fails with ErrArenaBudget.
	ArenaBudget int
	// Defaults is the per-model serving config used when neither Overrides
	// nor the source provides one.
	Defaults Config
	// Overrides maps model names to serving configs, taking precedence over
	// source-provided and default configs.
	Overrides map[string]Config
	// LoadOptions are the runtime knobs passed to bundle loading: Threads,
	// Backend, DisableInterOp and SharedPool. Pass a SharedPool so N loaded
	// models contend for one set of worker goroutines.
	LoadOptions core.Options
}

// entry is one model's registry slot. The state field is the concurrency
// contract: every transition happens under Registry.mu, and teardown only
// begins after the entry is marked StateUnloading with zero in-flight
// requests (eviction) or with the batcher's own drain protocol (unload).
type entry struct {
	name  string
	state ModelState
	// mod is the executable module. Static entries (AddStatic) retain a
	// caller-owned module across unload/reload and never Close it; source
	// entries own theirs and Close it on teardown.
	mod     *core.Module
	ownsMod bool
	pool    *SessionPool
	batcher *Batcher
	// breaker is the model's circuit breaker (nil when disabled). Set while
	// loading and immutable until teardown, so it may be used without
	// holding Registry.mu once read under it.
	breaker *Breaker
	cfg     Config
	// lastUsed is the registry clock value of the most recent request —
	// the LRU eviction key. inflight counts requests currently inside
	// Batcher.Do; eviction skips entries with inflight > 0.
	lastUsed uint64
	inflight int
	// reserved is this entry's charge against the arena budget while ready.
	reserved int
	// failure is the last Load error (StateFailed).
	failure error
}

// Registry owns N models' serving state — session pools, batchers, lifecycle
// — under one global arena budget. All methods are safe for concurrent use;
// loads, unloads and evictions can overlap with inference traffic on other
// models and with rejected traffic on the transitioning one.
type Registry struct {
	source ModelSource
	cfg    RegistryConfig

	// metrics is the registry's observability root: every known model gets
	// a metric set the moment it is registered (source listing or
	// AddStatic), so counters survive unload/reload and client-supplied
	// names can never mint label series (serve's handlers use Lookup, which
	// never creates).
	metrics *metrics.Registry

	mu        sync.Mutex
	models    map[string]*entry
	clock     uint64
	reserved  int
	evictions uint64
	draining  bool
	closed    bool
}

// NewRegistry builds a registry over a model source. Every model the source
// lists starts StateAvailable; call Load (or the repository HTTP endpoint)
// to bring one up. source may be nil for a registry populated only via
// AddStatic.
func NewRegistry(source ModelSource, cfg RegistryConfig) (*Registry, error) {
	r := &Registry{source: source, cfg: cfg, models: map[string]*entry{}}
	r.metrics = metrics.NewRegistry()
	r.metrics.SetHealthFunc(func() string { return string(r.Health()) })
	if source != nil {
		if err := r.Refresh(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Metrics returns the registry's metric root (the /metrics endpoint's
// backing store).
func (r *Registry) Metrics() *metrics.Registry { return r.metrics }

// Refresh re-lists the source and registers newly appeared models as
// StateAvailable. Models that disappeared from the source keep their entries
// (an unloaded entry costs nothing; a ready one keeps serving).
func (r *Registry) Refresh() error {
	if r.source == nil {
		return nil
	}
	names, err := r.source.List()
	if err != nil {
		return fmt.Errorf("serve: refresh repository: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		if _, ok := r.models[name]; !ok {
			r.models[name] = &entry{name: name, state: StateAvailable, cfg: r.modelConfig(name)}
			r.metrics.Model(name)
		}
	}
	return nil
}

// modelConfig resolves one model's serving config: override, then source
// sidecar, then registry default.
func (r *Registry) modelConfig(name string) Config {
	if c, ok := r.cfg.Overrides[name]; ok {
		return c
	}
	if cs, ok := r.source.(ConfigSource); ok {
		if c, found, err := cs.Config(name); err == nil && found {
			return c
		}
	}
	return r.cfg.Defaults
}

// AddStatic registers a caller-owned compiled module and brings it up
// immediately. The module is retained across unload/reload cycles and never
// Closed by the registry — the caller owns its lifetime. The single-model
// Server is built on this.
func (r *Registry) AddStatic(name string, mod *core.Module, cfg Config) error {
	if name == "" {
		name = mod.Graph.Name
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, dup := r.models[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("serve: model %q is already registered", name)
	}
	e := &entry{name: name, state: StateAvailable, mod: mod, cfg: cfg}
	r.models[name] = e
	r.metrics.Model(name)
	r.mu.Unlock()
	return r.Load(name)
}

// Load brings a model to StateReady: resolves its module (retained static
// module, or the source), reserves arena budget — evicting LRU idle models
// if needed — and builds the session pool and batcher. Loading an already
// ready model is a no-op; loading one mid-transition fails with
// ErrModelBusy.
func (r *Registry) Load(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	e, ok := r.models[name]
	if !ok && r.source != nil {
		// The repository directory may have gained the bundle since boot.
		r.mu.Unlock()
		if err := r.Refresh(); err != nil {
			return err
		}
		r.mu.Lock()
		e, ok = r.models[name]
	}
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	switch e.state {
	case StateReady:
		r.mu.Unlock()
		return nil
	case StateLoading, StateUnloading:
		st := e.state
		r.mu.Unlock()
		return fmt.Errorf("%w: %q is %s", ErrModelBusy, name, st)
	}
	e.state = StateLoading
	e.failure = nil
	r.mu.Unlock()

	mod := e.mod // retained static module, nil for source entries
	owns := false
	if mod == nil {
		if r.source == nil {
			err := fmt.Errorf("serve: model %q has no module and the registry has no source", name)
			r.failLoad(e, nil, false, err)
			return err
		}
		var err error
		mod, err = r.sourceLoad(name)
		if err != nil {
			err = fmt.Errorf("serve: load model %q: %w", name, err)
			r.failLoad(e, nil, false, err)
			return err
		}
		owns = true
	}

	cfg := e.cfg.withDefaults()
	poolSize := cfg.PoolSize
	if poolSize == 0 {
		poolSize = defaultPoolSize(mod, cfg.ArenaBudget)
	}
	need := poolSize * mod.PlanStats().ArenaBytes
	if err := r.reserve(e, need); err != nil {
		r.failLoad(e, mod, owns, err)
		return err
	}
	pool, err := NewSessionPool(mod, poolSize)
	if err != nil {
		r.unreserve(need)
		r.failLoad(e, mod, owns, err)
		return err
	}
	batcher := NewBatcher(name, pool, cfg)
	mm := r.metrics.Model(name)
	batcher.SetMetrics(mm)
	var breaker *Breaker
	if cfg.BreakerThreshold > 0 {
		breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerWindow, cfg.BreakerCooldown)
		// The batcher reports each batch's execution outcome; panics and
		// executor errors count toward tripping, client aborts do not.
		batcher.OnBatchDone(breaker.Record)
		breaker.OnTransition(mm.BreakerTransition)
	}
	// Gauges are scrape-time callbacks over the live pool and queue; the
	// teardown path clears this before the pool is dropped, so a scrape
	// never touches a torn-down model.
	mm.SetGaugeFunc(func() metrics.Gauges {
		ps := pool.Stats()
		return metrics.Gauges{
			QueueDepth:   batcher.QueueDepth(),
			PoolSessions: ps.Size,
			PoolInUse:    ps.Size - ps.Idle,
			PoolMax:      ps.MaxSize,
			ArenaBytes:   ps.ArenaBytes,
		}
	})

	r.mu.Lock()
	e.mod = mod
	e.ownsMod = e.ownsMod || owns
	e.pool = pool
	e.batcher = batcher
	e.breaker = breaker
	e.reserved = need
	e.state = StateReady
	r.clock++
	e.lastUsed = r.clock
	r.mu.Unlock()
	return nil
}

// sourceLoad pulls one model from the source, retrying transient failures —
// torn reads, interrupted I/O — with doubling backoff. Deterministic
// failures (missing bundle, permission, a bundle that is simply invalid) are
// not retried; artifact.Retryable draws the line. The fault-injection site
// fires inside the loop, so injected transient faults exercise the retry
// path end to end.
func (r *Registry) sourceLoad(name string) (*core.Module, error) {
	const attempts = 3
	backoff := 25 * time.Millisecond
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = faults.Fire(faults.SiteRegistryLoad, name); err == nil {
			var mod *core.Module
			if mod, err = r.source.Load(name, r.cfg.LoadOptions); err == nil {
				return mod, nil
			}
		}
		if !artifact.Retryable(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("serve: %d attempts failed, last: %w", attempts, err)
}

// failLoad records a load failure and releases what the attempt acquired.
func (r *Registry) failLoad(e *entry, mod *core.Module, owns bool, err error) {
	if owns && mod != nil {
		mod.Close()
	}
	r.mu.Lock()
	e.state = StateFailed
	e.failure = err
	r.mu.Unlock()
}

// reserve charges need bytes against the arena budget, evicting
// least-recently-used idle models until the charge fits. An eviction fully
// drains the victim's batcher before its pool is torn down, so no session is
// ever destroyed while checked out.
func (r *Registry) reserve(self *entry, need int) error {
	for {
		r.mu.Lock()
		if r.cfg.ArenaBudget <= 0 || r.reserved+need <= r.cfg.ArenaBudget {
			r.reserved += need
			r.mu.Unlock()
			return nil
		}
		var victim *entry
		for _, e := range r.models {
			if e == self || e.state != StateReady || e.inflight != 0 {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			reserved, budget := r.reserved, r.cfg.ArenaBudget
			r.mu.Unlock()
			return fmt.Errorf("%w: loading %q needs %d arena bytes, %d of %d already reserved and no idle model to evict",
				ErrArenaBudget, self.name, need, reserved, budget)
		}
		victim.state = StateUnloading
		r.mu.Unlock()
		r.teardown(victim, true)
	}
}

func (r *Registry) unreserve(n int) {
	r.mu.Lock()
	r.reserved -= n
	r.mu.Unlock()
}

// teardown drains and releases a model previously marked StateUnloading.
// Batcher.Close waits for in-flight batches, so every pooled session is back
// on the idle list before the module (and with it the arenas) is dropped.
func (r *Registry) teardown(e *entry, evicted bool) {
	e.batcher.Close()
	r.metrics.Lookup(e.name).SetGaugeFunc(nil)
	if evicted {
		r.metrics.IncEviction()
	}
	mod, owns := e.mod, e.ownsMod
	r.mu.Lock()
	r.reserved -= e.reserved
	e.reserved = 0
	e.pool = nil
	e.batcher = nil
	e.breaker = nil
	if owns {
		e.mod = nil
		e.ownsMod = false
	}
	e.state = StateUnloaded
	if evicted {
		r.evictions++
	}
	r.mu.Unlock()
	if owns {
		mod.Close()
	}
}

// Unload takes a ready model out of service, draining in-flight batches
// first. Unloading a model that is not loaded is a no-op; unloading one
// mid-transition fails with ErrModelBusy.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	switch e.state {
	case StateLoading, StateUnloading:
		st := e.state
		r.mu.Unlock()
		return fmt.Errorf("%w: %q is %s", ErrModelBusy, name, st)
	case StateReady:
	default:
		r.mu.Unlock()
		return nil
	}
	e.state = StateUnloading
	r.mu.Unlock()
	r.teardown(e, false)
	return nil
}

// Module returns a ready model's module for read-only use (metadata, input
// geometry). Unknown names fail with ErrModelNotFound; known but unloaded
// models with ErrModelNotReady.
func (r *Registry) Module(name string) (*core.Module, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	if e.state != StateReady {
		return nil, fmt.Errorf("%w: %q is %s", ErrModelNotReady, name, e.state)
	}
	return e.mod, nil
}

// Infer routes one input through the named model's micro-batcher. The entry
// is pinned with an in-flight count for the duration, which is what makes
// LRU eviction safe: eviction only ever selects models with zero in-flight
// requests, atomically with marking them unloading.
func (r *Registry) Infer(ctx context.Context, name string, in *tensor.Tensor) ([]*tensor.Tensor, error) {
	outs, _, err := r.InferTraced(ctx, name, in)
	return outs, err
}

// InferTraced is Infer plus the ID of the micro-batch that carried the
// request (0 when it never reached one) — the access log's batch_id field.
func (r *Registry) InferTraced(ctx context.Context, name string, in *tensor.Tensor) ([]*tensor.Tensor, uint64, error) {
	r.mu.Lock()
	if r.draining || r.closed {
		r.mu.Unlock()
		return nil, 0, ErrClosed
	}
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	if e.state != StateReady {
		st := e.state
		r.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %q is %s", ErrModelNotReady, name, st)
	}
	e.inflight++
	r.clock++
	e.lastUsed = r.clock
	b, br := e.batcher, e.breaker
	r.mu.Unlock()
	var outs []*tensor.Tensor
	var batchID uint64
	var err error
	if br != nil && !br.Allow() {
		err = fmt.Errorf("%w: %q (circuit breaker open)", ErrModelDegraded, name)
	} else {
		outs, batchID, err = b.DoTraced(ctx, in)
	}
	r.mu.Lock()
	e.inflight--
	r.mu.Unlock()
	return outs, batchID, err
}

// Drain stops admission registry-wide: Infer refuses new requests while
// in-flight ones run to completion. Loaded models stay loaded (Close tears
// them down). Idempotent.
func (r *Registry) Drain() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
}

// Health reduces the registry to the server-wide health state machine:
// draining/closed dominate; otherwise any circuit-broken loaded model makes
// the whole server report degraded (it still serves the healthy ones).
func (r *Registry) Health() HealthState {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.closed:
		return HealthClosed
	case r.draining:
		return HealthDraining
	}
	for _, e := range r.models {
		if e.state == StateReady && e.breaker != nil && e.breaker.Degraded() {
			return HealthDegraded
		}
	}
	return HealthReady
}

// StateOf reports one model's lifecycle state, surfacing StateDegraded for
// loaded models whose circuit breaker is open.
func (r *Registry) StateOf(name string) (ModelState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	if e.state == StateReady && e.breaker != nil && e.breaker.Degraded() {
		return StateDegraded, nil
	}
	return e.state, nil
}

// RetryAfterSeconds derives a Retry-After value for one model's 429/503
// responses: the larger of the batcher's queue-based wait estimate and the
// breaker's remaining cooldown, floored at 1 second.
func (r *Registry) RetryAfterSeconds(name string) int {
	r.mu.Lock()
	var b *Batcher
	var br *Breaker
	if e, ok := r.models[name]; ok {
		b, br = e.batcher, e.breaker
	}
	r.mu.Unlock()
	secs := 1
	if b != nil {
		secs = b.RetryAfterSeconds()
	}
	if br != nil {
		if c := int(math.Ceil(br.RetryAfter().Seconds())); c > secs {
			secs = c
		}
	}
	return secs
}

// ModelStatus is one model's repository-index row.
type ModelStatus struct {
	Name  string `json:"name"`
	State string `json:"state"`
	Ready bool   `json:"ready"`
	// Reason carries the failure message for StateFailed entries.
	Reason string `json:"reason,omitempty"`
	// ArenaReservedBytes is the model's current charge against the budget.
	ArenaReservedBytes int `json:"arena_reserved_bytes,omitempty"`
	// Inflight counts requests currently inside the model's batcher.
	Inflight int `json:"inflight,omitempty"`
}

// Index snapshots every known model's lifecycle state, sorted by name. When
// the registry has a source it is re-listed first, so bundles dropped into a
// repository directory appear without a restart.
func (r *Registry) Index() []ModelStatus {
	if r.source != nil {
		// Best effort: a transiently unlistable source still yields the
		// already known entries.
		_ = r.Refresh()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make([]ModelStatus, 0, len(r.models))
	for _, e := range r.models {
		state := e.state
		if state == StateReady && e.breaker != nil && e.breaker.Degraded() {
			state = StateDegraded
		}
		st := ModelStatus{
			Name:               e.name,
			State:              string(state),
			Ready:              state == StateReady,
			ArenaReservedBytes: e.reserved,
			Inflight:           e.inflight,
		}
		if e.failure != nil {
			st.Reason = e.failure.Error()
		}
		idx = append(idx, st)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i].Name < idx[j].Name })
	return idx
}

// ModelStats is one model's serving counters plus its lifecycle state.
type ModelStats struct {
	Model string     `json:"model"`
	State string     `json:"state"`
	Pool  PoolStats  `json:"pool"`
	Batch BatchStats `json:"batch"`
}

// RegistryStats aggregates the registry's per-model serving counters.
type RegistryStats struct {
	Models             []ModelStats `json:"models"`
	ArenaReservedBytes int          `json:"arena_reserved_bytes"`
	ArenaBudgetBytes   int          `json:"arena_budget_bytes,omitempty"`
	Evictions          uint64       `json:"evictions"`
}

// Stats snapshots every model's pool and batcher counters. Models that are
// not ready report zeroed counters with their state.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	type snap struct {
		name    string
		state   ModelState
		pool    *SessionPool
		batcher *Batcher
	}
	snaps := make([]snap, 0, len(r.models))
	for _, e := range r.models {
		snaps = append(snaps, snap{e.name, e.state, e.pool, e.batcher})
	}
	st := RegistryStats{
		ArenaReservedBytes: r.reserved,
		ArenaBudgetBytes:   r.cfg.ArenaBudget,
		Evictions:          r.evictions,
	}
	r.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })
	for _, s := range snaps {
		ms := ModelStats{Model: s.name, State: string(s.state)}
		if s.pool != nil {
			ms.Pool = s.pool.Stats()
		}
		if s.batcher != nil {
			ms.Batch = s.batcher.Stats()
		}
		st.Models = append(st.Models, ms)
	}
	return st
}

// ModelStatsFor returns one ready model's serving counters (the single-model
// Server.Stats compatibility path).
func (r *Registry) ModelStatsFor(name string) (Stats, error) {
	r.mu.Lock()
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return Stats{}, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	pool, batcher := e.pool, e.batcher
	r.mu.Unlock()
	st := Stats{Model: name}
	if pool != nil {
		st.Pool = pool.Stats()
	}
	if batcher != nil {
		st.Batch = batcher.Stats()
	}
	return st, nil
}

// Evictions returns how many models the budget has evicted so far.
func (r *Registry) Evictions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

// Close drains and unloads every ready model and refuses further loads.
// Static modules are left open for their owners. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var victims []*entry
	for _, e := range r.models {
		if e.state == StateReady {
			e.state = StateUnloading
			victims = append(victims, e)
		}
	}
	r.mu.Unlock()
	for _, e := range victims {
		r.teardown(e, false)
	}
}

// A minimal Prometheus text-exposition (format 0.0.4) parser, test-only: just
// enough to hold the /metrics contract without importing a client library.
// It is deliberately strict — unknown sample families, samples appearing
// before their # TYPE, unparseable values, or unterminated label quoting all
// fail the test — so format regressions surface as parse errors here rather
// than in a real scraper.
package serve_test

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

type promSample struct {
	name   string // full sample name, e.g. neocpu_request_duration_seconds_bucket
	labels map[string]string
	value  float64
}

type promFamily struct {
	name    string
	typ     string // counter | gauge | histogram
	help    string
	samples []promSample
}

type promDoc struct {
	families map[string]*promFamily
}

// parseProm parses one exposition body, enforcing the structural rules the
// contract relies on: TYPE before samples, one TYPE per family, samples
// grouped under the most recent family.
func parseProm(t *testing.T, body string) *promDoc {
	t.Helper()
	if body != "" && !strings.HasSuffix(body, "\n") {
		t.Fatalf("exposition does not end in a newline")
	}
	doc := &promDoc{families: map[string]*promFamily{}}
	var current *promFamily
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		fatal := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("metrics line %d %q: "+format, append([]any{ln + 1, line}, args...)...)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				fatal("HELP without text")
			}
			f := doc.families[name]
			if f == nil {
				f = &promFamily{name: name}
				doc.families[name] = f
			}
			f.help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				fatal("bad TYPE %q", typ)
			}
			f := doc.families[name]
			if f == nil {
				f = &promFamily{name: name}
				doc.families[name] = f
			}
			if f.typ != "" {
				fatal("duplicate TYPE for %s", name)
			}
			f.typ = typ
			current = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s := parsePromSample(t, line)
		if current == nil {
			fatal("sample before any # TYPE")
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.name,
			"_bucket"), "_sum"), "_count")
		if s.name != current.name && !(current.typ == "histogram" && base == current.name) {
			fatal("sample not grouped under its family (current %s)", current.name)
		}
		current.samples = append(current.samples, s)
	}
	return doc
}

func parsePromSample(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("metrics sample %q: no value", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq < 0 || !strings.HasPrefix(rest[eq+1:], `"`) {
				t.Fatalf("metrics sample %q: malformed label", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
		quoted:
			for {
				if rest == "" {
					t.Fatalf("metrics sample %q: unterminated label value", line)
				}
				switch rest[0] {
				case '"':
					rest = rest[1:]
					break quoted
				case '\\':
					if len(rest) < 2 {
						t.Fatalf("metrics sample %q: dangling escape", line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("metrics sample %q: bad escape \\%c", line, rest[1])
					}
					rest = rest[2:]
				default:
					val.WriteByte(rest[0])
					rest = rest[1:]
				}
			}
			s.labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = rest[1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("metrics sample %q: bad value: %v", line, err)
	}
	s.value = v
	return s
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// lookup finds one sample by full name and exact label set.
func (d *promDoc) lookup(name string, labels map[string]string) (float64, bool) {
	base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
		"_bucket"), "_sum"), "_count")
	for _, fam := range []string{name, base} {
		f := d.families[fam]
		if f == nil {
			continue
		}
		for _, s := range f.samples {
			if s.name == name && labelsEqual(s.labels, labels) {
				return s.value, true
			}
		}
	}
	return 0, false
}

// value is lookup that fails the test when the sample is absent.
func (d *promDoc) value(t *testing.T, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := d.lookup(name, labels)
	if !ok {
		t.Fatalf("metrics: no sample %s%v", name, labels)
	}
	return v
}

// checkHistogram verifies one model's histogram family end to end —
// cumulative non-decreasing buckets, a +Inf bucket equal to _count, a _sum —
// and returns the observation count.
func checkHistogram(t *testing.T, d *promDoc, family, model string) float64 {
	t.Helper()
	f := d.families[family]
	if f == nil || f.typ != "histogram" {
		t.Fatalf("metrics: family %s missing or not a histogram", family)
	}
	type bkt struct {
		le float64
		v  float64
	}
	var buckets []bkt
	for _, s := range f.samples {
		if s.name != family+"_bucket" || s.labels["model"] != model {
			continue
		}
		le := math.Inf(1)
		if s.labels["le"] != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(s.labels["le"], 64)
			if err != nil {
				t.Fatalf("%s: bad le %q", family, s.labels["le"])
			}
		}
		buckets = append(buckets, bkt{le, s.value})
	}
	if len(buckets) < 2 {
		t.Fatalf("%s{model=%q}: only %d buckets", family, model, len(buckets))
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].v < buckets[i-1].v {
			t.Fatalf("%s{model=%q}: bucket le=%g count %g < previous %g (not cumulative)",
				family, model, buckets[i].le, buckets[i].v, buckets[i-1].v)
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		t.Fatalf("%s{model=%q}: no +Inf bucket", family, model)
	}
	count := d.value(t, family+"_count", map[string]string{"model": model})
	if last.v != count {
		t.Fatalf("%s{model=%q}: +Inf bucket %g != _count %g", family, model, last.v, count)
	}
	if sum := d.value(t, family+"_sum", map[string]string{"model": model}); sum < 0 {
		t.Fatalf("%s{model=%q}: negative _sum %g", family, model, sum)
	}
	return count
}

// checkMonotonic asserts every counter and histogram sample in the earlier
// scrape is <= its value in the later scrape (counters never go backwards;
// gauges are exempt).
func checkMonotonic(t *testing.T, earlier, later *promDoc) {
	t.Helper()
	for name, f := range earlier.families {
		if f.typ == "gauge" {
			continue
		}
		for _, s := range f.samples {
			lv, ok := later.lookup(s.name, s.labels)
			if !ok {
				t.Fatalf("metrics: series %s%v disappeared between scrapes", s.name, s.labels)
			}
			if lv < s.value {
				t.Fatalf("metrics: %s%v went backwards: %g -> %g (family %s)",
					s.name, s.labels, s.value, lv, name)
			}
		}
	}
}

// Package serve turns a compiled core.Module into an inference service: a
// bounded pool of arena-reusing Sessions, a dynamic micro-batcher that
// coalesces concurrent requests, and an HTTP server speaking a
// kserve-v2-style JSON protocol. It is the paper's end goal — CNN inference
// serving on commodity CPUs — layered on the execution engine: the module's
// weights and threading runtime are shared read-only, each in-flight batch
// runs on one pooled session, and steady-state request handling allocates
// far less than one session arena per request.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// SessionPool is a bounded, lazily grown pool of core.Sessions over one
// compiled module. Sessions are expensive (one preallocated tensor arena
// each), so the pool creates them on demand up to Max and then recycles:
// Acquire hands out an idle session or blocks until one is released. One
// session is created eagerly so construction fails fast on modules that
// cannot execute (predict-only) and readiness probes reflect a warm arena.
type SessionPool struct {
	mod *core.Module
	max int

	idle chan *core.Session

	// mu guards the session list AND the counters: Stats snapshots
	// everything under one lock, so its invariants (Waits <= Acquires,
	// Idle <= Size <= MaxSize) hold per-snapshot even mid-traffic —
	// independent atomics could be read torn across concurrent updates
	// (an Acquire's acquires++ then waits++ landing between two loads).
	mu       sync.Mutex
	sessions []*core.Session // every live session, for stats
	acquires uint64
	waits    uint64
	discards uint64
}

// defaultPoolSize derives the session-pool bound from the module's
// compile-time execution plan: as many arenas as fit the byte budget,
// clamped to [2, 16]. The memory planner's slot sharing is what makes this
// meaningful — sessions are several-fold cheaper than one buffer per node,
// so the same budget admits correspondingly more concurrent lanes.
func defaultPoolSize(mod *core.Module, budget int) int {
	per := mod.PlanStats().ArenaBytes
	if per <= 0 {
		return 2
	}
	n := budget / per
	if n < 2 {
		return 2
	}
	if n > 16 {
		return 16
	}
	return n
}

// NewSessionPool creates a pool bounded at max sessions.
func NewSessionPool(mod *core.Module, max int) (*SessionPool, error) {
	if max <= 0 {
		return nil, fmt.Errorf("serve: pool size must be positive, got %d", max)
	}
	p := &SessionPool{
		mod:  mod,
		max:  max,
		idle: make(chan *core.Session, max),
	}
	s, err := mod.NewSession()
	if err != nil {
		return nil, err
	}
	p.sessions = append(p.sessions, s)
	p.idle <- s
	return p, nil
}

// Acquire returns a session for exclusive use. It prefers an idle session,
// grows the pool if it is still under its bound, and otherwise blocks until
// a session is released or ctx is done. Every acquired session must be
// handed back with Release.
func (p *SessionPool) Acquire(ctx context.Context) (*core.Session, error) {
	p.mu.Lock()
	p.acquires++
	p.mu.Unlock()
	if err := faults.Fire(faults.SitePoolAcquire, p.mod.Graph.Name); err != nil {
		return nil, err
	}
	select {
	case s := <-p.idle:
		return s, nil
	default:
	}
	p.mu.Lock()
	if len(p.sessions) < p.max {
		s, err := p.mod.NewSession()
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		p.sessions = append(p.sessions, s)
		p.mu.Unlock()
		return s, nil
	}
	p.waits++
	p.mu.Unlock()
	select {
	case s := <-p.idle:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquire returns a session without ever blocking: an idle one if
// available, a freshly grown one if the pool is under its bound, and nil
// when the pool is exhausted (or growth failed). It is the sharding path's
// acquisition primitive — the batcher uses it to pick up extra lanes for a
// large batch, and a nil result simply means the batch runs unsharded.
func (p *SessionPool) TryAcquire() *core.Session {
	select {
	case s := <-p.idle:
		p.mu.Lock()
		p.acquires++
		p.mu.Unlock()
		return s
	default:
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.sessions) < p.max {
		s, err := p.mod.NewSession()
		if err != nil {
			return nil
		}
		p.sessions = append(p.sessions, s)
		p.acquires++
		return s
	}
	return nil
}

// Release returns an acquired session to the pool.
func (p *SessionPool) Release(s *core.Session) {
	if s == nil {
		return
	}
	select {
	case p.idle <- s:
	default:
		// Impossible by construction (the channel holds Max and at most Max
		// sessions exist), but dropping beats deadlocking if an alien session
		// is released here.
	}
}

// Discard removes an acquired session from the pool instead of recycling it
// — the quarantine path for sessions whose execution panicked and whose
// arena may hold partial writes. The slot it occupied frees up: the next
// Acquire or TryAcquire that misses the idle list grows a fresh replacement
// under the same bound. Callers that block in Acquire while the pool is
// exhausted are not woken by Discard; that is fine here because the
// batcher's single dispatcher goroutine is the only blocking-Acquire caller
// (shard runners only ever TryAcquire, which never waits), and a sharded
// batch that discards one lane still Releases its other lanes, which wakes
// any blocked dispatcher.
func (p *SessionPool) Discard(s *core.Session) {
	if s == nil {
		return
	}
	p.mu.Lock()
	p.discards++
	for i, have := range p.sessions {
		if have == s {
			p.sessions = append(p.sessions[:i], p.sessions[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// PoolStats is a snapshot of the pool and of the work its sessions have
// executed (aggregated core.SessionStats).
type PoolStats struct {
	// Size is the number of sessions created so far; MaxSize the bound;
	// Idle how many currently sit in the free list.
	Size    int `json:"size"`
	MaxSize int `json:"max_size"`
	Idle    int `json:"idle"`
	// Acquires counts Acquire calls; Waits counts the ones that found the
	// pool exhausted and had to block. Waits/Acquires rising toward 1 is the
	// signal to grow the pool (or add machines).
	Acquires uint64 `json:"acquires"`
	Waits    uint64 `json:"waits"`
	// Discards counts sessions quarantined out of the pool after a panic.
	Discards uint64 `json:"discards"`
	// Runs/Items/Busy aggregate the per-session work counters.
	Runs  uint64        `json:"runs"`
	Items uint64        `json:"items"`
	Busy  time.Duration `json:"busy_ns"`
	// ArenaBytes is the total preallocated arena across created sessions;
	// ArenaBytesPerSession sizes one more session's worth of growth.
	ArenaBytes           int `json:"arena_bytes"`
	ArenaBytesPerSession int `json:"arena_bytes_per_session"`
}

// Stats snapshots the pool under one lock, so a snapshot is internally
// consistent: Waits <= Acquires, Idle <= Size <= MaxSize always hold within
// one PoolStats even while Acquire/Release/Discard run concurrently.
// Per-session work counters are atomics read under the same lock; they can
// tick mid-run, but never below a previous snapshot.
func (p *SessionPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Size:     len(p.sessions),
		MaxSize:  p.max,
		Idle:     len(p.idle),
		Acquires: p.acquires,
		Waits:    p.waits,
		Discards: p.discards,
	}
	for _, s := range p.sessions {
		ss := s.Stats()
		st.Runs += ss.Runs
		st.Items += ss.Items
		st.Busy += ss.Busy
		st.ArenaBytes += s.ArenaBytes()
	}
	if len(p.sessions) > 0 {
		st.ArenaBytesPerSession = st.ArenaBytes / len(p.sessions)
	}
	return st
}
